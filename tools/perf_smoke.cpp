// Perf smoke: frames/sec of the dynamic simulator across scale points,
// channel-state providers, and intra-frame thread counts, emitted as
// BENCH_frames_per_sec.json so the bench trajectory of the frame loop is
// recorded over time.
//
// Three built-in scale points:
//   * 19 cells / 288 users  -- the PR 3 acceptance grid (culled baseline
//     1825 f/s before the SoA hot-path rework);
//   * 37 cells / 1152 users -- the scale point the O(users x cells)
//     exhaustive path made impractical; run with the culled provider plus
//     one exhaustive reference row so the gap stays on record.
//   * 127 cells / 2304 users -- the far-field scale point (PR 6): candidate
//     sets are radius-bounded and the ring aggregate covers the remaining
//     ~110 cells, so the culling providers' per-user frame cost must stay
//     flat with cell count.  The JSON summary records the per-user cost
//     ratio vs the 19-cell grid (tools/check_perf.py gates culled at
//     <= 1.3x; fast at <= 1.45x, since SIMD compresses its 19-cell cost).
//
// Every registered channel-state provider gets rows at both scales (PR 5
// added "fast", the relaxed-precision culled variant; the JSON summary
// records its fast/culled frames-per-sec ratio at 19 cells, sim.threads=1,
// which the PR 5 acceptance pins at >= 1.5x on the 1-core container).
//
// Each (scale, provider) pair runs at sim.threads = 1 and 4.  Thread counts
// change frames/sec only -- metrics are bit-identical by design (tested in
// tests/test_frame_state.cpp).  On hosts with fewer cores than sim.threads
// the simulator caps its worker pool at the hardware concurrency, so the
// threaded rows degrade to single-thread speed instead of thrashing; the
// JSON records the host's hardware_concurrency for exactly that reason.
//
// Exit status is 0 even when a target is missed (CI smoke, not a gate);
// tools/check_perf.py turns the JSON into a regression gate.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "src/common/simd.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sim/channel_state.hpp"
#include "src/sim/simulator.hpp"

using namespace wcdma;

namespace {

/// Culled frames/sec of the 19-cell / 288-user grid recorded by PR 3's
/// perf_smoke on the same reference host, before the hot-path rework.
constexpr double kPr3CulledBaselineFps = 1825.349;

struct ScalePoint {
  int rings;       // 2 -> 19 cells, 3 -> 37 cells
  int load_scale;  // multiplier over the default 60 voice + 12 data mix
  int frame_divisor;  // timed frames = --frames / divisor (big grids)
};

constexpr ScalePoint kScales[] = {
    {2, 4, 1},   // 19 cells, 288 users
    {3, 16, 4},  // 37 cells, 1152 users
    {6, 32, 8},  // 127 cells, 2304 users (far-field scale point)
};

constexpr int kThreadCounts[] = {1, 4};

void print_usage() {
  std::printf(
      "usage: perf_smoke [options]\n"
      "  --frames N       timed frames per run at the base scale (default: 200)\n"
      "  --best-of N      repetitions per entry; the fastest is recorded\n"
      "                   (default: 1; use >1 on noisy hosts)\n"
      "  --output FILE    write JSON to FILE (default: BENCH_frames_per_sec.json)\n");
}

sim::SystemConfig bench_config(const ScalePoint& scale) {
  sim::SystemConfig cfg = sim::default_config();
  cfg.layout.rings = scale.rings;
  cfg.voice.users = 60 * scale.load_scale;
  cfg.data.users = 12 * scale.load_scale;
  cfg.data.mean_reading_s = 1.5;
  cfg.sim_duration_s = 3600.0;  // driven frame-by-frame; never run() to completion
  cfg.warmup_s = 1.0;
  cfg.seed = 90210;
  return cfg;
}

double frames_per_sec(const sim::SystemConfig& cfg, int frames, int best_of) {
  double best = 0.0;
  for (int rep = 0; rep < best_of; ++rep) {
    sim::Simulator simulator(cfg);
    // Short untimed warmup so queues and interference reach a working state.
    const int warm = frames / 10 + 1;
    for (int f = 0; f < warm; ++f) simulator.step_frame();
    const auto t0 = std::chrono::steady_clock::now();
    for (int f = 0; f < frames; ++f) simulator.step_frame();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const double fps = secs > 0.0 ? static_cast<double>(frames) / secs : 0.0;
    if (fps > best) best = fps;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  int frames = 200;
  int best_of = 1;
  std::string output_path = "BENCH_frames_per_sec.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perf_smoke: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--frames") {
      frames = std::atoi(next_value());
      if (frames <= 0) {
        std::fprintf(stderr, "perf_smoke: bad --frames value\n");
        return 2;
      }
    } else if (arg == "--best-of") {
      best_of = std::atoi(next_value());
      if (best_of <= 0) {
        std::fprintf(stderr, "perf_smoke: bad --best-of value\n");
        return 2;
      }
    } else if (arg == "--output") {
      output_path = next_value();
    } else {
      std::fprintf(stderr, "perf_smoke: unknown option %s\n", arg.c_str());
      print_usage();
      return 2;
    }
  }

  const std::vector<std::string> providers = sim::channel_provider_names();
  // The acceptance row: 19-cell culled at sim.threads = 4 (the configuration
  // ISSUE/ROADMAP name), not the best over thread counts.
  double gate_culled_fps = 0.0;
  // The relaxed-precision acceptance ratio: fast vs culled at 19 cells,
  // sim.threads = 1 (the 1-core container configuration the PR 5 target
  // names); tools/check_perf.py can gate on it via --ratio.
  double culled_19_t1_fps = 0.0, fast_19_t1_fps = 0.0;
  // SIMD acceptance ratio (ISSUE 10): the fast provider re-run with the
  // kernel dispatch forced to scalar vs the host's best level, 19 cells,
  // sim.threads = 1.  Gated by check_perf.py --ratio fast-simd:fast-scalar.
  double fast_scalar_19_t1_fps = 0.0, fast_simd_19_t1_fps = 0.0;
  // Far-field scaling record (PR 6): per-user frame cost = 1 / (fps x
  // users); the 127-cell over 19-cell ratio must stay ~flat for the
  // culling providers (tools/check_perf.py --cost-scaling gates it).
  double culled_127_t1_fps = 0.0, fast_127_t1_fps = 0.0;
  int users_19 = 0, users_127 = 0;

  std::string json = "{\n  \"bench\": \"frames_per_sec\",\n  \"schema\": 2,\n";
  json += "  \"frames\": " + std::to_string(frames) + ",\n";
  json += "  \"best_of\": " + std::to_string(best_of) + ",\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(common::default_thread_count()) + ",\n";
  json += "  \"scales\": [\n";

  for (std::size_t s = 0; s < std::size(kScales); ++s) {
    const ScalePoint& scale = kScales[s];
    sim::SystemConfig cfg = bench_config(scale);
    const std::size_t cells = cell::hex_cell_count(cfg.layout.rings);
    const int users = cfg.voice.users + cfg.data.users;
    const int timed = std::max(frames / scale.frame_divisor, 20);
    std::fprintf(stderr, "perf_smoke: %zu cells, %d users, %d timed frames\n", cells,
                 users, timed);

    json += "    {\"cells\": " + std::to_string(cells) +
            ", \"users\": " + std::to_string(users) +
            ", \"frames\": " + std::to_string(timed) + ", \"entries\": [\n";

    bool first_entry = true;
    for (const std::string& provider : providers) {
      for (const int threads : kThreadCounts) {
        // Exhaustive is the O(users x cells) reference: one single-thread
        // row per scale is enough to keep the gap on record.
        if (provider == "exhaustive" && threads != 1) continue;
        cfg.csi.provider = provider;
        cfg.sim_threads = threads;
        const double fps = frames_per_sec(cfg, timed, best_of);
        if (cells == 19 && provider == "culled" && threads == 4) {
          gate_culled_fps = fps;
        }
        if (cells == 19 && threads == 1) {
          users_19 = users;
          if (provider == "culled") culled_19_t1_fps = fps;
          if (provider == "fast") fast_19_t1_fps = fps;
        }
        if (cells == 127 && threads == 1) {
          users_127 = users;
          if (provider == "culled") culled_127_t1_fps = fps;
          if (provider == "fast") fast_127_t1_fps = fps;
        }
        std::fprintf(stderr, "perf_smoke:   %-11s sim_threads=%d  %.1f frames/sec\n",
                     provider.c_str(), threads, fps);
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s      {\"provider\": \"%s\", \"sim_threads\": %d, "
                      "\"fps\": %.3f}",
                      first_entry ? "" : ",\n", provider.c_str(), threads, fps);
        json += buf;
        first_entry = false;
      }
    }
    if (cells == 19) {
      // Dispatch-forced rows: same fast-provider run with the SIMD kernels
      // pinned to scalar, then to the host's best level.  Trajectories are
      // byte-identical across levels (the kernels contract), so the fps
      // delta is the SIMD win and nothing else.
      cfg.csi.provider = "fast";
      cfg.sim_threads = 1;
      const common::SimdLevel restore = common::active_simd_level();
      struct ForcedRow {
        const char* name;
        common::SimdLevel level;
        double* fps_out;
      } forced[] = {
          {"fast-scalar", common::SimdLevel::kScalar, &fast_scalar_19_t1_fps},
          {"fast-simd", common::max_supported_simd_level(), &fast_simd_19_t1_fps},
      };
      // Interleave the repetitions (scalar, simd, scalar, simd, ...) instead
      // of running each row's best-of block sequentially: shared containers
      // drift in multi-minute windows, and a sequential block can land one
      // row entirely inside a slow window, corrupting the gated ratio.
      // Adjacent runs see the same machine, so the best-of pairs stay
      // comparable; a floor of 3 reps keeps the ratio stable even when the
      // grid rows above run with --best-of 1.
      const int forced_reps = best_of < 3 ? 3 : best_of;
      for (int rep = 0; rep < forced_reps; ++rep) {
        for (const ForcedRow& row : forced) {
          common::set_simd_level(row.level);
          const double fps = frames_per_sec(cfg, timed, 1);
          if (fps > *row.fps_out) *row.fps_out = fps;
        }
      }
      common::set_simd_level(restore);
      for (const ForcedRow& row : forced) {
        std::fprintf(stderr, "perf_smoke:   %-11s sim_threads=1  %.1f frames/sec\n",
                     row.name, *row.fps_out);
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      ",\n      {\"provider\": \"%s\", \"sim_threads\": 1, "
                      "\"fps\": %.3f}",
                      row.name, *row.fps_out);
        json += buf;
      }
    }
    json += "\n    ]}";
    json += s + 1 < std::size(kScales) ? ",\n" : "\n";
  }
  json += "  ],\n";
  {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "  \"baseline_pr3_culled_fps\": %.3f,\n",
                  kPr3CulledBaselineFps);
    json += buf;
    std::snprintf(buf, sizeof(buf), "  \"speedup_vs_pr3\": %.3f,\n",
                  gate_culled_fps / kPr3CulledBaselineFps);
    json += buf;
    std::snprintf(buf, sizeof(buf), "  \"fast_over_culled_19c_t1\": %.3f,\n",
                  culled_19_t1_fps > 0.0 ? fast_19_t1_fps / culled_19_t1_fps : 0.0);
    json += buf;
    std::snprintf(buf, sizeof(buf), "  \"simd_level\": \"%s\",\n",
                  common::simd_level_name(common::max_supported_simd_level()));
    json += buf;
    std::snprintf(buf, sizeof(buf), "  \"simd_over_scalar_fast_19c\": %.3f,\n",
                  fast_scalar_19_t1_fps > 0.0
                      ? fast_simd_19_t1_fps / fast_scalar_19_t1_fps
                      : 0.0);
    json += buf;
    // cost(scale) = 1 / (fps x users); ratio > 1 means the big grid costs
    // more per user-frame than the small one.
    const auto cost_ratio = [&](double fps_big, double fps_small) {
      return fps_big > 0.0 && fps_small > 0.0 && users_19 > 0 && users_127 > 0
                 ? (fps_small * users_19) / (fps_big * users_127)
                 : 0.0;
    };
    std::snprintf(buf, sizeof(buf),
                  "  \"culled_per_user_cost_127c_over_19c\": %.3f,\n",
                  cost_ratio(culled_127_t1_fps, culled_19_t1_fps));
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"fast_per_user_cost_127c_over_19c\": %.3f\n",
                  cost_ratio(fast_127_t1_fps, fast_19_t1_fps));
    json += buf;
  }
  json += "}\n";

  std::FILE* f = std::fopen(output_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "perf_smoke: cannot open %s\n", output_path.c_str());
    return 1;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  if (std::fclose(f) != 0 || written != json.size()) {
    std::fprintf(stderr, "perf_smoke: write to %s failed\n", output_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), stdout);
  return 0;
}
