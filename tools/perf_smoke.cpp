// Perf smoke: frames/sec of the dynamic simulator on a large multi-cell
// grid, once per channel-state provider, emitted as BENCH_frames_per_sec.json
// so the bench trajectory of the frame loop is recorded over time.
//
// The grid is the acceptance setting for the culled provider: >= 19 cells at
// >= 4x the default user population, where exhaustive link state is the
// bottleneck.  Exit status is 0 even when the speedup is below target (CI
// smoke, not a gate); the JSON carries the numbers.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/sim/channel_state.hpp"
#include "src/sim/simulator.hpp"

using namespace wcdma;

namespace {

void print_usage() {
  std::printf(
      "usage: perf_smoke [options]\n"
      "  --frames N       timed frames per provider (default: 200)\n"
      "  --load-scale X   user multiplier over the default mix (default: 4)\n"
      "  --output FILE    write JSON to FILE (default: BENCH_frames_per_sec.json)\n");
}

sim::SystemConfig bench_config(int load_scale) {
  sim::SystemConfig cfg = sim::default_config();
  cfg.layout.rings = 2;  // 19 cells
  cfg.voice.users = 60 * load_scale;
  cfg.data.users = 12 * load_scale;
  cfg.data.mean_reading_s = 1.5;
  cfg.sim_duration_s = 3600.0;  // driven frame-by-frame; never run() to completion
  cfg.warmup_s = 1.0;
  cfg.seed = 90210;
  return cfg;
}

double frames_per_sec(const sim::SystemConfig& cfg, int frames) {
  sim::Simulator simulator(cfg);
  // Short untimed warmup so queues and interference reach a working state.
  const int warm = frames / 10 + 1;
  for (int f = 0; f < warm; ++f) simulator.step_frame();
  const auto t0 = std::chrono::steady_clock::now();
  for (int f = 0; f < frames; ++f) simulator.step_frame();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return secs > 0.0 ? static_cast<double>(frames) / secs : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  int frames = 200;
  int load_scale = 4;
  std::string output_path = "BENCH_frames_per_sec.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perf_smoke: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--frames") {
      frames = std::atoi(next_value());
      if (frames <= 0) {
        std::fprintf(stderr, "perf_smoke: bad --frames value\n");
        return 2;
      }
    } else if (arg == "--load-scale") {
      load_scale = std::atoi(next_value());
      if (load_scale <= 0) {
        std::fprintf(stderr, "perf_smoke: bad --load-scale value\n");
        return 2;
      }
    } else if (arg == "--output") {
      output_path = next_value();
    } else {
      std::fprintf(stderr, "perf_smoke: unknown option %s\n", arg.c_str());
      print_usage();
      return 2;
    }
  }

  sim::SystemConfig cfg = bench_config(load_scale);
  const std::size_t cells = cell::hex_cell_count(cfg.layout.rings);
  const int users = cfg.voice.users + cfg.data.users;
  std::fprintf(stderr, "perf_smoke: %zu cells, %d users, %d timed frames/provider\n",
               cells, users, frames);

  std::string json = "{\n  \"bench\": \"frames_per_sec\",\n";
  json += "  \"cells\": " + std::to_string(cells) + ",\n";
  json += "  \"users\": " + std::to_string(users) + ",\n";
  json += "  \"frames\": " + std::to_string(frames) + ",\n";
  json += "  \"providers\": {\n";

  double exhaustive_fps = 0.0, culled_fps = 0.0;
  const std::vector<std::string> providers = sim::channel_provider_names();
  for (std::size_t p = 0; p < providers.size(); ++p) {
    cfg.csi.provider = providers[p];
    const double fps = frames_per_sec(cfg, frames);
    if (providers[p] == "exhaustive") exhaustive_fps = fps;
    if (providers[p] == "culled") culled_fps = fps;
    std::fprintf(stderr, "perf_smoke: %-11s %.1f frames/sec\n", providers[p].c_str(),
                 fps);
    char buf[160];
    std::snprintf(buf, sizeof(buf), "    \"%s\": %.3f%s\n", providers[p].c_str(), fps,
                  p + 1 < providers.size() ? "," : "");
    json += buf;
  }
  json += "  },\n";
  {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  \"culled_speedup\": %.3f\n",
                  exhaustive_fps > 0.0 ? culled_fps / exhaustive_fps : 0.0);
    json += buf;
  }
  json += "}\n";

  std::FILE* f = std::fopen(output_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "perf_smoke: cannot open %s\n", output_path.c_str());
    return 1;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  if (std::fclose(f) != 0 || written != json.size()) {
    std::fprintf(stderr, "perf_smoke: write to %s failed\n", output_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), stdout);
  return 0;
}
