#!/usr/bin/env python3
"""Selftests for tools/lint_determinism.py (ctest: lint_selftest).

The linter is a CI gate, so it gets the same treatment as check_perf: a
positive fixture (the rule fires) and a negative fixture (the compliant
idiom stays clean) for every rule ID in the table, plus the suppression
semantics and the stale-suppression cross-check. Fixtures are written to a
temp dir and linted as explicit paths with --root pointed at the temp dir,
so path-scoped rules (DET-STATIC-LOCAL, SER-FLOAT-FMT) see the repo-relative
layout they expect.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_determinism as lint  # noqa: E402


class LintFixtureCase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def run_lint(self, rel_path, source):
        """Writes `source` at root/rel_path and returns its findings."""
        path = os.path.join(self.root, rel_path)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(source)
        return lint.lint_file(path, rel_path)

    def assert_fires(self, rule_id, rel_path, source, line=None):
        findings = self.run_lint(rel_path, source)
        hits = [f for f in findings if f.rule_id == rule_id]
        self.assertTrue(hits, f"{rule_id} did not fire on:\n{source}\n"
                              f"got: {findings}")
        if line is not None:
            self.assertIn(line, [f.line for f in hits])

    def assert_clean(self, rel_path, source, rule_id=None):
        findings = self.run_lint(rel_path, source)
        if rule_id is not None:
            findings = [f for f in findings if f.rule_id == rule_id]
        self.assertEqual(findings, [],
                         f"expected clean but got {findings} on:\n{source}")


HPP_PREFIX = "#pragma once\n"


class UnorderedContainer(LintFixtureCase):
    def test_positive_map_and_set(self):
        self.assert_fires(
            "DET-UNORDERED-CONTAINER", "src/x/a.cpp",
            "#include <unordered_map>\n"
            "std::unordered_map<int, double> loads;\n")
        self.assert_fires(
            "DET-UNORDERED-CONTAINER", "src/x/a.cpp",
            "std::unordered_set<std::size_t> cells;\n")

    def test_negative_ordered_and_comment(self):
        self.assert_clean(
            "src/x/a.cpp",
            "#include <map>\n"
            "// an unordered_map here would break iteration order\n"
            "std::map<int, double> loads;\n")


class Wallclock(LintFixtureCase):
    def test_positive_each_source(self):
        for snippet in ("int r = rand();",
                        "srand(42);",
                        "std::random_device rd;",
                        "auto t = time(nullptr);",
                        "auto c = clock();",
                        "auto n = std::chrono::system_clock::now();",
                        "auto n = std::chrono::steady_clock::now();",
                        "auto n = std::chrono::high_resolution_clock::now();"):
            self.assert_fires("DET-WALLCLOCK", "src/x/a.cpp",
                              f"void f() {{ {snippet} }}\n")

    def test_negative_seeded_rng_and_identifiers(self):
        self.assert_clean(
            "src/x/a.cpp",
            "void f(common::Rng& rng) {\n"
            "  double u = rng.uniform();\n"
            "  double s = frame_time(3);  // suffix match must not fire\n"
            "  advance_clock_s(0.02);\n"
            "}\n", rule_id="DET-WALLCLOCK")

    def test_allowlisted_bench_file(self):
        # perf_smoke is wholesale-allowlisted: wall-clock is its purpose.
        self.assert_clean(
            "tools/perf_smoke.cpp",
            "auto t0 = std::chrono::steady_clock::now();\n",
            rule_id="DET-WALLCLOCK")

    def test_allowlisted_directory_prefix(self):
        # src/runner/ is directory-allowlisted (a trailing-"/" entry): the
        # supervisor's timeouts and backoff are wall-clock by design.
        self.assert_clean(
            "src/runner/supervisor.cpp",
            "auto now = std::chrono::steady_clock::now();\n",
            rule_id="DET-WALLCLOCK")
        # The prefix is a directory boundary, not a substring: a sibling
        # file whose name merely starts with "runner" still fires...
        self.assert_fires(
            "DET-WALLCLOCK", "src/runner_utils.cpp",
            "auto now = std::chrono::steady_clock::now();\n")
        # ...and simulation code stays guarded.
        self.assert_fires(
            "DET-WALLCLOCK", "src/sim/a.cpp",
            "auto now = std::chrono::steady_clock::now();\n")


class Shuffle(LintFixtureCase):
    def test_positive(self):
        self.assert_fires(
            "DET-SHUFFLE", "src/x/a.cpp",
            "std::shuffle(v.begin(), v.end(), gen);\n")

    def test_negative_index_sort(self):
        self.assert_clean(
            "src/x/a.cpp",
            "std::sort(idx.begin(), idx.end(),\n"
            "          [&](int a, int b) { return key[a] < key[b]; });\n")


class NonStrictSort(LintFixtureCase):
    def test_positive_lambda_leq(self):
        self.assert_fires(
            "DET-NONSTRICT-SORT", "src/x/a.cpp",
            "std::sort(v.begin(), v.end(),"
            " [](double a, double b) { return a <= b; });\n")

    def test_positive_stable_sort_geq(self):
        self.assert_fires(
            "DET-NONSTRICT-SORT", "src/x/a.cpp",
            "std::stable_sort(v.begin(), v.end(),"
            " [](const P& a, const P& b) { return a.w >= b.w; });\n")

    def test_negative_strict_comparator(self):
        self.assert_clean(
            "src/x/a.cpp",
            "std::sort(ranked.begin(), ranked.end(),\n"
            "          [](const auto& a, const auto& b)"
            " { return a.first > b.first; });\n")


class FloatEq(LintFixtureCase):
    def test_positive_literal_and_f64(self):
        self.assert_fires("DET-FLOAT-EQ", "src/x/a.cpp",
                          "if (x == 0.0) return;\n")
        self.assert_fires("DET-FLOAT-EQ", "src/x/a.cpp",
                          "if (1.5e-3 != y) return;\n")
        self.assert_fires("DET-FLOAT-EQ", "src/x/a.cpp",
                          "if (r.f64() != config_.frame_s) return false;\n")

    def test_negative_inequalities_and_ints(self):
        self.assert_clean(
            "src/x/a.cpp",
            "if (x <= 0.0) return;\n"
            "if (n == 0) return;\n"
            "if (std::abs(x - y) < 1e-9) return;\n", rule_id="DET-FLOAT-EQ")


class StaticLocal(LintFixtureCase):
    def test_positive_mutable_static(self):
        self.assert_fires(
            "DET-STATIC-LOCAL", "src/x/a.cpp",
            "void f() {\n"
            "  static int calls = 0;\n"
            "  ++calls;\n"
            "}\n", line=2)
        self.assert_fires(
            "DET-STATIC-LOCAL", "src/x/a.cpp",
            "double g() {\n"
            "  static std::vector<double> cache;\n"
            "  return cache.empty() ? 0.0 : cache[0];\n"
            "}\n")

    def test_negative_const_tables_and_decls(self):
        self.assert_clean(
            "src/x/a.cpp",
            "void f() {\n"
            "  static const int kTable[3] = {1, 2, 3};\n"
            "  static constexpr double kPi = 3.14159;\n"
            "}\n", rule_id="DET-STATIC-LOCAL")

    def test_out_of_scope_outside_src(self):
        # Path-scoped: tools/ bench scaffolding is exempt.
        self.assert_clean(
            "tools/perf_smoke.cpp",
            "void f() { static int calls = 0; ++calls; }\n",
            rule_id="DET-STATIC-LOCAL")


class PragmaOnce(LintFixtureCase):
    def test_positive_missing(self):
        self.assert_fires("PORT-PRAGMA-ONCE", "src/x/a.hpp",
                          "struct Foo { int x; };\n", line=1)

    def test_positive_commented_out_does_not_count(self):
        self.assert_fires("PORT-PRAGMA-ONCE", "src/x/a.hpp",
                          "// #pragma once\nstruct Foo { int x; };\n")

    def test_negative_present(self):
        self.assert_clean("src/x/a.hpp",
                          "#pragma once\nstruct Foo { int x; };\n")

    def test_not_applied_to_cpp(self):
        self.assert_clean("src/x/a.cpp", "struct Foo { int x; };\n",
                          rule_id="PORT-PRAGMA-ONCE")


class SerFloatFmt(LintFixtureCase):
    def test_positive_bare_float_formats(self):
        for fmt in ("%f", "%g", "%e", "%12f", "%lf"):
            self.assert_fires(
                "SER-FLOAT-FMT", "src/service/trace.cpp",
                f'std::snprintf(buf, sizeof(buf), "{fmt}", v);\n')

    def test_negative_17g_and_out_of_scope(self):
        self.assert_clean(
            "src/service/trace.cpp",
            'std::snprintf(buf, sizeof(buf), "%.17g", v);\n',
            rule_id="SER-FLOAT-FMT")
        # Only serialization paths are in scope; bench table output is not.
        self.assert_clean(
            "src/sim/metrics.cpp",
            'std::printf("%f\\n", fps);\n', rule_id="SER-FLOAT-FMT")


class Suppressions(LintFixtureCase):
    def test_same_line_suppression(self):
        self.assert_clean(
            "src/x/a.cpp",
            "if (x == 0.0) return;"
            "  // lint-allow(DET-FLOAT-EQ): exact-zero guard\n")

    def test_comment_only_line_covers_next_code_line(self):
        self.assert_clean(
            "src/x/a.cpp",
            "// lint-allow(DET-FLOAT-EQ): exact-zero guard\n"
            "if (x == 0.0) return;\n")

    def test_multiline_comment_block_covers_next_code_line(self):
        self.assert_clean(
            "src/x/a.cpp",
            "// lint-allow(DET-WALLCLOCK): bench-only timing span;\n"
            "// the duration never reaches simulation state\n"
            "auto t0 = std::chrono::steady_clock::now();\n")

    def test_suppression_is_rule_specific(self):
        # A DET-WALLCLOCK allow does not silence a DET-FLOAT-EQ finding.
        findings = self.run_lint(
            "src/x/a.cpp",
            "// lint-allow(DET-WALLCLOCK): wrong rule\n"
            "if (x == 0.0) return;\n")
        self.assertIn("DET-FLOAT-EQ", [f.rule_id for f in findings])

    def test_stale_suppression_is_an_error(self):
        findings = self.run_lint(
            "src/x/a.cpp",
            "// lint-allow(DET-FLOAT-EQ): nothing here anymore\n"
            "int n = 0;\n")
        self.assertEqual([f.rule_id for f in findings], ["LINT-STALE-ALLOW"])

    def test_unknown_rule_and_missing_reason_are_errors(self):
        findings = self.run_lint(
            "src/x/a.cpp",
            "// lint-allow(NO-SUCH-RULE): whatever\n"
            "int n = 0;\n")
        self.assertEqual([f.rule_id for f in findings], ["LINT-BAD-ALLOW"])
        findings = self.run_lint(
            "src/x/b.cpp",
            "if (x == 0.0) return;  // lint-allow(DET-FLOAT-EQ)\n")
        self.assertIn("LINT-BAD-ALLOW", [f.rule_id for f in findings])
        # ...and the unjustified finding still fires.
        self.assertIn("DET-FLOAT-EQ", [f.rule_id for f in findings])


class CommentAndStringStripping(LintFixtureCase):
    def test_comments_never_fire(self):
        self.assert_clean(
            "src/x/a.cpp",
            "// steady_clock would be wrong here; rand() too\n"
            "/* std::unordered_map<int,int> sketch;\n"
            "   if (x == 0.0) {} */\n"
            "int n = 0;\n")

    def test_strings_never_fire(self):
        self.assert_clean(
            "src/x/a.cpp",
            'const char* kHelp = "uses steady_clock and rand()";\n'
            'const char* kFmt = "%f";\n')

    def test_code_after_block_comment_still_fires(self):
        self.assert_fires(
            "DET-WALLCLOCK", "src/x/a.cpp",
            "/* block */ auto t = std::chrono::steady_clock::now();\n")


class RuleTableContract(LintFixtureCase):
    def test_rule_ids_unique_and_documented_format(self):
        ids = [r.rule_id for r in lint.RULES]
        self.assertEqual(len(ids), len(set(ids)))
        for rule_id in ids:
            self.assertRegex(rule_id, r"^(DET|PORT|SER)-[A-Z0-9-]+$")

    def test_every_rule_has_a_lint_rules_md_section(self):
        # The same mapping check_docs.sh enforces in CI, kept here so the
        # selftest fails fast locally when a rule lands undocumented.
        rules_md = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "lint_rules.md")
        with open(rules_md, encoding="utf-8") as f:
            doc = f.read()
        for rule in lint.RULES:
            self.assertIn(f"`{rule.rule_id}`", doc,
                          f"{rule.rule_id} missing from tools/lint_rules.md")


if __name__ == "__main__":
    unittest.main()
