// Scenario-sweep CLI: expands a named preset into its scenario grid, runs
// (scenario x replication) work items in parallel, and emits the merged
// metrics as CSV (default), JSON, or an aligned table.  Output is
// bit-identical for any --threads value, so sweeps are safely parallel.
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/admission/policy.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sim/channel_state.hpp"
#include "src/sweep/presets.hpp"
#include "src/sweep/sweep.hpp"

using namespace wcdma;

namespace {

void print_usage() {
  std::printf(
      "usage: sweep_main [options]\n"
      "  --preset NAME         sweep preset to run (default: smoke)\n"
      "  --list-presets        list registered presets and exit\n"
      "  --policy NAME         force an admission policy on the preset base\n"
      "  --list-policies       list registered admission policies and exit\n"
      "  --csi-provider NAME   force a channel-state provider\n"
      "                        (exhaustive|culled|fast; fast trades bit-identity\n"
      "                        for speed, see tests/test_statcheck.cpp)\n"
      "  --list-csi-providers  list registered channel-state providers and exit\n"
      "  --replications N      override the preset's replication count\n"
      "  --threads N           sweep worker threads (0 = inline; default: hardware)\n"
      "  --sim-threads N       intra-frame threads per simulator (0 = hardware;\n"
      "                        default: preset base, usually 1).  Metrics are\n"
      "                        bit-identical for every value\n"
      "  --seed N              override the master seed\n"
      "  --duration S          override per-scenario sim duration (seconds)\n"
      "  --warmup S            override per-scenario warmup (seconds)\n"
      "  --format csv|json|table   output format (default: csv)\n"
      "  --output FILE         write results to FILE instead of stdout\n"
      "  --progress            report per-item progress on stderr\n");
}

bool parse_size(const char* text, std::size_t* out) {
  // strtoull silently wraps negative input ("-1" -> 2^64-1); reject it.
  if (text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

bool parse_positive_double(const char* text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  if (!std::isfinite(v) || v <= 0.0) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset = "smoke";
  std::string format = "csv";
  std::string output_path;
  std::string policy;
  std::string csi_provider;
  std::size_t threads = common::default_thread_count();
  bool want_progress = false;
  bool have_replications = false, have_seed = false, have_duration = false;
  bool have_warmup = false, have_sim_threads = false;
  std::size_t sim_threads = 0;
  std::size_t replications = 0, seed = 0;
  double duration_s = 0.0, warmup_s = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sweep_main: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--list-presets") {
      for (const std::string& name : sweep::preset_names()) {
        const sweep::SweepSpec spec = sweep::make_preset(name);
        std::printf("%-18s %zu scenarios x %zu reps  %s\n", name.c_str(),
                    spec.scenario_count(), spec.replications,
                    sweep::preset_description(name).c_str());
      }
      return 0;
    } else if (arg == "--list-policies") {
      for (const std::string& name : admission::policy_names()) {
        std::printf("%-16s %s\n", name.c_str(),
                    admission::policy_description(name).c_str());
      }
      return 0;
    } else if (arg == "--list-csi-providers") {
      for (const std::string& name : sim::channel_provider_names()) {
        std::printf("%-12s %s\n", name.c_str(),
                    sim::channel_provider_description(name).c_str());
      }
      return 0;
    } else if (arg == "--preset") {
      preset = next_value();
    } else if (arg == "--policy") {
      policy = next_value();
    } else if (arg == "--csi-provider") {
      csi_provider = next_value();
    } else if (arg == "--format") {
      format = next_value();
    } else if (arg == "--output") {
      output_path = next_value();
    } else if (arg == "--replications") {
      have_replications = parse_size(next_value(), &replications);
      if (!have_replications || replications == 0) {
        std::fprintf(stderr, "sweep_main: bad --replications value\n");
        return 2;
      }
    } else if (arg == "--threads") {
      if (!parse_size(next_value(), &threads)) {
        std::fprintf(stderr, "sweep_main: bad --threads value\n");
        return 2;
      }
    } else if (arg == "--sim-threads") {
      have_sim_threads = parse_size(next_value(), &sim_threads);
      if (!have_sim_threads) {
        std::fprintf(stderr, "sweep_main: bad --sim-threads value\n");
        return 2;
      }
    } else if (arg == "--seed") {
      have_seed = parse_size(next_value(), &seed);
      if (!have_seed) {
        std::fprintf(stderr, "sweep_main: bad --seed value\n");
        return 2;
      }
    } else if (arg == "--duration") {
      have_duration = parse_positive_double(next_value(), &duration_s);
      if (!have_duration) {
        std::fprintf(stderr, "sweep_main: bad --duration value\n");
        return 2;
      }
    } else if (arg == "--warmup") {
      const char* text = next_value();
      char* end = nullptr;
      warmup_s = std::strtod(text, &end);
      have_warmup = end != text && *end == '\0' && std::isfinite(warmup_s) && warmup_s >= 0.0;
      if (!have_warmup) {
        std::fprintf(stderr, "sweep_main: bad --warmup value\n");
        return 2;
      }
    } else if (arg == "--progress") {
      want_progress = true;
    } else {
      std::fprintf(stderr, "sweep_main: unknown option %s\n", arg.c_str());
      print_usage();
      return 2;
    }
  }

  if (format != "csv" && format != "json" && format != "table") {
    std::fprintf(stderr, "sweep_main: unknown format %s\n", format.c_str());
    return 2;
  }
  if (!sweep::has_preset(preset)) {
    std::fprintf(stderr, "sweep_main: unknown preset %s (try --list-presets)\n",
                 preset.c_str());
    return 2;
  }
  if (!policy.empty() && !admission::has_policy(policy)) {
    std::fprintf(stderr, "sweep_main: unknown policy %s (available:", policy.c_str());
    for (const std::string& name : admission::policy_names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, ")\n");
    return 2;
  }
  if (!csi_provider.empty() && !sim::has_channel_provider(csi_provider)) {
    std::fprintf(stderr, "sweep_main: unknown csi provider %s (available:",
                 csi_provider.c_str());
    for (const std::string& name : sim::channel_provider_names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, ")\n");
    return 2;
  }

  sweep::SweepSpec spec = sweep::make_preset(preset);
  // A forced policy must win over the preset's own axes, which apply on top
  // of the base config: collapse any scheduler/policy axis to the single
  // forced value (the axis column survives with one value, so the output
  // stays truthful).  Likewise for a forced channel-state provider.
  if (!policy.empty()) {
    spec.base.admission.policy = policy;
    for (sweep::Axis& axis : spec.axes) {
      if (axis.name == "policy" || axis.name == "scheduler") {
        axis = sweep::axis_policy({policy});
      }
    }
  }
  if (!csi_provider.empty()) {
    spec.base.csi.provider = csi_provider;
    for (sweep::Axis& axis : spec.axes) {
      if (axis.name == "csi_provider") {
        axis = sweep::axis_csi_provider({csi_provider});
      }
    }
  }
  if (have_replications) spec.replications = replications;
  if (have_sim_threads) {
    spec.base.sim_threads = static_cast<int>(sim_threads);
    for (sweep::Axis& axis : spec.axes) {
      if (axis.name == "sim_threads") {
        axis = sweep::axis_sim_threads({static_cast<int>(sim_threads)});
      }
    }
  }
  if (have_seed) spec.base.seed = seed;
  if (have_duration) spec.base.sim_duration_s = duration_s;
  if (have_warmup) spec.base.warmup_s = warmup_s;
  if (spec.base.warmup_s >= spec.base.sim_duration_s) {
    std::fprintf(stderr, "sweep_main: warmup must be shorter than the duration\n");
    return 2;
  }

  sweep::ProgressFn progress;
  if (want_progress) {
    progress = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\rsweep: %zu/%zu items", done, total);
      if (done == total) std::fprintf(stderr, "\n");
    };
  }

  const sweep::SweepResult result = sweep::run_sweep(spec, threads, progress);

  std::string text;
  if (format == "csv") {
    text = sweep::to_csv(result);
  } else if (format == "json") {
    text = sweep::to_json(result);
  } else {
    text = sweep::to_table(result).render(
        "sweep " + result.name + ": " + std::to_string(result.scenarios.size()) +
        " scenarios x " + std::to_string(result.replications) + " reps");
  }

  if (output_path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
  } else {
    std::FILE* f = std::fopen(output_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "sweep_main: cannot open %s\n", output_path.c_str());
      return 1;
    }
    const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
    // fclose flushes; a full disk can surface only here, and a truncated
    // results file must not exit 0.
    if (std::fclose(f) != 0 || written != text.size()) {
      std::fprintf(stderr, "sweep_main: write to %s failed\n", output_path.c_str());
      return 1;
    }
  }
  return 0;
}
