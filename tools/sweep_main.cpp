// Scenario-sweep CLI: expands a named preset into its scenario grid, runs
// (scenario x replication) work items in parallel, and emits the merged
// metrics as CSV (default), JSON, or an aligned table.  Output is
// bit-identical for any --threads value, so sweeps are safely parallel.
//
// --workers N switches from the in-process thread pool to the
// fault-tolerant multi-process supervisor (src/runner/): N forked+exec'd
// copies of this binary each run one shard of the grid, checkpoint their
// progress, and are retried (resuming from the checkpoint) on crashes and
// timeouts.  The merged output stays byte-identical to the in-process run
// for any worker count.  --fault injects one deliberate worker failure for
// testing the recovery paths end to end.
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/admission/policy.hpp"
#include "src/common/thread_pool.hpp"
#include "src/runner/supervisor.hpp"
#include "src/runner/worker.hpp"
#include "src/sim/channel_state.hpp"
#include "src/sweep/presets.hpp"
#include "src/sweep/sweep.hpp"

using namespace wcdma;

namespace {

void print_usage() {
  std::printf(
      "usage: sweep_main [options]\n"
      "  --preset NAME         sweep preset to run (default: smoke)\n"
      "  --list-presets        list registered presets and exit\n"
      "  --policy NAME         force an admission policy on the preset base\n"
      "  --list-policies       list registered admission policies and exit\n"
      "  --csi-provider NAME   force a channel-state provider\n"
      "                        (exhaustive|culled|fast; fast trades bit-identity\n"
      "                        for speed, see tests/test_statcheck.cpp)\n"
      "  --list-csi-providers  list registered channel-state providers and exit\n"
      "  --replications N      override the preset's replication count\n"
      "  --threads N           sweep worker threads (0 = inline; default: hardware)\n"
      "  --sim-threads N       intra-frame threads per simulator (0 = hardware;\n"
      "                        default: preset base, usually 1).  Metrics are\n"
      "                        bit-identical for every value\n"
      "  --seed N              override the master seed\n"
      "  --duration S          override per-scenario sim duration (seconds)\n"
      "  --warmup S            override per-scenario warmup (seconds)\n"
      "  --format csv|json|table   output format (default: csv)\n"
      "  --output FILE         write results to FILE instead of stdout\n"
      "  --progress            report per-item progress on stderr\n"
      "  --workers N           run N supervised worker processes instead of\n"
      "                        in-process threads; output is byte-identical\n"
      "                        either way.  Crashed/stalled workers are\n"
      "                        retried, resuming from their checkpoints\n"
      "  --runner-dir DIR      shard work files for --workers (default: a\n"
      "                        fresh temp dir, removed on success)\n"
      "  --timeout S           per-worker-attempt wall-clock budget (0 = none)\n"
      "  --max-retries N       retries per shard beyond the first attempt\n"
      "                        (default: 2)\n"
      "  --backoff S           base retry delay; doubles per retry, no jitter\n"
      "                        (default: 0.05)\n"
      "  --checkpoint-every N  frames between worker checkpoints (default:\n"
      "                        256; 0 disables checkpointing)\n"
      "  --fault SPEC          inject one worker fault (testing), e.g.\n"
      "                        kill:shard=1,frame=50  stall:shard=0,frame=10\n"
      "                        corrupt-checkpoint:shard=0,mode=bitflip\n"
      "                        drop-result:shard=2\n"
      "  --strict-checkpoint   corrupt checkpoint = hard error instead of\n"
      "                        discard-and-restart\n");
}

bool parse_size(const char* text, std::size_t* out) {
  // strtoull silently wraps negative input ("-1" -> 2^64-1); reject it.
  if (text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

bool parse_positive_double(const char* text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  if (!std::isfinite(v) || v <= 0.0) return false;
  *out = v;
  return true;
}

/// Path of the running binary, for the supervisor's worker exec lines;
/// argv[0] is the fallback when /proc is unavailable.
std::string self_exe_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset = "smoke";
  std::string format = "csv";
  std::string output_path;
  std::string policy;
  std::string csi_provider;
  std::size_t threads = common::default_thread_count();
  bool want_progress = false;
  bool have_replications = false, have_seed = false, have_duration = false;
  bool have_warmup = false, have_sim_threads = false;
  std::size_t sim_threads = 0;
  std::size_t replications = 0, seed = 0;
  double duration_s = 0.0, warmup_s = 0.0;

  // Multi-process supervision (--workers) and its knobs.
  std::size_t workers = 0;  // 0 = in-process thread pool
  std::string runner_dir;
  double timeout_s = 0.0;
  std::size_t max_retries = 2;
  double backoff_s = 0.05;
  std::size_t checkpoint_every = 256;
  std::string fault_spec;
  bool strict_checkpoint = false;

  // Hidden worker-mode flags, appended by the supervisor when it execs
  // this binary as a shard worker.
  bool is_worker = false;
  std::size_t worker_shard = 0, worker_count = 1, worker_attempt = 0;
  std::string worker_out, worker_checkpoint;
  bool worker_resume = false;

  // Config-shaping flags replayed verbatim on worker exec lines so every
  // worker rebuilds the exact spec the supervisor validated.
  std::vector<std::string> shape_args;
  auto shape = [&](const char* flag, const char* value) {
    shape_args.push_back(flag);
    shape_args.push_back(value);
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sweep_main: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--list-presets") {
      for (const std::string& name : sweep::preset_names()) {
        const sweep::SweepSpec spec = sweep::make_preset(name);
        std::printf("%-18s %zu scenarios x %zu reps  %s\n", name.c_str(),
                    spec.scenario_count(), spec.replications,
                    sweep::preset_description(name).c_str());
      }
      return 0;
    } else if (arg == "--list-policies") {
      for (const std::string& name : admission::policy_names()) {
        std::printf("%-16s %s\n", name.c_str(),
                    admission::policy_description(name).c_str());
      }
      return 0;
    } else if (arg == "--list-csi-providers") {
      for (const std::string& name : sim::channel_provider_names()) {
        std::printf("%-12s %s\n", name.c_str(),
                    sim::channel_provider_description(name).c_str());
      }
      return 0;
    } else if (arg == "--preset") {
      preset = next_value();
      shape("--preset", preset.c_str());
    } else if (arg == "--policy") {
      policy = next_value();
      shape("--policy", policy.c_str());
    } else if (arg == "--csi-provider") {
      csi_provider = next_value();
      shape("--csi-provider", csi_provider.c_str());
    } else if (arg == "--format") {
      format = next_value();
    } else if (arg == "--output") {
      output_path = next_value();
    } else if (arg == "--replications") {
      const char* text = next_value();
      have_replications = parse_size(text, &replications);
      if (!have_replications || replications == 0) {
        std::fprintf(stderr, "sweep_main: bad --replications value\n");
        return 2;
      }
      shape("--replications", text);
    } else if (arg == "--threads") {
      if (!parse_size(next_value(), &threads)) {
        std::fprintf(stderr, "sweep_main: bad --threads value\n");
        return 2;
      }
    } else if (arg == "--sim-threads") {
      const char* text = next_value();
      have_sim_threads = parse_size(text, &sim_threads);
      if (!have_sim_threads) {
        std::fprintf(stderr, "sweep_main: bad --sim-threads value\n");
        return 2;
      }
      shape("--sim-threads", text);
    } else if (arg == "--seed") {
      const char* text = next_value();
      have_seed = parse_size(text, &seed);
      if (!have_seed) {
        std::fprintf(stderr, "sweep_main: bad --seed value\n");
        return 2;
      }
      shape("--seed", text);
    } else if (arg == "--duration") {
      const char* text = next_value();
      have_duration = parse_positive_double(text, &duration_s);
      if (!have_duration) {
        std::fprintf(stderr, "sweep_main: bad --duration value\n");
        return 2;
      }
      shape("--duration", text);
    } else if (arg == "--warmup") {
      const char* text = next_value();
      char* end = nullptr;
      warmup_s = std::strtod(text, &end);
      have_warmup = end != text && *end == '\0' && std::isfinite(warmup_s) && warmup_s >= 0.0;
      if (!have_warmup) {
        std::fprintf(stderr, "sweep_main: bad --warmup value\n");
        return 2;
      }
      shape("--warmup", text);
    } else if (arg == "--progress") {
      want_progress = true;
    } else if (arg == "--workers") {
      if (!parse_size(next_value(), &workers) || workers == 0) {
        std::fprintf(stderr, "sweep_main: bad --workers value (need >= 1)\n");
        return 2;
      }
    } else if (arg == "--runner-dir") {
      runner_dir = next_value();
    } else if (arg == "--timeout") {
      if (!parse_positive_double(next_value(), &timeout_s)) {
        std::fprintf(stderr, "sweep_main: bad --timeout value\n");
        return 2;
      }
    } else if (arg == "--max-retries") {
      if (!parse_size(next_value(), &max_retries)) {
        std::fprintf(stderr, "sweep_main: bad --max-retries value\n");
        return 2;
      }
    } else if (arg == "--backoff") {
      if (!parse_positive_double(next_value(), &backoff_s)) {
        std::fprintf(stderr, "sweep_main: bad --backoff value\n");
        return 2;
      }
    } else if (arg == "--checkpoint-every") {
      if (!parse_size(next_value(), &checkpoint_every)) {
        std::fprintf(stderr, "sweep_main: bad --checkpoint-every value\n");
        return 2;
      }
    } else if (arg == "--fault") {
      fault_spec = next_value();
    } else if (arg == "--strict-checkpoint") {
      strict_checkpoint = true;
    } else if (arg == "--worker-shard") {
      is_worker = true;
      if (!parse_size(next_value(), &worker_shard)) {
        std::fprintf(stderr, "sweep_main: bad --worker-shard value\n");
        return 2;
      }
    } else if (arg == "--worker-count") {
      if (!parse_size(next_value(), &worker_count) || worker_count == 0) {
        std::fprintf(stderr, "sweep_main: bad --worker-count value\n");
        return 2;
      }
    } else if (arg == "--worker-out") {
      worker_out = next_value();
    } else if (arg == "--worker-checkpoint") {
      worker_checkpoint = next_value();
    } else if (arg == "--worker-attempt") {
      if (!parse_size(next_value(), &worker_attempt)) {
        std::fprintf(stderr, "sweep_main: bad --worker-attempt value\n");
        return 2;
      }
    } else if (arg == "--worker-resume") {
      worker_resume = true;
    } else {
      std::fprintf(stderr, "sweep_main: unknown option %s\n", arg.c_str());
      print_usage();
      return 2;
    }
  }

  if (format != "csv" && format != "json" && format != "table") {
    std::fprintf(stderr, "sweep_main: unknown format %s\n", format.c_str());
    return 2;
  }
  if (!sweep::has_preset(preset)) {
    std::fprintf(stderr, "sweep_main: unknown preset %s (try --list-presets)\n",
                 preset.c_str());
    return 2;
  }
  if (!policy.empty() && !admission::has_policy(policy)) {
    std::fprintf(stderr, "sweep_main: unknown policy %s (available:", policy.c_str());
    for (const std::string& name : admission::policy_names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, ")\n");
    return 2;
  }
  if (!csi_provider.empty() && !sim::has_channel_provider(csi_provider)) {
    std::fprintf(stderr, "sweep_main: unknown csi provider %s (available:",
                 csi_provider.c_str());
    for (const std::string& name : sim::channel_provider_names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, ")\n");
    return 2;
  }

  sweep::SweepSpec spec = sweep::make_preset(preset);
  // A forced policy must win over the preset's own axes, which apply on top
  // of the base config: collapse any scheduler/policy axis to the single
  // forced value (the axis column survives with one value, so the output
  // stays truthful).  Likewise for a forced channel-state provider.
  if (!policy.empty()) {
    spec.base.admission.policy = policy;
    for (sweep::Axis& axis : spec.axes) {
      if (axis.name == "policy" || axis.name == "scheduler") {
        axis = sweep::axis_policy({policy});
      }
    }
  }
  if (!csi_provider.empty()) {
    spec.base.csi.provider = csi_provider;
    for (sweep::Axis& axis : spec.axes) {
      if (axis.name == "csi_provider") {
        axis = sweep::axis_csi_provider({csi_provider});
      }
    }
  }
  if (have_replications) spec.replications = replications;
  if (have_sim_threads) {
    spec.base.sim_threads = static_cast<int>(sim_threads);
    for (sweep::Axis& axis : spec.axes) {
      if (axis.name == "sim_threads") {
        axis = sweep::axis_sim_threads({static_cast<int>(sim_threads)});
      }
    }
  }
  if (have_seed) spec.base.seed = seed;
  if (have_duration) spec.base.sim_duration_s = duration_s;
  if (have_warmup) spec.base.warmup_s = warmup_s;
  if (spec.base.warmup_s >= spec.base.sim_duration_s) {
    std::fprintf(stderr, "sweep_main: warmup must be shorter than the duration\n");
    return 2;
  }

  runner::FaultPlan fault;
  if (!fault_spec.empty()) {
    std::string why;
    if (!runner::FaultPlan::parse(fault_spec, &fault, &why)) {
      std::fprintf(stderr, "sweep_main: bad --fault spec: %s\n", why.c_str());
      return 2;
    }
  }

  if (is_worker) {
    // Exec'd by the supervisor: run one shard and exit with a worker code.
    if (worker_out.empty() || worker_checkpoint.empty()) {
      std::fprintf(stderr,
                   "sweep_main: worker mode needs --worker-out and "
                   "--worker-checkpoint\n");
      return 2;
    }
    runner::WorkerJob job;
    job.spec = spec;
    job.shard = worker_shard;
    job.workers = worker_count;
    job.result_path = worker_out;
    job.checkpoint_path = worker_checkpoint;
    job.checkpoint_every_frames = static_cast<std::int64_t>(checkpoint_every);
    job.resume = worker_resume;
    job.fault = fault;
    job.attempt = static_cast<int>(worker_attempt);
    return runner::run_worker(job);
  }

  sweep::SweepResult supervised_result;
  if (workers > 0) {
    runner::SupervisorOptions options;
    options.workers = workers;
    options.timeout_s = timeout_s;
    options.max_retries = static_cast<int>(max_retries);
    options.backoff_base_s = backoff_s;
    options.checkpoint_every_frames = static_cast<std::int64_t>(checkpoint_every);
    options.fault = fault;
    options.strict_checkpoint = strict_checkpoint;

    bool made_temp_dir = false;
    if (runner_dir.empty()) {
      char tmpl[] = "/tmp/wcdma-runner-XXXXXX";
      if (!mkdtemp(tmpl)) {
        std::fprintf(stderr, "sweep_main: cannot create a runner temp dir\n");
        return 1;
      }
      runner_dir = tmpl;
      made_temp_dir = true;
    } else if (mkdir(runner_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "sweep_main: cannot create runner dir %s\n",
                   runner_dir.c_str());
      return 1;
    }
    options.work_dir = runner_dir;

    std::vector<std::string> worker_argv;
    worker_argv.push_back(self_exe_path(argv[0]));
    worker_argv.insert(worker_argv.end(), shape_args.begin(), shape_args.end());

    const runner::SupervisorResult sup =
        runner::run_supervised_sweep(spec, options, worker_argv);
    if (!sup.ok) {
      std::fprintf(stderr, "sweep_main: %s\n", sup.error.c_str());
      // The work dir is kept for post-mortem when the run fails.
      return 1;
    }
    if (made_temp_dir) rmdir(runner_dir.c_str());
    supervised_result = sup.result;
  }

  sweep::ProgressFn progress;
  if (want_progress) {
    progress = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\rsweep: %zu/%zu items", done, total);
      if (done == total) std::fprintf(stderr, "\n");
    };
  }

  const sweep::SweepResult result =
      workers > 0 ? supervised_result
                  : sweep::run_sweep(spec, threads, progress);

  std::string text;
  if (format == "csv") {
    text = sweep::to_csv(result);
  } else if (format == "json") {
    text = sweep::to_json(result);
  } else {
    text = sweep::to_table(result).render(
        "sweep " + result.name + ": " + std::to_string(result.scenarios.size()) +
        " scenarios x " + std::to_string(result.replications) + " reps");
  }

  if (output_path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
  } else {
    std::FILE* f = std::fopen(output_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "sweep_main: cannot open %s\n", output_path.c_str());
      return 1;
    }
    const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
    // fclose flushes; a full disk can surface only here, and a truncated
    // results file must not exit 0.
    if (std::fclose(f) != 0 || written != text.size()) {
      std::fprintf(stderr, "sweep_main: write to %s failed\n", output_path.c_str());
      return 1;
    }
  }
  return 0;
}
