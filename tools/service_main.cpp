// Service-core CLI: drives the message-driven AdmissionService over one
// canonical scenario.  Four jobs, composable in one invocation:
//
//   --record FILE       run internal traffic, re-emit the run as a v1 JSONL
//                       event trace (src/service/trace.hpp)
//   --replay FILE       pump a recorded trace through a fresh service; the
//                       replayed metrics are bit-identical to the recording
//                       run's (pinned by tests/test_service.cpp)
//   --checkpoint FILE   snapshot the full simulator state at --checkpoint-at
//                       and keep running; --resume FILE restores and runs
//                       the remaining frames to the same end state
//   --bench             time the per-frame admission-decision phase and
//                       write decisions/sec + p50/p99 latency JSON for the
//                       tools/check_perf.py regression gate
//
// Metrics print as %.17g (--metrics-out), so a replayed or resumed run can
// be compared to the original with a plain byte-wise `cmp` in CI.
#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/admission/policy.hpp"
#include "src/scenario/experiments.hpp"
#include "src/service/service.hpp"
#include "src/sim/channel_state.hpp"
#include "src/sim/simulator.hpp"

using namespace wcdma;

namespace {

void print_usage() {
  std::printf(
      "usage: service_main [options]\n"
      "  --scenario NAME       hotspot|wide (default: hotspot)\n"
      "  --policy NAME         admission policy (default: scenario's)\n"
      "  --csi-provider NAME   channel-state provider (default: scenario's)\n"
      "  --seed N              master seed (default: 42)\n"
      "  --duration S          sim duration in seconds (default: 8)\n"
      "  --warmup S            warmup in seconds (default: 2)\n"
      "  --voice-users N       override voice population\n"
      "  --data-users N        override data population\n"
      "  --record FILE         write the run as a JSONL event trace\n"
      "  --replay FILE         replay a recorded trace instead of running\n"
      "  --checkpoint FILE     write a snapshot archive at --checkpoint-at\n"
      "  --checkpoint-at K     frame index to snapshot at (default: 0)\n"
      "  --resume FILE         restore a snapshot and run the remaining frames\n"
      "  --metrics-out FILE    write final metrics as %%.17g JSON\n"
      "  --bench               time the admission-decision phase\n"
      "  --bench-out FILE      bench JSON path (default:\n"
      "                        BENCH_decision_latency.json)\n");
}

bool parse_u64(const char* text, std::uint64_t* out) {
  if (text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_nonneg_double(const char* text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || !std::isfinite(v) || v < 0.0) return false;
  *out = v;
  return true;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_moments(std::string* out, const char* key,
                    const common::StreamingMoments& m) {
  *out += std::string(",\"") + key + "\":{\"n\":" + std::to_string(m.count()) +
          ",\"mean\":" + fmt_double(m.mean()) +
          ",\"var\":" + fmt_double(m.variance()) +
          ",\"min\":" + fmt_double(m.min()) + ",\"max\":" + fmt_double(m.max()) +
          "}";
}

/// Deterministic %.17g rendering of every user-visible accumulator, so two
/// bit-identical runs produce byte-identical files (CI compares with cmp).
std::string metrics_json(const sim::SimMetrics& m) {
  std::string out = "{\"metrics\":{";
  out += "\"observed_s\":" + fmt_double(m.observed_s);
  out += ",\"data_bits_delivered\":" + fmt_double(m.data_bits_delivered);
  append_moments(&out, "burst_delay_s", m.burst_delay_s);
  append_moments(&out, "queue_delay_s", m.queue_delay_s);
  append_moments(&out, "granted_sgr", m.granted_sgr);
  append_moments(&out, "pending_queue_len", m.pending_queue_len);
  append_moments(&out, "forward_load_fraction", m.forward_load_fraction);
  append_moments(&out, "reverse_rise_db", m.reverse_rise_db);
  append_moments(&out, "voice_sir_error_db", m.voice_sir_error_db);
  out += ",\"p95_delay_s\":" + fmt_double(m.p95_delay_s());
  out += ",\"requests_seen\":" + std::to_string(m.requests_seen);
  out += ",\"grants\":" + std::to_string(m.grants);
  out += ",\"reject_rounds\":" + std::to_string(m.reject_rounds);
  out += ",\"carrier_hand_downs\":" + std::to_string(m.carrier_hand_downs);
  out += ",\"sch_frames\":" + std::to_string(m.sch_frames);
  out += ",\"sch_outage_frames\":" + std::to_string(m.sch_outage_frames);
  out += ",\"ber_violation_frames\":" + std::to_string(m.ber_violation_frames);
  out += ",\"bs_power_saturations\":" + std::to_string(m.bs_power_saturations);
  out += ",\"mobile_power_saturations\":" +
         std::to_string(m.mobile_power_saturations);
  out += ",\"overload_sheds\":" + std::to_string(m.overload_sheds);
  out += "}}\n";
  return out;
}

bool write_file(const std::string& path, const void* data, std::size_t size) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const std::size_t written = std::fwrite(data, 1, size, f);
  return std::fclose(f) == 0 && written == size;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  out->clear();
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

/// Nearest-rank percentile of an unsorted sample (copies; bench-sized data).
double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(xs.size())));
  return xs[std::min(xs.size() - 1, rank > 0 ? rank - 1 : 0)];
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario = "hotspot";
  std::string policy, csi_provider;
  std::string record_path, replay_path, checkpoint_path, resume_path;
  std::string metrics_path;
  std::string bench_path = "BENCH_decision_latency.json";
  std::uint64_t seed = 42;
  std::uint64_t checkpoint_at = 0;
  std::uint64_t voice_users = 0, data_users = 0;
  bool have_voice = false, have_data = false, want_bench = false;
  double duration_s = 8.0, warmup_s = 2.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "service_main: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    auto need_u64 = [&](std::uint64_t* out) {
      if (!parse_u64(next_value(), out)) {
        std::fprintf(stderr, "service_main: bad %s value\n", arg.c_str());
        std::exit(2);
      }
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--scenario") {
      scenario = next_value();
    } else if (arg == "--policy") {
      policy = next_value();
    } else if (arg == "--csi-provider") {
      csi_provider = next_value();
    } else if (arg == "--seed") {
      need_u64(&seed);
    } else if (arg == "--duration") {
      if (!parse_nonneg_double(next_value(), &duration_s) || duration_s <= 0.0) {
        std::fprintf(stderr, "service_main: bad --duration value\n");
        return 2;
      }
    } else if (arg == "--warmup") {
      if (!parse_nonneg_double(next_value(), &warmup_s)) {
        std::fprintf(stderr, "service_main: bad --warmup value\n");
        return 2;
      }
    } else if (arg == "--voice-users") {
      need_u64(&voice_users);
      have_voice = true;
    } else if (arg == "--data-users") {
      need_u64(&data_users);
      have_data = true;
    } else if (arg == "--record") {
      record_path = next_value();
    } else if (arg == "--replay") {
      replay_path = next_value();
    } else if (arg == "--checkpoint") {
      checkpoint_path = next_value();
    } else if (arg == "--checkpoint-at") {
      need_u64(&checkpoint_at);
    } else if (arg == "--resume") {
      resume_path = next_value();
    } else if (arg == "--metrics-out") {
      metrics_path = next_value();
    } else if (arg == "--bench") {
      want_bench = true;
    } else if (arg == "--bench-out") {
      bench_path = next_value();
    } else {
      std::fprintf(stderr, "service_main: unknown option %s\n", arg.c_str());
      print_usage();
      return 2;
    }
  }

  sim::SystemConfig cfg;
  if (scenario == "hotspot") {
    cfg = scenario::hotspot_cell_config(seed);
  } else if (scenario == "wide") {
    cfg = scenario::wide_area_config(seed);
  } else {
    std::fprintf(stderr, "service_main: unknown scenario %s (hotspot|wide)\n",
                 scenario.c_str());
    return 2;
  }
  cfg.sim_duration_s = duration_s;
  cfg.warmup_s = warmup_s;
  if (cfg.warmup_s >= cfg.sim_duration_s) {
    std::fprintf(stderr, "service_main: warmup must be shorter than duration\n");
    return 2;
  }
  if (have_voice) cfg.voice.users = static_cast<int>(voice_users);
  if (have_data) cfg.data.users = static_cast<int>(data_users);
  if (!policy.empty()) {
    if (!admission::has_policy(policy)) {
      std::fprintf(stderr, "service_main: unknown policy %s\n", policy.c_str());
      return 2;
    }
    cfg.admission.policy = policy;
  }
  if (!csi_provider.empty()) {
    if (!sim::has_channel_provider(csi_provider)) {
      std::fprintf(stderr, "service_main: unknown csi provider %s\n",
                   csi_provider.c_str());
      return 2;
    }
    cfg.csi.provider = csi_provider;
  }
  if (!replay_path.empty() &&
      !(record_path.empty() && resume_path.empty() && checkpoint_path.empty())) {
    std::fprintf(stderr,
                 "service_main: --replay excludes --record/--checkpoint/--resume\n");
    return 2;
  }

  const auto total_frames =
      static_cast<std::int64_t>(std::llround(cfg.sim_duration_s / cfg.frame_s));

  sim::SimMetrics final_metrics;

  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::fprintf(stderr, "service_main: cannot open %s\n", replay_path.c_str());
      return 1;
    }
    const service::ReplayResult result = service::replay_trace(cfg, in);
    if (!result.ok) {
      std::fprintf(stderr, "service_main: replay failed: %s\n",
                   result.error.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "replayed %lld ticks, %lld requests (%lld acks, %lld nacks)\n",
                 static_cast<long long>(result.counters.ticks),
                 static_cast<long long>(result.counters.requests),
                 static_cast<long long>(result.counters.acks),
                 static_cast<long long>(result.counters.nacks));
    final_metrics = result.metrics;
  } else {
    sim::Simulator sim(cfg);
    if (want_bench) sim.enable_decision_timing(true);

    std::int64_t start_frame = 0;
    if (!resume_path.empty()) {
      std::vector<std::uint8_t> bytes;
      if (!read_file(resume_path, &bytes)) {
        std::fprintf(stderr, "service_main: cannot read %s\n", resume_path.c_str());
        return 1;
      }
      if (!sim.restore(bytes)) {
        std::fprintf(stderr,
                     "service_main: snapshot does not match this config\n");
        return 1;
      }
      start_frame = sim.frame_index();
      std::fprintf(stderr, "resumed at frame %lld\n",
                   static_cast<long long>(start_frame));
    }

    std::ofstream trace_out;
    if (!record_path.empty()) {
      trace_out.open(record_path);
      if (!trace_out) {
        std::fprintf(stderr, "service_main: cannot open %s\n", record_path.c_str());
        return 1;
      }
    }
    // The recorder must exist while frames step (its observer hook re-emits
    // arrivals), so both paths run through the same loop with an optional
    // recorder wrapping the simulator.
    {
      std::unique_ptr<service::TraceRecorder> recorder;
      if (!record_path.empty()) {
        recorder = std::make_unique<service::TraceRecorder>(sim, trace_out);
      }
      auto run_span = [&](std::int64_t frames) {
        if (frames <= 0) return;
        if (recorder) {
          recorder->run_frames(frames);
        } else {
          for (std::int64_t f = 0; f < frames; ++f) sim.step_frame();
        }
      };
      if (!checkpoint_path.empty()) {
        const auto at = static_cast<std::int64_t>(checkpoint_at);
        if (at < start_frame || at > total_frames) {
          std::fprintf(stderr, "service_main: --checkpoint-at out of range\n");
          return 1;
        }
        run_span(at - start_frame);
        const std::vector<std::uint8_t> snap = sim.snapshot();
        if (!write_file(checkpoint_path, snap.data(), snap.size())) {
          std::fprintf(stderr, "service_main: write to %s failed\n",
                       checkpoint_path.c_str());
          return 1;
        }
        std::fprintf(stderr, "checkpoint at frame %lld: %zu bytes\n",
                     static_cast<long long>(at), snap.size());
        start_frame = at;
      }
      run_span(total_frames - start_frame);
    }
    if (!record_path.empty()) {
      trace_out.close();
      if (!trace_out) {
        std::fprintf(stderr, "service_main: write to %s failed\n",
                     record_path.c_str());
        return 1;
      }
    }
    final_metrics = sim.metrics();

    if (want_bench) {
      const std::vector<double>& times = sim.decision_frame_times_s();
      double total_s = 0.0;
      for (double t : times) total_s += t;
      const double decisions = static_cast<double>(sim.decisions_made());
      const double mean_us =
          times.empty() ? 0.0 : 1e6 * total_s / static_cast<double>(times.size());
      std::string out = "{\"bench\":\"decision_latency\",\"v\":1";
      out += ",\"scenario\":\"" + scenario + "\"";
      out += ",\"policy\":\"" + sim.policy_name() + "\"";
      out += ",\"provider\":\"" + sim.channel_provider_name() + "\"";
      out += ",\"seed\":" + std::to_string(cfg.seed);
      out += ",\"frames\":" + std::to_string(times.size());
      out += ",\"decisions\":" + std::to_string(sim.decisions_made());
      out += ",\"decision_time_s\":" + fmt_double(total_s);
      out += ",\"decisions_per_s\":" +
             fmt_double(total_s > 0.0 ? decisions / total_s : 0.0);
      out += ",\"frame_mean_us\":" + fmt_double(mean_us);
      out += ",\"frame_p50_us\":" + fmt_double(1e6 * percentile(times, 0.50));
      out += ",\"frame_p99_us\":" + fmt_double(1e6 * percentile(times, 0.99));
      out += "}\n";
      if (!write_file(bench_path, out.data(), out.size())) {
        std::fprintf(stderr, "service_main: write to %s failed\n",
                     bench_path.c_str());
        return 1;
      }
      std::fprintf(stderr, "bench: %s decisions/s, p99 %s us -> %s\n",
                   fmt_double(total_s > 0.0 ? decisions / total_s : 0.0).c_str(),
                   fmt_double(1e6 * percentile(times, 0.99)).c_str(),
                   bench_path.c_str());
    }
  }

  const std::string text = metrics_json(final_metrics);
  if (metrics_path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
  } else if (!write_file(metrics_path, text.data(), text.size())) {
    std::fprintf(stderr, "service_main: write to %s failed\n",
                 metrics_path.c_str());
    return 1;
  }
  return 0;
}
