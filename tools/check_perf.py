#!/usr/bin/env python3
"""Perf regression gate over BENCH_frames_per_sec.json.

Compares a freshly measured perf_smoke JSON against the committed baseline:
every (cells, users, provider, sim_threads) entry present in BOTH files must
reach at least (1 - tolerance) of the baseline frames/sec.  Entries new in
the fresh file (new scale points, new providers) pass by definition; entries
that disappeared fail, so scale points cannot be silently dropped.

Schema-2 files carry {"scales": [{"cells", "users", "frames", "entries":
[{"provider", "sim_threads", "fps"}]}]}; the PR 3 schema-1 layout
({"providers": {name: fps}}) is also accepted for the baseline side, mapped
to the 19-cell scale at sim_threads=1.

Two additional gates (PR 5, the relaxed-precision `fast` provider):
  --require-provider NAME   fail unless the fresh run has at least one NAME
                            entry (a provider silently dropped from the
                            registry would otherwise pass as "missing
                            baseline rows are new");
  --ratio NUM:DEN:FLOOR     at every scale where both providers have a
                            sim_threads=1 entry in the fresh run, require
                            fps[NUM] / fps[DEN] >= FLOOR (e.g.
                            fast:culled:1.3 keeps the fast provider's win
                            from silently eroding).

One gate for PR 6 (far-field aggregation, 127-cell worlds):
  --cost-scaling PROVIDER:BASE_CELLS:BIG_CELLS:FACTOR
                            per-user frame cost 1 / (fps x users) at
                            sim_threads=1 on the BIG_CELLS grid must be at
                            most FACTOR times the BASE_CELLS grid's (e.g.
                            culled:19:127:1.3 -- radius-bounded candidate
                            sets plus the far-field aggregate keep the
                            per-user cost flat as the world grows).

The same gate also accepts the service_main decision-latency schema
({"bench": "decision_latency", ...}, PR 7): when both files carry it the
comparison switches to decisions/sec (must reach (1 - tolerance) of the
baseline) and p99 per-frame decision latency (must stay under
(1 + tolerance) x the baseline), after checking that the two benches ran
the same (scenario, policy, provider, seed) point.

Usage: check_perf.py BASELINE_JSON FRESH_JSON [--tolerance 0.20]
           [--require-provider NAME ...] [--ratio NUM:DEN:FLOOR ...]
           [--cost-scaling PROVIDER:BASE:BIG:FACTOR ...]
"""

import argparse
import json
import sys


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def is_decision_latency(doc):
    return doc.get("bench") == "decision_latency"


def check_decision_latency(baseline, fresh, tolerance):
    """Returns a list of failure strings (empty = pass)."""
    failures = []
    for field in ("scenario", "policy", "provider", "seed"):
        if baseline.get(field) != fresh.get(field):
            failures.append(
                f"bench fingerprint mismatch: {field} "
                f"{baseline.get(field)!r} vs {fresh.get(field)!r}")
    if failures:
        return failures

    base_rate, fresh_rate = baseline["decisions_per_s"], fresh["decisions_per_s"]
    floor = base_rate * (1.0 - tolerance)
    status = "ok" if fresh_rate >= floor else "REGRESSED"
    print(f"check_perf: decisions/s: base {base_rate:.0f} -> fresh "
          f"{fresh_rate:.0f} (floor {floor:.0f}) {status}")
    if fresh_rate < floor:
        failures.append(
            f"decisions/s {fresh_rate:.0f} < floor {floor:.0f} "
            f"({base_rate:.0f} - {tolerance:.0%})")

    base_p99, fresh_p99 = baseline["frame_p99_us"], fresh["frame_p99_us"]
    cap = base_p99 * (1.0 + tolerance)
    status = "ok" if fresh_p99 <= cap else "REGRESSED"
    print(f"check_perf: p99 decision latency: base {base_p99:.1f} -> fresh "
          f"{fresh_p99:.1f} us (cap {cap:.1f}) {status}")
    if fresh_p99 > cap:
        failures.append(
            f"p99 decision latency {fresh_p99:.1f} us > cap {cap:.1f} us "
            f"({base_p99:.1f} + {tolerance:.0%})")
    return failures


def load_entries(path):
    doc = load_doc(path)
    entries = {}
    if "scales" in doc:  # schema 2
        for scale in doc["scales"]:
            for e in scale["entries"]:
                key = (scale["cells"], scale["users"], e["provider"], e["sim_threads"])
                entries[key] = e["fps"]
    elif "providers" in doc:  # schema 1 (PR 3)
        for provider, fps in doc["providers"].items():
            entries[(doc["cells"], doc["users"], provider, 1)] = fps
    else:
        sys.exit(f"check_perf: {path} is not a recognised perf_smoke JSON")
    return entries


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    parser.add_argument("--require-provider", action="append", default=[],
                        metavar="NAME",
                        help="fail unless the fresh run has NAME entries")
    parser.add_argument("--ratio", action="append", default=[],
                        metavar="NUM:DEN:FLOOR",
                        help="require fps[NUM]/fps[DEN] >= FLOOR at "
                             "sim_threads=1 wherever both exist")
    parser.add_argument("--cost-scaling", action="append", default=[],
                        metavar="PROVIDER:BASE:BIG:FACTOR",
                        help="require per-user frame cost on the BIG-cell "
                             "grid <= FACTOR x the BASE-cell grid's "
                             "(sim_threads=1, fresh run)")
    args = parser.parse_args()

    baseline_doc = load_doc(args.baseline)
    fresh_doc = load_doc(args.fresh)
    if is_decision_latency(baseline_doc) or is_decision_latency(fresh_doc):
        if not (is_decision_latency(baseline_doc) and is_decision_latency(fresh_doc)):
            sys.exit("check_perf: decision-latency and frames/sec JSON cannot "
                     "be compared against each other")
        failures = check_decision_latency(baseline_doc, fresh_doc, args.tolerance)
        if failures:
            print("check_perf: FAIL")
            for f in failures:
                print(f"  - {f}")
            return 1
        print("check_perf: decision-latency bench within tolerance")
        return 0

    baseline = load_entries(args.baseline)
    fresh = load_entries(args.fresh)

    failures = []
    # A 0 f/s entry means the timed loop never ran (crashed or truncated
    # smoke run): without this check it would sail through the ratio gates
    # as a divide-by-zero -> 0.0 "ratio" or silently depress a floor.
    for key, fps in sorted(fresh.items()):
        if fps <= 0:
            cells, users, provider, threads = key
            failures.append(
                f"{cells}c/{users}u {provider} t{threads}: recorded "
                f"{fps:g} f/s -- crashed or truncated smoke run")

    for provider in args.require_provider:
        if not any(key[2] == provider for key in fresh):
            failures.append(f"required provider '{provider}' has no fresh entries")

    for spec in args.ratio:
        try:
            num, den, floor_text = spec.split(":")
            floor = float(floor_text)
        except ValueError:
            sys.exit(f"check_perf: bad --ratio spec '{spec}' (want NUM:DEN:FLOOR)")
        scales = sorted({(c, u) for (c, u, p, t) in fresh if t == 1})
        checked = 0
        for cells, users in scales:
            num_key = (cells, users, num, 1)
            den_key = (cells, users, den, 1)
            if num_key not in fresh or den_key not in fresh:
                continue
            checked += 1
            if fresh[num_key] <= 0 or fresh[den_key] <= 0:
                # Already reported as a 0 f/s failure above; a ratio over a
                # zero side is meaningless, so attribute instead of dividing.
                failures.append(
                    f"{cells}c/{users}u: {num}/{den} ratio unavailable "
                    f"({num} {fresh[num_key]:g} f/s, {den} "
                    f"{fresh[den_key]:g} f/s)")
                continue
            ratio = fresh[num_key] / fresh[den_key]
            status = "ok" if ratio >= floor else "REGRESSED"
            print(f"check_perf: {cells}c/{users}u {num}/{den} t1 ratio "
                  f"{ratio:.2f} (floor {floor:.2f}) {status}")
            if ratio < floor:
                failures.append(
                    f"{cells}c/{users}u: {num}/{den} ratio {ratio:.2f} < {floor:.2f}")
        if checked == 0:
            failures.append(f"--ratio {spec}: no scale has t1 entries for both")

    for spec in args.cost_scaling:
        try:
            provider, base_text, big_text, factor_text = spec.split(":")
            base_cells, big_cells = int(base_text), int(big_text)
            factor = float(factor_text)
        except ValueError:
            sys.exit(f"check_perf: bad --cost-scaling spec '{spec}' "
                     "(want PROVIDER:BASE:BIG:FACTOR)")
        # cost = 1 / (fps * users); one t1 entry per (cells, provider) by
        # construction of the perf_smoke grid.
        costs = {}
        for (cells, users, prov, threads), fps in fresh.items():
            if prov == provider and threads == 1 and fps > 0:
                costs[cells] = 1.0 / (fps * users)
        if base_cells not in costs or big_cells not in costs:
            failures.append(f"--cost-scaling {spec}: missing t1 entries for "
                            f"{provider} at {base_cells} and/or {big_cells} cells")
            continue
        ratio = costs[big_cells] / costs[base_cells]
        status = "ok" if ratio <= factor else "REGRESSED"
        print(f"check_perf: {provider} per-user cost {big_cells}c/{base_cells}c "
              f"ratio {ratio:.2f} (cap {factor:.2f}) {status}")
        if ratio > factor:
            failures.append(
                f"{provider}: per-user cost at {big_cells}c is {ratio:.2f}x "
                f"the {base_cells}c cost (cap {factor:.2f})")
    for key, base_fps in sorted(baseline.items()):
        cells, users, provider, threads = key
        label = f"{cells}c/{users}u {provider} t{threads}"
        if key not in fresh:
            failures.append(f"{label}: entry missing from fresh run")
            continue
        floor = base_fps * (1.0 - args.tolerance)
        status = "ok" if fresh[key] >= floor else "REGRESSED"
        print(f"check_perf: {label}: base {base_fps:.0f} -> fresh "
              f"{fresh[key]:.0f} f/s (floor {floor:.0f}) {status}")
        if fresh[key] < floor:
            failures.append(
                f"{label}: {fresh[key]:.0f} f/s < floor {floor:.0f} "
                f"({base_fps:.0f} - {args.tolerance:.0%})")
    for key in sorted(set(fresh) - set(baseline)):
        cells, users, provider, threads = key
        print(f"check_perf: {cells}c/{users}u {provider} t{threads}: new entry "
              f"{fresh[key]:.0f} f/s (no baseline)")

    if failures:
        print("check_perf: FAIL")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("check_perf: all entries within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
