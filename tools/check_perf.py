#!/usr/bin/env python3
"""Perf regression gate over BENCH_frames_per_sec.json.

Compares a freshly measured perf_smoke JSON against the committed baseline:
every (cells, users, provider, sim_threads) entry present in BOTH files must
reach at least (1 - tolerance) of the baseline frames/sec.  Entries new in
the fresh file (new scale points, new providers) pass by definition; entries
that disappeared fail, so scale points cannot be silently dropped.

Schema-2 files carry {"scales": [{"cells", "users", "frames", "entries":
[{"provider", "sim_threads", "fps"}]}]}; the PR 3 schema-1 layout
({"providers": {name: fps}}) is also accepted for the baseline side, mapped
to the 19-cell scale at sim_threads=1.

Usage: check_perf.py BASELINE_JSON FRESH_JSON [--tolerance 0.20]
"""

import argparse
import json
import sys


def load_entries(path):
    with open(path) as f:
        doc = json.load(f)
    entries = {}
    if "scales" in doc:  # schema 2
        for scale in doc["scales"]:
            for e in scale["entries"]:
                key = (scale["cells"], scale["users"], e["provider"], e["sim_threads"])
                entries[key] = e["fps"]
    elif "providers" in doc:  # schema 1 (PR 3)
        for provider, fps in doc["providers"].items():
            entries[(doc["cells"], doc["users"], provider, 1)] = fps
    else:
        sys.exit(f"check_perf: {path} is not a recognised perf_smoke JSON")
    return entries


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    args = parser.parse_args()

    baseline = load_entries(args.baseline)
    fresh = load_entries(args.fresh)

    failures = []
    for key, base_fps in sorted(baseline.items()):
        cells, users, provider, threads = key
        label = f"{cells}c/{users}u {provider} t{threads}"
        if key not in fresh:
            failures.append(f"{label}: entry missing from fresh run")
            continue
        floor = base_fps * (1.0 - args.tolerance)
        status = "ok" if fresh[key] >= floor else "REGRESSED"
        print(f"check_perf: {label}: base {base_fps:.0f} -> fresh "
              f"{fresh[key]:.0f} f/s (floor {floor:.0f}) {status}")
        if fresh[key] < floor:
            failures.append(
                f"{label}: {fresh[key]:.0f} f/s < floor {floor:.0f} "
                f"({base_fps:.0f} - {args.tolerance:.0%})")
    for key in sorted(set(fresh) - set(baseline)):
        cells, users, provider, threads = key
        print(f"check_perf: {cells}c/{users}u {provider} t{threads}: new entry "
              f"{fresh[key]:.0f} f/s (no baseline)")

    if failures:
        print("check_perf: FAIL")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("check_perf: all entries within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
