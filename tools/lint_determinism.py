#!/usr/bin/env python3
"""Determinism and portability linter for the WCDMA simulator tree.

Every scaling lever in this repo -- sharded frames (sim.threads), CRN-paired
sweeps, trace replay, checkpoint/resume -- rests on a bit-identity contract
that golden tests enforce only after the fact and only on pinned seeds.  This
linter makes the contract machine-checked at the source level: it scans
src/**/*.{cpp,hpp} and tools/*.{cpp,hpp} for constructs that are known to
break bit-identity or portability, before any test ever runs.

There is no clang-tidy in the build container, so the pass is self-contained
Python over the C++ sources: comments and string literals are stripped before
rule matching (a mention of "steady_clock" in a design comment is not a
finding), and every rule is a row in RULES with an ID, a regex, an optional
path scope, and a one-line message.  The full rationale for each rule lives
in tools/lint_rules.md; `--list-rules` prints the IDs so tools/check_docs.sh
can gate that the doc and the table never drift.

Suppressions are inline and cross-checked:

    some_code();  // lint-allow(DET-WALLCLOCK): wall-clock never enters results

A suppression applies to its own line, or -- when the comment is the only
thing on the line -- to the next source line.  A suppression must carry a
non-empty reason and must match at least one finding; a stale or unknown-rule
suppression is itself an error, so dead annotations cannot accumulate.

Exit status: 0 when the scanned tree is clean, 1 when any finding (or stale
suppression, or unreadable file) survives, 2 on usage errors.

Usage:
    tools/lint_determinism.py                 # lint the repository tree
    tools/lint_determinism.py FILE [FILE...]  # lint specific files
    tools/lint_determinism.py --list-rules    # print "ID<TAB>summary" rows
"""

import argparse
import os
import re
import sys
from typing import List, NamedTuple, Optional, Sequence, Tuple


class Rule(NamedTuple):
    rule_id: str
    pattern: "re.Pattern[str]"
    message: str
    # Findings only fire in files whose repo-relative path matches; None
    # means every scanned file.
    path_filter: Optional["re.Pattern[str]"]
    # Repo-relative paths where the rule is allowlisted wholesale (bench-style
    # files whose whole purpose is wall-clock measurement).  An entry ending
    # in "/" allowlists the whole directory subtree (e.g. "src/runner/" for
    # the process supervisor, whose timeouts are wall-clock by design).
    # Inline lint-allow comments are the per-line mechanism; this is the
    # per-file one.
    allow_paths: Tuple[str, ...]
    # Match against string-literal contents instead of code (printf format
    # strings live inside literals, which the code view blanks).
    in_strings: bool


def _rule(rule_id, pattern, message, path_filter=None, allow_paths=(),
          in_strings=False):
    return Rule(rule_id, re.compile(pattern), message,
                re.compile(path_filter) if path_filter else None,
                tuple(allow_paths), in_strings)


# The rule table.  One row per rule ID; tools/lint_rules.md documents the
# rationale for every row and tools/check_docs.sh enforces that mapping.
RULES: List[Rule] = [
    _rule(
        "DET-UNORDERED-CONTAINER",
        r"\bstd::unordered_(?:map|set|multimap|multiset)\b",
        "std::unordered_* iteration order is implementation-defined; use the "
        "ordered container or an index-sorted vector",
    ),
    _rule(
        "DET-WALLCLOCK",
        r"(?:\bstd::random_device\b|(?<![\w:.])(?:rand|srand|time|clock)\s*\(|"
        r"\b(?:system_clock|steady_clock|high_resolution_clock)\b)",
        "wall-clock / ambient-entropy source in simulation code; all "
        "randomness must come from seeded common::Rng streams and all time "
        "from the frame clock",
        allow_paths=("tools/perf_smoke.cpp", "src/runner/"),
    ),
    _rule(
        "DET-SHUFFLE",
        r"\bstd::(?:shuffle|random_shuffle)\b",
        "std::shuffle's draw count is unspecified per element; permute via "
        "index sort keyed on seeded draws instead",
    ),
    _rule(
        "DET-NONSTRICT-SORT",
        r"\bstd::(?:sort|stable_sort|partial_sort|nth_element)\b"
        r"[^;]{0,200}?[^<>=!](?:<=|>=)",
        "sort comparator uses <= or >=: non-strict weak ordering is UB in "
        "std::sort and breaks ties nondeterministically on float keys",
    ),
    _rule(
        "DET-FLOAT-EQ",
        r"(?:(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?f?\s*(?:==|!=)|"
        r"(?:==|!=)\s*(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?f?|"
        r"\bf64\(\)\s*(?:==|!=)|(?:==|!=)\s*[\w.\->]*\bf64\(\))",
        "direct ==/!= on floating-point expressions; compare against an "
        "explicit tolerance, or justify the bit-exact intent inline",
    ),
    _rule(
        "DET-STATIC-LOCAL",
        r"^\s+static\s+(?!const\b|constexpr\b|_Thread_local\b|thread_local\b)"
        r"[A-Za-z_][\w:<>,\s*&]*?[\w>]\s*(?:=[^=]|;|\{)",
        "static mutable local: hidden cross-run (and cross-thread) state "
        "breaks replay and sharded bit-identity",
        path_filter=r"^src/.*\.(?:cpp|hpp)$",
        # The cached CPUID/WCDMA_SIMD dispatch level: writable only through
        # the test hook, and every level selects between element-wise
        # identical kernels, so it cannot influence results (lint_rules.md).
        allow_paths=("src/common/simd.hpp",),
    ),
    _rule(
        "PORT-PRAGMA-ONCE",
        r"\A(?![\s\S]*^\s*#\s*pragma\s+once\b)",
        "header is missing #pragma once",
        path_filter=r"\.hpp$",
    ),
    _rule(
        "SER-FLOAT-FMT",
        r'%[-+ 0#]*\d*(?:l|ll|L)?[fFgGeE]',
        "float printf format without an explicit precision in a "
        "serialization path; the trace/metrics contract mandates %.17g "
        "(IEEE-754 round-trip)",
        path_filter=r"^(?:src/service/|src/common/serialize|"
        r"tools/service_main)",
        in_strings=True,
    ),
]

RULE_IDS = {r.rule_id for r in RULES}

# Files the linter walks when no explicit paths are given, relative to the
# repository root (the parent of this script's directory).
SCAN_GLOBS = ("src", "tools")
SCAN_EXTENSIONS = (".cpp", ".hpp")

ALLOW_RE = re.compile(r"lint-allow\(([A-Za-z0-9-]+)\)\s*(?::\s*(.*?))?\s*$")


class Suppression(NamedTuple):
    rule_id: str
    line: int          # line the suppression applies to
    comment_line: int  # line the comment physically sits on
    reason: str
    used: bool = False


def strip_code(source: str) -> Tuple[List[str], List[str], List[str]]:
    """Returns (code_lines, comment_lines, string_lines): line-aligned views
    of `source` with comments/strings blanked from the code view, everything
    except comment text blanked from the comment view, and everything except
    string-literal contents blanked from the string view.  Blanking (not
    deleting) keeps column positions stable for messages."""
    code: List[str] = []
    comments: List[str] = []
    strings: List[str] = []
    in_block = False
    for raw in source.splitlines():
        code_chars: List[str] = []
        comment_chars: List[str] = []
        string_chars: List[str] = []
        i, n = 0, len(raw)
        in_string: Optional[str] = None
        while i < n:
            ch = raw[i]
            nxt = raw[i + 1] if i + 1 < n else ""
            if in_block:
                if ch == "*" and nxt == "/":
                    in_block = False
                    comment_chars.append("  ")
                    code_chars.append("  ")
                    string_chars.append("  ")
                    i += 2
                    continue
                comment_chars.append(ch)
                code_chars.append(" ")
                string_chars.append(" ")
                i += 1
                continue
            if in_string:
                code_chars.append(" ")
                comment_chars.append(" ")
                if ch == "\\":
                    string_chars.append(ch)
                    if i + 1 < n:
                        code_chars.append(" ")
                        comment_chars.append(" ")
                        string_chars.append(raw[i + 1])
                    i += 2
                    continue
                if ch == in_string:
                    in_string = None
                    string_chars.append(" ")
                else:
                    string_chars.append(ch)
                i += 1
                continue
            if ch == "/" and nxt == "/":
                comment_chars.append(raw[i:])
                code_chars.extend(" " * (n - i))
                string_chars.extend(" " * (n - i))
                break
            if ch == "/" and nxt == "*":
                in_block = True
                code_chars.append("  ")
                comment_chars.append("  ")
                string_chars.append("  ")
                i += 2
                continue
            if ch in "\"'":
                in_string = ch
                code_chars.append(ch)
                comment_chars.append(" ")
                string_chars.append(" ")
                i += 1
                continue
            code_chars.append(ch)
            comment_chars.append(" ")
            string_chars.append(" ")
            i += 1
        code.append("".join(code_chars))
        comments.append("".join(comment_chars))
        strings.append("".join(string_chars))
    return code, comments, strings


class Finding(NamedTuple):
    path: str
    line: int
    rule_id: str
    message: str


def collect_suppressions(path: str, code_lines: Sequence[str],
                         comment_lines: Sequence[str],
                         errors: List[Finding]) -> List[Suppression]:
    sups: List[Suppression] = []
    for idx, comment in enumerate(comment_lines):
        m = ALLOW_RE.search(comment)
        if not m:
            continue
        lineno = idx + 1
        rule_id, reason = m.group(1), (m.group(2) or "").strip()
        if rule_id not in RULE_IDS:
            errors.append(Finding(path, lineno, "LINT-BAD-ALLOW",
                                  f"suppression names unknown rule "
                                  f"'{rule_id}'"))
            continue
        if not reason:
            errors.append(Finding(path, lineno, "LINT-BAD-ALLOW",
                                  f"suppression of {rule_id} has no reason; "
                                  f"write lint-allow({rule_id}): <why>"))
            continue
        # Comment-only line: the suppression covers the next line that
        # carries code, skipping the rest of its own comment block.
        target = lineno
        if code_lines[idx].strip() == "":
            j = idx + 1
            while j < len(code_lines) and code_lines[j].strip() == "":
                j += 1
            target = j + 1
        sups.append(Suppression(rule_id, target, lineno, reason))
    return sups


def lint_file(path: str, rel: str) -> List[Finding]:
    try:
        with open(path, encoding="utf-8") as f:
            source = f.read()
    except (OSError, UnicodeDecodeError) as e:
        return [Finding(rel, 0, "LINT-IO", f"unreadable source file: {e}")]

    code_lines, comment_lines, string_lines = strip_code(source)
    findings: List[Finding] = []
    errors: List[Finding] = []
    sups = collect_suppressions(rel, code_lines, comment_lines, errors)
    used = [False] * len(sups)

    def suppressed(rule_id: str, lineno: int) -> bool:
        for i, s in enumerate(sups):
            if s.rule_id == rule_id and s.line == lineno:
                used[i] = True
                return True
        return False

    for rule in RULES:
        if rule.path_filter and not rule.path_filter.search(rel):
            continue
        if any(rel == p or (p.endswith("/") and rel.startswith(p))
               for p in rule.allow_paths):
            continue
        if rule.rule_id == "PORT-PRAGMA-ONCE":
            # Whole-file rule: match against the stripped source so a
            # commented-out pragma does not count.
            if rule.pattern.match("\n".join(code_lines)):
                if not suppressed(rule.rule_id, 1):
                    findings.append(Finding(rel, 1, rule.rule_id, rule.message))
            continue
        view = string_lines if rule.in_strings else code_lines
        for idx, line in enumerate(view):
            if rule.pattern.search(line):
                lineno = idx + 1
                if not suppressed(rule.rule_id, lineno):
                    findings.append(Finding(rel, lineno, rule.rule_id,
                                            rule.message))

    for i, s in enumerate(sups):
        if not used[i]:
            errors.append(Finding(rel, s.comment_line, "LINT-STALE-ALLOW",
                                  f"suppression of {s.rule_id} matches no "
                                  f"finding; delete it"))
    return findings + errors


def default_paths(root: str) -> List[str]:
    paths: List[str] = []
    for top in SCAN_GLOBS:
        base = os.path.join(root, top)
        if top == "tools":
            # tools/ is flat by convention; no recursion needed, and the
            # fixture dirs a selftest might scatter must never leak in.
            entries = (os.path.join(base, e) for e in sorted(os.listdir(base)))
            paths.extend(p for p in entries
                         if os.path.isfile(p) and p.endswith(SCAN_EXTENSIONS))
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(SCAN_EXTENSIONS):
                    paths.append(os.path.join(dirpath, name))
    return paths


def main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Determinism/portability linter (see tools/lint_rules.md)")
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: the repository tree)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print 'ID<TAB>summary' for every rule and exit")
    parser.add_argument("--root", default=None,
                        help="repository root (default: the script's parent)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rule_id}\t{rule.message}")
        return 0

    root = os.path.abspath(
        args.root or os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                  os.pardir))
    if args.paths:
        targets = [os.path.abspath(p) for p in args.paths]
    else:
        targets = default_paths(root)

    all_findings: List[Finding] = []
    for path in targets:
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        all_findings.extend(lint_file(path, rel))

    for f in sorted(all_findings):
        print(f"{f.path}:{f.line}: {f.rule_id}: {f.message}")
    if all_findings:
        print(f"lint_determinism: {len(all_findings)} finding(s) in "
              f"{len(targets)} file(s)", file=sys.stderr)
        return 1
    print(f"lint_determinism: OK ({len(targets)} files clean)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
