#!/usr/bin/env bash
# Docs consistency checker, run by the CI docs job and usable locally:
#
#   tools/check_docs.sh [path/to/sweep_main]
#
# 1. Every relative markdown link in README.md and docs/*.md must resolve
#    to a file in the repository.
# 2. Every preset registered in the sweep CLI must appear in the README
#    preset table (pass the sweep_main binary as $1; skipped otherwise).
# 3. Every registered channel-state provider must appear in both the README
#    provider table and the docs/ACCURACY.md accuracy ladder (same binary;
#    a provider added to the registry without its accuracy contract being
#    documented fails the docs job).
# 4. Every rule ID in the determinism linter's table must have a rationale
#    section in tools/lint_rules.md (skipped when python3 is unavailable).
set -euo pipefail

cd "$(dirname "$0")/.."
fail=0

# --- 1. relative links resolve -------------------------------------------
for doc in README.md docs/*.md; do
  # Extract markdown link targets; keep only relative file links.
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    local_path="${target%%#*}"  # strip fragment
    [ -z "$local_path" ] && continue
    # Relative links resolve against the containing document's directory.
    case "$local_path" in
      /*) resolved="$local_path" ;;
      *) resolved="$(dirname "$doc")/$local_path" ;;
    esac
    if [ ! -e "$resolved" ]; then
      echo "BROKEN LINK: $doc -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\(([^)]+)\)' "$doc" | sed -E 's/^\]\((.*)\)$/\1/')
done

# --- 2. every registered preset is documented in the README --------------
if [ "$#" -ge 1 ]; then
  sweep_main="$1"
  if [ ! -x "$sweep_main" ]; then
    echo "sweep_main binary not executable: $sweep_main"
    exit 1
  fi
  while IFS= read -r preset; do
    [ -z "$preset" ] && continue
    if ! grep -q "\`$preset\`" README.md; then
      echo "UNDOCUMENTED PRESET: $preset missing from the README preset table"
      fail=1
    fi
  done < <("$sweep_main" --list-presets | awk '{print $1}')

  # --- 3. every channel-state provider is documented ----------------------
  while IFS= read -r provider; do
    [ -z "$provider" ] && continue
    if ! grep -q "\`$provider\`" README.md; then
      echo "UNDOCUMENTED PROVIDER: $provider missing from the README provider table"
      fail=1
    fi
    if ! grep -q "\`$provider\`" docs/ACCURACY.md; then
      echo "UNDOCUMENTED PROVIDER: $provider missing from docs/ACCURACY.md"
      fail=1
    fi
  done < <("$sweep_main" --list-csi-providers | awk '{print $1}')
else
  echo "note: no sweep_main binary given; skipping preset/provider checks"
fi

# --- 4. every lint rule ID has a rationale section ------------------------
if command -v python3 >/dev/null 2>&1; then
  while IFS=$'\t' read -r rule_id _summary; do
    [ -z "$rule_id" ] && continue
    if ! grep -q "### \`$rule_id\`" tools/lint_rules.md; then
      echo "UNDOCUMENTED LINT RULE: $rule_id missing from tools/lint_rules.md"
      fail=1
    fi
  done < <(python3 tools/lint_determinism.py --list-rules)
else
  echo "note: python3 unavailable; skipping lint-rule doc check"
fi

if [ "$fail" -ne 0 ]; then
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK"
