#!/usr/bin/env python3
"""Unit tests for the check_perf.py regression gate (run as a ctest step).

The gate guards CI, so the gate itself needs tests: a gate that silently
passes regressions is worse than no gate.  Each test drives the script as a
subprocess -- exactly how CI invokes it -- against synthetic baseline/fresh
JSON pairs and asserts on the exit code and the printed verdict.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

CHECK_PERF = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "check_perf.py")


def schema2(entries):
    """entries: list of (cells, users, provider, sim_threads, fps)."""
    scales = {}
    for cells, users, provider, threads, fps in entries:
        scale = scales.setdefault((cells, users), {
            "cells": cells, "users": users, "frames": 100, "entries": []})
        scale["entries"].append(
            {"provider": provider, "sim_threads": threads, "fps": fps})
    return {"scales": [scales[k] for k in sorted(scales)]}


def latency(rate, p99, **overrides):
    doc = {"bench": "decision_latency", "v": 1, "scenario": "hotspot",
           "policy": "jaba-sd", "provider": "exhaustive", "seed": 42,
           "frames": 1000, "decisions": 300, "decision_time_s": 1e-3,
           "decisions_per_s": rate, "frame_mean_us": 1.0,
           "frame_p50_us": 0.2, "frame_p99_us": p99}
    doc.update(overrides)
    return doc


class CheckPerfTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def _write(self, name, doc):
        path = os.path.join(self._dir.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def _run(self, baseline, fresh, *extra):
        base_path = self._write("baseline.json", baseline)
        fresh_path = self._write("fresh.json", fresh)
        return subprocess.run(
            [sys.executable, CHECK_PERF, base_path, fresh_path, *extra],
            capture_output=True, text=True)

    # --- frames/sec schema-2 gate ---

    def test_identical_runs_pass(self):
        doc = schema2([(19, 100, "exhaustive", 1, 500.0)])
        result = self._run(doc, doc)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("all entries within tolerance", result.stdout)

    def test_regression_beyond_tolerance_fails(self):
        base = schema2([(19, 100, "exhaustive", 1, 500.0)])
        fresh = schema2([(19, 100, "exhaustive", 1, 300.0)])  # -40% > 20%
        result = self._run(base, fresh)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("REGRESSED", result.stdout)

    def test_regression_within_custom_tolerance_passes(self):
        base = schema2([(19, 100, "exhaustive", 1, 500.0)])
        fresh = schema2([(19, 100, "exhaustive", 1, 300.0)])
        result = self._run(base, fresh, "--tolerance", "0.5")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_entry_missing_from_fresh_fails(self):
        base = schema2([(19, 100, "exhaustive", 1, 500.0),
                        (19, 100, "culled", 1, 800.0)])
        fresh = schema2([(19, 100, "exhaustive", 1, 500.0)])
        result = self._run(base, fresh)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("missing from fresh run", result.stdout)

    def test_new_fresh_entry_passes(self):
        base = schema2([(19, 100, "exhaustive", 1, 500.0)])
        fresh = schema2([(19, 100, "exhaustive", 1, 500.0),
                         (127, 1000, "culled", 1, 200.0)])
        result = self._run(base, fresh)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("new entry", result.stdout)

    def test_schema1_baseline_fallback(self):
        base = {"cells": 19, "users": 100,
                "providers": {"exhaustive": 500.0}}
        fresh = schema2([(19, 100, "exhaustive", 1, 495.0)])
        result = self._run(base, fresh)
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_unrecognised_schema_is_an_error(self):
        result = self._run({"nonsense": True},
                           schema2([(19, 100, "exhaustive", 1, 1.0)]))
        self.assertNotEqual(result.returncode, 0)

    # --- provider/ratio/cost gates ---

    def test_require_provider_missing_fails(self):
        doc = schema2([(19, 100, "exhaustive", 1, 500.0)])
        result = self._run(doc, doc, "--require-provider", "fast")
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("required provider 'fast'", result.stdout)

    def test_ratio_floor_enforced(self):
        doc = schema2([(19, 100, "fast", 1, 1000.0),
                       (19, 100, "culled", 1, 900.0)])
        ok = self._run(doc, doc, "--ratio", "fast:culled:1.05")
        self.assertEqual(ok.returncode, 0, ok.stdout)
        bad = self._run(doc, doc, "--ratio", "fast:culled:1.5")
        self.assertEqual(bad.returncode, 1, bad.stdout)
        self.assertIn("ratio", bad.stdout)

    def test_ratio_with_no_common_scale_fails(self):
        doc = schema2([(19, 100, "fast", 1, 1000.0)])
        result = self._run(doc, doc, "--ratio", "fast:culled:1.0")
        self.assertEqual(result.returncode, 1, result.stdout)

    def test_zero_fps_entry_fails_attributed(self):
        # A crashed/truncated smoke run records 0 f/s; the gate must name
        # the exact row instead of letting it slide through the floors.
        base = schema2([(19, 100, "fast", 1, 1000.0)])
        fresh = schema2([(19, 100, "fast", 1, 0.0)])
        result = self._run(base, fresh, "--tolerance", "0.99")
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("19c/100u fast t1: recorded 0 f/s", result.stdout)
        self.assertIn("crashed or truncated", result.stdout)

    def test_ratio_with_zero_denominator_fails_without_crash(self):
        # Before the fix the ratio gate divided into a zero denominator's
        # guard branch and reported ratio 0.00 < floor -- true but
        # unattributed; a zero NUMERATOR passed outright when floor <= 0.
        # Both sides must now fail with the 0 f/s row named and no
        # Traceback.
        doc = schema2([(19, 100, "fast", 1, 1000.0),
                       (19, 100, "culled", 1, 0.0)])
        result = self._run(doc, doc, "--ratio", "fast:culled:0.0")
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("ratio unavailable", result.stdout)
        self.assertNotIn("Traceback", result.stderr + result.stdout)

    def test_cost_scaling_cap_enforced(self):
        # per-user cost = 1/(fps*users): base 1/(500*100), big 1/(100*400)
        # -> ratio 1.25.
        doc = schema2([(19, 100, "culled", 1, 500.0),
                       (127, 400, "culled", 1, 100.0)])
        ok = self._run(doc, doc, "--cost-scaling", "culled:19:127:1.3")
        self.assertEqual(ok.returncode, 0, ok.stdout)
        bad = self._run(doc, doc, "--cost-scaling", "culled:19:127:1.2")
        self.assertEqual(bad.returncode, 1, bad.stdout)
        self.assertIn("per-user cost", bad.stdout)

    # --- decision-latency schema (PR 7) ---

    def test_latency_identical_passes(self):
        doc = latency(200000.0, 10.0)
        result = self._run(doc, doc)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("decision-latency bench within tolerance", result.stdout)

    def test_latency_rate_regression_fails(self):
        result = self._run(latency(200000.0, 10.0), latency(100000.0, 10.0))
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("decisions/s", result.stdout)

    def test_latency_p99_regression_fails(self):
        result = self._run(latency(200000.0, 10.0), latency(200000.0, 20.0))
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("p99", result.stdout)

    def test_latency_within_tolerance_passes(self):
        result = self._run(latency(200000.0, 10.0), latency(170000.0, 11.5))
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_latency_fingerprint_mismatch_fails(self):
        result = self._run(latency(200000.0, 10.0),
                           latency(200000.0, 10.0, scenario="wide"))
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("fingerprint mismatch", result.stdout)

    def test_mixed_schemas_are_an_error(self):
        result = self._run(latency(200000.0, 10.0),
                           schema2([(19, 100, "exhaustive", 1, 500.0)]))
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("cannot be compared", result.stderr + result.stdout)


if __name__ == "__main__":
    unittest.main()
