// Hotspot scenario: all users confined to the central cell's footprint, so
// burst requests contend for the *same* base-station power and reverse
// interference budget.  This is where multiple-burst scheduling actually
// matters — compare JABA-SD against the cdma2000 FCFS and equal-share
// baselines in one congested cell.
#include <cstdio>

#include "src/common/table.hpp"
#include "src/sim/simulator.hpp"

using namespace wcdma;

int main() {
  sim::SystemConfig base = sim::default_config();
  base.sim_duration_s = 60.0;
  base.warmup_s = 10.0;
  base.voice.users = 60;
  base.data.users = 24;
  base.data.mean_reading_s = 1.5;  // aggressive load
  // Confine mobility to the central cell -> hotspot.
  base.mobility.region_radius_m = base.layout.cell_radius_m;
  base.seed = 77;

  common::Table table({"scheduler", "mean delay (s)", "p95 delay (s)",
                       "throughput (kbps)", "grant rate", "mean SGR"});
  for (const auto kind :
       {admission::SchedulerKind::kJabaSd, admission::SchedulerKind::kGreedy,
        admission::SchedulerKind::kFcfs, admission::SchedulerKind::kFcfsSingle,
        admission::SchedulerKind::kEqualShare, admission::SchedulerKind::kRandom}) {
    sim::SystemConfig cfg = base;
    cfg.admission.scheduler = kind;
    sim::Simulator simulator(cfg);
    const sim::SimMetrics m = simulator.run();
    table.add_row({to_string(kind), common::format_double(m.mean_delay_s()),
                   common::format_double(m.p95_delay_s()),
                   common::format_double(m.data_throughput_bps() / 1000.0),
                   common::format_double(m.grant_rate()),
                   common::format_double(m.granted_sgr.mean())});
  }
  table.print("hotspot_cell: 24 data users in one congested cell");
  return 0;
}
