// Hotspot scenario: all users confined to the central cell's footprint, so
// burst requests contend for the *same* base-station power and reverse
// interference budget.  This is where multiple-burst scheduling actually
// matters — compare JABA-SD against the cdma2000 FCFS and equal-share
// baselines in one congested cell.
//
// Runs on the sweep engine: one scheduler axis over every implemented
// scheduler, evaluated in parallel with deterministic per-scenario seeds.
#include "src/common/thread_pool.hpp"
#include "src/sweep/sweep.hpp"

using namespace wcdma;

int main() {
  sweep::SweepSpec spec;
  spec.name = "hotspot-cell-example";
  spec.base = sim::default_config();
  spec.base.sim_duration_s = 60.0;
  spec.base.warmup_s = 10.0;
  spec.base.voice.users = 60;
  spec.base.data.users = 24;
  spec.base.data.mean_reading_s = 1.5;  // aggressive load
  // Confine mobility to the central cell -> hotspot.
  spec.base.mobility.region_radius_m = spec.base.layout.cell_radius_m;
  spec.base.seed = 77;
  spec.axes = {sweep::axis_scheduler(
      {admission::SchedulerKind::kJabaSd, admission::SchedulerKind::kGreedy,
       admission::SchedulerKind::kFcfs, admission::SchedulerKind::kFcfsSingle,
       admission::SchedulerKind::kEqualShare, admission::SchedulerKind::kRandom})};
  spec.replications = 1;
  spec.common_random_numbers = true;  // paired comparison across schedulers

  const sweep::SweepResult result =
      sweep::run_sweep(spec, common::default_thread_count());
  sweep::to_table(result).print("hotspot_cell: 24 data users in one congested cell");
  return 0;
}
