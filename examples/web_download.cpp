// Full-system example: WWW-style data users over the 19-cell layout with
// voice background load — the workload the paper's introduction motivates
// (high-speed packet data on wideband CDMA).  Runs the dynamic simulator
// with the complete JABA-SD stack and prints the evaluation metrics.
#include <cstdio>

#include "src/common/table.hpp"
#include "src/sim/monte_carlo.hpp"
#include "src/sim/simulator.hpp"

using namespace wcdma;

int main() {
  sim::SystemConfig cfg = sim::default_config();
  cfg.sim_duration_s = 90.0;
  cfg.warmup_s = 10.0;
  cfg.voice.users = 60;
  cfg.data.users = 12;
  cfg.seed = 2001;

  std::printf("Running %g s of system time: %zu cells, %d voice + %d data users...\n",
              cfg.sim_duration_s, cell::HexLayout(cfg.layout).num_cells(),
              cfg.voice.users, cfg.data.users);

  sim::Simulator simulator(cfg);
  const sim::SimMetrics m = simulator.run();

  common::Table table({"metric", "value"});
  table.add_row({"bursts completed", std::to_string(m.burst_delay_s.count())});
  table.add_row({"mean burst delay (s)", common::format_double(m.mean_delay_s())});
  table.add_row({"p95 burst delay (s)", common::format_double(m.p95_delay_s())});
  table.add_row({"mean queueing delay (s)", common::format_double(m.queue_delay_s.mean())});
  table.add_row({"data throughput (kbps)",
                 common::format_double(m.data_throughput_bps() / 1000.0)});
  table.add_row({"mean granted SGR m", common::format_double(m.granted_sgr.mean())});
  table.add_row({"grant rate", common::format_double(m.grant_rate())});
  table.add_row({"SCH outage rate", common::format_double(m.sch_outage_rate())});
  table.add_row({"fwd load (P/Pmax)", common::format_double(m.forward_load_fraction.mean())});
  table.add_row({"reverse rise (dB)", common::format_double(m.reverse_rise_db.mean())});
  table.add_row({"voice SIR err (dB)", common::format_double(m.voice_sir_error_db.mean())});
  table.print("web_download: JABA-SD, J2 objective, defaults");

  std::printf("\nMode occupancy (share of SCH frames):\n");
  common::Table modes({"mode", "share"});
  for (std::size_t q = 1; q < m.mode_frames.size(); ++q) {
    if (m.mode_frames[q] == 0) continue;
    modes.add_row({std::to_string(q),
                   common::format_double(static_cast<double>(m.mode_frames[q]) /
                                         static_cast<double>(m.sch_frames))});
  }
  modes.print();
  return 0;
}
