// Adaptive physical layer demo (Section 2): prints the 6-mode VTAOC ladder,
// its constant-BER adaptation thresholds, and the average throughput /
// outage / realised BER across a CSI sweep, next to a fixed-rate PHY.
#include <cstdio>

#include "src/common/table.hpp"
#include "src/common/units.hpp"
#include "src/phy/adaptation.hpp"

using namespace wcdma;

int main() {
  const double target_ber = 1e-3;
  phy::VtaocParams params;
  params.b1 = 4.0;
  phy::AdaptationPolicy policy(phy::make_vtaoc_modes(params), target_ber);

  std::printf("VTAOC ladder (target BER %.0e, constant-BER thresholds):\n", target_ber);
  common::Table ladder({"mode", "beta (bits/sym)", "threshold (dB)"});
  for (std::size_t q = 1; q <= policy.modes().size(); ++q) {
    ladder.add_row({std::to_string(q),
                    common::format_double(policy.modes().mode(static_cast<int>(q)).throughput),
                    common::format_double(
                        common::linear_to_db(policy.thresholds()[q - 1]), 4)});
  }
  ladder.print();

  std::printf("\nAverage performance under Rayleigh fading vs mean CSI:\n");
  common::Table sweep({"mean CSI (dB)", "adaptive beta", "fixed m3 beta", "gain x",
                       "outage", "avg BER"});
  for (double db = -10.0; db <= 20.0 + 1e-9; db += 2.5) {
    const double eps = common::db_to_linear(db);
    const double adaptive = policy.avg_throughput_rayleigh(eps);
    const double fixed = policy.fixed_mode_avg_throughput_rayleigh(eps, 3);
    sweep.add_numeric_row({db, adaptive, fixed, fixed > 0 ? adaptive / fixed : 0.0,
                           policy.outage_probability_rayleigh(eps),
                           policy.avg_ber_rayleigh(eps)});
  }
  sweep.print();
  std::printf("\nThe avg BER column stays at/below the %.0e target across the whole\n"
              "sweep: the penalty of a bad channel is throughput, not errors.\n",
              target_ber);
  return 0;
}
