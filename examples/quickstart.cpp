// Quickstart: build one multiple-burst admission problem by hand and solve
// it with JABA-SD and the baselines.
//
// Scenario: two cells, four concurrent burst requests with different
// channel qualities (delta_beta), waiting times and burst sizes.  Shows the
// measurement sub-layer -> scheduling sub-layer flow of Section 3 without
// the full dynamic simulator.
#include <cstdio>

#include "src/admission/measurement.hpp"
#include "src/admission/schedulers.hpp"
#include "src/common/table.hpp"

using namespace wcdma;

int main() {
  // ---- Measurement sub-layer: forward-link admissible region (Eq. 7-8).
  admission::ForwardLinkInputs fl;
  fl.p_max_watt = 20.0;
  fl.gamma_s = 3.2;
  fl.cell_load_watt = {9.0, 12.0};  // current loading of the two cells

  // Four requests: users 0/1 homed on cell 0, users 2/3 on cell 1; user 3
  // is in soft hand-off with both cells (two reduced-active-set legs).
  fl.users.resize(4);
  fl.users[0].reduced_active_set = {{0, 0.050}};          // strong channel
  fl.users[1].reduced_active_set = {{0, 0.220}};          // weak (cell edge)
  fl.users[2].reduced_active_set = {{1, 0.080}};
  fl.users[3].reduced_active_set = {{1, 0.120}, {0, 0.120}};
  fl.users[3].alpha_fl = 1.8;  // two-leg SCH transmission costs extra power

  admission::Region region = build_forward_region(fl);

  // ---- Request views: channel-adaptive throughput ratios and waits.
  std::vector<admission::RequestView> requests(4);
  const double q[4] = {200e3, 120e3, 400e3, 80e3};       // burst bits
  const double waits[4] = {0.1, 2.5, 0.4, 11.0};         // seconds queued
  const double dbeta[4] = {1.6, 0.35, 1.1, 0.8};         // Eq. 4 ratios
  for (int j = 0; j < 4; ++j) {
    requests[j].user = j;
    requests[j].q_bits = q[j];
    requests[j].waiting_s = waits[j];
    requests[j].delta_beta = dbeta[j];
  }

  // ---- Scheduling sub-layer: J2 (delay-aware) objective, Eq. 20-24.
  admission::DelayPenaltyConfig penalty;
  mac::MacTimersConfig timers;
  admission::BurstProblem problem = admission::make_burst_problem(
      region, requests, admission::ObjectiveKind::kJ2DelayAware, penalty, timers,
      /*fch_bit_rate=*/9600.0, /*min_burst_s=*/0.080, /*max_sgr=*/16);

  std::printf("Admissible region (A m <= b):\n%s", problem.region.a.to_string().c_str());
  std::printf("b = [ %.3g %.3g ]\n\n", problem.region.b[0], problem.region.b[1]);

  common::Table table({"scheduler", "m0", "m1", "m2", "m3", "objective", "granted"});
  for (const auto kind :
       {admission::SchedulerKind::kJabaSd, admission::SchedulerKind::kGreedy,
        admission::SchedulerKind::kFcfs, admission::SchedulerKind::kEqualShare,
        admission::SchedulerKind::kRandom}) {
    auto scheduler = admission::make_scheduler(kind, /*seed=*/7);
    const admission::Allocation a = scheduler->schedule(problem);
    table.add_row({scheduler->name(), std::to_string(a.m[0]), std::to_string(a.m[1]),
                   std::to_string(a.m[2]), std::to_string(a.m[3]),
                   common::format_double(a.objective), std::to_string(a.granted_count())});
  }
  table.print("quickstart: one admission round, 4 requests, 2 cells");

  std::printf(
      "\nJABA-SD pours capacity into users 0 and 2 (good channels, cheap per\n"
      "unit of cell power) while FCFS serves strictly by arrival and equal\n"
      "share levels everyone down.  User 3's J2 waiting-time boost grows\n"
      "with lambda (admission::DelayPenaltyConfig) until JABA-SD serves it\n"
      "too -- try lambda = 10.\n");
  return 0;
}
