// Certification of the SIMD kernel contract (src/sim/kernels.hpp): every
// dispatch level of every kernel is ELEMENT-WISE IDENTICAL to the scalar
// fastmath reference -- not "close", bit-identical -- so the level is a pure
// throughput knob and the statcheck certification of the `fast` provider
// transfers to SSE2/AVX2 by identity.
//
// Layers, bottom up:
//  * parse/dispatch plumbing (common/simd.hpp): level names, the WCDMA_SIMD
//    parser, capability clamping of the set_simd_level test hook;
//  * per-kernel bitwise agreement on randomized lanes plus the documented
//    edge inputs (subnormals, the +/-1022 exp2 rails, NaN payloads, odd lane
//    tails) for exp2/log2/dB lanes and the fused shadow-gain kernel;
//  * ziggurat fill: sample-for-sample, word-count, and stream-position
//    equality between the scalar fill and the SIMD block fill, across batch
//    sizes that cover empty, sub-block, block-boundary, and multi-block;
//  * whole-run equality: the fast provider's SimMetrics after thousands of
//    frames on the shrunk E5 and hotspot-center scenarios, compared field by
//    field across every level the host supports.
//
// Levels the host cannot execute are skipped (recorded via GTEST_SKIP on
// the dispatch test so a scalar-only host is visible in the test log).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "src/common/fastmath.hpp"
#include "src/common/rng.hpp"
#include "src/common/simd.hpp"
#include "src/common/ziggurat.hpp"
#include "src/scenario/experiments.hpp"
#include "src/scenario/scenario.hpp"
#include "src/sim/kernels.hpp"
#include "src/sim/simulator.hpp"
#include "src/sweep/sweep.hpp"

namespace wcdma {
namespace {

std::uint64_t bits_of(double x) {
  std::uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

/// Every level this host can execute, scalar first (the reference).
std::vector<common::SimdLevel> supported_levels() {
  std::vector<common::SimdLevel> levels = {common::SimdLevel::kScalar};
  for (common::SimdLevel l : {common::SimdLevel::kSse2, common::SimdLevel::kAvx2}) {
    if (static_cast<int>(l) <=
        static_cast<int>(common::max_supported_simd_level())) {
      levels.push_back(l);
    }
  }
  return levels;
}

/// Restores the ambient dispatch level when a test scope ends, so a failing
/// assertion mid-test cannot leak a forced level into later tests.
struct SimdLevelGuard {
  common::SimdLevel saved = common::active_simd_level();
  ~SimdLevelGuard() { common::set_simd_level(saved); }
};

// --- dispatch plumbing ------------------------------------------------------

TEST(SimdDispatch, ParseSimdLevelAcceptsTheDocumentedSpellings) {
  common::SimdLevel level = common::SimdLevel::kAvx2;
  EXPECT_TRUE(common::parse_simd_level("scalar", &level));
  EXPECT_EQ(level, common::SimdLevel::kScalar);
  EXPECT_TRUE(common::parse_simd_level("sse2", &level));
  EXPECT_EQ(level, common::SimdLevel::kSse2);
  EXPECT_TRUE(common::parse_simd_level("avx2", &level));
  EXPECT_EQ(level, common::SimdLevel::kAvx2);
  EXPECT_TRUE(common::parse_simd_level("auto", &level));
  EXPECT_EQ(level, common::max_supported_simd_level());
}

TEST(SimdDispatch, ParseSimdLevelRejectsJunkAndLeavesOutputUntouched) {
  common::SimdLevel level = common::SimdLevel::kSse2;
  for (const char* bad : {"", "AVX2", "sse", "avx512", "scalar ", "0"}) {
    EXPECT_FALSE(common::parse_simd_level(bad, &level)) << "'" << bad << "'";
    EXPECT_EQ(level, common::SimdLevel::kSse2) << "'" << bad << "'";
  }
  EXPECT_FALSE(common::parse_simd_level(nullptr, &level));
}

TEST(SimdDispatch, SetSimdLevelClampsToHostCapability) {
  SimdLevelGuard guard;
  const common::SimdLevel max = common::max_supported_simd_level();
  EXPECT_TRUE(common::set_simd_level(max));
  EXPECT_EQ(common::active_simd_level(), max);
  EXPECT_TRUE(common::set_simd_level(common::SimdLevel::kScalar));
  EXPECT_EQ(common::active_simd_level(), common::SimdLevel::kScalar);
  if (max < common::SimdLevel::kAvx2) {
    // An unsupported request must be refused and leave the level alone.
    EXPECT_FALSE(common::set_simd_level(common::SimdLevel::kAvx2));
    EXPECT_EQ(common::active_simd_level(), common::SimdLevel::kScalar);
    GTEST_SKIP() << "host supports only " << common::simd_level_name(max)
                 << "; vector agreement tests cover the levels up to it";
  }
}

// --- per-kernel bitwise agreement -------------------------------------------

/// Runs `kernel` on `input` at every supported level and asserts bitwise
/// equality with the scalar result, element by element.
template <typename Kernel>
void expect_lane_agreement(const std::vector<double>& input, Kernel kernel,
                           const char* name) {
  SimdLevelGuard guard;
  const std::size_t n = input.size();
  std::vector<double> reference(n), out(n);
  ASSERT_TRUE(common::set_simd_level(common::SimdLevel::kScalar));
  kernel(input.data(), reference.data(), n);
  for (common::SimdLevel level : supported_levels()) {
    ASSERT_TRUE(common::set_simd_level(level));
    std::fill(out.begin(), out.end(), -0.0);
    kernel(input.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits_of(out[i]), bits_of(reference[i]))
          << name << " @ " << common::simd_level_name(level) << " lane " << i
          << " input " << input[i] << ": " << out[i] << " != " << reference[i];
    }
    // In-place operation must give the same bits (the sim calls some lanes
    // in place).
    std::vector<double> in_place = input;
    kernel(in_place.data(), in_place.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits_of(in_place[i]), bits_of(reference[i]))
          << name << " in-place @ " << common::simd_level_name(level)
          << " lane " << i;
    }
  }
}

/// Odd length so every vector width leaves a scalar tail.
constexpr std::size_t kLaneN = 1027;

std::vector<double> exp2_inputs() {
  common::Rng rng(0x51d0);
  std::vector<double> x;
  // The working range of the gain/dB kernels...
  for (std::size_t i = 0; i < kLaneN; ++i) x.push_back(rng.uniform() * 280.0 - 140.0);
  // ...plus the clamp rails and specials the fastmath fix pins.
  const double inf = std::numeric_limits<double>::infinity();
  for (double e : {-1022.0, 1022.0, -1021.999, 1021.999, -1023.0, 1023.0,
                   -5000.0, 5000.0, -inf, inf, 0.0, -0.0,
                   std::numeric_limits<double>::quiet_NaN(), 5e-324, -5e-324}) {
    x.push_back(e);
  }
  return x;
}

std::vector<double> log2_inputs() {
  common::Rng rng(0x1062);
  std::vector<double> x;
  // Log-spaced positives across the full finite range, subnormals included.
  for (std::size_t i = 0; i < kLaneN; ++i) {
    x.push_back(std::exp2(rng.uniform() * 600.0 - 320.0));
  }
  for (double e : {5e-324, 1e-310, 2.2250738585072009e-308,  // subnormals
                   2.2250738585072014e-308,                  // min normal
                   1.0, 2.0, 1.5, 0.75, 1.7976931348623157e308}) {
    x.push_back(e);
  }
  return x;
}

TEST(KernelAgreement, Exp2LaneBitwiseAcrossLevels) {
  expect_lane_agreement(exp2_inputs(), sim::kernels::exp2_lane, "exp2");
}

TEST(KernelAgreement, Log2LaneBitwiseAcrossLevels) {
  expect_lane_agreement(log2_inputs(), sim::kernels::log2_lane, "log2");
}

TEST(KernelAgreement, DbConversionLanesBitwiseAcrossLevels) {
  expect_lane_agreement(log2_inputs(), sim::kernels::linear_to_db_lane,
                        "linear_to_db");
  expect_lane_agreement(exp2_inputs(), sim::kernels::db_to_linear_lane,
                        "db_to_linear");
}

TEST(KernelAgreement, LanesMatchScalarFastmathDirectly) {
  // The scalar lane itself must be the fastmath function, not a twin that
  // could drift: spot-check against direct calls.
  SimdLevelGuard guard;
  ASSERT_TRUE(common::set_simd_level(common::SimdLevel::kScalar));
  const std::vector<double> xs = exp2_inputs();
  std::vector<double> out(xs.size());
  sim::kernels::exp2_lane(xs.data(), out.data(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_EQ(bits_of(out[i]), bits_of(common::fast_exp2(xs[i]))) << xs[i];
  }
  const std::vector<double> ps = log2_inputs();
  out.resize(ps.size());
  sim::kernels::log2_lane(ps.data(), out.data(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    ASSERT_EQ(bits_of(out[i]), bits_of(common::fast_log2(ps[i]))) << ps[i];
  }
}

TEST(KernelAgreement, ShadowGainLaneBitwiseAcrossLevels) {
  SimdLevelGuard guard;
  common::Rng rng(0x5badf00d);
  const std::size_t n = 517;  // odd: exercises every tail path
  std::vector<double> z(n), d_sq(n), shadow0(n);
  for (std::size_t i = 0; i < n; ++i) {
    z[i] = rng.normal();
    d_sq[i] = 25.0 + rng.uniform() * 4.0e7;
    shadow0[i] = rng.normal(0.0, 8.0);
  }
  const double rho = 0.98, innovation = 1.59, bias = -38.2, half_slope = 1.84;
  std::vector<double> shadow_ref = shadow0, gain_ref(n);
  ASSERT_TRUE(common::set_simd_level(common::SimdLevel::kScalar));
  sim::kernels::shadow_gain_lane(rho, innovation, bias, half_slope, z.data(),
                                 d_sq.data(), shadow_ref.data(),
                                 gain_ref.data(), n);
  for (common::SimdLevel level : supported_levels()) {
    ASSERT_TRUE(common::set_simd_level(level));
    std::vector<double> shadow = shadow0, gain(n, -1.0);
    sim::kernels::shadow_gain_lane(rho, innovation, bias, half_slope, z.data(),
                                   d_sq.data(), shadow.data(), gain.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits_of(shadow[i]), bits_of(shadow_ref[i]))
          << "shadow @ " << common::simd_level_name(level) << " lane " << i;
      ASSERT_EQ(bits_of(gain[i]), bits_of(gain_ref[i]))
          << "gain @ " << common::simd_level_name(level) << " lane " << i;
    }
  }
}

// --- ziggurat fill: stream contract across levels ---------------------------

TEST(ZigguratSimd, FillMatchesScalarSamplesWordsAndStreamPosition) {
  SimdLevelGuard guard;
  const common::ZigguratNormal zig;
  // Sizes covering empty, sub-block, the 8-wide block boundary, and enough
  // samples to hit wedge and tail excursions (~1.2% of draws reject).
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{7}, std::size_t{8}, std::size_t{9},
                              std::size_t{63}, std::size_t{64}, std::size_t{65},
                              std::size_t{4096}}) {
    std::vector<double> reference(n + 1);
    common::Rng ref_rng(0x2165 + n);
    ASSERT_TRUE(common::set_simd_level(common::SimdLevel::kScalar));
    const std::size_t ref_words = zig.fill(ref_rng, reference.data(), n);
    const std::uint64_t ref_next = ref_rng.next_u64();  // stream position probe
    for (common::SimdLevel level : supported_levels()) {
      ASSERT_TRUE(common::set_simd_level(level));
      std::vector<double> out(n + 1, -42.0);
      common::Rng rng(0x2165 + n);
      const std::size_t words = zig.fill(rng, out.data(), n);
      EXPECT_EQ(words, ref_words)
          << "n=" << n << " @ " << common::simd_level_name(level);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(bits_of(out[i]), bits_of(reference[i]))
            << "n=" << n << " sample " << i << " @ "
            << common::simd_level_name(level);
      }
      EXPECT_EQ(rng.next_u64(), ref_next)
          << "n=" << n << " @ " << common::simd_level_name(level)
          << ": stream position diverged";
    }
  }
}

TEST(ZigguratSimd, FillEqualsSuccessiveDrawsAtEveryLevel) {
  SimdLevelGuard guard;
  const common::ZigguratNormal zig;
  const std::size_t n = 2048;
  std::vector<double> reference(n);
  common::Rng draw_rng(0xfaceb00c);
  for (std::size_t i = 0; i < n; ++i) reference[i] = zig.draw(draw_rng);
  for (common::SimdLevel level : supported_levels()) {
    ASSERT_TRUE(common::set_simd_level(level));
    std::vector<double> out(n);
    common::Rng rng(0xfaceb00c);
    zig.fill(rng, out.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits_of(out[i]), bits_of(reference[i]))
          << "sample " << i << " @ " << common::simd_level_name(level);
    }
  }
}

// --- whole-run equality: the fast provider across dispatch levels -----------

/// Runs the fast provider on `cfg` to completion and returns its metrics.
sim::SimMetrics run_fast(sim::SystemConfig cfg) {
  cfg.csi.provider = "fast";
  sim::Simulator simulator(cfg);
  const int frames = static_cast<int>(cfg.sim_duration_s / cfg.frame_s);
  for (int f = 0; f < frames; ++f) simulator.step_frame();
  return simulator.metrics();
}

void expect_moments_equal(const common::StreamingMoments& a,
                          const common::StreamingMoments& b, const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(bits_of(a.mean()), bits_of(b.mean())) << what;
  EXPECT_EQ(bits_of(a.variance()), bits_of(b.variance())) << what;
  EXPECT_EQ(bits_of(a.min()), bits_of(b.min())) << what;
  EXPECT_EQ(bits_of(a.max()), bits_of(b.max())) << what;
}

void expect_metrics_identical(const sim::SimMetrics& a, const sim::SimMetrics& b,
                              const std::string& label) {
  SCOPED_TRACE(label);
  expect_moments_equal(a.burst_delay_s, b.burst_delay_s, "burst_delay_s");
  expect_moments_equal(a.queue_delay_s, b.queue_delay_s, "queue_delay_s");
  expect_moments_equal(a.granted_sgr, b.granted_sgr, "granted_sgr");
  expect_moments_equal(a.forward_load_fraction, b.forward_load_fraction,
                       "forward_load_fraction");
  expect_moments_equal(a.reverse_rise_db, b.reverse_rise_db, "reverse_rise_db");
  expect_moments_equal(a.voice_sir_error_db, b.voice_sir_error_db,
                       "voice_sir_error_db");
  expect_moments_equal(a.pending_queue_len, b.pending_queue_len,
                       "pending_queue_len");
  EXPECT_EQ(bits_of(a.data_bits_delivered), bits_of(b.data_bits_delivered));
  EXPECT_EQ(bits_of(a.observed_s), bits_of(b.observed_s));
  EXPECT_EQ(a.sch_frames, b.sch_frames);
  EXPECT_EQ(a.sch_outage_frames, b.sch_outage_frames);
  EXPECT_EQ(a.ber_violation_frames, b.ber_violation_frames);
  EXPECT_EQ(a.requests_seen, b.requests_seen);
  EXPECT_EQ(a.grants, b.grants);
  EXPECT_EQ(a.reject_rounds, b.reject_rounds);
  EXPECT_EQ(a.carrier_hand_downs, b.carrier_hand_downs);
  EXPECT_EQ(a.bs_power_saturations, b.bs_power_saturations);
  EXPECT_EQ(a.mobile_power_saturations, b.mobile_power_saturations);
}

void expect_fast_run_identical_across_levels(const sim::SystemConfig& cfg) {
  SimdLevelGuard guard;
  ASSERT_TRUE(common::set_simd_level(common::SimdLevel::kScalar));
  const sim::SimMetrics reference = run_fast(cfg);
  EXPECT_GT(reference.requests_seen, 0);  // the run must exercise the system
  for (common::SimdLevel level : supported_levels()) {
    if (level == common::SimdLevel::kScalar) continue;
    ASSERT_TRUE(common::set_simd_level(level));
    expect_metrics_identical(run_fast(cfg), reference,
                             common::simd_level_name(level));
  }
}

TEST(FastTrajectorySimd, ByteIdenticalAcrossLevelsOnShrunkE5) {
  sweep::SweepSpec spec = scenario::e5_delay_rl();
  spec.base.voice.users = 20;
  spec.base.data.users = 12;
  spec.base.sim_duration_s = 12.0;
  spec.base.warmup_s = 2.0;
  expect_fast_run_identical_across_levels(spec.base);
}

TEST(FastTrajectorySimd, ByteIdenticalAcrossLevelsOnHotspotCenter) {
  scenario::ScenarioLayout layout = scenario::hotspot_center();
  layout.data_users = 32;
  layout.sim_duration_s = 10.0;
  layout.warmup_s = 2.0;
  expect_fast_run_identical_across_levels(layout.to_config());
}

}  // namespace
}  // namespace wcdma
