// End-to-end integration tests reproducing the paper's qualitative claims
// on short simulations: JABA-SD improves delay over the baselines under
// contention, the adaptive PHY out-delivers a fixed-rate PHY, load increases
// delay, and J2's delay-awareness shows up in the tail.
//
// These are statistical statements; scenarios and margins are chosen so the
// assertions are robust for the fixed seeds used here.
#include <gtest/gtest.h>

#include "src/sim/simulator.hpp"

namespace wcdma::sim {
namespace {

SystemConfig contended_config(std::uint64_t seed) {
  SystemConfig cfg = default_config();
  cfg.layout.rings = 1;  // 7 cells
  cfg.voice.users = 30;
  cfg.data.users = 16;
  cfg.data.mean_reading_s = 1.0;  // heavy offered load
  cfg.mobility.region_radius_m = cfg.layout.cell_radius_m;  // hotspot
  cfg.sim_duration_s = 45.0;
  cfg.warmup_s = 8.0;
  cfg.seed = seed;
  return cfg;
}

SimMetrics run_with(SystemConfig cfg) { return Simulator(cfg).run(); }

// Count-weighted mean delay over three replications: single seeds are too
// noisy for scheduler comparisons (heavy-tailed burst sizes).
double replicated_delay(SystemConfig cfg, admission::SchedulerKind kind) {
  cfg.admission.scheduler = kind;
  SimMetrics merged;
  for (const std::uint64_t bump : {0u, 7919u, 15838u}) {
    SystemConfig rep = cfg;
    rep.seed += bump;
    merged.merge(run_with(rep));
  }
  return merged.mean_delay_s();
}

TEST(Integration, JabaSdBeatsEqualShareOnDelay) {
  const SystemConfig cfg = contended_config(31);
  const double jaba = replicated_delay(cfg, admission::SchedulerKind::kJabaSd);
  const double eq = replicated_delay(cfg, admission::SchedulerKind::kEqualShare);
  EXPECT_LT(jaba, eq);
}

TEST(Integration, JabaSdBeatsSingleBurstFcfsOnReverseLink) {
  // Heavier data load so scheduling rounds see several concurrent requests,
  // on the REVERSE link, where the interference-limited region (Eq. 16-18)
  // plus the mobile TX caps give the IP real leverage.  (On a saturated
  // forward hotspot, serial max-rate FCFS approximates shortest-job-ish
  // serial service and mean delay against it is genuinely ambiguous.)
  SystemConfig cfg = contended_config(33);
  cfg.data.users = 24;
  cfg.data.mean_reading_s = 0.5;
  cfg.data.forward_fraction = 0.0;
  const double jaba = replicated_delay(cfg, admission::SchedulerKind::kJabaSd);
  const double fcfs1 = replicated_delay(cfg, admission::SchedulerKind::kFcfsSingle);
  EXPECT_LT(jaba, fcfs1);
}

TEST(Integration, GreedyTracksExactClosely) {
  SystemConfig cfg = contended_config(35);
  cfg.admission.scheduler = admission::SchedulerKind::kJabaSd;
  const double exact = run_with(cfg).mean_delay_s();
  cfg.admission.scheduler = admission::SchedulerKind::kGreedy;
  const double greedy = run_with(cfg).mean_delay_s();
  // The polynomial engine should stay within ~35% of the exact solver.
  EXPECT_LT(greedy, exact * 1.35);
}

TEST(Integration, AdaptivePhyOutThroughputsFixedRate) {
  SystemConfig cfg = contended_config(37);
  cfg.phy.fixed_mode = 0;  // adaptive VTAOC
  const double adaptive = run_with(cfg).data_throughput_bps();
  cfg.phy.fixed_mode = 5;  // aggressive fixed mode: silent in bad channels
  const double fixed_hi = run_with(cfg).data_throughput_bps();
  cfg.phy.fixed_mode = 1;  // conservative fixed mode: always slow
  const double fixed_lo = run_with(cfg).data_throughput_bps();
  EXPECT_GT(adaptive, fixed_hi);
  EXPECT_GT(adaptive, fixed_lo);
}

TEST(Integration, DelayGrowsWithOfferedLoad) {
  SystemConfig light = contended_config(41);
  light.data.users = 4;
  light.data.mean_reading_s = 6.0;
  SystemConfig heavy = contended_config(41);
  heavy.data.users = 20;
  heavy.data.mean_reading_s = 1.0;
  EXPECT_LT(run_with(light).mean_delay_s(), run_with(heavy).mean_delay_s());
}

TEST(Integration, VoiceLoadShrinksDataCapacity) {
  SystemConfig quiet = contended_config(43);
  quiet.voice.users = 0;
  SystemConfig loud = contended_config(43);
  loud.voice.users = 80;
  const SimMetrics mq = run_with(quiet);
  const SimMetrics ml = run_with(loud);
  // Voice load raises the measured forward loading, which shrinks the
  // Eq. (7) region and squeezes out data throughput.
  EXPECT_GT(ml.forward_load_fraction.mean(), mq.forward_load_fraction.mean());
  EXPECT_LT(ml.data_throughput_bps(), mq.data_throughput_bps());
}

TEST(Integration, J2ImprovesTailDelayOverJ1) {
  SystemConfig cfg = contended_config(47);
  cfg.admission.objective = admission::ObjectiveKind::kJ2DelayAware;
  const double p95_j2 = run_with(cfg).p95_delay_s();
  cfg.admission.objective = admission::ObjectiveKind::kJ1MaxRate;
  const double p95_j1 = run_with(cfg).p95_delay_s();
  // The delay-aware objective should not have a *worse* tail; allow a
  // modest noise band.
  EXPECT_LT(p95_j2, p95_j1 * 1.15);
}

TEST(Integration, SetupPenaltiesLengthenDelay) {
  SystemConfig fast = contended_config(53);
  fast.mac_timers.d1_s = 0.0;
  fast.mac_timers.d2_s = 0.0;
  SystemConfig slow = contended_config(53);
  slow.mac_timers.d1_s = 0.5;
  slow.mac_timers.d2_s = 3.0;
  // Large set-up penalties must not *reduce* delay (3-seed aggregates, with
  // a noise band for the heavy-tailed burst sizes).
  const double fast_d = replicated_delay(fast, admission::SchedulerKind::kJabaSd);
  const double slow_d = replicated_delay(slow, admission::SchedulerKind::kJabaSd);
  EXPECT_LE(fast_d, slow_d * 1.10);
}

TEST(Integration, RetryIntervalAffectsQueueing) {
  SystemConfig quick = contended_config(59);
  quick.admission.scrm_retry_s = 0.02;
  SystemConfig slow = contended_config(59);
  slow.admission.scrm_retry_s = 1.5;
  // Slower retries cannot shorten average queueing delay.
  EXPECT_LE(run_with(quick).queue_delay_s.mean(),
            run_with(slow).queue_delay_s.mean() * 1.10);
}

TEST(Integration, HotspotRimOffloadsToIdleNeighbours) {
  // A stable spatial prediction of the system: in a single-cell hotspot,
  // users near the rim are in soft hand-off with *idle* neighbour cells and
  // complete their bursts at least as fast as users stuck in the congested
  // core.  Aggregated over three replications (count-weighted) because the
  // per-seed heavy-tailed burst sizes make single runs noisy.
  SimMetrics merged;
  for (const std::uint64_t seed : {61u, 62u, 63u}) {
    SystemConfig cfg = contended_config(seed);
    cfg.sim_duration_s = 60.0;
    merged.merge(run_with(cfg));
  }
  double core = 0.0, rim = 0.0;
  double n_core = 0.0, n_rim = 0.0;
  for (std::size_t b = 0; b < kCoverageBins; ++b) {
    const auto& st = merged.delay_by_distance[b];
    const double n = static_cast<double>(st.count());
    if (b < kCoverageBins / 2) {
      core += st.mean() * n;
      n_core += n;
    } else {
      rim += st.mean() * n;
      n_rim += n;
    }
  }
  ASSERT_GT(n_core, 0.0);
  ASSERT_GT(n_rim, 0.0);
  EXPECT_LT(rim / n_rim, core / n_core * 1.15);
}

}  // namespace
}  // namespace wcdma::sim
