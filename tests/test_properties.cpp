// Cross-cutting property suites that tie modules together:
//  * simplex optimality cross-checked against dense grid search,
//  * the J2 objective's IP-coefficient form is equivalent (up to a
//    constant) to the literal Eq. 20 expression with the delay penalty,
//  * stacked forward+reverse regions behave like their intersection,
//  * Jakes and AR(1) fading agree on the lag-1 Clarke correlation,
//  * the measurement sub-layer is scale-consistent (doubling interference
//    halves reverse headroom coefficients' budget, etc.).
#include <gtest/gtest.h>

#include <cmath>

#include "src/admission/measurement.hpp"
#include "src/admission/objectives.hpp"
#include "src/admission/schedulers.hpp"
#include "src/channel/fading.hpp"
#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/opt/simplex.hpp"

namespace wcdma {
namespace {

using common::Matrix;
using common::Rng;

// ---------------------------------------------------------- simplex vs grid

class SimplexGridCheck : public ::testing::TestWithParam<int> {};

TEST_P(SimplexGridCheck, TwoVarOptimumMatchesGridSearch) {
  Rng rng(2000 + GetParam());
  opt::LpProblem p;
  const std::size_t m = 1 + rng.uniform_int(3);
  p.a = Matrix(m, 2, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    p.a(r, 0) = rng.uniform(0.1, 2.0);
    p.a(r, 1) = rng.uniform(0.1, 2.0);
  }
  p.b.resize(m);
  for (auto& b : p.b) b = rng.uniform(1.0, 6.0);
  p.c = {rng.uniform(0.1, 3.0), rng.uniform(0.1, 3.0)};
  p.upper = {10.0, 10.0};

  const opt::LpResult r = opt::solve_lp(p);
  ASSERT_EQ(r.status, opt::LpStatus::kOptimal);

  // Dense grid search (the LP optimum is at a vertex, but grid search
  // bounds the objective from below everywhere).
  double best = 0.0;
  const int grid = 400;
  for (int i = 0; i <= grid; ++i) {
    for (int j = 0; j <= grid; ++j) {
      const common::Vector x = {10.0 * i / grid, 10.0 * j / grid};
      if (!common::satisfies(p.a, x, p.b, 1e-12)) continue;
      best = std::max(best, common::dot(p.c, x));
    }
  }
  EXPECT_GE(r.objective, best - 1e-6);          // simplex at least as good
  EXPECT_LE(r.objective, best + 0.15 * best + 0.2);  // and grid-close
}

INSTANTIATE_TEST_SUITE_P(Random, SimplexGridCheck, ::testing::Range(0, 20));

// ------------------------------------------------- J2 equivalence property

// The scheduler consumes J2 as coefficients c_j (DESIGN.md D4).  Verify the
// literal Eq. 20 objective J2(m) = sum_j [ m_j dbeta_j (1 + Delta_j)
// - f(w_j, m_j dbeta_j) ] differs from sum_j c_j m_j by a constant that
// does not depend on m — i.e. both forms have the same argmax.
class J2Equivalence : public ::testing::TestWithParam<int> {};

TEST_P(J2Equivalence, CoefficientFormMatchesLiteralFormUpToConstant) {
  Rng rng(3000 + GetParam());
  const std::size_t nd = 2 + rng.uniform_int(6);
  std::vector<admission::RequestView> reqs(nd);
  const int max_sgr = 16;
  for (auto& r : reqs) {
    r.user = static_cast<int>(&r - reqs.data());
    r.q_bits = rng.uniform(1e4, 1e6);
    r.waiting_s = rng.uniform(0.0, 15.0);
    r.delta_beta = rng.uniform(0.1, 2.0);
    r.priority = rng.bernoulli(0.3) ? 0.5 : 0.0;
  }
  admission::DelayPenaltyConfig penalty;
  penalty.lambda = rng.uniform(0.5, 5.0);
  penalty.mu = rng.uniform(0.1, 2.0);
  mac::MacTimersConfig timers;

  const std::vector<double> c =
      objective_coefficients(reqs, admission::ObjectiveKind::kJ2DelayAware, penalty, timers);

  auto literal_j2 = [&](const std::vector<int>& m) {
    double acc = 0.0;
    for (std::size_t j = 0; j < nd; ++j) {
      const double r_j = m[j] * reqs[j].delta_beta;
      const double r_max = max_sgr * reqs[j].delta_beta;
      const double w = mac::effective_request_delay(timers, reqs[j].waiting_s);
      acc += r_j * (1.0 + reqs[j].priority) - delay_penalty(penalty, w, r_j, r_max);
    }
    return acc;
  };
  auto coeff_j2 = [&](const std::vector<int>& m) {
    double acc = 0.0;
    for (std::size_t j = 0; j < nd; ++j) acc += c[j] * m[j];
    return acc;
  };

  // The gap must be identical for arbitrary assignments.
  std::vector<int> zero(nd, 0);
  const double offset = coeff_j2(zero) - literal_j2(zero);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int> m(nd);
    for (auto& v : m) v = static_cast<int>(rng.uniform_int(max_sgr + 1));
    EXPECT_NEAR(coeff_j2(m) - literal_j2(m), offset, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, J2Equivalence, ::testing::Range(0, 15));

// -------------------------------------------------- stacked-region algebra

TEST(StackedRegions, BehavesAsIntersection) {
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t nd = 1 + rng.uniform_int(5);
    auto random_region = [&](std::size_t rows) {
      admission::Region r;
      r.a = Matrix(rows, nd, 0.0);
      for (std::size_t k = 0; k < rows; ++k) {
        for (std::size_t j = 0; j < nd; ++j) {
          r.a(k, j) = rng.bernoulli(0.4) ? 0.0 : rng.uniform(0.05, 1.0);
        }
      }
      r.b.resize(rows);
      for (auto& b : r.b) b = rng.uniform(0.5, 5.0);
      return r;
    };
    const admission::Region fl = random_region(1 + rng.uniform_int(3));
    const admission::Region rl = random_region(1 + rng.uniform_int(3));
    const admission::Region both = stack(fl, rl);

    std::vector<int> m(nd);
    for (auto& v : m) v = static_cast<int>(rng.uniform_int(6));
    EXPECT_EQ(both.admits(m), fl.admits(m) && rl.admits(m));
  }
}

// ------------------------------------------------- fading model agreement

TEST(FadingModels, JakesAndAr1AgreeOnLagOneCorrelation) {
  // Estimate the lag-1 (20 ms) power-gain autocorrelation of the Jakes
  // process and compare with the AR(1) coefficient J0(2 pi fd dt) -- both
  // implement the same Clarke spectrum.  Power correlation of a complex
  // Gaussian process is rho_h^2.
  const double fd = 12.0, dt = 0.020;
  Rng rng(47);
  double num = 0.0, den = 0.0;
  const int reps = 4000;
  for (int r = 0; r < reps; ++r) {
    channel::JakesFading f(fd, rng.fork(r), 24);
    const double p0 = std::norm(f.gain_at(0.0)) - 1.0;  // centred (unit mean)
    const double p1 = std::norm(f.gain_at(dt)) - 1.0;
    num += p0 * p1;
    den += p0 * p0;
  }
  const double rho_h = channel::Ar1Fading::correlation(fd, dt);
  EXPECT_NEAR(num / den, rho_h * rho_h, 0.08);
}

// -------------------------------------------------- measurement invariances

TEST(ReverseRegion, ScalingInterferenceRescalesBudgetOnly) {
  // Multiplying every cell's measured interference AND the cap by the same
  // factor leaves the region unchanged (the rows are self-normalised).
  admission::ReverseLinkInputs in;
  in.l_max_watt = 4.0e-13;
  in.gamma_s = 3.2;
  in.cell_interference_watt = {1.0e-13, 2.0e-13};
  in.users.resize(1);
  in.users[0].soft_handoff = {{0, 0.01}};
  in.users[0].scrm_pilots = {{0, 0.05}, {1, 0.02}};
  const admission::Region base = build_reverse_region(in);

  admission::ReverseLinkInputs scaled = in;
  scaled.l_max_watt *= 10.0;
  for (auto& l : scaled.cell_interference_watt) l *= 10.0;
  const admission::Region scaled_region = build_reverse_region(scaled);

  for (std::size_t k = 0; k < base.b.size(); ++k) {
    EXPECT_NEAR(base.b[k], scaled_region.b[k], 1e-12);
    EXPECT_NEAR(base.a(k, 0), scaled_region.a(k, 0), 1e-12);
  }
}

TEST(ForwardRegion, CoefficientsScaleWithGammaS) {
  admission::ForwardLinkInputs in;
  in.p_max_watt = 20.0;
  in.gamma_s = 2.0;
  in.cell_load_watt = {5.0};
  in.users.resize(1);
  in.users[0].reduced_active_set = {{0, 0.1}};
  const admission::Region r1 = build_forward_region(in);
  in.gamma_s = 4.0;
  const admission::Region r2 = build_forward_region(in);
  EXPECT_NEAR(r2.a(0, 0), 2.0 * r1.a(0, 0), 1e-12);
  EXPECT_NEAR(r2.b[0], r1.b[0], 1e-12);  // budget unchanged
}

// ------------------------------------------- scheduler anti-starvation

TEST(J2AntiStarvation, AgingEventuallyFlipsTheGrant) {
  // One unit of capacity, two requests: a good-channel user and a weak-
  // channel user.  Under J1 the good channel always wins; under J2 the
  // weak user's waiting-time boost must eventually overturn the decision.
  admission::Region region;
  region.a = Matrix{{1.0, 1.0}};
  region.b = {1.0};

  auto build = [&](double wait_weak, admission::ObjectiveKind kind) {
    std::vector<admission::RequestView> reqs(2);
    reqs[0] = {.user = 0, .q_bits = 1e5, .waiting_s = 0.0, .priority = 0.0,
               .delta_beta = 1.5};
    reqs[1] = {.user = 1, .q_bits = 1e5, .waiting_s = wait_weak, .priority = 0.0,
               .delta_beta = 1.0};
    admission::DelayPenaltyConfig penalty;
    penalty.lambda = 2.0;
    penalty.mu = 0.5;
    return admission::make_burst_problem(region, reqs, kind, penalty, {}, 9600.0,
                                         0.080, 16);
  };

  admission::JabaSdScheduler jaba;
  // J1: channel quality rules regardless of waiting.
  const auto j1 = jaba.schedule(build(30.0, admission::ObjectiveKind::kJ1MaxRate));
  EXPECT_GT(j1.m[0], 0);
  EXPECT_EQ(j1.m[1], 0);
  // J2, fresh: same.
  const auto j2_fresh = jaba.schedule(build(0.0, admission::ObjectiveKind::kJ2DelayAware));
  EXPECT_GT(j2_fresh.m[0], 0);
  // J2, aged: the weak user's boost (up to 1 + lambda = 3x) overtakes
  // 1.5/1.0 channel advantage.
  const auto j2_aged = jaba.schedule(build(30.0, admission::ObjectiveKind::kJ2DelayAware));
  EXPECT_GT(j2_aged.m[1], 0);
  EXPECT_EQ(j2_aged.m[0], 0);
}

// ------------------------------------------- duration bound monotonicity

class DurationBoundMonotone : public ::testing::TestWithParam<int> {};

TEST_P(DurationBoundMonotone, GrowsWithBurstShrinksWithRate) {
  Rng rng(5000 + GetParam());
  const double q = rng.uniform(1e3, 1e6);
  const double dbeta = rng.uniform(0.05, 2.0);
  const double rf = 9600.0, tmin = 0.08;
  const int m_cap = 64;
  const int u = admission::duration_upper_bound(q, dbeta, rf, tmin, m_cap);
  EXPECT_GE(u, 1);
  EXPECT_LE(u, m_cap);
  // Larger burst -> same-or-larger bound.
  EXPECT_GE(admission::duration_upper_bound(q * 2.0, dbeta, rf, tmin, m_cap), u);
  // Better channel -> same-or-smaller bound.
  EXPECT_LE(admission::duration_upper_bound(q, dbeta * 2.0, rf, tmin, m_cap), u);
  // Tighter minimum duration -> same-or-larger bound (more m allowed? no:
  // smaller tmin allows larger m).
  EXPECT_GE(admission::duration_upper_bound(q, dbeta, rf, tmin / 2.0, m_cap), u);
}

INSTANTIATE_TEST_SUITE_P(Random, DurationBoundMonotone, ::testing::Range(0, 25));

}  // namespace
}  // namespace wcdma
