// Multi-process sweep supervisor tests (src/runner/): shard arithmetic,
// fault-plan parsing, shard archive integrity, and the robustness contract
// end to end -- every injected fault either converges to a merged result
// bit-identical to the in-process sweep or fails hard with an error naming
// the shard and cause.
//
// Supervised runs here use the fork-mode entry point (no exec), so the
// whole state machine runs under the test binary.  The exec path through
// tools/sweep_main is exercised by ExecMode* below when ctest exports
// WCDMA_SWEEP_MAIN, and by the CI crash-recovery smoke.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/serialize.hpp"
#include "src/runner/fault.hpp"
#include "src/runner/shard_io.hpp"
#include "src/runner/supervisor.hpp"
#include "src/runner/worker.hpp"
#include "src/sim/simulator.hpp"
#include "src/sweep/sweep.hpp"

namespace wcdma::runner {
namespace {

/// 2 scenarios x 2 reps = 4 items, ~200 frames each: big enough to cross
/// several checkpoint boundaries, small enough for the fault matrix below.
sweep::SweepSpec tiny_spec(std::uint64_t seed = 7705) {
  sweep::SweepSpec spec;
  spec.name = "runner-tiny";
  spec.base = sim::default_config();
  spec.base.layout.rings = 1;
  spec.base.voice.users = 6;
  spec.base.data.users = 3;
  spec.base.data.mean_reading_s = 1.0;
  spec.base.sim_duration_s = 2.0;
  spec.base.warmup_s = 0.5;
  spec.base.seed = seed;
  spec.axes = {sweep::axis_data_users({2, 4})};
  spec.replications = 2;
  return spec;
}

/// Fresh work dir per supervised run; shard files are removed by the
/// supervisor on success, the dir itself here.
struct WorkDir {
  WorkDir() {
    char tmpl[] = "/tmp/wcdma-runner-test-XXXXXX";
    path = mkdtemp(tmpl) ? tmpl : ".";
  }
  ~WorkDir() { rmdir(path.c_str()); }
  std::string path;
};

SupervisorOptions fast_options(const std::string& work_dir) {
  SupervisorOptions options;
  options.work_dir = work_dir;
  options.backoff_base_s = 0.001;  // keep retry waits out of the test budget
  options.backoff_cap_s = 0.01;
  options.checkpoint_every_frames = 32;
  return options;
}

// ------------------------------------------------------------ unit pieces

TEST(Backoff, DoublesFromBaseAndSaturatesAtTheCap) {
  EXPECT_DOUBLE_EQ(backoff_delay_s(0, 0.05, 2.0), 0.05);
  EXPECT_DOUBLE_EQ(backoff_delay_s(1, 0.05, 2.0), 0.10);
  EXPECT_DOUBLE_EQ(backoff_delay_s(2, 0.05, 2.0), 0.20);
  EXPECT_DOUBLE_EQ(backoff_delay_s(3, 0.05, 2.0), 0.40);
  EXPECT_DOUBLE_EQ(backoff_delay_s(5, 0.05, 2.0), 1.60);
  EXPECT_DOUBLE_EQ(backoff_delay_s(6, 0.05, 2.0), 2.0);   // saturated
  EXPECT_DOUBLE_EQ(backoff_delay_s(60, 0.05, 2.0), 2.0);  // no overflow
  EXPECT_DOUBLE_EQ(backoff_delay_s(4, 0.0, 1.0), 0.0);    // zero base stays 0
}

TEST(FaultPlanSpec, RoundTripsThroughParse) {
  const char* specs[] = {
      "kill:shard=1,frame=50",
      "stall:shard=0,frame=10",
      "kill:shard=2,frame=7,item=3,attempts=all",
      "corrupt-checkpoint:shard=0,frame=40,mode=bitflip",
      "corrupt-checkpoint:shard=1,frame=8,mode=truncate,attempts=all",
      "drop-result:shard=2",
  };
  for (const char* text : specs) {
    FaultPlan plan;
    std::string why;
    ASSERT_TRUE(FaultPlan::parse(text, &plan, &why)) << text << ": " << why;
    EXPECT_TRUE(plan.enabled());
    // Canonical spec() must reproduce the normalized input exactly.
    FaultPlan again;
    ASSERT_TRUE(FaultPlan::parse(plan.spec(), &again, &why)) << plan.spec();
    EXPECT_EQ(plan.spec(), again.spec()) << text;
  }
  FaultPlan none;
  std::string why;
  ASSERT_TRUE(FaultPlan::parse("none", &none, &why));
  EXPECT_FALSE(none.enabled());
  EXPECT_EQ(none.spec(), "none");
}

TEST(FaultPlanSpec, ErrorsNameTheOffendingToken) {
  const struct {
    const char* text;
    const char* needle;
  } cases[] = {
      {"explode:shard=0", "explode"},
      {"kill", "shard=I"},
      {"kill:frame=5", "shard=I"},
      {"kill:shard=x", "'x'"},
      {"kill:shard=0,frame=-3", "'-3'"},
      {"kill:shard=0,colour=red", "colour"},
      {"kill:shard=0,frame", "key=value"},
      {"corrupt-checkpoint:shard=0,mode=zap", "zap"},
      {"kill:shard=0,attempts=twice", "twice"},
  };
  for (const auto& c : cases) {
    FaultPlan plan;
    std::string why;
    EXPECT_FALSE(FaultPlan::parse(c.text, &plan, &why)) << c.text;
    EXPECT_NE(why.find(c.needle), std::string::npos)
        << c.text << " -> " << why;
  }
}

TEST(FaultPlan, ArmsFirstAttemptOnlyUnlessEveryAttempt) {
  FaultPlan plan;
  plan.kind = FaultKind::kKill;
  plan.shard = 2;
  EXPECT_TRUE(plan.armed_for(2, 0));
  EXPECT_FALSE(plan.armed_for(2, 1));  // retries run clean by default
  EXPECT_FALSE(plan.armed_for(1, 0));  // other shards never see it
  plan.every_attempt = true;
  EXPECT_TRUE(plan.armed_for(2, 5));
}

TEST(ShardRangeTest, PartitionsTheGridExactlyOnce) {
  for (std::size_t total : {0u, 1u, 2u, 4u, 7u, 16u, 23u}) {
    for (std::size_t workers : {1u, 2u, 3u, 5u, 8u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (std::size_t s = 0; s < workers; ++s) {
        const ShardRange r = shard_range(total, s, workers);
        EXPECT_EQ(r.begin, prev_end) << total << "/" << workers << "/" << s;
        EXPECT_LE(r.end, total);
        covered += r.size();
        prev_end = r.end;
      }
      EXPECT_EQ(covered, total) << total << " items over " << workers;
      EXPECT_EQ(prev_end, total);
    }
  }
}

TEST(ShardArchive, ResultRoundTripsAndRefusesDamage) {
  const sweep::SweepSpec spec = tiny_spec();
  std::vector<sim::SimMetrics> items;
  for (std::size_t i = 0; i < 2; ++i) {
    items.push_back(sim::Simulator(sweep::item_config(spec, i)).run());
  }
  ShardHeader header;
  header.shard = 0;
  header.workers = 2;
  header.item_begin = 0;
  header.item_end = 2;
  header.master_seed = spec.base.seed;

  const std::vector<std::uint8_t> bytes = encode_shard_result(header, items);
  std::vector<sim::SimMetrics> back;
  std::string why;
  ASSERT_TRUE(decode_shard_result(bytes, header, &back, &why)) << why;
  ASSERT_EQ(back.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(back[i].requests_seen, items[i].requests_seen);
    EXPECT_EQ(back[i].data_bits_delivered, items[i].data_bits_delivered);
    EXPECT_EQ(back[i].burst_delay_s.mean(), items[i].burst_delay_s.mean());
  }

  // A single flipped bit anywhere trips the crc footer.
  for (std::size_t i = 0; i < bytes.size(); i += 13) {
    std::vector<std::uint8_t> damaged = bytes;
    damaged[i] ^= 0x04;
    EXPECT_FALSE(decode_shard_result(damaged, header, &back, &why))
        << "flip at " << i;
  }
  // Truncation -- below and above the footer boundary.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{3},
                                bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> trunc(bytes.begin(),
                                    bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode_shard_result(trunc, header, &back, &why))
        << "cut at " << cut;
  }
  // An intact archive from the wrong shard/run is refused by identity.
  for (auto mutate : {+[](ShardHeader* h) { h->shard = 1; },
                      +[](ShardHeader* h) { h->workers = 4; },
                      +[](ShardHeader* h) { h->item_end = 1; },
                      +[](ShardHeader* h) { h->master_seed ^= 1; }}) {
    ShardHeader other = header;
    mutate(&other);
    EXPECT_FALSE(decode_shard_result(bytes, other, &back, &why));
    EXPECT_NE(why.find("different shard"), std::string::npos) << why;
  }
}

TEST(ShardArchive, CheckpointRoundTripsWithSnapshotAndCursor) {
  const sweep::SweepSpec spec = tiny_spec();
  sim::Simulator sim(sweep::item_config(spec, 1));
  for (int f = 0; f < 40; ++f) sim.step_frame();

  ShardCheckpoint ck;
  ck.header.shard = 0;
  ck.header.workers = 1;
  ck.header.item_begin = 0;
  ck.header.item_end = 4;
  ck.header.master_seed = spec.base.seed;
  ck.next_item = 1;
  ck.completed = {sim::Simulator(sweep::item_config(spec, 0)).run()};
  ck.snapshot = sim.snapshot();

  const std::vector<std::uint8_t> bytes = encode_shard_checkpoint(ck);
  ShardCheckpoint back;
  std::string why;
  ASSERT_TRUE(decode_shard_checkpoint(bytes, ck.header, &back, &why)) << why;
  EXPECT_EQ(back.next_item, 1u);
  ASSERT_EQ(back.completed.size(), 1u);
  EXPECT_TRUE(back.snapshot == ck.snapshot);

  // The restored snapshot actually restores.
  sim::Simulator resumed(sweep::item_config(spec, 1));
  ASSERT_TRUE(resumed.restore(back.snapshot));
  EXPECT_EQ(resumed.frame_index(), sim.frame_index());

  // A cursor outside [item_begin, item_end] is structural damage even when
  // the crc is valid.  The encoder asserts it never writes one, so forge
  // it: patch the u64 at its fixed offset (magic 4 + version 4 + five u64
  // header fields = 48) and re-seal the footer.
  std::vector<std::uint8_t> forged = bytes;
  forged[48] = 9;
  for (std::size_t i = 49; i < 56; ++i) forged[i] = 0;
  const std::uint32_t crc = common::crc32(forged.data(), forged.size() - 4);
  for (std::size_t i = 0; i < 4; ++i) {
    forged[forged.size() - 4 + i] =
        static_cast<std::uint8_t>((crc >> (8 * i)) & 0xFFu);
  }
  EXPECT_FALSE(decode_shard_checkpoint(forged, ck.header, &back, &why));
  EXPECT_NE(why.find("cursor"), std::string::npos) << why;
}

// --------------------------------------------------- supervised execution

TEST(Supervisor, FaultFreeMergeIsBitIdenticalForAnyWorkerCount) {
  const sweep::SweepSpec spec = tiny_spec();
  const std::string reference = sweep::to_csv(sweep::run_sweep(spec, 1));
  for (const std::size_t workers : {1u, 2u, 3u, 4u}) {
    WorkDir dir;
    SupervisorOptions options = fast_options(dir.path);
    options.workers = workers;
    const SupervisorResult sup = run_supervised_sweep(spec, options);
    ASSERT_TRUE(sup.ok) << sup.error;
    EXPECT_EQ(sup.retries, 0);
    EXPECT_EQ(sweep::to_csv(sup.result), reference) << workers << " workers";
  }
}

TEST(Supervisor, KillAtEveryCheckpointBoundaryMergesIdentically) {
  // The tentpole property: for three master seeds, kill a worker at every
  // checkpoint boundary of its first in-flight item; the resumed run's
  // merged CSV must be byte-identical to the undisturbed single-process
  // sweep every time.
  for (const std::uint64_t seed : {101u, 7705u, 424243u}) {
    const sweep::SweepSpec spec = tiny_spec(seed);
    const std::string reference = sweep::to_csv(sweep::run_sweep(spec, 1));
    const std::int64_t frames =
        sim::Simulator(sweep::item_config(spec, 0)).total_frames();
    const std::int64_t every = 32;
    int resumed_runs = 0;
    for (std::int64_t boundary = every; boundary < frames; boundary += every) {
      WorkDir dir;
      SupervisorOptions options = fast_options(dir.path);
      options.workers = 2;
      options.checkpoint_every_frames = every;
      options.fault.kind = FaultKind::kKill;
      options.fault.shard = 1;
      options.fault.frame = boundary;
      const SupervisorResult sup = run_supervised_sweep(spec, options);
      ASSERT_TRUE(sup.ok) << "seed " << seed << " boundary " << boundary
                          << ": " << sup.error;
      EXPECT_EQ(sup.crashes, 1);
      EXPECT_EQ(sup.retries, 1);
      resumed_runs += sup.checkpoint_resumes;
      ASSERT_EQ(sweep::to_csv(sup.result), reference)
          << "seed " << seed << " boundary " << boundary;
    }
    // Kill-at-boundary leaves the just-written checkpoint on disk, so every
    // retry must have resumed rather than restarted.
    EXPECT_EQ(resumed_runs, static_cast<int>((frames - 1) / every))
        << "seed " << seed;
  }
}

TEST(Supervisor, StallPastTheTimeoutIsKilledAndRetried) {
  const sweep::SweepSpec spec = tiny_spec();
  const std::string reference = sweep::to_csv(sweep::run_sweep(spec, 1));
  WorkDir dir;
  SupervisorOptions options = fast_options(dir.path);
  options.workers = 2;
  options.timeout_s = 0.5;
  options.fault.kind = FaultKind::kStall;
  options.fault.shard = 0;
  options.fault.frame = 40;
  const SupervisorResult sup = run_supervised_sweep(spec, options);
  ASSERT_TRUE(sup.ok) << sup.error;
  EXPECT_EQ(sup.timeouts, 1);
  EXPECT_EQ(sup.retries, 1);
  EXPECT_EQ(sweep::to_csv(sup.result), reference);
}

TEST(Supervisor, DropResultIsAttributedAndRetriedNeverMergedPartial) {
  const sweep::SweepSpec spec = tiny_spec();
  const std::string reference = sweep::to_csv(sweep::run_sweep(spec, 1));
  WorkDir dir;
  SupervisorOptions options = fast_options(dir.path);
  options.workers = 2;
  options.fault.kind = FaultKind::kDropResult;
  options.fault.shard = 1;
  const SupervisorResult sup = run_supervised_sweep(spec, options);
  ASSERT_TRUE(sup.ok) << sup.error;
  EXPECT_EQ(sup.retries, 1);
  EXPECT_EQ(sweep::to_csv(sup.result), reference);
}

TEST(Supervisor, GivesUpAfterMaxRetriesWithAnAttributedError) {
  const sweep::SweepSpec spec = tiny_spec();
  WorkDir dir;
  SupervisorOptions options = fast_options(dir.path);
  options.workers = 2;
  options.max_retries = 2;
  options.fault.kind = FaultKind::kKill;
  options.fault.shard = 1;
  options.fault.frame = 20;
  options.fault.every_attempt = true;  // never recovers
  const SupervisorResult sup = run_supervised_sweep(spec, options);
  ASSERT_FALSE(sup.ok);
  EXPECT_EQ(sup.retries, 2);
  EXPECT_EQ(sup.crashes, 3);  // initial attempt + both retries
  // The error names the shard, the attempt count, and the cause.
  EXPECT_NE(sup.error.find("shard 1"), std::string::npos) << sup.error;
  EXPECT_NE(sup.error.find("3 attempt"), std::string::npos) << sup.error;
  EXPECT_NE(sup.error.find("signal 9"), std::string::npos) << sup.error;
}

TEST(Supervisor, CorruptCheckpointIsDiscardedGracefullyByDefault) {
  const sweep::SweepSpec spec = tiny_spec();
  const std::string reference = sweep::to_csv(sweep::run_sweep(spec, 1));
  for (const CorruptMode mode : {CorruptMode::kBitFlip, CorruptMode::kTruncate}) {
    WorkDir dir;
    SupervisorOptions options = fast_options(dir.path);
    options.workers = 2;
    options.fault.kind = FaultKind::kCorruptCheckpoint;
    options.fault.shard = 0;
    options.fault.frame = 40;
    options.fault.mode = mode;
    const SupervisorResult sup = run_supervised_sweep(spec, options);
    ASSERT_TRUE(sup.ok) << sup.error;
    EXPECT_EQ(sup.discarded_checkpoints, 1);
    EXPECT_EQ(sup.checkpoint_resumes, 0);  // restarted from scratch instead
    EXPECT_EQ(sweep::to_csv(sup.result), reference);
  }
}

TEST(Supervisor, CorruptCheckpointIsAHardErrorUnderStrict) {
  const sweep::SweepSpec spec = tiny_spec();
  WorkDir dir;
  SupervisorOptions options = fast_options(dir.path);
  options.workers = 2;
  options.strict_checkpoint = true;
  options.fault.kind = FaultKind::kCorruptCheckpoint;
  options.fault.shard = 0;
  options.fault.frame = 40;
  const SupervisorResult sup = run_supervised_sweep(spec, options);
  ASSERT_FALSE(sup.ok);
  EXPECT_NE(sup.error.find("shard 0"), std::string::npos) << sup.error;
  EXPECT_NE(sup.error.find("integrity"), std::string::npos) << sup.error;
  EXPECT_NE(sup.error.find("shard-0.ckpt"), std::string::npos) << sup.error;
}

TEST(Supervisor, WorkerBadCheckpointExitIsTheResumeBackstop) {
  // Hand a worker a resume order with no checkpoint on disk: it must exit
  // kWorkerBadCheckpoint rather than silently restart.
  const sweep::SweepSpec spec = tiny_spec();
  WorkDir dir;
  WorkerJob job;
  job.spec = spec;
  job.shard = 0;
  job.workers = 1;
  job.result_path = dir.path + "/r.result";
  job.checkpoint_path = dir.path + "/r.ckpt";
  job.resume = true;
  EXPECT_EQ(run_worker(job), kWorkerBadCheckpoint);
  std::remove(job.result_path.c_str());
  std::remove(job.checkpoint_path.c_str());
}

// ------------------------------------------------- exec path (sweep_main)

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(ExecMode, SweepMainWorkersSurviveAKillFaultBitIdentically) {
  const char* bin = std::getenv("WCDMA_SWEEP_MAIN");
  if (!bin || access(bin, X_OK) != 0) {
    GTEST_SKIP() << "WCDMA_SWEEP_MAIN not exported by ctest";
  }
  WorkDir dir;
  const std::string ref_csv = dir.path + "/ref.csv";
  const std::string sup_csv = dir.path + "/sup.csv";
  const std::string base = std::string(bin) +
                           " --preset smoke --replications 2 --duration 3";
  ASSERT_EQ(std::system((base + " --threads 1 --output " + ref_csv).c_str()),
            0);
  ASSERT_EQ(std::system((base +
                         " --workers 2 --fault kill:shard=1,frame=40"
                         " --checkpoint-every 16 --backoff 0.01"
                         " --runner-dir " + dir.path +
                         " --output " + sup_csv)
                            .c_str()),
            0);
  const std::string reference = read_text_file(ref_csv);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(read_text_file(sup_csv), reference);
  std::remove(ref_csv.c_str());
  std::remove(sup_csv.c_str());
}

}  // namespace
}  // namespace wcdma::runner
