// Dynamic-simulator tests: invariants of the frame loop (power caps, noise
// floors), determinism, Monte-Carlo thread invariance, and metric sanity.
// Scenarios use the 7-cell layout and short horizons to stay fast.
#include <gtest/gtest.h>

#include <string>

#include "src/sim/monte_carlo.hpp"
#include "src/sim/simulator.hpp"

namespace wcdma::sim {
namespace {

SystemConfig small_config() {
  SystemConfig cfg = default_config();
  cfg.layout.rings = 1;  // 7 cells
  cfg.voice.users = 14;
  cfg.data.users = 6;
  cfg.sim_duration_s = 20.0;
  cfg.warmup_s = 4.0;
  cfg.data.mean_reading_s = 1.5;
  cfg.seed = 12345;
  return cfg;
}

TEST(Simulator, RunsAndCompletesBursts) {
  Simulator simulator(small_config());
  const SimMetrics m = simulator.run();
  EXPECT_GT(m.requests_seen, 0);
  EXPECT_GT(m.burst_delay_s.count(), 0u);
  EXPECT_GT(m.data_bits_delivered, 0.0);
  EXPECT_GT(m.mean_delay_s(), 0.0);
}

TEST(Simulator, ForwardPowerNeverExceedsCap) {
  SystemConfig cfg = small_config();
  cfg.sim_duration_s = 8.0;
  Simulator simulator(cfg);
  const int frames = static_cast<int>(cfg.sim_duration_s / cfg.frame_s);
  for (int f = 0; f < frames; ++f) {
    simulator.step_frame();
    for (std::size_t k = 0; k < simulator.num_cells(); ++k) {
      EXPECT_LE(simulator.forward_power_w(k), cfg.radio.bs_max_power_w + 1e-9);
      EXPECT_GE(simulator.forward_power_w(k),
                cfg.radio.pilot_power_w + cfg.radio.common_power_w - 1e-9);
    }
  }
}

TEST(Simulator, ReverseInterferenceAtLeastThermal) {
  SystemConfig cfg = small_config();
  cfg.sim_duration_s = 5.0;
  Simulator simulator(cfg);
  const int frames = static_cast<int>(cfg.sim_duration_s / cfg.frame_s);
  for (int f = 0; f < frames; ++f) {
    simulator.step_frame();
    for (std::size_t k = 0; k < simulator.num_cells(); ++k) {
      EXPECT_GE(simulator.reverse_interference_w(k), simulator.thermal_noise_w());
    }
  }
}

TEST(Simulator, DeterministicForSameSeed) {
  const SystemConfig cfg = small_config();
  Simulator a(cfg), b(cfg);
  const SimMetrics ma = a.run();
  const SimMetrics mb = b.run();
  EXPECT_EQ(ma.burst_delay_s.count(), mb.burst_delay_s.count());
  EXPECT_DOUBLE_EQ(ma.mean_delay_s(), mb.mean_delay_s());
  EXPECT_DOUBLE_EQ(ma.data_bits_delivered, mb.data_bits_delivered);
  EXPECT_EQ(ma.grants, mb.grants);
}

TEST(Simulator, DifferentSeedsDiffer) {
  SystemConfig cfg = small_config();
  Simulator a(cfg);
  cfg.seed = 999;
  Simulator b(cfg);
  // Some observable difference should appear in bit-level outcomes.
  EXPECT_NE(a.run().data_bits_delivered, b.run().data_bits_delivered);
}

TEST(Simulator, WarmupExcludedFromMetrics) {
  SystemConfig long_warm = small_config();
  long_warm.warmup_s = 16.0;
  SystemConfig short_warm = small_config();
  short_warm.warmup_s = 4.0;
  const SimMetrics ml = Simulator(long_warm).run();
  const SimMetrics ms = Simulator(short_warm).run();
  // Same trajectory (same seed), so the longer warmup strictly shrinks the
  // observation window and can only remove samples.
  // Frame-boundary float accumulation can shift the window by one frame.
  EXPECT_NEAR(ml.observed_s, 4.0, 0.021);
  EXPECT_NEAR(ms.observed_s, 16.0, 0.021);
  EXPECT_LE(ml.burst_delay_s.count(), ms.burst_delay_s.count());
  EXPECT_LE(ml.requests_seen, ms.requests_seen);
}

TEST(Simulator, NoDataUsersMeansNoBursts) {
  SystemConfig cfg = small_config();
  cfg.data.users = 0;
  Simulator simulator(cfg);
  const SimMetrics m = simulator.run();
  EXPECT_EQ(m.requests_seen, 0);
  EXPECT_EQ(m.grants, 0);
  EXPECT_EQ(m.sch_frames, 0);
}

TEST(Simulator, VoiceOnlyStillControlsPower) {
  SystemConfig cfg = small_config();
  cfg.data.users = 0;
  Simulator simulator(cfg);
  const SimMetrics m = simulator.run();
  // Voice power control should hold SIR near target on average.
  EXPECT_GT(m.voice_sir_error_db.count(), 0u);
  EXPECT_NEAR(m.voice_sir_error_db.mean(), 0.0, 2.0);
}

TEST(Simulator, ReverseOnlyDirectionWorks) {
  SystemConfig cfg = small_config();
  cfg.data.forward_fraction = 0.0;  // all uploads
  Simulator simulator(cfg);
  const SimMetrics m = simulator.run();
  EXPECT_GT(m.burst_delay_s.count(), 0u);
}

TEST(Simulator, ForwardOnlyDirectionWorks) {
  SystemConfig cfg = small_config();
  cfg.data.forward_fraction = 1.0;  // all downloads
  Simulator simulator(cfg);
  const SimMetrics m = simulator.run();
  EXPECT_GT(m.burst_delay_s.count(), 0u);
}

TEST(Simulator, ModeOccupancyOnlyValidModes) {
  Simulator simulator(small_config());
  const SimMetrics m = simulator.run();
  std::int64_t mode_total = 0;
  for (std::size_t q = 1; q <= 6; ++q) mode_total += m.mode_frames[q];
  EXPECT_EQ(m.mode_frames[0], 0);
  EXPECT_EQ(m.mode_frames[7], 0);
  EXPECT_EQ(mode_total + m.sch_outage_frames, m.sch_frames);
}

TEST(Simulator, GrantedSgrWithinBounds) {
  Simulator simulator(small_config());
  const SimMetrics m = simulator.run();
  ASSERT_GT(m.granted_sgr.count(), 0u);
  EXPECT_GE(m.granted_sgr.min(), 1.0);
  EXPECT_LE(m.granted_sgr.max(), 16.0);
}

TEST(Simulator, QueueDelayLessThanTotalDelay) {
  Simulator simulator(small_config());
  const SimMetrics m = simulator.run();
  EXPECT_LE(m.queue_delay_s.mean(), m.mean_delay_s());
}

TEST(Simulator, FixedModeAblationRuns) {
  SystemConfig cfg = small_config();
  cfg.phy.fixed_mode = 3;
  Simulator simulator(cfg);
  const SimMetrics m = simulator.run();
  // All transmitting frames must use the fixed mode.
  for (std::size_t q = 1; q <= 6; ++q) {
    if (q != 3) {
      EXPECT_EQ(m.mode_frames[q], 0) << "mode " << q;
    }
  }
}

TEST(Simulator, CoverageBinsPopulated) {
  SystemConfig cfg = small_config();
  cfg.sim_duration_s = 30.0;
  Simulator simulator(cfg);
  const SimMetrics m = simulator.run();
  std::size_t populated = 0;
  for (const auto& bin : m.delay_by_distance) populated += bin.count() > 0 ? 1 : 0;
  EXPECT_GE(populated, 3u);  // users spread over several distance bins
}

// The runtime invariant checker (debug builds run it automatically at
// snapshot/restore and every kInvariantCheckPeriod frames; Release tests
// call it directly here) must hold through the whole frame loop, on both
// the default exhaustive provider and the culled provider with the
// far-field aggregator live.
TEST(Simulator, InvariantsHoldThroughRunDefaultProvider) {
  SystemConfig cfg = small_config();
  cfg.sim_duration_s = 6.0;
  Simulator simulator(cfg);
  std::string why;
  ASSERT_TRUE(simulator.check_invariants(&why)) << why;
  const int frames = static_cast<int>(cfg.sim_duration_s / cfg.frame_s);
  for (int f = 0; f < frames; ++f) {
    simulator.step_frame();
    ASSERT_TRUE(simulator.check_invariants(&why))
        << "frame " << f << ": " << why;
  }
}

TEST(Simulator, InvariantsHoldWithCulledProviderAndFarField) {
  SystemConfig cfg = small_config();
  cfg.sim_duration_s = 6.0;
  cfg.csi.provider = "culled";
  cfg.csi.refresh_interval_s = 0.2;
  cfg.csi.cull_radius_scale = 2.0;
  cfg.csi.far_field.enabled = true;
  Simulator simulator(cfg);
  ASSERT_TRUE(simulator.far_field_active());
  std::string why;
  const int frames = static_cast<int>(cfg.sim_duration_s / cfg.frame_s);
  for (int f = 0; f < frames; ++f) {
    simulator.step_frame();
    ASSERT_TRUE(simulator.check_invariants(&why))
        << "frame " << f << ": " << why;
  }
  // And the contract survives a snapshot/restore round trip.
  Simulator resumed(cfg);
  ASSERT_TRUE(resumed.restore(simulator.snapshot()));
  ASSERT_TRUE(resumed.check_invariants(&why)) << why;
}

TEST(MonteCarlo, ThreadCountInvariant) {
  SystemConfig cfg = small_config();
  cfg.sim_duration_s = 10.0;
  const MonteCarloResult one = run_replications(cfg, 3, 1);
  const MonteCarloResult two = run_replications(cfg, 3, 2);
  ASSERT_EQ(one.replication_mean_delay_s.size(), two.replication_mean_delay_s.size());
  for (std::size_t i = 0; i < one.replication_mean_delay_s.size(); ++i) {
    EXPECT_DOUBLE_EQ(one.replication_mean_delay_s[i], two.replication_mean_delay_s[i]);
  }
  EXPECT_DOUBLE_EQ(one.merged.mean_delay_s(), two.merged.mean_delay_s());
}

TEST(MonteCarlo, ReplicationsAreIndependent) {
  SystemConfig cfg = small_config();
  cfg.sim_duration_s = 10.0;
  const MonteCarloResult r = run_replications(cfg, 3, 2);
  EXPECT_NE(r.replication_mean_delay_s[0], r.replication_mean_delay_s[1]);
}

TEST(Metrics, MergeAddsEverything) {
  SimMetrics a, b;
  a.burst_delay_s.add(1.0);
  b.burst_delay_s.add(3.0);
  a.grants = 2;
  b.grants = 5;
  a.mode_frames[2] = 10;
  b.mode_frames[2] = 7;
  a.merge(b);
  EXPECT_EQ(a.burst_delay_s.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean_delay_s(), 2.0);
  EXPECT_EQ(a.grants, 7);
  EXPECT_EQ(a.mode_frames[2], 17);
}

TEST(Config, ValidateAcceptsDefaults) {
  const SystemConfig cfg = default_config();
  cfg.validate();  // must not abort
  SUCCEED();
}

}  // namespace
}  // namespace wcdma::sim
