// Traffic model tests: on/off voice statistics and the WWW burst source.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/traffic/data.hpp"
#include "src/traffic/voice.hpp"

namespace wcdma::traffic {
namespace {

using common::Rng;
using common::StreamingMoments;

TEST(Voice, ActivityFactorFromConfig) {
  VoiceConfig cfg;
  cfg.mean_on_s = 1.0;
  cfg.mean_off_s = 1.5;
  VoiceSource v(cfg, Rng(3));
  EXPECT_NEAR(v.activity_factor(), 0.4, 1e-12);
}

TEST(Voice, LongRunActivityMatchesFactor) {
  VoiceConfig cfg;
  VoiceSource v(cfg, Rng(5));
  int active = 0;
  const int frames = 500000;
  for (int i = 0; i < frames; ++i) active += v.step(0.02) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(active) / frames, 0.4, 0.02);
}

TEST(Voice, StepSpanningMultipleTransitions) {
  // A very long dt must still leave the source in a valid state and the
  // stationary distribution intact (statistically).
  VoiceConfig cfg;
  VoiceSource v(cfg, Rng(7));
  int active = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) active += v.step(10.0) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(active) / n, 0.4, 0.02);
}

TEST(Voice, ManySourcesMultiplex) {
  // Law-of-large-numbers check from Section 1: average concurrent talkers
  // approaches N * p_on.
  VoiceConfig cfg;
  std::vector<VoiceSource> sources;
  Rng rng(11);
  const int n_src = 100;
  for (int i = 0; i < n_src; ++i) sources.emplace_back(cfg, rng.fork(i));
  StreamingMoments m;
  for (int f = 0; f < 20000; ++f) {
    int on = 0;
    for (auto& s : sources) on += s.step(0.02) ? 1 : 0;
    m.add(on);
  }
  EXPECT_NEAR(m.mean(), n_src * 0.4, 1.0);
}

TEST(Data, MeanBurstBytesFormula) {
  DataTrafficConfig cfg;
  // Sample mean must match the closed-form truncated-Pareto mean.
  DataSource src(cfg, Rng(13));
  StreamingMoments m;
  for (int i = 0; i < 200000; ++i) {
    Rng r(Rng(99).fork(i)());
    m.add(r.pareto_truncated(cfg.pareto_alpha, cfg.min_burst_bytes, cfg.max_burst_bytes));
  }
  EXPECT_NEAR(m.mean(), mean_burst_bytes(cfg), 0.02 * mean_burst_bytes(cfg));
}

TEST(Data, NoArrivalWhileInFlight) {
  DataTrafficConfig cfg;
  cfg.mean_reading_s = 0.001;  // arrivals essentially immediate
  DataSource src(cfg, Rng(17));
  // First arrival.
  std::optional<double> burst;
  for (int i = 0; i < 1000 && !burst; ++i) burst = src.step(0.02);
  ASSERT_TRUE(burst.has_value());
  EXPECT_TRUE(src.waiting_for_completion());
  // While in flight no further bursts arrive.
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(src.step(0.02).has_value());
  // Completion re-arms the reading timer.
  src.notify_burst_done();
  burst.reset();
  for (int i = 0; i < 1000 && !burst; ++i) burst = src.step(0.02);
  EXPECT_TRUE(burst.has_value());
}

TEST(Data, BurstSizesWithinTruncation) {
  DataTrafficConfig cfg;
  cfg.mean_reading_s = 0.001;
  DataSource src(cfg, Rng(19));
  for (int b = 0; b < 200; ++b) {
    std::optional<double> burst;
    for (int i = 0; i < 10000 && !burst; ++i) burst = src.step(0.02);
    ASSERT_TRUE(burst.has_value());
    EXPECT_GE(*burst, cfg.min_burst_bytes);
    EXPECT_LE(*burst, cfg.max_burst_bytes);
    src.notify_burst_done();
  }
}

TEST(Data, ReadingTimeRoughlyExponential) {
  DataTrafficConfig cfg;
  cfg.mean_reading_s = 2.0;
  DataSource src(cfg, Rng(23));
  StreamingMoments gaps;
  double t = 0.0;
  double last_done = 0.0;
  for (int completed = 0; completed < 2000;) {
    const auto burst = src.step(0.02);
    t += 0.02;
    if (burst) {
      gaps.add(t - last_done);
      src.notify_burst_done();
      last_done = t;
      ++completed;
    }
  }
  EXPECT_NEAR(gaps.mean(), 2.0, 0.15);
}

}  // namespace
}  // namespace wcdma::traffic
