// Cell-layer tests: hex layout geometry and wrap-around, mobility models,
// and soft-handoff active-set management.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/cell/active_set.hpp"
#include "src/cell/geometry.hpp"
#include "src/cell/mobility.hpp"
#include "src/common/rng.hpp"

namespace wcdma::cell {
namespace {

using common::Rng;

// ---------------------------------------------------------------- layout

TEST(HexLayout, RingCellCounts) {
  for (const auto& [rings, cells] : std::vector<std::pair<int, std::size_t>>{
           {0, 1}, {1, 7}, {2, 19}, {3, 37}}) {
    HexLayoutConfig cfg;
    cfg.rings = rings;
    cfg.wrap_around = false;
    EXPECT_EQ(HexLayout(cfg).num_cells(), cells) << "rings=" << rings;
  }
}

TEST(HexLayout, FirstRingAtLatticeDistance) {
  HexLayoutConfig cfg;
  cfg.rings = 1;
  cfg.cell_radius_m = 1000.0;
  HexLayout layout(cfg);
  const double d = std::sqrt(3.0) * 1000.0;
  for (std::size_t k = 1; k < 7; ++k) {
    EXPECT_NEAR(distance(layout.center(0), layout.center(k)), d, 1e-6);
  }
}

TEST(HexLayout, CentersAreUnique) {
  HexLayoutConfig cfg;
  cfg.rings = 2;
  HexLayout layout(cfg);
  for (std::size_t i = 0; i < layout.num_cells(); ++i) {
    for (std::size_t j = i + 1; j < layout.num_cells(); ++j) {
      EXPECT_GT(distance(layout.center(i), layout.center(j)), 1.0);
    }
  }
}

TEST(HexLayout, WrapDistanceNeverExceedsDirect) {
  HexLayoutConfig cfg;
  cfg.rings = 2;
  cfg.wrap_around = true;
  HexLayout layout(cfg);
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const Point p = layout.random_point(rng.uniform(), rng.uniform());
    for (std::size_t k = 0; k < layout.num_cells(); ++k) {
      EXPECT_LE(layout.distance_to_cell(p, k), distance(p, layout.center(k)) + 1e-9);
    }
  }
}

TEST(HexLayout, WrapBoundsWorstCaseDistance) {
  // With wrap-around, no point in the service area is catastrophically far
  // from every cell: the nearest cell is within ~2 cell radii.
  HexLayoutConfig cfg;
  cfg.rings = 2;
  cfg.cell_radius_m = 1000.0;
  HexLayout layout(cfg);
  Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    const Point p = layout.random_point(rng.uniform(), rng.uniform());
    const std::size_t k = layout.nearest_cell(p);
    EXPECT_LE(layout.distance_to_cell(p, k), 2.0 * cfg.cell_radius_m);
  }
}

TEST(HexLayout, NearestCellOfCenterIsZero) {
  HexLayout layout;
  EXPECT_EQ(layout.nearest_cell({0.0, 0.0}), 0u);
  EXPECT_EQ(layout.nearest_cell({1.0, -1.0}), 0u);
}

TEST(HexLayout, RandomPointInsideServiceRadius) {
  HexLayout layout;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const Point p = layout.random_point(rng.uniform(), rng.uniform());
    EXPECT_LE(norm(p), layout.service_radius_m() + 1e-9);
  }
}

TEST(HexLayout, WrapTranslationsHaveClusterMagnitude) {
  // For a K-cell cluster, |u| = sqrt(3K) * R.
  HexLayoutConfig cfg;
  cfg.rings = 2;  // K = 19
  cfg.cell_radius_m = 1000.0;
  HexLayout layout(cfg);
  ASSERT_EQ(layout.wrap_translations().size(), 6u);
  for (const Point& t : layout.wrap_translations()) {
    EXPECT_NEAR(norm(t), std::sqrt(3.0 * 19.0) * 1000.0, 1.0);
  }
}

// ---------------------------------------------------------------- mobility

TEST(RandomWaypoint, StaysInRegion) {
  MobilityConfig cfg;
  cfg.region_radius_m = 1500.0;
  RandomWaypoint rw(cfg, Rng(11));
  for (int i = 0; i < 5000; ++i) {
    rw.step(0.5);
    EXPECT_LE(norm(rw.position()), cfg.region_radius_m + 1e-6);
  }
}

TEST(RandomWaypoint, MovedDistanceMatchesSpeed) {
  MobilityConfig cfg;
  cfg.min_speed_mps = 10.0;
  cfg.max_speed_mps = 10.0;  // pin the speed
  cfg.region_radius_m = 1e5;  // waypoints far away: rarely reached
  RandomWaypoint rw(cfg, Rng(13));
  const double moved = rw.step(2.0);
  EXPECT_NEAR(moved, 20.0, 1e-6);
}

TEST(RandomWaypoint, SpeedWithinBounds) {
  MobilityConfig cfg;
  cfg.min_speed_mps = 1.0;
  cfg.max_speed_mps = 20.0;
  RandomWaypoint rw(cfg, Rng(17));
  for (int i = 0; i < 200; ++i) {
    rw.step(5.0);  // traverse several waypoints
    EXPECT_GE(rw.speed_mps(), 1.0);
    EXPECT_LE(rw.speed_mps(), 20.0);
  }
}

TEST(RandomWaypoint, PauseHaltsMotion) {
  MobilityConfig cfg;
  cfg.pause_s = 1000.0;  // effectively permanent pause at first waypoint
  cfg.min_speed_mps = cfg.max_speed_mps = 5.0;
  cfg.region_radius_m = 10.0;  // tiny region: waypoint reached quickly
  RandomWaypoint rw(cfg, Rng(19));
  rw.step(100.0);  // reach waypoint, start pausing
  const Point before = rw.position();
  const double moved = rw.step(10.0);
  EXPECT_DOUBLE_EQ(moved, 0.0);
  EXPECT_DOUBLE_EQ(before.x, rw.position().x);
}

TEST(RandomWaypoint, StaysInOffCentreRegion) {
  MobilityConfig cfg;
  cfg.region_radius_m = 400.0;
  cfg.region_center = {5000.0, -2000.0};  // home-cell disc far from the origin
  RandomWaypoint rw(cfg, Rng(29));
  for (int i = 0; i < 5000; ++i) {
    rw.step(0.5);
    EXPECT_LE(norm(rw.position() - cfg.region_center), cfg.region_radius_m + 1e-6);
  }
}

TEST(RandomWalk, StaysInOffCentreRegion) {
  MobilityConfig cfg;
  cfg.region_radius_m = 300.0;
  cfg.region_center = {-1500.0, 900.0};
  RandomWalk walk(cfg, Rng(31));
  for (int i = 0; i < 5000; ++i) {
    walk.step(0.5);
    EXPECT_LE(norm(walk.position() - cfg.region_center), cfg.region_radius_m + 1e-6);
  }
}

TEST(HexLayout, CellCountFormula) {
  EXPECT_EQ(hex_cell_count(0), 1u);
  EXPECT_EQ(hex_cell_count(1), 7u);
  EXPECT_EQ(hex_cell_count(2), 19u);
  for (int rings : {0, 1, 2, 3, 4}) {
    EXPECT_EQ(HexLayout(HexLayoutConfig{rings, 1000.0, true}).num_cells(),
              hex_cell_count(rings));
  }
}

TEST(RandomWalk, StaysInRegion) {
  MobilityConfig cfg;
  cfg.region_radius_m = 800.0;
  RandomWalk walk(cfg, Rng(23));
  for (int i = 0; i < 5000; ++i) {
    walk.step(0.5);
    EXPECT_LE(norm(walk.position()), cfg.region_radius_m + 1e-6);
  }
}

TEST(FixedPosition, NeverMoves) {
  FixedPosition fixed({3.0, 4.0});
  EXPECT_DOUBLE_EQ(fixed.step(10.0), 0.0);
  EXPECT_DOUBLE_EQ(fixed.position().x, 3.0);
  EXPECT_DOUBLE_EQ(fixed.speed_mps(), 0.0);
}

MobilityConfig corridor_config() {
  MobilityConfig cfg;
  cfg.kind = MobilityKind::kCorridor;
  cfg.min_speed_mps = 16.7;
  cfg.max_speed_mps = 33.3;
  cfg.corridor_half_length_m = 4000.0;
  cfg.corridor_half_width_m = 500.0;
  return cfg;
}

TEST(CorridorMobility, StaysOnTheRoad) {
  CorridorMobility car(corridor_config(), Rng(31));
  const double lane_y = car.position().y;
  for (int i = 0; i < 5000; ++i) {
    car.step(0.25);
    EXPECT_LE(std::fabs(car.position().x), 4000.0 + 1e-6);
    // The lane offset is drawn once and never changes: pure along-road motion.
    EXPECT_DOUBLE_EQ(car.position().y, lane_y);
    EXPECT_LE(std::fabs(lane_y), 500.0);
  }
}

TEST(CorridorMobility, MovesDirectionallyAndWrapsAround) {
  const MobilityConfig cfg = corridor_config();
  CorridorMobility car(cfg, Rng(47));
  const int dir = car.direction();
  int wraps = 0;
  double prev_x = car.position().x;
  // 2500 s at >= 16.7 m/s covers the 8 km road several times.
  for (int i = 0; i < 10000; ++i) {
    const double speed_before = car.speed_mps();  // wraps redraw the speed
    const double moved = car.step(0.25);
    EXPECT_NEAR(moved, speed_before * 0.25, 1e-9);
    EXPECT_EQ(car.direction(), dir);  // direction persists for the whole drive
    const double dx = car.position().x - prev_x;
    if (dir * dx < 0.0) {
      ++wraps;  // only a wrap moves the position against the travel direction
      EXPECT_GT(std::fabs(dx), cfg.corridor_half_length_m);
    }
    EXPECT_GE(car.speed_mps(), cfg.min_speed_mps);
    EXPECT_LE(car.speed_mps(), cfg.max_speed_mps);
    prev_x = car.position().x;
  }
  EXPECT_GE(wraps, 2);
}

TEST(CorridorMobility, DerivesHalfLengthFromRegionRadius) {
  MobilityConfig cfg = corridor_config();
  cfg.corridor_half_length_m = 0.0;  // derive from the service region
  cfg.region_radius_m = 1500.0;
  CorridorMobility car(cfg, Rng(53));
  for (int i = 0; i < 2000; ++i) {
    car.step(0.5);
    EXPECT_LE(std::fabs(car.position().x), 1500.0 + 1e-6);
  }
}

TEST(MakeMobility, BuildsTheConfiguredKind) {
  MobilityConfig rw;
  rw.region_radius_m = 1000.0;
  const auto waypoint = make_mobility(rw, Rng(5));
  ASSERT_NE(waypoint, nullptr);
  EXPECT_NE(dynamic_cast<RandomWaypoint*>(waypoint.get()), nullptr);

  const auto corridor = make_mobility(corridor_config(), Rng(5));
  ASSERT_NE(corridor, nullptr);
  EXPECT_NE(dynamic_cast<CorridorMobility*>(corridor.get()), nullptr);
}

// ---------------------------------------------------------------- active set

ActiveSetConfig as_config() {
  ActiveSetConfig cfg;
  cfg.t_add_db = -14.0;
  cfg.t_drop_db = -16.0;
  cfg.drop_timer_s = 1.0;
  cfg.max_size = 3;
  cfg.reduced_size = 2;
  return cfg;
}

TEST(ActiveSet, AddsPilotsAboveThreshold) {
  ActiveSet as(as_config(), 4);
  as.update({-10.0, -13.0, -20.0, -25.0}, 0.02);
  EXPECT_EQ(as.members().size(), 2u);
  EXPECT_TRUE(as.contains(0));
  EXPECT_TRUE(as.contains(1));
  EXPECT_EQ(as.primary(), 0u);
}

TEST(ActiveSet, NeverEmptyEvenBelowThreshold) {
  ActiveSet as(as_config(), 3);
  as.update({-30.0, -28.0, -35.0}, 0.02);
  ASSERT_EQ(as.members().size(), 1u);
  EXPECT_EQ(as.primary(), 1u);  // strongest pilot latched
}

TEST(ActiveSet, DropRequiresTimerExpiry) {
  ActiveSet as(as_config(), 2);
  as.update({-10.0, -12.0}, 0.02);
  EXPECT_TRUE(as.contains(1));
  // Pilot 1 sinks below T_DROP: stays during the timer, leaves after.
  for (int i = 0; i < 49; ++i) as.update({-10.0, -20.0}, 0.02);
  EXPECT_TRUE(as.contains(1)) << "should survive until drop timer expires";
  for (int i = 0; i < 3; ++i) as.update({-10.0, -20.0}, 0.02);
  EXPECT_FALSE(as.contains(1));
}

TEST(ActiveSet, DropTimerResetsOnRecovery) {
  ActiveSet as(as_config(), 2);
  as.update({-10.0, -12.0}, 0.02);
  for (int i = 0; i < 40; ++i) as.update({-10.0, -20.0}, 0.02);  // 0.8 s below
  as.update({-10.0, -12.0}, 0.02);                               // recovers
  for (int i = 0; i < 40; ++i) as.update({-10.0, -20.0}, 0.02);  // 0.8 s again
  EXPECT_TRUE(as.contains(1)) << "timer must reset on recovery";
}

TEST(ActiveSet, RespectsMaxSizeKeepingStrongest) {
  ActiveSet as(as_config(), 5);
  as.update({-5.0, -6.0, -7.0, -8.0, -9.0}, 0.02);
  EXPECT_EQ(as.members().size(), 3u);
  EXPECT_TRUE(as.contains(0));
  EXPECT_TRUE(as.contains(1));
  EXPECT_TRUE(as.contains(2));
}

TEST(ActiveSet, StrongerCandidateReplacesWeakestMember) {
  ActiveSet as(as_config(), 4);
  as.update({-5.0, -6.0, -7.0, -30.0}, 0.02);
  EXPECT_TRUE(as.contains(2));
  // Cell 3 surges above everyone: it should displace the weakest member.
  as.update({-5.0, -6.0, -7.0, -3.0}, 0.02);
  EXPECT_TRUE(as.contains(3));
  EXPECT_FALSE(as.contains(2));
}

TEST(ActiveSet, ReducedSetIsTwoStrongest) {
  ActiveSet as(as_config(), 4);
  as.update({-8.0, -5.0, -11.0, -30.0}, 0.02);
  const auto reduced = as.reduced();
  ASSERT_EQ(reduced.size(), 2u);
  EXPECT_EQ(reduced[0], 1u);  // strongest first
  EXPECT_EQ(reduced[1], 0u);
}

TEST(ActiveSet, SparseUpdateMatchesDenseWithFloor) {
  // Two sets driven by the same pilot trajectory: one dense (unreported
  // cells at the floor), one sparse.  Membership must evolve identically,
  // including drop-timer expiry of a cell that stops being reported.
  ActiveSet dense(as_config(), 6);
  ActiveSet sparse(as_config(), 6);
  const double kFloor = -500.0;

  auto step_both = [&](const std::vector<std::pair<std::size_t, double>>& pilots,
                       double dt) {
    std::vector<double> full(6, kFloor);
    for (const auto& [cell, db] : pilots) full[cell] = db;
    dense.update(full, dt);
    sparse.update_sparse(pilots, kFloor, dt);
    ASSERT_EQ(dense.members(), sparse.members());
    EXPECT_EQ(dense.primary(), sparse.primary());
    EXPECT_EQ(dense.reduced(), sparse.reduced());
  };

  step_both({{0, -9.0}, {1, -12.0}, {2, -13.5}, {3, -20.0}}, 0.02);
  EXPECT_EQ(sparse.members().size(), 3u);
  // Cell 1 degrades below t_drop; cell 4 appears strong.
  for (int i = 0; i < 60; ++i) {
    step_both({{0, -9.0}, {1, -17.0}, {2, -13.0}, {4, -10.0}}, 0.02);
  }
  EXPECT_FALSE(sparse.contains(1));  // drop timer expired identically
  EXPECT_TRUE(sparse.contains(4));
}

TEST(ActiveSet, AdjustmentFactors) {
  ActiveSet as(as_config(), 3);
  as.update({-10.0, -30.0, -30.0}, 0.02);
  EXPECT_DOUBLE_EQ(as.forward_adjustment(), 1.0);  // single leg
  EXPECT_DOUBLE_EQ(as.reverse_adjustment(), 1.0);
  as.update({-10.0, -11.0, -30.0}, 0.02);
  EXPECT_NEAR(as.forward_adjustment(), 1.8, 1e-12);  // two legs cost more
  EXPECT_NEAR(as.reverse_adjustment(), 0.8, 1e-12);  // diversity discount
}

}  // namespace
}  // namespace wcdma::cell
