// Power-control tests: closed-loop convergence, rail behaviour, and the
// outer-loop FER equilibrium.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/power/power_control.hpp"

namespace wcdma::power {
namespace {

// Simulated static link: measured SIR (dB) = TX power (dBm) + gain constant.
struct StaticLink {
  double gain_db;  // SIR achieved per dBm of TX power
  double measure(const ClosedLoopPowerControl& pc) const {
    return pc.power_dbm() + gain_db;
  }
};

TEST(ClosedLoop, ConvergesToTargetOnStaticChannel) {
  PowerControlConfig cfg;
  cfg.target_sir_db = 7.0;
  ClosedLoopPowerControl pc(cfg, 0.0);
  StaticLink link{-5.0};  // needs 12 dBm for 7 dB SIR
  for (int i = 0; i < 50; ++i) pc.update(link.measure(pc));
  EXPECT_NEAR(pc.power_dbm(), 12.0, 0.01);
  EXPECT_NEAR(link.measure(pc), 7.0, 0.01);
  EXPECT_FALSE(pc.saturated());
}

TEST(ClosedLoop, PerFrameSwingIsLimited) {
  PowerControlConfig cfg;
  cfg.step_db = 1.0;
  cfg.commands_per_frame = 16;
  ClosedLoopPowerControl pc(cfg, 0.0);
  // Demand a 100 dB correction: one frame can swing at most 16 dB.
  pc.update(cfg.target_sir_db - 100.0);
  EXPECT_NEAR(pc.power_dbm(), 16.0, 1e-12);
}

TEST(ClosedLoop, ClampsAtMaxAndFlagsSaturation) {
  PowerControlConfig cfg;
  cfg.max_power_dbm = 23.0;
  ClosedLoopPowerControl pc(cfg, 20.0);
  StaticLink link{-30.0};  // unreachable target
  for (int i = 0; i < 10; ++i) pc.update(link.measure(pc));
  EXPECT_DOUBLE_EQ(pc.power_dbm(), 23.0);
  EXPECT_TRUE(pc.saturated());
}

TEST(ClosedLoop, ClampsAtMin) {
  PowerControlConfig cfg;
  cfg.min_power_dbm = -50.0;
  ClosedLoopPowerControl pc(cfg, -45.0);
  StaticLink link{+100.0};  // target overshot massively
  for (int i = 0; i < 10; ++i) pc.update(link.measure(pc));
  EXPECT_DOUBLE_EQ(pc.power_dbm(), -50.0);
}

TEST(ClosedLoop, PowerWattMatchesDbm) {
  ClosedLoopPowerControl pc({}, 30.0);
  EXPECT_NEAR(pc.power_watt(), 1.0, 1e-12);
}

TEST(ClosedLoop, TracksSlowFade) {
  PowerControlConfig cfg;
  ClosedLoopPowerControl pc(cfg, 0.0);
  double gain = -5.0;
  for (int i = 0; i < 200; ++i) {
    gain -= 0.05;  // 2.5 dB/s fade at 20 ms frames
    pc.update(pc.power_dbm() + gain);
  }
  // Converged within a step of the ideal power.
  EXPECT_NEAR(pc.power_dbm() + gain, cfg.target_sir_db, 1.0);
}

TEST(OuterLoop, EquilibriumFerMatchesTarget) {
  const double fer_target = 0.02;
  OuterLoopPowerControl outer(7.0, fer_target, 0.5, 3.0, 12.0);
  common::Rng rng(3);
  // Toy link: frame errors happen when target is below 7 dB + noise margin.
  int errors = 0;
  const int frames = 200000;
  for (int i = 0; i < frames; ++i) {
    // Error probability falls steeply with target: sigmoid around 5.5 dB.
    const double p_err = 1.0 / (1.0 + std::exp(4.0 * (outer.target_db() - 5.5)));
    const bool err = rng.uniform() < p_err;
    errors += err ? 1 : 0;
    outer.on_frame(err);
  }
  EXPECT_NEAR(static_cast<double>(errors) / frames, fer_target, 0.005);
}

TEST(OuterLoop, JumpsUpOnError) {
  OuterLoopPowerControl outer(7.0, 0.01, 0.5, 3.0, 12.0);
  const double before = outer.target_db();
  outer.on_frame(true);
  EXPECT_NEAR(outer.target_db(), before + 0.5, 1e-12);
}

TEST(OuterLoop, StaysWithinBounds) {
  OuterLoopPowerControl outer(7.0, 0.01, 0.5, 3.0, 12.0);
  for (int i = 0; i < 100; ++i) outer.on_frame(true);
  EXPECT_DOUBLE_EQ(outer.target_db(), 12.0);
  for (int i = 0; i < 100000; ++i) outer.on_frame(false);
  EXPECT_DOUBLE_EQ(outer.target_db(), 3.0);
}

}  // namespace
}  // namespace wcdma::power
