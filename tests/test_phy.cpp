// Adaptive physical layer tests: the VTAOC mode ladder, constant-BER
// threshold design, closed-form Rayleigh performance vs Monte-Carlo, the
// adaptive-vs-fixed dominance property (the paper's "significant gain in
// average throughput"), link adapters, and the spreading arithmetic of
// Eq. (2), (4) and (5).
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/phy/adaptation.hpp"
#include "src/phy/link_adapter.hpp"
#include "src/phy/modes.hpp"
#include "src/phy/spreading.hpp"

namespace wcdma::phy {
namespace {

using common::Rng;
using common::StreamingMoments;

AdaptationPolicy make_policy(double pb = 1e-3, FloorPolicy floor = FloorPolicy::kOutage) {
  VtaocParams params;
  params.b1 = 2.0;
  return AdaptationPolicy(make_vtaoc_modes(params), pb, floor);
}

// ---------------------------------------------------------------- modes

TEST(Modes, LadderThroughputsArePowersOfTwo) {
  const ModeSet modes = make_vtaoc_modes({});
  ASSERT_EQ(modes.size(), 6u);
  EXPECT_DOUBLE_EQ(modes.mode(1).throughput, 1.0 / 32.0);
  EXPECT_DOUBLE_EQ(modes.mode(6).throughput, 1.0);
  for (int q = 2; q <= 6; ++q) {
    EXPECT_DOUBLE_EQ(modes.mode(q).throughput, 2.0 * modes.mode(q - 1).throughput);
  }
}

TEST(Modes, BerDecreasesWithGamma) {
  const ModeSet modes = make_vtaoc_modes({});
  const auto& m = modes.mode(3);
  EXPECT_GT(m.ber(1.0), m.ber(2.0));
  EXPECT_GT(m.ber(2.0), m.ber(10.0));
}

TEST(Modes, BerClippedAtHalf) {
  const ModeSet modes = make_vtaoc_modes({});
  EXPECT_DOUBLE_EQ(modes.mode(1).ber(0.0), 0.5);
}

TEST(Modes, GammaForBerInvertsCorrectly) {
  const ModeSet modes = make_vtaoc_modes({});
  for (int q = 1; q <= 6; ++q) {
    const double g = modes.mode(q).gamma_for_ber(1e-3);
    EXPECT_NEAR(modes.mode(q).ber(g), 1e-3, 1e-12);
  }
}

TEST(Modes, HigherModesNeedMoreGammaForSameBer) {
  const ModeSet modes = make_vtaoc_modes({});
  for (int q = 2; q <= 6; ++q) {
    EXPECT_GT(modes.mode(q).gamma_for_ber(1e-3), modes.mode(q - 1).gamma_for_ber(1e-3));
  }
}

TEST(Modes, DescribeListsAllModes) {
  const ModeSet modes = make_vtaoc_modes({});
  const std::string d = modes.describe();
  EXPECT_NE(d.find("mode-1"), std::string::npos);
  EXPECT_NE(d.find("mode-6"), std::string::npos);
}

// ---------------------------------------------------------------- adaptation

TEST(Adaptation, ThresholdsMatchClosedForm) {
  const auto policy = make_policy(1e-3);
  // t_q = ln(a/Pb)/b_q with a = 0.5, b_q = 2/2^(q-1).
  for (std::size_t q = 1; q <= 6; ++q) {
    const double b_q = 2.0 / std::pow(2.0, static_cast<double>(q - 1));
    EXPECT_NEAR(policy.thresholds()[q - 1], std::log(0.5 / 1e-3) / b_q, 1e-9);
  }
}

TEST(Adaptation, ThresholdStepIsThreeDb) {
  const auto policy = make_policy();
  for (std::size_t q = 1; q < 6; ++q) {
    const double ratio_db = 10.0 * std::log10(policy.thresholds()[q] /
                                              policy.thresholds()[q - 1]);
    EXPECT_NEAR(ratio_db, 3.0103, 1e-3);
  }
}

TEST(Adaptation, SelectsHighestAdmissibleMode) {
  const auto policy = make_policy();
  const auto& t = policy.thresholds();
  EXPECT_EQ(policy.select(t[3] * 1.01).mode, 4);
  EXPECT_EQ(policy.select(t[3] * 0.99).mode, 3);
  // Exactly at threshold -> that mode.
  EXPECT_EQ(policy.select(t[5]).mode, 6);
}

TEST(Adaptation, OutageBelowFirstThreshold) {
  const auto policy = make_policy();
  const auto d = policy.select(policy.thresholds()[0] * 0.5);
  EXPECT_EQ(d.mode, 0);
  EXPECT_DOUBLE_EQ(d.throughput, 0.0);
  EXPECT_TRUE(d.meets_ber);
}

TEST(Adaptation, LowestModeFloorTransmitsAnyway) {
  const auto policy = make_policy(1e-3, FloorPolicy::kLowestMode);
  const auto d = policy.select(policy.thresholds()[0] * 0.5);
  EXPECT_EQ(d.mode, 1);
  EXPECT_FALSE(d.meets_ber);
}

TEST(Adaptation, AvgThroughputMatchesMonteCarlo) {
  const auto policy = make_policy();
  Rng rng(7);
  for (double mean_csi : {2.0, 10.0, 50.0}) {
    StreamingMoments m;
    for (int i = 0; i < 200000; ++i) {
      const double gamma = -mean_csi * std::log(1.0 - rng.uniform());  // Exp(mean)
      m.add(policy.select(gamma).throughput);
    }
    EXPECT_NEAR(m.mean(), policy.avg_throughput_rayleigh(mean_csi),
                0.02 * policy.avg_throughput_rayleigh(mean_csi) + 1e-4)
        << "mean_csi=" << mean_csi;
  }
}

TEST(Adaptation, OutageProbabilityMatchesFormula) {
  const auto policy = make_policy();
  const double eps = 5.0;
  EXPECT_NEAR(policy.outage_probability_rayleigh(eps),
              1.0 - std::exp(-policy.thresholds()[0] / eps), 1e-12);
  const auto lowest = make_policy(1e-3, FloorPolicy::kLowestMode);
  EXPECT_DOUBLE_EQ(lowest.outage_probability_rayleigh(eps), 0.0);
}

TEST(Adaptation, ModeProbabilitiesSumWithOutage) {
  const auto policy = make_policy();
  for (double eps : {1.0, 8.0, 40.0}) {
    double total = policy.outage_probability_rayleigh(eps);
    for (int q = 1; q <= 6; ++q) total += policy.mode_probability_rayleigh(eps, q);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Adaptation, AvgThroughputMonotoneInCsi) {
  const auto policy = make_policy();
  double prev = 0.0;
  for (double db = -5.0; db <= 30.0; db += 1.0) {
    const double cur = policy.avg_throughput_rayleigh(std::pow(10.0, db / 10.0));
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

// The constant-BER property (footnote 1 of the paper): with the outage
// floor, realised BER never exceeds the target, at any mean CSI.
class ConstantBerSweep : public ::testing::TestWithParam<double> {};

TEST_P(ConstantBerSweep, AvgBerAtOrBelowTarget) {
  const double target = 1e-3;
  const auto policy = make_policy(target);
  const double eps = std::pow(10.0, GetParam() / 10.0);
  EXPECT_LE(policy.avg_ber_rayleigh(eps), target * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(CsiGrid, ConstantBerSweep,
                         ::testing::Values(-10.0, -5.0, 0.0, 3.0, 6.0, 10.0, 13.0,
                                           16.0, 20.0, 25.0, 30.0));

// Adaptive dominance: the VTAOC average throughput is at least that of any
// single fixed mode operated with the same BER guarantee, at any CSI.
class AdaptiveDominance
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(AdaptiveDominance, BeatsOrMatchesFixedMode) {
  const auto [db, q] = GetParam();
  const auto policy = make_policy();
  const double eps = std::pow(10.0, db / 10.0);
  EXPECT_GE(policy.avg_throughput_rayleigh(eps) * (1.0 + 1e-12),
            policy.fixed_mode_avg_throughput_rayleigh(eps, q));
}

INSTANTIATE_TEST_SUITE_P(
    GridByMode, AdaptiveDominance,
    ::testing::Combine(::testing::Values(-5.0, 0.0, 5.0, 10.0, 15.0, 20.0, 25.0),
                       ::testing::Values(1, 2, 3, 4, 5, 6)));

TEST(Adaptation, AvgBerMonteCarloAgreement) {
  const auto policy = make_policy();
  Rng rng(11);
  const double eps = 8.0;
  double err_bits = 0.0, bits = 0.0;
  for (int i = 0; i < 400000; ++i) {
    const double gamma = -eps * std::log(1.0 - rng.uniform());
    const auto d = policy.select(gamma);
    if (d.mode == 0) continue;
    const auto& mode = policy.modes().mode(d.mode);
    err_bits += mode.throughput * mode.ber(gamma);
    bits += mode.throughput;
  }
  EXPECT_NEAR(err_bits / bits, policy.avg_ber_rayleigh(eps),
              0.1 * policy.avg_ber_rayleigh(eps));
}

// ---------------------------------------------------------------- adapters

TEST(LinkAdapter, PerfectFeedbackNeverViolatesBer) {
  const auto policy = make_policy();
  LinkAdapter adapter(&policy, 0, 0.0, Rng(13));
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const double csi = rng.exponential(10.0);
    const auto out = adapter.on_frame(csi);
    EXPECT_FALSE(out.ber_violation);
  }
}

TEST(LinkAdapter, StaleFeedbackCanViolateBer) {
  const auto policy = make_policy();
  LinkAdapter adapter(&policy, 1, 0.0, Rng(19));
  // Strong CSI then a collapse: the delayed feedback still reports strong.
  adapter.on_frame(200.0);
  adapter.on_frame(200.0);
  const auto out = adapter.on_frame(0.5);
  EXPECT_GT(out.mode, 0);  // still transmitting on stale info
  EXPECT_TRUE(out.ber_violation);
}

TEST(LinkAdapter, ExpectedThroughputDelegates) {
  const auto policy = make_policy();
  LinkAdapter adapter(&policy, 0, 0.0, Rng(23));
  EXPECT_DOUBLE_EQ(adapter.expected_throughput(10.0),
                   policy.avg_throughput_rayleigh(10.0));
}

TEST(FixedRateAdapter, SilentBelowThreshold) {
  const auto policy = make_policy();
  FixedRateAdapter adapter(&policy, 4, 0, 0.0, Rng(29));
  const double t4 = policy.thresholds()[3];
  EXPECT_EQ(adapter.on_frame(t4 * 0.9).mode, 0);
  EXPECT_EQ(adapter.on_frame(t4 * 1.1).mode, 4);
}

TEST(FixedRateAdapter, ExpectedThroughputFormula) {
  const auto policy = make_policy();
  FixedRateAdapter adapter(&policy, 2, 0, 0.0, Rng(31));
  EXPECT_DOUBLE_EQ(adapter.expected_throughput(5.0),
                   policy.fixed_mode_avg_throughput_rayleigh(5.0, 2));
}

// ---------------------------------------------------------------- spreading

TEST(Spreading, TotalProcessingGain) {
  Spreading s;  // W = 3.6864 Mcps
  EXPECT_NEAR(s.total_processing_gain(9600.0), 384.0, 1e-9);  // Eq. 2
}

TEST(Spreading, SpreadingGainSplitsByThroughput) {
  Spreading s;
  // g = beta * W / Rb (Eq. 2 rearranged): FCH at beta = 0.25.
  EXPECT_NEAR(s.fch_spreading_gain(), 0.25 * 384.0, 1e-9);
}

TEST(Spreading, SchBitRateEq4) {
  SpreadingConfig cfg;
  cfg.fch_bit_rate = 9600.0;
  cfg.fch_throughput = 0.25;
  Spreading s(cfg);
  // Rs = Rf * m * beta_s/beta_f: m=8, beta_s=0.5 -> 9600*8*2 = 153600.
  EXPECT_NEAR(s.sch_bit_rate(8, 0.5), 153600.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.sch_bit_rate(0, 0.5), 0.0);
}

TEST(Spreading, PowerRatioEq5) {
  SpreadingConfig cfg;
  cfg.gamma_s = 8.0;
  Spreading s(cfg);
  EXPECT_DOUBLE_EQ(s.sch_power_ratio(4), 32.0);
  EXPECT_DOUBLE_EQ(s.sch_power_ratio(0), 0.0);
}

TEST(Spreading, RateScalesLinearlyInSgr) {
  Spreading s;
  const double r1 = s.sch_bit_rate(1, 0.25);
  for (int m = 2; m <= 16; ++m) {
    EXPECT_NEAR(s.sch_bit_rate(m, 0.25), m * r1, 1e-9);
  }
}

}  // namespace
}  // namespace wcdma::phy
