// Tests for the SoA hot-path rework: deterministic intra-frame parallelism
// (sim.threads bit-identity), the lazy-fading replay equivalence against an
// eagerly-stepped channel::Ar1Fading on the same stream, and the indexed
// per-(direction, carrier) request queues against the O(users) scan.
#include <gtest/gtest.h>

#include <cmath>

#include "src/channel/fading.hpp"
#include "src/scenario/scenario.hpp"
#include "src/sim/channel_state.hpp"
#include "src/sim/frame_state.hpp"
#include "src/sim/request_queue.hpp"
#include "src/sim/simulator.hpp"
#include "src/sweep/sweep.hpp"

namespace wcdma {
namespace {

sim::SystemConfig small_config() {
  sim::SystemConfig cfg = sim::default_config();
  cfg.voice.users = 24;
  cfg.data.users = 10;
  cfg.sim_duration_s = 8.0;
  cfg.warmup_s = 2.0;
  cfg.data.mean_reading_s = 1.0;
  cfg.seed = 777;
  return cfg;
}

void expect_identical(const sim::SimMetrics& a, const sim::SimMetrics& b) {
  EXPECT_EQ(a.mean_delay_s(), b.mean_delay_s());
  EXPECT_EQ(a.data_bits_delivered, b.data_bits_delivered);
  EXPECT_EQ(a.grants, b.grants);
  EXPECT_EQ(a.requests_seen, b.requests_seen);
  EXPECT_EQ(a.granted_sgr.mean(), b.granted_sgr.mean());
  EXPECT_EQ(a.queue_delay_s.mean(), b.queue_delay_s.mean());
  EXPECT_EQ(a.reverse_rise_db.mean(), b.reverse_rise_db.mean());
  EXPECT_EQ(a.forward_load_fraction.mean(), b.forward_load_fraction.mean());
  EXPECT_EQ(a.voice_sir_error_db.mean(), b.voice_sir_error_db.mean());
  EXPECT_EQ(a.pending_queue_len.mean(), b.pending_queue_len.mean());
}

// --- sim.threads bit-identity ---------------------------------------------

TEST(SimThreads, OneVsFourThreadsBitIdentical) {
  sim::SystemConfig cfg = small_config();
  cfg.sim_threads = 1;
  const sim::SimMetrics t1 = sim::Simulator(cfg).run();
  cfg.sim_threads = 4;
  const sim::SimMetrics t4 = sim::Simulator(cfg).run();
  expect_identical(t1, t4);
}

TEST(SimThreads, CulledProviderBitIdenticalAcrossThreadCounts) {
  sim::SystemConfig cfg = small_config();
  cfg.csi.provider = "culled";
  cfg.sim_threads = 1;
  const sim::SimMetrics t1 = sim::Simulator(cfg).run();
  cfg.sim_threads = 3;
  const sim::SimMetrics t3 = sim::Simulator(cfg).run();
  cfg.sim_threads = 0;  // hardware concurrency
  const sim::SimMetrics t0 = sim::Simulator(cfg).run();
  expect_identical(t1, t3);
  expect_identical(t1, t0);
}

TEST(SimThreads, FastProviderBitIdenticalAcrossThreadCounts) {
  // The relaxed-precision provider is NOT bit-identical to the reference,
  // but it must still be bit-identical to ITSELF for every sim.threads
  // value: the sharded loops carry no cross-shard state (per-user batch
  // streams, stack-local lanes), and perf_smoke publishes fast rows at
  // sim_threads = 4 on that basis.
  sim::SystemConfig cfg = small_config();
  cfg.csi.provider = "fast";
  cfg.sim_threads = 1;
  const sim::SimMetrics t1 = sim::Simulator(cfg).run();
  cfg.sim_threads = 4;
  const sim::SimMetrics t4 = sim::Simulator(cfg).run();
  expect_identical(t1, t4);
}

TEST(SimThreads, MultiCarrierScenarioBitIdentical) {
  scenario::ScenarioLayout layout = scenario::enterprise_data();
  layout.sim_duration_s = 8.0;
  layout.warmup_s = 2.0;
  sim::SystemConfig cfg = layout.to_config();
  ASSERT_EQ(cfg.placement.carriers, 2);
  cfg.sim_threads = 1;
  const sim::SimMetrics t1 = sim::Simulator(cfg).run();
  cfg.sim_threads = 4;
  const sim::SimMetrics t4 = sim::Simulator(cfg).run();
  expect_identical(t1, t4);
}

TEST(SimThreads, ResolvesHardwareConcurrencyForZero) {
  sim::SystemConfig cfg = small_config();
  cfg.sim_duration_s = 1.0;
  cfg.warmup_s = 0.5;
  cfg.sim_threads = 0;
  const sim::Simulator simulator(cfg);
  EXPECT_GE(simulator.sim_threads(), 1u);
  cfg.sim_threads = 5;
  const sim::Simulator pinned(cfg);
  EXPECT_EQ(pinned.sim_threads(), 5u);
}

// --- Lazy fading replay ----------------------------------------------------

TEST(FrameStateFading, LazyReplayMatchesEagerAr1OnTheSameStream) {
  const cell::HexLayout layout(cell::HexLayoutConfig{});
  const channel::PathLoss path_loss{channel::PathLossConfig{}};
  const channel::ShadowingConfig shadowing{};
  const double frame_s = 0.020;
  const double doppler = 24.0;

  sim::FrameState state;
  state.init(&layout, &path_loss, shadowing, channel::FadingKind::kAr1, frame_s, 16,
             1);
  const common::Rng user_rng(0xfade);
  state.init_user(0, user_rng, doppler);

  // The eager twin consumes the identical stream the legacy per-link
  // construction used: user_rng.fork(100 + cell).fork(2).
  const std::size_t cell_idx = 7;
  channel::Ar1Fading eager(doppler, frame_s, user_rng.fork(100 + cell_idx).fork(2));

  // Observe only every 5th frame: the replay must hide the gap entirely.
  for (int frame = 1; frame <= 40; ++frame) {
    state.advance_frame();
    const double eager_gain = eager.step(frame_s);
    if (frame % 5 == 0) {
      EXPECT_EQ(state.fading_factor(0, cell_idx), eager_gain) << "frame " << frame;
    }
  }
}

TEST(FrameStateFading, NoneFadingIsUnitGain) {
  const cell::HexLayout layout(cell::HexLayoutConfig{});
  const channel::PathLoss path_loss{channel::PathLossConfig{}};
  sim::FrameState state;
  state.init(&layout, &path_loss, channel::ShadowingConfig{},
             channel::FadingKind::kNone, 0.020, 16, 1);
  state.init_user(0, common::Rng(1), 10.0);
  state.advance_frame();
  EXPECT_EQ(state.fading_factor(0, 0), 1.0);
}

// --- Indexed request queues ------------------------------------------------

TEST(RequestQueues, BucketOpsKeepAscendingUserOrder) {
  sim::RequestQueues queues;
  queues.init(2);
  queues.add(5, 0, true);
  queues.add(2, 0, true);
  queues.add(9, 0, true);
  queues.add(3, 1, false);
  EXPECT_EQ(queues.bucket(true, 0), (std::vector<int>{2, 5, 9}));
  EXPECT_EQ(queues.bucket(false, 1), (std::vector<int>{3}));
  EXPECT_EQ(queues.total_pending(), 4u);
  queues.remove(5, 0, true);
  EXPECT_EQ(queues.bucket(true, 0), (std::vector<int>{2, 9}));
  EXPECT_EQ(queues.total_pending(), 3u);
}

TEST(RequestQueues, MatchesFullScanEveryFrame) {
  // The incrementally-maintained queues must agree with the O(users) scan
  // after every frame, through grants, rejections, SCRM retries, and burst
  // completions.
  sim::SystemConfig cfg = small_config();
  cfg.data.mean_reading_s = 0.6;  // request-heavy
  sim::Simulator simulator(cfg);
  const int frames = static_cast<int>(cfg.sim_duration_s / cfg.frame_s);
  int seen_pending = 0;
  for (int f = 0; f < frames; ++f) {
    simulator.step_frame();
    ASSERT_EQ(simulator.queued_requests(), simulator.pending_requests())
        << "frame " << f;
    seen_pending += simulator.pending_requests();
  }
  EXPECT_GT(seen_pending, 0);  // the run actually exercised the queues
}

TEST(RequestQueues, MatchesFullScanUnderHandDown) {
  scenario::ScenarioLayout layout = scenario::enterprise_data();
  layout.data_users = 48;
  layout.sim_duration_s = 10.0;
  layout.warmup_s = 2.0;
  sim::SystemConfig cfg = layout.to_config();
  cfg.admission.policy = "hand-down";
  sim::Simulator simulator(cfg);
  const int frames = static_cast<int>(cfg.sim_duration_s / cfg.frame_s);
  for (int f = 0; f < frames; ++f) {
    simulator.step_frame();
    ASSERT_EQ(simulator.queued_requests(), simulator.pending_requests())
        << "frame " << f;
  }
  EXPECT_GT(simulator.metrics().carrier_hand_downs, 0);
}

// --- Sweep-level integration ----------------------------------------------

TEST(SimThreads, SweepAxisLeavesMetricsIdentical) {
  sweep::SweepSpec spec;
  spec.name = "threads-identity";
  spec.base = small_config();
  spec.base.sim_duration_s = 4.0;
  spec.base.warmup_s = 1.0;
  spec.axes = {sweep::axis_sim_threads({1, 4})};
  spec.replications = 1;
  spec.common_random_numbers = true;
  const sweep::SweepResult r = sweep::run_sweep(spec, 0);
  ASSERT_EQ(r.scenarios.size(), 2u);
  expect_identical(r.scenarios[0].merged, r.scenarios[1].merged);
}

}  // namespace
}  // namespace wcdma
