// MAC tests: the cdma2000 packet-data state machine of Fig. 3, the set-up
// delay penalty of Eq. (22)-(23), and SCRM request-queue semantics.
#include <gtest/gtest.h>

#include "src/mac/mac_state.hpp"
#include "src/mac/scrm.hpp"

namespace wcdma::mac {
namespace {

MacTimersConfig timers() {
  MacTimersConfig t;
  t.t1_s = 0.2;
  t.t2_s = 2.0;
  t.t3_s = 10.0;
  t.d1_s = 0.040;
  t.d2_s = 0.300;
  return t;
}

// ---------------------------------------------------------------- Eq. 23

TEST(SetupDelay, PiecewiseBoundaries) {
  const auto t = timers();
  EXPECT_DOUBLE_EQ(setup_delay_for_wait(t, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(setup_delay_for_wait(t, 1.999), 0.0);
  EXPECT_DOUBLE_EQ(setup_delay_for_wait(t, 2.0), 0.040);   // t_w == T2 -> D1
  EXPECT_DOUBLE_EQ(setup_delay_for_wait(t, 9.999), 0.040);
  EXPECT_DOUBLE_EQ(setup_delay_for_wait(t, 10.0), 0.300);  // t_w == T3 -> D2
  EXPECT_DOUBLE_EQ(setup_delay_for_wait(t, 100.0), 0.300);
}

TEST(SetupDelay, EffectiveRequestDelayAddsPenalty) {
  const auto t = timers();
  EXPECT_DOUBLE_EQ(effective_request_delay(t, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(effective_request_delay(t, 5.0), 5.040);
  EXPECT_DOUBLE_EQ(effective_request_delay(t, 12.0), 12.300);
}

// ---------------------------------------------------------------- Fig. 3

TEST(MacStateMachine, DecaysThroughStatesWithIdleTime) {
  MacStateMachine sm(timers(), MacState::kActive);
  sm.step(0.02, true);
  EXPECT_EQ(sm.state(), MacState::kActive);
  // Idle just past 0.2 s -> Control Hold (one extra frame clears the exact
  // floating-point boundary of the accumulated idle clock).
  for (int i = 0; i < 11; ++i) sm.step(0.02, false);
  EXPECT_EQ(sm.state(), MacState::kControlHold);
  // Idle past 2 s total -> Suspended.
  for (int i = 0; i < 91; ++i) sm.step(0.02, false);
  EXPECT_EQ(sm.state(), MacState::kSuspended);
  // Idle past 10 s total -> Dormant.
  for (int i = 0; i < 401; ++i) sm.step(0.02, false);
  EXPECT_EQ(sm.state(), MacState::kDormant);
}

TEST(MacStateMachine, TransmissionResetsToActive) {
  MacStateMachine sm(timers(), MacState::kDormant);
  sm.step(0.02, true);
  EXPECT_EQ(sm.state(), MacState::kActive);
  EXPECT_DOUBLE_EQ(sm.idle_s(), 0.0);
}

TEST(MacStateMachine, SetupDelayPerState) {
  MacStateMachine sm(timers(), MacState::kActive);
  EXPECT_DOUBLE_EQ(sm.setup_delay(), 0.0);
  for (int i = 0; i < 15; ++i) sm.step(0.02, false);  // Control Hold
  EXPECT_DOUBLE_EQ(sm.setup_delay(), 0.0);
  for (int i = 0; i < 95; ++i) sm.step(0.02, false);  // Suspended
  EXPECT_DOUBLE_EQ(sm.setup_delay(), 0.040);
  for (int i = 0; i < 400; ++i) sm.step(0.02, false);  // Dormant
  EXPECT_DOUBLE_EQ(sm.setup_delay(), 0.300);
}

TEST(MacStateMachine, IdleClockAccumulates) {
  MacStateMachine sm(timers(), MacState::kActive);
  for (int i = 0; i < 5; ++i) sm.step(0.02, false);
  EXPECT_NEAR(sm.idle_s(), 0.1, 1e-12);
}

TEST(MacState, ToStringNames) {
  EXPECT_STREQ(to_string(MacState::kActive), "Active");
  EXPECT_STREQ(to_string(MacState::kControlHold), "ControlHold");
  EXPECT_STREQ(to_string(MacState::kSuspended), "Suspended");
  EXPECT_STREQ(to_string(MacState::kDormant), "Dormant");
}

// ---------------------------------------------------------------- SCRM

TEST(PilotReport, CapsAtEightStrongest) {
  std::vector<double> pilots(12);
  for (std::size_t k = 0; k < pilots.size(); ++k) {
    pilots[k] = -20.0 + static_cast<double>(k);  // cell 11 strongest
  }
  const auto report = make_pilot_report(pilots);
  ASSERT_EQ(report.size(), kMaxScrmPilots);
  EXPECT_EQ(report.front().cell, 11u);
  for (std::size_t i = 1; i < report.size(); ++i) {
    EXPECT_GE(report[i - 1].ec_io_db, report[i].ec_io_db);
  }
  // The four weakest cells (0..3) must be absent.
  for (const auto& pr : report) EXPECT_GE(pr.cell, 4u);
}

TEST(PilotReport, FewerCellsThanCap) {
  const auto report = make_pilot_report({-10.0, -12.0});
  EXPECT_EQ(report.size(), 2u);
}

TEST(RequestQueue, FifoByArrival) {
  RequestQueue q;
  q.push({.user = 1, .direction = LinkDirection::kForward, .burst_bytes = 100,
          .arrival_s = 2.0, .priority = 0, .pilot_reports = {}});
  q.push({.user = 2, .direction = LinkDirection::kForward, .burst_bytes = 100,
          .arrival_s = 1.0, .priority = 0, .pilot_reports = {}});
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pending()[0].user, 2);  // earlier arrival first
  EXPECT_EQ(q.pending()[1].user, 1);
}

TEST(RequestQueue, PushReplacesExistingUser) {
  RequestQueue q;
  q.push({.user = 7, .direction = LinkDirection::kReverse, .burst_bytes = 100,
          .arrival_s = 1.0, .priority = 0, .pilot_reports = {}});
  q.push({.user = 7, .direction = LinkDirection::kReverse, .burst_bytes = 999,
          .arrival_s = 3.0, .priority = 0, .pilot_reports = {}});
  ASSERT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.pending()[0].burst_bytes, 999);
}

TEST(RequestQueue, RemoveAndFind) {
  RequestQueue q;
  q.push({.user = 3, .direction = LinkDirection::kForward, .burst_bytes = 50,
          .arrival_s = 0.5, .priority = 0, .pilot_reports = {}});
  EXPECT_TRUE(q.find(3).has_value());
  EXPECT_FALSE(q.find(4).has_value());
  q.remove(3);
  EXPECT_TRUE(q.empty());
}

TEST(RequestQueue, WaitingTime) {
  BurstRequest r;
  r.user = 1;
  r.arrival_s = 2.0;
  EXPECT_DOUBLE_EQ(RequestQueue::waiting_s(r, 5.5), 3.5);
}

}  // namespace
}  // namespace wcdma::mac
