// Far-field aggregation tests (src/sim/far_field.hpp): activation contract
// per provider, the incremental TX-bucket maintenance against a from-scratch
// rebuild across heavy churn, ring-gain geometry, and the exact-cancellation
// property that keeps small worlds (candidates == all cells) numerically
// indistinguishable from no far field at all.  The statistical accuracy of
// the aggregate itself is gated in tests/test_statcheck.cpp; this file pins
// the bookkeeping.
#include <gtest/gtest.h>

#include <cstddef>

#include "src/scenario/scenario.hpp"
#include "src/sim/simulator.hpp"

namespace wcdma::sim {
namespace {

TEST(FarField, InactiveForExhaustiveProviderAndWhenDisabled) {
  scenario::ScenarioLayout layout = scenario::uniform_hex7();
  layout.sim_duration_s = 4.0;
  layout.warmup_s = 1.0;

  // The exhaustive provider has no culled cells, so there is no far field
  // regardless of the config knob.
  SystemConfig cfg = layout.to_config();
  cfg.csi.provider = "exhaustive";
  Simulator exhaustive(cfg);
  EXPECT_FALSE(exhaustive.far_field_active());

  // A culling provider with the knob off must behave the same way: the
  // reverse terms it reports stay exactly zero, so the station noise floor
  // is bit-identical to the pre-far-field sum.
  cfg.csi.provider = "culled";
  cfg.csi.far_field.enabled = false;
  Simulator disabled(cfg);
  EXPECT_FALSE(disabled.far_field_active());
  for (int f = 0; f < 50; ++f) disabled.step_frame();
  for (std::size_t k = 0; k < 7; ++k) {
    EXPECT_EQ(disabled.far_field().reverse_far_w(k, 0), 0.0);
  }

  cfg.csi.far_field.enabled = true;
  Simulator enabled(cfg);
  EXPECT_TRUE(enabled.far_field_active());
}

// The incremental per-frame bucket updates (on_user_tx add/remove deltas
// plus re-anchoring at refresh) must stay equal to a from-scratch rebuild
// of the same sums.  Vehicular speeds, a flash-crowd arrival pulse, and a
// short refresh timer maximise churn: users change TX power every frame,
// hop carriers, and move between anchors.
TEST(FarField, IncrementalTxBucketsMatchRebuildAcrossLoadRampChurn) {
  scenario::ScenarioLayout layout = scenario::uniform_hex7();
  layout.sim_duration_s = 10.0;
  layout.warmup_s = 1.0;
  layout.max_speed_mps = 30.0;
  layout.min_speed_mps = 10.0;
  layout.load_ramp.peak_scale = 4.0;
  layout.load_ramp.start_s = 2.0;
  layout.load_ramp.rise_s = 2.0;
  layout.load_ramp.hold_s = 3.0;
  layout.load_ramp.fall_s = 2.0;
  SystemConfig cfg = layout.to_config();
  cfg.csi.provider = "culled";
  cfg.csi.refresh_interval_s = 0.2;
  // Shrink the candidate radius below the world size so cells are actually
  // culled and the far field carries real power.
  cfg.csi.cull_radius_scale = 2.0;
  cfg.placement.carriers = 2;
  Simulator simulator(cfg);
  ASSERT_TRUE(simulator.far_field_active());

  const int frames = static_cast<int>(cfg.sim_duration_s / cfg.frame_s);
  for (int f = 0; f < frames; ++f) {
    simulator.step_frame();
    if (f % 25 == 0 || f == frames - 1) {
      ASSERT_TRUE(simulator.far_field().tx_buckets_match_rebuild(1e-9))
          << "incremental bucket sums diverged from rebuild at frame " << f;
    }
  }
  // The churn scenario must produce a live far field, otherwise the
  // assertions above prove nothing.
  double reverse_mass = 0.0;
  for (std::size_t k = 0; k < 7; ++k) {
    for (int c = 0; c < 2; ++c) reverse_mass += simulator.far_field().reverse_far_w(k, c);
  }
  EXPECT_GT(reverse_mass, 0.0);
}

TEST(FarField, RingGainsDecayWithDistance) {
  scenario::ScenarioLayout layout = scenario::large_hex();
  layout.voice_users = 40;  // geometry test: user count is irrelevant
  layout.data_users = 8;
  layout.sim_duration_s = 2.0;
  layout.warmup_s = 0.5;
  SystemConfig cfg = layout.to_config();
  cfg.csi.provider = "culled";
  Simulator simulator(cfg);
  ASSERT_TRUE(simulator.far_field_active());
  const FarFieldAggregator& ff = simulator.far_field();
  ASSERT_GE(ff.num_rings(), 4u);
  // Within one anchor, farther cells never see a larger ring gain: gains
  // follow the path-loss curve at ring-centre distances.
  const double g1 = ff.ring_gain(0, 1);
  const double g3 = ff.ring_gain(0, 18);  // a mid-ring cell
  EXPECT_GT(g1, 0.0);
  EXPECT_GT(g3, 0.0);
  EXPECT_GT(g1, g3);
}

// When the candidate radius covers the whole world the aggregate-minus-
// candidates remainder is pure floating-point residue; the clamp keeps the
// folded terms non-negative and they must stay negligible against thermal
// noise, so a culling provider on a small world is statistically the
// exhaustive trajectory.
TEST(FarField, FarTermsVanishWhenCandidatesCoverTheWorld) {
  scenario::ScenarioLayout layout = scenario::uniform_hex7();
  layout.sim_duration_s = 6.0;
  layout.warmup_s = 1.0;
  SystemConfig cfg = layout.to_config();
  cfg.csi.provider = "culled";
  cfg.csi.cull_radius_scale = 4.0;  // every cell of the 7-cell world is live
  Simulator simulator(cfg);
  ASSERT_TRUE(simulator.far_field_active());
  const int frames = static_cast<int>(cfg.sim_duration_s / cfg.frame_s);
  for (int f = 0; f < frames; ++f) simulator.step_frame();
  // Thermal noise at 5 dB NF sits around 5e-14 W; require far terms at
  // least six orders of magnitude below it.
  for (std::size_t k = 0; k < 7; ++k) {
    EXPECT_LT(simulator.far_field().reverse_far_w(k, 0), 1e-20);
  }
}

// Randomized-churn property: on top of the load-ramp pulse, a hand-down
// storm hops idle data users between carriers through the service seam
// (Simulator::set_user_carrier) every frame -- the externally-driven
// carrier moves hit the same O(1) on_user_tx delta path as the hand-down
// policy's grants, and the incremental TX buckets must stay within pure
// fp residue of a from-scratch rebuild for all 200 frames.
TEST(FarField, TxBucketsSurviveRandomizedHandDownStorms) {
  scenario::ScenarioLayout layout = scenario::uniform_hex7();
  layout.sim_duration_s = 4.0;  // 200 frames @ 50 frames/s
  layout.warmup_s = 1.0;
  layout.max_speed_mps = 30.0;
  layout.min_speed_mps = 10.0;
  layout.load_ramp.peak_scale = 4.0;
  layout.load_ramp.start_s = 0.5;
  layout.load_ramp.rise_s = 1.0;
  layout.load_ramp.hold_s = 1.5;
  layout.load_ramp.fall_s = 1.0;
  SystemConfig cfg = layout.to_config();
  cfg.csi.provider = "culled";
  cfg.csi.refresh_interval_s = 0.2;
  cfg.csi.cull_radius_scale = 2.0;
  cfg.placement.carriers = 3;
  Simulator simulator(cfg);
  ASSERT_TRUE(simulator.far_field_active());

  // Test-local stream, independent of every simulator stream: the storm is
  // deterministic but uncorrelated with the trajectory it batters.
  common::Rng storm(0xCAFEF00Dull);
  const auto first_data = static_cast<std::size_t>(cfg.voice.users);
  const auto data_users = static_cast<std::uint64_t>(cfg.data.users);
  ASSERT_GT(data_users, 0u);
  const int frames = 200;
  ASSERT_EQ(static_cast<int>(cfg.sim_duration_s / cfg.frame_s), frames);
  int hops = 0;
  for (int f = 0; f < frames; ++f) {
    // Up to three forced hand-downs per frame, skipping users whose burst
    // machinery is in flight (the same precondition the service enforces).
    for (int attempt = 0; attempt < 3; ++attempt) {
      const std::size_t u = first_data +
          static_cast<std::size_t>(storm.uniform_int(data_users));
      ASSERT_TRUE(simulator.user_is_data(u));
      if (simulator.user_has_pending(u) || simulator.user_burst_active(u)) {
        continue;
      }
      const int carrier = static_cast<int>(
          storm.uniform_int(static_cast<std::uint64_t>(cfg.placement.carriers)));
      if (carrier == simulator.user_carrier(u)) continue;
      simulator.set_user_carrier(u, carrier);
      ++hops;
    }
    simulator.step_frame();
    ASSERT_TRUE(simulator.far_field().tx_buckets_match_rebuild(1e-9))
        << "incremental bucket sums diverged from rebuild at frame " << f;
  }
  // The storm must have actually moved users and left a live far field,
  // otherwise the per-frame assertions prove nothing.
  EXPECT_GT(hops, frames / 2);
  double reverse_mass = 0.0;
  for (std::size_t k = 0; k < 7; ++k) {
    for (int c = 0; c < cfg.placement.carriers; ++c) {
      reverse_mass += simulator.far_field().reverse_far_w(k, c);
    }
  }
  EXPECT_GT(reverse_mass, 0.0);
}

}  // namespace
}  // namespace wcdma::sim
