// Core-contribution tests: the measurement sub-layer's admissible regions
// (Eq. 6-18), the J1/J2 objectives with MAC set-up penalties (Eq. 19-24),
// and the scheduler family, including randomized feasibility properties and
// optimality-ordering checks.
#include <gtest/gtest.h>

#include <cmath>

#include "src/admission/measurement.hpp"
#include "src/admission/objectives.hpp"
#include "src/admission/region.hpp"
#include "src/admission/schedulers.hpp"
#include "src/common/rng.hpp"

namespace wcdma::admission {
namespace {

using common::Rng;

// ---------------------------------------------------------------- regions

TEST(ForwardRegion, CoefficientMatchesEq8) {
  ForwardLinkInputs in;
  in.p_max_watt = 20.0;
  in.gamma_s = 8.0;
  in.cell_load_watt = {12.0, 5.0};
  in.users.resize(1);
  in.users[0].reduced_active_set = {{0, 0.25}};
  in.users[0].alpha_fl = 1.8;
  const Region r = build_forward_region(in);
  ASSERT_EQ(r.a.rows(), 2u);
  ASSERT_EQ(r.a.cols(), 1u);
  EXPECT_NEAR(r.a(0, 0), 8.0 * 0.25 * 1.8, 1e-12);  // gamma_s * P_jk * alpha
  EXPECT_DOUBLE_EQ(r.a(1, 0), 0.0);                 // not in reduced set
  EXPECT_NEAR(r.b[0], 8.0, 1e-12);                  // P_max - P_k
  EXPECT_NEAR(r.b[1], 15.0, 1e-12);
}

TEST(ForwardRegion, OverloadedCellClampsToZero) {
  ForwardLinkInputs in;
  in.p_max_watt = 10.0;
  in.cell_load_watt = {12.0};  // above P_max already
  in.users.resize(1);
  in.users[0].reduced_active_set = {{0, 0.1}};
  const Region r = build_forward_region(in);
  EXPECT_DOUBLE_EQ(r.b[0], 0.0);  // m = 0 stays feasible; nothing admitted
  EXPECT_TRUE(r.admits({0}));
  EXPECT_FALSE(r.admits({1}));
}

TEST(ForwardRegion, MultiLegUserLoadsBothCells) {
  ForwardLinkInputs in;
  in.p_max_watt = 20.0;
  in.gamma_s = 2.0;
  in.cell_load_watt = {10.0, 10.0};
  in.users.resize(1);
  in.users[0].reduced_active_set = {{0, 0.3}, {1, 0.2}};
  const Region r = build_forward_region(in);
  EXPECT_GT(r.a(0, 0), 0.0);
  EXPECT_GT(r.a(1, 0), 0.0);
}

TEST(ReverseRegion, ShoCoefficientMatchesEq18) {
  ReverseLinkInputs in;
  in.l_max_watt = 4.0e-13;
  in.gamma_s = 8.0;
  in.kappa = 1.585;
  in.cell_interference_watt = {1.0e-13, 2.0e-13};
  in.users.resize(1);
  auto& u = in.users[0];
  u.zeta = 2.0;
  u.alpha_rl = 0.8;
  u.soft_handoff = {{0, 0.01}};
  u.scrm_pilots = {{0, 0.05}, {1, 0.02}};
  const Region r = build_reverse_region(in);
  ASSERT_EQ(r.a.rows(), 2u);
  // SHO row: gamma_s * zeta * xi_rl * alpha = 8 * 2 * 0.01 * 0.8.
  EXPECT_NEAR(r.a(0, 0), 0.128, 1e-12);
  // Neighbour row: SHO coeff * (xi_fl'/xi_fl_host) * kappa * (L_host/L_k').
  EXPECT_NEAR(r.a(1, 0), 0.128 * (0.02 / 0.05) * 1.585 * (1.0e-13 / 2.0e-13), 1e-12);
  // RHS: L_max / L_k - 1.
  EXPECT_NEAR(r.b[0], 3.0, 1e-9);
  EXPECT_NEAR(r.b[1], 1.0, 1e-9);
}

TEST(ReverseRegion, MissingHostPilotSkipsProjection) {
  ReverseLinkInputs in;
  in.l_max_watt = 4.0e-13;
  in.cell_interference_watt = {1.0e-13, 1.0e-13};
  in.users.resize(1);
  auto& u = in.users[0];
  u.soft_handoff = {{0, 0.01}};
  u.scrm_pilots = {{1, 0.02}};  // host (cell 0) pilot absent
  const Region r = build_reverse_region(in);
  EXPECT_GT(r.a(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r.a(1, 0), 0.0);
}

TEST(ReverseRegion, OverloadedCellClamps) {
  ReverseLinkInputs in;
  in.l_max_watt = 1.0e-13;
  in.cell_interference_watt = {2.0e-13};  // rise already above cap
  in.users.resize(1);
  in.users[0].soft_handoff = {{0, 0.01}};
  in.users[0].scrm_pilots = {{0, 0.05}};
  const Region r = build_reverse_region(in);
  EXPECT_DOUBLE_EQ(r.b[0], 0.0);
}

TEST(Region, StackConcatenatesRows) {
  Region a, b;
  a.a = common::Matrix{{1.0, 0.0}};
  a.b = {1.0};
  b.a = common::Matrix{{0.0, 2.0}};
  b.b = {2.0};
  const Region s = stack(a, b);
  EXPECT_EQ(s.a.rows(), 2u);
  EXPECT_TRUE(s.admits({1, 1}));
  EXPECT_FALSE(s.admits({2, 0}));
  EXPECT_FALSE(s.admits({0, 2}));
}

TEST(Region, EmptyStackReturnsOther) {
  Region empty;
  Region a;
  a.a = common::Matrix{{1.0}};
  a.b = {1.0};
  EXPECT_EQ(stack(empty, a).a.rows(), 1u);
  EXPECT_EQ(stack(a, empty).a.rows(), 1u);
}

TEST(Region, AdmitsRejectsNegativeAssignments) {
  Region a;
  a.a = common::Matrix{{1.0}};
  a.b = {10.0};
  EXPECT_FALSE(a.admits({-1}));
}

// ---------------------------------------------------------------- objectives

mac::MacTimersConfig timers() { return {}; }

TEST(Objectives, J1CoefficientIsWeightedRate) {
  RequestView r;
  r.delta_beta = 1.5;
  r.priority = 0.5;
  const auto c = objective_coefficients({r}, ObjectiveKind::kJ1MaxRate, {}, timers());
  EXPECT_NEAR(c[0], 1.5 * 1.5, 1e-12);  // dbeta * (1 + Delta)
}

TEST(Objectives, J2AddsWaitingBoost) {
  RequestView fresh, stale;
  fresh.delta_beta = stale.delta_beta = 1.0;
  fresh.waiting_s = 0.0;
  stale.waiting_s = 20.0;
  DelayPenaltyConfig penalty;
  const auto c = objective_coefficients({fresh, stale}, ObjectiveKind::kJ2DelayAware,
                                        penalty, timers());
  EXPECT_GT(c[1], c[0]);
  // Boost saturates at lambda.
  EXPECT_LE(c[1], 1.0 * (1.0 + penalty.lambda) + 1e-9);
}

TEST(Objectives, J2EqualsJ1AtZeroWaitZeroSetup) {
  RequestView r;
  r.delta_beta = 2.0;
  r.waiting_s = 0.0;
  const auto j1 = objective_coefficients({r}, ObjectiveKind::kJ1MaxRate, {}, timers());
  const auto j2 =
      objective_coefficients({r}, ObjectiveKind::kJ2DelayAware, {}, timers());
  EXPECT_NEAR(j1[0], j2[0], 1e-12);
}

TEST(Objectives, J2MonotoneInWaitingTime) {
  DelayPenaltyConfig penalty;
  double prev = -1.0;
  for (double w = 0.0; w <= 30.0; w += 1.0) {
    RequestView r;
    r.delta_beta = 1.0;
    r.waiting_s = w;
    const auto c =
        objective_coefficients({r}, ObjectiveKind::kJ2DelayAware, penalty, timers());
    EXPECT_GE(c[0], prev);
    prev = c[0];
  }
}

TEST(Objectives, MacSetupPenaltyEntersJ2) {
  // Crossing T2 adds D1 to the effective delay -> strictly larger boost.
  DelayPenaltyConfig penalty;
  RequestView just_below, just_above;
  just_below.delta_beta = just_above.delta_beta = 1.0;
  just_below.waiting_s = 1.99;
  just_above.waiting_s = 2.00;  // T2: setup penalty D1 kicks in
  const auto c = objective_coefficients({just_below, just_above},
                                        ObjectiveKind::kJ2DelayAware, penalty, timers());
  const double gap_without_penalty =
      (1.0 - std::exp(-penalty.mu * 2.0)) - (1.0 - std::exp(-penalty.mu * 1.99));
  EXPECT_GT(c[1] - c[0], penalty.lambda * gap_without_penalty);
}

TEST(DelayPenalty, ShapeProperties) {
  DelayPenaltyConfig penalty;
  // Zero at full rate grant.
  EXPECT_DOUBLE_EQ(delay_penalty(penalty, 5.0, 4.0, 4.0), 0.0);
  // Zero at zero wait.
  EXPECT_DOUBLE_EQ(delay_penalty(penalty, 0.0, 1.0, 4.0), 0.0);
  // Decreasing in granted rate.
  EXPECT_GT(delay_penalty(penalty, 5.0, 1.0, 4.0), delay_penalty(penalty, 5.0, 3.0, 4.0));
  // Increasing in waiting time.
  EXPECT_GT(delay_penalty(penalty, 9.0, 1.0, 4.0), delay_penalty(penalty, 1.0, 1.0, 4.0));
  // Linear in r: f(w, r) - f(w, r') proportional to r' - r.
  const double f0 = delay_penalty(penalty, 3.0, 0.0, 4.0);
  const double f2 = delay_penalty(penalty, 3.0, 2.0, 4.0);
  const double f4 = delay_penalty(penalty, 3.0, 4.0, 4.0);
  EXPECT_NEAR(f0 - f2, f2 - f4, 1e-12);
}

TEST(DurationBound, Eq24Arithmetic) {
  // Q = 192 kbit, dbeta = 1, Rf = 9600, Tmin = 0.08 -> cap = 250 -> M caps.
  EXPECT_EQ(duration_upper_bound(192000.0, 1.0, 9600.0, 0.080, 16), 16);
  // Small burst: Q = 3840 bits -> cap = 5.
  EXPECT_EQ(duration_upper_bound(3840.0, 1.0, 9600.0, 0.080, 16), 5);
  // Tiny burst clamps up to 1 (stay servable).
  EXPECT_EQ(duration_upper_bound(100.0, 1.0, 9600.0, 0.080, 16), 1);
  // Better channel (higher dbeta) lowers the bound: same duration at less m
  // (M = 64 so neither side clamps).
  EXPECT_LT(duration_upper_bound(38400.0, 2.0, 9600.0, 0.080, 64),
            duration_upper_bound(38400.0, 1.0, 9600.0, 0.080, 64));
}

TEST(DurationBound, BurstDurationIdentity) {
  // duration(m = u) >= T_min by construction of the bound (when u not clamped).
  const double q = 50000.0, dbeta = 1.3, rf = 9600.0, tmin = 0.08;
  const int u = duration_upper_bound(q, dbeta, rf, tmin, 16);
  if (u > 1) {
    EXPECT_GE(burst_duration_s(q, u, dbeta, rf), tmin - 1e-9);
  }
  EXPECT_DOUBLE_EQ(burst_duration_s(q, 0, dbeta, rf), 0.0);
  // Doubling m halves the duration.
  EXPECT_NEAR(burst_duration_s(q, 2, dbeta, rf) * 2.0, burst_duration_s(q, 1, dbeta, rf),
              1e-9);
}

// ---------------------------------------------------------------- problems

BurstProblem random_problem(Rng& rng, std::size_t nd, std::size_t cells) {
  Region region;
  region.a = common::Matrix(cells, nd, 0.0);
  for (std::size_t k = 0; k < cells; ++k) {
    for (std::size_t j = 0; j < nd; ++j) {
      region.a(k, j) = rng.bernoulli(0.4) ? 0.0 : rng.uniform(0.05, 1.0);
    }
  }
  region.b.resize(cells);
  for (auto& b : region.b) b = rng.uniform(0.5, 6.0);

  std::vector<RequestView> requests(nd);
  for (std::size_t j = 0; j < nd; ++j) {
    requests[j].user = static_cast<int>(j);
    requests[j].q_bits = rng.uniform(2.0e4, 8.0e5);
    requests[j].waiting_s = rng.uniform(0.0, 10.0);
    requests[j].delta_beta = rng.uniform(0.1, 2.0);
    requests[j].priority = rng.bernoulli(0.2) ? 0.5 : 0.0;
  }
  return make_burst_problem(std::move(region), std::move(requests),
                            ObjectiveKind::kJ2DelayAware, {}, {}, 9600.0, 0.080, 16);
}

TEST(BurstProblem, WiresCoefficientsAndBounds) {
  Rng rng(3);
  const BurstProblem p = random_problem(rng, 5, 3);
  EXPECT_EQ(p.c.size(), 5u);
  EXPECT_EQ(p.upper.size(), 5u);
  for (int u : p.upper) {
    EXPECT_GE(u, 1);
    EXPECT_LE(u, 16);
  }
  const auto ip = p.to_ip();
  EXPECT_EQ(ip.a.rows(), 3u);
  EXPECT_EQ(ip.c, p.c);
}

// Feasibility property: every scheduler's output satisfies the admissible
// region and per-request bounds on randomized instances.
class SchedulerFeasibility
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, int>> {};

TEST_P(SchedulerFeasibility, OutputAlwaysAdmissible) {
  const auto [kind, seed] = GetParam();
  Rng rng(seed);
  const std::size_t nd = 1 + rng.uniform_int(10);
  const std::size_t cells = 1 + rng.uniform_int(5);
  const BurstProblem p = random_problem(rng, nd, cells);
  auto scheduler = make_scheduler(kind, static_cast<std::uint64_t>(seed));
  const Allocation a = scheduler->schedule(p);
  ASSERT_EQ(a.m.size(), nd);
  EXPECT_TRUE(p.region.admits(a.m));
  for (std::size_t j = 0; j < nd; ++j) {
    EXPECT_GE(a.m[j], 0);
    EXPECT_LE(a.m[j], p.upper[j]);
  }
  // Reported objective must match the assignment.
  double obj = 0.0;
  for (std::size_t j = 0; j < nd; ++j) obj += p.c[j] * a.m[j];
  EXPECT_NEAR(a.objective, obj, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerFeasibility,
    ::testing::Combine(::testing::Values(SchedulerKind::kJabaSd, SchedulerKind::kGreedy,
                                         SchedulerKind::kFcfs, SchedulerKind::kFcfsSingle,
                                         SchedulerKind::kEqualShare,
                                         SchedulerKind::kRandom),
                       ::testing::Range(1, 13)));

// Optimality ordering: exact JABA-SD dominates every baseline on the same
// problem (it maximises the same objective over the same feasible set).
class JabaDominance : public ::testing::TestWithParam<int> {};

TEST_P(JabaDominance, ExactBeatsBaselines) {
  Rng rng(500 + GetParam());
  const BurstProblem p = random_problem(rng, 2 + rng.uniform_int(8), 1 + rng.uniform_int(4));
  JabaSdScheduler jaba;
  const Allocation best = jaba.schedule(p);
  ASSERT_TRUE(best.proven_optimal);
  for (const auto kind : {SchedulerKind::kGreedy, SchedulerKind::kFcfs,
                          SchedulerKind::kFcfsSingle, SchedulerKind::kEqualShare,
                          SchedulerKind::kRandom}) {
    auto sched = make_scheduler(kind, 42);
    EXPECT_LE(sched->schedule(p).objective, best.objective + 1e-9)
        << to_string(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, JabaDominance, ::testing::Range(0, 20));

TEST(FcfsScheduler, ServesLongestWaitingFirst) {
  // One resource unit; the older request must win it.
  Region region;
  region.a = common::Matrix{{1.0, 1.0}};
  region.b = {4.0};
  std::vector<RequestView> requests(2);
  requests[0].user = 0;
  requests[0].q_bits = 1e6;
  requests[0].waiting_s = 0.1;  // newer
  requests[0].delta_beta = 1.0;
  requests[1].user = 1;
  requests[1].q_bits = 1e6;
  requests[1].waiting_s = 5.0;  // older
  requests[1].delta_beta = 1.0;
  const BurstProblem p = make_burst_problem(region, requests, ObjectiveKind::kJ1MaxRate,
                                            {}, {}, 9600.0, 0.080, 16);
  FcfsScheduler fcfs;
  const Allocation a = fcfs.schedule(p);
  EXPECT_EQ(a.m[1], 4);  // older request takes everything
  EXPECT_EQ(a.m[0], 0);
}

TEST(FcfsScheduler, SingleBurstGrantsExactlyOne) {
  Region region;
  region.a = common::Matrix{{0.1, 0.1, 0.1}};
  region.b = {100.0};  // room for everyone
  std::vector<RequestView> requests(3);
  for (int j = 0; j < 3; ++j) {
    requests[j].user = j;
    requests[j].q_bits = 1e6;
    requests[j].waiting_s = j;  // user 2 oldest
    requests[j].delta_beta = 1.0;
  }
  const BurstProblem p = make_burst_problem(region, requests, ObjectiveKind::kJ1MaxRate,
                                            {}, {}, 9600.0, 0.080, 16);
  FcfsScheduler fcfs(/*single_burst=*/true);
  const Allocation a = fcfs.schedule(p);
  EXPECT_EQ(a.granted_count(), 1);
  EXPECT_GT(a.m[2], 0);
}

TEST(EqualShareScheduler, UniformGrants) {
  Region region;
  region.a = common::Matrix{{1.0, 1.0, 1.0}};
  region.b = {9.0};
  std::vector<RequestView> requests(3);
  for (int j = 0; j < 3; ++j) {
    requests[j].user = j;
    requests[j].q_bits = 1e6;
    requests[j].waiting_s = 1.0;
    requests[j].delta_beta = 1.0;
  }
  const BurstProblem p = make_burst_problem(region, requests, ObjectiveKind::kJ1MaxRate,
                                            {}, {}, 9600.0, 0.080, 16);
  EqualShareScheduler eq;
  const Allocation a = eq.schedule(p);
  EXPECT_EQ(a.m, (std::vector<int>{3, 3, 3}));
}

TEST(EqualShareScheduler, ShrinksServedSetWhenTight) {
  // Capacity for only one unit: serve the longest-waiting request alone.
  Region region;
  region.a = common::Matrix{{1.0, 1.0}};
  region.b = {1.0};
  std::vector<RequestView> requests(2);
  requests[0].user = 0;
  requests[0].q_bits = 1e6;
  requests[0].waiting_s = 9.0;
  requests[0].delta_beta = 1.0;
  requests[1].user = 1;
  requests[1].q_bits = 1e6;
  requests[1].waiting_s = 1.0;
  requests[1].delta_beta = 1.0;
  const BurstProblem p = make_burst_problem(region, requests, ObjectiveKind::kJ1MaxRate,
                                            {}, {}, 9600.0, 0.080, 16);
  EqualShareScheduler eq;
  const Allocation a = eq.schedule(p);
  EXPECT_EQ(a.m[0], 1);
  EXPECT_EQ(a.m[1], 0);
}

TEST(RandomScheduler, DeterministicPerSeedStream) {
  Rng rng(9);
  const BurstProblem p = random_problem(rng, 6, 3);
  RandomScheduler a(common::Rng(5)), b(common::Rng(5));
  EXPECT_EQ(a.schedule(p).m, b.schedule(p).m);
}

TEST(Schedulers, EmptyProblemYieldsEmptyAllocation) {
  BurstProblem p;
  for (const auto kind : {SchedulerKind::kJabaSd, SchedulerKind::kGreedy,
                          SchedulerKind::kFcfs, SchedulerKind::kEqualShare,
                          SchedulerKind::kRandom}) {
    auto sched = make_scheduler(kind, 1);
    const Allocation a = sched->schedule(p);
    EXPECT_TRUE(a.m.empty());
    EXPECT_DOUBLE_EQ(a.objective, 0.0);
  }
}

TEST(Schedulers, ZeroCapacityGrantsNothing) {
  Region region;
  region.a = common::Matrix{{1.0, 1.0}};
  region.b = {0.0};
  std::vector<RequestView> requests(2);
  for (int j = 0; j < 2; ++j) {
    requests[j].user = j;
    requests[j].q_bits = 1e5;
    requests[j].waiting_s = 1.0;
    requests[j].delta_beta = 1.0;
  }
  const BurstProblem p = make_burst_problem(region, requests, ObjectiveKind::kJ1MaxRate,
                                            {}, {}, 9600.0, 0.080, 16);
  for (const auto kind : {SchedulerKind::kJabaSd, SchedulerKind::kGreedy,
                          SchedulerKind::kFcfs, SchedulerKind::kFcfsSingle,
                          SchedulerKind::kEqualShare, SchedulerKind::kRandom}) {
    auto sched = make_scheduler(kind, 1);
    EXPECT_EQ(sched->schedule(p).granted_count(), 0) << to_string(kind);
  }
}

TEST(Schedulers, NamesAreDistinct) {
  EXPECT_STREQ(to_string(SchedulerKind::kJabaSd), "JABA-SD");
  EXPECT_STREQ(to_string(SchedulerKind::kEqualShare), "EqualShare");
  EXPECT_EQ(make_scheduler(SchedulerKind::kFcfsSingle, 1)->name(), "FCFS-single");
}

}  // namespace
}  // namespace wcdma::admission
