// Sweep-engine tests: grid expansion, axis application, preset validity,
// seed derivation, and the determinism contract — merged metrics are
// bit-identical for any worker count (0 = inline, 1, N).
#include <gtest/gtest.h>

#include <set>

#include "src/sweep/presets.hpp"
#include "src/sweep/sweep.hpp"

namespace wcdma::sweep {
namespace {

SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.name = "tiny";
  spec.base = sim::default_config();
  spec.base.layout.rings = 1;
  spec.base.voice.users = 6;
  spec.base.data.users = 3;
  spec.base.sim_duration_s = 4.0;
  spec.base.warmup_s = 1.0;
  spec.base.data.mean_reading_s = 1.0;
  spec.base.seed = 991;
  spec.axes = {axis_scheduler({admission::SchedulerKind::kJabaSd,
                               admission::SchedulerKind::kFcfs}),
               axis_data_users({2, 4})};
  spec.replications = 3;
  return spec;
}

TEST(SweepSpec, GridExpansionCounts) {
  SweepSpec spec;
  spec.base = sim::default_config();
  EXPECT_EQ(spec.scenario_count(), 1u);  // no axes -> base config only

  spec.axes = {axis_data_users({4, 8, 12}), axis_voice_users({0, 30}),
               axis_shadowing_sigma_db({6.0, 8.0, 10.0, 12.0})};
  EXPECT_EQ(spec.scenario_count(), 3u * 2u * 4u);
}

TEST(SweepSpec, MixedRadixDecodeIsRowMajor) {
  SweepSpec spec;
  spec.base = sim::default_config();
  spec.axes = {axis_data_users({4, 8, 12}), axis_voice_users({0, 30})};
  // First axis slowest: index = data_index * 2 + voice_index.
  const Scenario s = spec.scenario(5);
  EXPECT_EQ(s.value_indices, (std::vector<std::size_t>{2, 1}));
  EXPECT_EQ(s.config.data.users, 12);
  EXPECT_EQ(s.config.voice.users, 30);
  EXPECT_EQ(s.labels[0], "12");
  EXPECT_EQ(s.labels[1], "30");
}

TEST(SweepSpec, AxesApplyTheirKnobs) {
  SweepSpec spec;
  spec.base = sim::default_config();
  spec.axes = {axis_scheduler({admission::SchedulerKind::kEqualShare}),
               axis_objective({admission::ObjectiveKind::kJ1MaxRate}),
               axis_max_speed_kmh({90.0}), axis_path_loss_exponent({4.5}),
               axis_fixed_mode({3})};
  const Scenario s = spec.scenario(0);
  EXPECT_EQ(s.config.admission.scheduler, admission::SchedulerKind::kEqualShare);
  EXPECT_EQ(s.config.admission.objective, admission::ObjectiveKind::kJ1MaxRate);
  EXPECT_NEAR(s.config.mobility.max_speed_mps, 25.0, 1e-9);
  EXPECT_EQ(s.config.path_loss.kind, channel::PathLossModelKind::kLogDistance);
  EXPECT_DOUBLE_EQ(s.config.path_loss.exponent, 4.5);
  EXPECT_EQ(s.config.phy.fixed_mode, 3);
  EXPECT_EQ(s.labels[4], "m3");
}

TEST(SweepSpec, ScenarioAndAblationAxesApply) {
  SweepSpec spec;
  spec.base = sim::default_config();
  spec.base.voice.users = 10;
  spec.base.data.users = 4;
  spec.axes = {axis_load_scale({1.5}), axis_carriers({2}),
               axis_feedback_delay_frames({4}), axis_kappa_margin_db({6.0}),
               axis_scrm_retry_s({1.0}), axis_reduced_set({1})};
  const Scenario s = spec.scenario(0);
  EXPECT_EQ(s.config.voice.users, 15);
  EXPECT_EQ(s.config.data.users, 6);
  EXPECT_EQ(s.config.placement.carriers, 2);
  EXPECT_EQ(s.config.phy.feedback_delay_frames, 4u);
  EXPECT_DOUBLE_EQ(s.config.admission.kappa_margin_db, 6.0);
  EXPECT_DOUBLE_EQ(s.config.admission.scrm_retry_s, 1.0);
  EXPECT_EQ(s.config.active_set.reduced_size, 1u);
  EXPECT_EQ(s.labels[0], "1.5");
  EXPECT_EQ(s.labels[1], "2");
  EXPECT_EQ(s.labels[2], "4f");
  EXPECT_EQ(s.labels[5], "1legs");
}

TEST(SweepSpec, ItemSeedsAreDistinctAndStable) {
  std::set<std::uint64_t> seeds;
  for (std::size_t sc = 0; sc < 16; ++sc) {
    for (std::size_t rep = 0; rep < 16; ++rep) {
      seeds.insert(item_seed(42, sc, rep));
    }
  }
  EXPECT_EQ(seeds.size(), 256u);  // no collisions on a 16x16 grid
  // Stable across runs and master-seed sensitive.
  EXPECT_EQ(item_seed(42, 3, 1), item_seed(42, 3, 1));
  EXPECT_NE(item_seed(42, 3, 1), item_seed(43, 3, 1));
}

TEST(Presets, AllRegisteredPresetsAreValid) {
  const std::vector<std::string> names = preset_names();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    EXPECT_TRUE(has_preset(name));
    const SweepSpec spec = make_preset(name);  // validates internally
    EXPECT_EQ(spec.name, name);
    EXPECT_GE(spec.scenario_count(), 1u);
    EXPECT_GE(spec.replications, 1u);
    EXPECT_FALSE(preset_description(name).empty());
    // Every grid point must expand to a config the simulator accepts.
    for (std::size_t i = 0; i < spec.scenario_count(); ++i) {
      spec.scenario(i).config.validate();
    }
  }
  EXPECT_FALSE(has_preset("no-such-preset"));
}

TEST(RunSweep, MergedMetricsAreThreadCountInvariant) {
  const SweepSpec spec = tiny_spec();
  const SweepResult inline_run = run_sweep(spec, 0);
  const SweepResult serial = run_sweep(spec, 1);
  const SweepResult parallel = run_sweep(spec, 4);

  ASSERT_EQ(inline_run.scenarios.size(), spec.scenario_count());
  for (std::size_t s = 0; s < inline_run.scenarios.size(); ++s) {
    SCOPED_TRACE(s);
    const sim::SimMetrics& a = inline_run.scenarios[s].merged;
    const sim::SimMetrics& b = serial.scenarios[s].merged;
    const sim::SimMetrics& c = parallel.scenarios[s].merged;
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a.mean_delay_s(), b.mean_delay_s());
    EXPECT_EQ(a.mean_delay_s(), c.mean_delay_s());
    EXPECT_EQ(a.data_bits_delivered, c.data_bits_delivered);
    EXPECT_EQ(a.requests_seen, c.requests_seen);
    EXPECT_EQ(a.grants, c.grants);
    EXPECT_EQ(a.burst_delay_s.count(), c.burst_delay_s.count());
    EXPECT_EQ(inline_run.scenarios[s].replication_mean_delay_s,
              parallel.scenarios[s].replication_mean_delay_s);
  }
  // The emitted artefacts are byte-identical too.
  EXPECT_EQ(to_csv(inline_run), to_csv(parallel));
  EXPECT_EQ(to_csv(serial), to_csv(parallel));
  EXPECT_EQ(to_json(serial), to_json(parallel));
}

TEST(RunSweep, CommonRandomNumbersPairScenarios) {
  // Two scenarios whose axis values are behaviourally identical: with CRN
  // they must see the same draws and produce identical metrics; with
  // independent streams they must not.
  SweepSpec spec = tiny_spec();
  spec.axes = {Axis{"copy",
                    {{"a", [](sim::SystemConfig&) {}}, {"b", [](sim::SystemConfig&) {}}}}};
  spec.replications = 2;
  spec.common_random_numbers = true;
  const SweepResult paired = run_sweep(spec, 2);
  EXPECT_EQ(paired.scenarios[0].merged.mean_delay_s(),
            paired.scenarios[1].merged.mean_delay_s());
  EXPECT_EQ(paired.scenarios[0].merged.requests_seen,
            paired.scenarios[1].merged.requests_seen);

  spec.common_random_numbers = false;
  const SweepResult independent = run_sweep(spec, 2);
  EXPECT_NE(independent.scenarios[0].merged.mean_delay_s(),
            independent.scenarios[1].merged.mean_delay_s());
}

TEST(RunSweep, ProgressCoversEveryItemExactlyOnce) {
  SweepSpec spec = tiny_spec();
  spec.replications = 2;
  std::size_t calls = 0;
  std::size_t last_done = 0;
  const SweepResult result = run_sweep(spec, 2, [&](std::size_t done, std::size_t total) {
    ++calls;
    EXPECT_EQ(total, spec.scenario_count() * spec.replications);
    EXPECT_GT(done, last_done);  // serialised, strictly increasing
    last_done = done;
  });
  EXPECT_EQ(calls, spec.scenario_count() * spec.replications);
  EXPECT_EQ(result.replications, 2u);
}

TEST(RunSweep, ResultLookupByValueIndices) {
  SweepSpec spec = tiny_spec();
  spec.replications = 1;
  const SweepResult result = run_sweep(spec, 0);
  const ScenarioResult& s = result.at({1, 0});
  EXPECT_EQ(s.index, 2u);  // FCFS (index 1) x data_users=2 (index 0)
  EXPECT_EQ(s.labels[0], "FCFS");
  EXPECT_EQ(s.labels[1], "2");
}

TEST(Emission, CsvAndJsonShape) {
  SweepSpec spec = tiny_spec();
  spec.replications = 1;
  const SweepResult result = run_sweep(spec, 0);
  const std::string csv = to_csv(result);
  std::size_t lines = 0;
  for (char ch : csv) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, spec.scenario_count() + 1);  // header + one line per scenario
  EXPECT_EQ(csv.rfind("scenario,scheduler,data_users,", 0), 0u);

  const std::string json = to_json(result);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"scheduler\": \"JABA-SD\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_delay_s\": "), std::string::npos);
}

}  // namespace
}  // namespace wcdma::sweep
