// Scenario-subsystem tests: layout registry and weight builders, grid
// expansion of the multi-cell presets, per-cell load scaling and carrier
// assignment observed through the simulator, and the determinism contract
// for a migrated bench (bit-identical merged metrics across 1/N threads).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/scenario/experiments.hpp"
#include "src/scenario/scenario.hpp"
#include "src/sim/simulator.hpp"
#include "src/sweep/presets.hpp"

namespace wcdma::scenario {
namespace {

TEST(ScenarioRegistry, AllLayoutsBuildValidConfigs) {
  const std::vector<std::string> names = layout_names();
  ASSERT_EQ(names.size(), 5u);
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    EXPECT_TRUE(has_layout(name));
    const ScenarioLayout layout = make_layout(name);
    EXPECT_EQ(layout.name, name);
    EXPECT_FALSE(layout.description.empty());
    const sim::SystemConfig cfg = layout.to_config();  // validates internally
    EXPECT_EQ(cfg.placement.cell_weights.size(), cell::hex_cell_count(cfg.layout.rings));
    EXPECT_GT(cfg.sim_duration_s, cfg.warmup_s);
  }
  EXPECT_FALSE(has_layout("no-such-layout"));
}

TEST(ScenarioWeights, UniformHotspotAndCorridorShapes) {
  EXPECT_EQ(uniform_weights(1).size(), 7u);
  EXPECT_EQ(uniform_weights(2).size(), 19u);

  const std::vector<double> hot = hotspot_weights(2, 8.0);
  ASSERT_EQ(hot.size(), 19u);
  EXPECT_DOUBLE_EQ(hot[0], 8.0);
  // Ring 1 (cells 1..6) sits between the centre and ring 2 (cells 7..18).
  EXPECT_GT(hot[0], hot[1]);
  EXPECT_GT(hot[1], hot[7]);
  EXPECT_DOUBLE_EQ(hot[7], 1.0);

  // The 19-cell layout has exactly 5 cells on the row through the origin.
  cell::HexLayoutConfig layout;
  layout.rings = 2;
  const std::vector<double> corridor =
      corridor_weights(layout, 0.5 * layout.cell_radius_m);
  double mass = 0.0;
  for (double w : corridor) mass += w;
  EXPECT_DOUBLE_EQ(mass, 5.0);
  EXPECT_DOUBLE_EQ(corridor[0], 1.0);  // centre cell is on the corridor
}

TEST(PerCellPlacement, AllMassOnOneCellConfinesEveryUser) {
  ScenarioLayout layout = uniform_hex7();
  layout.voice_users = 10;
  layout.data_users = 5;
  layout.sim_duration_s = 2.0;
  layout.warmup_s = 0.5;
  sim::SystemConfig cfg = layout.to_config();
  std::fill(cfg.placement.cell_weights.begin(), cfg.placement.cell_weights.end(), 0.0);
  cfg.placement.cell_weights[3] = 1.0;

  sim::Simulator simulator(cfg);
  const cell::HexLayout hex(cfg.layout);
  const double home_r = cfg.placement.home_radius_scale * hex.cell_radius_m();
  for (std::size_t i = 0; i < simulator.num_users(); ++i) {
    EXPECT_EQ(simulator.user_home_cell(i), 3u);
    EXPECT_LE(cell::distance(simulator.user_position(i), hex.center(3)),
              home_r + 1e-9);
  }
  // Users stay confined while the simulation runs.
  for (int f = 0; f < 50; ++f) simulator.step_frame();
  for (std::size_t i = 0; i < simulator.num_users(); ++i) {
    EXPECT_LE(cell::distance(simulator.user_position(i), hex.center(3)),
              home_r + 1e-9);
  }
}

TEST(PerCellPlacement, WeightsSteerTheLoadDistribution) {
  ScenarioLayout layout = hotspot_center();
  layout.voice_users = 120;
  layout.data_users = 0;
  layout.sim_duration_s = 2.0;
  layout.warmup_s = 0.5;
  const sim::SystemConfig cfg = layout.to_config();
  sim::Simulator simulator(cfg);

  std::size_t in_center = 0;
  for (std::size_t i = 0; i < simulator.num_users(); ++i) {
    in_center += simulator.user_home_cell(i) == 0 ? 1 : 0;
  }
  // The centre holds weight 8 of ~32 total: far above uniform 1/19, and
  // far below all of it.
  EXPECT_GT(in_center, simulator.num_users() / 10);
  EXPECT_LT(in_center, simulator.num_users() / 2);
}

TEST(Carriers, RoundRobinAssignmentAndIndependentDomains) {
  ScenarioLayout layout = enterprise_data();
  layout.voice_users = 6;
  layout.data_users = 6;
  layout.sim_duration_s = 3.0;
  layout.warmup_s = 0.5;
  const sim::SystemConfig cfg = layout.to_config();
  ASSERT_EQ(cfg.placement.carriers, 2);

  sim::Simulator simulator(cfg);
  EXPECT_EQ(simulator.num_carriers(), 2);
  for (std::size_t i = 0; i < simulator.num_users(); ++i) {
    EXPECT_EQ(simulator.user_carrier(i), static_cast<int>(i % 2));
  }
  const sim::SimMetrics m = simulator.run();
  EXPECT_GT(m.data_bits_delivered, 0.0);
  // Both carriers carry load: at least the idle floor, at most the PA cap,
  // on every (cell, carrier) domain.
  const double idle_w = cfg.radio.pilot_power_w + cfg.radio.common_power_w;
  for (std::size_t k = 0; k < simulator.num_cells(); ++k) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_GE(simulator.forward_power_w(k, c), idle_w - 1e-9);
      EXPECT_LE(simulator.forward_power_w(k, c), cfg.radio.bs_max_power_w + 1e-9);
      EXPECT_GE(simulator.reverse_interference_w(k, c), simulator.thermal_noise_w());
    }
  }
}

TEST(HighwayCorridor, UsesDirectionalCorridorMobility) {
  const ScenarioLayout layout = highway_corridor();
  EXPECT_EQ(layout.mobility_kind, cell::MobilityKind::kCorridor);
  const sim::SystemConfig cfg = layout.to_config();
  EXPECT_EQ(cfg.mobility.kind, cell::MobilityKind::kCorridor);
  EXPECT_DOUBLE_EQ(cfg.mobility.corridor_half_width_m, 0.5 * cfg.layout.cell_radius_m);
}

TEST(HighwayCorridor, UsersStayInTheCorridorBandWhileDriving) {
  ScenarioLayout layout = highway_corridor();
  layout.voice_users = 8;
  layout.data_users = 4;
  layout.sim_duration_s = 3.0;
  layout.warmup_s = 0.5;
  const sim::SystemConfig cfg = layout.to_config();
  sim::Simulator simulator(cfg);
  for (int f = 0; f < 100; ++f) {
    simulator.step_frame();
    for (std::size_t i = 0; i < simulator.num_users(); ++i) {
      // Lanes span the corridor weight band; motion is along x only.
      EXPECT_LE(std::fabs(simulator.user_position(i).y),
                cfg.mobility.corridor_half_width_m + 1e-9);
    }
  }
  // Vehicles actually drive: positions spread along the road.
  double min_x = 1e12, max_x = -1e12;
  for (std::size_t i = 0; i < simulator.num_users(); ++i) {
    min_x = std::min(min_x, simulator.user_position(i).x);
    max_x = std::max(max_x, simulator.user_position(i).x);
  }
  EXPECT_GT(max_x - min_x, cfg.layout.cell_radius_m);
}

TEST(MultiCellPresets, RegisteredAndGridsExpand) {
  for (const char* name :
       {"uniform-hex7", "hotspot-center", "highway-corridor", "enterprise-data"}) {
    SCOPED_TRACE(name);
    ASSERT_TRUE(sweep::has_preset(name));
    const sweep::SweepSpec spec = sweep::make_preset(name);
    std::size_t product = 1;
    for (const sweep::Axis& axis : spec.axes) product *= axis.values.size();
    EXPECT_EQ(spec.scenario_count(), product);
    EXPECT_GE(spec.scenario_count(), 4u);
    // Every grid point expands to a config the simulator accepts, and
    // keeps the multi-cell placement.
    for (std::size_t i = 0; i < spec.scenario_count(); ++i) {
      const sim::SystemConfig cfg = spec.scenario(i).config;
      cfg.validate();
      EXPECT_FALSE(cfg.placement.cell_weights.empty());
    }
  }
  // enterprise-data sweeps the carrier count itself.
  const sweep::SweepSpec enterprise = sweep::make_preset("enterprise-data");
  EXPECT_EQ(enterprise.scenario(0).config.placement.carriers, 1);
  EXPECT_EQ(enterprise.scenario(enterprise.scenario_count() - 1).config.placement.carriers,
            2);
}

TEST(MigratedBenches, SpecsAreWellFormed) {
  for (const sweep::SweepSpec& spec : {e4_delay_fl(), e5_delay_rl(), e8_synergy(),
                                       e10_objectives(), e11_mac_states()}) {
    SCOPED_TRACE(spec.name);
    spec.validate();
    EXPECT_TRUE(spec.common_random_numbers);  // paired comparisons
    EXPECT_GE(spec.scenario_count(), 4u);
  }
  const std::vector<sweep::SweepSpec> ablations = e12_ablations();
  ASSERT_EQ(ablations.size(), 4u);
  for (const sweep::SweepSpec& spec : ablations) {
    SCOPED_TRACE(spec.name);
    spec.validate();
    EXPECT_EQ(spec.axes.size(), 1u);
    EXPECT_TRUE(spec.common_random_numbers);
  }
}

TEST(MigratedBenches, E5MergedMetricsAreThreadCountInvariant) {
  // The migrated reverse-link bench, shrunk to test size: same base config
  // and axis kinds, fewer values and a short horizon.
  sweep::SweepSpec spec = e5_delay_rl();
  spec.base.voice.users = 6;
  spec.base.sim_duration_s = 4.0;
  spec.base.warmup_s = 1.0;
  spec.axes = {sweep::axis_data_users({2, 4}),
               sweep::axis_scheduler({admission::SchedulerKind::kJabaSd,
                                      admission::SchedulerKind::kFcfs})};
  spec.replications = 2;

  const sweep::SweepResult inline_run = sweep::run_sweep(spec, 0);
  const sweep::SweepResult serial = sweep::run_sweep(spec, 1);
  const sweep::SweepResult parallel = sweep::run_sweep(spec, 4);
  ASSERT_EQ(inline_run.scenarios.size(), spec.scenario_count());
  for (std::size_t s = 0; s < inline_run.scenarios.size(); ++s) {
    SCOPED_TRACE(s);
    // Bit-identical, not approximately equal.
    EXPECT_EQ(inline_run.scenarios[s].merged.mean_delay_s(),
              parallel.scenarios[s].merged.mean_delay_s());
    EXPECT_EQ(inline_run.scenarios[s].merged.data_bits_delivered,
              parallel.scenarios[s].merged.data_bits_delivered);
    EXPECT_EQ(serial.scenarios[s].merged.grants, parallel.scenarios[s].merged.grants);
  }
  EXPECT_EQ(sweep::to_csv(inline_run), sweep::to_csv(parallel));
  EXPECT_EQ(sweep::to_csv(serial), sweep::to_csv(parallel));
}

TEST(MultiCellSweep, ThreadCountInvarianceWithPlacementAndCarriers) {
  // The determinism contract must survive the new placement and carrier
  // machinery: shrink uniform-hex7 and sweep the carrier count.
  ScenarioLayout layout = uniform_hex7();
  layout.voice_users = 8;
  layout.data_users = 4;
  layout.sim_duration_s = 3.0;
  layout.warmup_s = 0.5;

  sweep::SweepSpec spec;
  spec.name = "tiny-multicell";
  spec.base = layout.to_config();
  spec.axes = {sweep::axis_carriers({1, 2}), sweep::axis_load_scale({1.0, 1.5})};
  spec.replications = 2;
  spec.validate();

  const sweep::SweepResult a = sweep::run_sweep(spec, 0);
  const sweep::SweepResult b = sweep::run_sweep(spec, 3);
  EXPECT_EQ(sweep::to_csv(a), sweep::to_csv(b));
  EXPECT_EQ(sweep::to_json(a), sweep::to_json(b));
}

// --- Flash-crowd load ramp -------------------------------------------------

TEST(LoadRamp, TrapezoidShapeAndCellBlend) {
  sim::LoadRampConfig ramp;
  ramp.peak_scale = 5.0;
  ramp.start_s = 10.0;
  ramp.rise_s = 4.0;
  ramp.hold_s = 6.0;
  ramp.fall_s = 4.0;
  ramp.cell_weights = {1.0, 0.5, 0.0};

  EXPECT_EQ(ramp.scale(0.0, 0), 1.0);    // before the pulse
  EXPECT_EQ(ramp.scale(9.99, 0), 1.0);
  EXPECT_EQ(ramp.scale(12.0, 0), 3.0);   // mid-rise: halfway to 5x
  EXPECT_EQ(ramp.scale(16.0, 0), 5.0);   // holding at peak
  EXPECT_EQ(ramp.scale(22.0, 0), 3.0);   // mid-fall
  EXPECT_EQ(ramp.scale(25.0, 0), 1.0);   // pulse over
  // Per-cell blend: half-strength ring, untouched far cell.
  EXPECT_EQ(ramp.scale(16.0, 1), 3.0);   // 1 + (5-1) * 1.0 * 0.5
  EXPECT_EQ(ramp.scale(16.0, 2), 1.0);
}

TEST(LoadRamp, DisabledRampIsExactlyNeutral) {
  sim::LoadRampConfig ramp;
  ramp.start_s = 1.0;
  ramp.rise_s = 1.0;
  EXPECT_FALSE(ramp.enabled());
  EXPECT_EQ(ramp.scale(2.0, 0), 1.0);
}

TEST(LoadRamp, UnitPeakLeavesSimulationBitIdentical) {
  sim::SystemConfig cfg = sim::default_config();
  cfg.layout.rings = 1;
  cfg.voice.users = 8;
  cfg.data.users = 6;
  cfg.sim_duration_s = 6.0;
  cfg.warmup_s = 1.0;
  cfg.data.mean_reading_s = 0.8;
  cfg.seed = 31337;
  const sim::SimMetrics plain = sim::Simulator(cfg).run();

  cfg.load_ramp.peak_scale = 1.0;  // configured but disabled
  cfg.load_ramp.start_s = 2.0;
  cfg.load_ramp.rise_s = 1.0;
  cfg.load_ramp.hold_s = 2.0;
  const sim::SimMetrics with_ramp = sim::Simulator(cfg).run();
  EXPECT_EQ(plain.requests_seen, with_ramp.requests_seen);
  EXPECT_EQ(plain.mean_delay_s(), with_ramp.mean_delay_s());
  EXPECT_EQ(plain.data_bits_delivered, with_ramp.data_bits_delivered);
}

TEST(LoadRamp, FlashCrowdRaisesArrivals) {
  sim::SystemConfig cfg = sim::default_config();
  cfg.layout.rings = 1;
  cfg.voice.users = 8;
  cfg.data.users = 12;
  cfg.sim_duration_s = 14.0;
  cfg.warmup_s = 1.0;
  cfg.data.mean_reading_s = 1.2;
  cfg.seed = 90125;
  const sim::SimMetrics quiet = sim::Simulator(cfg).run();

  cfg.load_ramp.peak_scale = 5.0;  // all cells: empty weight list
  cfg.load_ramp.start_s = 2.0;
  cfg.load_ramp.rise_s = 1.0;
  cfg.load_ramp.hold_s = 10.0;
  cfg.load_ramp.fall_s = 1.0;
  const sim::SimMetrics crowd = sim::Simulator(cfg).run();
  EXPECT_GT(crowd.requests_seen, quiet.requests_seen);
}

TEST(LoadRamp, FlashCrowdPresetExpandsAndApplies) {
  ASSERT_TRUE(sweep::has_preset("flash-crowd"));
  sweep::SweepSpec spec = sweep::make_preset("flash-crowd");
  EXPECT_EQ(spec.scenario_count(), 6u);
  EXPECT_FALSE(spec.base.load_ramp.enabled());  // axis value 1.0 is the control
  EXPECT_EQ(spec.base.load_ramp.cell_weights.size(),
            cell::hex_cell_count(spec.base.layout.rings));
  EXPECT_EQ(spec.base.load_ramp.cell_weights[0], 1.0);

  // The ramp_peak axis switches the pulse on.
  const sweep::Scenario peak = spec.scenario(spec.scenario_count() - 1);
  EXPECT_TRUE(peak.config.load_ramp.enabled());
  EXPECT_EQ(peak.config.load_ramp.peak_scale, 4.0);
  peak.config.validate();
}

}  // namespace
}  // namespace wcdma::scenario
