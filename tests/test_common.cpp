// Unit tests for the common substrate: PRNG, units, matrix, statistics,
// thread pool, and table formatting.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include "src/common/matrix.hpp"
#include "src/common/rng.hpp"
#include "src/common/serialize.hpp"
#include "src/common/stats.hpp"
#include "src/common/table.hpp"
#include "src/common/thread_pool.hpp"
#include "src/common/units.hpp"

namespace wcdma::common {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent(7);
  Rng child1 = parent.fork(5);
  // Forking again with the same stream id from the *same* parent state must
  // reproduce the child.
  Rng child2 = parent.fork(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(Rng, ForkStreamsDecorrelated) {
  Rng parent(7);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntUnbiasedSmallRange) {
  Rng rng(13);
  std::array<int, 5> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.uniform_int(5)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 5, 5 * std::sqrt(n / 5.0));
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  StreamingMoments m;
  for (int i = 0; i < 200000; ++i) m.add(rng.normal());
  EXPECT_NEAR(m.mean(), 0.0, 0.01);
  EXPECT_NEAR(m.variance(), 1.0, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  StreamingMoments m;
  for (int i = 0; i < 200000; ++i) m.add(rng.exponential(3.0));
  EXPECT_NEAR(m.mean(), 3.0, 0.05);
}

TEST(Rng, ParetoRespectsMinimumAndShape) {
  Rng rng(23);
  StreamingMoments m;
  const double alpha = 1.7, xm = 2.0;
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.pareto(alpha, xm);
    EXPECT_GE(x, xm);
    m.add(x);
  }
  // E[X] = alpha xm / (alpha - 1); heavy tail -> generous tolerance.
  EXPECT_NEAR(m.mean(), alpha * xm / (alpha - 1.0), 0.3);
}

TEST(Rng, ParetoTruncatedWithinBounds) {
  Rng rng(29);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.pareto_truncated(1.7, 4096.0, 2.0e6);
    EXPECT_GE(x, 4096.0);
    EXPECT_LE(x, 2.0e6);
  }
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(31);
  StreamingMoments m;
  for (int i = 0; i < 100000; ++i) m.add(rng.poisson(2.5));
  EXPECT_NEAR(m.mean(), 2.5, 0.05);
  EXPECT_NEAR(m.variance(), 2.5, 0.1);
}

TEST(Rng, PoissonLargeMeanNormalApprox) {
  Rng rng(37);
  StreamingMoments m;
  for (int i = 0; i < 50000; ++i) m.add(rng.poisson(100.0));
  EXPECT_NEAR(m.mean(), 100.0, 0.5);
}

TEST(Rng, RayleighPowerIsExponential) {
  Rng rng(41);
  StreamingMoments m;
  // sigma = sqrt(1/2) gives unit mean power.
  const double sigma = std::sqrt(0.5);
  for (int i = 0; i < 200000; ++i) {
    const double r = rng.rayleigh(sigma);
    m.add(r * r);
  }
  EXPECT_NEAR(m.mean(), 1.0, 0.02);
  EXPECT_NEAR(m.variance(), 1.0, 0.05);
}

TEST(Rng, LognormalShadowMedianIsOne) {
  Rng rng(43);
  int above = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) above += rng.lognormal_shadow(8.0) > 1.0 ? 1 : 0;
  EXPECT_NEAR(above, n / 2, 4 * std::sqrt(n / 4.0));
}

TEST(Rng, DeriveSeedsDistinct) {
  const auto seeds = derive_seeds(99, 64);
  std::set<std::uint64_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), seeds.size());
}

// ---------------------------------------------------------------- units

TEST(Units, DbRoundTrip) {
  for (double db : {-20.0, -3.0, 0.0, 3.0, 10.0, 30.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-12);
  }
}

TEST(Units, KnownValues) {
  EXPECT_NEAR(db_to_linear(3.0103), 2.0, 1e-3);
  EXPECT_NEAR(dbm_to_watt(30.0), 1.0, 1e-12);
  EXPECT_NEAR(watt_to_dbm(0.001), 0.0, 1e-9);
}

TEST(Units, ThermalNoise) {
  // -174 dBm/Hz over 3.6864 MHz ~= -108.3 dBm.
  const double n = thermal_noise_watt(3.6864e6);
  EXPECT_NEAR(watt_to_dbm(n), -108.33, 0.05);
  // Noise figure adds straight dB.
  EXPECT_NEAR(watt_to_dbm(thermal_noise_watt(3.6864e6, 5.0)), -103.33, 0.05);
}

TEST(Units, Doppler) {
  // 60 km/h at 2 GHz ~= 111 Hz.
  EXPECT_NEAR(doppler_hz(kmh_to_mps(60.0), 2.0e9), 111.2, 0.5);
}

// ---------------------------------------------------------------- Matrix

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, Multiply) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Vector y = m.multiply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, AppendRow) {
  Matrix m;
  m.append_row({1.0, 2.0});
  m.append_row({3.0, 4.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, Satisfies) {
  Matrix a{{1.0, 1.0}};
  EXPECT_TRUE(satisfies(a, {1.0, 1.0}, {2.0}));
  EXPECT_TRUE(satisfies(a, {1.0, 1.0}, {2.0 - 1e-12}));
  EXPECT_FALSE(satisfies(a, {1.0, 1.5}, {2.0}));
}

TEST(Matrix, VectorHelpers) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
  EXPECT_DOUBLE_EQ(sum({1.0, 2.0, 3.0}), 6.0);
  const Vector v = axpy({1.0, 1.0}, 2.0, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(v[1], 5.0);
  EXPECT_DOUBLE_EQ(linf_distance({0.0, 0.0}, {1.0, -3.0}), 3.0);
}

// ---------------------------------------------------------------- stats

TEST(StreamingMoments, MatchesDirectComputation) {
  StreamingMoments m;
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0};
  for (double x : xs) m.add(x);
  EXPECT_EQ(m.count(), 4u);
  EXPECT_DOUBLE_EQ(m.mean(), 3.75);
  EXPECT_NEAR(m.variance(), 9.583333333, 1e-9);
  EXPECT_DOUBLE_EQ(m.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.max(), 8.0);
}

TEST(StreamingMoments, MergeEqualsConcatenation) {
  StreamingMoments a, b, whole;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i < 400 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
}

TEST(StreamingMoments, MergeWithEmpty) {
  StreamingMoments a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Histogram, PercentileUniform) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(0.95), 95.0, 1.0);
  EXPECT_NEAR(h.mean_estimate(), 50.0, 0.5);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(25.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bins().front(), 1u);
  EXPECT_EQ(h.bins().back(), 1u);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10);
  a.add(1.0);
  b.add(9.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
}

TEST(ConfidenceInterval, KnownSmallSample) {
  // n=5, data 1..5: mean 3, sd sqrt(2.5); t(4, .975) = 2.776.
  const auto ci = confidence_interval_95({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_NEAR(ci.half_width, 2.776 * std::sqrt(2.5) / std::sqrt(5.0), 1e-3);
}

TEST(ConfidenceInterval, DegenerateSizes) {
  EXPECT_EQ(confidence_interval_95({}).n, 0u);
  const auto one = confidence_interval_95({7.0});
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.half_width, 0.0);
}

TEST(JainFairness, Extremes) {
  EXPECT_DOUBLE_EQ(jain_fairness({1.0, 1.0, 1.0, 1.0}), 1.0);
  EXPECT_NEAR(jain_fairness({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
}

// ---------------------------------------------------------------- pool

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, InlineWhenZeroWorkers) {
  ThreadPool pool(0);
  int count = 0;
  pool.submit([&] { ++count; });
  EXPECT_EQ(count, 1);  // executed synchronously
}

TEST(ParallelForIndex, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for_index(500, 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForIndex, ThreadCountInvariantResult) {
  // Work whose result depends only on the index must merge identically.
  auto run = [](std::size_t threads) {
    std::vector<double> out(64);
    parallel_for_index(64, threads, [&](std::size_t i) {
      Rng rng(Rng(1234).fork(i)());
      out[i] = rng.uniform();
    });
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

// Startup/shutdown churn with concurrent submitters: the Simulator's
// persistent pool spawns no workers on single-core hosts, so this test is
// what actually drives the pool's handoff paths under the TSan CI config.
TEST(ThreadPool, StressSubmitAndTeardown) {
  for (int cycle = 0; cycle < 20; ++cycle) {
    std::atomic<int> count{0};
    {
      ThreadPool pool(4);
      std::vector<std::thread> submitters;
      for (int s = 0; s < 3; ++s) {
        submitters.emplace_back([&] {
          for (int i = 0; i < 50; ++i) pool.submit([&] { count.fetch_add(1); });
        });
      }
      for (auto& t : submitters) t.join();
      pool.wait_idle();
      EXPECT_EQ(count.load(), 150);
      // Destructor joins workers with tasks already drained.
    }
  }
}

TEST(ParallelForIndex, StressRepeatedLaunches) {
  // parallel_for_index spawns fresh threads per call; hammer the spawn/join
  // and work-stealing paths so TSan sees them even on one-core hosts.
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    parallel_for_index(256, 4, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 256u * 255u / 2);
  }
}

// ------------------------------------------------------------- serialize

TEST(BinaryReader, SoftFailsAtEveryTruncationPoint) {
  BinaryWriter w;
  w.u32(0xDEADBEEF);
  w.str("fingerprint");
  w.vec_f64({1.0, -2.5, 3.25});
  w.boolean(true);
  w.i64(-42);
  const std::vector<std::uint8_t> bytes = w.take();

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> trunc(bytes.begin(),
                                    bytes.begin() + static_cast<long>(cut));
    BinaryReader r(trunc);
    r.u32();
    r.str();
    std::vector<double> v;
    r.vec_f64(v);
    r.boolean();
    r.i64();
    // Every prefix-truncated archive must clear ok() -- never throw, abort,
    // or read out of bounds (ASan/TSan configs run this test too).
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
  BinaryReader full(bytes);
  EXPECT_EQ(full.u32(), 0xDEADBEEFu);
  EXPECT_EQ(full.str(), "fingerprint");
  std::vector<double> v;
  full.vec_f64(v);
  EXPECT_EQ(v, (std::vector<double>{1.0, -2.5, 3.25}));
  EXPECT_TRUE(full.boolean());
  EXPECT_EQ(full.i64(), -42);
  EXPECT_TRUE(full.ok() && full.at_end());
}

TEST(Crc32, MatchesTheIeeeCheckValueAndSeesEveryBit) {
  // "123456789" -> 0xCBF43926 is THE published check value for CRC-32/IEEE
  // (reflected poly 0xEDB88320); matching it pins polynomial, reflection,
  // init, and final xor all at once.
  const char* check = "123456789";
  EXPECT_EQ(common::crc32(reinterpret_cast<const std::uint8_t*>(check), 9),
            0xCBF43926u);
  EXPECT_EQ(common::crc32(nullptr, 0), 0u);

  std::vector<std::uint8_t> bytes(257);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  const std::uint32_t base = common::crc32(bytes);
  for (std::size_t i = 0; i < bytes.size(); i += 19) {
    for (int bit : {0, 7}) {
      bytes[i] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(common::crc32(bytes), base) << "byte " << i << " bit " << bit;
      bytes[i] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
  EXPECT_EQ(common::crc32(bytes), base);
}

TEST(BinaryReader, ImplausibleSizePrefixFailsInsteadOfAllocating) {
  BinaryWriter w;
  w.u64(~std::uint64_t{0});  // absurd element count for any payload
  const std::vector<std::uint8_t> bytes = w.take();
  BinaryReader r(bytes);
  std::vector<double> v;
  r.vec_f64(v);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(v.empty());
}

// ---------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns) {
  Table t({"a", "bee"});
  t.add_row({"1", "2"});
  t.add_numeric_row({3.14159, 2.0});
  const std::string s = t.render("title");
  EXPECT_NE(s.find("# title"), std::string::npos);
  EXPECT_NE(s.find("bee"), std::string::npos);
  EXPECT_NE(s.find("3.1416"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RendersCsvWithEscaping) {
  Table t({"name", "value"});
  t.add_row({"plain", "1.5"});
  t.add_row({"with,comma", "say \"hi\""});
  EXPECT_EQ(t.render_csv(),
            "name,value\n"
            "plain,1.5\n"
            "\"with,comma\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, RendersJsonWithBareNumbers) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"beta", "not-a-number"});
  // strtod would accept these, but the JSON grammar does not: keep quoted.
  t.add_row({".5", "0x1F"});
  t.add_row({"-2.5e-3", "1."});
  const std::string json = t.render_json();
  EXPECT_NE(json.find("{\"name\": \"alpha\", \"value\": 1.5}"), std::string::npos);
  EXPECT_NE(json.find("\"value\": \"not-a-number\""), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \".5\", \"value\": \"0x1F\"}"), std::string::npos);
  EXPECT_NE(json.find("{\"name\": -2.5e-3, \"value\": \"1.\"}"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(123456.789, 4), "1.235e+05");
}

}  // namespace
}  // namespace wcdma::common
