// Channel model tests: path-loss slopes, shadowing statistics and spatial
// correlation, Rayleigh fading moments and Doppler behaviour, composite
// links, and the CSI feedback pipe.
#include <gtest/gtest.h>

#include <cmath>

#include "src/channel/channel.hpp"
#include "src/channel/fading.hpp"
#include "src/channel/path_loss.hpp"
#include "src/channel/shadowing.hpp"
#include "src/common/stats.hpp"

namespace wcdma::channel {
namespace {

using common::Rng;
using common::StreamingMoments;

// ---------------------------------------------------------------- path loss

TEST(PathLoss, MonotoneInDistance) {
  PathLoss pl;
  double prev = pl.loss_db(10.0);
  for (double d = 50.0; d <= 5000.0; d += 50.0) {
    const double cur = pl.loss_db(d);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(PathLoss, MacroModelKnownValues) {
  PathLoss pl;  // 3GPP macro: 128.1 + 37.6 log10(d_km)
  EXPECT_NEAR(pl.loss_db(1000.0), 128.1, 1e-9);
  EXPECT_NEAR(pl.loss_db(2000.0), 128.1 + 37.6 * std::log10(2.0), 1e-9);
}

TEST(PathLoss, SlopePerDecade) {
  PathLoss pl;
  EXPECT_NEAR(pl.loss_db(10000.0) - pl.loss_db(1000.0), 37.6, 1e-9);
}

TEST(PathLoss, ClampsBelowMinDistance) {
  PathLoss pl;
  EXPECT_DOUBLE_EQ(pl.loss_db(0.001), pl.loss_db(10.0));
}

TEST(PathLoss, GainIsInverseLoss) {
  PathLoss pl;
  const double d = 700.0;
  EXPECT_NEAR(10.0 * std::log10(pl.gain_linear(d)), -pl.loss_db(d), 1e-9);
}

TEST(PathLoss, LogDistanceModel) {
  PathLossConfig cfg;
  cfg.kind = PathLossModelKind::kLogDistance;
  cfg.exponent = 4.0;
  cfg.reference_db = 100.0;
  cfg.reference_distance_m = 100.0;
  PathLoss pl(cfg);
  EXPECT_NEAR(pl.loss_db(100.0), 100.0, 1e-12);
  EXPECT_NEAR(pl.loss_db(1000.0), 140.0, 1e-12);
}

TEST(PathLoss, Cost231HataReasonableAtOneKm) {
  PathLossConfig cfg;
  cfg.kind = PathLossModelKind::kCost231Hata;
  PathLoss pl(cfg);
  // Urban COST231-Hata at 2 GHz, 1 km is in the high-130s dB.
  EXPECT_GT(pl.loss_db(1000.0), 130.0);
  EXPECT_LT(pl.loss_db(1000.0), 145.0);
}

// ---------------------------------------------------------------- shadowing

TEST(Shadowing, StationaryStdDev) {
  ShadowingConfig cfg;
  cfg.sigma_db = 8.0;
  Shadowing sh(cfg, Rng(3));
  StreamingMoments m;
  for (int i = 0; i < 200000; ++i) m.add(sh.step(5.0));
  EXPECT_NEAR(m.mean(), 0.0, 0.25);
  EXPECT_NEAR(m.stddev(), 8.0, 0.3);
}

TEST(Shadowing, CorrelationDecaysWithDistance) {
  ShadowingConfig cfg;
  cfg.sigma_db = 8.0;
  cfg.decorrelation_m = 50.0;
  // Estimate lag-1 correlation for 10 m steps: expect exp(-10/50) ~ 0.819.
  Shadowing sh(cfg, Rng(5));
  double sum_xy = 0.0, sum_xx = 0.0;
  double prev = sh.value_db();
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double cur = sh.step(10.0);
    sum_xy += prev * cur;
    sum_xx += prev * prev;
    prev = cur;
  }
  EXPECT_NEAR(sum_xy / sum_xx, std::exp(-10.0 / 50.0), 0.02);
}

TEST(Shadowing, ZeroMoveKeepsValueClose) {
  ShadowingConfig cfg;
  Shadowing sh(cfg, Rng(7));
  const double before = sh.value_db();
  sh.step(0.0);  // rho = 1: no innovation
  EXPECT_NEAR(sh.value_db(), before, 1e-12);
}

TEST(Shadowing, GainMatchesDbValue) {
  Shadowing sh({}, Rng(9));
  EXPECT_NEAR(10.0 * std::log10(sh.gain_linear()), sh.value_db(), 1e-9);
}

// ---------------------------------------------------------------- fading

TEST(JakesFading, UnitMeanPowerAcrossRealisations) {
  StreamingMoments m;
  Rng rng(11);
  for (int r = 0; r < 400; ++r) {
    JakesFading f(50.0, rng.fork(r), 16);
    for (int i = 0; i < 50; ++i) m.add(f.step(0.01));
  }
  EXPECT_NEAR(m.mean(), 1.0, 0.05);
}

TEST(JakesFading, DeterministicGivenSeed) {
  JakesFading a(30.0, Rng(13)), b(30.0, Rng(13));
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(a.step(0.02), b.step(0.02));
}

TEST(JakesFading, AutocorrelationFollowsDoppler) {
  // At lag tau = 1/(2 fd), J0(pi) < 0: the envelope should decorrelate.
  // Compare empirical correlation at small vs large lag.
  Rng rng(17);
  const double fd = 20.0;
  double corr_small = 0.0, corr_large = 0.0;
  const int reps = 2000;
  StreamingMoments base;
  for (int r = 0; r < reps; ++r) {
    JakesFading f(fd, rng.fork(r), 16);
    const auto g0 = f.gain_at(0.0);
    const auto g_small = f.gain_at(0.001);  // 2 pi fd t = 0.126
    const auto g_large = f.gain_at(0.025);  // 2 pi fd t = 3.14
    corr_small += g0.real() * g_small.real();
    corr_large += g0.real() * g_large.real();
    base.add(g0.real() * g0.real());
  }
  corr_small /= reps;
  corr_large /= reps;
  const double var = base.mean();
  EXPECT_GT(corr_small / var, 0.9);      // J0(0.126) ~ 0.996
  // At 2 pi fd t = pi the Clarke autocorrelation goes *negative*:
  // J0(3.14) ~ -0.304.
  EXPECT_LT(corr_large / var, 0.0);
  EXPECT_NEAR(corr_large / var, -0.304, 0.15);
}

TEST(Ar1Fading, CorrelationCoefficient) {
  // rho = J0(2 pi fd dt); fd = 10 Hz, dt = 20 ms -> J0(1.2566) ~ 0.6425.
  EXPECT_NEAR(Ar1Fading::correlation(10.0, 0.020), 0.6425, 2e-3);
  // fd = 25 Hz puts the argument at pi where J0 < 0: clamps to 0.
  EXPECT_DOUBLE_EQ(Ar1Fading::correlation(25.0, 0.020), 0.0);
}

TEST(Ar1Fading, UnitMeanPowerStationary) {
  Ar1Fading f(20.0, 0.02, Rng(19));
  StreamingMoments m;
  for (int i = 0; i < 200000; ++i) m.add(f.step(0.02));
  EXPECT_NEAR(m.mean(), 1.0, 0.02);
  // Power of a unit-mean exponential has unit variance.
  EXPECT_NEAR(m.variance(), 1.0, 0.05);
}

TEST(Ar1Fading, PowerGainNonNegative) {
  Ar1Fading f(5.0, 0.02, Rng(23));
  for (int i = 0; i < 1000; ++i) EXPECT_GE(f.step(0.02), 0.0);
}

// ---------------------------------------------------------------- link

TEST(Link, ComposesPathLossShadowFading) {
  PathLoss pl;
  LinkConfig cfg;
  cfg.fading = FadingKind::kNone;
  Link link(cfg, &pl, Rng(29));
  link.set_distance(1000.0);
  // Without fading, instantaneous == mean.
  EXPECT_DOUBLE_EQ(link.instantaneous_gain(), link.mean_gain());
  // Mean gain = path loss gain x shadow gain.
  const double expected =
      pl.gain_linear(1000.0) * std::pow(10.0, link.shadowing_db() / 10.0);
  EXPECT_NEAR(link.mean_gain(), expected, expected * 1e-12);
}

TEST(Link, FadingFactorUnitMean) {
  PathLoss pl;
  LinkConfig cfg;
  cfg.fading = FadingKind::kAr1;
  cfg.doppler_hz = 30.0;
  Link link(cfg, &pl, Rng(31));
  link.set_distance(500.0);
  StreamingMoments m;
  for (int i = 0; i < 100000; ++i) {
    link.step(0.0, 0.02);  // no movement: isolate fading
    m.add(link.fading_factor());
  }
  EXPECT_NEAR(m.mean(), 1.0, 0.03);
}

TEST(Link, DistanceChangesGain) {
  PathLoss pl;
  LinkConfig cfg;
  cfg.fading = FadingKind::kNone;
  Link link(cfg, &pl, Rng(37));
  link.set_distance(200.0);
  const double near = link.mean_gain();
  link.set_distance(2000.0);
  EXPECT_LT(link.mean_gain(), near);
}

// ---------------------------------------------------------------- feedback

TEST(CsiFeedback, ZeroDelayPassthrough) {
  CsiFeedback fb(0, 0.0, Rng(41));
  fb.push(1.5);
  EXPECT_DOUBLE_EQ(fb.current(), 1.5);
  fb.push(2.5);
  EXPECT_DOUBLE_EQ(fb.current(), 2.5);
}

TEST(CsiFeedback, DelayedByExactlyNFrames) {
  CsiFeedback fb(2, 0.0, Rng(43));
  fb.push(1.0);
  fb.push(2.0);
  fb.push(3.0);
  EXPECT_DOUBLE_EQ(fb.current(), 1.0);  // 2 frames behind
  fb.push(4.0);
  EXPECT_DOUBLE_EQ(fb.current(), 2.0);
  EXPECT_TRUE(fb.primed());
}

TEST(CsiFeedback, StartupReturnsOldestAvailable) {
  CsiFeedback fb(3, 0.0, Rng(47));
  fb.push(9.0);
  EXPECT_DOUBLE_EQ(fb.current(), 9.0);
  EXPECT_FALSE(fb.primed());
}

TEST(CsiFeedback, NoiseIsUnbiasedInDb) {
  CsiFeedback fb(0, 2.0, Rng(53));
  StreamingMoments m;
  for (int i = 0; i < 50000; ++i) {
    fb.push(1.0);
    m.add(10.0 * std::log10(fb.current()));
  }
  EXPECT_NEAR(m.mean(), 0.0, 0.05);
  EXPECT_NEAR(m.stddev(), 2.0, 0.05);
}

}  // namespace
}  // namespace wcdma::channel
