// Analytic-capacity tests: closed-form identities and, crucially, the
// cross-validation of the dynamic simulator's measured reverse rise against
// the load-factor prediction — the two are independent implementations of
// the same physics.
#include <gtest/gtest.h>

#include <cmath>

#include "src/analysis/capacity.hpp"
#include "src/sim/simulator.hpp"

namespace wcdma::analysis {
namespace {

ReverseLinkBudget default_budget() {
  ReverseLinkBudget b;
  b.sir_target = 5.0;
  b.processing_gain = 384.0;
  b.zeta = 2.0;
  b.alpha_rl = 1.0;
  b.gamma_s = 3.2;
  return b;
}

TEST(ReverseLoad, PerUserFormula) {
  const auto b = default_budget();
  // eta = 5 * 1.5 / 384.
  EXPECT_NEAR(reverse_fch_load(b), 5.0 * 1.5 / 384.0, 1e-12);
}

TEST(ReverseLoad, DcchUserIsMuchCheaper) {
  const auto b = default_budget();
  EXPECT_LT(reverse_dcch_load(b), 0.45 * reverse_fch_load(b));
  EXPECT_GT(reverse_dcch_load(b), 0.0);
}

TEST(ReverseLoad, SchUnitCostsGammaSFchEquivalents) {
  const auto b = default_budget();
  const double fch_only = b.sir_target / (b.processing_gain * b.alpha_rl);
  EXPECT_NEAR(reverse_sch_unit_load(b), b.gamma_s * fch_only, 1e-12);
}

TEST(PoleCapacity, InverseOfPerUserLoad) {
  const auto b = default_budget();
  EXPECT_NEAR(reverse_pole_capacity(b) * reverse_fch_load(b), 1.0, 1e-12);
  // ~51 simultaneous active FCH users with these defaults.
  EXPECT_NEAR(reverse_pole_capacity(b), 51.2, 0.1);
}

TEST(Rise, RoundTripsWithLoad) {
  for (double eta : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(load_at_rise_db(rise_over_thermal_db(eta)), eta, 1e-12);
  }
  EXPECT_NEAR(rise_over_thermal_db(0.5), 3.0103, 1e-3);
  EXPECT_NEAR(rise_over_thermal_db(0.75), 6.0206, 1e-3);
}

TEST(SgrBudget, ShrinksWithBaselineLoad) {
  const auto b = default_budget();
  const double empty = sch_sgr_budget(b, 0.0, 6.0);
  const double half = sch_sgr_budget(b, 0.4, 6.0);
  EXPECT_GT(empty, half);
  EXPECT_GT(half, 0.0);
  EXPECT_DOUBLE_EQ(sch_sgr_budget(b, 0.9, 6.0), 0.0);  // over cap already
}

TEST(BaselineLoad, VoiceAndDataMix) {
  const auto b = default_budget();
  const double load = baseline_load(b, 30.0, 0.4, 12.0);
  EXPECT_NEAR(load, 12.0 * reverse_fch_load(b) + 12.0 * reverse_dcch_load(b), 1e-12);
  EXPECT_LT(load, 1.0);
}

TEST(ForwardBudget, HeadroomOverSchCost) {
  ForwardLinkBudget b;
  b.bs_max_power_w = 20.0;
  b.overhead_w = 3.0;
  b.gamma_s = 3.2;
  // 17 W headroom minus 5 W committed = 12 W; 0.1 W FCH -> 12/(3.2*0.1).
  EXPECT_NEAR(forward_sgr_budget(b, 5.0, 0.1), 37.5, 1e-9);
  EXPECT_DOUBLE_EQ(forward_sgr_budget(b, 20.0, 0.1), 0.0);
}

TEST(ExpectedSchRate, MatchesEq4) {
  phy::VtaocParams params;
  params.b1 = 4.0;
  phy::AdaptationPolicy policy(phy::make_vtaoc_modes(params), 1e-3);
  const double eps = 4.0;
  const double rate1 = expected_sch_rate_bps(policy, 1, eps, 9600.0, 0.25);
  EXPECT_NEAR(rate1, 9600.0 * policy.avg_throughput_rayleigh(eps) / 0.25, 1e-9);
  EXPECT_NEAR(expected_sch_rate_bps(policy, 8, eps, 9600.0, 0.25), 8.0 * rate1, 1e-9);
  EXPECT_DOUBLE_EQ(expected_sch_rate_bps(policy, 0, eps, 9600.0, 0.25), 0.0);
}

// Cross-validation: a voice-only simulation's measured reverse rise should
// sit near the analytic prediction for its configured mix.  Loose band:
// soft hand-off legs, shadowing-driven serving-cell mismatch and other-cell
// coupling are in the simulator but not in the formula.
TEST(CrossValidation, SimulatedRiseNearAnalyticPrediction) {
  sim::SystemConfig cfg = sim::default_config();
  cfg.layout.rings = 1;
  cfg.voice.users = 28;  // ~4 active users/cell at 0.4 activity across 7 cells
  cfg.data.users = 0;
  cfg.sim_duration_s = 20.0;
  cfg.warmup_s = 5.0;
  cfg.seed = 321;
  sim::Simulator simulator(cfg);
  const sim::SimMetrics m = simulator.run();

  ReverseLinkBudget b = default_budget();
  b.alpha_rl = 0.9;  // mix of single-leg and SHO users
  // All 28 users' power lands somewhere; per-cell average load is the total
  // divided across 7 cells, concentrated by proximity — bracket it.
  const double eta_total = baseline_load(b, 28.0, 0.4, 0.0);
  const double predicted_rise = rise_over_thermal_db(eta_total / 7.0 * 2.0);
  EXPECT_NEAR(m.reverse_rise_db.mean(), predicted_rise, 1.5)
      << "simulated rise should sit near the load-factor prediction";
}

}  // namespace
}  // namespace wcdma::analysis
