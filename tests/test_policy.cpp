// Tests for the pluggable admission-policy and channel-state-provider seams:
// registry round-trips and unknown-name rejection, bit-identity of the
// default policy + exhaustive provider against pre-refactor golden metrics
// (a shrunk E5 run and a 19-cell default run), exhaustive-vs-culled metric
// equivalence on uniform-hex7, and the inter-carrier hand-down policy both
// on a synthetic FrameContext and through the simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "src/admission/policy.hpp"
#include "src/scenario/experiments.hpp"
#include "src/scenario/scenario.hpp"
#include "src/sim/channel_state.hpp"
#include "src/sim/simulator.hpp"
#include "src/sweep/sweep.hpp"

namespace wcdma {
namespace {

TEST(PolicyRegistry, RoundTripsEveryRegisteredName) {
  const std::vector<std::string> names = admission::policy_names();
  ASSERT_GE(names.size(), 7u);  // six schedulers + hand-down
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    EXPECT_TRUE(admission::has_policy(name));
    EXPECT_FALSE(admission::policy_description(name).empty());
    const auto policy = admission::make_policy(name, 7);
    ASSERT_NE(policy, nullptr);
    EXPECT_FALSE(policy->name().empty());
  }
  EXPECT_FALSE(admission::has_policy("no-such-policy"));
  EXPECT_FALSE(admission::has_policy(""));
}

TEST(PolicyRegistry, LegacySchedulerKindsMapToRegisteredNames) {
  using admission::SchedulerKind;
  for (SchedulerKind kind :
       {SchedulerKind::kJabaSd, SchedulerKind::kGreedy, SchedulerKind::kFcfs,
        SchedulerKind::kFcfsSingle, SchedulerKind::kEqualShare, SchedulerKind::kRandom}) {
    EXPECT_TRUE(admission::has_policy(admission::policy_name(kind)));
  }
}

TEST(ChannelProviderRegistry, RoundTripsEveryRegisteredName) {
  const std::vector<std::string> names = sim::channel_provider_names();
  ASSERT_GE(names.size(), 2u);
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    EXPECT_TRUE(sim::has_channel_provider(name));
    EXPECT_FALSE(sim::channel_provider_description(name).empty());
    sim::CsiConfig csi;
    csi.provider = name;
    const auto provider = sim::make_channel_provider(csi);
    ASSERT_NE(provider, nullptr);
    EXPECT_EQ(provider->name(), name);
  }
  EXPECT_FALSE(sim::has_channel_provider("no-such-provider"));
}

TEST(PolicyRegistry, SimulatorResolvesExplicitPolicyOverEnum) {
  sim::SystemConfig cfg = sim::default_config();
  cfg.layout.rings = 1;
  cfg.voice.users = 4;
  cfg.data.users = 2;
  cfg.sim_duration_s = 2.0;
  cfg.warmup_s = 0.5;
  cfg.admission.scheduler = admission::SchedulerKind::kJabaSd;
  cfg.admission.policy = "fcfs";
  const sim::Simulator simulator(cfg);
  // Registry keys, so the names round-trip through make_policy().
  EXPECT_EQ(simulator.policy_name(), "fcfs");
  EXPECT_TRUE(admission::has_policy(simulator.policy_name()));
  EXPECT_EQ(simulator.channel_provider_name(), "exhaustive");
  EXPECT_TRUE(sim::has_channel_provider(simulator.channel_provider_name()));
}

// --- Golden bit-identity: default policy + exhaustive provider ------------
// Values captured from the pre-refactor simulator (PR 2 tree) running the
// same configs; the seam refactor must not perturb a single bit.

TEST(GoldenMetrics, ShrunkE5RunIsBitIdenticalToPreRefactor) {
  sweep::SweepSpec spec = scenario::e5_delay_rl();
  spec.base.voice.users = 10;
  spec.base.sim_duration_s = 8.0;
  spec.base.warmup_s = 2.0;
  spec.axes = {sweep::axis_data_users({4, 8}),
               sweep::axis_scheduler({admission::SchedulerKind::kJabaSd})};
  spec.replications = 2;
  const sweep::SweepResult r = sweep::run_sweep(spec, 0);
  ASSERT_EQ(r.scenarios.size(), 2u);

  EXPECT_EQ(r.scenarios[0].merged.mean_delay_s(), 3.377499999999976);
  EXPECT_EQ(r.scenarios[0].merged.data_bits_delivered, 566053.76816169859);
  EXPECT_EQ(r.scenarios[0].merged.grants, 12);
  EXPECT_EQ(r.scenarios[0].merged.requests_seen, 11);
  EXPECT_EQ(r.scenarios[0].merged.granted_sgr.mean(), 10.166666666666666);
  EXPECT_EQ(r.scenarios[0].merged.queue_delay_s.mean(), 0.92833333333332868);

  EXPECT_EQ(r.scenarios[1].merged.mean_delay_s(), 3.7963636363636124);
  EXPECT_EQ(r.scenarios[1].merged.data_bits_delivered, 722632.86752643727);
  EXPECT_EQ(r.scenarios[1].merged.grants, 16);
  EXPECT_EQ(r.scenarios[1].merged.requests_seen, 16);
  EXPECT_EQ(r.scenarios[1].merged.granted_sgr.mean(), 8.4375);
  EXPECT_EQ(r.scenarios[1].merged.queue_delay_s.mean(), 1.9474999999999889);
}

// Multi-master-seed golden coverage: the single pre-refactor pin above runs
// one seed, so a stream-discipline bug that only shifts *other* seeds'
// trajectories (e.g. an extra RNG draw gated on a seed-dependent branch)
// could slip through.  Three more master seeds, same shrunk E5 point,
// pinned bit-exactly from the PR 7 tree.
TEST(GoldenMetrics, ShrunkE5IsBitIdenticalAcrossThreeMasterSeeds) {
  struct Golden {
    std::uint64_t seed;
    double mean_delay_s, data_bits_delivered;
    std::int64_t grants, requests_seen;
    double granted_sgr_mean, queue_delay_mean_s;
  };
  const Golden kGolden[] = {
      {101, 3.4285714285714093, 611234.20982430712, 13, 11,
       8.615384615384615, 1.9984615384615179},
      {7777, 2.4359999999999769, 662236.89127396676, 15, 15,
       12.0, 1.2426666666666537},
      {424242, 2.3490909090908931, 683549.18727082224, 15, 14,
       12.466666666666667, 1.6706666666666505},
  };
  for (const Golden& g : kGolden) {
    SCOPED_TRACE("seed " + std::to_string(g.seed));
    sweep::SweepSpec spec = scenario::e5_delay_rl();
    spec.base.seed = g.seed;
    spec.base.voice.users = 10;
    spec.base.sim_duration_s = 8.0;
    spec.base.warmup_s = 2.0;
    spec.axes = {sweep::axis_data_users({6}),
                 sweep::axis_scheduler({admission::SchedulerKind::kJabaSd})};
    spec.replications = 2;
    const sweep::SweepResult r = sweep::run_sweep(spec, 0);
    ASSERT_EQ(r.scenarios.size(), 1u);
    const sim::SimMetrics& m = r.scenarios[0].merged;
    EXPECT_EQ(m.mean_delay_s(), g.mean_delay_s);
    EXPECT_EQ(m.data_bits_delivered, g.data_bits_delivered);
    EXPECT_EQ(m.grants, g.grants);
    EXPECT_EQ(m.requests_seen, g.requests_seen);
    EXPECT_EQ(m.granted_sgr.mean(), g.granted_sgr_mean);
    EXPECT_EQ(m.queue_delay_s.mean(), g.queue_delay_mean_s);
  }
}

// Tolerance golden for the `fast` provider on the same shrunk E5 grid: the
// relaxed-precision path is deterministic per seed but explicitly NOT
// bit-identical, so drift is caught with declared relative-error bounds
// instead of EXPECT_EQ.  The bounds are deliberately wide enough to survive
// implementation-preserving tweaks (e.g. a re-tuned polynomial) yet tight
// enough that a physics or stream-discipline regression trips them; a
// legitimate algorithm change (new kernels, different draw batching) may
// re-pin the values, and tests/test_statcheck.cpp must pass either way.
TEST(GoldenMetrics, FastProviderShrunkE5WithinPinnedTolerances) {
  sweep::SweepSpec spec = scenario::e5_delay_rl();
  spec.base.voice.users = 10;
  spec.base.sim_duration_s = 8.0;
  spec.base.warmup_s = 2.0;
  spec.base.csi.provider = "fast";
  spec.axes = {sweep::axis_data_users({4, 8}),
               sweep::axis_scheduler({admission::SchedulerKind::kJabaSd})};
  spec.replications = 2;
  const sweep::SweepResult r = sweep::run_sweep(spec, 0);
  ASSERT_EQ(r.scenarios.size(), 2u);

  // Pinned from the PR 6 implementation (the wider default candidate
  // radius plus far-field aggregation legitimately moved the fast
  // trajectory); 10% relative bounds on the continuous metrics, +/-2 on
  // the counters.
  EXPECT_NEAR(r.scenarios[0].merged.mean_delay_s(), 2.71, 0.10 * 2.71);
  EXPECT_NEAR(r.scenarios[0].merged.data_bits_delivered, 480524.56,
              0.10 * 480524.56);
  EXPECT_NEAR(static_cast<double>(r.scenarios[0].merged.grants), 9.0, 2.0);
  EXPECT_NEAR(static_cast<double>(r.scenarios[0].merged.requests_seen), 10.0, 2.0);
  EXPECT_NEAR(r.scenarios[0].merged.granted_sgr.mean(), 8.667, 0.10 * 8.667);

  EXPECT_NEAR(r.scenarios[1].merged.mean_delay_s(), 3.57, 0.10 * 3.57);
  EXPECT_NEAR(r.scenarios[1].merged.data_bits_delivered, 567928.51,
              0.10 * 567928.51);
  EXPECT_NEAR(static_cast<double>(r.scenarios[1].merged.grants), 9.0, 2.0);
  EXPECT_NEAR(static_cast<double>(r.scenarios[1].merged.requests_seen), 11.0, 2.0);
  EXPECT_NEAR(r.scenarios[1].merged.granted_sgr.mean(), 12.222, 0.10 * 12.222);
}

TEST(GoldenMetrics, DefaultNineteenCellRunIsBitIdenticalToPreRefactor) {
  sim::SystemConfig cfg = sim::default_config();
  cfg.voice.users = 24;
  cfg.data.users = 10;
  cfg.sim_duration_s = 10.0;
  cfg.warmup_s = 2.0;
  cfg.data.mean_reading_s = 1.0;
  cfg.seed = 777;
  sim::Simulator simulator(cfg);
  const sim::SimMetrics m = simulator.run();
  EXPECT_EQ(m.mean_delay_s(), 2.4247619047618771);
  EXPECT_EQ(m.data_bits_delivered, 1822960.2476650341);
  EXPECT_EQ(m.grants, 19);
  EXPECT_EQ(m.requests_seen, 20);
  EXPECT_EQ(m.granted_sgr.mean(), 15.368421052631579);
  EXPECT_EQ(m.reverse_rise_db.mean(), 1.9151694279634321);
  EXPECT_EQ(m.forward_load_fraction.mean(), 0.22418013411970059);
  EXPECT_EQ(m.carrier_hand_downs, 0);
}

TEST(GoldenMetrics, ExplicitPolicyStringMatchesLegacyEnumPath) {
  sim::SystemConfig cfg = sim::default_config();
  cfg.layout.rings = 1;
  cfg.voice.users = 10;
  cfg.data.users = 6;
  cfg.sim_duration_s = 6.0;
  cfg.warmup_s = 1.0;
  cfg.seed = 4242;

  cfg.admission.scheduler = admission::SchedulerKind::kEqualShare;
  cfg.admission.policy.clear();
  const sim::SimMetrics via_enum = sim::Simulator(cfg).run();

  cfg.admission.policy = "equal-share";
  const sim::SimMetrics via_string = sim::Simulator(cfg).run();

  EXPECT_EQ(via_enum.mean_delay_s(), via_string.mean_delay_s());
  EXPECT_EQ(via_enum.data_bits_delivered, via_string.data_bits_delivered);
  EXPECT_EQ(via_enum.grants, via_string.grants);
}

// --- Exhaustive vs culled provider equivalence ----------------------------

TEST(ChannelProviders, CulledMatchesExhaustiveOnUniformHex7) {
  scenario::ScenarioLayout layout = scenario::uniform_hex7();
  layout.sim_duration_s = 20.0;
  layout.warmup_s = 4.0;
  sim::SystemConfig cfg = layout.to_config();

  cfg.csi.provider = "exhaustive";
  const sim::SimMetrics ex = sim::Simulator(cfg).run();
  cfg.csi.provider = "culled";
  const sim::SimMetrics cu = sim::Simulator(cfg).run();

  ASSERT_GT(ex.burst_delay_s.count(), 0u);
  ASSERT_GT(cu.burst_delay_s.count(), 0u);
  // Culling drops only far-cell interference terms; headline metrics must
  // agree within statistical tolerance (measured margins are ~2x tighter).
  EXPECT_NEAR(cu.mean_delay_s(), ex.mean_delay_s(), 0.4 * ex.mean_delay_s());
  EXPECT_NEAR(cu.data_throughput_bps(), ex.data_throughput_bps(),
              0.2 * ex.data_throughput_bps());
  EXPECT_NEAR(cu.granted_sgr.mean(), ex.granted_sgr.mean(),
              0.2 * ex.granted_sgr.mean());
  EXPECT_NEAR(cu.grant_rate(), ex.grant_rate(), 0.2);
  EXPECT_NEAR(cu.reverse_rise_db.mean(), ex.reverse_rise_db.mean(), 1.0);
  EXPECT_NEAR(cu.sch_outage_rate(), ex.sch_outage_rate(), 0.1);
}

TEST(ChannelProviders, CulledKeepsPowerInvariants) {
  sim::SystemConfig cfg = sim::default_config();
  cfg.voice.users = 20;
  cfg.data.users = 8;
  cfg.sim_duration_s = 4.0;
  cfg.warmup_s = 1.0;
  cfg.csi.provider = "culled";
  sim::Simulator simulator(cfg);
  const int frames = static_cast<int>(cfg.sim_duration_s / cfg.frame_s);
  for (int f = 0; f < frames; ++f) {
    simulator.step_frame();
    for (std::size_t k = 0; k < simulator.num_cells(); ++k) {
      EXPECT_LE(simulator.forward_power_w(k), cfg.radio.bs_max_power_w + 1e-9);
      EXPECT_GE(simulator.reverse_interference_w(k), simulator.thermal_noise_w());
    }
  }
}

// --- Hand-down policy -----------------------------------------------------

/// Synthetic context: one cell, two carriers; carrier 0's PA is at the cap,
/// carrier 1 idles.  Only the policy API can express the resulting grant.
admission::FrameContext overloaded_carrier_context() {
  admission::FrameContext ctx;
  ctx.now_s = 1.0;
  ctx.num_cells = 1;
  ctx.carriers = 2;
  ctx.p_max_watt = 20.0;
  ctx.forward_load_watt = {20.0, 3.0};        // (cell 0, carrier 0/1)
  ctx.reverse_interference_watt = {1e-12, 1e-13};
  ctx.l_max_watt = 4e-12;

  admission::FrameRequest r;
  r.user = 0;
  r.carrier = 0;
  r.forward = true;
  r.q_bits = 1.0e6;
  r.waiting_s = 0.5;
  r.delta_beta = 1.0;
  r.tx_cap = ctx.max_sgr;
  r.fch_power_watt = 0.5;
  r.reduced_set = {{0, 1.0e-12}};
  ctx.requests.push_back(r);
  return ctx;
}

TEST(HandDownPolicy, MovesRejectedRequestToIdleCarrier) {
  const admission::FrameContext ctx = overloaded_carrier_context();
  const std::vector<std::size_t> round = {0};

  // The plain scheduler policy must reject: carrier 0 has zero headroom.
  auto base = admission::make_policy("jaba-sd");
  EXPECT_TRUE(base->decide(ctx, mac::LinkDirection::kForward, 0, round).empty());

  auto hand_down = admission::make_policy("hand-down");
  const std::vector<admission::PolicyGrant> grants =
      hand_down->decide(ctx, mac::LinkDirection::kForward, 0, round);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].request, 0u);
  EXPECT_EQ(grants[0].carrier, 1);  // handed down to the idle carrier
  EXPECT_GT(grants[0].m, 0);
  EXPECT_LE(grants[0].m, ctx.max_sgr);
}

/// Asymmetric reverse rise: two soft-hand-off cells, three carriers.
/// The requesting mobile's PRIMARY leg (cell 0) sees the lowest
/// rise on carrier 1, but its secondary leg (cell 1) is nearly at the rise
/// cap there; carrier 2 is quiet at both legs.  Weighing the full reduced
/// set must steer the hand-down to carrier 2, where a primary-cell-only
/// rule would have walked into carrier 1's loaded secondary leg.
admission::FrameContext asymmetric_rise_context() {
  admission::FrameContext ctx;
  ctx.now_s = 1.0;
  ctx.num_cells = 2;
  ctx.carriers = 3;
  ctx.p_max_watt = 20.0;
  ctx.l_max_watt = 4e-12;
  // (cell, carrier) row-major: cell 0 then cell 1.
  ctx.forward_load_watt = {3.0, 3.0, 3.0, 3.0, 3.0, 3.0};
  ctx.reverse_interference_watt = {
      4e-12, 1e-13, 2e-13,   // cell 0: carrier 0 at the cap, c1 quietest
      4e-12, 3.9e-12, 1e-13  // cell 1: carrier 1 nearly at the cap
  };

  admission::FrameRequest r;
  r.user = 0;
  r.carrier = 0;
  r.forward = false;  // reverse burst
  r.q_bits = 1.0e6;
  r.waiting_s = 0.5;
  r.delta_beta = 1.0;
  r.tx_cap = ctx.max_sgr;
  r.pilot_tx_watt = 1e-15;
  r.zeta = 2.0;
  r.alpha_rl = 0.8;
  r.reduced_set = {{0, 0.5}, {1, 0.5}};  // equal-gain legs
  r.scrm_pilots = {{0, 0.5}, {1, 0.5}};
  ctx.requests.push_back(r);
  return ctx;
}

TEST(HandDownPolicy, ReverseHandDownWeighsRiseOverFullReducedSet) {
  const admission::FrameContext ctx = asymmetric_rise_context();
  const std::vector<std::size_t> round = {0};

  // Carrier 0 has zero rise headroom at both legs: the base pass rejects.
  auto base = admission::make_policy("jaba-sd");
  EXPECT_TRUE(base->decide(ctx, mac::LinkDirection::kReverse, 0, round).empty());

  // Gain-weighted rise: carrier 1 averages (1e-13 + 3.9e-12)/2, carrier 2
  // (2e-13 + 1e-13)/2 -- carrier 2 wins despite the primary leg alone
  // preferring carrier 1.
  auto hand_down = admission::make_policy("hand-down");
  const std::vector<admission::PolicyGrant> grants =
      hand_down->decide(ctx, mac::LinkDirection::kReverse, 0, round);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].request, 0u);
  EXPECT_EQ(grants[0].carrier, 2);
  EXPECT_GT(grants[0].m, 0);
}

TEST(HandDownPolicy, SingleCarrierBehavesLikeBaseScheduler) {
  sim::SystemConfig cfg = sim::default_config();
  cfg.layout.rings = 1;
  cfg.voice.users = 10;
  cfg.data.users = 6;
  cfg.sim_duration_s = 6.0;
  cfg.warmup_s = 1.0;
  cfg.seed = 888;

  cfg.admission.policy = "jaba-sd";
  const sim::SimMetrics base = sim::Simulator(cfg).run();
  cfg.admission.policy = "hand-down";
  const sim::SimMetrics hd = sim::Simulator(cfg).run();

  // With one carrier there is nowhere to hand down: identical trajectories.
  EXPECT_EQ(hd.carrier_hand_downs, 0);
  EXPECT_EQ(hd.mean_delay_s(), base.mean_delay_s());
  EXPECT_EQ(hd.data_bits_delivered, base.data_bits_delivered);
  EXPECT_EQ(hd.grants, base.grants);
}

TEST(HandDownPolicy, HandsDownUnderTwoCarrierOverload) {
  scenario::ScenarioLayout layout = scenario::enterprise_data();
  layout.data_users = 48;
  layout.sim_duration_s = 15.0;
  layout.warmup_s = 3.0;
  sim::SystemConfig cfg = layout.to_config();
  ASSERT_EQ(cfg.placement.carriers, 2);
  cfg.admission.policy = "hand-down";
  const sim::SimMetrics m = sim::Simulator(cfg).run();
  EXPECT_GT(m.carrier_hand_downs, 0);
  EXPECT_GT(m.data_bits_delivered, 0.0);
}

// --- Sweep axes over the new seams ----------------------------------------

TEST(SweepAxes, PolicyAndProviderAxesApply) {
  const sweep::Axis policy = sweep::axis_policy({"jaba-sd", "hand-down"});
  EXPECT_EQ(policy.name, "policy");
  ASSERT_EQ(policy.values.size(), 2u);
  sim::SystemConfig cfg = sim::default_config();
  policy.values[1].apply(cfg);
  EXPECT_EQ(cfg.admission.policy, "hand-down");

  const sweep::Axis csi = sweep::axis_csi_provider({"exhaustive", "culled"});
  EXPECT_EQ(csi.name, "csi_provider");
  csi.values[1].apply(cfg);
  EXPECT_EQ(cfg.csi.provider, "culled");
  cfg.validate();
}

}  // namespace
}  // namespace wcdma
