// Optimisation substrate tests: simplex on known LPs and edge cases, exact
// branch-and-bound verified against exhaustive enumeration on randomized
// instances, the DP knapsack cross-check, and greedy dominance properties.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "src/common/rng.hpp"
#include "src/opt/branch_bound.hpp"
#include "src/opt/knapsack.hpp"
#include "src/opt/simplex.hpp"

namespace wcdma::opt {
namespace {

using common::Matrix;
using common::Rng;
using common::Vector;

// ---------------------------------------------------------------- simplex

TEST(Simplex, SimpleTwoVariable) {
  // max 3x + 2y st x + y <= 4, x + 3y <= 6 -> optimum at (4,0): 12.
  LpProblem p;
  p.a = Matrix{{1.0, 1.0}, {1.0, 3.0}};
  p.b = {4.0, 6.0};
  p.c = {3.0, 2.0};
  const LpResult r = solve_lp(p);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 12.0, 1e-9);
  EXPECT_NEAR(r.x[0], 4.0, 1e-9);
  EXPECT_NEAR(r.x[1], 0.0, 1e-9);
}

TEST(Simplex, InteriorOptimum) {
  // max x + y st 2x + y <= 4, x + 2y <= 4 -> optimum (4/3, 4/3): 8/3.
  LpProblem p;
  p.a = Matrix{{2.0, 1.0}, {1.0, 2.0}};
  p.b = {4.0, 4.0};
  p.c = {1.0, 1.0};
  const LpResult r = solve_lp(p);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 8.0 / 3.0, 1e-9);
}

TEST(Simplex, UpperBoundsRespected) {
  LpProblem p;
  p.a = Matrix{{1.0, 1.0}};
  p.b = {100.0};
  p.c = {2.0, 1.0};
  p.upper = {3.0, 4.0};
  const LpResult r = solve_lp(p);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 10.0, 1e-9);  // x=3, y=4
}

TEST(Simplex, UnboundedDetected) {
  LpProblem p;
  p.a = Matrix{{-1.0}};  // -x <= 1 does not cap x above
  p.b = {1.0};
  p.c = {1.0};
  EXPECT_EQ(solve_lp(p).status, LpStatus::kUnbounded);
}

TEST(Simplex, InfeasibleByNegativeRhs) {
  // x <= -1 with x >= 0 is infeasible (phase-1 exercise).
  LpProblem p;
  p.a = Matrix{{1.0}};
  p.b = {-1.0};
  p.c = {1.0};
  EXPECT_EQ(solve_lp(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, NegativeRhsButFeasible) {
  // -x <= -2 (x >= 2) and x <= 5: optimum x = 5.
  LpProblem p;
  p.a = Matrix{{-1.0}, {1.0}};
  p.b = {-2.0, 5.0};
  p.c = {1.0};
  const LpResult r = solve_lp(p);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-9);
}

TEST(Simplex, MinimisationViaNegatedCosts) {
  // min x + y st x + y >= 2  ==  max -x -y st -x -y <= -2.
  LpProblem p;
  p.a = Matrix{{-1.0, -1.0}};
  p.b = {-2.0};
  p.c = {-1.0, -1.0};
  const LpResult r = solve_lp(p);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.0, 1e-9);
}

TEST(Simplex, DegenerateConstraintsTerminate) {
  // Redundant duplicate rows: classic degeneracy trigger.
  LpProblem p;
  p.a = Matrix{{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}, {1.0, 0.0}};
  p.b = {2.0, 2.0, 2.0, 1.0};
  p.c = {1.0, 1.0};
  const LpResult r = solve_lp(p);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
}

TEST(Simplex, EmptyConstraintsWithBounds) {
  LpProblem p;
  p.a = Matrix(0, 2, 0.0);
  p.b = {};
  p.c = {1.0, 2.0};
  p.upper = {2.0, 2.0};
  const LpResult r = solve_lp(p);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 6.0, 1e-9);
}

TEST(Simplex, SolutionAlwaysFeasible) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(4);
    const std::size_t m = 1 + rng.uniform_int(4);
    LpProblem p;
    p.a = Matrix(m, n, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < n; ++c) p.a(r, c) = rng.uniform(0.0, 2.0);
    }
    p.b.resize(m);
    for (auto& b : p.b) b = rng.uniform(0.5, 5.0);
    p.c.resize(n);
    for (auto& c : p.c) c = rng.uniform(0.0, 3.0);
    p.upper.assign(n, 10.0);
    const LpResult r = solve_lp(p);
    ASSERT_EQ(r.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_TRUE(common::satisfies(p.a, r.x, p.b, 1e-7));
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_GE(r.x[j], -1e-9);
      EXPECT_LE(r.x[j], 10.0 + 1e-7);
    }
  }
}

// ---------------------------------------------------------------- B&B

IntegerProgram random_ip(Rng& rng, std::size_t n, std::size_t k, int max_u) {
  IntegerProgram p;
  p.a = Matrix(k, n, 0.0);
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      p.a(r, c) = rng.bernoulli(0.3) ? 0.0 : rng.uniform(0.1, 2.0);
    }
  }
  p.b.resize(k);
  for (auto& b : p.b) b = rng.uniform(1.0, 8.0);
  p.c.resize(n);
  for (auto& c : p.c) c = rng.uniform(0.1, 3.0);
  p.upper.assign(n, 0);
  for (auto& u : p.upper) u = 1 + static_cast<int>(rng.uniform_int(max_u));
  return p;
}

double brute_force(const IntegerProgram& p) {
  const std::size_t n = p.c.size();
  std::vector<int> x(n, 0);
  double best = 0.0;
  std::function<void(std::size_t)> rec = [&](std::size_t j) {
    if (j == n) {
      if (ip_feasible(p, x)) best = std::max(best, ip_objective(p, x));
      return;
    }
    for (int v = 0; v <= p.upper[j]; ++v) {
      x[j] = v;
      rec(j + 1);
    }
    x[j] = 0;
  };
  rec(0);
  return best;
}

class BranchBoundVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(BranchBoundVsBruteForce, MatchesExhaustiveEnumeration) {
  Rng rng(1000 + GetParam());
  const std::size_t n = 2 + rng.uniform_int(4);   // 2..5 variables
  const std::size_t k = 1 + rng.uniform_int(3);   // 1..3 constraints
  const IntegerProgram p = random_ip(rng, n, k, 4);
  const IpResult r = BranchBoundSolver().solve(p);
  ASSERT_TRUE(r.feasible);
  ASSERT_TRUE(r.proven_optimal);
  EXPECT_TRUE(ip_feasible(p, r.x));
  EXPECT_NEAR(r.objective, brute_force(p), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, BranchBoundVsBruteForce,
                         ::testing::Range(0, 40));

TEST(BranchBound, LpBoundDominatesIpOptimum) {
  Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    const IntegerProgram p = random_ip(rng, 4, 2, 5);
    const IpResult r = BranchBoundSolver().solve(p);
    EXPECT_GE(r.lp_bound + 1e-6, r.objective);
  }
}

TEST(BranchBound, ZeroCapacityRejectsAll) {
  IntegerProgram p;
  p.a = Matrix{{1.0, 1.0}};
  p.b = {0.0};
  p.c = {1.0, 1.0};
  p.upper = {3, 3};
  const IpResult r = BranchBoundSolver().solve(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.objective, 0.0);
  EXPECT_EQ(r.x, (std::vector<int>{0, 0}));
}

TEST(BranchBound, NegativeRhsIsInfeasibleEvenAtZero) {
  IntegerProgram p;
  p.a = Matrix{{1.0}};
  p.b = {-1.0};
  p.c = {1.0};
  p.upper = {2};
  const IpResult r = BranchBoundSolver().solve(p);
  EXPECT_FALSE(r.feasible);
}

TEST(BranchBound, UnconstrainedTakesUpperBounds) {
  IntegerProgram p;
  p.a = Matrix(0, 3, 0.0);
  p.b = {};
  p.c = {1.0, 2.0, 3.0};
  p.upper = {1, 2, 3};
  const IpResult r = BranchBoundSolver().solve(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, 1.0 + 4.0 + 9.0, 1e-9);
}

TEST(BranchBound, ZeroValueVariablesStayZeroCostless) {
  IntegerProgram p;
  p.a = Matrix{{1.0, 1.0}};
  p.b = {5.0};
  p.c = {0.0, 1.0};
  p.upper = {5, 5};
  const IpResult r = BranchBoundSolver().solve(p);
  EXPECT_NEAR(r.objective, 5.0, 1e-9);
}

TEST(Greedy, AlwaysFeasible) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    const IntegerProgram p = random_ip(rng, 6, 3, 6);
    const std::vector<int> x = greedy_increments(p);
    EXPECT_TRUE(ip_feasible(p, x)) << "trial " << trial;
  }
}

TEST(Greedy, NeverBeatsExact) {
  Rng rng(88);
  for (int trial = 0; trial < 50; ++trial) {
    const IntegerProgram p = random_ip(rng, 5, 2, 4);
    const double greedy_obj = ip_objective(p, greedy_increments(p));
    const IpResult exact = BranchBoundSolver().solve(p);
    EXPECT_LE(greedy_obj, exact.objective + 1e-9);
  }
}

TEST(Greedy, NearOptimalOnPackingInstances) {
  // The polynomial JABA-SD engine should typically land within a few
  // percent of the exact optimum on admission-like instances.
  Rng rng(99);
  double total_gap = 0.0;
  const int trials = 50;
  for (int trial = 0; trial < trials; ++trial) {
    const IntegerProgram p = random_ip(rng, 8, 3, 8);
    const double greedy_obj = ip_objective(p, greedy_increments(p));
    const IpResult exact = BranchBoundSolver().solve(p);
    if (exact.objective > 0.0) total_gap += 1.0 - greedy_obj / exact.objective;
  }
  EXPECT_LT(total_gap / trials, 0.10);
}

// ---------------------------------------------------------------- knapsack

TEST(Knapsack, KnownSmallInstance) {
  // Items: (w=2, v=3, u=2), (w=3, v=4, u=1); cap 7 -> 2x item0 + 1x item1 = 10.
  const KnapsackResult r =
      solve_bounded_knapsack({2, 3}, 7, {3.0, 4.0}, {2, 1});
  EXPECT_NEAR(r.objective, 10.0, 1e-9);
  EXPECT_EQ(r.x, (std::vector<int>{2, 1}));
}

TEST(Knapsack, ZeroWeightItemsTakenFully) {
  const KnapsackResult r = solve_bounded_knapsack({0, 5}, 4, {1.0, 10.0}, {3, 2});
  EXPECT_EQ(r.x[0], 3);
  EXPECT_EQ(r.x[1], 0);  // weight 5 > cap 4
  EXPECT_NEAR(r.objective, 3.0, 1e-9);
}

TEST(Knapsack, MatchesBranchBoundOnIntegerWeights) {
  Rng rng(111);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(5);
    std::vector<std::int64_t> w(n);
    std::vector<double> v(n);
    std::vector<int> u(n);
    for (std::size_t j = 0; j < n; ++j) {
      w[j] = 1 + static_cast<std::int64_t>(rng.uniform_int(9));
      v[j] = rng.uniform(0.1, 5.0);
      u[j] = 1 + static_cast<int>(rng.uniform_int(4));
    }
    const std::int64_t cap = 5 + static_cast<std::int64_t>(rng.uniform_int(30));

    IntegerProgram p;
    p.a = Matrix(1, n, 0.0);
    for (std::size_t j = 0; j < n; ++j) p.a(0, j) = static_cast<double>(w[j]);
    p.b = {static_cast<double>(cap)};
    p.c = v;
    p.upper = u;

    const KnapsackResult kr = solve_bounded_knapsack(w, cap, v, u);
    const IpResult br = BranchBoundSolver().solve(p);
    EXPECT_NEAR(kr.objective, br.objective, 1e-6) << "trial " << trial;
    EXPECT_TRUE(ip_feasible(p, kr.x));
  }
}

TEST(Knapsack, RealWeightWrapperStaysFeasible) {
  Rng rng(131);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 4;
    std::vector<double> w(n), v(n);
    std::vector<int> u(n, 5);
    for (std::size_t j = 0; j < n; ++j) {
      w[j] = rng.uniform(0.05, 1.5);
      v[j] = rng.uniform(0.1, 2.0);
    }
    const double cap = 3.0;
    const KnapsackResult r = solve_bounded_knapsack_real(w, cap, v, u, 10000);
    double used = 0.0;
    for (std::size_t j = 0; j < n; ++j) used += w[j] * r.x[j];
    EXPECT_LE(used, cap + 1e-9);
  }
}

TEST(Knapsack, RealWrapperNearOptimal) {
  // With fine resolution the quantised solution matches B&B closely.
  const std::vector<double> w = {0.5, 0.8, 1.1};
  const std::vector<double> v = {1.0, 1.7, 2.1};
  const std::vector<int> u = {4, 4, 4};
  const double cap = 4.0;
  const KnapsackResult kr = solve_bounded_knapsack_real(w, cap, v, u, 100000);

  IntegerProgram p;
  p.a = Matrix(1, 3, 0.0);
  for (std::size_t j = 0; j < 3; ++j) p.a(0, j) = w[j];
  p.b = {cap};
  p.c = v;
  p.upper = u;
  const IpResult br = BranchBoundSolver().solve(p);
  EXPECT_NEAR(kr.objective, br.objective, 0.02 * br.objective);
}

}  // namespace
}  // namespace wcdma::opt
