// Statistical-equivalence test harness: the acceptance gate for every
// optimisation that gives up bit-identity with the reference simulator.
//
// Layers, bottom up:
//  * the common::stats toolkit itself (two-sample KS, Welch interval,
//    tolerance specs) against known distributions;
//  * the relaxed-precision kernels (common/fastmath.hpp) against libm, with
//    their documented error bounds;
//  * the ziggurat Gaussian batch generator against common::Rng::normal
//    (moments at n = 1e6 and a KS test), seeded deterministically;
//  * the `fast` channel-state provider against `exhaustive` on paired
//    common-random-number sweeps (shrunk E5, uniform-hex7, hotspot-center
//    with two carriers + hand-down), asserting the paper's headline metrics
//    -- blocking, mean burst delay, throughput, carrier hand-downs -- agree
//    within the tolerance specs declared inline below;
//  * the candidate-epoch contract (CSR index vs provider candidate sets)
//    across a load_ramp pulse for both non-exhaustive providers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "src/channel/path_loss.hpp"
#include "src/common/fastmath.hpp"
#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/common/ziggurat.hpp"
#include "src/scenario/experiments.hpp"
#include "src/scenario/scenario.hpp"
#include "src/sim/simulator.hpp"
#include "src/sweep/sweep.hpp"

namespace wcdma {
namespace {

// --- common::stats toolkit self-tests --------------------------------------

TEST(KsTwoSample, AcceptsSamplesFromOneDistribution) {
  common::Rng rng(0x5eed);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) a.push_back(rng.normal());
  for (int i = 0; i < 2000; ++i) b.push_back(rng.normal());
  const common::KsTest ks = common::ks_two_sample(a, b);
  EXPECT_LT(ks.statistic, 0.05);
  EXPECT_GT(ks.p_value, 0.01);
}

TEST(KsTwoSample, RejectsAShiftedDistribution) {
  common::Rng rng(0x5eed);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) a.push_back(rng.normal());
  for (int i = 0; i < 2000; ++i) b.push_back(rng.normal() + 0.5);
  const common::KsTest ks = common::ks_two_sample(a, b);
  EXPECT_GT(ks.statistic, 0.1);
  EXPECT_LT(ks.p_value, 1e-6);
}

TEST(KsTwoSample, ExactStatisticOnDisjointSamples) {
  const common::KsTest ks = common::ks_two_sample({1.0, 2.0}, {10.0, 20.0});
  EXPECT_DOUBLE_EQ(ks.statistic, 1.0);
  EXPECT_LT(ks.p_value, 0.2);
}

TEST(KsTwoSample, TiedValuesDoNotInflateTheStatistic) {
  // Identical discrete samples must give D = 0: the merge walk advances
  // through every tied value on both sides before evaluating the gap
  // (the one-per-side walk would report D = 0.5 here).
  EXPECT_DOUBLE_EQ(common::ks_two_sample({0.2, 0.2}, {0.2}).statistic, 0.0);
  EXPECT_DOUBLE_EQ(
      common::ks_two_sample({1.0, 1.0, 2.0}, {1.0, 2.0, 2.0}).statistic,
      1.0 / 3.0);
}

TEST(WelchInterval, CoversZeroForEqualMeansAndFlagsSeparatedOnes) {
  common::Rng rng(7);
  std::vector<double> a, b, c;
  for (int i = 0; i < 40; ++i) {
    a.push_back(rng.normal(5.0, 1.0));
    b.push_back(rng.normal(5.0, 2.0));
    c.push_back(rng.normal(9.0, 1.0));
  }
  const common::WelchInterval same = common::welch_difference_95(a, b);
  EXPECT_TRUE(same.within(1.2)) << same.mean_diff << " +/- " << same.half_width;
  EXPECT_LT(std::fabs(same.mean_diff), 1.5);
  const common::WelchInterval apart = common::welch_difference_95(a, c);
  EXPECT_FALSE(apart.contains_zero());
  // TOST containment: a real 4-sigma separation can never sit inside the
  // margin band, no matter the noise.
  EXPECT_FALSE(apart.within(1.2));
}

TEST(MetricTolerance, AbsoluteAndRelativeBoundsCompose) {
  const common::MetricTolerance tol{"demo", 0.1, 0.5};
  EXPECT_TRUE(common::within_tolerance(0.2, 0.6, tol));    // abs bound
  EXPECT_TRUE(common::within_tolerance(100.0, 109.0, tol));  // rel bound
  EXPECT_FALSE(common::within_tolerance(100.0, 120.0, tol));
  EXPECT_NE(common::tolerance_report(100.0, 120.0, tol).find("VIOLATED"),
            std::string::npos);
}

// --- Relaxed-precision kernel error bounds ----------------------------------

TEST(FastMath, Exp2WithinDocumentedRelativeError) {
  for (double x = -80.0; x <= 20.0; x += 0.00917) {
    const double exact = std::exp2(x);
    EXPECT_NEAR(common::fast_exp2(x), exact, 1e-8 * exact) << "x=" << x;
  }
}

TEST(FastMath, ExpWithinDocumentedRelativeError) {
  // fast_exp feeds the per-user shadowing correlation rho = exp(-d/d_corr).
  for (double x = -30.0; x <= 0.5; x += 0.00411) {
    const double exact = std::exp(x);
    EXPECT_NEAR(common::fast_exp(x), exact, 1e-8 * exact) << "x=" << x;
  }
}

TEST(FastMath, Log2WithinDocumentedAbsoluteError) {
  for (double x = 1.0; x < 5.0e7; x *= 1.0173) {
    EXPECT_NEAR(common::fast_log2(x), std::log2(x), 1e-9) << "x=" << x;
  }
}

TEST(FastMath, DbConversionsRoundTrip) {
  for (double db = -120.0; db <= 60.0; db += 0.37) {
    const double linear = common::fast_db_to_linear(db);
    EXPECT_NEAR(linear, std::pow(10.0, db / 10.0), 1e-8 * linear);
    EXPECT_NEAR(common::fast_linear_to_db(linear), db, 1e-7);
  }
}

TEST(FastMath, Log2DecodesSubnormalInputs) {
  // Subnormals have a zero exponent field and an UNNORMALIZED mantissa; the
  // plain bit-field decode read them as garbage near 2^-1023 * (0.xxx)
  // (fast_log2(5e-324) returned ~-1024 + log2(mantissa-as-if-normal), off by
  // up to ~51).  The fix renormalizes by an exact 2^54 scale first, so the
  // documented 1e-9 absolute error now holds down to the smallest double.
  for (const double x : {5e-324,                   // smallest subnormal
                         1.5e-323, 1e-320, 1e-315, 1e-310,
                         2.2250738585072009e-308,  // largest subnormal
                         2.2250738585072014e-308,  // smallest normal
                         4.45e-308}) {
    EXPECT_NEAR(common::fast_log2(x), std::log2(x), 1e-9) << "x=" << x;
  }
}

TEST(FastMath, Exp2BoundariesClampInsteadOfOverflowingTheExponentField) {
  // The exponent-stuffing trick builds 2^n by writing n + 1023 into the
  // exponent field; without the clamp, |x| > ~1022 wrapped the field and
  // returned garbage (fast_exp2(1100) came out tiny instead of inf-ish).
  // The fix clamps to [-1022, 1022], where the stuffed field stays in
  // [1, 2045] and results stay normal.
  const double inf = std::numeric_limits<double>::infinity();
  // Just inside the rails: still within documented relative error.
  for (const double x : {-1021.9, -1022.0, 1021.9, 1022.0}) {
    const double exact = std::exp2(x);
    EXPECT_NEAR(common::fast_exp2(x), exact, 1e-8 * exact) << "x=" << x;
  }
  // Beyond the rails: pinned to the rail values, bit for bit.
  EXPECT_EQ(common::fast_exp2(-1022.5), common::fast_exp2(-1022.0));
  EXPECT_EQ(common::fast_exp2(-5000.0), common::fast_exp2(-1022.0));
  EXPECT_EQ(common::fast_exp2(-inf), common::fast_exp2(-1022.0));
  EXPECT_EQ(common::fast_exp2(1023.0), common::fast_exp2(1022.0));
  EXPECT_EQ(common::fast_exp2(5000.0), common::fast_exp2(1022.0));
  EXPECT_EQ(common::fast_exp2(inf), common::fast_exp2(1022.0));
  // Results at the rails are normal, finite, positive.
  EXPECT_GT(common::fast_exp2(-1022.0), 0.0);
  EXPECT_GE(common::fast_exp2(-1022.0), 2.2250738585072014e-308);
  EXPECT_TRUE(std::isfinite(common::fast_exp2(1022.0)));
}

TEST(FastMath, Exp2PropagatesNanInsteadOfComparingItIntoTheClamp) {
  // NaN must come out as NaN (the old min/max clamp order turned it into
  // the rail value on some compilers because NaN comparisons are false).
  EXPECT_TRUE(std::isnan(
      common::fast_exp2(std::numeric_limits<double>::quiet_NaN())));
}

TEST(FastMath, PathLossAffineFoldMatchesEveryModel) {
  // The fast gain kernel consumes PathLoss::affine_log10(); it must agree
  // with loss_db() across models and distances, or the fused constants
  // have drifted from the reference evaluation.
  for (const channel::PathLossModelKind kind :
       {channel::PathLossModelKind::kLogDistance,
        channel::PathLossModelKind::k3gppMacro,
        channel::PathLossModelKind::kCost231Hata}) {
    channel::PathLossConfig cfg;
    cfg.kind = kind;
    const channel::PathLoss model(cfg);
    const channel::PathLoss::AffineLog10 affine = model.affine_log10();
    for (double d = 5.0; d < 2.0e4; d *= 1.7) {
      const double clamped = std::max(d, cfg.min_distance_m);
      EXPECT_NEAR(affine.a_db + affine.b_db * std::log10(clamped),
                  model.loss_db(d), 1e-9)
          << "kind=" << static_cast<int>(kind) << " d=" << d;
    }
  }
}

// --- Ziggurat Gaussian batch generator (property tests) ---------------------

TEST(ZigguratNormal, MomentsMatchStandardNormalAtOneMillion) {
  const std::size_t n = 1'000'000;
  common::Rng rng(0x216ull);
  const common::ZigguratNormal zig;
  common::StreamingMoments m;
  double sum3 = 0.0, sum4 = 0.0;
  std::vector<double> batch(4096);
  for (std::size_t done = 0; done < n; done += batch.size()) {
    zig.fill(rng, batch.data(), batch.size());
    for (double z : batch) {
      m.add(z);
      sum3 += z * z * z;
      sum4 += z * z * z * z;
    }
  }
  const double nd = static_cast<double>(m.count());
  // Bounds at ~4-5 standard errors of each sample moment (se(mean) = 1e-3,
  // se(skew) ~ sqrt(6/n), se(excess kurtosis) ~ sqrt(24/n)).
  EXPECT_NEAR(m.mean(), 0.0, 0.005);
  EXPECT_NEAR(m.variance(), 1.0, 0.008);
  EXPECT_NEAR(sum3 / nd, 0.0, 0.012);      // skewness (sigma = 1)
  EXPECT_NEAR(sum4 / nd, 3.0, 0.025);      // kurtosis of N(0,1)
}

TEST(ZigguratNormal, KsAgainstPolarBoxMullerReference) {
  const std::size_t n = 20'000;
  common::Rng zig_rng(0xabcdef01ull);
  common::Rng ref_rng(0x10fedcbaull);
  const common::ZigguratNormal zig;
  std::vector<double> a(n), b(n);
  zig.fill(zig_rng, a.data(), n);
  for (double& x : b) x = ref_rng.normal();
  const common::KsTest ks = common::ks_two_sample(a, b);
  EXPECT_GT(ks.p_value, 0.001) << "KS D=" << ks.statistic;
}

TEST(ZigguratNormal, TailsAreExercisedAndBounded) {
  // 1e6 draws must produce |z| > 3.65 (beyond the ziggurat base strip, so
  // the tail sampler runs) and nothing absurd.
  const std::size_t n = 1'000'000;
  common::Rng rng(0x7a11);
  const common::ZigguratNormal zig;
  std::size_t beyond_cut = 0;
  double extreme = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double z = zig.draw(rng);
    if (std::fabs(z) > 3.6541528853610088) ++beyond_cut;
    extreme = std::max(extreme, std::fabs(z));
  }
  // P(|Z| > 3.654) ~ 2.58e-4 -> expect ~258 +/- 5 sigma.
  EXPECT_GT(beyond_cut, 150u);
  EXPECT_LT(beyond_cut, 400u);
  EXPECT_LT(extreme, 6.5);
}

TEST(ZigguratNormal, DeterministicPerSeedStream) {
  const common::ZigguratNormal zig;
  common::Rng r1(42), r2(42), r3(43);
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const double a = zig.draw(r1);
    EXPECT_EQ(a, zig.draw(r2));
    if (a != zig.draw(r3)) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(ZigguratNormal, FillDrawCountContractHolds) {
  // fill() documents an exact stream contract (ziggurat.hpp): the returned
  // word count IS the number of raw 64-bit draws consumed, n == 0 touches
  // nothing, and any split of n into sub-fills lands on the same samples
  // and the same stream position.  The fast provider leans on this for CRN
  // pairing (every user's innovation stream must consume identically no
  // matter how the frame batches its lanes), so it is pinned here as a
  // property, not assumed.
  const common::ZigguratNormal zig;

  // n == 0: zero words, stream untouched (was: one unconditional draw).
  {
    common::Rng rng(0xbeef), fresh(0xbeef);
    EXPECT_EQ(zig.fill(rng, nullptr, 0), 0u);
    EXPECT_EQ(rng.next_u64(), fresh.next_u64());
  }

  // The word count equals the true stream advance: burning `words` draws
  // on a clone must land it on the same position, for any batch size.
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                              std::size_t{64}, std::size_t{1000}}) {
    common::Rng rng(0x900d + n), clone(0x900d + n);
    std::vector<double> out(n);
    const std::size_t words = zig.fill(rng, out.data(), n);
    EXPECT_GE(words, n);  // at least one word per accepted sample
    for (std::size_t i = 0; i < words; ++i) clone.next_u64();
    EXPECT_EQ(rng.next_u64(), clone.next_u64()) << "n=" << n;
  }

  // Single-element fills are draw() in disguise: same samples, same stream.
  {
    common::Rng seq1(0x51e9), seq2(0x51e9);
    for (int i = 0; i < 3000; ++i) {
      double one;
      zig.fill(seq1, &one, 1);
      EXPECT_EQ(one, zig.draw(seq2)) << "sample " << i;
    }
    EXPECT_EQ(seq1.next_u64(), seq2.next_u64());
  }

  // Golden total: 100k samples from a fixed seed consume exactly this many
  // words (~2.1% above n: wedge tests + tail excursions).  Any change to
  // the acceptance structure -- tables, rejection order, batch replay --
  // moves this number and must be a deliberate, documented break.
  {
    common::Rng rng(0xd12a);
    std::vector<double> out(100000);
    EXPECT_EQ(zig.fill(rng, out.data(), out.size()), 102142u);
  }
}

// --- Paired CRN sweeps: `fast` vs `exhaustive` ------------------------------

/// Rounds that granted nothing, as a fraction of all scheduling rounds that
/// had work: the measurable "blocking" proxy the admission metrics expose.
double blocking_probability(const sim::SimMetrics& m) {
  const double rounds = static_cast<double>(m.grants + m.reject_rounds);
  return rounds > 0.0 ? static_cast<double>(m.reject_rounds) / rounds : 0.0;
}

struct EquivalenceTolerances {
  common::MetricTolerance blocking{"blocking_probability", 0.0, 0.10};
  common::MetricTolerance delay{"mean_burst_delay_s", 0.35, 0.30};
  common::MetricTolerance throughput{"data_throughput_bps", 0.25, 0.0};
  common::MetricTolerance hand_downs{"carrier_hand_downs", 0.50, 12.0};
  /// TOST margin on the per-replication mean delays, seconds: the whole
  /// Welch 95% interval of the difference must fit in +/- this band, so an
  /// under-powered (too-noisy) comparison FAILS rather than passing
  /// vacuously.  Sized per scenario from measured |diff| + half_width with
  /// headroom for compiler-level fp trajectory differences.
  double delay_welch_margin_s = 2.5;
};

/// Runs `spec` with a (reference, fast) provider axis prepended under
/// common random numbers and asserts the headline metrics agree.  The
/// reference is `exhaustive` where culling is a near-no-op (7-cell grids,
/// where the 2R cull radius keeps every cell live) and `culled` where the
/// scenario leans on the PR 3 culling physics (19-cell multi-carrier) --
/// there the comparison isolates exactly the relaxed-math seam this PR
/// introduces, with the culling approximation bounded separately.
void expect_fast_matches(const std::string& reference, sweep::SweepSpec spec,
                         const EquivalenceTolerances& tol) {
  spec.axes.insert(spec.axes.begin(),
                   sweep::axis_csi_provider({reference, "fast"}));
  spec.common_random_numbers = true;  // paired drops/traffic per replication
  const sweep::SweepResult r = sweep::run_sweep(spec, 0);
  ASSERT_EQ(r.scenarios.size() % 2, 0u);
  const std::size_t half = r.scenarios.size() / 2;
  for (std::size_t s = 0; s < half; ++s) {
    const sweep::ScenarioResult& ex = r.scenarios[s];
    const sweep::ScenarioResult& fa = r.scenarios[half + s];
    ASSERT_EQ(ex.labels[0], reference);
    ASSERT_EQ(fa.labels[0], "fast");
    SCOPED_TRACE("scenario " + std::to_string(s));
    ASSERT_GT(ex.merged.burst_delay_s.count(), 0u);
    ASSERT_GT(fa.merged.burst_delay_s.count(), 0u);

    EXPECT_TRUE(common::within_tolerance(blocking_probability(fa.merged),
                                         blocking_probability(ex.merged),
                                         tol.blocking))
        << common::tolerance_report(blocking_probability(fa.merged),
                                    blocking_probability(ex.merged), tol.blocking);
    EXPECT_TRUE(common::within_tolerance(fa.merged.mean_delay_s(),
                                         ex.merged.mean_delay_s(), tol.delay))
        << common::tolerance_report(fa.merged.mean_delay_s(),
                                    ex.merged.mean_delay_s(), tol.delay);
    EXPECT_TRUE(common::within_tolerance(fa.merged.data_throughput_bps(),
                                         ex.merged.data_throughput_bps(),
                                         tol.throughput))
        << common::tolerance_report(fa.merged.data_throughput_bps(),
                                    ex.merged.data_throughput_bps(), tol.throughput);
    EXPECT_TRUE(common::within_tolerance(
        static_cast<double>(fa.merged.carrier_hand_downs),
        static_cast<double>(ex.merged.carrier_hand_downs), tol.hand_downs))
        << common::tolerance_report(
               static_cast<double>(fa.merged.carrier_hand_downs),
               static_cast<double>(ex.merged.carrier_hand_downs), tol.hand_downs);

    // Distribution-level check on the replication means: the Welch 95%
    // interval of the difference must sit within the declared margin.
    if (ex.replication_mean_delay_s.size() >= 2) {
      const common::WelchInterval w = common::welch_difference_95(
          fa.replication_mean_delay_s, ex.replication_mean_delay_s);
      EXPECT_TRUE(w.within(tol.delay_welch_margin_s))
          << "welch diff " << w.mean_diff << " +/- " << w.half_width;
    }
  }
}

TEST(StatisticalEquivalence, FastMatchesExhaustiveOnShrunkE5) {
  // The paper's E5 (reverse-link delay) grid, shrunk to a CI horizon: one
  // congested cell cluster, all-upload data users.
  sweep::SweepSpec spec = scenario::e5_delay_rl();
  spec.base.voice.users = 20;
  spec.base.sim_duration_s = 25.0;
  spec.base.warmup_s = 5.0;
  spec.axes = {sweep::axis_data_users({12})};
  // 30 paired replications: the 3R default candidate radius keeps every
  // cell of this 7-cell world live, so `fast` runs the relaxed kernels on
  // an uncull-ed trajectory and the per-replication delay differences are
  // pure paired chaos (no bias -- the Welch mean shrinks as replications
  // grow).  10 replications were under-powered for that spread and failed
  // the TOST vacuity check; 30 bring the 95% interval to ~1.0 +/- 1.0 s,
  // inside the 2.5 s margin with headroom.
  spec.replications = 30;
  expect_fast_matches("exhaustive", spec, EquivalenceTolerances{});
}

TEST(StatisticalEquivalence, FastMatchesExhaustiveOnUniformHex7) {
  scenario::ScenarioLayout layout = scenario::uniform_hex7();
  layout.sim_duration_s = 30.0;
  layout.warmup_s = 5.0;
  sweep::SweepSpec spec;
  spec.name = "statcheck-uniform-hex7";
  spec.base = layout.to_config();
  spec.replications = 8;
  EquivalenceTolerances tol;
  tol.delay_welch_margin_s = 2.0;  // measured |diff|+hw ~1.0 at 8 reps
  expect_fast_matches("exhaustive", spec, tol);
}

TEST(StatisticalEquivalence, FastMatchesExhaustiveOnHotspotCenter) {
  // 19-cell hotspot against the full exhaustive reference -- the scenario
  // that leans hardest on the culling physics.  Before far-field
  // aggregation the dropped far-cell interference cost a ~0.10 absolute
  // blocking gap here (declared as rel 0.16 through PR 5); with the culled
  // cells folded back in as ring aggregates the gap is pinned at <= 0.03
  // absolute (docs/ACCURACY.md records the before/after sweep).
  scenario::ScenarioLayout layout = scenario::hotspot_center();
  layout.data_users = 32;
  layout.sim_duration_s = 25.0;
  layout.warmup_s = 5.0;
  sweep::SweepSpec spec;
  spec.name = "statcheck-hotspot-center";
  spec.base = layout.to_config();
  spec.replications = 4;
  EquivalenceTolerances tol;
  tol.blocking = {"blocking_probability", 0.0, 0.03};
  tol.delay_welch_margin_s = 3.0;  // measured |diff|+hw ~2.1 at 4 reps
  expect_fast_matches("exhaustive", spec, tol);
}

TEST(StatisticalEquivalence, FastMatchesExhaustiveOnShrunkLargeHex) {
  // The 127-cell metro grid, shrunk to a CI population/horizon: the world
  // size where the culling providers earn their keep (candidates are ~13
  // of 127 cells) and the far-field aggregate carries almost the whole
  // out-of-candidate interference budget.  Exhaustive is affordable here
  // only because the population is cut to ~360 users.
  scenario::ScenarioLayout layout = scenario::large_hex();
  layout.voice_users = 300;
  layout.data_users = 60;
  layout.sim_duration_s = 15.0;
  layout.warmup_s = 3.0;
  sweep::SweepSpec spec;
  spec.name = "statcheck-large-hex";
  spec.base = layout.to_config();
  spec.replications = 3;
  EquivalenceTolerances tol;
  // Same accuracy contract as the hotspot test: <= 0.03 absolute blocking
  // (measured 0.016: fast 0.412 vs exhaustive 0.427) and a delay TOST
  // margin with headroom (measured |diff|+hw ~0.5 at 3 reps).
  tol.blocking = {"blocking_probability", 0.0, 0.03};
  tol.delay_welch_margin_s = 2.0;
  expect_fast_matches("exhaustive", spec, tol);
}

TEST(StatisticalEquivalence, FastMatchesCulledOnHotspotCenterHandDown) {
  // Two carriers + the hand-down policy on the 19-cell hotspot so the
  // carrier_hand_downs tolerance is exercised by real hand-downs.  The
  // reference is `culled`: both sides share the candidate physics, so any
  // disagreement is attributable to the relaxed-precision kernels alone
  // (measured: blocking 0.24 vs 0.20, hand-downs 101 vs 99).
  scenario::ScenarioLayout layout = scenario::hotspot_center();
  layout.data_users = 32;
  layout.sim_duration_s = 25.0;
  layout.warmup_s = 5.0;
  sweep::SweepSpec spec;
  spec.name = "statcheck-hotspot-handdown";
  spec.base = layout.to_config();
  spec.base.placement.carriers = 2;
  spec.base.admission.policy = "hand-down";
  spec.replications = 4;
  EquivalenceTolerances tol;
  tol.delay_welch_margin_s = 1.5;  // measured |diff|+hw ~0.4 at 4 reps
  expect_fast_matches("culled", spec, tol);
}

// --- Candidate-epoch contract across a load ramp ----------------------------

/// Regression suite for the epoch/queue-rebuild contract: the CSR candidate
/// index must mirror the provider's live candidate sets after EVERY frame
/// (including the frames where a mid-ramp refresh changes sets and bumps
/// the epoch), and the indexed request queues must match the O(users) scan.
/// Written to reproduce a suspected mismatch between `culled` candidate
/// epochs and the queue/index rebuilds under `load_ramp`; the sweep found
/// the contract holds for both non-exhaustive providers, and this test now
/// pins it (a provider that mutates a candidate set without moving its
/// epoch fails here immediately).
void check_epoch_contract(const std::string& provider) {
  scenario::ScenarioLayout layout = scenario::uniform_hex7();
  layout.sim_duration_s = 14.0;
  layout.warmup_s = 2.0;
  // Vehicular speeds force frequent candidate churn; the ramp piles
  // requests into the middle of the run.
  layout.max_speed_mps = 30.0;
  layout.min_speed_mps = 10.0;
  layout.load_ramp.peak_scale = 4.0;
  layout.load_ramp.start_s = 4.0;
  layout.load_ramp.rise_s = 2.0;
  layout.load_ramp.hold_s = 4.0;
  layout.load_ramp.fall_s = 2.0;
  sim::SystemConfig cfg = layout.to_config();
  cfg.csi.provider = provider;
  cfg.csi.refresh_interval_s = 0.2;  // several epochs inside the ramp
  // The default radius covers this whole 7-cell world, which would freeze
  // the candidate sets; shrink it so refreshes genuinely churn the epoch.
  cfg.csi.cull_radius_scale = 2.0;
  sim::Simulator simulator(cfg);
  ASSERT_EQ(simulator.channel_provider_name(), provider);

  const int frames = static_cast<int>(cfg.sim_duration_s / cfg.frame_s);
  std::uint64_t last_epoch = 0;
  int epoch_moves_mid_ramp = 0;
  for (int f = 0; f < frames; ++f) {
    simulator.step_frame();
    ASSERT_TRUE(simulator.csi_index_consistent())
        << provider << ": CSR index diverged from provider sets at frame " << f;
    ASSERT_EQ(simulator.queued_requests(), simulator.pending_requests())
        << provider << ": request queues diverged at frame " << f;
    const std::uint64_t epoch = simulator.csi_candidate_epoch();
    const double now = simulator.now_s();
    if (epoch != last_epoch && now > 4.0 && now < 12.0) ++epoch_moves_mid_ramp;
    last_epoch = epoch;
  }
  // The scenario must actually exercise mid-ramp epoch changes, otherwise
  // the per-frame assertions above prove nothing.
  EXPECT_GE(epoch_moves_mid_ramp, 5) << provider;
  EXPECT_GT(simulator.metrics().requests_seen, 0);
}

TEST(CandidateEpochContract, CulledIndexAndQueuesTrackMidRampEpochChanges) {
  check_epoch_contract("culled");
}

TEST(CandidateEpochContract, FastIndexAndQueuesTrackMidRampEpochChanges) {
  check_epoch_contract("fast");
}

}  // namespace
}  // namespace wcdma
