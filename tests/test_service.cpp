// Determinism harness for the message-driven service core (src/service/):
//
//  * compliance-table round-trips: every catalogue event type survives
//    writer -> JSONL -> reader bit-exactly, and table rows stay in enum
//    order with unique names/tags;
//  * replay-vs-live bit-identity: a run recorded from the internal-traffic
//    batch path replays through the AdmissionService to metrics that match
//    the originating run bit for bit, on the shrunk E5 grid point and the
//    hotspot-centre scenario;
//  * checkpoint/restore: snapshot at frame k + resume into a fresh
//    simulator equals the uninterrupted run, as a property across three
//    master seeds; mismatched-config archives are refused with state
//    untouched;
//  * protocol nacks: malformed, duplicate, out-of-order, and
//    unknown-target events nack with the catalogue's result codes and
//    leave all state unchanged, and the trace reader rejects malformed
//    lines with a line number instead of guessing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/scenario/experiments.hpp"
#include "src/service/events.hpp"
#include "src/service/service.hpp"
#include "src/service/trace.hpp"
#include "src/sim/simulator.hpp"

namespace wcdma {
namespace {

using service::AdmissionService;
using service::Event;
using service::EventResult;
using service::EventType;
using service::ResultCode;
using service::TraceHeader;
using service::TraceReader;
using service::TraceRecord;
using service::TraceWriter;

// EXPECT_EQ on doubles is exact: these helpers pin bit-identity, not
// closeness.
void expect_moments_identical(const common::StreamingMoments& a,
                              const common::StreamingMoments& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

void expect_metrics_identical(const sim::SimMetrics& a, const sim::SimMetrics& b) {
  expect_moments_identical(a.burst_delay_s, b.burst_delay_s);
  expect_moments_identical(a.queue_delay_s, b.queue_delay_s);
  expect_moments_identical(a.granted_sgr, b.granted_sgr);
  expect_moments_identical(a.pending_queue_len, b.pending_queue_len);
  expect_moments_identical(a.forward_load_fraction, b.forward_load_fraction);
  expect_moments_identical(a.reverse_rise_db, b.reverse_rise_db);
  expect_moments_identical(a.voice_sir_error_db, b.voice_sir_error_db);
  ASSERT_EQ(a.delay_by_distance.size(), b.delay_by_distance.size());
  for (std::size_t i = 0; i < a.delay_by_distance.size(); ++i) {
    expect_moments_identical(a.delay_by_distance[i], b.delay_by_distance[i]);
  }
  EXPECT_EQ(a.p95_delay_s(), b.p95_delay_s());
  EXPECT_EQ(a.data_bits_delivered, b.data_bits_delivered);
  EXPECT_EQ(a.observed_s, b.observed_s);
  EXPECT_EQ(a.sch_frames, b.sch_frames);
  EXPECT_EQ(a.sch_outage_frames, b.sch_outage_frames);
  EXPECT_EQ(a.ber_violation_frames, b.ber_violation_frames);
  EXPECT_EQ(a.mode_frames, b.mode_frames);
  EXPECT_EQ(a.requests_seen, b.requests_seen);
  EXPECT_EQ(a.grants, b.grants);
  EXPECT_EQ(a.reject_rounds, b.reject_rounds);
  EXPECT_EQ(a.carrier_hand_downs, b.carrier_hand_downs);
  EXPECT_EQ(a.bs_power_saturations, b.bs_power_saturations);
  EXPECT_EQ(a.mobile_power_saturations, b.mobile_power_saturations);
}

std::int64_t frame_count(const sim::SystemConfig& cfg) {
  return static_cast<std::int64_t>(std::llround(cfg.sim_duration_s / cfg.frame_s));
}

/// Shrunk E5 grid point (reverse-link, all-upload): the same base the golden
/// bit-identity tests pin, cut to a test-budget duration.
sim::SystemConfig shrunk_e5_config(std::uint64_t seed) {
  sim::SystemConfig cfg = scenario::e5_delay_rl().base;
  cfg.seed = seed;
  cfg.voice.users = 10;
  cfg.data.users = 6;
  cfg.sim_duration_s = 6.0;
  cfg.warmup_s = 2.0;
  return cfg;
}

sim::SystemConfig hotspot_config(std::uint64_t seed) {
  sim::SystemConfig cfg = scenario::hotspot_cell_config(seed);
  cfg.sim_duration_s = 6.0;
  cfg.warmup_s = 1.0;
  return cfg;
}

// --- Compliance table -----------------------------------------------------

TEST(EventCatalogue, RowsStayInEnumOrderWithUniqueNamesAndTags) {
  const auto& table = service::event_catalogue();
  std::set<std::string> names, tags;
  for (std::size_t i = 0; i < service::kNumEventTypes; ++i) {
    EXPECT_EQ(static_cast<std::size_t>(table[i].type), i);
    EXPECT_TRUE(names.insert(table[i].name).second) << table[i].name;
    EXPECT_TRUE(tags.insert(table[i].tag).second) << table[i].tag;
    // The wire tag must resolve back to the same row.
    EXPECT_EQ(service::event_spec_by_tag(table[i].tag), &table[i]);
  }
  EXPECT_EQ(service::event_spec_by_tag("no-such-tag"), nullptr);
}

TEST(EventCatalogue, OnlyMeasurementReportLeavesStateUntouched) {
  for (const service::EventSpec& spec : service::event_catalogue()) {
    EXPECT_EQ(spec.mutates_state, spec.type != EventType::kMeasurementReport)
        << spec.name;
  }
}

// One writer->reader round-trip per catalogue row, fields driven by the
// row's own needs_* flags so a new event type is covered the moment it
// gains a table entry.
TEST(EventCatalogue, EveryEventTypeRoundTripsThroughTheTraceFormat) {
  TraceHeader header;
  header.policy = "jaba-sd";
  header.provider = "exhaustive";
  for (const service::EventSpec& spec : service::event_catalogue()) {
    SCOPED_TRACE(spec.name);
    Event e;
    e.type = spec.type;
    e.frame = 1234;
    if (spec.needs_user) e.user = 17;
    // An awkward payload: must survive %.17g exactly.
    if (spec.needs_bits) e.bits = 40629.498868052222;
    if (spec.needs_carrier) e.carrier = 2;

    std::stringstream stream;
    TraceWriter writer(stream);
    writer.begin(header);
    writer.event(e);
    writer.finish();

    TraceReader reader(stream);
    TraceHeader parsed;
    ASSERT_TRUE(reader.read_header(&parsed)) << reader.error();
    TraceRecord record;
    ASSERT_TRUE(reader.next(&record)) << reader.error();
    if (spec.type == EventType::kTick) {
      EXPECT_EQ(record.ticks, 1);
    } else {
      EXPECT_EQ(record.ticks, 0);
      EXPECT_EQ(record.event.type, e.type);
      EXPECT_EQ(record.event.frame, e.frame);
      if (spec.needs_user) {
        EXPECT_EQ(record.event.user, e.user);
      }
      if (spec.needs_bits) {
        EXPECT_EQ(record.event.bits, e.bits);
      }
      if (spec.needs_carrier) {
        EXPECT_EQ(record.event.carrier, e.carrier);
      }
    }
    EXPECT_FALSE(reader.next(&record));
    EXPECT_TRUE(reader.ok()) << reader.error();
  }
}

TEST(TraceFormat, HeaderRoundTripsEveryField) {
  TraceHeader header;
  header.seed = 0xDEADBEEFCAFEull;
  header.users = 421;
  header.cells = 19;
  header.carriers = 3;
  header.frame_s = 0.020000000000000004;  // not exactly 0.02: %.17g territory
  header.policy = "hand-down";
  header.provider = "culled";

  std::stringstream stream;
  TraceWriter writer(stream);
  writer.begin(header);
  writer.finish();

  TraceReader reader(stream);
  TraceHeader parsed;
  ASSERT_TRUE(reader.read_header(&parsed)) << reader.error();
  EXPECT_EQ(parsed.version, service::kTraceVersion);
  EXPECT_EQ(parsed.seed, header.seed);
  EXPECT_EQ(parsed.users, header.users);
  EXPECT_EQ(parsed.cells, header.cells);
  EXPECT_EQ(parsed.carriers, header.carriers);
  EXPECT_EQ(parsed.frame_s, header.frame_s);
  EXPECT_EQ(parsed.policy, header.policy);
  EXPECT_EQ(parsed.provider, header.provider);
}

TEST(TraceFormat, ConsecutiveTicksCoalesceAndExpand) {
  TraceHeader header;
  std::stringstream stream;
  TraceWriter writer(stream);
  writer.begin(header);
  for (int i = 0; i < 57; ++i) writer.event(Event::tick());
  writer.event(Event::burst_request(57, 3, 1000.0));
  for (int i = 0; i < 2; ++i) writer.event(Event::tick());
  writer.finish();

  // 1 header + coalesced tick + req + coalesced tick.
  std::string text = stream.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);

  TraceReader reader(stream);
  TraceHeader parsed;
  ASSERT_TRUE(reader.read_header(&parsed));
  TraceRecord record;
  ASSERT_TRUE(reader.next(&record));
  EXPECT_EQ(record.ticks, 57);
  ASSERT_TRUE(reader.next(&record));
  EXPECT_EQ(record.ticks, 0);
  EXPECT_EQ(record.event.type, EventType::kBurstRequest);
  ASSERT_TRUE(reader.next(&record));
  EXPECT_EQ(record.ticks, 2);
  EXPECT_FALSE(reader.next(&record));
  EXPECT_TRUE(reader.ok());
}

TEST(TraceFormat, MalformedLinesFailWithALineNumber) {
  const std::string header =
      "{\"trace\":\"wcdma-burst-events\",\"v\":1,\"seed\":1,\"users\":4,"
      "\"cells\":7,\"carriers\":1,\"frame_s\":0.02,\"policy\":\"jaba-sd\","
      "\"provider\":\"exhaustive\"}\n";
  const struct {
    const char* line;
    const char* why;
  } kCases[] = {
      {"{\"e\":\"warp\",\"f\":1}\n", "unknown tag"},
      {"{\"e\":\"req\",\"u\":3,\"bits\":10}\n", "missing frame"},
      {"{\"e\":\"req\",\"f\":1,\"bits\":10}\n", "missing user"},
      {"{\"e\":\"req\",\"f\":1,\"u\":3}\n", "missing bits"},
      {"{\"e\":\"hd\",\"f\":1,\"u\":3}\n", "missing carrier"},
      {"{\"e\":\"tick\",\"n\":0}\n", "non-positive tick count"},
      {"{\"e\":\"tick\",\"n\":-4}\n", "negative tick count"},
      {"{\"f\":1,\"u\":3}\n", "missing tag"},
  };
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.why);
    std::stringstream stream(header + c.line);
    TraceReader reader(stream);
    TraceHeader parsed;
    ASSERT_TRUE(reader.read_header(&parsed)) << reader.error();
    TraceRecord record;
    EXPECT_FALSE(reader.next(&record));
    EXPECT_FALSE(reader.ok());
    // Errors carry the 1-based line number of the offending line.
    EXPECT_NE(reader.error().find("line 2"), std::string::npos) << reader.error();
  }
}

TEST(TraceFormat, RejectsForeignAndDownlevelHeaders) {
  {
    std::stringstream stream("{\"trace\":\"other-format\",\"v\":1}\n");
    TraceReader reader(stream);
    TraceHeader parsed;
    EXPECT_FALSE(reader.read_header(&parsed));
    EXPECT_FALSE(reader.ok());
  }
  {
    std::stringstream stream(
        "{\"trace\":\"wcdma-burst-events\",\"v\":2,\"seed\":1,\"users\":4,"
        "\"cells\":7,\"carriers\":1,\"frame_s\":0.02,\"policy\":\"p\","
        "\"provider\":\"q\"}\n");
    TraceReader reader(stream);
    TraceHeader parsed;
    EXPECT_FALSE(reader.read_header(&parsed));
    EXPECT_NE(reader.error().find("version"), std::string::npos);
  }
  {
    std::stringstream stream("");
    TraceReader reader(stream);
    TraceHeader parsed;
    EXPECT_FALSE(reader.read_header(&parsed));
    EXPECT_NE(reader.error().find("empty"), std::string::npos);
  }
}

// --- Replay-vs-live bit-identity -------------------------------------------

void expect_replay_matches_live(const sim::SystemConfig& cfg) {
  std::stringstream trace;
  sim::SimMetrics live;
  {
    sim::Simulator sim(cfg);
    service::TraceRecorder recorder(sim, trace);
    recorder.run_frames(frame_count(cfg));
    recorder.finish();
    live = sim.metrics();
  }
  const service::ReplayResult replayed = service::replay_trace(cfg, trace);
  ASSERT_TRUE(replayed.ok) << replayed.error;
  EXPECT_EQ(replayed.counters.nacks, 0);
  EXPECT_EQ(replayed.counters.ticks, frame_count(cfg));
  // Every recorded request is an external injection on replay; the live
  // run counted the same arrivals internally (warmup arrivals included:
  // requests_seen is post-warmup only, counters.requests is not).
  EXPECT_GE(replayed.counters.requests, replayed.metrics.requests_seen);
  expect_metrics_identical(live, replayed.metrics);
}

TEST(ReplayBitIdentity, ShrunkE5ReverseLink) {
  expect_replay_matches_live(shrunk_e5_config(42));
}

TEST(ReplayBitIdentity, HotspotCenter) {
  expect_replay_matches_live(hotspot_config(7));
}

TEST(ReplayBitIdentity, CulledProviderHotspot) {
  sim::SystemConfig cfg = hotspot_config(11);
  cfg.csi.provider = "culled";
  expect_replay_matches_live(cfg);
}

TEST(Replay, RefusesAForeignHeader) {
  sim::SystemConfig cfg = hotspot_config(7);
  std::stringstream trace;
  {
    sim::Simulator sim(cfg);
    service::TraceRecorder recorder(sim, trace);
    recorder.run_frames(10);
  }
  cfg.seed = 8;  // recorded under seed 7
  const service::ReplayResult replayed = service::replay_trace(cfg, trace);
  EXPECT_FALSE(replayed.ok);
  EXPECT_NE(replayed.error.find("does not match"), std::string::npos)
      << replayed.error;
}

// --- Checkpoint / restore ---------------------------------------------------

// Property: for several master seeds, snapshot at frame k + restore into a
// freshly constructed simulator + run the remaining frames == the
// uninterrupted run, bit for bit (metrics and forward powers).
TEST(CheckpointRestore, ResumedRunEqualsUninterruptedAcrossSeeds) {
  for (const std::uint64_t seed : {3ull, 17ull, 90001ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const sim::SystemConfig cfg = hotspot_config(seed);
    const std::int64_t frames = frame_count(cfg);
    const std::int64_t k = frames / 3;

    sim::Simulator uninterrupted(cfg);
    for (std::int64_t f = 0; f < frames; ++f) uninterrupted.step_frame();

    std::vector<std::uint8_t> archive;
    {
      sim::Simulator first(cfg);
      for (std::int64_t f = 0; f < k; ++f) first.step_frame();
      archive = first.snapshot();
    }
    sim::Simulator resumed(cfg);
    ASSERT_TRUE(resumed.restore(archive));
    EXPECT_EQ(resumed.frame_index(), k);
    for (std::int64_t f = k; f < frames; ++f) resumed.step_frame();

    expect_metrics_identical(uninterrupted.metrics(), resumed.metrics());
    for (std::size_t cell = 0; cell < uninterrupted.num_cells(); ++cell) {
      EXPECT_EQ(uninterrupted.forward_power_w(cell), resumed.forward_power_w(cell));
      EXPECT_EQ(uninterrupted.reverse_interference_w(cell),
                resumed.reverse_interference_w(cell));
    }
  }
}

TEST(CheckpointRestore, SnapshotIsStableAcrossIdenticalRuns) {
  const sim::SystemConfig cfg = hotspot_config(5);
  auto snap_at = [&](std::int64_t k) {
    sim::Simulator sim(cfg);
    for (std::int64_t f = 0; f < k; ++f) sim.step_frame();
    return sim.snapshot();
  };
  // The serialized form is deterministic: two identical runs produce
  // byte-identical archives (the property CI's cmp-based smoke rests on).
  EXPECT_EQ(snap_at(50), snap_at(50));
  EXPECT_NE(snap_at(50), snap_at(51));
}

TEST(CheckpointRestore, RefusesMismatchedConfigAndTruncatedArchives) {
  const sim::SystemConfig cfg = hotspot_config(5);
  sim::Simulator sim(cfg);
  for (int f = 0; f < 20; ++f) sim.step_frame();
  const std::vector<std::uint8_t> archive = sim.snapshot();

  {
    sim::SystemConfig other = cfg;
    other.seed = 6;
    sim::Simulator victim(other);
    EXPECT_FALSE(victim.restore(archive));
    EXPECT_EQ(victim.frame_index(), 0);  // state untouched
  }
  {
    sim::SystemConfig other = cfg;
    other.data.users += 1;
    sim::Simulator victim(other);
    EXPECT_FALSE(victim.restore(archive));
  }
  {
    std::vector<std::uint8_t> truncated(archive.begin(),
                                        archive.begin() + archive.size() / 2);
    sim::Simulator victim(cfg);
    EXPECT_FALSE(victim.restore(truncated));
    std::vector<std::uint8_t> garbage(64, 0xAB);
    EXPECT_FALSE(victim.restore(garbage));
    EXPECT_FALSE(victim.restore({}));
  }
}

// The v2 crc32 footer turns silent bit rot into a refused restore: flipping
// any single bit -- payload, header, or the footer itself -- must soft-fail
// and leave the victim untouched.
TEST(CheckpointRestore, SingleBitFlipAnywhereIsRefused) {
  const sim::SystemConfig cfg = hotspot_config(9);
  sim::Simulator donor(cfg);
  for (int f = 0; f < 12; ++f) donor.step_frame();
  const std::vector<std::uint8_t> archive = donor.snapshot();

  sim::Simulator victim(cfg);
  const std::vector<std::uint8_t> before = victim.snapshot();
  std::vector<std::uint8_t> damaged = archive;
  for (std::size_t i = 0; i < archive.size(); i += 97) {
    damaged[i] ^= 0x10;
    ASSERT_FALSE(victim.restore(damaged)) << "flip at byte " << i;
    ASSERT_TRUE(victim.snapshot() == before)
        << "refused restore mutated state (flip at byte " << i << ")";
    damaged[i] = archive[i];
  }
  // Also the very last byte (inside the crc footer itself).
  damaged.back() ^= 0x01;
  EXPECT_FALSE(victim.restore(damaged));
  damaged.back() = archive.back();
  ASSERT_TRUE(victim.restore(damaged));
}

// Transactional restore: an archive truncated at ANY 64-byte boundary must
// soft-fail and leave the victim exactly as it was -- never crash, never
// partially apply.  Pinned by comparing the victim's own snapshot bytes
// before and after each refused restore (snapshots are deterministic).
TEST(CheckpointRestore, TruncationAtEvery64ByteBoundaryLeavesStateUntouched) {
  const sim::SystemConfig cfg = hotspot_config(11);
  sim::Simulator donor(cfg);
  for (int f = 0; f < 15; ++f) donor.step_frame();
  const std::vector<std::uint8_t> archive = donor.snapshot();

  sim::Simulator victim(cfg);
  for (int f = 0; f < 7; ++f) victim.step_frame();
  const std::vector<std::uint8_t> before = victim.snapshot();

  for (std::size_t cut = 0; cut < archive.size(); cut += 64) {
    const std::vector<std::uint8_t> truncated(
        archive.begin(), archive.begin() + static_cast<std::ptrdiff_t>(cut));
    ASSERT_FALSE(victim.restore(truncated)) << "cut at " << cut;
    ASSERT_TRUE(victim.snapshot() == before)
        << "refused restore mutated state (cut at " << cut << ")";
  }
  // The intact archive still restores, and the restored state satisfies the
  // runtime invariant contract.
  ASSERT_TRUE(victim.restore(archive));
  std::string why;
  EXPECT_TRUE(victim.check_invariants(&why)) << why;
  EXPECT_TRUE(victim.snapshot() == archive);
}

TEST(CheckpointRestore, ServiceCheckpointCarriesBufferedInjections) {
  const sim::SystemConfig cfg = hotspot_config(9);
  const int data_user = cfg.voice.users;  // users order: voice, then data

  AdmissionService a(cfg);
  ASSERT_TRUE(a.submit(Event::tick()).ok());
  ASSERT_TRUE(
      a.submit(Event::burst_request(a.frame(), data_user, 5000.0)).ok());
  const std::vector<std::uint8_t> archive = a.checkpoint();

  AdmissionService b(cfg);
  ASSERT_TRUE(b.restore(archive));
  EXPECT_EQ(b.frame(), 1);
  // The buffered injection rode along: a duplicate request nacks...
  EXPECT_EQ(b.submit(Event::burst_request(b.frame(), data_user, 5000.0)).code,
            ResultCode::kNackDuplicate);
  // ...and both services drain it in the same frame to the same state.
  for (int f = 0; f < 10; ++f) {
    ASSERT_TRUE(a.submit(Event::tick()).ok());
    ASSERT_TRUE(b.submit(Event::tick()).ok());
  }
  expect_metrics_identical(a.simulator().metrics(), b.simulator().metrics());
}

// --- Protocol nack paths ----------------------------------------------------

TEST(AdmissionServiceProtocol, NacksMalformedAndOutOfOrderEvents) {
  const sim::SystemConfig cfg = hotspot_config(4);
  const int voice_user = 0;
  const int data_user = cfg.voice.users;
  const auto users = static_cast<int>(cfg.voice.users + cfg.data.users);

  AdmissionService service(cfg);
  ASSERT_TRUE(service.submit(Event::tick()).ok());
  const std::int64_t now = service.frame();

  // Frame discipline: stale and future stamps nack.
  EXPECT_EQ(service.submit(Event::burst_request(now - 1, data_user, 1.0)).code,
            ResultCode::kNackOutOfOrder);
  EXPECT_EQ(service.submit(Event::burst_request(now + 1, data_user, 1.0)).code,
            ResultCode::kNackOutOfOrder);

  // Unknown or wrong-class targets.
  EXPECT_EQ(service.submit(Event::burst_request(now, users, 1.0)).code,
            ResultCode::kNackUnknownUser);
  EXPECT_EQ(service.submit(Event::burst_request(now, -1, 1.0)).code,
            ResultCode::kNackUnknownUser);
  EXPECT_EQ(service.submit(Event::burst_request(now, voice_user, 1.0)).code,
            ResultCode::kNackNotData);
  EXPECT_EQ(service.submit(Event::release(now, voice_user)).code,
            ResultCode::kNackNotData);
  EXPECT_EQ(service.submit(Event::hand_down(now, voice_user, 0)).code,
            ResultCode::kNackNotData);

  // Malformed payloads.
  EXPECT_EQ(service.submit(Event::burst_request(now, data_user, 0.0)).code,
            ResultCode::kNackBadPayload);
  EXPECT_EQ(service.submit(Event::burst_request(now, data_user, -4.0)).code,
            ResultCode::kNackBadPayload);
  EXPECT_EQ(service.submit(Event::burst_request(now, data_user,
                                                std::nan(""))).code,
            ResultCode::kNackBadPayload);
  EXPECT_EQ(service.submit(Event::hand_down(now, data_user,
                                            cfg.placement.carriers)).code,
            ResultCode::kNackBadPayload);
  EXPECT_EQ(service.submit(Event::hand_down(now, data_user, -1)).code,
            ResultCode::kNackBadPayload);

  // Release with nothing in flight.
  EXPECT_EQ(service.submit(Event::release(now, data_user)).code,
            ResultCode::kNackNoPending);

  // Duplicate requests nack while the first stays queued.
  EXPECT_EQ(service.submit(Event::burst_request(now, data_user, 9000.0)).code,
            ResultCode::kAck);
  EXPECT_EQ(service.submit(Event::burst_request(now, data_user, 9000.0)).code,
            ResultCode::kNackDuplicate);

  // Hand-down while a request is buffered nacks busy.
  EXPECT_EQ(service.submit(Event::hand_down(now, data_user, 0)).code,
            ResultCode::kNackBurstActive);

  // A release cancels the buffered request; a second release has nothing.
  EXPECT_EQ(service.submit(Event::release(now, data_user)).code,
            ResultCode::kAck);
  EXPECT_EQ(service.submit(Event::release(now, data_user)).code,
            ResultCode::kNackNoPending);

  // Measurement reports ack for any known user and mutate nothing.
  EXPECT_EQ(service.submit(Event::measurement_report(now, voice_user)).code,
            ResultCode::kAck);

  const service::ServiceCounters& c = service.counters();
  // 2 out-of-order + 2 unknown + 3 not-data + 5 bad-payload + 2 no-pending
  // + 1 duplicate + 1 busy hand-down.
  EXPECT_EQ(c.nacks, 16);
  EXPECT_EQ(c.requests, 1);
  EXPECT_EQ(c.releases, 1);
  EXPECT_EQ(c.reports, 1);
  EXPECT_EQ(c.ticks, 1);
  EXPECT_EQ(c.acks, c.ticks + c.requests + c.releases + c.reports);
}

TEST(AdmissionServiceProtocol, NackedEventsLeaveTheRunBitIdentical) {
  const sim::SystemConfig cfg = hotspot_config(21);
  const int data_user = cfg.voice.users;
  const std::int64_t frames = 100;

  AdmissionService clean(cfg);
  AdmissionService noisy(cfg);
  for (std::int64_t f = 0; f < frames; ++f) {
    // A barrage of invalid traffic every frame must not perturb anything:
    // nacked events touch no simulator state.
    EXPECT_FALSE(noisy.submit(Event::burst_request(f - 1, data_user, 1.0)).ok());
    EXPECT_FALSE(noisy.submit(Event::burst_request(f, data_user, -1.0)).ok());
    EXPECT_FALSE(noisy.submit(Event::release(f, data_user)).ok());
    ASSERT_TRUE(clean.submit(Event::tick()).ok());
    ASSERT_TRUE(noisy.submit(Event::tick()).ok());
  }
  expect_metrics_identical(clean.simulator().metrics(),
                           noisy.simulator().metrics());
}

TEST(AdmissionServiceOverload, ShedsRequestsBeyondTheInjectionQueueCap) {
  sim::SystemConfig cfg = hotspot_config(7);
  cfg.service.injection_queue_cap = 2;
  const int d0 = cfg.voice.users;

  AdmissionService service(cfg);
  ASSERT_TRUE(service.submit(Event::tick()).ok());
  const std::int64_t now = service.frame();

  // Two requests fill the queue; the third is shed with the overload nack.
  EXPECT_EQ(service.submit(Event::burst_request(now, d0, 9000.0)).code,
            ResultCode::kAck);
  EXPECT_EQ(service.submit(Event::burst_request(now, d0 + 1, 9000.0)).code,
            ResultCode::kAck);
  EXPECT_EQ(service.submit(Event::burst_request(now, d0 + 2, 9000.0)).code,
            ResultCode::kNackOverload);
  EXPECT_EQ(service.counters().sheds, 1);
  EXPECT_EQ(service.simulator().metrics().overload_sheds, 1);

  // A release frees a slot, so the shed user's retry is admitted: shedding
  // is load-dependent back-pressure, not a ban.
  EXPECT_EQ(service.submit(Event::release(now, d0)).code, ResultCode::kAck);
  EXPECT_EQ(service.submit(Event::burst_request(now, d0 + 2, 9000.0)).code,
            ResultCode::kAck);
  EXPECT_EQ(service.counters().sheds, 1);

  // Shed responses are nacks in the protocol counters too.
  EXPECT_EQ(service.counters().nacks, 1);
}

TEST(AdmissionServiceOverload, ShedEventsLeaveTheRunBitIdentical) {
  sim::SystemConfig cfg = hotspot_config(22);
  cfg.service.injection_queue_cap = 1;
  const int d1 = cfg.voice.users;
  const int d2 = d1 + 1;
  const std::int64_t frames = 100;

  AdmissionService clean(cfg);
  AdmissionService noisy(cfg);
  int sheds_seen = 0;
  for (std::int64_t f = 0; f < frames; ++f) {
    if (f == 5 || f == 20 || f == 40) {
      // Both services carry the same accepted load from d1; only noisy sees
      // d2's surplus.  Right after a fresh ack the queue provably holds
      // d1's injection, so d2's request must shed -- and a shed, like every
      // nack, touches no simulator state.
      const ResultCode c0 = clean.submit(Event::burst_request(f, d1, 9e3)).code;
      const ResultCode c1 = noisy.submit(Event::burst_request(f, d1, 9e3)).code;
      ASSERT_EQ(c0, c1);
      if (c0 == ResultCode::kAck) {
        EXPECT_EQ(noisy.submit(Event::burst_request(f, d2, 9e3)).code,
                  ResultCode::kNackOverload);
        ++sheds_seen;
      }
    }
    ASSERT_TRUE(clean.submit(Event::tick()).ok());
    ASSERT_TRUE(noisy.submit(Event::tick()).ok());
  }
  EXPECT_GE(sheds_seen, 1);
  EXPECT_EQ(noisy.counters().sheds, sheds_seen);
  EXPECT_EQ(noisy.simulator().metrics().overload_sheds, sheds_seen);
  EXPECT_EQ(clean.counters().sheds, 0);
  // expect_metrics_identical covers the shared metrics; the shed counter is
  // the one field that legitimately differs between the two runs.
  expect_metrics_identical(clean.simulator().metrics(),
                           noisy.simulator().metrics());
}

}  // namespace
}  // namespace wcdma
