// Closed-form CDMA load/capacity analysis.
//
// Section 1 of the paper builds on the classical interference-limited
// capacity picture of CDMA (voice statistical multiplexing, pole capacity,
// rise-over-thermal).  This module provides those formulas as a design and
// validation tool: the test suite cross-checks the dynamic simulator's
// measured rise against these predictions, and scenario authors can size
// voice/data mixes before running simulations.
//
// Conventions: "load factor" eta is the fraction of total received power
// contributed by served users; L = N / (1 - eta) so the rise over thermal
// is -10 log10(1 - eta).
#pragma once

#include "src/phy/adaptation.hpp"

namespace wcdma::analysis {

struct ReverseLinkBudget {
  double sir_target = 5.0;       // FCH Eb/I0 target (linear)
  double processing_gain = 384;  // W / R_f
  double zeta = 2.0;             // FCH/pilot TX ratio at the mobile
  double alpha_rl = 1.0;         // soft-handoff adjustment
  double gamma_s = 3.2;          // SCH/FCH symbol Es/I0 ratio
  double dcch_fraction = 0.125;  // control-hold DCCH load vs full FCH
};

/// Load-factor contribution of one *active* full-rate FCH user (pilot
/// included): eta = SIR (1 + 1/zeta) / (pg * alpha).
double reverse_fch_load(const ReverseLinkBudget& budget);

/// Load-factor contribution of an idle (Control Hold) data user.
double reverse_dcch_load(const ReverseLinkBudget& budget);

/// Load-factor cost of ONE spreading-gain-ratio unit of SCH.
double reverse_sch_unit_load(const ReverseLinkBudget& budget);

/// Pole capacity: number of simultaneous active FCH users at eta -> 1.
double reverse_pole_capacity(const ReverseLinkBudget& budget);

/// Rise over thermal (dB) at load factor eta in [0, 1).
double rise_over_thermal_db(double eta);

/// Load factor implied by a rise cap (dB): eta = 1 - 10^(-rise/10).
double load_at_rise_db(double rise_db);

/// Total SGR budget (sum of m_j) available to SCH bursts in a cell whose
/// baseline load is eta_base, under a rise cap.  Clamped at 0.
double sch_sgr_budget(const ReverseLinkBudget& budget, double eta_base,
                      double rise_cap_db);

/// Baseline cell load for a voice/data mix: n_voice active-factor-weighted
/// FCH users plus n_data idle DCCH users.
double baseline_load(const ReverseLinkBudget& budget, double voice_users,
                     double voice_activity, double data_users);

struct ForwardLinkBudget {
  double bs_max_power_w = 20.0;
  double overhead_w = 3.0;       // pilot + common channels
  double gamma_s = 3.2;
};

/// Number of concurrent SGR units the forward budget supports when the
/// average per-user FCH forward power is `fch_power_w` and `base_traffic_w`
/// is already committed: floor of headroom / (gamma_s * fch_power).
double forward_sgr_budget(const ForwardLinkBudget& budget, double base_traffic_w,
                          double fch_power_w);

/// Expected SCH bit rate for a grant of m SGR units at local-mean CSI
/// `eps_s`, given the VTAOC policy (Eq. 4 with the Rayleigh-average
/// throughput).
double expected_sch_rate_bps(const phy::AdaptationPolicy& policy, int m, double eps_s,
                             double fch_bit_rate, double fch_throughput);

}  // namespace wcdma::analysis
