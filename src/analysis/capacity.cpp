#include "src/analysis/capacity.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"

namespace wcdma::analysis {

double reverse_fch_load(const ReverseLinkBudget& b) {
  WCDMA_ASSERT(b.processing_gain > 0.0 && b.alpha_rl > 0.0 && b.zeta > 0.0);
  // X_fch * G = SIR * L / (pg * alpha); the mobile also radiates a pilot at
  // X_fch / zeta, so the received-power fraction per user is:
  return b.sir_target * (1.0 + 1.0 / b.zeta) / (b.processing_gain * b.alpha_rl);
}

double reverse_dcch_load(const ReverseLinkBudget& b) {
  // Control-hold: pilot plus the DCCH at dcch_fraction of the FCH power.
  const double fch_g = b.sir_target / (b.processing_gain * b.alpha_rl);
  return fch_g * (b.dcch_fraction + 1.0 / b.zeta);
}

double reverse_sch_unit_load(const ReverseLinkBudget& b) {
  const double fch_g = b.sir_target / (b.processing_gain * b.alpha_rl);
  return b.gamma_s * fch_g;
}

double reverse_pole_capacity(const ReverseLinkBudget& b) {
  return 1.0 / reverse_fch_load(b);
}

double rise_over_thermal_db(double eta) {
  WCDMA_ASSERT(eta >= 0.0 && eta < 1.0);
  return -10.0 * std::log10(1.0 - eta);
}

double load_at_rise_db(double rise_db) {
  WCDMA_ASSERT(rise_db >= 0.0);
  return 1.0 - std::pow(10.0, -rise_db / 10.0);
}

double sch_sgr_budget(const ReverseLinkBudget& b, double eta_base, double rise_cap_db) {
  const double eta_cap = load_at_rise_db(rise_cap_db);
  const double headroom = eta_cap - eta_base;
  if (headroom <= 0.0) return 0.0;
  return headroom / reverse_sch_unit_load(b);
}

double baseline_load(const ReverseLinkBudget& b, double voice_users,
                     double voice_activity, double data_users) {
  WCDMA_ASSERT(voice_activity >= 0.0 && voice_activity <= 1.0);
  return voice_users * voice_activity * reverse_fch_load(b) +
         data_users * reverse_dcch_load(b);
}

double forward_sgr_budget(const ForwardLinkBudget& b, double base_traffic_w,
                          double fch_power_w) {
  WCDMA_ASSERT(fch_power_w > 0.0);
  const double headroom = b.bs_max_power_w - b.overhead_w - base_traffic_w;
  if (headroom <= 0.0) return 0.0;
  return headroom / (b.gamma_s * fch_power_w);
}

double expected_sch_rate_bps(const phy::AdaptationPolicy& policy, int m, double eps_s,
                             double fch_bit_rate, double fch_throughput) {
  WCDMA_ASSERT(m >= 0 && fch_bit_rate > 0.0 && fch_throughput > 0.0);
  if (m == 0) return 0.0;
  const double beta_s = policy.avg_throughput_rayleigh(eps_s);
  // Eq. 4: Rs = Rf * m * beta_s / beta_f.
  return fch_bit_rate * static_cast<double>(m) * beta_s / fch_throughput;
}

}  // namespace wcdma::analysis
