#include "src/service/service.hpp"

#include <cmath>
#include <istream>

#include "src/common/assert.hpp"

namespace wcdma::service {

TraceHeader trace_header_for(const sim::Simulator& sim) {
  TraceHeader h;
  h.seed = sim.config().seed;
  h.users = sim.num_users();
  h.cells = sim.num_cells();
  h.carriers = sim.num_carriers();
  h.frame_s = sim.config().frame_s;
  h.policy = sim.policy_name();
  h.provider = sim.channel_provider_name();
  return h;
}

AdmissionService::AdmissionService(const sim::SystemConfig& config) : sim_(config) {
  sim_.set_traffic_mode(sim::Simulator::TrafficMode::kExternal);
}

EventResult AdmissionService::validate(const Event& e) const {
  const EventSpec& spec = event_spec(e.type);
  if (e.type == EventType::kTick) return {};
  // Frame discipline: a non-tick event binds to the frame it was stamped
  // for; accepting it early or late would consume injection slots (and RNG
  // draws downstream) in a different frame than the recording run.
  if (e.frame != sim_.frame_index()) return {ResultCode::kNackOutOfOrder};
  if (spec.needs_user &&
      (e.user < 0 || static_cast<std::size_t>(e.user) >= sim_.num_users())) {
    return {ResultCode::kNackUnknownUser};
  }
  const auto u = static_cast<std::size_t>(e.user);
  switch (e.type) {
    case EventType::kBurstRequest:
      if (!sim_.user_is_data(u)) return {ResultCode::kNackNotData};
      if (!(e.bits > 0.0) || !std::isfinite(e.bits)) {
        return {ResultCode::kNackBadPayload};
      }
      if (sim_.user_burst_active(u)) return {ResultCode::kNackBurstActive};
      if (sim_.user_has_pending(u) || sim_.user_injection_queued(u)) {
        return {ResultCode::kNackDuplicate};
      }
      // Overload gate, checked last so a malformed request keeps its more
      // specific nack: a bounded injection queue sheds requests at the cap
      // instead of buffering without limit.  cap == 0 means unbounded --
      // the batch path and every recorded trace run with the gate off.
      if (const int cap = sim_.config().service.injection_queue_cap;
          cap > 0 &&
          sim_.injection_queue_depth() >= static_cast<std::size_t>(cap)) {
        return {ResultCode::kNackOverload};
      }
      break;
    case EventType::kRelease:
      if (!sim_.user_is_data(u)) return {ResultCode::kNackNotData};
      if (sim_.user_burst_active(u)) return {ResultCode::kNackBurstActive};
      if (!sim_.user_has_pending(u) && !sim_.user_injection_queued(u)) {
        return {ResultCode::kNackNoPending};
      }
      break;
    case EventType::kHandDown:
      if (!sim_.user_is_data(u)) return {ResultCode::kNackNotData};
      if (e.carrier < 0 || e.carrier >= sim_.num_carriers()) {
        return {ResultCode::kNackBadPayload};
      }
      // Queue buckets are keyed by carrier, so a user with any burst
      // machinery in flight cannot move.
      if (sim_.user_burst_active(u) || sim_.user_has_pending(u) ||
          sim_.user_injection_queued(u)) {
        return {ResultCode::kNackBurstActive};
      }
      break;
    case EventType::kMeasurementReport:
      break;  // informational: any known user acks
    case EventType::kTick:
      break;
  }
  return {};
}

EventResult AdmissionService::submit(const Event& e) {
  const EventResult result = validate(e);
  if (!result.ok()) {
    ++counters_.nacks;
    if (result.code == ResultCode::kNackOverload) {
      // The shed count is the one observable a refused request leaves
      // behind; it rides in SimMetrics so checkpoints and sweep merges
      // carry it, and every other metric stays bit-identical to a run
      // that never saw the excess request.
      ++counters_.sheds;
      sim_.note_overload_shed();
    }
    return result;
  }
  switch (e.type) {
    case EventType::kTick:
      sim_.step_frame();
      ++counters_.ticks;
      break;
    case EventType::kBurstRequest:
      sim_.inject_request(static_cast<std::size_t>(e.user), e.bits);
      ++counters_.requests;
      break;
    case EventType::kRelease:
      sim_.cancel_request(static_cast<std::size_t>(e.user));
      ++counters_.releases;
      break;
    case EventType::kHandDown:
      sim_.set_user_carrier(static_cast<std::size_t>(e.user), e.carrier);
      ++counters_.hand_downs;
      break;
    case EventType::kMeasurementReport:
      ++counters_.reports;  // acked, no state change (compliance table)
      break;
  }
  ++counters_.acks;
  return result;
}

TraceRecorder::TraceRecorder(sim::Simulator& sim, std::ostream& out)
    : sim_(sim), writer_(out) {
  WCDMA_ASSERT(sim_.traffic_mode() == sim::Simulator::TrafficMode::kInternal &&
               "record from a live internal-traffic run");
  writer_.begin(trace_header_for(sim_));
  sim_.set_arrival_observer([this](int user, double bits) {
    writer_.event(Event::burst_request(sim_.frame_index(), user, bits));
  });
}

TraceRecorder::~TraceRecorder() { finish(); }

void TraceRecorder::run_frames(std::int64_t frames) {
  WCDMA_ASSERT(!finished_);
  for (std::int64_t f = 0; f < frames; ++f) {
    sim_.step_frame();
    writer_.event(Event::tick());
  }
}

void TraceRecorder::finish() {
  if (finished_) return;
  finished_ = true;
  writer_.finish();
  sim_.set_arrival_observer(nullptr);
}

ReplayResult replay_trace(const sim::SystemConfig& config, std::istream& in) {
  ReplayResult out;
  TraceReader reader(in);
  TraceHeader header;
  if (!reader.read_header(&header)) {
    out.error = reader.error();
    return out;
  }
  AdmissionService service(config);
  const TraceHeader expect = trace_header_for(service.simulator());
  if (header.seed != expect.seed || header.users != expect.users ||
      header.cells != expect.cells || header.carriers != expect.carriers ||
      header.frame_s != expect.frame_s || header.policy != expect.policy ||
      header.provider != expect.provider) {
    out.error = "trace header does not match the replay configuration";
    return out;
  }
  TraceRecord record;
  while (reader.next(&record)) {
    if (record.ticks > 0) {
      for (std::int64_t i = 0; i < record.ticks; ++i) {
        service.submit(Event::tick());
      }
      continue;
    }
    const EventResult result = service.submit(record.event);
    if (!result.ok()) {
      out.error = std::string("replay event nacked (") + to_string(result.code) +
                  ") at frame " + std::to_string(record.event.frame);
      return out;
    }
  }
  if (!reader.ok()) {
    out.error = reader.error();
    return out;
  }
  out.ok = true;
  out.metrics = service.simulator().metrics();
  out.counters = service.counters();
  return out;
}

}  // namespace wcdma::service
