// Versioned JSONL trace format (v1) for service event streams.
//
// One JSON object per line: a header line first, then events in submission
// order.  Runs of consecutive frame ticks coalesce into one
// {"e":"tick","n":K} record so an hour-long mostly-idle run stays compact,
// and burst payloads print as %.17g so every double round-trips bit-exactly
// -- a re-emitted sweep run must replay to bit-identical metrics.
//
//   {"trace":"wcdma-burst-events","v":1,"seed":7,"users":80,"cells":7,
//    "carriers":1,"frame_s":0.02,"policy":"JABA-SD","provider":"exhaustive"}
//   {"e":"req","f":103,"u":52,"bits":418240}
//   {"e":"tick","n":57}
//
// Within a frame, "req" records precede the tick that closes the frame:
// the recorder hook fires while the frame is being stepped, and the
// replayer must buffer those arrivals before it steps the same frame.
//
// The reader is a deliberately rigid scanner for exactly what the writer
// emits (flat objects, unescaped strings, known keys); anything else is a
// parse error with a line number, never a guess.  The wire tags come from
// the event catalogue's compliance table, so format and catalogue cannot
// drift apart.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/service/events.hpp"

namespace wcdma::service {

inline constexpr int kTraceVersion = 1;
inline constexpr const char* kTraceName = "wcdma-burst-events";

/// Identity of the run a trace was recorded from; replay refuses a trace
/// whose header does not match the simulator it is replayed into.
struct TraceHeader {
  int version = kTraceVersion;
  std::uint64_t seed = 0;
  std::uint64_t users = 0;
  std::uint64_t cells = 0;
  int carriers = 1;
  double frame_s = 0.020;
  std::string policy;
  std::string provider;
};

class TraceWriter {
 public:
  explicit TraceWriter(std::ostream& out) : out_(out) {}

  /// Writes the header line; must precede every event.
  void begin(const TraceHeader& header);
  /// Appends one event (ticks coalesce until the next non-tick or finish()).
  void event(const Event& e);
  /// Flushes any trailing coalesced ticks.  Idempotent.
  void finish();

 private:
  void flush_ticks();

  std::ostream& out_;
  std::int64_t pending_ticks_ = 0;
  bool begun_ = false;
};

/// One parsed trace line: either a coalesced tick run (ticks > 0) or a
/// single non-tick event.
struct TraceRecord {
  Event event;
  std::int64_t ticks = 0;
};

class TraceReader {
 public:
  explicit TraceReader(std::istream& in) : in_(in) {}

  /// Parses the header line; false on EOF or malformed header (see error()).
  bool read_header(TraceHeader* header);
  /// Parses the next event line into `record`; false at end of stream or on
  /// a parse error -- distinguish with ok().
  bool next(TraceRecord* record);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  bool fail(const std::string& what);

  std::istream& in_;
  std::string error_;
  std::size_t line_no_ = 0;
};

}  // namespace wcdma::service
