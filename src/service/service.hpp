// Message-driven service core: the frame loop re-expressed as a stream of
// typed, acked messages over the batch simulator.
//
// Three pieces:
//
//  * AdmissionService -- owns a Simulator in external-traffic mode and
//    applies catalogue events (src/service/events.hpp) with explicit
//    ack/nack results.  Burst requests buffer and drain inside the frame's
//    traffic phase in ascending user order, exactly where the batch path's
//    internal arrivals drain, so a request stream recorded from a batch run
//    replays to bit-identical admission decisions and metrics.
//  * TraceRecorder -- attaches to a live (internal-traffic) Simulator and
//    re-emits its run as a v1 JSONL event stream (src/service/trace.hpp):
//    every data-burst arrival becomes a "req" record stamped with its frame,
//    every frame a (coalesced) tick.
//  * replay_trace() -- pumps a recorded stream through a fresh
//    AdmissionService built from the same config, refusing header
//    mismatches, and returns the replayed metrics for bit-identity checks.
//
// Checkpoint/restore rides on Simulator::snapshot()/restore(): the archive
// carries every evolved stream (RNGs, SoA channel lanes, far-field buckets,
// queues, MAC/power state, metrics), so checkpoint-at-frame-k + resume
// equals an uninterrupted run bit-for-bit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/service/events.hpp"
#include "src/service/trace.hpp"
#include "src/sim/simulator.hpp"

namespace wcdma::service {

struct ServiceCounters {
  std::int64_t acks = 0;
  std::int64_t nacks = 0;
  std::int64_t ticks = 0;
  std::int64_t requests = 0;
  std::int64_t releases = 0;
  std::int64_t hand_downs = 0;
  std::int64_t reports = 0;
  /// kNackOverload subset of `nacks`: requests shed by the bounded
  /// injection queue (config.service.injection_queue_cap).
  std::int64_t sheds = 0;
};

/// The trace-header fingerprint of a simulator's run identity.
TraceHeader trace_header_for(const sim::Simulator& sim);

class AdmissionService {
 public:
  explicit AdmissionService(const sim::SystemConfig& config);

  /// Validates and applies one event.  Non-tick events must be stamped with
  /// the service's current frame; a tick closes the frame (advances the
  /// simulator once).  Nacked events leave all state untouched.
  EventResult submit(const Event& e);

  /// Full service checkpoint (buffered injections ride inside the
  /// simulator archive) and its inverse.
  std::vector<std::uint8_t> checkpoint() const { return sim_.snapshot(); }
  bool restore(const std::vector<std::uint8_t>& bytes) { return sim_.restore(bytes); }

  std::int64_t frame() const { return sim_.frame_index(); }
  const ServiceCounters& counters() const { return counters_; }
  sim::Simulator& simulator() { return sim_; }
  const sim::Simulator& simulator() const { return sim_; }

 private:
  EventResult validate(const Event& e) const;

  sim::Simulator sim_;
  ServiceCounters counters_;
};

/// Records a live internal-traffic run as a v1 event stream.  The observer
/// hook fires inside step_frame(), so "req" records land before the tick
/// that closes their frame -- the order the replayer needs.
class TraceRecorder {
 public:
  TraceRecorder(sim::Simulator& sim, std::ostream& out);
  ~TraceRecorder();

  /// Steps the simulator `frames` frames, recording as it goes.
  void run_frames(std::int64_t frames);
  /// Flushes trailing ticks and detaches the observer.  Idempotent.
  void finish();

 private:
  sim::Simulator& sim_;
  TraceWriter writer_;
  bool finished_ = false;
};

struct ReplayResult {
  bool ok = false;
  std::string error;          // set when !ok
  sim::SimMetrics metrics;    // the replayed run's metrics
  ServiceCounters counters;
};

/// Replays a recorded trace into a fresh AdmissionService built from
/// `config`.  Fails (without touching `config`'s semantics) on header
/// mismatch, parse errors, or any nacked event -- a trace recorded from a
/// valid run acks end to end.
ReplayResult replay_trace(const sim::SystemConfig& config, std::istream& in);

}  // namespace wcdma::service
