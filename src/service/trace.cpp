#include "src/service/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "src/common/assert.hpp"

namespace wcdma::service {

namespace {

/// %.17g: the shortest fixed precision that round-trips every IEEE-754
/// double exactly through decimal text.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Extracts the raw value text of `"key":` from a flat, single-line JSON
/// object (the only shape this format emits).  False when the key is absent.
bool find_raw(const std::string& line, const std::string& key, std::string* out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const std::size_t start = pos + needle.size();
  std::size_t end = start;
  bool in_str = false;
  while (end < line.size()) {
    const char c = line[end];
    if (c == '"') in_str = !in_str;
    if (!in_str && (c == ',' || c == '}')) break;
    ++end;
  }
  *out = line.substr(start, end - start);
  return true;
}

bool get_string(const std::string& line, const std::string& key, std::string* out) {
  std::string raw;
  if (!find_raw(line, key, &raw)) return false;
  if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') return false;
  *out = raw.substr(1, raw.size() - 2);
  return true;
}

bool get_i64(const std::string& line, const std::string& key, std::int64_t* out) {
  std::string raw;
  if (!find_raw(line, key, &raw) || raw.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(raw.c_str(), &end, 10);
  if (end != raw.c_str() + raw.size()) return false;
  *out = v;
  return true;
}

bool get_u64(const std::string& line, const std::string& key, std::uint64_t* out) {
  std::string raw;
  if (!find_raw(line, key, &raw) || raw.empty() || raw[0] == '-') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
  if (end != raw.c_str() + raw.size()) return false;
  *out = v;
  return true;
}

bool get_f64(const std::string& line, const std::string& key, double* out) {
  std::string raw;
  if (!find_raw(line, key, &raw) || raw.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (end != raw.c_str() + raw.size()) return false;
  *out = v;
  return true;
}

bool get_int(const std::string& line, const std::string& key, int* out) {
  std::int64_t v = 0;
  if (!get_i64(line, key, &v)) return false;
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

void TraceWriter::begin(const TraceHeader& header) {
  WCDMA_ASSERT(!begun_ && "begin() must be called exactly once");
  begun_ = true;
  out_ << "{\"trace\":\"" << kTraceName << "\",\"v\":" << header.version
       << ",\"seed\":" << header.seed << ",\"users\":" << header.users
       << ",\"cells\":" << header.cells << ",\"carriers\":" << header.carriers
       << ",\"frame_s\":" << fmt_double(header.frame_s) << ",\"policy\":\""
       << header.policy << "\",\"provider\":\"" << header.provider << "\"}\n";
}

void TraceWriter::flush_ticks() {
  if (pending_ticks_ == 0) return;
  out_ << "{\"e\":\"tick\",\"n\":" << pending_ticks_ << "}\n";
  pending_ticks_ = 0;
}

void TraceWriter::event(const Event& e) {
  WCDMA_ASSERT(begun_ && "begin() must precede events");
  if (e.type == EventType::kTick) {
    ++pending_ticks_;
    return;
  }
  flush_ticks();
  const EventSpec& spec = event_spec(e.type);
  out_ << "{\"e\":\"" << spec.tag << "\",\"f\":" << e.frame;
  if (spec.needs_user) out_ << ",\"u\":" << e.user;
  if (spec.needs_bits) out_ << ",\"bits\":" << fmt_double(e.bits);
  if (spec.needs_carrier) out_ << ",\"c\":" << e.carrier;
  out_ << "}\n";
}

void TraceWriter::finish() { flush_ticks(); }

bool TraceReader::fail(const std::string& what) {
  if (error_.empty()) {
    error_ = "trace line " + std::to_string(line_no_) + ": " + what;
  }
  return false;
}

bool TraceReader::read_header(TraceHeader* header) {
  std::string line;
  while (std::getline(in_, line)) {
    ++line_no_;
    if (line.empty()) continue;
    std::string name;
    if (!get_string(line, "trace", &name) || name != kTraceName) {
      return fail("not a " + std::string(kTraceName) + " header");
    }
    std::int64_t version = 0;
    if (!get_i64(line, "v", &version) || version != kTraceVersion) {
      return fail("unsupported trace version");
    }
    header->version = static_cast<int>(version);
    if (!get_u64(line, "seed", &header->seed)) return fail("missing seed");
    if (!get_u64(line, "users", &header->users)) return fail("missing users");
    if (!get_u64(line, "cells", &header->cells)) return fail("missing cells");
    if (!get_int(line, "carriers", &header->carriers)) return fail("missing carriers");
    if (!get_f64(line, "frame_s", &header->frame_s)) return fail("missing frame_s");
    if (!get_string(line, "policy", &header->policy)) return fail("missing policy");
    if (!get_string(line, "provider", &header->provider)) {
      return fail("missing provider");
    }
    return true;
  }
  return fail("empty trace");
}

bool TraceReader::next(TraceRecord* record) {
  std::string line;
  while (std::getline(in_, line)) {
    ++line_no_;
    if (line.empty()) continue;
    std::string tag;
    if (!get_string(line, "e", &tag)) return fail("missing event tag");
    const EventSpec* spec = event_spec_by_tag(tag);
    if (spec == nullptr) return fail("unknown event tag '" + tag + "'");
    *record = TraceRecord{};
    if (spec->type == EventType::kTick) {
      std::int64_t n = 0;
      if (!get_i64(line, "n", &n) || n <= 0) return fail("bad tick count");
      record->ticks = n;
      return true;
    }
    Event e;
    e.type = spec->type;
    if (!get_i64(line, "f", &e.frame)) return fail("missing frame");
    if (spec->needs_user && !get_int(line, "u", &e.user)) {
      return fail("missing user");
    }
    if (spec->needs_bits && !get_f64(line, "bits", &e.bits)) {
      return fail("missing bits");
    }
    if (spec->needs_carrier && !get_int(line, "c", &e.carrier)) {
      return fail("missing carrier");
    }
    record->event = e;
    return true;
  }
  return false;  // clean end of stream (ok() stays true)
}

}  // namespace wcdma::service
