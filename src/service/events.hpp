// Typed event catalogue for the message-driven service core.
//
// The batch simulator advances by calling step_frame() in a loop; the
// service core re-expresses the same run as a stream of typed messages --
// burst requests, releases, hand-downs, measurement reports, and frame
// ticks -- each answered with an explicit ack or a reasoned nack.  The
// catalogue follows the BTS signalling-stack idiom of a static per-message
// compliance table (one row per message type declaring its name, wire tag,
// and required payload fields) that handlers and tests both consult, so a
// message can never be half-supported: if it is in the table it parses,
// validates, applies, and round-trips through the trace format.
//
// Frame discipline: every non-tick event carries the frame index it applies
// to and is only accepted while the simulator is AT that frame; a tick
// closes the frame (arrivals buffered by the events drain inside it, in
// ascending user order, exactly where the batch path's internal arrivals
// drain).  This is what makes a recorded event stream replay bit-identically.
#pragma once

#include <cstdint>
#include <string>

namespace wcdma::service {

enum class EventType : std::uint8_t {
  kTick = 0,               // close the current frame (advance the simulator)
  kBurstRequest = 1,       // data user asks for an SCH burst of `bits`
  kRelease = 2,            // cancel a pending (ungranted) burst request
  kHandDown = 3,           // move an idle data user to another carrier
  kMeasurementReport = 4,  // informational; acked, never changes state
};
inline constexpr std::size_t kNumEventTypes = 5;

struct Event {
  EventType type = EventType::kTick;
  std::int64_t frame = 0;  // frame index the event applies to (non-tick)
  int user = -1;           // subject user (ignored by kTick)
  double bits = 0.0;       // kBurstRequest payload, bits
  int carrier = 0;         // kHandDown target carrier

  static Event tick() { return Event{}; }
  static Event burst_request(std::int64_t frame, int user, double bits) {
    return Event{EventType::kBurstRequest, frame, user, bits, 0};
  }
  static Event release(std::int64_t frame, int user) {
    return Event{EventType::kRelease, frame, user, 0.0, 0};
  }
  static Event hand_down(std::int64_t frame, int user, int carrier) {
    return Event{EventType::kHandDown, frame, user, 0.0, carrier};
  }
  static Event measurement_report(std::int64_t frame, int user) {
    return Event{EventType::kMeasurementReport, frame, user, 0.0, 0};
  }
};

enum class ResultCode : std::uint8_t {
  kAck = 0,
  kNackUnknownUser,   // user id outside the population
  kNackNotData,       // burst machinery addressed to a voice user
  kNackDuplicate,     // request while one is already pending/buffered
  kNackBurstActive,   // user is busy (active burst, or queue membership
                      // blocks a carrier move)
  kNackBadPayload,    // non-positive bits / carrier outside the plan
  kNackOutOfOrder,    // event stamped for a frame the service is not at
  kNackNoPending,     // release with nothing to release
  kNackOverload,      // injection queue at its bound; request load-shed
};
inline constexpr std::size_t kNumResultCodes = 9;

struct EventResult {
  ResultCode code = ResultCode::kAck;
  bool ok() const { return code == ResultCode::kAck; }
};

/// One compliance-table row: the static contract of a message type.  The
/// wire `tag` is what the trace format writes as its "e" value; the
/// `needs_*` flags drive both the validator and the trace writer/parser,
/// so payload handling cannot drift between them.
struct EventSpec {
  EventType type;
  const char* name;  // human-readable catalogue name
  const char* tag;   // trace wire tag ("tick", "req", "rel", "hd", "meas")
  bool needs_user;
  bool needs_bits;
  bool needs_carrier;
  bool mutates_state;  // false: informational, acked without side effects
};

/// The full catalogue, indexed by EventType's underlying value.
const EventSpec (&event_catalogue())[kNumEventTypes];
const EventSpec& event_spec(EventType type);
/// Wire-tag lookup; nullptr for tags outside the catalogue.
const EventSpec* event_spec_by_tag(const std::string& tag);

const char* to_string(EventType type);
const char* to_string(ResultCode code);

}  // namespace wcdma::service
