#include "src/service/events.hpp"

#include "src/common/assert.hpp"

namespace wcdma::service {

namespace {

// The compliance table: one row per message type, in EventType order.  The
// round-trip tests walk this table, so adding a message type here without a
// handler (or a handler without a row) fails the suite.
const EventSpec kCatalogue[kNumEventTypes] = {
    {EventType::kTick, "FrameTick", "tick",
     /*needs_user=*/false, /*needs_bits=*/false, /*needs_carrier=*/false,
     /*mutates_state=*/true},
    {EventType::kBurstRequest, "BurstRequest", "req",
     /*needs_user=*/true, /*needs_bits=*/true, /*needs_carrier=*/false,
     /*mutates_state=*/true},
    {EventType::kRelease, "BurstRelease", "rel",
     /*needs_user=*/true, /*needs_bits=*/false, /*needs_carrier=*/false,
     /*mutates_state=*/true},
    {EventType::kHandDown, "CarrierHandDown", "hd",
     /*needs_user=*/true, /*needs_bits=*/false, /*needs_carrier=*/true,
     /*mutates_state=*/true},
    {EventType::kMeasurementReport, "MeasurementReport", "meas",
     /*needs_user=*/true, /*needs_bits=*/false, /*needs_carrier=*/false,
     /*mutates_state=*/false},
};

}  // namespace

const EventSpec (&event_catalogue())[kNumEventTypes] { return kCatalogue; }

const EventSpec& event_spec(EventType type) {
  const auto index = static_cast<std::size_t>(type);
  WCDMA_ASSERT(index < kNumEventTypes);
  const EventSpec& spec = kCatalogue[index];
  WCDMA_ASSERT(spec.type == type && "catalogue rows must stay in enum order");
  return spec;
}

const EventSpec* event_spec_by_tag(const std::string& tag) {
  for (const EventSpec& spec : kCatalogue) {
    if (tag == spec.tag) return &spec;
  }
  return nullptr;
}

const char* to_string(EventType type) { return event_spec(type).name; }

const char* to_string(ResultCode code) {
  switch (code) {
    case ResultCode::kAck: return "ack";
    case ResultCode::kNackUnknownUser: return "nack-unknown-user";
    case ResultCode::kNackNotData: return "nack-not-data";
    case ResultCode::kNackDuplicate: return "nack-duplicate";
    case ResultCode::kNackBurstActive: return "nack-burst-active";
    case ResultCode::kNackBadPayload: return "nack-bad-payload";
    case ResultCode::kNackOutOfOrder: return "nack-out-of-order";
    case ResultCode::kNackNoPending: return "nack-no-pending";
    case ResultCode::kNackOverload: return "nack-overload";
  }
  return "?";
}

}  // namespace wcdma::service
