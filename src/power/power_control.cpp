#include "src/power/power_control.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/serialize.hpp"

namespace wcdma::power {

namespace {

/// Shared inner-loop step: returns the clamped new power for one frame of
/// aggregated +/-step commands.
inline double stepped_power_dbm(const PowerControlConfig& config, double power_dbm,
                                double target_sir_db, double measured_sir_db) {
  const double error = target_sir_db - measured_sir_db;
  const double max_swing = config.step_db * static_cast<double>(config.commands_per_frame);
  const double correction = std::clamp(error, -max_swing, max_swing);
  return std::clamp(power_dbm + correction, config.min_power_dbm,
                    config.max_power_dbm);
}

}  // namespace

ClosedLoopPowerControl::ClosedLoopPowerControl(const PowerControlConfig& config,
                                               double initial_power_dbm)
    : config_(config),
      power_dbm_(initial_power_dbm),
      power_watt_(to_watt(initial_power_dbm)),
      target_sir_db_(config.target_sir_db) {
  WCDMA_ASSERT(config_.step_db > 0.0);
  WCDMA_ASSERT(config_.commands_per_frame >= 1);
  WCDMA_ASSERT(config_.max_power_dbm > config_.min_power_dbm);
}

double ClosedLoopPowerControl::update(double measured_sir_db) {
  power_dbm_ = stepped_power_dbm(config_, power_dbm_, target_sir_db_, measured_sir_db);
  power_watt_ = to_watt(power_dbm_);
  saturated_ = power_dbm_ >= config_.max_power_dbm - 1e-12;
  return power_dbm_;
}

double ClosedLoopPowerControl::update_db(double measured_sir_db) {
  power_dbm_ = stepped_power_dbm(config_, power_dbm_, target_sir_db_, measured_sir_db);
  saturated_ = power_dbm_ >= config_.max_power_dbm - 1e-12;
  return power_dbm_;  // wattage stale until set_power_watt() commits it
}

double ClosedLoopPowerControl::to_watt(double dbm) {
  return std::pow(10.0, (dbm - 30.0) / 10.0);
}

OuterLoopPowerControl::OuterLoopPowerControl(double initial_target_db, double fer_target,
                                             double step_up_db, double min_db, double max_db)
    : target_db_(initial_target_db),
      fer_target_(fer_target),
      step_up_db_(step_up_db),
      step_down_db_(step_up_db * fer_target / (1.0 - fer_target)),
      min_db_(min_db),
      max_db_(max_db) {
  WCDMA_ASSERT(fer_target > 0.0 && fer_target < 1.0);
}

void ClosedLoopPowerControl::save(common::BinaryWriter& w) const {
  w.f64(power_dbm_);
  w.f64(power_watt_);
  w.f64(target_sir_db_);
  w.boolean(saturated_);
}

void ClosedLoopPowerControl::load(common::BinaryReader& r) {
  power_dbm_ = r.f64();
  power_watt_ = r.f64();
  target_sir_db_ = r.f64();
  saturated_ = r.boolean();
}

double OuterLoopPowerControl::on_frame(bool frame_error) {
  // Sawtooth: jump up on error, creep down otherwise; equilibrium FER is
  // step_down / (step_up + step_down) == fer_target.
  target_db_ += frame_error ? step_up_db_ : -step_down_db_;
  target_db_ = std::clamp(target_db_, min_db_, max_db_);
  return target_db_;
}

}  // namespace wcdma::power
