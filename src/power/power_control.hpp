// Closed-loop SIR-based power control ("power control" in the paper's
// dynamic-simulation list).
//
// cdma2000 runs an 800 Hz inner loop with +/-step dB commands; the simulator
// advances per 20 ms frame, so one frame aggregates 16 inner-loop commands.
// ClosedLoopPowerControl models that aggregate: the per-frame correction is
// the SIR error clamped to +/- (16 * step) dB, which reproduces both the
// tracking behaviour at pedestrian speeds and the lag at vehicular speeds.
// An outer loop (frame-error driven target adjustment) is included for
// completeness.
#pragma once

#include "src/common/assert.hpp"

namespace wcdma::common {
class BinaryWriter;
class BinaryReader;
}  // namespace wcdma::common

namespace wcdma::power {

struct PowerControlConfig {
  double target_sir_db = 7.0;     // initial Eb/I0 target
  double step_db = 1.0;           // inner-loop step per command
  int commands_per_frame = 16;    // 800 Hz loop, 20 ms frame
  double min_power_dbm = -50.0;
  double max_power_dbm = 23.0;    // mobile class / per-link forward cap
};

class ClosedLoopPowerControl {
 public:
  explicit ClosedLoopPowerControl(const PowerControlConfig& config = {},
                                  double initial_power_dbm = 0.0);

  /// One frame: adjust transmit power toward the SIR target given the
  /// measured SIR (dB).  Returns the new transmit power (dBm).
  double update(double measured_sir_db);

  /// The fast provider's split update: applies the stepped dBm correction
  /// and the saturation flag, but leaves the cached wattage STALE.  The
  /// caller batches every user's (power_dbm - 30) into a lane, converts it
  /// through the SIMD-dispatched kernels::db_to_linear_lane (the relaxed
  /// fast_exp2 twin of to_watt; relative error < 1e-8), and commits with
  /// set_power_watt() -- see Simulator::step_power_control.  Nothing may
  /// read power_watt() between the two calls.  The default path must keep
  /// update() for bit-identity.
  double update_db(double measured_sir_db);
  /// Commits the batch-converted wattage after update_db().
  void set_power_watt(double watt) { power_watt_ = watt; }

  double power_dbm() const { return power_dbm_; }
  /// Cached dBm -> W conversion; refreshed whenever power_dbm_ moves, so the
  /// hot loops that read it several times per frame pay the pow() once.
  double power_watt() const { return power_watt_; }
  double target_sir_db() const { return target_sir_db_; }
  void set_target_sir_db(double v) { target_sir_db_ = v; }

  /// True when the last update hit the max-power rail (coverage-limited).
  bool saturated() const { return saturated_; }

  /// Checkpoint support: the cached wattage round-trips bit-exactly too, so
  /// a restored loop never re-derives it through pow().
  void save(common::BinaryWriter& w) const;
  void load(common::BinaryReader& r);

 private:
  static double to_watt(double dbm);

  PowerControlConfig config_;
  double power_dbm_;
  double power_watt_;
  double target_sir_db_;
  bool saturated_ = false;
};

/// Outer loop: walks the SIR target to hold a frame-error-rate target
/// (sawtooth/jump algorithm).
class OuterLoopPowerControl {
 public:
  OuterLoopPowerControl(double initial_target_db, double fer_target,
                        double step_up_db = 0.5, double min_db = 3.0, double max_db = 12.0);

  /// Reports one frame outcome; returns the updated SIR target (dB).
  double on_frame(bool frame_error);

  double target_db() const { return target_db_; }

 private:
  double target_db_;
  double fer_target_;
  double step_up_db_;
  double step_down_db_;
  double min_db_, max_db_;
};

}  // namespace wcdma::power
