#include "src/traffic/voice.hpp"

#include "src/common/assert.hpp"
#include "src/common/serialize.hpp"

namespace wcdma::traffic {

VoiceSource::VoiceSource(const VoiceConfig& config, common::Rng rng)
    : config_(config), rng_(rng) {
  WCDMA_ASSERT(config_.mean_on_s > 0.0 && config_.mean_off_s > 0.0);
  // Stationary start: active with probability of the activity factor.
  active_ = rng_.bernoulli(activity_factor());
  time_left_ = rng_.exponential(active_ ? config_.mean_on_s : config_.mean_off_s);
}

bool VoiceSource::step(double dt) {
  double remaining = dt;
  while (remaining >= time_left_) {
    remaining -= time_left_;
    active_ = !active_;
    time_left_ = rng_.exponential(active_ ? config_.mean_on_s : config_.mean_off_s);
  }
  time_left_ -= remaining;
  return active_;
}

void VoiceSource::save(common::BinaryWriter& w) const {
  rng_.save(w);
  w.boolean(active_);
  w.f64(time_left_);
}

void VoiceSource::load(common::BinaryReader& r) {
  rng_.load(r);
  active_ = r.boolean();
  time_left_ = r.f64();
}

}  // namespace wcdma::traffic
