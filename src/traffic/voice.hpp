// On/off Markov voice source.
//
// Section 1 of the paper builds CDMA voice capacity on the statistical
// multiplexing of independent on/off voice users with activity factor p_on
// (E[sum 1(v_n = 1)] -> N * p_on).  Exponential talk-spurt and silence
// durations give exactly that stationary activity.
#pragma once

#include "src/common/rng.hpp"

namespace wcdma::common {
class BinaryWriter;
class BinaryReader;
}  // namespace wcdma::common

namespace wcdma::traffic {

struct VoiceConfig {
  double mean_on_s = 1.0;
  double mean_off_s = 1.5;  // activity factor = 1.0 / (1.0 + 1.5) = 0.4
  double bit_rate = 9600.0; // RS1 vocoder full rate
};

class VoiceSource {
 public:
  VoiceSource(const VoiceConfig& config, common::Rng rng);

  /// Advances dt seconds; returns true if the source is in a talk spurt.
  bool step(double dt);

  bool active() const { return active_; }
  double bit_rate() const { return config_.bit_rate; }

  /// Stationary activity factor implied by the configuration.
  double activity_factor() const {
    return config_.mean_on_s / (config_.mean_on_s + config_.mean_off_s);
  }

  void save(common::BinaryWriter& w) const;
  void load(common::BinaryReader& r);

 private:
  VoiceConfig config_;
  common::Rng rng_;
  bool active_;
  double time_left_;
};

}  // namespace wcdma::traffic
