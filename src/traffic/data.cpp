#include "src/traffic/data.hpp"

#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/serialize.hpp"

namespace wcdma::traffic {

double mean_burst_bytes(const DataTrafficConfig& config) {
  const double a = config.pareto_alpha;
  const double xm = config.min_burst_bytes;
  const double cap = config.max_burst_bytes;
  // lint-allow(DET-FLOAT-EQ): alpha == 1 exactly is the Pareto-mean singularity
  WCDMA_ASSERT(a > 0.0 && a != 1.0 && cap > xm);
  // E[X] for Pareto truncated at cap.
  const double f_cap = 1.0 - std::pow(xm / cap, a);
  const double raw = (a * xm / (a - 1.0)) * (1.0 - std::pow(xm / cap, a - 1.0));
  return raw / f_cap;
}

DataSource::DataSource(const DataTrafficConfig& config, common::Rng rng)
    : config_(config), rng_(rng) {
  WCDMA_ASSERT(config_.pareto_alpha > 1.0);
  next_arrival_s_ = rng_.exponential(config_.mean_reading_s);
}

std::optional<double> DataSource::step(double dt) {
  if (in_flight_) return std::nullopt;
  next_arrival_s_ -= dt;
  if (next_arrival_s_ > 0.0) return std::nullopt;
  in_flight_ = true;
  return rng_.pareto_truncated(config_.pareto_alpha, config_.min_burst_bytes,
                               config_.max_burst_bytes);
}

void DataSource::notify_burst_done() {
  WCDMA_ASSERT(in_flight_);
  in_flight_ = false;
  next_arrival_s_ = rng_.exponential(config_.mean_reading_s);
}

void DataSource::save(common::BinaryWriter& w) const {
  rng_.save(w);
  w.f64(next_arrival_s_);
  w.boolean(in_flight_);
}

void DataSource::load(common::BinaryReader& r) {
  rng_.load(r);
  next_arrival_s_ = r.f64();
  in_flight_ = r.boolean();
}

}  // namespace wcdma::traffic
