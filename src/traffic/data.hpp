// Bursty packet-data source for the high-speed data users.
//
// The paper's data users issue *burst requests* for finite data volumes
// (Q_j, "the burst packet size for the j-th request", Eq. 24).  We model a
// WWW-style session per Kumar & Nanda [2]: heavy-tailed (truncated Pareto)
// burst sizes separated by exponential reading/thinking times.  The source
// only generates arrivals; queueing and transmission live in the MAC/sim.
#pragma once

#include <optional>

#include "src/common/rng.hpp"

namespace wcdma::common {
class BinaryWriter;
class BinaryReader;
}  // namespace wcdma::common

namespace wcdma::traffic {

struct DataTrafficConfig {
  double pareto_alpha = 1.7;       // heavy-tail shape (finite mean)
  double min_burst_bytes = 4096.0; // x_m
  double max_burst_bytes = 2.0e6;  // truncation cap
  double mean_reading_s = 4.0;     // exp thinking time between bursts
};

/// Mean of the truncated Pareto implied by the configuration.
double mean_burst_bytes(const DataTrafficConfig& config);

class DataSource {
 public:
  DataSource(const DataTrafficConfig& config, common::Rng rng);

  /// Advances dt seconds.  Returns the size (bytes) of a burst that arrived
  /// during this interval, or nullopt.  At most one burst per call: callers
  /// step at frame granularity (20 ms) while reading times are seconds, so
  /// multiple arrivals per frame are not meaningful.  The next arrival is
  /// armed only after `notify_burst_done()` — a user does not request a new
  /// page while the previous transfer is still in flight.
  std::optional<double> step(double dt);

  /// Signals that the in-flight burst finished (transfer complete), which
  /// starts the next reading period.
  void notify_burst_done();

  bool waiting_for_completion() const { return in_flight_; }

  void save(common::BinaryWriter& w) const;
  void load(common::BinaryReader& r);

 private:
  DataTrafficConfig config_;
  common::Rng rng_;
  double next_arrival_s_;
  bool in_flight_ = false;
};

}  // namespace wcdma::traffic
