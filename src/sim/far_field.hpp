// Hierarchical far-field interference aggregation for the culling providers.
//
// The culled/fast channel-state providers drop every non-candidate cell from
// a user's link state, which removes its interference contribution entirely
// -- a ~0.10 blocking-probability gap vs the exhaustive reference on the
// 19-cell hotspot, growing with world size (docs/ACCURACY.md).  The paper's
// Eq. 7 admissible-region test budgets against TOTAL received interference,
// so the residual from far cells belongs in the SIR denominators even when
// their per-link fading state is not worth tracking.
//
// FarFieldAggregator restores that residual as ONE additive term per link
// direction, computed from ring-aggregated mean gains instead of per-link
// state:
//
//  * Geometry is bucketed once at init: cell pair (a, k) falls into ring
//    r = floor(d(a, k) / ring_width) around anchor cell a, and each (a, r)
//    bucket stores the mean local-mean gain of its cells -- path loss at the
//    centre distance times the lognormal shadowing mean
//    E[10^(S/10)] = exp((sigma ln10 / 10)^2 / 2), so the aggregate is
//    unbiased against the expectation of the exhaustive far field.  The SAME
//    ring-quantised gain G(a, k) is used both when summing all cells and
//    when subtracting a user's candidates, so the far term is a sum over
//    exactly the non-candidate cells and can never go negative by more than
//    floating-point residue (clamped to zero).
//  * Forward link: A[a][c] = sum_k G(a, k) P_fwd(k, c) over all cells; a
//    user anchored at a with candidate set C sees
//    far_fl = A[a][c] - sum_{k in C} G(a, k) P_fwd(k, c), written into the
//    FrameState's per-user aggregate lane and added to the interference
//    total alongside thermal noise.
//  * Reverse link: per-(anchor, carrier) transmit-power buckets
//    TX[a][c] = sum_{users anchored at a on carrier c} tx_i are maintained
//    INCREMENTALLY -- one O(1) delta per user per frame as transmit powers,
//    carriers, and (at refresh) anchors change -- and folded through the
//    ring gains into a per-station term
//    far_rl[k][c] = sum_a G(a, k) TX[a][c] - (each contributor's candidate
//    cells), added to the station's received power alongside thermal noise.
//
// A user's anchor is its active-set primary, sampled at refresh time; the
// whole aggregate refreshes on the simulator's slow candidate-refresh
// timer (csi.refresh_interval_s), so the per-frame hot path gains exactly
// one add per link row and one bucket delta per user.  Everything here runs
// sequentially on the frame thread: results stay bit-identical for every
// sim.threads value, and no RNG stream is consumed, so paired
// common-random-number sweeps stay paired.
//
// Inactive (csi.far_field.enabled = false, or a non-culling provider) the
// aggregator holds all-zero terms and the simulator's sums are bit-identical
// to the pre-far-field path -- the exhaustive goldens never move.
#pragma once

#include <cstdint>
#include <vector>

#include "src/cell/geometry.hpp"
#include "src/channel/path_loss.hpp"
#include "src/channel/shadowing.hpp"
#include "src/sim/config.hpp"

namespace wcdma::common {
class BinaryWriter;
class BinaryReader;
}  // namespace wcdma::common

namespace wcdma::sim {

class FrameState;

class FarFieldAggregator {
 public:
  /// Precomputes the ring geometry and mean-gain tables.  `provider_culls`
  /// comes from ChannelStateProvider::culls(): an exhaustive world has no
  /// far field, so the aggregator stays inactive (all terms zero) there
  /// regardless of the config knob.
  void init(const cell::HexLayout* layout, const channel::PathLoss* path_loss,
            const channel::ShadowingConfig& shadowing, const CsiConfig& csi,
            std::size_t num_users, int carriers, bool provider_culls);

  bool active() const { return active_; }

  /// O(1) incremental TX-bucket maintenance: `user` now transmits `tx_w` on
  /// `carrier` (anchored wherever the last refresh put it).  Call once per
  /// user per frame after transmit powers settle; no-op while inactive.
  void on_user_tx(std::size_t user, double tx_w, int carrier);

  /// Slow-timer refresh: re-anchors every user at `anchor[user]` (its
  /// active-set primary), recomputes the forward aggregates from
  /// `station_forward_w` ([cell * carriers + c], last frame's TX powers),
  /// subtracts each user's candidate cells (FrameState CSR index), and
  /// writes the per-user forward lane into `state` plus the per-station
  /// reverse terms.  Sequential; call from the frame thread only.
  void refresh(FrameState& state, const std::uint32_t* anchor,
               const double* station_forward_w);

  /// Aggregate far-field power received at station (cell, carrier) on the
  /// reverse link, watts.  Zero while inactive.
  double reverse_far_w(std::size_t cell, int carrier) const {
    return reverse_far_w_[cell * static_cast<std::size_t>(carriers_) +
                          static_cast<std::size_t>(carrier)];
  }

  /// Ring-quantised mean gain G(anchor, cell) (test/debug hook).
  double ring_gain(std::size_t anchor, std::size_t cell) const {
    return gain_of(anchor, cell);
  }
  std::size_t num_rings() const { return num_rings_; }

  /// Cross-checks the incrementally maintained TX buckets against a
  /// rebuild-from-scratch over the applied per-user states: the O(1) deltas
  /// may only drift from the batch sum by floating-point residue.  Test
  /// hook for the bucket-maintenance regression suite.
  bool tx_buckets_match_rebuild(double rel_tol) const;

  /// Serializes the evolved state (TX buckets, applied per-user deltas,
  /// refresh outputs); ring geometry is reproduced by init() on the same
  /// config.  Inactive aggregators round-trip as a single flag.
  void save(common::BinaryWriter& w) const;
  bool load(common::BinaryReader& r);

 private:
  double gain_of(std::size_t anchor, std::size_t cell) const {
    return ring_gain_[anchor * num_rings_ + ring_of_[anchor * num_cells_ + cell]];
  }
  std::size_t bucket_index(std::size_t anchor, int carrier) const {
    return anchor * static_cast<std::size_t>(carriers_) +
           static_cast<std::size_t>(carrier);
  }

  bool active_ = false;
  std::size_t num_cells_ = 0;
  std::size_t num_users_ = 0;
  std::size_t num_rings_ = 0;
  int carriers_ = 1;

  // Ring geometry, fixed at init: ring index per (anchor, cell) pair and
  // the mean local-mean gain per (anchor, ring) bucket.
  std::vector<std::uint16_t> ring_of_;  // [anchor * cells + cell]
  std::vector<double> ring_gain_;       // [anchor * num_rings + ring]

  // Incremental reverse TX buckets plus the per-user state last applied to
  // them (what a rebuild-from-scratch re-sums).
  std::vector<double> tx_sum_;             // [anchor * carriers + carrier]
  std::vector<double> applied_tx_w_;       // [user]
  std::vector<int> applied_carrier_;       // [user]
  std::vector<std::uint32_t> applied_anchor_;  // [user]

  // Refresh outputs / scratch.
  std::vector<double> reverse_far_w_;  // [cell * carriers + carrier]
  std::vector<double> fwd_agg_w_;      // scratch: A[anchor * carriers + carrier]
};

}  // namespace wcdma::sim
