#include "src/sim/channel_state.hpp"

#include <algorithm>

#include "src/common/assert.hpp"

namespace wcdma::sim {

namespace {

/// Reference provider: every cell's link advances every frame.  This is the
/// legacy frame loop verbatim, so the default configuration stays
/// bit-identical across the seam.
class ExhaustiveChannelProvider final : public ChannelStateProvider {
 public:
  void init(const cell::HexLayout* layout, std::size_t num_users) override {
    (void)num_users;
    WCDMA_ASSERT(layout != nullptr);
    layout_ = layout;
    all_cells_.resize(layout_->num_cells());
    for (std::size_t k = 0; k < all_cells_.size(); ++k) all_cells_[k] = k;
  }

  void step_user(std::size_t user, const ChannelUserView& view,
                 double frame_s) override {
    (void)user;
    const double moved = view.mobility->step(frame_s);
    const cell::Point pos = view.mobility->position();
    auto& links = *view.links;
    for (std::size_t k = 0; k < links.size(); ++k) {
      links[k].set_distance(layout_->distance_to_cell(pos, k));
      links[k].step(moved, frame_s);
      (*view.gain_mean)[k] = links[k].mean_gain();
      (*view.gain_inst)[k] = links[k].instantaneous_gain();
    }
  }

  const std::vector<std::size_t>& cells_for(std::size_t) const override {
    return all_cells_;
  }

  std::string name() const override { return "exhaustive"; }

 private:
  const cell::HexLayout* layout_ = nullptr;
  std::vector<std::size_t> all_cells_;
};

/// Neighbour-culling provider: each user maintains a candidate-cell set
/// (active-set members plus cells within the pilot-floor radius), refreshed
/// on a slow timer; only candidate links advance each frame.
class CulledChannelProvider final : public ChannelStateProvider {
 public:
  explicit CulledChannelProvider(const CsiConfig& csi) : csi_(csi) {}

  void init(const cell::HexLayout* layout, std::size_t num_users) override {
    WCDMA_ASSERT(layout != nullptr);
    layout_ = layout;
    radius_m_ = csi_.cull_radius_scale * layout_->cell_radius_m();
    candidates_.assign(num_users, {});
    refresh_left_s_.assign(num_users, 0.0);
  }

  void step_user(std::size_t user, const ChannelUserView& view,
                 double frame_s) override {
    const double moved = view.mobility->step(frame_s);
    const cell::Point pos = view.mobility->position();
    refresh_left_s_[user] -= frame_s;
    if (candidates_[user].empty() || refresh_left_s_[user] <= 0.0) {
      refresh(user, pos, view);
    }
    auto& links = *view.links;
    for (std::size_t k : candidates_[user]) {
      links[k].set_distance(layout_->distance_to_cell(pos, k));
      links[k].step(moved, frame_s);
      (*view.gain_mean)[k] = links[k].mean_gain();
      (*view.gain_inst)[k] = links[k].instantaneous_gain();
    }
  }

  const std::vector<std::size_t>& cells_for(std::size_t user) const override {
    return candidates_[user];
  }

  std::string name() const override { return "culled"; }

 private:
  void refresh(std::size_t user, cell::Point pos, const ChannelUserView& view) {
    refresh_left_s_[user] = csi_.refresh_interval_s;
    std::vector<std::size_t> next;
    for (std::size_t k = 0; k < layout_->num_cells(); ++k) {
      if (layout_->distance_to_cell(pos, k) <= radius_m_) next.push_back(k);
    }
    // Active-set members stay candidates until hand-off drops them, even
    // when the user has moved past the radius (hysteresis consistency).
    for (std::size_t k : view.active_set->members()) {
      const auto it = std::lower_bound(next.begin(), next.end(), k);
      if (it == next.end() || *it != k) next.insert(it, k);
    }
    if (next.empty()) next.push_back(layout_->nearest_cell(pos));
    // Cells leaving the set must stop contributing to interference sums.
    for (std::size_t k : candidates_[user]) {
      if (!std::binary_search(next.begin(), next.end(), k)) {
        (*view.gain_mean)[k] = 0.0;
        (*view.gain_inst)[k] = 0.0;
      }
    }
    candidates_[user] = std::move(next);
  }

  CsiConfig csi_;
  const cell::HexLayout* layout_ = nullptr;
  double radius_m_ = 0.0;
  std::vector<std::vector<std::size_t>> candidates_;
  std::vector<double> refresh_left_s_;
};

struct ProviderEntry {
  const char* name;
  const char* description;
  std::unique_ptr<ChannelStateProvider> (*build)(const CsiConfig& csi);
};

std::unique_ptr<ChannelStateProvider> build_exhaustive(const CsiConfig&) {
  return std::make_unique<ExhaustiveChannelProvider>();
}

std::unique_ptr<ChannelStateProvider> build_culled(const CsiConfig& csi) {
  return std::make_unique<CulledChannelProvider>(csi);
}

const ProviderEntry kProviders[] = {
    {"exhaustive", "every cell every frame (reference, bit-identical legacy path)",
     build_exhaustive},
    {"culled", "active set + pilot-floor radius candidates on a slow refresh timer",
     build_culled},
};

const ProviderEntry* find_provider(const std::string& name) {
  for (const ProviderEntry& entry : kProviders) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> channel_provider_names() {
  std::vector<std::string> names;
  for (const ProviderEntry& entry : kProviders) names.push_back(entry.name);
  return names;
}

bool has_channel_provider(const std::string& name) {
  return find_provider(name) != nullptr;
}

std::unique_ptr<ChannelStateProvider> make_channel_provider(const CsiConfig& csi) {
  const ProviderEntry* entry = find_provider(csi.provider);
  WCDMA_ASSERT(entry != nullptr && "unknown channel-state provider");
  return entry->build(csi);
}

std::string channel_provider_description(const std::string& name) {
  const ProviderEntry* entry = find_provider(name);
  WCDMA_ASSERT(entry != nullptr && "unknown channel-state provider");
  return entry->description;
}

}  // namespace wcdma::sim
