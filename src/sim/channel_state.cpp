#include "src/sim/channel_state.hpp"

#include <algorithm>
#include <atomic>

#include "src/common/assert.hpp"
#include "src/common/serialize.hpp"
#include "src/sim/frame_state.hpp"

namespace wcdma::sim {

namespace {

/// Reference provider: every cell's link advances every frame.  This is the
/// legacy frame loop verbatim, so the default configuration stays
/// bit-identical across the seam.
class ExhaustiveChannelProvider final : public ChannelStateProvider {
 public:
  void init(const cell::HexLayout* layout, std::size_t num_users,
            FrameState* state) override {
    (void)num_users;
    WCDMA_ASSERT(layout != nullptr && state != nullptr);
    state_ = state;
    all_cells_.resize(layout->num_cells());
    for (std::size_t k = 0; k < all_cells_.size(); ++k) all_cells_[k] = k;
  }

  void step_user(std::size_t user, const ChannelUserView& view,
                 double frame_s) override {
    const double moved = view.mobility->step(frame_s);
    state_->step_user_links(user, view.mobility->position(), moved,
                            all_cells_.data(), all_cells_.size());
  }

  const std::vector<std::size_t>& cells_for(std::size_t) const override {
    return all_cells_;
  }

  std::uint64_t candidate_epoch() const override { return 0; }

  std::string name() const override { return "exhaustive"; }

 private:
  FrameState* state_ = nullptr;
  std::vector<std::size_t> all_cells_;
};

/// Neighbour-culling provider: each user maintains a candidate-cell set
/// (active-set members plus cells within the pilot-floor radius), refreshed
/// on a slow timer; only candidate links advance each frame.  With
/// `fast_math` the same candidate/epoch machinery drives the FrameState's
/// relaxed-precision link kernels instead of the bit-identical ones -- the
/// registry exposes that composition as the "fast" provider.
class CulledChannelProvider final : public ChannelStateProvider {
 public:
  CulledChannelProvider(const CsiConfig& csi, bool fast_math)
      : csi_(csi), fast_math_(fast_math) {}

  void init(const cell::HexLayout* layout, std::size_t num_users,
            FrameState* state) override {
    WCDMA_ASSERT(layout != nullptr && state != nullptr);
    layout_ = layout;
    state_ = state;
    state_->set_fast_math(fast_math_);
    radius_m_ = csi_.cull_radius_scale * layout_->cell_radius_m();
    radius_sq_m_ = radius_m_ * radius_m_;
    candidates_.assign(num_users, {});
    refresh_left_s_.assign(num_users, 0.0);
    epoch_.store(1, std::memory_order_relaxed);
  }

  void step_user(std::size_t user, const ChannelUserView& view,
                 double frame_s) override {
    const double moved = view.mobility->step(frame_s);
    const cell::Point pos = view.mobility->position();
    refresh_left_s_[user] -= frame_s;
    if (candidates_[user].empty() || refresh_left_s_[user] <= 0.0) {
      refresh(user, pos, view);
    }
    state_->step_user_links(user, pos, moved, candidates_[user].data(),
                            candidates_[user].size());
  }

  const std::vector<std::size_t>& cells_for(std::size_t user) const override {
    return candidates_[user];
  }

  std::uint64_t candidate_epoch() const override {
    return epoch_.load(std::memory_order_relaxed);
  }

  bool culls() const override { return true; }

  std::string name() const override { return fast_math_ ? "fast" : "culled"; }

  void save_state(common::BinaryWriter& w) const override {
    w.u64(epoch_.load(std::memory_order_relaxed));
    w.vec_f64(refresh_left_s_);
    w.u64(candidates_.size());
    for (const std::vector<std::size_t>& c : candidates_) {
      w.u64(c.size());
      for (std::size_t k : c) w.u32(static_cast<std::uint32_t>(k));
    }
  }

  bool load_state(common::BinaryReader& r) override {
    const std::uint64_t epoch = r.u64();
    std::vector<double> timers;
    r.vec_f64(timers);
    if (!r.ok() || timers.size() != refresh_left_s_.size()) return false;
    if (r.seq(8) != candidates_.size()) return false;
    std::vector<std::vector<std::size_t>> cand(candidates_.size());
    for (std::vector<std::size_t>& c : cand) {
      const std::size_t n = r.seq(4);
      c.reserve(n);
      for (std::size_t i = 0; i < n && r.ok(); ++i) c.push_back(r.u32());
    }
    if (!r.ok()) return false;
    epoch_.store(epoch, std::memory_order_relaxed);
    refresh_left_s_ = std::move(timers);
    candidates_ = std::move(cand);
    return true;
  }

 private:
  void refresh(std::size_t user, cell::Point pos, const ChannelUserView& view) {
    refresh_left_s_[user] = csi_.refresh_interval_s;
    std::vector<std::size_t> next;
    if (fast_math_) {
      // Same radius test in the squared domain: no hypot per (user, cell).
      // (Kept off the reference `culled` path only to preserve its pinned
      // bit-exact trajectories; the comparison is mathematically the same.)
      for (std::size_t k = 0; k < layout_->num_cells(); ++k) {
        if (layout_->distance_sq_to_cell(pos, k) <= radius_sq_m_) next.push_back(k);
      }
    } else {
      for (std::size_t k = 0; k < layout_->num_cells(); ++k) {
        if (layout_->distance_to_cell(pos, k) <= radius_m_) next.push_back(k);
      }
    }
    // Active-set members stay candidates until hand-off drops them, even
    // when the user has moved past the radius (hysteresis consistency).
    for (std::size_t k : view.active_set->members()) {
      const auto it = std::lower_bound(next.begin(), next.end(), k);
      if (it == next.end() || *it != k) next.insert(it, k);
    }
    if (next.empty()) next.push_back(layout_->nearest_cell(pos));
    // Cells leaving the set must stop contributing to interference sums.
    for (std::size_t k : candidates_[user]) {
      if (!std::binary_search(next.begin(), next.end(), k)) {
        state_->clear_gain(user, k);
      }
    }
    if (next != candidates_[user]) epoch_.fetch_add(1, std::memory_order_relaxed);
    candidates_[user] = std::move(next);
  }

  CsiConfig csi_;
  bool fast_math_ = false;
  const cell::HexLayout* layout_ = nullptr;
  FrameState* state_ = nullptr;
  double radius_m_ = 0.0;
  double radius_sq_m_ = 0.0;
  std::vector<std::vector<std::size_t>> candidates_;
  std::vector<double> refresh_left_s_;
  std::atomic<std::uint64_t> epoch_{1};
};

struct ProviderEntry {
  const char* name;
  const char* description;
  std::unique_ptr<ChannelStateProvider> (*build)(const CsiConfig& csi);
};

std::unique_ptr<ChannelStateProvider> build_exhaustive(const CsiConfig&) {
  return std::make_unique<ExhaustiveChannelProvider>();
}

std::unique_ptr<ChannelStateProvider> build_culled(const CsiConfig& csi) {
  return std::make_unique<CulledChannelProvider>(csi, /*fast_math=*/false);
}

std::unique_ptr<ChannelStateProvider> build_fast(const CsiConfig& csi) {
  return std::make_unique<CulledChannelProvider>(csi, /*fast_math=*/true);
}

const ProviderEntry kProviders[] = {
    {"exhaustive", "every cell every frame (reference, bit-identical legacy path)",
     build_exhaustive},
    {"culled",
     "active set + pilot-floor radius candidates on a slow refresh timer; "
     "far cells folded back in as ring aggregates",
     build_culled},
    {"fast",
     "culled candidates + far-field aggregates + relaxed-precision link math "
     "(fused exp2 gains, ziggurat draws); statistically equivalent, not "
     "bit-identical",
     build_fast},
};

const ProviderEntry* find_provider(const std::string& name) {
  for (const ProviderEntry& entry : kProviders) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> channel_provider_names() {
  std::vector<std::string> names;
  for (const ProviderEntry& entry : kProviders) names.push_back(entry.name);
  return names;
}

bool has_channel_provider(const std::string& name) {
  return find_provider(name) != nullptr;
}

std::unique_ptr<ChannelStateProvider> make_channel_provider(const CsiConfig& csi) {
  const ProviderEntry* entry = find_provider(csi.provider);
  WCDMA_ASSERT(entry != nullptr && "unknown channel-state provider");
  return entry->build(csi);
}

std::string channel_provider_description(const std::string& name) {
  const ProviderEntry* entry = find_provider(name);
  WCDMA_ASSERT(entry != nullptr && "unknown channel-state provider");
  return entry->description;
}

}  // namespace wcdma::sim
