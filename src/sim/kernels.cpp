// SIMD implementations of the fast-provider batch kernels.
//
// Every vector body below is a transliteration of the scalar fastmath
// sequence (src/common/fastmath.hpp) into packed IEEE-754 operations: the
// same adds, multiplies, divides, and min/max in the same per-element order.
// Packed double arithmetic is correctly rounded exactly like scalar, so the
// transliteration is element-wise BIT-IDENTICAL -- the contract kernels.hpp
// documents and tests/test_kernels.cpp enforces.  Three things protect it:
//
//  * no FMA anywhere (the AVX2 paths use only mul/add/sub/div/min/max, and
//    this translation unit builds with -ffp-contract=off so the compiler
//    cannot fuse a mul+add behind our back);
//  * floor() is emulated with exact integer conversions (the inputs are
//    clamped to [-1022, 1022], far inside i32 range);
//  * NaN lanes are blended back to the ORIGINAL input bits, matching the
//    scalar early-return that preserves NaN payloads.
//
// The AVX2 bodies are compiled via function-level target attributes, so the
// file needs no -mavx2 flag and the baseline objects stay SSE2-clean; the
// CPUID dispatch in common::active_simd_level() guarantees they only run on
// hosts that have the instructions.
#include "src/sim/kernels.hpp"

#include "src/common/fastmath.hpp"
#include "src/common/simd.hpp"

#if defined(__GNUC__) && defined(__x86_64__)
#define WCDMA_KERNELS_X86 1
#include <immintrin.h>
#else
#define WCDMA_KERNELS_X86 0
#endif

namespace wcdma::sim::kernels {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference bodies (also the tail loops of the vector paths).
// ---------------------------------------------------------------------------

void exp2_scalar(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = common::fast_exp2(x[i]);
}

void log2_scalar(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = common::fast_log2(x[i]);
}

void linear_to_db_scalar(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = common::fast_linear_to_db(x[i]);
}

void db_to_linear_scalar(const double* db, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = common::fast_db_to_linear(db[i]);
}

void shadow_gain_scalar(double rho, double innovation_db, double gain_bias,
                        double half_log2_slope, const double* z, const double* d_sq,
                        double* shadow_db, double* gain, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double s = rho * shadow_db[i] + innovation_db * z[i];
    shadow_db[i] = s;
    gain[i] = common::fast_exp2(common::kExp2PerDb * s + gain_bias -
                                half_log2_slope * common::fast_log2(d_sq[i]));
  }
}

#if WCDMA_KERNELS_X86

// ---------------------------------------------------------------------------
// SSE2 (x86-64 baseline), width 2.
// ---------------------------------------------------------------------------

/// Packed fast_exp2: clamp, round-to-nearest split, degree-7 Taylor,
/// exponent bit stuffing.  NaN lanes return the original input bits.
inline __m128d exp2_pd_sse2(__m128d x) {
  const __m128d nan_mask = _mm_cmpunord_pd(x, x);
  // Clamp to [-1022, 1022] (min/max pass NaN through from the second
  // operand, so NaN lanes stay NaN into the arithmetic below; their junk
  // results are blended away at the end).
  __m128d xc = _mm_min_pd(_mm_set1_pd(1022.0), _mm_max_pd(_mm_set1_pd(-1022.0), x));
  // n = floor(xc + 0.5), emulated exactly: truncate (exact for |y| < 2^31),
  // then subtract 1 where truncation rounded a negative y up.
  const __m128d y = _mm_add_pd(xc, _mm_set1_pd(0.5));
  const __m128d t = _mm_cvtepi32_pd(_mm_cvttpd_epi32(y));
  const __m128d n = _mm_sub_pd(t, _mm_and_pd(_mm_cmplt_pd(y, t), _mm_set1_pd(1.0)));
  const __m128d z = _mm_mul_pd(_mm_sub_pd(xc, n), _mm_set1_pd(0.69314718055994531));
  __m128d p = _mm_set1_pd(1.0 / 5040.0);
  p = _mm_add_pd(_mm_set1_pd(1.0 / 720.0), _mm_mul_pd(z, p));
  p = _mm_add_pd(_mm_set1_pd(1.0 / 120.0), _mm_mul_pd(z, p));
  p = _mm_add_pd(_mm_set1_pd(1.0 / 24.0), _mm_mul_pd(z, p));
  p = _mm_add_pd(_mm_set1_pd(1.0 / 6.0), _mm_mul_pd(z, p));
  p = _mm_add_pd(_mm_set1_pd(0.5), _mm_mul_pd(z, p));
  p = _mm_add_pd(_mm_set1_pd(1.0), _mm_mul_pd(z, p));
  p = _mm_add_pd(_mm_set1_pd(1.0), _mm_mul_pd(z, p));
  // 2^n via the exponent field: n + 1023 is in [1, 2045], so the i32
  // conversion and the zero-extending unpack below are exact.
  const __m128i ni = _mm_cvttpd_epi32(n);  // n is integral: trunc == value
  const __m128i biased = _mm_add_epi32(ni, _mm_set1_epi32(1023));
  const __m128i wide = _mm_unpacklo_epi32(biased, _mm_setzero_si128());
  const __m128d pow2 = _mm_castsi128_pd(_mm_slli_epi64(wide, 52));
  const __m128d r = _mm_mul_pd(p, pow2);
  return _mm_or_pd(_mm_andnot_pd(nan_mask, r), _mm_and_pd(nan_mask, x));
}

/// Packed fast_log2 for finite x > 0 (subnormals renormalized, as in the
/// fixed scalar kernel).
inline __m128d log2_pd_sse2(__m128d x) {
  // Subnormal rescue: for positive finite x, (exponent field == 0) is
  // exactly (x < DBL_MIN).  The 2^54 scale is exact.
  const __m128d sub_mask = _mm_cmplt_pd(x, _mm_set1_pd(0x1p-1022));
  const __m128d x_scaled = _mm_mul_pd(x, _mm_set1_pd(0x1p54));
  x = _mm_or_pd(_mm_andnot_pd(sub_mask, x), _mm_and_pd(sub_mask, x_scaled));
  const __m128d e_extra = _mm_and_pd(sub_mask, _mm_set1_pd(54.0));
  const __m128i bits = _mm_castpd_si128(x);
  // Exponent field -> double.  The field fits 11 bits, so each 64-bit lane's
  // low dword carries it all and the shuffle + i32 conversion are exact.
  const __m128i field =
      _mm_and_si128(_mm_srli_epi64(bits, 52), _mm_set1_epi64x(0x7ff));
  const __m128d field_d =
      _mm_cvtepi32_pd(_mm_shuffle_epi32(field, _MM_SHUFFLE(3, 3, 2, 0)));
  __m128d e = _mm_sub_pd(_mm_sub_pd(field_d, _mm_set1_pd(1023.0)), e_extra);
  __m128d m = _mm_castsi128_pd(
      _mm_or_si128(_mm_and_si128(bits, _mm_set1_epi64x(0x000fffffffffffffLL)),
                   _mm_set1_epi64x(0x3ff0000000000000LL)));  // [1, 2)
  // Re-centre on 1: m in [sqrt(1/2), sqrt(2)).
  const __m128d recentre = _mm_cmpgt_pd(m, _mm_set1_pd(1.4142135623730951));
  const __m128d m_half = _mm_mul_pd(m, _mm_set1_pd(0.5));
  m = _mm_or_pd(_mm_andnot_pd(recentre, m), _mm_and_pd(recentre, m_half));
  e = _mm_add_pd(e, _mm_and_pd(recentre, _mm_set1_pd(1.0)));
  const __m128d one = _mm_set1_pd(1.0);
  const __m128d t = _mm_div_pd(_mm_sub_pd(m, one), _mm_add_pd(m, one));
  const __m128d t2 = _mm_mul_pd(t, t);
  // Same series shape as scalar: the innermost term is a DIVISION (t2/11).
  __m128d s = _mm_add_pd(_mm_set1_pd(1.0 / 9.0), _mm_div_pd(t2, _mm_set1_pd(11.0)));
  s = _mm_add_pd(_mm_set1_pd(1.0 / 7.0), _mm_mul_pd(t2, s));
  s = _mm_add_pd(_mm_set1_pd(1.0 / 5.0), _mm_mul_pd(t2, s));
  s = _mm_add_pd(_mm_set1_pd(1.0 / 3.0), _mm_mul_pd(t2, s));
  s = _mm_add_pd(one, _mm_mul_pd(t2, s));
  const __m128d ln_m = _mm_mul_pd(_mm_mul_pd(_mm_set1_pd(2.0), t), s);
  return _mm_add_pd(e, _mm_mul_pd(ln_m, _mm_set1_pd(1.4426950408889634)));
}

void exp2_sse2(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i, exp2_pd_sse2(_mm_loadu_pd(x + i)));
  }
  exp2_scalar(x + i, out + i, n - i);
}

void log2_sse2(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i, log2_pd_sse2(_mm_loadu_pd(x + i)));
  }
  log2_scalar(x + i, out + i, n - i);
}

void linear_to_db_sse2(const double* x, double* out, std::size_t n) {
  const __m128d scale = _mm_set1_pd(3.0102999566398120);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i, _mm_mul_pd(log2_pd_sse2(_mm_loadu_pd(x + i)), scale));
  }
  linear_to_db_scalar(x + i, out + i, n - i);
}

void db_to_linear_sse2(const double* db, double* out, std::size_t n) {
  const __m128d scale = _mm_set1_pd(common::kExp2PerDb);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i, exp2_pd_sse2(_mm_mul_pd(_mm_loadu_pd(db + i), scale)));
  }
  db_to_linear_scalar(db + i, out + i, n - i);
}

void shadow_gain_sse2(double rho, double innovation_db, double gain_bias,
                      double half_log2_slope, const double* z, const double* d_sq,
                      double* shadow_db, double* gain, std::size_t n) {
  const __m128d rho_v = _mm_set1_pd(rho);
  const __m128d inn_v = _mm_set1_pd(innovation_db);
  const __m128d bias_v = _mm_set1_pd(gain_bias);
  const __m128d half_v = _mm_set1_pd(half_log2_slope);
  const __m128d k_v = _mm_set1_pd(common::kExp2PerDb);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d s = _mm_add_pd(_mm_mul_pd(rho_v, _mm_loadu_pd(shadow_db + i)),
                                 _mm_mul_pd(inn_v, _mm_loadu_pd(z + i)));
    _mm_storeu_pd(shadow_db + i, s);
    const __m128d loss =
        _mm_mul_pd(half_v, log2_pd_sse2(_mm_loadu_pd(d_sq + i)));
    const __m128d arg =
        _mm_sub_pd(_mm_add_pd(_mm_mul_pd(k_v, s), bias_v), loss);
    _mm_storeu_pd(gain + i, exp2_pd_sse2(arg));
  }
  shadow_gain_scalar(rho, innovation_db, gain_bias, half_log2_slope, z + i,
                     d_sq + i, shadow_db + i, gain + i, n - i);
}

// ---------------------------------------------------------------------------
// AVX2, width 4 (function-level target attribute; dispatched at runtime).
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256d exp2_pd_avx2(__m256d x) {
  const __m256d nan_mask = _mm256_cmp_pd(x, x, _CMP_UNORD_Q);
  __m256d xc = _mm256_min_pd(_mm256_set1_pd(1022.0),
                             _mm256_max_pd(_mm256_set1_pd(-1022.0), x));
  const __m256d y = _mm256_add_pd(xc, _mm256_set1_pd(0.5));
  const __m256d t = _mm256_cvtepi32_pd(_mm256_cvttpd_epi32(y));
  const __m256d n = _mm256_sub_pd(
      t, _mm256_and_pd(_mm256_cmp_pd(y, t, _CMP_LT_OQ), _mm256_set1_pd(1.0)));
  const __m256d z =
      _mm256_mul_pd(_mm256_sub_pd(xc, n), _mm256_set1_pd(0.69314718055994531));
  __m256d p = _mm256_set1_pd(1.0 / 5040.0);
  p = _mm256_add_pd(_mm256_set1_pd(1.0 / 720.0), _mm256_mul_pd(z, p));
  p = _mm256_add_pd(_mm256_set1_pd(1.0 / 120.0), _mm256_mul_pd(z, p));
  p = _mm256_add_pd(_mm256_set1_pd(1.0 / 24.0), _mm256_mul_pd(z, p));
  p = _mm256_add_pd(_mm256_set1_pd(1.0 / 6.0), _mm256_mul_pd(z, p));
  p = _mm256_add_pd(_mm256_set1_pd(0.5), _mm256_mul_pd(z, p));
  p = _mm256_add_pd(_mm256_set1_pd(1.0), _mm256_mul_pd(z, p));
  p = _mm256_add_pd(_mm256_set1_pd(1.0), _mm256_mul_pd(z, p));
  const __m128i ni = _mm256_cvttpd_epi32(n);
  const __m128i biased = _mm_add_epi32(ni, _mm_set1_epi32(1023));
  const __m256i wide = _mm256_cvtepu32_epi64(biased);
  const __m256d pow2 = _mm256_castsi256_pd(_mm256_slli_epi64(wide, 52));
  const __m256d r = _mm256_mul_pd(p, pow2);
  return _mm256_blendv_pd(r, x, nan_mask);
}

__attribute__((target("avx2"))) inline __m256d log2_pd_avx2(__m256d x) {
  const __m256d sub_mask = _mm256_cmp_pd(x, _mm256_set1_pd(0x1p-1022), _CMP_LT_OQ);
  const __m256d x_scaled = _mm256_mul_pd(x, _mm256_set1_pd(0x1p54));
  x = _mm256_blendv_pd(x, x_scaled, sub_mask);
  const __m256d e_extra = _mm256_and_pd(sub_mask, _mm256_set1_pd(54.0));
  const __m256i bits = _mm256_castpd_si256(x);
  const __m256i field =
      _mm256_and_si256(_mm256_srli_epi64(bits, 52), _mm256_set1_epi64x(0x7ff));
  // Gather each lane's low dword into the bottom 128 bits, then convert.
  const __m256i pick = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m128i field32 =
      _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(field, pick));
  __m256d e = _mm256_sub_pd(
      _mm256_sub_pd(_mm256_cvtepi32_pd(field32), _mm256_set1_pd(1023.0)), e_extra);
  __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
      _mm256_and_si256(bits, _mm256_set1_epi64x(0x000fffffffffffffLL)),
      _mm256_set1_epi64x(0x3ff0000000000000LL)));
  const __m256d recentre =
      _mm256_cmp_pd(m, _mm256_set1_pd(1.4142135623730951), _CMP_GT_OQ);
  m = _mm256_blendv_pd(m, _mm256_mul_pd(m, _mm256_set1_pd(0.5)), recentre);
  e = _mm256_add_pd(e, _mm256_and_pd(recentre, _mm256_set1_pd(1.0)));
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d t = _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
  const __m256d t2 = _mm256_mul_pd(t, t);
  __m256d s = _mm256_add_pd(_mm256_set1_pd(1.0 / 9.0),
                            _mm256_div_pd(t2, _mm256_set1_pd(11.0)));
  s = _mm256_add_pd(_mm256_set1_pd(1.0 / 7.0), _mm256_mul_pd(t2, s));
  s = _mm256_add_pd(_mm256_set1_pd(1.0 / 5.0), _mm256_mul_pd(t2, s));
  s = _mm256_add_pd(_mm256_set1_pd(1.0 / 3.0), _mm256_mul_pd(t2, s));
  s = _mm256_add_pd(one, _mm256_mul_pd(t2, s));
  const __m256d ln_m = _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(2.0), t), s);
  return _mm256_add_pd(e, _mm256_mul_pd(ln_m, _mm256_set1_pd(1.4426950408889634)));
}

__attribute__((target("avx2"))) void exp2_avx2(const double* x, double* out,
                                               std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, exp2_pd_avx2(_mm256_loadu_pd(x + i)));
  }
  exp2_scalar(x + i, out + i, n - i);
}

__attribute__((target("avx2"))) void log2_avx2(const double* x, double* out,
                                               std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, log2_pd_avx2(_mm256_loadu_pd(x + i)));
  }
  log2_scalar(x + i, out + i, n - i);
}

__attribute__((target("avx2"))) void linear_to_db_avx2(const double* x, double* out,
                                                       std::size_t n) {
  const __m256d scale = _mm256_set1_pd(3.0102999566398120);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_mul_pd(log2_pd_avx2(_mm256_loadu_pd(x + i)), scale));
  }
  linear_to_db_scalar(x + i, out + i, n - i);
}

__attribute__((target("avx2"))) void db_to_linear_avx2(const double* db, double* out,
                                                       std::size_t n) {
  const __m256d scale = _mm256_set1_pd(common::kExp2PerDb);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     exp2_pd_avx2(_mm256_mul_pd(_mm256_loadu_pd(db + i), scale)));
  }
  db_to_linear_scalar(db + i, out + i, n - i);
}

__attribute__((target("avx2"))) void shadow_gain_avx2(
    double rho, double innovation_db, double gain_bias, double half_log2_slope,
    const double* z, const double* d_sq, double* shadow_db, double* gain,
    std::size_t n) {
  const __m256d rho_v = _mm256_set1_pd(rho);
  const __m256d inn_v = _mm256_set1_pd(innovation_db);
  const __m256d bias_v = _mm256_set1_pd(gain_bias);
  const __m256d half_v = _mm256_set1_pd(half_log2_slope);
  const __m256d k_v = _mm256_set1_pd(common::kExp2PerDb);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d s =
        _mm256_add_pd(_mm256_mul_pd(rho_v, _mm256_loadu_pd(shadow_db + i)),
                      _mm256_mul_pd(inn_v, _mm256_loadu_pd(z + i)));
    _mm256_storeu_pd(shadow_db + i, s);
    const __m256d loss =
        _mm256_mul_pd(half_v, log2_pd_avx2(_mm256_loadu_pd(d_sq + i)));
    const __m256d arg =
        _mm256_sub_pd(_mm256_add_pd(_mm256_mul_pd(k_v, s), bias_v), loss);
    _mm256_storeu_pd(gain + i, exp2_pd_avx2(arg));
  }
  shadow_gain_scalar(rho, innovation_db, gain_bias, half_log2_slope, z + i,
                     d_sq + i, shadow_db + i, gain + i, n - i);
}

#endif  // WCDMA_KERNELS_X86

}  // namespace

void exp2_lane(const double* x, double* out, std::size_t n) {
  const common::SimdLevel level = common::active_simd_level();
#if WCDMA_KERNELS_X86
  if (level == common::SimdLevel::kAvx2) return exp2_avx2(x, out, n);
  if (level == common::SimdLevel::kSse2) return exp2_sse2(x, out, n);
#endif
  (void)level;
  exp2_scalar(x, out, n);
}

void log2_lane(const double* x, double* out, std::size_t n) {
  const common::SimdLevel level = common::active_simd_level();
#if WCDMA_KERNELS_X86
  if (level == common::SimdLevel::kAvx2) return log2_avx2(x, out, n);
  if (level == common::SimdLevel::kSse2) return log2_sse2(x, out, n);
#endif
  (void)level;
  log2_scalar(x, out, n);
}

void linear_to_db_lane(const double* x, double* out, std::size_t n) {
  const common::SimdLevel level = common::active_simd_level();
#if WCDMA_KERNELS_X86
  if (level == common::SimdLevel::kAvx2) return linear_to_db_avx2(x, out, n);
  if (level == common::SimdLevel::kSse2) return linear_to_db_sse2(x, out, n);
#endif
  (void)level;
  linear_to_db_scalar(x, out, n);
}

void db_to_linear_lane(const double* db, double* out, std::size_t n) {
  const common::SimdLevel level = common::active_simd_level();
#if WCDMA_KERNELS_X86
  if (level == common::SimdLevel::kAvx2) return db_to_linear_avx2(db, out, n);
  if (level == common::SimdLevel::kSse2) return db_to_linear_sse2(db, out, n);
#endif
  (void)level;
  db_to_linear_scalar(db, out, n);
}

void shadow_gain_lane(double rho, double innovation_db, double gain_bias,
                      double half_log2_slope, const double* z, const double* d_sq,
                      double* shadow_db, double* gain, std::size_t n) {
  const common::SimdLevel level = common::active_simd_level();
#if WCDMA_KERNELS_X86
  if (level == common::SimdLevel::kAvx2) {
    return shadow_gain_avx2(rho, innovation_db, gain_bias, half_log2_slope, z,
                            d_sq, shadow_db, gain, n);
  }
  if (level == common::SimdLevel::kSse2) {
    return shadow_gain_sse2(rho, innovation_db, gain_bias, half_log2_slope, z,
                            d_sq, shadow_db, gain, n);
  }
#endif
  (void)level;
  shadow_gain_scalar(rho, innovation_db, gain_bias, half_log2_slope, z, d_sq,
                     shadow_db, gain, n);
}

}  // namespace wcdma::sim::kernels
