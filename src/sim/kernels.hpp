// Runtime-dispatched SIMD batch kernels for the fast CSI hot path.
//
// Three loops dominate the fast provider's frame budget (ROADMAP item 4):
// the fused exp2 gain lane in sim::FrameState::step_user_links_fast, the
// ziggurat batch fill (vectorized in src/common/ziggurat.cpp against the
// same dispatch), and the power-control dB conversions in
// Simulator::step_power_control.  This module gives each a lane API that
// dispatches once per call on common::active_simd_level() to a scalar,
// SSE2, or AVX2 implementation.
//
// THE CONTRACT -- element-wise identity.  Every vector implementation
// performs the exact IEEE-754 operation sequence of the scalar fastmath
// kernels (src/common/fastmath.hpp), in the same order, per element:
// add/sub/mul/div/min/max are correctly rounded and identical scalar or
// packed, the kernels use no FMA (and their translation units compile with
// -ffp-contract=off so the compiler cannot contract one in), and no
// reduction or reassociation crosses elements.  Consequence: a fast-provider
// trajectory is BYTE-IDENTICAL at every dispatch level -- the statcheck
// certification of `fast` transfers to sse2/avx2 by identity, and
// tests/test_kernels.cpp pins both the per-kernel agreement and whole-run
// metric equality.  The default/exhaustive path never calls these kernels.
//
// Input domains are the fastmath ones: exp2 lanes accept anything (clamped
// to [-1022, 1022], NaN propagates); log2 lanes require finite x > 0
// (subnormals included, per the PR 10 fast_log2 fix).
#pragma once

#include <cstddef>

namespace wcdma::sim::kernels {

/// out[i] = common::fast_exp2(x[i]).  In-place (out == x) allowed.
void exp2_lane(const double* x, double* out, std::size_t n);

/// out[i] = common::fast_log2(x[i]); x[i] finite > 0.  In-place allowed.
void log2_lane(const double* x, double* out, std::size_t n);

/// out[i] = common::fast_linear_to_db(x[i]); x[i] finite > 0.  In-place
/// allowed.
void linear_to_db_lane(const double* x, double* out, std::size_t n);

/// out[i] = common::fast_db_to_linear(db[i]).  In-place allowed.
void db_to_linear_lane(const double* db, double* out, std::size_t n);

/// The fused shadowing + path-loss gain update of
/// FrameState::step_user_links_fast, per element:
///
///   shadow_db[i] = rho * shadow_db[i] + innovation_db * z[i]
///   gain[i]      = fast_exp2(kExp2PerDb * shadow_db[i] + gain_bias
///                            - half_log2_slope * fast_log2(d_sq[i]))
///
/// z is the ziggurat innovation lane, d_sq the (near-field clamped) squared
/// distances, half_log2_slope == (B/10) * 0.5 folded by the caller (exact:
/// a power-of-two scale).  shadow_db is read-modify-write; gain is
/// write-only and must not alias the inputs.
void shadow_gain_lane(double rho, double innovation_db, double gain_bias,
                      double half_log2_slope, const double* z, const double* d_sq,
                      double* shadow_db, double* gain, std::size_t n);

}  // namespace wcdma::sim::kernels
