#include "src/sim/monte_carlo.hpp"

#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sim/simulator.hpp"

namespace wcdma::sim {

MonteCarloResult run_replications(const SystemConfig& config, std::size_t replications,
                                  std::size_t threads) {
  if (threads == 0) threads = common::default_thread_count();
  const std::vector<std::uint64_t> seeds =
      common::derive_seeds(config.seed, replications);

  std::vector<SimMetrics> per_rep(replications);
  common::parallel_for_index(replications, threads, [&](std::size_t i) {
    SystemConfig rep_config = config;
    rep_config.seed = seeds[i];
    Simulator simulator(rep_config);
    per_rep[i] = simulator.run();
  });

  MonteCarloResult result;
  result.replication_mean_delay_s.reserve(replications);
  for (const auto& m : per_rep) {
    result.merged.merge(m);
    result.replication_mean_delay_s.push_back(m.mean_delay_s());
  }
  return result;
}

}  // namespace wcdma::sim
