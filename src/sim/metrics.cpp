#include "src/sim/metrics.hpp"

#include "src/common/assert.hpp"

namespace wcdma::sim {

void SimMetrics::merge(const SimMetrics& other) {
  burst_delay_s.merge(other.burst_delay_s);
  delay_hist.merge(other.delay_hist);
  queue_delay_s.merge(other.queue_delay_s);
  granted_sgr.merge(other.granted_sgr);
  data_bits_delivered += other.data_bits_delivered;
  observed_s += other.observed_s;
  WCDMA_ASSERT(delay_by_distance.size() == other.delay_by_distance.size());
  for (std::size_t i = 0; i < delay_by_distance.size(); ++i) {
    delay_by_distance[i].merge(other.delay_by_distance[i]);
  }
  sch_frames += other.sch_frames;
  sch_outage_frames += other.sch_outage_frames;
  ber_violation_frames += other.ber_violation_frames;
  WCDMA_ASSERT(mode_frames.size() == other.mode_frames.size());
  for (std::size_t i = 0; i < mode_frames.size(); ++i) {
    mode_frames[i] += other.mode_frames[i];
  }
  requests_seen += other.requests_seen;
  grants += other.grants;
  reject_rounds += other.reject_rounds;
  carrier_hand_downs += other.carrier_hand_downs;
  pending_queue_len.merge(other.pending_queue_len);
  forward_load_fraction.merge(other.forward_load_fraction);
  reverse_rise_db.merge(other.reverse_rise_db);
  bs_power_saturations += other.bs_power_saturations;
  mobile_power_saturations += other.mobile_power_saturations;
  voice_sir_error_db.merge(other.voice_sir_error_db);
}

}  // namespace wcdma::sim
