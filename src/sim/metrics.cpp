#include "src/sim/metrics.hpp"

#include "src/common/assert.hpp"
#include "src/common/serialize.hpp"

namespace wcdma::sim {

void SimMetrics::merge(const SimMetrics& other) {
  burst_delay_s.merge(other.burst_delay_s);
  delay_hist.merge(other.delay_hist);
  queue_delay_s.merge(other.queue_delay_s);
  granted_sgr.merge(other.granted_sgr);
  data_bits_delivered += other.data_bits_delivered;
  observed_s += other.observed_s;
  WCDMA_ASSERT(delay_by_distance.size() == other.delay_by_distance.size());
  for (std::size_t i = 0; i < delay_by_distance.size(); ++i) {
    delay_by_distance[i].merge(other.delay_by_distance[i]);
  }
  sch_frames += other.sch_frames;
  sch_outage_frames += other.sch_outage_frames;
  ber_violation_frames += other.ber_violation_frames;
  WCDMA_ASSERT(mode_frames.size() == other.mode_frames.size());
  for (std::size_t i = 0; i < mode_frames.size(); ++i) {
    mode_frames[i] += other.mode_frames[i];
  }
  requests_seen += other.requests_seen;
  grants += other.grants;
  reject_rounds += other.reject_rounds;
  carrier_hand_downs += other.carrier_hand_downs;
  pending_queue_len.merge(other.pending_queue_len);
  forward_load_fraction.merge(other.forward_load_fraction);
  reverse_rise_db.merge(other.reverse_rise_db);
  bs_power_saturations += other.bs_power_saturations;
  mobile_power_saturations += other.mobile_power_saturations;
  voice_sir_error_db.merge(other.voice_sir_error_db);
  overload_sheds += other.overload_sheds;
}

void SimMetrics::save(common::BinaryWriter& w) const {
  burst_delay_s.save(w);
  delay_hist.save(w);
  queue_delay_s.save(w);
  granted_sgr.save(w);
  w.f64(data_bits_delivered);
  w.f64(observed_s);
  w.u64(delay_by_distance.size());
  for (const common::StreamingMoments& m : delay_by_distance) m.save(w);
  w.i64(sch_frames);
  w.i64(sch_outage_frames);
  w.i64(ber_violation_frames);
  w.vec_i64(mode_frames);
  w.i64(requests_seen);
  w.i64(grants);
  w.i64(reject_rounds);
  w.i64(carrier_hand_downs);
  pending_queue_len.save(w);
  forward_load_fraction.save(w);
  reverse_rise_db.save(w);
  w.i64(bs_power_saturations);
  w.i64(mobile_power_saturations);
  voice_sir_error_db.save(w);
  w.i64(overload_sheds);
}

bool SimMetrics::load(common::BinaryReader& r) {
  burst_delay_s.load(r);
  delay_hist.load(r);
  queue_delay_s.load(r);
  granted_sgr.load(r);
  data_bits_delivered = r.f64();
  observed_s = r.f64();
  if (r.seq(8) != delay_by_distance.size()) return false;
  for (common::StreamingMoments& m : delay_by_distance) m.load(r);
  sch_frames = r.i64();
  sch_outage_frames = r.i64();
  ber_violation_frames = r.i64();
  std::vector<std::int64_t> modes;
  r.vec_i64(modes);
  if (!r.ok() || modes.size() != mode_frames.size()) return false;
  mode_frames = std::move(modes);
  requests_seen = r.i64();
  grants = r.i64();
  reject_rounds = r.i64();
  carrier_hand_downs = r.i64();
  pending_queue_len.load(r);
  forward_load_fraction.load(r);
  reverse_rise_db.load(r);
  bs_power_saturations = r.i64();
  mobile_power_saturations = r.i64();
  voice_sir_error_db.load(r);
  overload_sheds = r.i64();
  return r.ok();
}

}  // namespace wcdma::sim
