// Structure-of-arrays per-link channel state for the simulator hot path.
//
// The legacy frame loop kept each user's link state behind two layers of
// indirection (Simulator::User -> std::vector<channel::Link> -> heap
// FadingProcess) and recomputed the composite gain twice per link per frame.
// FrameState hoists all of it into flat, simulator-owned buffers indexed
// [user * num_cells + cell], so the measurement loops stream linearly:
//
//  * shadowing: per-link (rng, value_db) pairs stepped once per frame for
//    every candidate cell, with the AR(1) correlation pair hoisted to one
//    exp/sqrt per *user* (all links of a mobile move together);
//  * fast fading: per-link AR(1)/Jakes state advanced LAZILY -- the stream
//    is replayed up to the current frame only when a link's fading factor
//    is observed (the serving leg of an active burst).  Bit-identical to
//    stepping every frame because each link owns its RNG stream and only
//    observed values enter the metrics; candidate links that are never
//    observed simply never consume their draws.
//  * local-mean gains and forward pilots: flat double buffers shared by the
//    interference, pilot, and rise loops.
//
// Candidate sets come from the ChannelStateProvider as per-user cell lists;
// FrameState folds them into a CSR-style (offsets, cells) index plus its
// transpose (cell -> users), rebuilt only when the provider's candidate
// epoch moves.  The transpose is what turns the reverse-link rise update
// from a scatter (racy under sharding) into a deterministic per-station
// gather in ascending user order.
//
// RNG stream discipline matches the legacy per-user Link construction
// exactly: link (user, cell) forks user_rng.fork(100 + cell), shadowing
// consumes fork(1), fading fork(2).  Golden tests pin the equivalence.
#pragma once

#include <cstdint>
#include <vector>

#include "src/cell/geometry.hpp"
#include "src/channel/channel.hpp"
#include "src/channel/fading.hpp"
#include "src/channel/path_loss.hpp"
#include "src/channel/shadowing.hpp"
#include "src/common/assert.hpp"
#include "src/common/rng.hpp"
#include "src/common/ziggurat.hpp"

namespace wcdma::sim {

class ChannelStateProvider;

class FrameState {
 public:
  void init(const cell::HexLayout* layout, const channel::PathLoss* path_loss,
            const channel::ShadowingConfig& shadowing, channel::FadingKind fading,
            double frame_s, int jakes_paths, std::size_t num_users);

  /// Builds one user's per-cell link state, consuming `user_rng` streams
  /// exactly as the legacy per-user std::vector<channel::Link> did.
  void init_user(std::size_t user, const common::Rng& user_rng, double doppler_hz);

  /// Switches link stepping and AR(1) fading replay onto the relaxed-
  /// precision kernels (common/fastmath.hpp + ziggurat draws): the fused
  /// dB->linear composite gain replaces the per-link pow/log10 pair, and
  /// shadowing/fading innovations come from the ziggurat instead of polar
  /// Box-Muller.  Same per-link RNG streams, same lazy-replay contract,
  /// same candidate semantics -- but NOT bit-identical to the default path,
  /// so only the `fast` channel-state provider may flip this.  Must be
  /// called after init() (it folds the path-loss model into affine
  /// log-domain constants).  Jakes fading keeps the reference generator.
  void set_fast_math(bool on);
  bool fast_math() const { return fast_math_; }

  /// Starts a new frame (advances the lazy-fading clock).  Call once per
  /// simulator frame before stepping any user.
  void advance_frame() { ++frame_; }

  /// Steps shadowing and refreshes local-mean gains for the user's
  /// candidate `cells` after the mobile moved `moved_m` to `pos`.  Safe to
  /// call concurrently for distinct users.
  void step_user_links(std::size_t user, cell::Point pos, double moved_m,
                       const std::size_t* cells, std::size_t count);

  /// Fast-fading power factor of link (user, cell) at the current frame;
  /// replays the link's fading stream up to the frame clock on demand.
  double fading_factor(std::size_t user, std::size_t cell);

  double gain_mean(std::size_t user, std::size_t cell) const {
    return gain_mean_[user * num_cells_ + cell];
  }
  const double* gain_mean_row(std::size_t user) const {
    return &gain_mean_[user * num_cells_];
  }
  double pilot_fl(std::size_t user, std::size_t cell) const {
    return pilot_fl_[user * num_cells_ + cell];
  }
  double* pilot_fl_row(std::size_t user) { return &pilot_fl_[user * num_cells_]; }

  // --- Far-field aggregate lane (src/sim/far_field.hpp) -------------------
  /// Ring-aggregated forward interference from the user's non-candidate
  /// cells, watts; added to the interference total alongside thermal noise.
  /// Zero unless the FarFieldAggregator is active and refreshed it, so the
  /// default exhaustive path stays bit-identical.
  double far_fl_w(std::size_t user) const { return far_fl_w_[user]; }
  void set_far_fl_w(std::size_t user, double w) { far_fl_w_[user] = w; }

  /// Zeroes the cached gain of a link leaving a candidate set, so dropped
  /// cells stop contributing to interference sums.
  void clear_gain(std::size_t user, std::size_t cell) {
    gain_mean_[user * num_cells_ + cell] = 0.0;
  }

  std::size_t num_cells() const { return num_cells_; }
  std::size_t num_users() const { return num_users_; }

  // --- CSR candidate index (built from the provider's per-user lists) -----
  /// Rebuilds the CSR candidate index and its transpose if the provider's
  /// candidate epoch moved since the last build.  Sequential; call between
  /// the channel and measurement phases.
  void refresh_candidate_index(const ChannelStateProvider& provider);

  /// True once refresh_candidate_index() has built the CSR index at least
  /// once (the far-field refresh must wait for it on the first frame).
  bool has_candidate_index() const {
    return csr_offsets_.size() == num_users_ + 1;
  }

  /// Candidate cells of `user` as a contiguous [begin, end) range.
  const std::uint32_t* candidates_begin(std::size_t user) const {
    return &csr_cells_[csr_offsets_[user]];
  }
  std::size_t candidate_count(std::size_t user) const {
    return csr_offsets_[user + 1] - csr_offsets_[user];
  }

  /// Users holding `cell` as a candidate, ascending (transpose index).
  const std::uint32_t* users_of_cell_begin(std::size_t cell) const {
    return &transpose_users_[transpose_offsets_[cell]];
  }
  std::size_t users_of_cell_count(std::size_t cell) const {
    return transpose_offsets_[cell + 1] - transpose_offsets_[cell];
  }

  /// Cross-checks the CSR candidate index (and its transpose sizing)
  /// against the provider's live per-user candidate sets: the
  /// candidate-epoch contract says they may only disagree if the provider
  /// changed a set without moving its epoch.  Test/debug hook for the
  /// epoch regression suite; O(users x candidates).
  bool candidate_index_matches(const ChannelStateProvider& provider) const;

  /// Serializes the evolved state only: frame clock, shadowing/fading RNG
  /// streams and lanes, Jakes time offsets, cached gains/pilots, far-field
  /// lane, and the CSR candidate index.  Init-time state (geometry tables,
  /// Jakes phases, fast-math fold constants) is reproduced by re-running
  /// init()/init_user() on the same config, so load() overwrites only what
  /// evolves and size-checks every lane against the initialised layout.
  void save(common::BinaryWriter& w) const;
  bool load(common::BinaryReader& r);

 private:
  void step_user_links_fast(std::size_t user, cell::Point pos, double moved_m,
                            const std::size_t* cells, std::size_t count);
  std::size_t link_index(std::size_t user, std::size_t cell) const {
    WCDMA_DEBUG_ASSERT(user < num_users_ && cell < num_cells_);
    return user * num_cells_ + cell;
  }

  const cell::HexLayout* layout_ = nullptr;
  const channel::PathLoss* path_loss_ = nullptr;
  channel::ShadowingConfig shadowing_{};
  channel::FadingKind fading_kind_ = channel::FadingKind::kAr1;
  double frame_s_ = 0.020;
  int jakes_paths_ = 16;
  std::size_t num_users_ = 0;
  std::size_t num_cells_ = 0;
  std::int64_t frame_ = 0;

  // Per-link shadowing state (stepped eagerly for candidates).
  std::vector<common::Rng> shadow_rng_;
  std::vector<double> shadow_db_;
  // Fast-mode innovation streams: one per USER, not per link -- the batch
  // of a user's per-candidate innovations comes from a single stream whose
  // state stays in registers across the lane loop (the per-link streams
  // exist for the reference path's lazy bit-identity contract, which the
  // relaxed provider explicitly does not promise; the innovations stay iid
  // N(0,1) across links either way).
  std::vector<common::Rng> fast_shadow_rng_;

  // Per-link AR(1) fading state (advanced lazily).  rho/innovation depend
  // only on the user's Doppler, so they live per user.
  std::vector<common::Rng> fade_rng_;
  std::vector<double> fade_re_, fade_im_;
  std::vector<std::int64_t> fade_frame_;
  std::vector<double> fade_rho_, fade_innovation_;  // per user

  // Jakes fallback: per-link generator objects, advanced lazily.
  std::vector<channel::JakesFading> jakes_;
  std::vector<std::int64_t> jakes_frame_;

  // Per-frame link outputs (flat, stride num_cells_).
  std::vector<double> gain_mean_;
  std::vector<double> pilot_fl_;
  // Far-field aggregate lane, one forward term per user (stride 1).
  std::vector<double> far_fl_w_;

  // Relaxed-precision mode (the `fast` provider): the path-loss model is
  // affine in log10(d), so loss_db(d) = A + B log10(d) folds with the
  // dB->linear conversion into one fast_exp2 per link:
  //   gain = 2^(K (shadow_db - A) - (B / 10) log2(d)),  K = log2(10) / 10.
  bool fast_math_ = false;
  double fast_gain_bias_ = 0.0;      // -K * A
  double fast_log2_slope_ = 0.0;     // B / 10
  /// (B / 10) * 0.5, folded once for the d^2 form of the loss term (exact:
  /// a power-of-two scale), matching kernels::shadow_gain_lane's signature.
  double fast_half_log2_slope_ = 0.0;
  double fast_min_distance_sq_m_ = 0.0;  // near-field clamp, squared metres
  double fast_inv_decorr_m_ = 0.0;   // 1 / shadowing decorrelation distance
  common::ZigguratNormal zig_;

  // CSR candidate index + transpose, valid for candidate_epoch_.
  std::vector<std::uint32_t> csr_offsets_, csr_cells_;
  std::vector<std::uint32_t> transpose_offsets_, transpose_users_;
  std::uint64_t candidate_epoch_ = ~std::uint64_t{0};
};

}  // namespace wcdma::sim
