#include "src/sim/config.hpp"

#include <algorithm>

#include "src/admission/policy.hpp"
#include "src/common/assert.hpp"
#include "src/sim/channel_state.hpp"

namespace wcdma::sim {

double LoadRampConfig::scale(double now_s, std::size_t cell) const {
  if (!enabled()) return 1.0;
  const double t = now_s - start_s;
  double shape = 0.0;
  if (t >= 0.0) {
    if (t < rise_s) {
      shape = t / rise_s;
    } else if (t < rise_s + hold_s) {
      shape = 1.0;
    } else if (t < rise_s + hold_s + fall_s) {
      shape = 1.0 - (t - rise_s - hold_s) / fall_s;
    }
  }
  if (shape <= 0.0) return 1.0;
  const double blend =
      cell_weights.empty() ? 1.0 : cell_weights[std::min(cell, cell_weights.size() - 1)];
  return 1.0 + (peak_scale - 1.0) * shape * blend;
}

const SystemConfig& SystemConfig::validate() const {
  if (!admission.policy.empty()) {
    WCDMA_ASSERT(admission::has_policy(admission.policy) &&
                 "unknown admission policy name");
  }
  WCDMA_ASSERT(has_channel_provider(csi.provider) &&
               "unknown channel-state provider name");
  WCDMA_ASSERT(csi.refresh_interval_s > 0.0);
  WCDMA_ASSERT(csi.cull_radius_scale > 0.0);
  WCDMA_ASSERT(csi.far_field.ring_width_scale > 0.0);
  WCDMA_ASSERT(csi.far_field.shadowing_fraction >= 0.0 &&
               csi.far_field.shadowing_fraction <= 1.0);
  WCDMA_ASSERT(frame_s > 0.0);
  WCDMA_ASSERT(sim_duration_s > warmup_s);
  WCDMA_ASSERT(voice.users >= 0 && data.users >= 0);
  WCDMA_ASSERT(data.forward_fraction >= 0.0 && data.forward_fraction <= 1.0);
  WCDMA_ASSERT(radio.bs_max_power_w > radio.pilot_power_w + radio.common_power_w);
  WCDMA_ASSERT(radio.orthogonality_loss >= 0.0 && radio.orthogonality_loss <= 1.0);
  WCDMA_ASSERT(phy.fixed_mode >= 0 && phy.fixed_mode <= phy.vtaoc.num_modes);
  WCDMA_ASSERT(admission.min_burst_s >= frame_s);
  WCDMA_ASSERT(placement.carriers >= 1);
  WCDMA_ASSERT(placement.home_radius_scale > 0.0);
  WCDMA_ASSERT(sim_threads >= 0);
  WCDMA_ASSERT(service.injection_queue_cap >= 0);
  WCDMA_ASSERT(load_ramp.peak_scale > 0.0);
  WCDMA_ASSERT(load_ramp.rise_s >= 0.0 && load_ramp.hold_s >= 0.0 &&
               load_ramp.fall_s >= 0.0);
  if (load_ramp.enabled() && !load_ramp.cell_weights.empty()) {
    WCDMA_ASSERT(load_ramp.cell_weights.size() == cell::hex_cell_count(layout.rings) &&
                 "one load-ramp weight per layout cell");
    for (double w : load_ramp.cell_weights) WCDMA_ASSERT(w >= 0.0);
  }
  if (!placement.cell_weights.empty()) {
    WCDMA_ASSERT(placement.cell_weights.size() == cell::hex_cell_count(layout.rings) &&
                 "one placement weight per layout cell");
    double sum = 0.0;
    for (double w : placement.cell_weights) {
      WCDMA_ASSERT(w >= 0.0);
      sum += w;
    }
    WCDMA_ASSERT(sum > 0.0 && "placement weights must have positive mass");
  }
  return *this;
}

SystemConfig default_config() {
  SystemConfig cfg;
  // gamma_s and the VTAOC slope are calibrated together (DESIGN.md section
  // 6): the SCH operating point eps_s = gamma_s * beta_f * (Eb/I0)_f =
  // 3.2 * 0.25 * 5.0 = 4.0 (6 dB) sits mid-ladder (mode-1..6 thresholds
  // 1.9..17 dB with b1 = 4), while one SGR unit costs gamma_s ~ 3.2
  // FCH-equivalents of cell power/rise -- several concurrent bursts fit a
  // cell, so admission is a real packing problem rather than degenerate.
  cfg.spreading.gamma_s = 3.2;
  cfg.spreading.fch_throughput = 0.25;
  cfg.phy.vtaoc.b1 = 4.0;
  cfg.mobility.region_radius_m = 0.0;  // filled from the layout at build time
  return cfg;
}

}  // namespace wcdma::sim
