// Scenario configuration for the dynamic system simulator.
//
// Defaults reconstruct the paper's setting (DESIGN.md section 6): 19-cell
// wrap-around hex layout, cdma2000-class numerology, on/off voice plus
// WWW-style data users, and the JABA-SD admission stack.  Every knob the
// benches sweep lives here so experiments are plain config edits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/admission/objectives.hpp"
#include "src/admission/schedulers.hpp"
#include "src/cell/active_set.hpp"
#include "src/cell/geometry.hpp"
#include "src/cell/mobility.hpp"
#include "src/channel/channel.hpp"
#include "src/channel/path_loss.hpp"
#include "src/mac/mac_state.hpp"
#include "src/phy/adaptation.hpp"
#include "src/phy/modes.hpp"
#include "src/phy/spreading.hpp"

namespace wcdma::sim {

struct RadioConfig {
  double bs_max_power_w = 20.0;     // P_max (Eq. 7)
  double pilot_power_w = 2.0;       // per-BS forward pilot
  double common_power_w = 1.0;      // paging/sync overhead
  double noise_figure_db = 5.0;
  double orthogonality_loss = 0.4;  // own-cell forward interference fraction
  double rise_over_thermal_db = 6.0;  // reverse cap: L_max = N * 10^(x/10)
  double mobile_max_power_dbm = 23.0;
  double fch_ebio_target_db = 7.0;  // FCH Eb/I0 target (voice & data)
  /// Power fraction of the full-rate FCH that a data user consumes while in
  /// Control Hold (Fig. 3): only the low-rate dedicated control channel is
  /// up between bursts.
  double dcch_fraction = 0.125;
};

struct VoiceScenario {
  int users = 60;
  double mean_on_s = 1.0;
  double mean_off_s = 1.5;
};

struct DataScenario {
  int users = 12;
  double pareto_alpha = 1.7;
  double min_burst_bytes = 4096.0;
  double max_burst_bytes = 2.0e6;
  double mean_reading_s = 4.0;
  /// Fraction of data users whose bursts are forward-link (downloads).
  double forward_fraction = 0.5;
  /// Fraction of data users with elevated priority Delta_j = priority_boost.
  double high_priority_fraction = 0.0;
  double priority_boost = 0.5;
};

struct PhyScenario {
  phy::VtaocParams vtaoc{};           // 6-mode ladder
  double target_ber = 1e-3;           // SCH constant-BER operating point
  phy::FloorPolicy floor = phy::FloorPolicy::kOutage;
  std::size_t feedback_delay_frames = 1;
  double feedback_error_db = 0.5;
  /// Non-adaptive ablation: run the SCH at this fixed mode instead of
  /// adapting (0 = adaptive VTAOC).  Used by the E8 synergy bench.
  int fixed_mode = 0;
};

struct AdmissionScenario {
  /// Admission policy by registry name (admission::policy_names()).  Empty
  /// selects the legacy `scheduler` enum below via admission::policy_name();
  /// non-empty wins over it.  Policies beyond the six schedulers (e.g.
  /// "hand-down") are only reachable through this string.
  std::string policy;
  admission::SchedulerKind scheduler = admission::SchedulerKind::kJabaSd;
  admission::ObjectiveKind objective = admission::ObjectiveKind::kJ2DelayAware;
  admission::DelayPenaltyConfig penalty{};
  double min_burst_s = 0.080;  // T_min of Eq. 24 (4 frames)
  double kappa_margin_db = 2.0;  // neighbour-projection shadowing margin
  double zeta_fch_pilot_ratio = 2.0;  // FCH/pilot transmit ratio at mobile
  /// SCRM persistence: a rejected request may not re-enter the scheduling
  /// round for this long (the cdma2000 request/retry cycle; rejection has a
  /// real cost, which is why the burst grant decision matters).  0 disables.
  double scrm_retry_s = 0.26;
};

/// Where users live and roam.  The default (empty weights) is the legacy
/// behaviour: every user draws waypoints uniformly over one service disc.
/// Non-empty weights give per-cell load scaling: each user samples a home
/// cell proportionally to its weight and roams a disc around that cell's
/// centre, so hotspot and corridor load patterns are plain config edits.
struct PlacementConfig {
  /// Relative placement weight per cell; empty = uniform over the service
  /// disc, otherwise must have one non-negative entry per layout cell with
  /// a positive sum.
  std::vector<double> cell_weights;
  /// Radius of a user's home region, as a multiple of the cell radius
  /// (only used when cell_weights is non-empty).
  double home_radius_scale = 1.2;
  /// Independent WCDMA carriers (frequencies).  Users are assigned
  /// round-robin; each (cell, carrier) pair is its own interference domain
  /// with its own power amplifier and rise budget.
  int carriers = 1;
};

/// Time-varying per-cell arrival scaling (flash crowds).  A trapezoidal
/// pulse multiplies the data-burst arrival intensity of users homed in the
/// ramped cells: 1 before `start_s`, linear rise to `peak_scale` over
/// `rise_s`, flat for `hold_s`, linear decay back to 1 over `fall_s`.
/// `cell_weights` blends the pulse per home cell (1 = full pulse, 0 =
/// unaffected); empty applies it everywhere.  peak_scale == 1 disables the
/// ramp entirely (the default path is untouched).
struct LoadRampConfig {
  double peak_scale = 1.0;
  double start_s = 0.0;
  double rise_s = 0.0;
  double hold_s = 0.0;
  double fall_s = 0.0;
  std::vector<double> cell_weights;

  // lint-allow(DET-FLOAT-EQ): 1.0 is the exact "ramp disabled" sentinel
  bool enabled() const { return peak_scale != 1.0; }
  /// Arrival-intensity multiplier for a user homed in `cell` at `now_s`.
  double scale(double now_s, std::size_t cell) const;
};

/// Hierarchical far-field aggregation for the culling providers (see
/// src/sim/far_field.hpp and docs/ACCURACY.md): cells outside a user's
/// candidate set are folded back into both link directions as one additive
/// ring-aggregated interference term per link, refreshed on the candidate
/// timer, instead of being dropped outright.  Ignored by the exhaustive
/// provider (its candidate set is every cell, so there is no far field).
struct FarFieldConfig {
  bool enabled = true;
  /// Distance-ring width as a multiple of the cell radius: cell pair (a, k)
  /// lands in ring floor(d(a, k) / (scale * R)) and shares that ring's mean
  /// gain.  Smaller rings track the path-loss curve more closely at a
  /// (one-off, init-time) memory cost of O(cells x rings).
  double ring_width_scale = 1.0;
  /// Shadowing compensation on the ring gains, as a fraction of the full
  /// lognormal mean factor: gain *= exp(f * (sigma ln10 / 10)^2 / 2).
  /// f = 1 matches the far field's expectation, f = 0 its median; the sum
  /// over far cells is skew-dominated at realistic cell counts, so the
  /// calibrated default sits between them (docs/ACCURACY.md records the
  /// measured sweep behind the choice).
  double shadowing_fraction = 0.5;
};

/// Channel-state (CSI) computation backend: which cells get live link state
/// each frame.  "exhaustive" is the bit-identical reference; "culled" keeps
/// a per-user candidate-cell set (active set + pilot-floor radius) on a
/// slow refresh timer so per-frame link state is O(users x nearby-cells);
/// "fast" is culled plus relaxed-precision link math (fused exp2 composite
/// gains, ziggurat Gaussian draws) -- statistically equivalent to the
/// reference under tests/test_statcheck.cpp tolerances, not bit-identical.
/// Both culling providers restore the dropped cells' interference through
/// the far_field aggregate (docs/ACCURACY.md describes the full ladder).
struct CsiConfig {
  std::string provider = "exhaustive";  // sim::channel_provider_names()
  /// Seconds between candidate-set rebuilds (culled/fast providers only);
  /// the far-field aggregate refreshes on the same cadence.
  double refresh_interval_s = 0.5;
  /// Candidate radius as a multiple of the cell radius: beyond it a pilot
  /// sits under the active-set add floor and the cell is culled.  3.0 keeps
  /// the serving cell plus the first two neighbour rings (spacing sqrt(3) R
  /// and 3 R) live; the far-field aggregate stands in for everything
  /// farther out.  The calibration sweep in docs/ACCURACY.md shows the
  /// second ring must stay live: its cells still join active sets and SCRM
  /// pilot measurements under shadowing, which no mean-field aggregate can
  /// reproduce, while ring three and beyond are mean-field to within the
  /// statcheck tolerances.
  double cull_radius_scale = 3.0;
  FarFieldConfig far_field{};
};

/// Overload protection for the message-driven service core
/// (src/service/): the injection queue that buffers accepted burst
/// requests until the frame's traffic phase drains them is bounded, and
/// requests beyond the bound are shed with ResultCode::kNackOverload
/// (counted in SimMetrics::overload_sheds) instead of growing the queue
/// without limit.  Shedding is a pure refusal -- a shed request touches no
/// simulator state -- so a saturated service degrades gracefully and the
/// surviving run stays bit-identical to one that never saw the excess.
struct ServiceOverloadConfig {
  /// Max buffered injections per frame; 0 = unbounded (the default, and
  /// the only value the batch path and recorded traces ever exercise).
  int injection_queue_cap = 0;
};

struct SystemConfig {
  std::uint64_t seed = 42;
  double frame_s = 0.020;
  double sim_duration_s = 120.0;
  double warmup_s = 10.0;
  /// Worker threads for the intra-frame loops (channel stepping, forward
  /// measurements, reverse-rise gather).  1 = sequential (the default),
  /// 0 = hardware concurrency.  Results are bit-identical for every value:
  /// the sharded loops carry no cross-user accumulators and the reverse
  /// rise is a per-station gather in ascending user order.
  int sim_threads = 1;

  cell::HexLayoutConfig layout{};          // 19 cells by default
  cell::MobilityConfig mobility{};
  PlacementConfig placement{};
  cell::ActiveSetConfig active_set{};
  channel::PathLossConfig path_loss{};
  channel::ShadowingConfig shadowing{};
  channel::FadingKind fading = channel::FadingKind::kAr1;
  double carrier_hz = 2.0e9;

  phy::SpreadingConfig spreading{};        // includes gamma_s and M
  RadioConfig radio{};
  VoiceScenario voice{};
  DataScenario data{};
  PhyScenario phy{};
  AdmissionScenario admission{};
  mac::MacTimersConfig mac_timers{};
  CsiConfig csi{};
  LoadRampConfig load_ramp{};
  ServiceOverloadConfig service{};

  /// Aborts on invalid combinations; returns *this for chaining.
  const SystemConfig& validate() const;
};

/// Baseline defaults used by benches/examples; spreading.gamma_s and friends
/// tuned per DESIGN.md section 6.
SystemConfig default_config();

}  // namespace wcdma::sim
