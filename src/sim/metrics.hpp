// Metric collection for the dynamic simulations: the paper's evaluation
// axes are average packet (burst) delay, data-user capacity, and coverage,
// with BER/outage and utilisation as supporting signals.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/stats.hpp"

namespace wcdma::common {
class BinaryWriter;
class BinaryReader;
}  // namespace wcdma::common

namespace wcdma::sim {

inline constexpr std::size_t kCoverageBins = 12;

struct SimMetrics {
  // Burst (packet) delay: arrival -> last bit delivered.
  common::StreamingMoments burst_delay_s;
  common::Histogram delay_hist{0.0, 60.0, 240};
  // Queueing component only: arrival -> grant.
  common::StreamingMoments queue_delay_s;
  // Granted spreading-gain ratios (m_j > 0 only).
  common::StreamingMoments granted_sgr;
  // SCH throughput actually delivered, bits/s averaged over data users.
  double data_bits_delivered = 0.0;
  double observed_s = 0.0;
  // Delay binned by normalised distance from the serving BS at burst
  // arrival (coverage, E7): bin i covers [i, i+1) * (1.2 R / kCoverageBins).
  std::vector<common::StreamingMoments> delay_by_distance{kCoverageBins};

  // PHY health.
  std::int64_t sch_frames = 0;          // frames with an active SCH burst
  std::int64_t sch_outage_frames = 0;   // VTAOC below mode-1 threshold
  std::int64_t ber_violation_frames = 0;
  std::vector<std::int64_t> mode_frames = std::vector<std::int64_t>(8, 0);

  // Admission activity.
  std::int64_t requests_seen = 0;
  std::int64_t grants = 0;
  std::int64_t reject_rounds = 0;  // scheduling rounds that granted nothing
  /// Grants served on a different carrier than the request arrived on
  /// (inter-carrier hand-down policies only).
  std::int64_t carrier_hand_downs = 0;
  common::StreamingMoments pending_queue_len;

  // Network load.
  common::StreamingMoments forward_load_fraction;  // P_k / P_max
  common::StreamingMoments reverse_rise_db;        // 10log10(L_k / N)
  std::int64_t bs_power_saturations = 0;
  std::int64_t mobile_power_saturations = 0;
  common::StreamingMoments voice_sir_error_db;     // achieved - target

  /// Burst requests refused by the service's bounded injection queue
  /// (ResultCode::kNackOverload).  Zero on the batch path: internal
  /// arrivals never cross the service gate.
  std::int64_t overload_sheds = 0;

  void merge(const SimMetrics& other);

  /// Checkpoint serialization: every accumulator round-trips bit-exactly so
  /// a resumed run's final metrics equal the uninterrupted run's.
  void save(common::BinaryWriter& w) const;
  bool load(common::BinaryReader& r);

  double mean_delay_s() const { return burst_delay_s.mean(); }
  double p95_delay_s() const { return delay_hist.percentile(0.95); }
  double data_throughput_bps() const {
    return observed_s > 0.0 ? data_bits_delivered / observed_s : 0.0;
  }
  double sch_outage_rate() const {
    return sch_frames > 0 ? static_cast<double>(sch_outage_frames) /
                                static_cast<double>(sch_frames)
                          : 0.0;
  }
  double grant_rate() const {
    return requests_seen > 0 ? static_cast<double>(grants) /
                                   static_cast<double>(requests_seen)
                             : 0.0;
  }
};

}  // namespace wcdma::sim
