// Channel-state (CSI) providers: the gain/pilot/interference computation of
// the frame loop extracted behind an interface.
//
// The legacy simulator recomputed full O(users x cells) link state every
// frame -- the exact bottleneck on the path to million-user grids (each
// link step evolves shadowing and fading state).  A ChannelStateProvider
// owns (a) how one user's mobility advances each frame and (b) WHICH cells
// have live link state for that user (the candidate set); the per-link
// state itself lives in the simulator's structure-of-arrays sim::FrameState,
// which the provider drives through step_user_links().
//
//  * ExhaustiveChannelProvider -- every cell, every frame; the reference
//    implementation, bit-identical to the pre-seam simulator.
//  * CulledChannelProvider -- per-user candidate set = active set members
//    plus cells within a pilot-floor radius of the user, refreshed on a
//    slow timer; per-frame link state is O(users x nearby-cells).  Each
//    link keeps its own RNG stream, so a candidate link's realisation is
//    identical to the exhaustive provider's for as long as it stays in the
//    set -- culling only drops far-cell contributions.
//  * "fast" -- the same candidate/epoch machinery with the FrameState
//    switched onto relaxed-precision link kernels (fused exp2 composite
//    gains, ziggurat Gaussian draws).  Deterministic per seed and
//    statistically equivalent to the reference (tests/test_statcheck.cpp),
//    but NOT bit-identical; tolerance goldens, never bit-exact ones.
//
// step_user() is called from the simulator's sharded frame loops and must
// be safe for concurrent distinct users; candidate_epoch() tells the
// simulator when to rebuild its CSR candidate indexes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cell/active_set.hpp"
#include "src/cell/geometry.hpp"
#include "src/cell/mobility.hpp"
#include "src/sim/config.hpp"

namespace wcdma::common {
class BinaryWriter;
class BinaryReader;
}  // namespace wcdma::common

namespace wcdma::sim {

class FrameState;

/// Narrow mutable view of one user's channel inputs inside the simulator.
struct ChannelUserView {
  cell::MobilityModel* mobility = nullptr;
  const cell::ActiveSet* active_set = nullptr;  // read-only (candidate seeding)
};

class ChannelStateProvider {
 public:
  virtual ~ChannelStateProvider() = default;

  /// Bound once by the simulator before the first frame.  `state` is the
  /// simulator-owned SoA link state the provider steps.
  virtual void init(const cell::HexLayout* layout, std::size_t num_users,
                    FrameState* state) = 0;

  /// Advances `user`'s mobility, maintains its candidate set, and steps the
  /// FrameState links for every cell in cells_for(user).  Called once per
  /// user per frame; must be safe for concurrent distinct users.
  virtual void step_user(std::size_t user, const ChannelUserView& view,
                         double frame_s) = 0;

  /// Cells with live link state for this user this frame, ascending.  The
  /// measurement loops (forward interference, pilots, reverse rise) iterate
  /// exactly this set; gains outside it are zero.
  virtual const std::vector<std::size_t>& cells_for(std::size_t user) const = 0;

  /// Monotone counter that moves whenever any user's candidate set changes;
  /// the simulator rebuilds its CSR/transpose candidate indexes only then.
  virtual std::uint64_t candidate_epoch() const = 0;

  /// True when cells_for() can be a strict subset of the world -- the
  /// simulator then arms the far-field aggregator (src/sim/far_field.hpp)
  /// to restore the culled cells' interference as ring aggregates.  The
  /// exhaustive reference keeps the default false: every cell is live, so
  /// there is no far field to aggregate.
  virtual bool culls() const { return false; }

  virtual std::string name() const = 0;

  /// Checkpoint hooks: providers with evolved state (candidate sets,
  /// refresh timers, epochs) serialize it here.  The exhaustive reference
  /// is stateless beyond init, so the defaults are empty archives that
  /// always restore.
  virtual void save_state(common::BinaryWriter&) const {}
  virtual bool load_state(common::BinaryReader&) { return true; }
};

// --- Registry: string-keyed factories --------------------------------------
/// Registered provider names, in registry order ("exhaustive", "culled",
/// "fast").
std::vector<std::string> channel_provider_names();
bool has_channel_provider(const std::string& name);
/// Builds the provider named by `csi.provider`; aborts on unknown names.
std::unique_ptr<ChannelStateProvider> make_channel_provider(const CsiConfig& csi);
std::string channel_provider_description(const std::string& name);

}  // namespace wcdma::sim
