// Indexed pending-burst-request queues for the admission hot path.
//
// The legacy frame loop re-scanned every user per frame to gather pending
// burst requests (and again per (direction, carrier) scheduling round) --
// O(users) work per round even when nothing is pending, which dominates at
// large populations with short scheduling rounds.  RequestQueues maintains
// one bucket per (direction, carrier) incrementally at the MAC transitions
// that actually change membership:
//
//   * burst arrival while no burst is active        -> add
//   * grant applied (request becomes a burst)       -> remove
//   * inter-carrier hand-down at grant time         -> remove from the old
//     carrier's bucket (the grant removal), re-adds are impossible because
//     the request became a burst
//
// Rejected requests stay queued (the SCRM retry gate is evaluated at
// snapshot time), so rejection costs no queue maintenance.  Buckets store
// ascending user ids, which keeps each scheduling round's request order
// identical to the legacy full scan -- the refactor is bit-identical by
// construction, and a cross-check against the O(users) scan is pinned in
// tests.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/serialize.hpp"

namespace wcdma::sim {

class RequestQueues {
 public:
  /// One bucket per (direction, carrier); all buckets start empty.
  void init(int carriers) {
    WCDMA_ASSERT(carriers >= 1);
    carriers_ = carriers;
    buckets_.assign(2 * static_cast<std::size_t>(carriers), {});
  }

  void add(int user, int carrier, bool forward) {
    std::vector<int>& b = bucket_mut(forward, carrier);
    const auto it = std::lower_bound(b.begin(), b.end(), user);
    WCDMA_DEBUG_ASSERT(it == b.end() || *it != user);
    b.insert(it, user);
  }

  void remove(int user, int carrier, bool forward) {
    std::vector<int>& b = bucket_mut(forward, carrier);
    const auto it = std::lower_bound(b.begin(), b.end(), user);
    WCDMA_ASSERT(it != b.end() && *it == user && "removing a user not queued");
    b.erase(it);
  }

  /// Ascending user ids pending on (direction, carrier).
  const std::vector<int>& bucket(bool forward, int carrier) const {
    WCDMA_DEBUG_ASSERT(carrier >= 0 && carrier < carriers_);
    return buckets_[index(forward, carrier)];
  }

  /// Total queued requests across every bucket (the pending-queue metric).
  std::size_t total_pending() const {
    std::size_t n = 0;
    for (const std::vector<int>& b : buckets_) n += b.size();
    return n;
  }

  int carriers() const { return carriers_; }

  void save(common::BinaryWriter& w) const {
    w.u64(buckets_.size());
    for (const std::vector<int>& b : buckets_) w.vec_i32(b);
  }
  bool load(common::BinaryReader& r) {
    if (r.seq(8) != buckets_.size()) return false;  // shape fixed at init
    for (std::vector<int>& b : buckets_) r.vec_i32(b);
    return r.ok();
  }

 private:
  std::size_t index(bool forward, int carrier) const {
    return (forward ? 0 : 1) * static_cast<std::size_t>(carriers_) +
           static_cast<std::size_t>(carrier);
  }
  std::vector<int>& bucket_mut(bool forward, int carrier) {
    WCDMA_DEBUG_ASSERT(carrier >= 0 && carrier < carriers_);
    return buckets_[index(forward, carrier)];
  }

  int carriers_ = 1;
  std::vector<std::vector<int>> buckets_;
};

}  // namespace wcdma::sim
