// Frame-driven dynamic system simulator (DESIGN.md S26).
//
// Reproduces the evaluation substrate the paper describes: "the system is
// evaluated by dynamic simulations which takes into account of the user
// mobility, power control, and soft hand-off".  Each 20 ms frame the
// simulator moves users, evolves shadowing/fading, runs closed-loop power
// control on the fundamental channels, updates soft-handoff active sets,
// generates voice activity and data bursts, runs the burst admission stack
// (measurement sub-layer -> scheduling sub-layer -> grants), and transmits
// active SCH bursts through the adaptive VTAOC physical layer.
//
// Interference is resolved as a lagged fixed point: frame t uses the
// transmit powers of frame t-1 as the interference background, the standard
// technique for dynamic CDMA system simulations.
//
// Hot-path layout (see docs/ARCHITECTURE.md "hot path & memory layout"):
// per-link channel state lives in a structure-of-arrays sim::FrameState
// rather than inside Simulator::User, pending burst requests live in
// incrementally-maintained per-(direction, carrier) RequestQueues rather
// than being re-scanned per frame, and the three heavy per-frame loops
// (channel stepping, forward measurements, reverse-rise gather) shard over
// a persistent thread pool when config.sim_threads > 1.  Results are
// bit-identical for every thread count: the sharded loops carry no
// cross-user accumulators, and the reverse rise is computed as a
// per-station gather in ascending user order (the same additions, in the
// same order, as the legacy sequential scatter).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/admission/measurement.hpp"
#include "src/admission/policy.hpp"
#include "src/cell/active_set.hpp"
#include "src/cell/geometry.hpp"
#include "src/cell/mobility.hpp"
#include "src/channel/channel.hpp"
#include "src/channel/path_loss.hpp"
#include "src/common/thread_pool.hpp"
#include "src/mac/mac_state.hpp"
#include "src/mac/scrm.hpp"
#include "src/phy/adaptation.hpp"
#include "src/phy/link_adapter.hpp"
#include "src/phy/spreading.hpp"
#include "src/power/power_control.hpp"
#include "src/sim/channel_state.hpp"
#include "src/sim/config.hpp"
#include "src/sim/far_field.hpp"
#include "src/sim/frame_state.hpp"
#include "src/sim/metrics.hpp"
#include "src/sim/request_queue.hpp"
#include "src/traffic/data.hpp"
#include "src/traffic/voice.hpp"

namespace wcdma::sim {

class Simulator {
 public:
  explicit Simulator(const SystemConfig& config);

  /// Runs the configured duration and returns the (post-warmup) metrics.
  SimMetrics run();

  /// Advances exactly one frame (exposed for tests and custom drivers).
  void step_frame();

  /// Frames in the configured duration; run() is exactly this many
  /// step_frame() calls, so an external driver (the sweep worker's
  /// checkpoint-cadence loop) that steps from frame_index() to
  /// total_frames() reproduces run() bit-for-bit.
  std::int64_t total_frames() const;

  double now_s() const { return now_s_; }
  const SimMetrics& metrics() const { return metrics_; }
  const SystemConfig& config() const { return config_; }

  // --- Introspection for tests/examples ---
  std::size_t num_cells() const { return layout_.num_cells(); }
  int num_carriers() const { return config_.placement.carriers; }
  std::size_t num_users() const { return users_.size(); }
  double forward_power_w(std::size_t cell, int carrier = 0) const;
  double reverse_interference_w(std::size_t cell, int carrier = 0) const;
  cell::Point user_position(std::size_t user) const;
  int user_carrier(std::size_t user) const;
  /// Home cell under per-cell placement; nearest cell to the region centre
  /// otherwise.
  std::size_t user_home_cell(std::size_t user) const;
  double thermal_noise_w() const { return noise_w_; }
  int active_bursts() const;
  /// Pending-request count by O(users) scan -- the reference the indexed
  /// RequestQueues are tested against.
  int pending_requests() const;
  /// Pending-request count from the incrementally-maintained queues.
  int queued_requests() const { return static_cast<int>(queues_.total_pending()); }
  /// Worker threads the intra-frame loops actually use (resolved from
  /// config.sim_threads; 0 resolves to hardware concurrency).
  std::size_t sim_threads() const { return sim_threads_; }
  /// Resolved admission-policy and channel-state-provider registry names
  /// (round-trippable through admission::make_policy / make_channel_provider).
  std::string policy_name() const { return admission_policy_name_; }
  std::string channel_provider_name() const { return csi_->name(); }
  /// Epoch-contract cross-checks for the candidate-index regression tests:
  /// the CSR index must mirror the provider's live candidate sets after
  /// every frame, and the epoch must move whenever any set changed.
  bool csi_index_consistent() const { return state_.candidate_index_matches(*csi_); }
  std::uint64_t csi_candidate_epoch() const { return csi_->candidate_epoch(); }
  /// True when the far-field aggregator is live (culling provider with
  /// csi.far_field.enabled); the default exhaustive path keeps it off.
  bool far_field_active() const { return far_field_.active(); }
  /// The aggregator itself (bucket-maintenance regression tests).
  const FarFieldAggregator& far_field() const { return far_field_; }

  // --- Service seams (src/service/): event-driven traffic injection,
  // trace recording hooks, checkpoint/restore, decision-latency timing. ----

  /// kExternal switches data-burst arrivals from the users' Pareto sources
  /// to inject_request() (the trace-replay path).  The per-user fork(2)
  /// traffic streams are simply not consumed -- every other stream
  /// (mobility, channel, power control) advances identically, which is what
  /// makes a replayed run's decisions bit-identical to the recording run.
  enum class TrafficMode { kInternal, kExternal };
  void set_traffic_mode(TrafficMode mode) { traffic_mode_ = mode; }
  TrafficMode traffic_mode() const { return traffic_mode_; }

  /// Buffers a burst request for `user` (data user, idle, nothing buffered);
  /// it enters the pending queue inside this frame's traffic phase in
  /// ascending user order -- exactly where an internal arrival would, so
  /// the admission rounds see an identical request sequence.  Callers
  /// (AdmissionService) pre-validate; violations abort in debug builds.
  void inject_request(std::size_t user, double bits);
  /// Cancels `user`'s pending (not yet granted) request.  Internal mode
  /// also completes the user's traffic-source cycle so arrivals resume.
  void cancel_request(std::size_t user);
  /// Re-assigns an idle data user's carrier (explicit hand-down event).
  void set_user_carrier(std::size_t user, int carrier);

  bool user_is_data(std::size_t user) const { return users_[user].is_data; }
  bool user_has_pending(std::size_t user) const { return users_[user].has_pending; }
  bool user_burst_active(std::size_t user) const { return users_[user].burst.active; }
  bool user_injection_queued(std::size_t user) const {
    return injected_bits_[user] >= 0.0;
  }
  /// Buffered-injection count (requests accepted this frame, not yet
  /// drained by the traffic phase).  O(users) scan: the service's overload
  /// gate runs per submitted event, never inside the frame hot path.
  std::size_t injection_queue_depth() const {
    std::size_t depth = 0;
    for (double bits : injected_bits_) depth += bits >= 0.0 ? 1 : 0;
    return depth;
  }
  /// Records one load-shed burst request (service overload gate); the
  /// counter rides in SimMetrics so checkpoints and merges carry it.
  void note_overload_shed() { ++metrics_.overload_sheds; }

  std::int64_t frame_index() const { return frame_count_; }

  /// Observer invoked at every data-burst arrival (user id, burst bits), in
  /// ascending user order within the frame -- the trace recorder hook.
  void set_arrival_observer(std::function<void(int, double)> observer) {
    arrival_observer_ = std::move(observer);
  }

  /// Serializes the full evolved simulator state (master + per-user RNG
  /// streams, SoA channel lanes, far-field buckets, request queues, MAC,
  /// power control, metrics) into a versioned little-endian archive.  The
  /// header fingerprints the originating config; restore() onto a Simulator
  /// constructed from the SAME config resumes bit-identically to an
  /// uninterrupted run.  Snapshots are valid between frames only.
  std::vector<std::uint8_t> snapshot() const;
  /// Restores a snapshot() archive; false (state untouched or safely
  /// partial) on magic/version/fingerprint mismatch or truncation.
  bool restore(const std::vector<std::uint8_t>& bytes);

  /// Cross-checks every incrementally-maintained structure against its
  /// from-scratch rebuild: request-queue buckets vs per-user pending state,
  /// CSR candidate index vs the provider's live sets, far-field TX buckets
  /// vs a fresh aggregation, SoA lane sizes vs user/cell counts.  Always
  /// compiled (Release tests call it directly); returns false and names the
  /// first broken invariant in *why (when non-null) instead of aborting.
  bool check_invariants(std::string* why = nullptr) const;
  /// Debug/sanitizer builds: aborts via WCDMA_DCHECK when check_invariants
  /// fails.  Compiled out in Release.  Called at snapshot(), restore(), and
  /// every kInvariantCheckPeriod-th frame of step_frame().
  void validate_invariants() const;
  static constexpr std::int64_t kInvariantCheckPeriod = 64;

  /// Decision-latency instrumentation: when enabled, each frame's admission
  /// phase (context snapshot + every scheduling round) is wall-clock timed
  /// and the per-frame seconds plus the decided-request count accumulate
  /// for the service bench.  Off by default -- zero hot-path cost.
  void enable_decision_timing(bool on) { decision_timing_ = on; }
  const std::vector<double>& decision_frame_times_s() const {
    return decision_times_s_;
  }
  std::int64_t decisions_made() const { return decisions_made_; }

 private:
  /// One interference domain: a (cell, carrier) pair.  With one carrier
  /// this degenerates to one station per cell; with C carriers each cell
  /// runs C independent power amplifiers and rise budgets, and only
  /// same-carrier users interact.
  struct BaseStation {
    double forward_w = 0.0;       // current frame total TX power
    double prev_forward_w = 0.0;  // last frame (interference background)
    double received_w = 0.0;      // L_k this frame
  };

  struct Burst {
    bool active = false;
    int m = 0;                 // granted spreading-gain ratio
    double remaining_bits = 0.0;
    double arrival_s = 0.0;
    double setup_left_s = 0.0;
    std::size_t distance_bin = 0;  // coverage bin captured at arrival
  };

  struct User {
    int id = 0;
    bool is_data = false;
    bool forward_dir = true;  // data users: burst direction
    double priority = 0.0;    // Delta_j
    int carrier = 0;          // frequency assignment (round-robin)
    std::size_t home_cell = 0;

    std::unique_ptr<cell::MobilityModel> mobility;
    cell::ActiveSet active_set;
    power::ClosedLoopPowerControl fl_pc;  // FCH forward power (per leg)
    power::ClosedLoopPowerControl rl_pc;  // reverse pilot TX power
    std::optional<traffic::VoiceSource> voice;
    std::optional<traffic::DataSource> data;
    mac::MacStateMachine mac;
    std::unique_ptr<phy::LinkAdapter> adapter;     // adaptive VTAOC
    std::unique_ptr<phy::FixedRateAdapter> fixed;  // ablation PHY

    bool voice_active = false;
    bool fch_on = false;
    // (last frame's mobile TX power lives in Simulator::prev_tx_w_, the
    // SoA mirror the reverse-rise gather reads)

    // Pending burst request (at most one; mirrors mac::RequestQueue
    // semantics but kept inline for the hot loop).
    bool has_pending = false;
    double pending_bits = 0.0;
    double pending_arrival_s = 0.0;
    double next_eligible_s = 0.0;  // SCRM retry gate after a rejection

    Burst burst;

    // Per-frame interference caches (per-cell state lives in FrameState).
    double fwd_interference_w = 0.0;  // total received forward power + noise
    double fwd_interference_eff_w = 0.0;  // with own-cell orthogonality credit
    double fch_sir_linear = 0.0;          // achieved FCH Eb/I0 (relevant link)

    User(const cell::ActiveSetConfig& as_cfg, std::size_t num_cells,
         const power::PowerControlConfig& fl_cfg, const power::PowerControlConfig& rl_cfg)
        : active_set(as_cfg, num_cells), fl_pc(fl_cfg), rl_pc(rl_cfg, -20.0) {}
  };

  /// Per-shard measurement scratch (one per worker shard, so the forward
  /// loop never shares a buffer across threads).
  struct ShardScratch {
    std::vector<double> pilot_db;
    std::vector<std::pair<std::size_t, double>> pilot_pairs;
  };

  /// One sharded pass: mobility + candidate refresh + link stepping + this
  /// user's forward measurements (fused; see step_frame).
  /// Refreshes the far-field aggregates on the slow candidate cadence
  /// (no-op while the aggregator is inactive or before the first CSR build).
  void maybe_refresh_far_field();
  void step_mobility_and_channel();
  void forward_measure_user(std::size_t shard, std::size_t user);
  void step_reverse_measurements();
  void step_power_control();
  /// The fast provider's lane-structured twin of step_power_control: the
  /// per-user SIR measurements are computed scalar (pass A), every dB
  /// conversion runs through the SIMD-dispatched kernels as one batch
  /// (passes B and D), and the scalar stepping/saturation/metric logic in
  /// between (pass C) runs in the same ascending-user order as the default
  /// loop.  No cross-user state flows through power control within a frame
  /// (every SIR reads last frame's powers and this user's pre-update loop
  /// state), so the split is element-wise identical to the fused loop it
  /// replaced -- and byte-identical across dispatch levels by the kernel
  /// contract.
  void step_power_control_fast();
  void step_traffic();
  /// Snapshots this frame's measurements and the queued eligible requests
  /// into the read-only FrameContext handed to the admission policy, one
  /// request bucket per (carrier, direction) scheduling round.
  void build_frame_context();
  /// One scheduling round for one direction on one carrier: only
  /// same-carrier users share power/rise budgets.  Delegates the decision
  /// to the admission policy and applies grants/rejections.
  void run_admission(mac::LinkDirection direction, int carrier);
  void step_transmission();
  void update_transmit_powers();
  void collect_frame_metrics();

  /// Runs fn(shard, begin, end) over `n` items split into sim_threads_
  /// contiguous shards (inline when single-threaded).  The sharded loops
  /// must be free of cross-item accumulators; see the class comment.
  void for_shards(std::size_t n,
                  const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Index of the (cell, carrier) interference domain in stations_.
  std::size_t station_index(std::size_t cell, int carrier) const {
    return cell * static_cast<std::size_t>(config_.placement.carriers) +
           static_cast<std::size_t>(carrier);
  }
  /// Index of the (carrier, direction) scheduling round bookkeeping slot.
  std::size_t round_index(int carrier, bool forward) const {
    return static_cast<std::size_t>(carrier) * 2 + (forward ? 0 : 1);
  }

  /// Archive fingerprint check (magic/version/config); reads from `r` but
  /// mutates no simulator state, leaving `r` positioned at the body.
  bool check_snapshot_header(common::BinaryReader& r) const;
  /// Body restore: mutates state and may partially apply on a truncated or
  /// corrupt archive -- restore() wraps it transactionally with a rollback
  /// snapshot so callers never observe the partial state.
  bool restore_body(common::BinaryReader& r);

  bool in_warmup() const { return now_s_ < config_.warmup_s; }
  double sch_mean_csi(const User& u) const;
  double delta_beta(const User& u) const;
  int mobile_tx_upper_bound(const User& u) const;
  std::size_t coverage_bin(const User& u) const;

  SystemConfig config_;
  cell::HexLayout layout_;
  channel::PathLoss path_loss_;
  phy::Spreading spreading_;
  phy::AdaptationPolicy policy_;
  std::string admission_policy_name_;  // registry key the policy resolved from
  std::unique_ptr<admission::AdmissionPolicy> admission_policy_;
  std::unique_ptr<ChannelStateProvider> csi_;
  common::Rng rng_;

  std::vector<BaseStation> stations_;
  std::vector<User> users_;
  FrameState state_;  // SoA per-link channel state
  /// Last frame's mobile TX power and carrier per user, written by
  /// update_transmit_powers() as compact arrays (not User fields): the
  /// reverse-rise gather walks users in cell-major order, and pulling
  /// whole User structs there would thrash the cache.
  std::vector<double> prev_tx_w_;
  std::vector<int> user_carrier_;
  /// Ring-aggregated interference from each user's non-candidate cells
  /// (culling providers only; see src/sim/far_field.hpp).  The forward term
  /// lives in FrameState's aggregate lane; the reverse term is per station.
  FarFieldAggregator far_field_;
  double far_refresh_left_s_ = 0.0;
  std::vector<std::uint32_t> far_anchor_;   // refresh scratch: primaries
  std::vector<double> far_station_w_;       // refresh scratch: station powers
  RequestQueues queues_;  // per-(direction, carrier) pending requests
  std::size_t sim_threads_ = 1;
  std::unique_ptr<common::ThreadPool> pool_;  // persistent intra-frame pool
  std::vector<ShardScratch> shard_scratch_;
  // Per-frame admission snapshot (rebuilt by build_frame_context).
  admission::FrameContext frame_ctx_;
  std::vector<User*> pending_users_;  // aligned with frame_ctx_.requests
  /// [start, end) of each (carrier, direction) round in frame_ctx_.requests.
  std::vector<std::pair<std::size_t, std::size_t>> round_ranges_;
  std::vector<std::size_t> round_scratch_;  // request indices of one round
  std::vector<int> grant_m_scratch_, grant_carrier_scratch_;
  /// step_power_control_fast lane scratch: one entry per closed-loop update
  /// this frame (a user contributes kRlData, or kForward plus kRlPilot).
  enum class PcKind : std::uint8_t { kRlData, kForward, kRlPilot };
  struct PcEntry {
    std::uint32_t user;
    PcKind kind;
  };
  std::vector<PcEntry> pc_entries_;
  std::vector<double> pc_sir_linear_, pc_sir_db_;  // pass A -> B lanes
  std::vector<double> pc_dbm_, pc_watt_;           // pass C -> D lanes
  double noise_w_ = 0.0;
  double l_max_w_ = 0.0;
  double mobile_max_w_ = 0.0;  // dbm_to_watt(mobile_max_power_dbm), hoisted
  /// True when the CSI provider armed FrameState's relaxed-precision
  /// kernels (the "fast" provider): the per-user power-control loop then
  /// uses the fastmath dB conversions too.  Always false on the default
  /// bit-identical path.
  bool fast_math_ = false;
  double fch_pg_ = 0.0;          // W / R_f processing gain
  double fch_sir_target_ = 0.0;  // linear Eb/I0 target
  double now_s_ = 0.0;
  std::int64_t frame_count_ = 0;
  SimMetrics metrics_;

  // Service seams.
  TrafficMode traffic_mode_ = TrafficMode::kInternal;
  std::vector<double> injected_bits_;  // per user; < 0 = nothing buffered
  std::function<void(int, double)> arrival_observer_;
  bool decision_timing_ = false;
  std::vector<double> decision_times_s_;  // seconds per timed frame
  std::int64_t decisions_made_ = 0;       // requests decided while timing
};

}  // namespace wcdma::sim
