#include "src/sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "src/common/assert.hpp"
#include "src/common/serialize.hpp"
#include "src/common/units.hpp"
#include "src/sim/kernels.hpp"

namespace wcdma::sim {

namespace {

constexpr double kTiny = 1e-30;

/// Registry name of the configured admission policy: the explicit string
/// wins; the legacy SchedulerKind enum is the fallback.
std::string resolved_policy_name(const SystemConfig& config) {
  return config.admission.policy.empty()
             ? admission::policy_name(config.admission.scheduler)
             : config.admission.policy;
}

power::PowerControlConfig forward_pc_config(const RadioConfig& radio) {
  power::PowerControlConfig cfg;
  cfg.target_sir_db = radio.fch_ebio_target_db;
  cfg.min_power_dbm = -20.0;
  cfg.max_power_dbm = 36.0;  // 4 W per-user forward cap
  return cfg;
}

power::PowerControlConfig reverse_pc_config(const RadioConfig& radio) {
  power::PowerControlConfig cfg;
  cfg.target_sir_db = radio.fch_ebio_target_db;
  cfg.min_power_dbm = -60.0;
  cfg.max_power_dbm = radio.mobile_max_power_dbm;
  return cfg;
}

}  // namespace

Simulator::Simulator(const SystemConfig& config)
    : config_(config),
      layout_(config.layout),
      path_loss_(config.path_loss),
      spreading_(config.spreading),
      policy_(phy::make_vtaoc_modes(config.phy.vtaoc), config.phy.target_ber,
              config.phy.floor),
      admission_policy_name_(resolved_policy_name(config)),
      admission_policy_(
          admission::make_policy(admission_policy_name_, config.seed ^ 0x5cedu)),
      csi_(make_channel_provider(config.csi)),
      rng_(config.seed) {
  config_.validate();

  noise_w_ = common::thermal_noise_watt(config_.spreading.chip_rate_hz,
                                        config_.radio.noise_figure_db);
  l_max_w_ = noise_w_ * common::db_to_linear(config_.radio.rise_over_thermal_db);
  mobile_max_w_ = common::dbm_to_watt(config_.radio.mobile_max_power_dbm);
  fch_pg_ = config_.spreading.chip_rate_hz / config_.spreading.fch_bit_rate;
  fch_sir_target_ = common::db_to_linear(config_.radio.fch_ebio_target_db);

  stations_.resize(layout_.num_cells() *
                   static_cast<std::size_t>(config_.placement.carriers));
  const double idle_w = config_.radio.pilot_power_w + config_.radio.common_power_w;
  for (auto& bs : stations_) {
    bs.forward_w = idle_w;
    bs.prev_forward_w = idle_w;
    bs.received_w = noise_w_;
  }

  // Mobility region spans the whole layout unless the scenario pinned it.
  cell::MobilityConfig mob = config_.mobility;
  if (mob.region_radius_m <= 0.0) mob.region_radius_m = layout_.service_radius_m();

  // Per-cell load scaling: cumulative placement weights for home-cell draws.
  std::vector<double> cum_weights;
  if (!config_.placement.cell_weights.empty()) {
    double sum = 0.0;
    for (double w : config_.placement.cell_weights) {
      sum += w;
      cum_weights.push_back(sum);
    }
  }

  const int total_users = config_.voice.users + config_.data.users;
  state_.init(&layout_, &path_loss_, config_.shadowing, config_.fading,
              config_.frame_s, channel::LinkConfig{}.jakes_paths,
              static_cast<std::size_t>(total_users));
  queues_.init(config_.placement.carriers);
  round_ranges_.assign(static_cast<std::size_t>(config_.placement.carriers) * 2,
                       {0, 0});
  prev_tx_w_.assign(static_cast<std::size_t>(total_users), 0.0);
  user_carrier_.assign(static_cast<std::size_t>(total_users), 0);
  injected_bits_.assign(static_cast<std::size_t>(total_users), -1.0);

  sim_threads_ = config_.sim_threads == 0
                     ? common::default_thread_count()
                     : static_cast<std::size_t>(config_.sim_threads);
  if (sim_threads_ < 1) sim_threads_ = 1;
  // sim_threads_ is the SHARD count (fixed partitioning, so results are
  // identical everywhere); the worker pool is additionally capped at the
  // hardware concurrency -- oversubscribing a CPU-bound loop only adds
  // context switches.  The calling thread always works shard 0, so the pool
  // holds min(shards, cores) - 1 workers; with one core the shards simply
  // run in order on the caller, at sequential speed.
  const std::size_t workers =
      std::min(sim_threads_, common::default_thread_count()) - 1;
  if (workers >= 1) pool_ = std::make_unique<common::ThreadPool>(workers);
  shard_scratch_.resize(sim_threads_);
  for (ShardScratch& s : shard_scratch_) s.pilot_db.resize(layout_.num_cells());

  users_.reserve(static_cast<std::size_t>(total_users));
  const auto fl_cfg = forward_pc_config(config_.radio);
  const auto rl_cfg = reverse_pc_config(config_.radio);

  for (int i = 0; i < total_users; ++i) {
    common::Rng user_rng = rng_.fork(0x1000 + static_cast<std::uint64_t>(i));
    users_.emplace_back(config_.active_set, layout_.num_cells(), fl_cfg, rl_cfg);
    User& u = users_.back();
    u.id = i;
    u.is_data = i >= config_.voice.users;
    u.carrier = i % config_.placement.carriers;

    // Per-cell placement: sample the home cell by weight and confine the
    // user to a disc around it.  The draw comes from its own fork so the
    // legacy uniform path consumes exactly the streams it always did.
    cell::MobilityConfig user_mob = mob;
    u.home_cell = layout_.nearest_cell(mob.region_center);
    if (!cum_weights.empty()) {
      const double pick = user_rng.fork(5).uniform() * cum_weights.back();
      std::size_t home = 0;
      while (home + 1 < cum_weights.size() && pick >= cum_weights[home]) ++home;
      u.home_cell = home;
      user_mob.region_center = layout_.center(home);
      user_mob.region_radius_m =
          config_.placement.home_radius_scale * layout_.cell_radius_m();
    }

    // Corridor mobility spans the whole road regardless of the home cell;
    // disc-bounded models roam the (possibly per-home-cell) region.
    u.mobility = cell::make_mobility(
        mob.kind == cell::MobilityKind::kCorridor ? mob : user_mob, user_rng.fork(1));
    const double speed = u.mobility->speed_mps();
    const double doppler_hz =
        common::doppler_hz(std::max(speed, 0.3), config_.carrier_hz);
    state_.init_user(static_cast<std::size_t>(i), user_rng, doppler_hz);

    if (u.is_data) {
      traffic::DataTrafficConfig dc;
      dc.pareto_alpha = config_.data.pareto_alpha;
      dc.min_burst_bytes = config_.data.min_burst_bytes;
      dc.max_burst_bytes = config_.data.max_burst_bytes;
      dc.mean_reading_s = config_.data.mean_reading_s;
      u.data.emplace(dc, user_rng.fork(2));
      const int data_index = i - config_.voice.users;
      u.forward_dir = data_index <
                      static_cast<int>(std::lround(config_.data.forward_fraction *
                                                   config_.data.users));
      u.priority = (user_rng.fork(3).uniform() < config_.data.high_priority_fraction)
                       ? config_.data.priority_boost
                       : 0.0;
      u.mac = mac::MacStateMachine(config_.mac_timers, mac::MacState::kDormant);
      if (config_.phy.fixed_mode > 0) {
        u.fixed = std::make_unique<phy::FixedRateAdapter>(
            &policy_, config_.phy.fixed_mode, config_.phy.feedback_delay_frames,
            config_.phy.feedback_error_db, user_rng.fork(4));
      } else {
        u.adapter = std::make_unique<phy::LinkAdapter>(
            &policy_, config_.phy.feedback_delay_frames, config_.phy.feedback_error_db,
            user_rng.fork(4));
      }
    } else {
      traffic::VoiceConfig vc;
      vc.mean_on_s = config_.voice.mean_on_s;
      vc.mean_off_s = config_.voice.mean_off_s;
      u.voice.emplace(vc, user_rng.fork(2));
    }
  }

  csi_->init(&layout_, users_.size(), &state_);
  // The provider may have armed the FrameState's relaxed-precision kernels;
  // mirror that into the per-user loops (power-control dB conversions).
  fast_math_ = state_.fast_math();

  far_field_.init(&layout_, &path_loss_, config_.shadowing, config_.csi,
                  users_.size(), config_.placement.carriers, csi_->culls());
  if (far_field_.active()) {
    far_anchor_.resize(users_.size());
    far_station_w_.resize(stations_.size());
  }
}

std::int64_t Simulator::total_frames() const {
  return static_cast<std::int64_t>(
      std::llround(config_.sim_duration_s / config_.frame_s));
}

SimMetrics Simulator::run() {
  const std::int64_t frames = total_frames();
  for (std::int64_t f = 0; f < frames; ++f) step_frame();
  return metrics_;
}

void Simulator::step_frame() {
  state_.advance_frame();
  // The far-field aggregates refresh first, from last frame's (frozen)
  // station powers and candidate sets, so the sharded passes below read
  // per-link terms that stay constant for the whole frame.
  maybe_refresh_far_field();
  // Channel stepping and the forward measurements fuse into one sharded
  // pass: measurement of user i depends only on i's own fresh link state
  // plus last frame's (frozen) station powers, never on other users.
  step_mobility_and_channel();
  // The CSR/transpose rebuild (reverse gather, SCRM reports) must see the
  // post-refresh candidate sets, so it runs after the fused pass.
  state_.refresh_candidate_index(*csi_);
  step_reverse_measurements();
  step_power_control();
  step_traffic();
  if (decision_timing_) {
    // lint-allow(DET-WALLCLOCK): latency bench instrumentation; the measured
    // durations feed BENCH_decision_latency.json only, never simulation state
    const auto t0 = std::chrono::steady_clock::now();
    build_frame_context();
    for (int c = 0; c < config_.placement.carriers; ++c) {
      run_admission(mac::LinkDirection::kForward, c);
      run_admission(mac::LinkDirection::kReverse, c);
    }
    // lint-allow(DET-WALLCLOCK): closes the bench-only timing span above
    const auto t1 = std::chrono::steady_clock::now();
    decision_times_s_.push_back(std::chrono::duration<double>(t1 - t0).count());
    decisions_made_ += static_cast<std::int64_t>(frame_ctx_.requests.size());
  } else {
    build_frame_context();
    for (int c = 0; c < config_.placement.carriers; ++c) {
      run_admission(mac::LinkDirection::kForward, c);
      run_admission(mac::LinkDirection::kReverse, c);
    }
  }
  step_transmission();
  update_transmit_powers();
  collect_frame_metrics();
  now_s_ += config_.frame_s;
  ++frame_count_;
#ifndef NDEBUG
  if (frame_count_ % kInvariantCheckPeriod == 0) validate_invariants();
#endif
}

void Simulator::for_shards(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (sim_threads_ <= 1) {
    fn(0, 0, n);
    return;
  }
  // Fixed contiguous ranges derived only from (n, sim_threads_): the split
  // itself never depends on the worker count, and no shard shares state, so
  // every execution order produces identical results.
  const std::size_t shards = std::min(sim_threads_, n);
  const std::size_t chunk = (n + shards - 1) / shards;
  auto run = [&fn, chunk, n](std::size_t s) {
    const std::size_t begin = s * chunk;
    fn(s, begin, std::min(begin + chunk, n));
  };
  if (!pool_) {
    for (std::size_t s = 0; s < shards; ++s) run(s);
    return;
  }
  for (std::size_t s = 1; s < shards; ++s) {
    pool_->submit([&run, s] { run(s); });
  }
  run(0);  // the calling thread is a worker too
  pool_->wait_idle();
}

void Simulator::maybe_refresh_far_field() {
  if (!far_field_.active()) return;
  far_refresh_left_s_ -= config_.frame_s;
  if (far_refresh_left_s_ > 0.0) return;
  // The first frame has no CSR candidate index yet (it is built after the
  // channel pass); leave the timer expired and retry next frame, so the
  // aggregates stay zero for exactly one frame -- the culled providers'
  // pre-far-field behaviour.
  if (!state_.has_candidate_index()) return;
  far_refresh_left_s_ = config_.csi.refresh_interval_s;
  // Anchors are the active-set primaries, sampled now and frozen until the
  // next refresh; station powers are last frame's (the same lagged
  // fixed-point background every measurement uses).
  for (std::size_t i = 0; i < users_.size(); ++i) {
    far_anchor_[i] = static_cast<std::uint32_t>(users_[i].active_set.primary());
  }
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    far_station_w_[s] = stations_[s].prev_forward_w;
  }
  far_field_.refresh(state_, far_anchor_.data(), far_station_w_.data());
}

void Simulator::step_mobility_and_channel() {
  // Per-user work only (mobility, candidate refresh, per-link RNG streams,
  // then this user's forward measurements): safe and bit-identical under
  // any sharding.
  for_shards(users_.size(),
             [this](std::size_t shard, std::size_t begin, std::size_t end) {
               for (std::size_t i = begin; i < end; ++i) {
                 User& u = users_[i];
                 const ChannelUserView view{u.mobility.get(), &u.active_set};
                 csi_->step_user(i, view, config_.frame_s);
                 forward_measure_user(shard, i);
               }
             });
}

void Simulator::forward_measure_user(std::size_t shard, std::size_t i) {
  const std::size_t cells = layout_.num_cells();
  ShardScratch& scratch = shard_scratch_[shard];
  {
    User& u = users_[i];
    // Only the user's own carrier contributes interference: other carriers
    // are separate frequencies.  Only candidate cells carry live gain state;
    // the rest contribute zero by construction.
    const std::vector<std::size_t>& candidates = csi_->cells_for(i);
    const std::size_t* cand = candidates.data();
    const std::size_t n_cand = candidates.size();
    const double* gain = state_.gain_mean_row(i);
    double* pilot = state_.pilot_fl_row(i);
    // Far-field aggregate lane: the ring-summed interference of every
    // non-candidate cell enters next to thermal noise (exactly 0.0 on the
    // exhaustive path, so the default trajectory stays bit-identical).
    double total = noise_w_ + state_.far_fl_w(i);
    for (std::size_t c = 0; c < n_cand; ++c) {
      const std::size_t k = cand[c];
      total += stations_[station_index(k, u.carrier)].prev_forward_w * gain[k];
    }
    u.fwd_interference_w = total;
    if (n_cand == cells) {
      // Exhaustive provider: dense update, bit-identical to the legacy path.
      for (std::size_t k = 0; k < cells; ++k) {
        pilot[k] = config_.radio.pilot_power_w * gain[k] / total;
        scratch.pilot_db[k] = common::linear_to_db(std::max(pilot[k], kTiny));
      }
      u.active_set.update(scratch.pilot_db, config_.frame_s);
    } else {
      // Culled provider: only candidate cells report; everything else sits
      // at the floor pilot (below every hand-off threshold) implicitly, so
      // per-user work is O(candidates), not O(cells) -- and the hand-off
      // comparisons run directly on the linear pilots (order statistics are
      // domain-invariant), skipping the per-cell dB conversion.
      scratch.pilot_pairs.clear();
      if (fast_math_) {
        // Relaxed path: one reciprocal per user instead of one divide per
        // candidate (differs from x / total in the last ulp only).
        const double inv_total = config_.radio.pilot_power_w / total;
        for (std::size_t c = 0; c < n_cand; ++c) {
          const std::size_t k = cand[c];
          pilot[k] = gain[k] * inv_total;
          scratch.pilot_pairs.push_back({k, pilot[k]});
        }
      } else {
        for (std::size_t c = 0; c < n_cand; ++c) {
          const std::size_t k = cand[c];
          pilot[k] = config_.radio.pilot_power_w * gain[k] / total;
          scratch.pilot_pairs.push_back({k, pilot[k]});
        }
      }
      u.active_set.update_sparse_linear(scratch.pilot_pairs, config_.frame_s);
    }

    // Own-cell orthogonality credit on the primary leg.
    const std::size_t prim = u.active_set.primary();
    const double own =
        stations_[station_index(prim, u.carrier)].prev_forward_w * gain[prim];
    u.fwd_interference_eff_w = total - (1.0 - config_.radio.orthogonality_loss) * own;
    WCDMA_DEBUG_ASSERT(u.fwd_interference_eff_w > 0.0);
  }
}

void Simulator::step_reverse_measurements() {
  // Reverse rise as a per-station GATHER over the candidate transpose: each
  // station sums its contributing users in ascending user order -- the same
  // additions, in the same order, as the legacy sequential scatter, which
  // is what makes the shard split over cells bit-identical for any thread
  // count (no shared accumulators).
  const int carriers = config_.placement.carriers;
  for_shards(layout_.num_cells(), [this, carriers](std::size_t, std::size_t begin,
                                                   std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      for (int c = 0; c < carriers; ++c) {
        // Far-field term next to thermal noise (0.0 while inactive, keeping
        // the default path bit-identical); candidate contributors add their
        // exact per-link terms in the gather below.
        stations_[station_index(k, c)].received_w =
            noise_w_ + far_field_.reverse_far_w(k, c);
      }
      const std::uint32_t* contributors = state_.users_of_cell_begin(k);
      const std::size_t n = state_.users_of_cell_count(k);
      for (std::size_t j = 0; j < n; ++j) {
        const std::uint32_t i = contributors[j];
        const double tx = prev_tx_w_[i];
        if (tx <= 0.0) continue;
        stations_[station_index(k, user_carrier_[i])].received_w +=
            tx * state_.gain_mean(i, k);
      }
    }
  });
}

void Simulator::step_power_control() {
  // The relaxed-precision provider swaps this whole loop for a lane-
  // structured twin whose dB conversions run through the SIMD-dispatched
  // kernels; the default path below keeps libm bit-identity.
  if (fast_math_) {
    step_power_control_fast();
    return;
  }
  for (std::size_t i = 0; i < users_.size(); ++i) {
    User& u = users_[i];
    u.fch_on = u.is_data
                   ? (u.has_pending || u.burst.active ||
                      u.mac.state() == mac::MacState::kActive ||
                      u.mac.state() == mac::MacState::kControlHold)
                   : u.voice_active;
    if (!u.fch_on) {
      u.fch_sir_linear = 0.0;
      continue;
    }
    // Power control tracks the *local-mean* channel (path loss + shadowing):
    // the paper assigns the fast-fading component to the adaptive PHY
    // ("the fast fading component (Xl) is handled by the VTAOC system"),
    // and a per-frame loop that chased Rayleigh fades would attempt the
    // divergent E[1/h] inversion.
    if (u.is_data && !u.forward_dir) {
      // Reverse-link data user: control the mobile TX (pilot) power from the
      // FCH Eb/I0 achieved at the primary BS.
      const std::size_t prim = u.active_set.primary();
      const double fch_tx =
          u.rl_pc.power_watt() * config_.admission.zeta_fch_pilot_ratio;
      const double sir =
          fch_tx * state_.gain_mean(i, prim) * fch_pg_ /
          std::max(stations_[station_index(prim, u.carrier)].received_w, kTiny) *
          u.active_set.reverse_adjustment();
      u.fch_sir_linear = std::max(sir, kTiny);
      u.rl_pc.update(common::linear_to_db(u.fch_sir_linear));
      if (u.rl_pc.saturated() && !in_warmup()) ++metrics_.mobile_power_saturations;
    } else {
      // Forward FCH power control (voice users and forward data users).
      const std::size_t prim = u.active_set.primary();
      const double sir = u.fl_pc.power_watt() * state_.gain_mean(i, prim) * fch_pg_ /
                         std::max(u.fwd_interference_eff_w, kTiny);
      u.fch_sir_linear = std::max(sir, kTiny);
      const double sir_db = common::linear_to_db(u.fch_sir_linear);
      u.fl_pc.update(sir_db);
      if (u.fl_pc.saturated() && !in_warmup()) ++metrics_.bs_power_saturations;
      if (!u.is_data && !in_warmup()) {
        metrics_.voice_sir_error_db.add(sir_db - config_.radio.fch_ebio_target_db);
      }
    }
    // Reverse-link voice/forward-data users still transmit a reverse pilot +
    // FCH; track its power with the reverse loop as well.
    if (!u.is_data || u.forward_dir) {
      const std::size_t prim = u.active_set.primary();
      const double fch_tx =
          u.rl_pc.power_watt() * config_.admission.zeta_fch_pilot_ratio;
      const double sir =
          fch_tx * state_.gain_mean(i, prim) * fch_pg_ /
          std::max(stations_[station_index(prim, u.carrier)].received_w, kTiny) *
          u.active_set.reverse_adjustment();
      u.rl_pc.update(common::linear_to_db(std::max(sir, kTiny)));
    }
  }
}

void Simulator::step_power_control_fast() {
  // Pass A -- scalar SIR measurement.  Same branch structure and arithmetic
  // as the default loop; every measured SIR lands in a contiguous lane
  // instead of converting to dB inline.  All reads are last frame's powers
  // (received_w, fwd_interference_eff_w, power_watt caches), so deferring
  // the loop updates to pass C changes nothing.
  pc_entries_.clear();
  pc_sir_linear_.clear();
  for (std::size_t i = 0; i < users_.size(); ++i) {
    User& u = users_[i];
    u.fch_on = u.is_data
                   ? (u.has_pending || u.burst.active ||
                      u.mac.state() == mac::MacState::kActive ||
                      u.mac.state() == mac::MacState::kControlHold)
                   : u.voice_active;
    if (!u.fch_on) {
      u.fch_sir_linear = 0.0;
      continue;
    }
    if (u.is_data && !u.forward_dir) {
      const std::size_t prim = u.active_set.primary();
      const double fch_tx =
          u.rl_pc.power_watt() * config_.admission.zeta_fch_pilot_ratio;
      const double sir =
          fch_tx * state_.gain_mean(i, prim) * fch_pg_ /
          std::max(stations_[station_index(prim, u.carrier)].received_w, kTiny) *
          u.active_set.reverse_adjustment();
      u.fch_sir_linear = std::max(sir, kTiny);
      pc_entries_.push_back({static_cast<std::uint32_t>(i), PcKind::kRlData});
      pc_sir_linear_.push_back(u.fch_sir_linear);
    } else {
      const std::size_t prim = u.active_set.primary();
      const double sir = u.fl_pc.power_watt() * state_.gain_mean(i, prim) * fch_pg_ /
                         std::max(u.fwd_interference_eff_w, kTiny);
      u.fch_sir_linear = std::max(sir, kTiny);
      pc_entries_.push_back({static_cast<std::uint32_t>(i), PcKind::kForward});
      pc_sir_linear_.push_back(u.fch_sir_linear);
    }
    if (!u.is_data || u.forward_dir) {
      const std::size_t prim = u.active_set.primary();
      const double fch_tx =
          u.rl_pc.power_watt() * config_.admission.zeta_fch_pilot_ratio;
      const double sir =
          fch_tx * state_.gain_mean(i, prim) * fch_pg_ /
          std::max(stations_[station_index(prim, u.carrier)].received_w, kTiny) *
          u.active_set.reverse_adjustment();
      pc_entries_.push_back({static_cast<std::uint32_t>(i), PcKind::kRlPilot});
      pc_sir_linear_.push_back(std::max(sir, kTiny));
    }
  }

  // Pass B -- one SIMD batch for every linear -> dB conversion this frame.
  const std::size_t n = pc_entries_.size();
  pc_sir_db_.resize(n);
  kernels::linear_to_db_lane(pc_sir_linear_.data(), pc_sir_db_.data(), n);

  // Pass C -- scalar loop stepping + saturation/voice metrics, ascending
  // user order (the entry order), queueing the dBm -> W refresh.
  pc_dbm_.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    User& u = users_[pc_entries_[j].user];
    const double sir_db = pc_sir_db_[j];
    switch (pc_entries_[j].kind) {
      case PcKind::kRlData:
        u.rl_pc.update_db(sir_db);
        if (u.rl_pc.saturated() && !in_warmup()) ++metrics_.mobile_power_saturations;
        pc_dbm_[j] = u.rl_pc.power_dbm() - 30.0;  // dBm -> dBW for the lane
        break;
      case PcKind::kForward:
        u.fl_pc.update_db(sir_db);
        if (u.fl_pc.saturated() && !in_warmup()) ++metrics_.bs_power_saturations;
        if (!u.is_data && !in_warmup()) {
          metrics_.voice_sir_error_db.add(sir_db - config_.radio.fch_ebio_target_db);
        }
        pc_dbm_[j] = u.fl_pc.power_dbm() - 30.0;
        break;
      case PcKind::kRlPilot:
        u.rl_pc.update_db(sir_db);
        pc_dbm_[j] = u.rl_pc.power_dbm() - 30.0;
        break;
    }
  }

  // Pass D -- one SIMD batch for every dB -> W refresh, then commit the
  // cached wattages.  Nothing reads power_watt() between update_db and here.
  pc_watt_.resize(n);
  kernels::db_to_linear_lane(pc_dbm_.data(), pc_watt_.data(), n);
  for (std::size_t j = 0; j < n; ++j) {
    User& u = users_[pc_entries_[j].user];
    if (pc_entries_[j].kind == PcKind::kForward) {
      u.fl_pc.set_power_watt(pc_watt_[j]);
    } else {
      u.rl_pc.set_power_watt(pc_watt_[j]);
    }
  }
}

void Simulator::step_traffic() {
  const bool ramped = config_.load_ramp.enabled();
  const bool external = traffic_mode_ == TrafficMode::kExternal;
  for (auto& u : users_) {
    if (u.voice) {
      u.voice_active = u.voice->step(config_.frame_s);
    }
    if (u.data) {
      // Arrivals come from the user's Pareto source (internal mode) or the
      // injection buffer the service filled before this frame (external
      // mode); either way they enter the queue HERE, in ascending user
      // order, because step_power_control() already read has_pending this
      // frame -- injecting at submit time would perturb the FCH gating.
      std::optional<double> bits;
      if (external) {
        double& slot = injected_bits_[static_cast<std::size_t>(u.id)];
        if (slot >= 0.0) {
          bits = slot;
          slot = -1.0;
        }
      } else {
        // Flash-crowd knob: the ramp multiplies the arrival intensity of
        // data users homed in the ramped cells by scaling the reading-time
        // clock.
        const double dt =
            ramped ? config_.frame_s * config_.load_ramp.scale(now_s_, u.home_cell)
                   : config_.frame_s;
        if (const auto bytes = u.data->step(dt)) bits = *bytes * 8.0;
      }
      if (bits) {
        WCDMA_DEBUG_ASSERT(!u.has_pending && !u.burst.active);
        u.has_pending = true;
        u.pending_bits = *bits;
        u.pending_arrival_s = now_s_;
        queues_.add(u.id, u.carrier, u.forward_dir);
        if (!in_warmup()) ++metrics_.requests_seen;
        if (arrival_observer_) arrival_observer_(u.id, *bits);
      }
      u.mac.step(config_.frame_s, u.burst.active && u.burst.setup_left_s <= 0.0);
    }
  }
}

double Simulator::sch_mean_csi(const User& u) const {
  // Eq. (3)-(5): the SCH runs gamma_s above the FCH symbol operating point;
  // the local-mean SCH CSI follows the *achieved* FCH Eb/I0 (power control
  // holds it near target; lag/caps show up as lower CSI).
  const double fch_es =
      std::max(u.fch_sir_linear, 0.05 * fch_sir_target_) * config_.spreading.fch_throughput;
  return config_.spreading.gamma_s * fch_es;
}

double Simulator::delta_beta(const User& u) const {
  const double eps = std::max(sch_mean_csi(u), 1e-6);
  double beta_s;
  if (u.fixed) {
    beta_s = policy_.fixed_mode_avg_throughput_rayleigh(eps, u.fixed->fixed_mode());
  } else {
    beta_s = policy_.avg_throughput_rayleigh(eps);
  }
  // Clamp: a zero average throughput would make the request unschedulable
  // and Eq. 24 ill-defined; floor at 2% of the FCH throughput.
  beta_s = std::max(beta_s, 0.02 * config_.spreading.fch_throughput);
  return beta_s / config_.spreading.fch_throughput;
}

int Simulator::mobile_tx_upper_bound(const User& u) const {
  // Reverse-link SGR cap from the mobile's power budget: total TX =
  // pilot * (1 + zeta + gamma_s * m * zeta) <= max.
  const double pilot = u.rl_pc.power_watt();
  const double max_w = mobile_max_w_;
  const double zeta = config_.admission.zeta_fch_pilot_ratio;
  const double room = max_w / std::max(pilot, kTiny) - 1.0 - zeta;
  if (room <= 0.0) return 0;
  return static_cast<int>(std::floor(room / (config_.spreading.gamma_s * zeta)));
}

std::size_t Simulator::coverage_bin(const User& u) const {
  const std::size_t prim = u.active_set.primary();
  const double d = layout_.distance_to_cell(u.mobility->position(), prim);
  const double frac = d / (1.2 * layout_.cell_radius_m());
  const auto bin = static_cast<std::size_t>(frac * static_cast<double>(kCoverageBins));
  return std::min(bin, kCoverageBins - 1);
}

void Simulator::build_frame_context() {
  admission::FrameContext& ctx = frame_ctx_;
  ctx.now_s = now_s_;
  ctx.num_cells = layout_.num_cells();
  ctx.carriers = config_.placement.carriers;
  ctx.p_max_watt = config_.radio.bs_max_power_w;
  ctx.l_max_watt = l_max_w_;
  ctx.gamma_s = config_.spreading.gamma_s;
  ctx.kappa_linear = common::db_to_linear(config_.admission.kappa_margin_db);
  ctx.objective = config_.admission.objective;
  ctx.penalty = config_.admission.penalty;
  ctx.timers = config_.mac_timers;
  ctx.fch_bit_rate = config_.spreading.fch_bit_rate;
  ctx.min_burst_s = config_.admission.min_burst_s;
  ctx.max_sgr = config_.spreading.max_sgr;

  ctx.forward_load_watt.resize(stations_.size());
  ctx.reverse_interference_watt.resize(stations_.size());
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    ctx.forward_load_watt[s] = stations_[s].prev_forward_w;
    ctx.reverse_interference_watt[s] = stations_[s].received_w;
  }

  // One request bucket per (carrier, direction) scheduling round, each in
  // ascending user-id order -- exactly the subset (and subset order) the
  // legacy O(users) scan produced for that round.
  ctx.requests.clear();
  pending_users_.clear();
  for (int c = 0; c < config_.placement.carriers; ++c) {
    for (const bool fwd : {true, false}) {
      const std::size_t start = ctx.requests.size();
      for (const int user_id : queues_.bucket(fwd, c)) {
        User& u = users_[static_cast<std::size_t>(user_id)];
        WCDMA_DEBUG_ASSERT(u.is_data && u.has_pending && !u.burst.active);
        WCDMA_DEBUG_ASSERT(u.carrier == c && u.forward_dir == fwd);
        if (now_s_ < u.next_eligible_s) continue;  // SCRM persistence gate

        admission::FrameRequest r;
        r.user = u.id;
        r.carrier = u.carrier;
        r.forward = u.forward_dir;
        r.q_bits = u.pending_bits;
        r.waiting_s = now_s_ - u.pending_arrival_s;
        r.priority = u.priority;
        r.delta_beta = delta_beta(u);
        r.fch_power_watt = u.fl_pc.power_watt();
        r.pilot_tx_watt = u.rl_pc.power_watt();
        r.alpha_fl = u.active_set.forward_adjustment();
        r.alpha_rl = u.active_set.reverse_adjustment();
        r.zeta = config_.admission.zeta_fch_pilot_ratio;
        const std::size_t i = static_cast<std::size_t>(u.id);
        const auto& members = u.active_set.members();
        const std::size_t reduced_n = u.active_set.reduced_count();
        for (std::size_t j = 0; j < reduced_n; ++j) {
          r.reduced_set.push_back({members[j], state_.gain_mean(i, members[j])});
        }
        if (u.forward_dir) {
          r.tx_cap = config_.spreading.max_sgr;
        } else {
          // SCRM: up to 8 strongest forward pilots (footnote 6), plus the
          // reverse SGR cap from the mobile's power budget.
          std::vector<std::pair<double, std::size_t>> ranked;
          const std::uint32_t* cand = state_.candidates_begin(i);
          const std::size_t n_cand = state_.candidate_count(i);
          for (std::size_t n = 0; n < n_cand; ++n) {
            ranked.push_back({state_.pilot_fl(i, cand[n]), cand[n]});
          }
          std::sort(ranked.begin(), ranked.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });
          const std::size_t n_report = std::min<std::size_t>(ranked.size(), 8);
          for (std::size_t n = 0; n < n_report; ++n) {
            r.scrm_pilots.push_back({ranked[n].second, ranked[n].first});
          }
          r.tx_cap = mobile_tx_upper_bound(u);
        }
        ctx.requests.push_back(std::move(r));
        pending_users_.push_back(&u);
      }
      round_ranges_[round_index(c, fwd)] = {start, ctx.requests.size()};
    }
  }
}

void Simulator::run_admission(mac::LinkDirection direction, int carrier) {
  // A request snapshot matches exactly one (carrier, direction) round per
  // frame, so rounds never see each other's requests.  The round's requests
  // sit contiguously in frame_ctx_.requests (built bucket-by-bucket).
  const bool fwd = direction == mac::LinkDirection::kForward;
  const auto [start, end] = round_ranges_[round_index(carrier, fwd)];
  if (start == end) return;
  round_scratch_.clear();
  for (std::size_t i = start; i < end; ++i) round_scratch_.push_back(i);

  const std::vector<admission::PolicyGrant> grants =
      admission_policy_->decide(frame_ctx_, direction, carrier, round_scratch_);

  // Scatter the grants, then apply in request order (deterministic).  A
  // policy may only grant requests it was handed this round; the scratch
  // arrays are round-local (indexed relative to `start`).
  grant_m_scratch_.assign(end - start, 0);
  grant_carrier_scratch_.assign(end - start, carrier);
  for (const admission::PolicyGrant& g : grants) {
    WCDMA_ASSERT(g.request >= start && g.request < end &&
                 "policy granted a request outside its round");
    WCDMA_ASSERT(g.m > 0 && g.m <= frame_ctx_.requests[g.request].tx_cap);
    WCDMA_ASSERT(g.carrier >= 0 && g.carrier < config_.placement.carriers);
    grant_m_scratch_[g.request - start] = g.m;
    grant_carrier_scratch_[g.request - start] = g.carrier;
  }

  int granted = 0;
  for (std::size_t idx = start; idx < end; ++idx) {
    User& u = *pending_users_[idx];
    const int m = grant_m_scratch_[idx - start];
    const int serving_carrier = grant_carrier_scratch_[idx - start];
    if (m <= 0) {
      u.next_eligible_s = now_s_ + config_.admission.scrm_retry_s;
      continue;
    }
    // The request leaves its queue the moment it becomes a burst; on an
    // inter-carrier hand-down this must happen before the carrier moves.
    queues_.remove(u.id, u.carrier, u.forward_dir);
    if (serving_carrier != u.carrier) {
      // Inter-carrier hand-down: the burst (and the user's FCH) moves to
      // the granting carrier's interference domain.
      u.carrier = serving_carrier;
      if (!in_warmup()) ++metrics_.carrier_hand_downs;
    }
    const double waited = now_s_ - u.pending_arrival_s;
    u.burst.active = true;
    u.burst.m = m;
    u.burst.remaining_bits = u.pending_bits;
    u.burst.arrival_s = u.pending_arrival_s;
    u.burst.setup_left_s = mac::setup_delay_for_wait(config_.mac_timers, waited);
    u.burst.distance_bin = coverage_bin(u);
    u.has_pending = false;
    ++granted;
    if (!in_warmup()) {
      ++metrics_.grants;
      metrics_.queue_delay_s.add(waited);
      metrics_.granted_sgr.add(static_cast<double>(m));
    }
  }
  if (granted == 0 && !in_warmup()) ++metrics_.reject_rounds;
}

void Simulator::step_transmission() {
  for (std::size_t i = 0; i < users_.size(); ++i) {
    User& u = users_[i];
    if (!u.burst.active) continue;
    if (u.burst.setup_left_s > 0.0) {
      u.burst.setup_left_s -= config_.frame_s;
      continue;
    }
    // Instantaneous SCH CSI (Eq. 3): gamma = Xl * eps, the Rayleigh power
    // factor of the serving link over the local-mean operating point that
    // power control maintains.
    const std::size_t prim = u.active_set.primary();
    const double true_csi = sch_mean_csi(u) * state_.fading_factor(i, prim);
    phy::FrameOutcome out;
    if (u.fixed) {
      // Non-adaptive baseline: the whole frame is committed to one mode on
      // frame-old CSI; staleness produces real BER violations.
      out = u.fixed->on_frame(true_csi);
    } else {
      // Symbol-by-symbol VTAOC (Section 2.2): a 20 ms frame spans many
      // per-symbol adaptation decisions, so the frame's delivered
      // throughput is the Rayleigh ensemble average at the local-mean
      // operating point, and the constant-BER property holds by
      // construction (footnote 1).  The instantaneous selection below is
      // kept as the representative symbol for mode-occupancy statistics.
      const phy::ModeDecision representative = policy_.select(true_csi);
      out.mode = representative.mode;
      out.throughput = policy_.avg_throughput_rayleigh(sch_mean_csi(u));
      out.realized_ber = policy_.target_ber();
      out.ber_violation = false;
    }
    if (!in_warmup()) {
      ++metrics_.sch_frames;
      if (out.mode == 0) {
        ++metrics_.sch_outage_frames;
      } else if (static_cast<std::size_t>(out.mode) < metrics_.mode_frames.size()) {
        ++metrics_.mode_frames[static_cast<std::size_t>(out.mode)];
      }
      if (out.ber_violation) ++metrics_.ber_violation_frames;
    }
    // Fixed-PHY frames transmitted far above the BER target (stale feedback
    // during a fade) blow their error budget and are retransmitted by ARQ:
    // no payload drains.  A 2x margin reflects the FEC slack around the
    // operating point; marginal exceedances still decode.  The adaptive
    // VTAOC path never erases (constant BER by construction).
    const bool frame_erased =
        out.mode > 0 && out.realized_ber > 2.0 * policy_.target_ber();
    const bool delivers = u.fixed ? (out.mode > 0 && !frame_erased) : true;
    if (delivers) {
      // Eq. 4: Rs = Rf * m * beta_s / beta_f, integrated over the frame.
      const double rate = config_.spreading.fch_bit_rate * u.burst.m * out.throughput /
                          config_.spreading.fch_throughput;
      const double bits = rate * config_.frame_s;
      u.burst.remaining_bits -= bits;
      if (!in_warmup()) metrics_.data_bits_delivered += std::min(bits, bits + u.burst.remaining_bits);
    }
    if (u.burst.remaining_bits <= 0.0) {
      const double delay = now_s_ + config_.frame_s - u.burst.arrival_s;
      if (!in_warmup()) {
        metrics_.burst_delay_s.add(delay);
        metrics_.delay_hist.add(delay);
        metrics_.delay_by_distance[u.burst.distance_bin].add(delay);
      }
      u.burst = Burst{};
      // External mode never consumed the source's arrival cycle, so there
      // is no in-flight burst to complete on it.
      if (traffic_mode_ == TrafficMode::kInternal) u.data->notify_burst_done();
    }
  }
}

void Simulator::update_transmit_powers() {
  const double idle_w = config_.radio.pilot_power_w + config_.radio.common_power_w;
  for (auto& bs : stations_) bs.forward_w = idle_w;

  for (std::size_t i = 0; i < users_.size(); ++i) {
    User& u = users_[i];
    // Data users between bursts hold only the low-rate DCCH (Control Hold,
    // Fig. 3): a fraction of the full-rate FCH power.  The full FCH comes
    // up with the burst; the measurement sub-layer prices SCH grants off
    // the full-rate FCH power, which is what will actually be transmitted.
    const bool bursting = u.burst.active;
    const double fch_scale =
        (u.is_data && !bursting) ? config_.radio.dcch_fraction : 1.0;

    // Forward contributions: FCH from every active-set leg; SCH (forward
    // bursts) from every reduced-active-set leg at gamma_s * m * FCH power
    // (Eq. 5-6).
    if (u.fch_on && (!u.is_data || u.forward_dir)) {
      const double fch_w = u.fl_pc.power_watt() * fch_scale;
      const auto& members = u.active_set.members();
      for (std::size_t k : members)
        stations_[station_index(k, u.carrier)].forward_w += fch_w;
      if (bursting && u.is_data) {
        const double sch_w =
            config_.spreading.gamma_s * u.burst.m * u.fl_pc.power_watt();
        const std::size_t reduced_n = u.active_set.reduced_count();
        for (std::size_t j = 0; j < reduced_n; ++j)
          stations_[station_index(members[j], u.carrier)].forward_w += sch_w;
      }
    }

    // Mobile TX: pilot + FCH/DCCH (+ SCH for reverse bursts).
    double tx = 0.0;
    if (u.fch_on) {
      const double pilot = u.rl_pc.power_watt();
      tx = pilot * (1.0 + config_.admission.zeta_fch_pilot_ratio * fch_scale);
      if (bursting && u.is_data && !u.forward_dir) {
        tx += pilot * config_.admission.zeta_fch_pilot_ratio * config_.spreading.gamma_s *
              u.burst.m;
      }
      const double cap = mobile_max_w_;
      if (tx > cap) {
        tx = cap;
        if (!in_warmup()) ++metrics_.mobile_power_saturations;
      }
    }
    prev_tx_w_[i] = tx;
    user_carrier_[i] = u.carrier;
    far_field_.on_user_tx(i, tx, u.carrier);
  }

  for (auto& bs : stations_) {
    if (bs.forward_w > config_.radio.bs_max_power_w) {
      // Scale traffic power down to the cap (pilot/common are protected).
      const double traffic = bs.forward_w - idle_w;
      const double allowed = config_.radio.bs_max_power_w - idle_w;
      WCDMA_DEBUG_ASSERT(traffic > 0.0);
      bs.forward_w = idle_w + std::min(traffic, allowed);
      if (!in_warmup()) ++metrics_.bs_power_saturations;
    }
    bs.prev_forward_w = bs.forward_w;
  }
}

void Simulator::collect_frame_metrics() {
  if (in_warmup()) return;
  metrics_.observed_s += config_.frame_s;
  for (const auto& bs : stations_) {
    metrics_.forward_load_fraction.add(bs.forward_w / config_.radio.bs_max_power_w);
    metrics_.reverse_rise_db.add(common::linear_to_db(bs.received_w / noise_w_));
  }
  // The queues maintain exactly the (has_pending && !burst.active) set the
  // legacy full scan counted; pending_requests() keeps the O(users)
  // reference for the equivalence tests.
  metrics_.pending_queue_len.add(static_cast<double>(queues_.total_pending()));
}

void Simulator::inject_request(std::size_t user, double bits) {
  WCDMA_ASSERT(user < users_.size());
  const User& u = users_[user];
  WCDMA_ASSERT(u.is_data && "burst requests are data-user events");
  WCDMA_ASSERT(!u.has_pending && !u.burst.active && injected_bits_[user] < 0.0);
  WCDMA_ASSERT(bits > 0.0);
  injected_bits_[user] = bits;
}

void Simulator::cancel_request(std::size_t user) {
  WCDMA_ASSERT(user < users_.size());
  User& u = users_[user];
  WCDMA_ASSERT(u.is_data);
  if (injected_bits_[user] >= 0.0) {
    // Buffered this frame but not yet queued: the release wins.
    injected_bits_[user] = -1.0;
    return;
  }
  WCDMA_ASSERT(u.has_pending && !u.burst.active);
  queues_.remove(u.id, u.carrier, u.forward_dir);
  u.has_pending = false;
  u.pending_bits = 0.0;
  // Internal mode: the source generated this burst and is waiting for it to
  // finish; complete the cycle so its arrival clock restarts.  External
  // sources never consumed an arrival, so there is nothing to complete.
  if (traffic_mode_ == TrafficMode::kInternal && u.data) u.data->notify_burst_done();
}

void Simulator::set_user_carrier(std::size_t user, int carrier) {
  WCDMA_ASSERT(user < users_.size());
  WCDMA_ASSERT(carrier >= 0 && carrier < config_.placement.carriers);
  User& u = users_[user];
  // Carrier moves are only legal while the user holds no queue membership:
  // the request buckets are keyed by (carrier, direction).
  WCDMA_ASSERT(u.is_data && !u.has_pending && !u.burst.active);
  u.carrier = carrier;
}

namespace {
constexpr std::uint32_t kSnapshotMagic = 0x504E5357;  // "WSNP" little-endian
// v2: trailing crc32 footer over the whole payload (header included), so a
// bit-flipped checkpoint is refused by checksum instead of parse luck.
constexpr std::uint32_t kSnapshotVersion = 2;
constexpr std::size_t kSnapshotFooterBytes = 4;
}  // namespace

std::vector<std::uint8_t> Simulator::snapshot() const {
  validate_invariants();
  common::BinaryWriter w;
  w.u32(kSnapshotMagic);
  w.u32(kSnapshotVersion);
  // Config fingerprint: restore() only accepts archives taken from a
  // simulator built on the same world shape, seed, and policy stack --
  // everything else about the config is reproduced by construction.
  w.u64(config_.seed);
  w.u64(users_.size());
  w.u64(layout_.num_cells());
  w.i32(config_.placement.carriers);
  w.f64(config_.frame_s);
  w.str(admission_policy_name_);
  w.str(csi_->name());

  w.f64(now_s_);
  w.i64(frame_count_);
  w.f64(far_refresh_left_s_);
  rng_.save(w);

  w.u64(stations_.size());
  for (const BaseStation& bs : stations_) {
    w.f64(bs.forward_w);
    w.f64(bs.prev_forward_w);
    w.f64(bs.received_w);
  }
  w.vec_f64(prev_tx_w_);
  w.vec_i32(user_carrier_);
  w.vec_f64(injected_bits_);
  queues_.save(w);

  w.u64(users_.size());
  for (const User& u : users_) {
    w.i32(u.carrier);
    u.mobility->save(w);
    u.active_set.save(w);
    u.fl_pc.save(w);
    u.rl_pc.save(w);
    if (u.voice) u.voice->save(w);
    if (u.data) u.data->save(w);
    u.mac.save(w);
    if (u.adapter) u.adapter->save(w);
    if (u.fixed) u.fixed->save(w);
    w.boolean(u.voice_active);
    w.boolean(u.fch_on);
    w.boolean(u.has_pending);
    w.f64(u.pending_bits);
    w.f64(u.pending_arrival_s);
    w.f64(u.next_eligible_s);
    w.boolean(u.burst.active);
    w.i32(u.burst.m);
    w.f64(u.burst.remaining_bits);
    w.f64(u.burst.arrival_s);
    w.f64(u.burst.setup_left_s);
    w.u64(u.burst.distance_bin);
    w.f64(u.fwd_interference_w);
    w.f64(u.fwd_interference_eff_w);
    w.f64(u.fch_sir_linear);
  }

  state_.save(w);
  far_field_.save(w);
  csi_->save_state(w);
  admission_policy_->save_state(w);
  metrics_.save(w);
  const std::uint32_t crc = common::crc32(w.bytes());
  w.u32(crc);
  return w.take();
}

bool Simulator::check_snapshot_header(common::BinaryReader& r) const {
  if (r.u32() != kSnapshotMagic || r.u32() != kSnapshotVersion) return false;
  if (r.u64() != config_.seed) return false;
  if (r.u64() != users_.size()) return false;
  if (r.u64() != layout_.num_cells()) return false;
  if (r.i32() != config_.placement.carriers) return false;
  // lint-allow(DET-FLOAT-EQ): config fingerprint; any bit difference must refuse
  if (r.f64() != config_.frame_s) return false;
  if (r.str() != admission_policy_name_) return false;
  if (r.str() != csi_->name()) return false;
  return r.ok();
}

bool Simulator::restore(const std::vector<std::uint8_t>& bytes) {
  // Footer first: the archive ends in crc32(payload), so a bit flip
  // anywhere -- or a truncation, which shears the footer off its payload --
  // is refused by checksum before a single field is parsed.  The CRC check,
  // like header rejection, is mutation-free; the body is then restored
  // transactionally against a rollback snapshot, so even an archive that
  // passes the checksum but fails structurally (tests truncate at every
  // 64-byte boundary and bit-flip every stride) leaves the simulator
  // exactly as it was.
  if (bytes.size() <= kSnapshotFooterBytes) return false;
  const std::size_t payload = bytes.size() - kSnapshotFooterBytes;
  std::uint32_t stored = 0;
  for (std::size_t i = 0; i < kSnapshotFooterBytes; ++i) {
    stored |= static_cast<std::uint32_t>(bytes[payload + i]) << (8 * i);
  }
  if (common::crc32(bytes.data(), payload) != stored) return false;
  common::BinaryReader r(bytes.data(), payload);
  if (!check_snapshot_header(r)) return false;
  const std::vector<std::uint8_t> backup = snapshot();
  if (restore_body(r)) {
    validate_invariants();
    return true;
  }
  common::BinaryReader back(backup.data(), backup.size() - kSnapshotFooterBytes);
  const bool rolled_back = check_snapshot_header(back) && restore_body(back);
  WCDMA_ASSERT(rolled_back && "rollback of a just-taken snapshot must succeed");
  return false;
}

bool Simulator::restore_body(common::BinaryReader& r) {
  now_s_ = r.f64();
  frame_count_ = r.i64();
  far_refresh_left_s_ = r.f64();
  rng_.load(r);

  if (r.seq(24) != stations_.size()) return false;
  for (BaseStation& bs : stations_) {
    bs.forward_w = r.f64();
    bs.prev_forward_w = r.f64();
    bs.received_w = r.f64();
  }
  {
    std::vector<double> tx;
    r.vec_f64(tx);
    if (!r.ok() || tx.size() != prev_tx_w_.size()) return false;
    prev_tx_w_ = std::move(tx);
  }
  {
    std::vector<int> carriers;
    r.vec_i32(carriers);
    if (!r.ok() || carriers.size() != user_carrier_.size()) return false;
    user_carrier_ = std::move(carriers);
  }
  {
    std::vector<double> inj;
    r.vec_f64(inj);
    if (!r.ok() || inj.size() != injected_bits_.size()) return false;
    injected_bits_ = std::move(inj);
  }
  if (!queues_.load(r)) return false;

  if (r.seq(1) != users_.size()) return false;
  for (User& u : users_) {
    u.carrier = r.i32();
    if (!u.mobility->load(r)) return false;
    u.active_set.load(r);
    u.fl_pc.load(r);
    u.rl_pc.load(r);
    if (u.voice) u.voice->load(r);
    if (u.data) u.data->load(r);
    u.mac.load(r);
    if (u.adapter) u.adapter->load(r);
    if (u.fixed) u.fixed->load(r);
    u.voice_active = r.boolean();
    u.fch_on = r.boolean();
    u.has_pending = r.boolean();
    u.pending_bits = r.f64();
    u.pending_arrival_s = r.f64();
    u.next_eligible_s = r.f64();
    u.burst.active = r.boolean();
    u.burst.m = r.i32();
    u.burst.remaining_bits = r.f64();
    u.burst.arrival_s = r.f64();
    u.burst.setup_left_s = r.f64();
    u.burst.distance_bin = static_cast<std::size_t>(r.u64());
    u.fwd_interference_w = r.f64();
    u.fwd_interference_eff_w = r.f64();
    u.fch_sir_linear = r.f64();
    if (!r.ok()) return false;
  }

  if (!state_.load(r)) return false;
  if (!far_field_.load(r)) return false;
  if (!csi_->load_state(r)) return false;
  if (!admission_policy_->load_state(r)) return false;
  if (!metrics_.load(r)) return false;
  return r.ok() && r.at_end();
}

bool Simulator::check_invariants(std::string* why) const {
  const auto fail = [why](std::string msg) {
    if (why) *why = std::move(msg);
    return false;
  };

  // SoA lane shapes vs the world shape fixed at construction.
  const std::size_t n_users = users_.size();
  const std::size_t n_cells = layout_.num_cells();
  const auto n_carriers = static_cast<std::size_t>(config_.placement.carriers);
  if (state_.num_users() != n_users || state_.num_cells() != n_cells)
    return fail("FrameState lane shape diverged from the user/cell counts");
  if (prev_tx_w_.size() != n_users || user_carrier_.size() != n_users ||
      injected_bits_.size() != n_users)
    return fail("per-user SoA mirrors diverged from the population size");
  if (stations_.size() != n_cells * n_carriers)
    return fail("station table size diverged from cells x carriers");

  // Request-queue buckets vs the per-user burst state they index.
  if (queues_.carriers() != config_.placement.carriers)
    return fail("request-queue carrier count diverged from the config");
  std::size_t queued = 0;
  for (int c = 0; c < config_.placement.carriers; ++c) {
    for (const bool forward : {true, false}) {
      const std::vector<int>& b = queues_.bucket(forward, c);
      int prev = -1;
      for (const int id : b) {
        if (id <= prev)
          return fail("request bucket is not strictly ascending");
        prev = id;
        if (id < 0 || static_cast<std::size_t>(id) >= n_users)
          return fail("request bucket holds an out-of-range user id");
        const User& u = users_[static_cast<std::size_t>(id)];
        if (!u.is_data || !u.has_pending || u.burst.active ||
            u.forward_dir != forward || u.carrier != c)
          return fail("user " + std::to_string(id) +
                      "'s burst state disagrees with its queue bucket");
      }
      queued += b.size();
    }
  }
  if (static_cast<int>(queued) != pending_requests())
    return fail("queue bucket total diverged from the O(users) pending scan");

  // CSR candidate index vs the provider's live candidate sets + epoch.
  if (state_.has_candidate_index() && !state_.candidate_index_matches(*csi_))
    return fail("CSR candidate index is stale vs the provider's sets/epoch");

  // Far-field TX buckets vs a from-scratch aggregation.
  if (far_field_.active() && !far_field_.tx_buckets_match_rebuild(1e-9))
    return fail("far-field TX buckets diverged from a fresh aggregation");

  if (why) why->clear();
  return true;
}

void Simulator::validate_invariants() const {
#ifndef NDEBUG
  std::string why;
  WCDMA_DCHECK(check_invariants(&why), why.c_str());
#endif
}

double Simulator::forward_power_w(std::size_t cell, int carrier) const {
  WCDMA_ASSERT(cell < layout_.num_cells());
  WCDMA_ASSERT(carrier >= 0 && carrier < config_.placement.carriers);
  return stations_[station_index(cell, carrier)].forward_w;
}

double Simulator::reverse_interference_w(std::size_t cell, int carrier) const {
  WCDMA_ASSERT(cell < layout_.num_cells());
  WCDMA_ASSERT(carrier >= 0 && carrier < config_.placement.carriers);
  return stations_[station_index(cell, carrier)].received_w;
}

cell::Point Simulator::user_position(std::size_t user) const {
  WCDMA_ASSERT(user < users_.size());
  return users_[user].mobility->position();
}

int Simulator::user_carrier(std::size_t user) const {
  WCDMA_ASSERT(user < users_.size());
  return users_[user].carrier;
}

std::size_t Simulator::user_home_cell(std::size_t user) const {
  WCDMA_ASSERT(user < users_.size());
  return users_[user].home_cell;
}

int Simulator::active_bursts() const {
  int n = 0;
  for (const auto& u : users_) n += u.burst.active ? 1 : 0;
  return n;
}

int Simulator::pending_requests() const {
  int n = 0;
  for (const auto& u : users_) n += (u.has_pending && !u.burst.active) ? 1 : 0;
  return n;
}

}  // namespace wcdma::sim
