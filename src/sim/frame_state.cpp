#include "src/sim/frame_state.hpp"

#include <cmath>

#include "src/sim/channel_state.hpp"

namespace wcdma::sim {

void FrameState::init(const cell::HexLayout* layout, const channel::PathLoss* path_loss,
                      const channel::ShadowingConfig& shadowing,
                      channel::FadingKind fading, double frame_s, int jakes_paths,
                      std::size_t num_users) {
  WCDMA_ASSERT(layout != nullptr && path_loss != nullptr);
  layout_ = layout;
  path_loss_ = path_loss;
  shadowing_ = shadowing;
  fading_kind_ = fading;
  frame_s_ = frame_s;
  jakes_paths_ = jakes_paths;
  num_users_ = num_users;
  num_cells_ = layout->num_cells();
  frame_ = 0;

  const std::size_t links = num_users_ * num_cells_;
  shadow_rng_.resize(links);
  shadow_db_.assign(links, 0.0);
  gain_mean_.assign(links, 0.0);
  pilot_fl_.assign(links, 0.0);
  if (fading_kind_ == channel::FadingKind::kAr1) {
    fade_rng_.resize(links);
    fade_re_.assign(links, 0.0);
    fade_im_.assign(links, 0.0);
    fade_frame_.assign(links, 0);
    fade_rho_.assign(num_users_, 0.0);
    fade_innovation_.assign(num_users_, 0.0);
  } else if (fading_kind_ == channel::FadingKind::kJakes) {
    jakes_.clear();
    jakes_.reserve(links);
    jakes_frame_.assign(links, 0);
  }
  candidate_epoch_ = ~std::uint64_t{0};
}

void FrameState::init_user(std::size_t user, const common::Rng& user_rng,
                           double doppler_hz) {
  // Stream discipline mirrors the legacy Link construction: link (user, k)
  // derives user_rng.fork(100 + k); its shadowing process consumes fork(1)
  // (one initial N(0, sigma) draw), its fading process fork(2).
  if (fading_kind_ == channel::FadingKind::kAr1) {
    const double rho = channel::Ar1Fading::correlation(doppler_hz, frame_s_);
    fade_rho_[user] = rho;
    fade_innovation_[user] = std::sqrt(std::max(0.0, 1.0 - rho * rho) * 0.5);
  }
  for (std::size_t k = 0; k < num_cells_; ++k) {
    const std::size_t idx = link_index(user, k);
    const common::Rng link_rng = user_rng.fork(100 + k);
    common::Rng srng = link_rng.fork(1);
    shadow_db_[idx] = srng.normal(0.0, shadowing_.sigma_db);
    shadow_rng_[idx] = srng;
    switch (fading_kind_) {
      case channel::FadingKind::kAr1: {
        common::Rng frng = link_rng.fork(2);
        // Stationary start h ~ CN(0, 1), drawn exactly as Ar1Fading's ctor.
        fade_re_[idx] = frng.normal(0.0, std::sqrt(0.5));
        fade_im_[idx] = frng.normal(0.0, std::sqrt(0.5));
        fade_rng_[idx] = frng;
        fade_frame_[idx] = 0;
        break;
      }
      case channel::FadingKind::kJakes:
        WCDMA_ASSERT(jakes_.size() == idx && "init_user must run in user order");
        jakes_.emplace_back(doppler_hz, link_rng.fork(2), jakes_paths_);
        jakes_frame_[idx] = 0;
        break;
      case channel::FadingKind::kNone:
        break;
    }
  }
}

void FrameState::step_user_links(std::size_t user, cell::Point pos, double moved_m,
                                 const std::size_t* cells, std::size_t count) {
  // One exp/sqrt pair per user: every link of a mobile travels the same
  // distance this frame (bit-identical to the per-link evaluation).
  const double rho = channel::Shadowing::correlation(shadowing_, moved_m);
  const double innovation = channel::Shadowing::innovation_sigma(shadowing_, rho);
  const std::size_t row = user * num_cells_;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t k = cells[i];
    const std::size_t idx = row + k;
    const double d = layout_->distance_to_cell(pos, k);
    shadow_db_[idx] = rho * shadow_db_[idx] + shadow_rng_[idx].normal(0.0, innovation);
    gain_mean_[idx] =
        path_loss_->gain_linear(d) * std::pow(10.0, shadow_db_[idx] / 10.0);
  }
}

double FrameState::fading_factor(std::size_t user, std::size_t cell) {
  const std::size_t idx = link_index(user, cell);
  switch (fading_kind_) {
    case channel::FadingKind::kAr1: {
      const double rho = fade_rho_[user];
      const double innovation = fade_innovation_[user];
      double re = fade_re_[idx], im = fade_im_[idx];
      common::Rng& rng = fade_rng_[idx];
      for (std::int64_t f = fade_frame_[idx]; f < frame_; ++f) {
        re = rho * re + rng.normal(0.0, innovation);
        im = rho * im + rng.normal(0.0, innovation);
      }
      fade_re_[idx] = re;
      fade_im_[idx] = im;
      fade_frame_[idx] = frame_;
      return re * re + im * im;
    }
    case channel::FadingKind::kJakes: {
      channel::JakesFading& j = jakes_[idx];
      for (std::int64_t f = jakes_frame_[idx]; f < frame_; ++f) j.step(frame_s_);
      jakes_frame_[idx] = frame_;
      return j.power_gain();
    }
    case channel::FadingKind::kNone:
      return 1.0;
  }
  return 1.0;  // unreachable
}

void FrameState::refresh_candidate_index(const ChannelStateProvider& provider) {
  if (provider.candidate_epoch() == candidate_epoch_) return;
  candidate_epoch_ = provider.candidate_epoch();

  csr_offsets_.assign(num_users_ + 1, 0);
  csr_cells_.clear();
  for (std::size_t u = 0; u < num_users_; ++u) {
    for (std::size_t k : provider.cells_for(u)) {
      csr_cells_.push_back(static_cast<std::uint32_t>(k));
    }
    csr_offsets_[u + 1] = static_cast<std::uint32_t>(csr_cells_.size());
  }

  // Transpose via counting sort: per-cell user lists come out ascending
  // because the forward pass visits users in ascending order.
  transpose_offsets_.assign(num_cells_ + 2, 0);
  for (std::uint32_t k : csr_cells_) ++transpose_offsets_[k + 2];
  for (std::size_t k = 2; k < transpose_offsets_.size(); ++k) {
    transpose_offsets_[k] += transpose_offsets_[k - 1];
  }
  transpose_users_.resize(csr_cells_.size());
  for (std::size_t u = 0; u < num_users_; ++u) {
    for (std::uint32_t o = csr_offsets_[u]; o < csr_offsets_[u + 1]; ++o) {
      transpose_users_[transpose_offsets_[csr_cells_[o] + 1]++] =
          static_cast<std::uint32_t>(u);
    }
  }
  transpose_offsets_.pop_back();
}

}  // namespace wcdma::sim
