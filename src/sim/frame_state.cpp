#include "src/sim/frame_state.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/fastmath.hpp"
#include "src/common/serialize.hpp"
#include "src/sim/channel_state.hpp"
#include "src/sim/kernels.hpp"

namespace wcdma::sim {

namespace {

using common::kExp2PerDb;  // one exp2 unit per dB, shared with fastmath

}  // namespace

void FrameState::init(const cell::HexLayout* layout, const channel::PathLoss* path_loss,
                      const channel::ShadowingConfig& shadowing,
                      channel::FadingKind fading, double frame_s, int jakes_paths,
                      std::size_t num_users) {
  WCDMA_ASSERT(layout != nullptr && path_loss != nullptr);
  layout_ = layout;
  path_loss_ = path_loss;
  shadowing_ = shadowing;
  fading_kind_ = fading;
  frame_s_ = frame_s;
  jakes_paths_ = jakes_paths;
  num_users_ = num_users;
  num_cells_ = layout->num_cells();
  frame_ = 0;

  const std::size_t links = num_users_ * num_cells_;
  shadow_rng_.resize(links);
  shadow_db_.assign(links, 0.0);
  fast_shadow_rng_.resize(num_users_);
  gain_mean_.assign(links, 0.0);
  pilot_fl_.assign(links, 0.0);
  far_fl_w_.assign(num_users_, 0.0);
  if (fading_kind_ == channel::FadingKind::kAr1) {
    fade_rng_.resize(links);
    fade_re_.assign(links, 0.0);
    fade_im_.assign(links, 0.0);
    fade_frame_.assign(links, 0);
    fade_rho_.assign(num_users_, 0.0);
    fade_innovation_.assign(num_users_, 0.0);
  } else if (fading_kind_ == channel::FadingKind::kJakes) {
    jakes_.clear();
    jakes_.reserve(links);
    jakes_frame_.assign(links, 0);
  }
  candidate_epoch_ = ~std::uint64_t{0};
}

void FrameState::init_user(std::size_t user, const common::Rng& user_rng,
                           double doppler_hz) {
  // Stream discipline mirrors the legacy Link construction: link (user, k)
  // derives user_rng.fork(100 + k); its shadowing process consumes fork(1)
  // (one initial N(0, sigma) draw), its fading process fork(2).
  if (fading_kind_ == channel::FadingKind::kAr1) {
    const double rho = channel::Ar1Fading::correlation(doppler_hz, frame_s_);
    fade_rho_[user] = rho;
    fade_innovation_[user] = std::sqrt(std::max(0.0, 1.0 - rho * rho) * 0.5);
  }
  // Fast-mode batch stream; an unused fork never perturbs the legacy
  // streams (fork() is const on the parent).
  fast_shadow_rng_[user] = user_rng.fork(7);
  for (std::size_t k = 0; k < num_cells_; ++k) {
    const std::size_t idx = link_index(user, k);
    const common::Rng link_rng = user_rng.fork(100 + k);
    common::Rng srng = link_rng.fork(1);
    shadow_db_[idx] = srng.normal(0.0, shadowing_.sigma_db);
    shadow_rng_[idx] = srng;
    switch (fading_kind_) {
      case channel::FadingKind::kAr1: {
        common::Rng frng = link_rng.fork(2);
        // Stationary start h ~ CN(0, 1), drawn exactly as Ar1Fading's ctor.
        fade_re_[idx] = frng.normal(0.0, std::sqrt(0.5));
        fade_im_[idx] = frng.normal(0.0, std::sqrt(0.5));
        fade_rng_[idx] = frng;
        fade_frame_[idx] = 0;
        break;
      }
      case channel::FadingKind::kJakes:
        WCDMA_ASSERT(jakes_.size() == idx && "init_user must run in user order");
        jakes_.emplace_back(doppler_hz, link_rng.fork(2), jakes_paths_);
        jakes_frame_[idx] = 0;
        break;
      case channel::FadingKind::kNone:
        break;
    }
  }
}

void FrameState::set_fast_math(bool on) {
  fast_math_ = on;
  if (!on) return;
  WCDMA_ASSERT(path_loss_ != nullptr && "set_fast_math requires init()");
  // Every registered path-loss model is affine in log10(d) (after the
  // near-field clamp): loss_db(d) = A + B log10(d), with (A, B) owned by
  // PathLoss itself.  Fold them once so the per-link evaluation is a
  // single fused exp2.
  const channel::PathLoss::AffineLog10 loss = path_loss_->affine_log10();
  fast_gain_bias_ = -kExp2PerDb * loss.a_db;
  fast_log2_slope_ = loss.b_db / 10.0;  // kExp2PerDb * B * log10(2) == B / 10
  fast_half_log2_slope_ = fast_log2_slope_ * 0.5;
  const double min_d = path_loss_->config().min_distance_m;
  fast_min_distance_sq_m_ = min_d * min_d;
  fast_inv_decorr_m_ = 1.0 / shadowing_.decorrelation_m;
}

void FrameState::step_user_links(std::size_t user, cell::Point pos, double moved_m,
                                 const std::size_t* cells, std::size_t count) {
  if (fast_math_) {
    step_user_links_fast(user, pos, moved_m, cells, count);
    return;
  }
  // One exp/sqrt pair per user: every link of a mobile travels the same
  // distance this frame (bit-identical to the per-link evaluation).
  const double rho = channel::Shadowing::correlation(shadowing_, moved_m);
  const double innovation = channel::Shadowing::innovation_sigma(shadowing_, rho);
  const std::size_t row = user * num_cells_;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t k = cells[i];
    const std::size_t idx = row + k;
    const double d = layout_->distance_to_cell(pos, k);
    shadow_db_[idx] = rho * shadow_db_[idx] + shadow_rng_[idx].normal(0.0, innovation);
    gain_mean_[idx] =
        path_loss_->gain_linear(d) * std::pow(10.0, shadow_db_[idx] / 10.0);
  }
}

void FrameState::step_user_links_fast(std::size_t user, cell::Point pos,
                                      double moved_m, const std::size_t* cells,
                                      std::size_t count) {
  // Same AR(1) recursion and per-link streams as the reference path; the
  // innovations come from the ziggurat and the composite gain from one
  // fused fast_exp2 per link instead of the pow/log10 pair.
  const double rho = common::fast_exp(-std::fabs(moved_m) * fast_inv_decorr_m_);
  const double innovation =
      shadowing_.sigma_db * std::sqrt(std::max(0.0, 1.0 - rho * rho));
  const std::size_t row = user * num_cells_;
  common::Rng& batch_rng = fast_shadow_rng_[user];
  constexpr std::size_t kLane = 32;
  double z[kLane], d_sq[kLane], shadow[kLane], gain[kLane];
  for (std::size_t base = 0; base < count; base += kLane) {
    const std::size_t n = std::min(kLane, count - base);
    // Three passes over each lane block: the whole innovation batch first
    // (one register-resident stream per user), then a scalar gather of the
    // squared distances and current shadowing (the geometry scan and the
    // CSR indirection don't vectorize), then the SIMD-dispatched fused
    // gain kernel with a contiguous scatter back.
    zig_.fill(batch_rng, z, n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = cells[base + i];
      const std::size_t idx = row + k;
      // Distances feed the gain only through B log10(d) = (B/2) log10(d^2),
      // so the squared distance goes straight into the log2 lane -- no
      // hypot/sqrt per link.
      d_sq[i] =
          std::max(layout_->distance_sq_to_cell(pos, k), fast_min_distance_sq_m_);
      shadow[i] = shadow_db_[idx];
    }
    kernels::shadow_gain_lane(rho, innovation, fast_gain_bias_,
                              fast_half_log2_slope_, z, d_sq, shadow, gain, n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = row + cells[base + i];
      shadow_db_[idx] = shadow[i];
      gain_mean_[idx] = gain[i];
    }
  }
}

double FrameState::fading_factor(std::size_t user, std::size_t cell) {
  const std::size_t idx = link_index(user, cell);
  switch (fading_kind_) {
    case channel::FadingKind::kAr1: {
      const double rho = fade_rho_[user];
      const double innovation = fade_innovation_[user];
      double re = fade_re_[idx], im = fade_im_[idx];
      common::Rng& rng = fade_rng_[idx];
      if (fast_math_) {
        for (std::int64_t f = fade_frame_[idx]; f < frame_; ++f) {
          re = rho * re + innovation * zig_.draw(rng);
          im = rho * im + innovation * zig_.draw(rng);
        }
      } else {
        for (std::int64_t f = fade_frame_[idx]; f < frame_; ++f) {
          re = rho * re + rng.normal(0.0, innovation);
          im = rho * im + rng.normal(0.0, innovation);
        }
      }
      fade_re_[idx] = re;
      fade_im_[idx] = im;
      fade_frame_[idx] = frame_;
      return re * re + im * im;
    }
    case channel::FadingKind::kJakes: {
      channel::JakesFading& j = jakes_[idx];
      for (std::int64_t f = jakes_frame_[idx]; f < frame_; ++f) j.step(frame_s_);
      jakes_frame_[idx] = frame_;
      return j.power_gain();
    }
    case channel::FadingKind::kNone:
      return 1.0;
  }
  return 1.0;  // unreachable
}

void FrameState::refresh_candidate_index(const ChannelStateProvider& provider) {
  if (provider.candidate_epoch() == candidate_epoch_) return;
  candidate_epoch_ = provider.candidate_epoch();

  csr_offsets_.assign(num_users_ + 1, 0);
  csr_cells_.clear();
  for (std::size_t u = 0; u < num_users_; ++u) {
    for (std::size_t k : provider.cells_for(u)) {
      csr_cells_.push_back(static_cast<std::uint32_t>(k));
    }
    csr_offsets_[u + 1] = static_cast<std::uint32_t>(csr_cells_.size());
  }

  // Transpose via counting sort: per-cell user lists come out ascending
  // because the forward pass visits users in ascending order.
  transpose_offsets_.assign(num_cells_ + 2, 0);
  for (std::uint32_t k : csr_cells_) ++transpose_offsets_[k + 2];
  for (std::size_t k = 2; k < transpose_offsets_.size(); ++k) {
    transpose_offsets_[k] += transpose_offsets_[k - 1];
  }
  transpose_users_.resize(csr_cells_.size());
  for (std::size_t u = 0; u < num_users_; ++u) {
    for (std::uint32_t o = csr_offsets_[u]; o < csr_offsets_[u + 1]; ++o) {
      transpose_users_[transpose_offsets_[csr_cells_[o] + 1]++] =
          static_cast<std::uint32_t>(u);
    }
  }
  transpose_offsets_.pop_back();
}

namespace {

void save_rngs(common::BinaryWriter& w, const std::vector<common::Rng>& v) {
  w.u64(v.size());
  for (const common::Rng& r : v) r.save(w);
}

bool load_rngs(common::BinaryReader& r, std::vector<common::Rng>& v) {
  // Streams are sized at init from the layout; a snapshot from a different
  // world shape must not resize them.
  if (r.seq(8) != v.size()) return false;
  for (common::Rng& x : v) x.load(r);
  return r.ok();
}

bool load_sized_f64(common::BinaryReader& r, std::vector<double>& v) {
  std::vector<double> tmp;
  r.vec_f64(tmp);
  if (!r.ok() || tmp.size() != v.size()) return false;
  v = std::move(tmp);
  return true;
}

bool load_sized_i64(common::BinaryReader& r, std::vector<std::int64_t>& v) {
  std::vector<std::int64_t> tmp;
  r.vec_i64(tmp);
  if (!r.ok() || tmp.size() != v.size()) return false;
  v = std::move(tmp);
  return true;
}

}  // namespace

void FrameState::save(common::BinaryWriter& w) const {
  w.i64(frame_);
  save_rngs(w, shadow_rng_);
  w.vec_f64(shadow_db_);
  save_rngs(w, fast_shadow_rng_);
  save_rngs(w, fade_rng_);
  w.vec_f64(fade_re_);
  w.vec_f64(fade_im_);
  w.vec_i64(fade_frame_);
  // Jakes state is a deterministic function of time given the init-time
  // phases, so the time offset is the whole evolved state.
  w.u64(jakes_.size());
  for (const channel::JakesFading& j : jakes_) w.f64(j.time_s());
  w.vec_i64(jakes_frame_);
  w.vec_f64(gain_mean_);
  w.vec_f64(pilot_fl_);
  w.vec_f64(far_fl_w_);
  w.vec_u32(csr_offsets_);
  w.vec_u32(csr_cells_);
  w.vec_u32(transpose_offsets_);
  w.vec_u32(transpose_users_);
  w.u64(candidate_epoch_);
}

bool FrameState::load(common::BinaryReader& r) {
  frame_ = r.i64();
  if (!load_rngs(r, shadow_rng_)) return false;
  if (!load_sized_f64(r, shadow_db_)) return false;
  if (!load_rngs(r, fast_shadow_rng_)) return false;
  if (!load_rngs(r, fade_rng_)) return false;
  if (!load_sized_f64(r, fade_re_)) return false;
  if (!load_sized_f64(r, fade_im_)) return false;
  if (!load_sized_i64(r, fade_frame_)) return false;
  if (r.seq(8) != jakes_.size()) return false;
  for (channel::JakesFading& j : jakes_) j.set_time_s(r.f64());
  if (!load_sized_i64(r, jakes_frame_)) return false;
  if (!load_sized_f64(r, gain_mean_)) return false;
  if (!load_sized_f64(r, pilot_fl_)) return false;
  if (!load_sized_f64(r, far_fl_w_)) return false;
  // The CSR index is variable-sized (it tracks candidate sets); it is
  // restored wholesale together with the epoch it was built for.
  r.vec_u32(csr_offsets_);
  r.vec_u32(csr_cells_);
  r.vec_u32(transpose_offsets_);
  r.vec_u32(transpose_users_);
  candidate_epoch_ = r.u64();
  return r.ok();
}

bool FrameState::candidate_index_matches(const ChannelStateProvider& provider) const {
  if (csr_offsets_.size() != num_users_ + 1) return false;
  std::size_t transpose_total = 0;
  for (std::size_t u = 0; u < num_users_; ++u) {
    const std::vector<std::size_t>& live = provider.cells_for(u);
    if (candidate_count(u) != live.size()) return false;
    const std::uint32_t* cand = candidates_begin(u);
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (cand[i] != live[i]) return false;
    }
    transpose_total += live.size();
  }
  return transpose_users_.size() == transpose_total;
}

}  // namespace wcdma::sim
