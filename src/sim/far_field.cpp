#include "src/sim/far_field.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/serialize.hpp"
#include "src/sim/frame_state.hpp"

namespace wcdma::sim {

void FarFieldAggregator::init(const cell::HexLayout* layout,
                              const channel::PathLoss* path_loss,
                              const channel::ShadowingConfig& shadowing,
                              const CsiConfig& csi, std::size_t num_users,
                              int carriers, bool provider_culls) {
  WCDMA_ASSERT(layout != nullptr && path_loss != nullptr && carriers >= 1);
  num_cells_ = layout->num_cells();
  num_users_ = num_users;
  carriers_ = carriers;
  active_ = provider_culls && csi.far_field.enabled;
  // The reverse terms are read unconditionally by the station loop, so they
  // exist (as zeros) even while inactive -- that keeps the default path's
  // received_w = noise + 0.0 bit-identical to the pre-far-field sum.
  reverse_far_w_.assign(num_cells_ * static_cast<std::size_t>(carriers_), 0.0);
  if (!active_) return;

  // Ring geometry: cell pair (a, k) belongs to ring floor(d / ring_width)
  // around anchor a, at the wrap-aware centre-to-centre distance.
  const double ring_width_m =
      std::max(csi.far_field.ring_width_scale * layout->cell_radius_m(), 1.0);
  ring_of_.assign(num_cells_ * num_cells_, 0);
  std::size_t max_ring = 0;
  for (std::size_t a = 0; a < num_cells_; ++a) {
    const cell::Point center = layout->center(a);
    for (std::size_t k = 0; k < num_cells_; ++k) {
      const double d = layout->distance_to_cell(center, k);
      const std::size_t r = static_cast<std::size_t>(d / ring_width_m);
      WCDMA_ASSERT(r <= 0xffffu);
      ring_of_[a * num_cells_ + k] = static_cast<std::uint16_t>(r);
      max_ring = std::max(max_ring, r);
    }
  }
  num_rings_ = max_ring + 1;

  // Mean local-mean gain per (anchor, ring) bucket: path loss at the centre
  // distance times the lognormal shadowing mean E[10^(S/10)], so the
  // aggregate matches the exhaustive far field in expectation.
  const double sigma_nat = shadowing.sigma_db * std::log(10.0) / 10.0;
  const double shadow_mean =
      std::exp(csi.far_field.shadowing_fraction * 0.5 * sigma_nat * sigma_nat);
  ring_gain_.assign(num_cells_ * num_rings_, 0.0);
  std::vector<std::size_t> ring_count(num_rings_);
  for (std::size_t a = 0; a < num_cells_; ++a) {
    std::fill(ring_count.begin(), ring_count.end(), std::size_t{0});
    const cell::Point center = layout->center(a);
    for (std::size_t k = 0; k < num_cells_; ++k) {
      const double d = layout->distance_to_cell(center, k);
      const std::size_t r = ring_of_[a * num_cells_ + k];
      ring_gain_[a * num_rings_ + r] += path_loss->gain_linear(d);
      ++ring_count[r];
    }
    for (std::size_t r = 0; r < num_rings_; ++r) {
      if (ring_count[r] > 0) {
        ring_gain_[a * num_rings_ + r] *=
            shadow_mean / static_cast<double>(ring_count[r]);
      }
    }
  }

  tx_sum_.assign(num_cells_ * static_cast<std::size_t>(carriers_), 0.0);
  applied_tx_w_.assign(num_users_, 0.0);
  applied_carrier_.assign(num_users_, 0);
  applied_anchor_.assign(num_users_, 0);
  fwd_agg_w_.assign(num_cells_ * static_cast<std::size_t>(carriers_), 0.0);
}

void FarFieldAggregator::on_user_tx(std::size_t user, double tx_w, int carrier) {
  if (!active_) return;
  const std::size_t a = applied_anchor_[user];
  tx_sum_[bucket_index(a, applied_carrier_[user])] -= applied_tx_w_[user];
  tx_sum_[bucket_index(a, carrier)] += tx_w;
  applied_tx_w_[user] = tx_w;
  applied_carrier_[user] = carrier;
}

void FarFieldAggregator::refresh(FrameState& state, const std::uint32_t* anchor,
                                 const double* station_forward_w) {
  WCDMA_ASSERT(active_);
  const std::size_t carriers = static_cast<std::size_t>(carriers_);

  // Re-anchor: a user whose active-set primary moved takes its bucketed TX
  // power along (carrier moves are handled per frame by on_user_tx).
  for (std::size_t i = 0; i < num_users_; ++i) {
    if (anchor[i] == applied_anchor_[i]) continue;
    const std::size_t c = static_cast<std::size_t>(applied_carrier_[i]);
    tx_sum_[applied_anchor_[i] * carriers + c] -= applied_tx_w_[i];
    tx_sum_[anchor[i] * carriers + c] += applied_tx_w_[i];
    applied_anchor_[i] = anchor[i];
  }

  // Forward aggregate over ALL cells: A[a][c] = sum_k G(a, k) P_fwd(k, c).
  std::fill(fwd_agg_w_.begin(), fwd_agg_w_.end(), 0.0);
  for (std::size_t a = 0; a < num_cells_; ++a) {
    for (std::size_t k = 0; k < num_cells_; ++k) {
      const double g = gain_of(a, k);
      for (std::size_t c = 0; c < carriers; ++c) {
        fwd_agg_w_[a * carriers + c] += g * station_forward_w[k * carriers + c];
      }
    }
  }

  // Per-user forward lane: full aggregate minus the candidate cells, using
  // the SAME quantised gains, so the remainder is exactly the non-candidate
  // sum (clamp floating-point residue when the candidate set covers the
  // whole world).
  for (std::size_t i = 0; i < num_users_; ++i) {
    const std::size_t a = applied_anchor_[i];
    const std::size_t c = static_cast<std::size_t>(applied_carrier_[i]);
    double far = fwd_agg_w_[a * carriers + c];
    const std::uint32_t* cand = state.candidates_begin(i);
    const std::size_t n = state.candidate_count(i);
    for (std::size_t j = 0; j < n; ++j) {
      far -= gain_of(a, cand[j]) * station_forward_w[cand[j] * carriers + c];
    }
    state.set_far_fl_w(i, far > 0.0 ? far : 0.0);
  }

  // Reverse: bucketed mobile TX folded through the ring gains, minus each
  // contributor's candidate cells (those users enter the station's exact
  // per-link gather instead).
  for (std::size_t k = 0; k < num_cells_; ++k) {
    for (std::size_t c = 0; c < carriers; ++c) {
      double sum = 0.0;
      for (std::size_t a = 0; a < num_cells_; ++a) {
        sum += gain_of(a, k) * tx_sum_[a * carriers + c];
      }
      reverse_far_w_[k * carriers + c] = sum;
    }
  }
  for (std::size_t i = 0; i < num_users_; ++i) {
    const double tx = applied_tx_w_[i];
    if (tx <= 0.0) continue;
    const std::size_t a = applied_anchor_[i];
    const std::size_t c = static_cast<std::size_t>(applied_carrier_[i]);
    const std::uint32_t* cand = state.candidates_begin(i);
    const std::size_t n = state.candidate_count(i);
    for (std::size_t j = 0; j < n; ++j) {
      reverse_far_w_[cand[j] * carriers + c] -= gain_of(a, cand[j]) * tx;
    }
  }
  for (double& w : reverse_far_w_) w = w > 0.0 ? w : 0.0;
}

void FarFieldAggregator::save(common::BinaryWriter& w) const {
  w.boolean(active_);
  if (!active_) return;
  w.vec_f64(tx_sum_);
  w.vec_f64(applied_tx_w_);
  w.vec_i32(applied_carrier_);
  w.vec_u32(applied_anchor_);
  w.vec_f64(reverse_far_w_);
}

bool FarFieldAggregator::load(common::BinaryReader& r) {
  // Activity is decided at init from the config + provider; a snapshot
  // taken under a different far-field mode is not restorable.
  if (r.boolean() != active_) return false;
  if (!active_) return r.ok();
  std::vector<double> tx, applied_tx, rev;
  std::vector<int> carrier;
  std::vector<std::uint32_t> anchor;
  r.vec_f64(tx);
  r.vec_f64(applied_tx);
  r.vec_i32(carrier);
  r.vec_u32(anchor);
  r.vec_f64(rev);
  if (!r.ok() || tx.size() != tx_sum_.size() ||
      applied_tx.size() != applied_tx_w_.size() ||
      carrier.size() != applied_carrier_.size() ||
      anchor.size() != applied_anchor_.size() ||
      rev.size() != reverse_far_w_.size()) {
    return false;
  }
  tx_sum_ = std::move(tx);
  applied_tx_w_ = std::move(applied_tx);
  applied_carrier_ = std::move(carrier);
  applied_anchor_ = std::move(anchor);
  reverse_far_w_ = std::move(rev);
  return true;
}

bool FarFieldAggregator::tx_buckets_match_rebuild(double rel_tol) const {
  if (!active_) return true;
  std::vector<double> rebuilt(tx_sum_.size(), 0.0);
  double total_w = 0.0;
  for (std::size_t i = 0; i < num_users_; ++i) {
    rebuilt[bucket_index(applied_anchor_[i], applied_carrier_[i])] +=
        applied_tx_w_[i];
    total_w += applied_tx_w_[i];
  }
  // Incremental +/- of user powers leaves cancellation residue whose size
  // is set by the magnitudes that passed THROUGH a bucket, not by what it
  // holds now (a bucket whose users all left rebuilds to ~0 but keeps
  // ~eps-scale residue), so the bound carries an absolute floor tied to
  // the total bucketed power.
  for (std::size_t b = 0; b < tx_sum_.size(); ++b) {
    const double bound = rel_tol * (std::fabs(rebuilt[b]) + total_w);
    if (std::fabs(tx_sum_[b] - rebuilt[b]) > bound) return false;
  }
  return true;
}

}  // namespace wcdma::sim
