// Parallel Monte-Carlo replication driver.
//
// Replications are embarrassingly parallel: each gets an independent seed
// derived from (master seed, replication index), runs a full Simulator, and
// the merged metrics are identical for any worker count (DESIGN.md D7).
#pragma once

#include <cstddef>
#include <vector>

#include "src/sim/config.hpp"
#include "src/sim/metrics.hpp"

namespace wcdma::sim {

struct MonteCarloResult {
  SimMetrics merged;
  /// Per-replication mean burst delays, for confidence intervals.
  std::vector<double> replication_mean_delay_s;
};

/// Runs `replications` independent simulations of `config` (seed varied per
/// replication) on up to `threads` workers (0 = hardware concurrency).
MonteCarloResult run_replications(const SystemConfig& config, std::size_t replications,
                                  std::size_t threads = 0);

}  // namespace wcdma::sim
