// Fault-tolerant multi-process sweep supervisor.
//
// run_supervised_sweep() shards the (scenario x replication) grid across N
// worker processes (src/runner/worker.hpp), watches them, and merges their
// result files through sweep::merge_item_metrics() -- the same merge the
// in-process runner ends in, so the output is byte-identical to
// sweep::run_sweep() for any worker count.  The supervisor owns the
// robustness contract:
//
//  * crash detection -- exit codes and signals are attributed per shard;
//  * wall-clock timeouts -- a stalled worker is SIGKILLed at its deadline;
//  * bounded retries -- each failed shard relaunches up to max_retries
//    times on a jitter-free exponential backoff (backoff_delay_s());
//  * checkpoint recovery -- a retried shard resumes from its last valid
//    checkpoint (Simulator::snapshot() inside a crc-sealed shard archive)
//    instead of frame 0; a checkpoint that fails integrity is discarded
//    with a warning (restart-from-scratch is bit-identical too, the items
//    are deterministic in their seeds) or, under strict_checkpoint, turned
//    into a hard error naming the shard and file.
//
// Every failure path ends in one of two places: a merged result
// byte-identical to the fault-free run, or SupervisorResult::ok == false
// with `error` naming the shard and cause.  Never a silent partial merge.
//
// This file is the one deliberately wall-clock-dependent corner of the
// tree (timeouts, backoff scheduling); src/runner/ is allowlisted for the
// DET-WALLCLOCK lint rule because elapsed time only decides *when* a
// deterministic shard re-runs, never *what* it computes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/runner/fault.hpp"
#include "src/sweep/sweep.hpp"

namespace wcdma::runner {

/// Delay before retry attempt `retry` (0-based): base * 2^retry, capped.
/// Pure and jitter-free, so retry schedules are themselves deterministic
/// and unit-testable.
double backoff_delay_s(int retry, double base_s, double cap_s);

struct SupervisorOptions {
  /// Worker process count == shard count; >= 1.
  std::size_t workers = 1;
  /// Per-attempt wall-clock budget in seconds; <= 0 disables the timeout.
  double timeout_s = 0.0;
  /// Retries per shard beyond the first attempt.
  int max_retries = 2;
  double backoff_base_s = 0.05;
  double backoff_cap_s = 2.0;
  /// Frames between worker checkpoints; 0 disables checkpointing.
  std::int64_t checkpoint_every_frames = 256;
  /// Directory for shard result/checkpoint files; must exist.
  std::string work_dir = ".";
  /// Injected fault, forwarded to the worker whose shard it names.
  FaultPlan fault;
  /// Corrupt checkpoint = hard error instead of discard-and-restart.
  bool strict_checkpoint = false;
};

struct SupervisorResult {
  bool ok = false;
  /// When !ok: names the failing shard and the attributed cause.
  std::string error;
  /// Valid when ok; byte-identical (through to_csv/to_json) to
  /// sweep::run_sweep() on the same spec.
  sweep::SweepResult result;

  // Robustness telemetry for tests and operators.
  int retries = 0;
  int timeouts = 0;
  int crashes = 0;
  int checkpoint_resumes = 0;
  int discarded_checkpoints = 0;
};

/// Runs the sweep under process supervision.  With `worker_argv` empty,
/// workers are forked children running run_worker() in-process (the test
/// path; children _exit and never return through the caller's stack).
/// With `worker_argv` set, it is the exec prefix of a worker command line
/// (binary plus config-shaping flags, e.g. from sweep_main); the
/// supervisor appends its own --worker-* flags per launch -- each worker
/// then runs in a clean address space.
SupervisorResult run_supervised_sweep(
    const sweep::SweepSpec& spec, const SupervisorOptions& options,
    const std::vector<std::string>& worker_argv = {});

}  // namespace wcdma::runner
