#include "src/runner/worker.hpp"

#include <csignal>
#include <cstdio>
#include <chrono>
#include <thread>
#include <vector>

#include "src/runner/shard_io.hpp"
#include "src/sim/simulator.hpp"

namespace wcdma::runner {

namespace {

/// Damages a just-written checkpoint in place: a single flipped bit or a
/// truncation to half size.  Both must trip the crc32 footer on the next
/// read -- that is exactly what the fault-injection tests assert.
void corrupt_file(const std::string& path, CorruptMode mode) {
  std::vector<std::uint8_t> bytes;
  if (!read_file(path, &bytes) || bytes.empty()) return;
  if (mode == CorruptMode::kTruncate) {
    bytes.resize(bytes.size() / 2);
  } else {
    bytes[bytes.size() / 2] ^= 0x01;
  }
  write_file_atomic(path, bytes);
}

[[noreturn]] void stall_forever() {
  // The supervisor's wall-clock timeout is the only way out of here; the
  // worker is SIGKILLed once the deadline passes.
  for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

}  // namespace

int run_worker(const WorkerJob& job) {
  const std::size_t total_items = sweep::item_count(job.spec);
  const ShardRange range = shard_range(total_items, job.shard, job.workers);
  ShardHeader header;
  header.shard = job.shard;
  header.workers = job.workers;
  header.item_begin = range.begin;
  header.item_end = range.end;
  header.master_seed = job.spec.base.seed;

  std::vector<sim::SimMetrics> completed;
  std::size_t start_item = range.begin;
  std::vector<std::uint8_t> pending_snapshot;

  if (job.resume) {
    std::vector<std::uint8_t> bytes;
    ShardCheckpoint ck;
    std::string why;
    if (!read_file(job.checkpoint_path, &bytes) ||
        !decode_shard_checkpoint(bytes, header, &ck, &why)) {
      std::fprintf(stderr, "worker shard %zu: cannot resume from %s (%s)\n",
                   job.shard, job.checkpoint_path.c_str(),
                   why.empty() ? "unreadable file" : why.c_str());
      return kWorkerBadCheckpoint;
    }
    completed = std::move(ck.completed);
    start_item = static_cast<std::size_t>(ck.next_item);
    pending_snapshot = std::move(ck.snapshot);
  }

  const bool fault_armed = job.fault.armed_for(job.shard, job.attempt);
  bool fault_fired = false;

  for (std::size_t item = start_item; item < range.end; ++item) {
    sim::Simulator sim(sweep::item_config(job.spec, item));
    if (item == start_item && !pending_snapshot.empty()) {
      if (!sim.restore(pending_snapshot)) {
        std::fprintf(stderr,
                     "worker shard %zu: snapshot in %s refused by restore()\n",
                     job.shard, job.checkpoint_path.c_str());
        return kWorkerBadCheckpoint;
      }
      pending_snapshot.clear();
    }
    const std::int64_t frames = sim.total_frames();
    while (sim.frame_index() < frames) {
      sim.step_frame();
      const std::int64_t at = sim.frame_index();
      const bool item_matches =
          job.fault.item == SIZE_MAX || job.fault.item == item;
      // Checkpoint cadence first, fault trigger second: "kill at frame N"
      // with N on the cadence leaves the frame-N checkpoint on disk, which
      // is precisely the boundary the resume property tests exercise.
      if (job.checkpoint_every_frames > 0 && at < frames &&
          at % job.checkpoint_every_frames == 0) {
        ShardCheckpoint ck;
        ck.header = header;
        ck.next_item = item;
        ck.completed = completed;
        ck.snapshot = sim.snapshot();
        if (!write_file_atomic(job.checkpoint_path,
                               encode_shard_checkpoint(ck))) {
          std::fprintf(stderr, "worker shard %zu: cannot write checkpoint %s\n",
                       job.shard, job.checkpoint_path.c_str());
          return kWorkerIoError;
        }
        if (fault_armed && !fault_fired && item_matches &&
            job.fault.kind == FaultKind::kCorruptCheckpoint &&
            at >= job.fault.frame) {
          fault_fired = true;
          corrupt_file(job.checkpoint_path, job.fault.mode);
          raise(SIGKILL);
        }
      }
      if (fault_armed && !fault_fired && item_matches &&
          at == job.fault.frame) {
        if (job.fault.kind == FaultKind::kKill) {
          fault_fired = true;
          raise(SIGKILL);
        } else if (job.fault.kind == FaultKind::kStall) {
          fault_fired = true;
          stall_forever();
        }
      }
    }
    completed.push_back(sim.metrics());
  }

  if (fault_armed && job.fault.kind == FaultKind::kDropResult) {
    // Finish "successfully" without the result file: the supervisor must
    // attribute the missing file to this shard and retry, never merge a
    // partial grid.
    return kWorkerOk;
  }
  if (!write_file_atomic(job.result_path,
                         encode_shard_result(header, completed))) {
    std::fprintf(stderr, "worker shard %zu: cannot write result %s\n",
                 job.shard, job.result_path.c_str());
    return kWorkerIoError;
  }
  std::remove(job.checkpoint_path.c_str());
  return kWorkerOk;
}

}  // namespace wcdma::runner
