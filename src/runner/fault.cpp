#include "src/runner/fault.hpp"

#include <cstdlib>
#include <vector>

namespace wcdma::runner {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kKill: return "kill";
    case FaultKind::kStall: return "stall";
    case FaultKind::kCorruptCheckpoint: return "corrupt-checkpoint";
    case FaultKind::kDropResult: return "drop-result";
  }
  return "?";
}

std::string FaultPlan::spec() const {
  if (!enabled()) return "none";
  std::string out = to_string(kind);
  out += ":shard=" + std::to_string(shard);
  if (kind == FaultKind::kKill || kind == FaultKind::kStall ||
      kind == FaultKind::kCorruptCheckpoint) {
    out += ",frame=" + std::to_string(frame);
  }
  if (item != SIZE_MAX) out += ",item=" + std::to_string(item);
  if (kind == FaultKind::kCorruptCheckpoint) {
    out += std::string(",mode=") +
           (mode == CorruptMode::kBitFlip ? "bitflip" : "truncate");
  }
  if (every_attempt) out += ",attempts=all";
  return out;
}

namespace {

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

}  // namespace

bool FaultPlan::parse(const std::string& text, FaultPlan* out,
                      std::string* error) {
  FaultPlan plan;
  if (text.empty() || text == "none") {
    *out = plan;
    return true;
  }
  const std::size_t colon = text.find(':');
  const std::string kind_name = text.substr(0, colon);
  if (kind_name == "kill") {
    plan.kind = FaultKind::kKill;
  } else if (kind_name == "stall") {
    plan.kind = FaultKind::kStall;
  } else if (kind_name == "corrupt-checkpoint") {
    plan.kind = FaultKind::kCorruptCheckpoint;
  } else if (kind_name == "drop-result") {
    plan.kind = FaultKind::kDropResult;
  } else {
    return fail(error, "unknown fault kind '" + kind_name +
                           "' (kill|stall|corrupt-checkpoint|drop-result)");
  }

  bool have_shard = false;
  if (colon != std::string::npos) {
    std::string rest = text.substr(colon + 1);
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= rest.size()) {
      const std::size_t comma = rest.find(',', start);
      parts.push_back(rest.substr(start, comma - start));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    for (const std::string& part : parts) {
      const std::size_t eq = part.find('=');
      if (eq == std::string::npos) {
        return fail(error, "fault option '" + part + "' is not key=value");
      }
      const std::string key = part.substr(0, eq);
      const std::string value = part.substr(eq + 1);
      std::uint64_t n = 0;
      if (key == "shard") {
        if (!parse_u64(value, &n)) return fail(error, "bad shard '" + value + "'");
        plan.shard = static_cast<std::size_t>(n);
        have_shard = true;
      } else if (key == "frame") {
        if (!parse_u64(value, &n)) return fail(error, "bad frame '" + value + "'");
        plan.frame = static_cast<std::int64_t>(n);
      } else if (key == "item") {
        if (!parse_u64(value, &n)) return fail(error, "bad item '" + value + "'");
        plan.item = static_cast<std::size_t>(n);
      } else if (key == "mode") {
        if (value == "bitflip") {
          plan.mode = CorruptMode::kBitFlip;
        } else if (value == "truncate") {
          plan.mode = CorruptMode::kTruncate;
        } else {
          return fail(error, "bad mode '" + value + "' (bitflip|truncate)");
        }
      } else if (key == "attempts") {
        if (value == "all") {
          plan.every_attempt = true;
        } else if (value == "first") {
          plan.every_attempt = false;
        } else {
          return fail(error, "bad attempts '" + value + "' (first|all)");
        }
      } else {
        return fail(error, "unknown fault option '" + key + "'");
      }
    }
  }
  if (!have_shard) return fail(error, "fault spec needs shard=I");
  *out = plan;
  return true;
}

}  // namespace wcdma::runner
