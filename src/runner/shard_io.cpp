#include "src/runner/shard_io.hpp"

#include <cstdio>

#include "src/common/assert.hpp"
#include "src/common/serialize.hpp"

namespace wcdma::runner {

namespace {

constexpr std::uint32_t kResultMagic = 0x53525357;      // "WSRS" little-endian
constexpr std::uint32_t kResultVersion = 1;
constexpr std::uint32_t kCheckpointMagic = 0x43525357;  // "WSRC" little-endian
constexpr std::uint32_t kCheckpointVersion = 1;
constexpr std::size_t kFooterBytes = 4;

void write_header(common::BinaryWriter& w, const ShardHeader& h) {
  w.u64(h.shard);
  w.u64(h.workers);
  w.u64(h.item_begin);
  w.u64(h.item_end);
  w.u64(h.master_seed);
}

ShardHeader read_header(common::BinaryReader& r) {
  ShardHeader h;
  h.shard = r.u64();
  h.workers = r.u64();
  h.item_begin = r.u64();
  h.item_end = r.u64();
  h.master_seed = r.u64();
  return h;
}

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

/// Footer + magic/version gate shared by both decoders; on success `r` is
/// positioned after the version field and covers the payload only.
bool open_archive(const std::vector<std::uint8_t>& bytes, std::uint32_t magic,
                  std::uint32_t version, const char* what,
                  common::BinaryReader* reader, std::string* error) {
  if (bytes.size() <= kFooterBytes) {
    return fail(error, std::string(what) + " truncated below the crc footer");
  }
  const std::size_t payload = bytes.size() - kFooterBytes;
  std::uint32_t stored = 0;
  for (std::size_t i = 0; i < kFooterBytes; ++i) {
    stored |= static_cast<std::uint32_t>(bytes[payload + i]) << (8 * i);
  }
  if (common::crc32(bytes.data(), payload) != stored) {
    return fail(error, std::string(what) + " failed its crc32 check");
  }
  *reader = common::BinaryReader(bytes.data(), payload);
  if (reader->u32() != magic || reader->u32() != version) {
    return fail(error, std::string(what) + " has a wrong magic/version");
  }
  return true;
}

void seal(common::BinaryWriter& w) { w.u32(common::crc32(w.bytes())); }

}  // namespace

ShardRange shard_range(std::size_t total, std::size_t shard,
                       std::size_t workers) {
  WCDMA_ASSERT(workers >= 1 && shard < workers);
  // Balanced split without overflow-prone multiplication ordering issues:
  // floor(shard * total / workers) boundaries.
  ShardRange range;
  range.begin = shard * total / workers;
  range.end = (shard + 1) * total / workers;
  return range;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  out->clear();
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  // fclose flushes; a full disk surfaces here and must not leave the final
  // name pointing at a short file.
  if (std::fclose(f) != 0 || written != bytes.size()) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::vector<std::uint8_t> encode_shard_result(
    const ShardHeader& header, const std::vector<sim::SimMetrics>& items) {
  WCDMA_ASSERT(items.size() == header.item_end - header.item_begin);
  common::BinaryWriter w;
  w.u32(kResultMagic);
  w.u32(kResultVersion);
  write_header(w, header);
  for (const sim::SimMetrics& m : items) m.save(w);
  seal(w);
  return w.take();
}

bool decode_shard_result(const std::vector<std::uint8_t>& bytes,
                         const ShardHeader& expect,
                         std::vector<sim::SimMetrics>* items,
                         std::string* error) {
  items->clear();
  common::BinaryReader r(nullptr, 0);
  if (!open_archive(bytes, kResultMagic, kResultVersion, "result file", &r,
                    error)) {
    return false;
  }
  const ShardHeader h = read_header(r);
  if (!r.ok() || !(h == expect)) {
    return fail(error, "result file belongs to a different shard/run");
  }
  const std::size_t count = expect.item_end - expect.item_begin;
  items->resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!(*items)[i].load(r)) {
      items->clear();
      return fail(error,
                  "result file item " + std::to_string(expect.item_begin + i) +
                      " failed to decode");
    }
  }
  if (!r.ok() || !r.at_end()) {
    items->clear();
    return fail(error, "result file has trailing or missing payload");
  }
  return true;
}

std::vector<std::uint8_t> encode_shard_checkpoint(const ShardCheckpoint& ck) {
  WCDMA_ASSERT(ck.next_item >= ck.header.item_begin &&
               ck.next_item <= ck.header.item_end);
  WCDMA_ASSERT(ck.completed.size() == ck.next_item - ck.header.item_begin);
  common::BinaryWriter w;
  w.u32(kCheckpointMagic);
  w.u32(kCheckpointVersion);
  write_header(w, ck.header);
  w.u64(ck.next_item);
  for (const sim::SimMetrics& m : ck.completed) m.save(w);
  w.u64(ck.snapshot.size());
  for (std::uint8_t b : ck.snapshot) w.u8(b);
  seal(w);
  return w.take();
}

bool decode_shard_checkpoint(const std::vector<std::uint8_t>& bytes,
                             const ShardHeader& expect, ShardCheckpoint* out,
                             std::string* error) {
  *out = ShardCheckpoint{};
  common::BinaryReader r(nullptr, 0);
  if (!open_archive(bytes, kCheckpointMagic, kCheckpointVersion, "checkpoint",
                    &r, error)) {
    return false;
  }
  const ShardHeader h = read_header(r);
  if (!r.ok() || !(h == expect)) {
    return fail(error, "checkpoint belongs to a different shard/run");
  }
  out->header = h;
  out->next_item = r.u64();
  if (!r.ok() || out->next_item < h.item_begin || out->next_item > h.item_end) {
    return fail(error, "checkpoint progress cursor is out of range");
  }
  const std::size_t completed =
      static_cast<std::size_t>(out->next_item - h.item_begin);
  out->completed.resize(completed);
  for (std::size_t i = 0; i < completed; ++i) {
    if (!out->completed[i].load(r)) {
      return fail(error, "checkpoint item " + std::to_string(h.item_begin + i) +
                             " failed to decode");
    }
  }
  const std::size_t snap_len = r.seq(1);
  out->snapshot.resize(snap_len);
  for (std::size_t i = 0; i < snap_len; ++i) out->snapshot[i] = r.u8();
  if (!r.ok() || !r.at_end()) {
    return fail(error, "checkpoint has trailing or missing payload");
  }
  return true;
}

}  // namespace wcdma::runner
