#include "src/runner/supervisor.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "src/common/assert.hpp"
#include "src/runner/shard_io.hpp"
#include "src/runner/worker.hpp"

namespace wcdma::runner {

double backoff_delay_s(int retry, double base_s, double cap_s) {
  WCDMA_ASSERT(retry >= 0 && base_s >= 0.0 && cap_s >= base_s);
  double delay = base_s;
  for (int i = 0; i < retry; ++i) {
    delay *= 2.0;
    if (delay >= cap_s) return cap_s;
  }
  return std::min(delay, cap_s);
}

namespace {

double monotonic_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

enum class ShardStatus { kPending, kRunning, kDone, kFailed };

struct ShardState {
  ShardRange range;
  ShardStatus status = ShardStatus::kPending;
  int attempt = 0;          // 0-based attempt about to run / running
  pid_t pid = -1;
  double deadline_s = 0.0;  // monotonic; 0 = no timeout
  double ready_s = 0.0;     // backoff gate for the next launch
  bool timed_out = false;
  bool resume_next = false;
  std::string result_path;
  std::string checkpoint_path;
  std::vector<sim::SimMetrics> items;  // decoded result when kDone
};

std::string shard_file(const std::string& dir, std::size_t shard,
                       const char* suffix) {
  return dir + "/shard-" + std::to_string(shard) + suffix;
}

ShardHeader header_for(const sweep::SweepSpec& spec, const ShardState& state,
                       std::size_t shard, std::size_t workers) {
  ShardHeader h;
  h.shard = shard;
  h.workers = workers;
  h.item_begin = state.range.begin;
  h.item_end = state.range.end;
  h.master_seed = spec.base.seed;
  return h;
}

/// Forks one worker attempt.  Fork-mode children run run_worker() and
/// _exit without unwinding the parent's stack; exec-mode children replace
/// themselves with the worker command line.
pid_t launch_worker(const sweep::SweepSpec& spec,
                    const SupervisorOptions& options,
                    const std::vector<std::string>& worker_argv,
                    std::size_t shard, const ShardState& state) {
  WorkerJob job;
  job.spec = spec;
  job.shard = shard;
  job.workers = options.workers;
  job.result_path = state.result_path;
  job.checkpoint_path = state.checkpoint_path;
  job.checkpoint_every_frames = options.checkpoint_every_frames;
  job.resume = state.resume_next;
  job.attempt = state.attempt;
  if (options.fault.enabled() && options.fault.shard == shard) {
    job.fault = options.fault;
  }

  const pid_t pid = fork();
  if (pid != 0) return pid;  // parent (or fork failure, pid < 0)

  if (worker_argv.empty()) {
    _exit(run_worker(job));
  }
  std::vector<std::string> args = worker_argv;
  args.push_back("--worker-shard");
  args.push_back(std::to_string(shard));
  args.push_back("--worker-count");
  args.push_back(std::to_string(options.workers));
  args.push_back("--worker-out");
  args.push_back(job.result_path);
  args.push_back("--worker-checkpoint");
  args.push_back(job.checkpoint_path);
  args.push_back("--checkpoint-every");
  args.push_back(std::to_string(job.checkpoint_every_frames));
  args.push_back("--worker-attempt");
  args.push_back(std::to_string(job.attempt));
  if (job.resume) args.push_back("--worker-resume");
  if (job.fault.enabled()) {
    args.push_back("--fault");
    args.push_back(job.fault.spec());
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  execv(argv[0], argv.data());
  std::fprintf(stderr, "worker shard %zu: cannot exec %s\n", shard, argv[0]);
  _exit(127);
}

std::string describe_exit(int wait_status, const ShardState& state,
                          double timeout_s) {
  if (WIFSIGNALED(wait_status)) {
    const int sig = WTERMSIG(wait_status);
    if (state.timed_out) {
      return "timed out after " + std::to_string(timeout_s) +
             "s (SIGKILL at the deadline)";
    }
    return "killed by signal " + std::to_string(sig);
  }
  const int code = WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1;
  if (code == kWorkerBadCheckpoint) return "worker refused its checkpoint";
  if (code == kWorkerIoError) return "worker could not write its files";
  return "exit code " + std::to_string(code);
}

}  // namespace

SupervisorResult run_supervised_sweep(
    const sweep::SweepSpec& spec, const SupervisorOptions& options,
    const std::vector<std::string>& worker_argv) {
  SupervisorResult out;
  spec.validate();
  WCDMA_ASSERT(options.workers >= 1);
  WCDMA_ASSERT(options.max_retries >= 0);

  const std::size_t total = sweep::item_count(spec);
  const std::size_t workers = options.workers;
  std::vector<ShardState> shards(workers);
  for (std::size_t s = 0; s < workers; ++s) {
    shards[s].range = shard_range(total, s, workers);
    shards[s].result_path = shard_file(options.work_dir, s, ".result");
    shards[s].checkpoint_path = shard_file(options.work_dir, s, ".ckpt");
    // A stale file from an earlier run must never satisfy this one; the
    // identity header would refuse it, but remove it anyway so "missing"
    // failures attribute cleanly.
    std::remove(shards[s].result_path.c_str());
    std::remove(shards[s].checkpoint_path.c_str());
  }

  // Attributed hard stop: kill anything still running, reap, and report.
  const auto abort_with = [&](std::size_t shard, const std::string& why) {
    for (ShardState& st : shards) {
      if (st.status == ShardStatus::kRunning && st.pid > 0) {
        kill(st.pid, SIGKILL);
        int ignored = 0;
        while (waitpid(st.pid, &ignored, 0) < 0 && errno == EINTR) {
        }
        st.status = ShardStatus::kFailed;
      }
    }
    out.ok = false;
    out.error = "shard " + std::to_string(shard) + ": " + why;
    return out;
  };

  // Schedules the next attempt of a failed shard (or gives up).  Returns
  // false when the sweep must abort; `why` then names the cause.
  const auto schedule_retry = [&](std::size_t shard, const std::string& reason,
                                  std::string* why) {
    ShardState& st = shards[shard];
    ++out.crashes;
    if (st.attempt >= options.max_retries) {
      *why = "failed after " + std::to_string(st.attempt + 1) + " attempt(s): " +
             reason;
      return false;
    }
    st.resume_next = false;
    if (access(st.checkpoint_path.c_str(), F_OK) == 0) {
      std::vector<std::uint8_t> bytes;
      ShardCheckpoint ck;
      std::string ck_why;
      const ShardHeader expect = header_for(spec, st, shard, workers);
      if (read_file(st.checkpoint_path, &bytes) &&
          decode_shard_checkpoint(bytes, expect, &ck, &ck_why)) {
        st.resume_next = true;
      } else if (options.strict_checkpoint) {
        *why = "checkpoint " + st.checkpoint_path +
               " failed integrity check (" +
               (ck_why.empty() ? "unreadable file" : ck_why) + ")";
        return false;
      } else {
        // Restart-from-scratch is bit-identical too (items are functions
        // of their seeds), so a damaged checkpoint costs time, not truth.
        std::fprintf(stderr,
                     "runner: shard %zu checkpoint %s discarded (%s); "
                     "restarting the shard from frame 0\n",
                     shard, st.checkpoint_path.c_str(),
                     ck_why.empty() ? "unreadable file" : ck_why.c_str());
        std::remove(st.checkpoint_path.c_str());
        ++out.discarded_checkpoints;
      }
    }
    const double delay =
        backoff_delay_s(st.attempt, options.backoff_base_s, options.backoff_cap_s);
    ++st.attempt;
    ++out.retries;
    st.ready_s = monotonic_now_s() + delay;
    st.timed_out = false;
    st.status = ShardStatus::kPending;
    return true;
  };

  std::size_t done = 0;
  while (done < workers) {
    const double now = monotonic_now_s();
    // Launch every pending shard whose backoff gate has passed.
    for (std::size_t s = 0; s < workers; ++s) {
      ShardState& st = shards[s];
      if (st.status != ShardStatus::kPending || now < st.ready_s) continue;
      const pid_t pid = launch_worker(spec, options, worker_argv, s, st);
      if (pid < 0) return abort_with(s, "fork() failed");
      if (st.resume_next) ++out.checkpoint_resumes;
      st.pid = pid;
      st.status = ShardStatus::kRunning;
      st.deadline_s = options.timeout_s > 0.0 ? now + options.timeout_s : 0.0;
    }

    // Reap finished workers and enforce deadlines.
    for (std::size_t s = 0; s < workers; ++s) {
      ShardState& st = shards[s];
      if (st.status != ShardStatus::kRunning) continue;
      int wait_status = 0;
      const pid_t reaped = waitpid(st.pid, &wait_status, WNOHANG);
      if (reaped < 0 && errno == EINTR) continue;
      if (reaped == 0) {
        if (st.deadline_s > 0.0 && monotonic_now_s() > st.deadline_s &&
            !st.timed_out) {
          st.timed_out = true;
          ++out.timeouts;
          kill(st.pid, SIGKILL);  // reaped on a later iteration
        }
        continue;
      }
      st.pid = -1;
      if (WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == kWorkerOk) {
        std::vector<std::uint8_t> bytes;
        std::string why;
        const ShardHeader expect = header_for(spec, st, s, workers);
        if (read_file(st.result_path, &bytes) &&
            decode_shard_result(bytes, expect, &st.items, &why)) {
          st.status = ShardStatus::kDone;
          ++done;
          continue;
        }
        const std::string reason =
            "result file " + st.result_path + " missing or invalid (" +
            (why.empty() ? "unreadable file" : why) + ")";
        std::string abort_why;
        if (!schedule_retry(s, reason, &abort_why)) return abort_with(s, abort_why);
        continue;
      }
      const std::string reason = describe_exit(wait_status, st, options.timeout_s);
      std::string abort_why;
      if (!schedule_retry(s, reason, &abort_why)) return abort_with(s, abort_why);
    }

    if (done < workers) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  // Deterministic merge: one slot per item, filled per shard, merged in
  // index order -- completion order cannot leak into the output.
  std::vector<sim::SimMetrics> per_item(total);
  for (std::size_t s = 0; s < workers; ++s) {
    const ShardState& st = shards[s];
    WCDMA_ASSERT(st.items.size() == st.range.size());
    for (std::size_t i = 0; i < st.items.size(); ++i) {
      per_item[st.range.begin + i] = st.items[i];
    }
    std::remove(st.result_path.c_str());
    std::remove(st.checkpoint_path.c_str());
  }
  out.result = sweep::merge_item_metrics(spec, per_item);
  out.ok = true;
  return out;
}

}  // namespace wcdma::runner
