// One sweep-shard worker process: runs a contiguous block of the
// (scenario x replication) grid through the deterministic item_config()
// seeding, checkpoints its progress every `checkpoint_every_frames`
// frames, and writes its per-item metrics as one atomic result file.
//
// run_worker() is the whole process body.  The supervisor calls it in a
// forked child (tests: no exec needed) or via `sweep_main --worker-shard`
// (the CLI path: a clean address space per worker).  Either way the worker
// is a pure function of its job description plus the files on disk, so a
// retried attempt -- resumed from the checkpoint or restarted from
// scratch -- reproduces the exact metrics an undisturbed attempt would
// have produced.
#pragma once

#include <cstdint>
#include <string>

#include "src/runner/fault.hpp"
#include "src/sweep/sweep.hpp"

namespace wcdma::runner {

/// Worker process exit codes the supervisor attributes failures by.
inline constexpr int kWorkerOk = 0;
/// The checkpoint it was told to resume from failed integrity/decoding.
inline constexpr int kWorkerBadCheckpoint = 3;
/// A result/checkpoint file could not be written (I/O error, full disk).
inline constexpr int kWorkerIoError = 4;

struct WorkerJob {
  sweep::SweepSpec spec;
  std::size_t shard = 0;
  std::size_t workers = 1;
  std::string result_path;
  std::string checkpoint_path;
  /// Frames between checkpoint writes within an item; 0 disables
  /// checkpointing (a retried shard restarts from frame 0).
  std::int64_t checkpoint_every_frames = 0;
  /// Resume from checkpoint_path instead of the shard's first item.  The
  /// supervisor validates the file before setting this; an unusable
  /// checkpoint still exits kWorkerBadCheckpoint as a backstop.
  bool resume = false;
  /// Self-injected fault, already filtered to this shard by the
  /// supervisor; fires only when armed for `attempt`.
  FaultPlan fault;
  /// 0-based attempt number (retries increment it).
  int attempt = 0;
};

/// Runs the shard to completion; returns the process exit code.  Never
/// throws; fault kinds kKill/kStall/kCorruptCheckpoint do not return.
int run_worker(const WorkerJob& job);

}  // namespace wcdma::runner
