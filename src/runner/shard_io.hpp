// On-disk shard interchange for the multi-process sweep runner.
//
// A worker owns one contiguous block of (scenario x replication) item
// indices and communicates with the supervisor through exactly two files,
// both versioned little-endian archives (common/serialize.hpp) with a
// crc32 footer and an identity header binding them to one (spec, shard,
// worker-count, master-seed) tuple:
//
//  * result file  -- the shard's finished per-item SimMetrics, written
//    once, atomically (temp + rename), when every item is done.  The
//    supervisor merges result files in item-index order, so the merged
//    sweep is byte-identical to the in-process path for any worker count.
//  * checkpoint file -- the shard's progress mid-run: metrics of the
//    completed items plus a Simulator::snapshot() archive of the in-flight
//    item at its last checkpoint frame.  A retried worker resumes from
//    here instead of frame 0; a checkpoint that fails its checksum or
//    identity check is detected before a single field is trusted.
//
// Decoders fail soft with an attributed reason string -- the supervisor
// turns that into either a discard-and-restart (still bit-identical, the
// items are deterministic from their seeds) or a hard error naming the
// shard and file, never silent data loss.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/metrics.hpp"

namespace wcdma::runner {

/// Contiguous item block of `shard` when `total` items split across
/// `workers` shards (balanced: sizes differ by at most one).
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};
ShardRange shard_range(std::size_t total, std::size_t shard,
                       std::size_t workers);

/// Identity header of both shard file kinds: a file is only trusted when
/// every field matches the run that expects it.
struct ShardHeader {
  std::uint64_t shard = 0;
  std::uint64_t workers = 0;
  std::uint64_t item_begin = 0;
  std::uint64_t item_end = 0;
  std::uint64_t master_seed = 0;

  bool operator==(const ShardHeader& o) const {
    return shard == o.shard && workers == o.workers &&
           item_begin == o.item_begin && item_end == o.item_end &&
           master_seed == o.master_seed;
  }
};

/// Whole-file read; false on any I/O error.
bool read_file(const std::string& path, std::vector<std::uint8_t>* out);
/// Write-temp-then-rename, so a crashed writer never leaves a
/// half-written file under the final name; false on any I/O error.
bool write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

// --- Result files ---------------------------------------------------------
std::vector<std::uint8_t> encode_shard_result(
    const ShardHeader& header, const std::vector<sim::SimMetrics>& items);
/// Verifies checksum + identity before decoding; on failure returns false
/// with the reason in *error (when non-null) and leaves *items empty.
bool decode_shard_result(const std::vector<std::uint8_t>& bytes,
                         const ShardHeader& expect,
                         std::vector<sim::SimMetrics>* items,
                         std::string* error);

// --- Checkpoint files ------------------------------------------------------
struct ShardCheckpoint {
  ShardHeader header;
  /// First incomplete item; `completed` holds [header.item_begin, next_item).
  std::uint64_t next_item = 0;
  std::vector<sim::SimMetrics> completed;
  /// Simulator::snapshot() of the in-flight item at the checkpoint frame;
  /// empty when the checkpoint sits exactly on an item boundary.
  std::vector<std::uint8_t> snapshot;
};
std::vector<std::uint8_t> encode_shard_checkpoint(const ShardCheckpoint& ck);
bool decode_shard_checkpoint(const std::vector<std::uint8_t>& bytes,
                             const ShardHeader& expect, ShardCheckpoint* out,
                             std::string* error);

}  // namespace wcdma::runner
