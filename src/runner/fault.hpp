// Fault-injection plans for the multi-process sweep supervisor.
//
// A FaultPlan names one deliberate failure a worker inflicts on itself --
// die at a frame, stall past the supervisor's timeout, corrupt the
// checkpoint it just wrote, or silently drop its result file.  Faults are
// self-injected (the worker process carries its own plan and triggers it
// from inside the frame loop) so the trigger point is deterministic: "kill
// at frame N" means after exactly N frames of the in-flight item, not
// whenever a signal happens to land.  The supervisor forwards the plan to
// the matching shard over the worker command line (`FaultPlan::spec()`
// round-trips through `parse()`), and tests drive the same plans through
// the fork-mode entry point.
//
// Spec grammar (tools/sweep_main --fault=SPEC):
//
//   kill:shard=I,frame=N[,item=J][,attempts=all]
//   stall:shard=I,frame=N[,item=J][,attempts=all]
//   corrupt-checkpoint:shard=I[,mode=bitflip|truncate][,attempts=all]
//   drop-result:shard=I[,attempts=all]
//
// By default a fault fires on the shard's first attempt only, so retries
// recover; `attempts=all` makes it fire every attempt (the give-up path).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace wcdma::runner {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kKill,               // raise(SIGKILL) after stepping the trigger frame
  kStall,              // sleep forever; the supervisor's timeout must fire
  kCorruptCheckpoint,  // damage the just-written checkpoint, then die
  kDropResult,         // finish the shard but never write the result file
};

enum class CorruptMode : std::uint8_t { kBitFlip = 0, kTruncate };

struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  /// Shard the fault targets; plans forwarded to a worker always match its
  /// own shard index (the supervisor filters).
  std::size_t shard = 0;
  /// kKill/kStall: trigger after stepping this frame of the in-flight item.
  /// kCorruptCheckpoint: first checkpoint written at a frame >= this.
  std::int64_t frame = 0;
  /// Optional binding to one global item index; SIZE_MAX (the default)
  /// matches the first item that reaches the trigger frame.
  std::size_t item = SIZE_MAX;
  CorruptMode mode = CorruptMode::kBitFlip;
  /// false (default): first attempt only, so the retry path recovers.
  bool every_attempt = false;

  bool enabled() const { return kind != FaultKind::kNone; }
  /// True when the fault is armed for `attempt` (0-based) of `shard`.
  bool armed_for(std::size_t target_shard, int attempt) const {
    return enabled() && target_shard == shard &&
           (every_attempt || attempt == 0);
  }

  /// Canonical spec string; parse(spec()) reproduces the plan exactly.
  std::string spec() const;
  /// Parses the grammar above; on failure returns false and, when `error`
  /// is non-null, names the offending token.
  static bool parse(const std::string& text, FaultPlan* out,
                    std::string* error);
};

const char* to_string(FaultKind kind);

}  // namespace wcdma::runner
