#include "src/scenario/scenario.hpp"

#include <cmath>

#include "src/common/assert.hpp"

namespace wcdma::scenario {

sim::SystemConfig ScenarioLayout::to_config() const {
  sim::SystemConfig cfg = sim::default_config();
  cfg.layout = layout;
  cfg.placement = placement;
  cfg.mobility.min_speed_mps = min_speed_mps;
  cfg.mobility.max_speed_mps = max_speed_mps;
  cfg.mobility.kind = mobility_kind;
  if (mobility_kind == cell::MobilityKind::kCorridor) {
    cfg.mobility.corridor_half_width_m = corridor_half_width_m;
    // half_length stays 0: the simulator derives it from the service radius
    // so the road spans the whole wrap-around layout.
  }
  cfg.voice.users = voice_users;
  cfg.data.users = data_users;
  cfg.data.mean_reading_s = data_mean_reading_s;
  cfg.data.forward_fraction = data_forward_fraction;
  cfg.load_ramp = load_ramp;
  cfg.sim_duration_s = sim_duration_s;
  cfg.warmup_s = warmup_s;
  cfg.seed = seed;
  cfg.validate();
  return cfg;
}

std::vector<double> uniform_weights(int rings) {
  return std::vector<double>(cell::hex_cell_count(rings), 1.0);
}

std::vector<double> hotspot_weights(int rings, double center_boost) {
  WCDMA_ASSERT(rings >= 1 && center_boost >= 1.0);
  std::vector<double> weights;
  weights.reserve(cell::hex_cell_count(rings));
  // Ring r holds 6r cells after the centre; decay the boost geometrically
  // so ring `rings` sits at weight 1.
  const double decay = std::pow(center_boost, 1.0 / rings);
  weights.push_back(center_boost);
  for (int ring = 1; ring <= rings; ++ring) {
    const double w = center_boost / std::pow(decay, ring);
    for (int i = 0; i < 6 * ring; ++i) weights.push_back(w);
  }
  return weights;
}

std::vector<double> corridor_weights(const cell::HexLayoutConfig& layout,
                                     double half_width_m) {
  const cell::HexLayout hex(layout);
  std::vector<double> weights(hex.num_cells(), 0.0);
  for (std::size_t k = 0; k < hex.num_cells(); ++k) {
    if (std::fabs(hex.center(k).y) <= half_width_m) weights[k] = 1.0;
  }
  return weights;
}

ScenarioLayout uniform_hex7() {
  ScenarioLayout s;
  s.name = "uniform-hex7";
  s.description = "uniformly loaded 7-cell grid, mixed pedestrian/urban users";
  s.layout.rings = 1;
  s.placement.cell_weights = uniform_weights(1);
  s.placement.home_radius_scale = 1.4;  // users roam across cell borders
  s.voice_users = 42;  // ~6 voice + 3 data per cell
  s.data_users = 21;
  s.data_mean_reading_s = 1.2;
  s.sim_duration_s = 120.0;
  s.warmup_s = 10.0;
  s.seed = 20101;
  return s;
}

ScenarioLayout hotspot_center() {
  ScenarioLayout s;
  s.name = "hotspot-center";
  s.description = "19-cell grid, load piled onto the centre cell";
  s.layout.rings = 2;
  s.placement.cell_weights = hotspot_weights(2, 8.0);
  s.placement.home_radius_scale = 1.2;
  s.voice_users = 76;
  s.data_users = 24;
  s.data_mean_reading_s = 1.0;
  s.sim_duration_s = 150.0;
  s.warmup_s = 12.0;
  s.seed = 20202;
  return s;
}

ScenarioLayout highway_corridor() {
  ScenarioLayout s;
  s.name = "highway-corridor";
  s.description = "vehicular load on the row of cells through the origin";
  s.layout.rings = 2;
  // Half a cell radius of lateral spread keeps the load on the 5-cell row.
  s.placement.cell_weights = corridor_weights(s.layout, 0.5 * s.layout.cell_radius_m);
  s.placement.home_radius_scale = 1.5;  // long drives across cell borders
  // Directional along-road motion with wrap-around, lanes matching the
  // corridor weight band.
  s.mobility_kind = cell::MobilityKind::kCorridor;
  s.corridor_half_width_m = 0.5 * s.layout.cell_radius_m;
  s.min_speed_mps = 60.0 / 3.6;
  s.max_speed_mps = 120.0 / 3.6;
  s.voice_users = 40;
  s.data_users = 20;
  s.data_mean_reading_s = 1.5;
  s.sim_duration_s = 120.0;
  s.warmup_s = 10.0;
  s.seed = 20303;
  return s;
}

ScenarioLayout enterprise_data() {
  ScenarioLayout s;
  s.name = "enterprise-data";
  s.description = "data-heavy enterprise mix, two carriers, mostly downloads";
  s.layout.rings = 1;
  s.placement.cell_weights = hotspot_weights(1, 3.0);
  s.placement.home_radius_scale = 1.0;  // indoor users stay near their cell
  s.placement.carriers = 2;
  s.min_speed_mps = 0.3;
  s.max_speed_mps = 1.5;  // walking pace
  s.voice_users = 16;
  s.data_users = 36;
  s.data_mean_reading_s = 0.8;
  s.data_forward_fraction = 0.9;
  s.sim_duration_s = 120.0;
  s.warmup_s = 10.0;
  s.seed = 20404;
  return s;
}

ScenarioLayout large_hex() {
  ScenarioLayout s;
  s.name = "large-hex";
  s.description = "uniformly loaded 127-cell metro grid (6 rings); the "
                  "culling providers' far-field aggregate carries the "
                  "out-of-candidate interference";
  s.layout.rings = 6;  // 127 cells
  s.placement.cell_weights = uniform_weights(6);
  s.placement.home_radius_scale = 1.2;
  // ~15 voice + 3 data per cell: city-scale population, per-cell load
  // comparable to the smaller grids so metrics stay interpretable.
  s.voice_users = 1905;
  s.data_users = 381;
  s.data_mean_reading_s = 1.2;
  s.sim_duration_s = 60.0;
  s.warmup_s = 8.0;
  s.seed = 20505;
  return s;
}

namespace {

struct LayoutEntry {
  const char* name;
  ScenarioLayout (*build)();
};

const LayoutEntry kLayouts[] = {
    {"uniform-hex7", uniform_hex7},
    {"hotspot-center", hotspot_center},
    {"highway-corridor", highway_corridor},
    {"enterprise-data", enterprise_data},
    {"large-hex", large_hex},
};

const LayoutEntry* find_layout(const std::string& name) {
  for (const LayoutEntry& entry : kLayouts) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> layout_names() {
  std::vector<std::string> names;
  for (const LayoutEntry& entry : kLayouts) names.push_back(entry.name);
  return names;
}

bool has_layout(const std::string& name) { return find_layout(name) != nullptr; }

ScenarioLayout make_layout(const std::string& name) {
  const LayoutEntry* entry = find_layout(name);
  WCDMA_ASSERT(entry != nullptr && "unknown scenario layout");
  return entry->build();
}

}  // namespace wcdma::scenario
