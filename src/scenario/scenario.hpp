// Multi-cell scenario layouts (DESIGN step toward the million-user north
// star).
//
// A ScenarioLayout composes cell::geometry, cell::mobility, and the traffic
// mixes into a named multi-cell, multi-carrier topology: how many cells, how
// load is distributed over them (per-cell placement weights), how fast users
// move, the voice/data mix, and the run horizon.  Layouts expand to plain
// sim::SystemConfigs, so everything downstream (simulator, sweep engine,
// benches, CLI) consumes them without knowing they exist.  The named
// topologies mirror the evaluation settings of the paper and of the
// multi-class CAC literature: a uniformly loaded hexagonal grid, a congested
// hotspot centre, a vehicular highway corridor, and a data-heavy enterprise
// deployment on two carriers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/cell/geometry.hpp"
#include "src/sim/config.hpp"

namespace wcdma::scenario {

/// A named multi-cell topology plus the load that lives on it.  Expand with
/// to_config(); sweep presets then put axes on top of the expanded config.
struct ScenarioLayout {
  std::string name;
  std::string description;

  cell::HexLayoutConfig layout{};     // ring count, cell radius, wrap-around
  sim::PlacementConfig placement{};   // per-cell weights, home radius, carriers
  double min_speed_mps = 0.3;
  double max_speed_mps = 16.7;
  /// Corridor layouts drive users along the road (directional line-segment
  /// motion with wrap-around); everything else roams random-waypoint discs.
  cell::MobilityKind mobility_kind = cell::MobilityKind::kRandomWaypoint;
  /// Lateral lane spread of corridor motion (metres; corridor only).
  double corridor_half_width_m = 0.0;

  int voice_users = 60;
  int data_users = 12;
  double data_mean_reading_s = 1.5;
  double data_forward_fraction = 0.5;

  /// Time-varying per-cell arrival scaling (flash crowds): passed through
  /// to SystemConfig.load_ramp.  Disabled by default (peak_scale == 1).
  sim::LoadRampConfig load_ramp{};

  /// Long-horizon run lengths are the default for multi-cell layouts; CI
  /// smoke runs shorten them via sweep_main --duration/--warmup.
  double sim_duration_s = 120.0;
  double warmup_s = 10.0;
  std::uint64_t seed = 42;

  /// Expands onto sim::default_config(); the result passes validate().
  sim::SystemConfig to_config() const;
};

// --- Per-cell weight builders --------------------------------------------
/// Equal weight on every cell of a ring layout.
std::vector<double> uniform_weights(int rings);
/// Centre cell gets `center_boost` times the weight of an outermost cell;
/// intermediate rings interpolate geometrically.
std::vector<double> hotspot_weights(int rings, double center_boost);
/// Weight 1 on cells whose centre lies within `half_width_m` of the x-axis
/// (the row of cells through the origin), 0 elsewhere.
std::vector<double> corridor_weights(const cell::HexLayoutConfig& layout,
                                     double half_width_m);

// --- Named topologies ----------------------------------------------------
/// Uniformly loaded 7-cell hexagonal grid, pedestrian-to-urban mobility.
ScenarioLayout uniform_hex7();
/// 19-cell grid with the load piled onto the centre cell (hotspot).
ScenarioLayout hotspot_center();
/// Vehicular corridor: load confined to the row of cells through the
/// origin, 60-120 km/h speeds.
ScenarioLayout highway_corridor();
/// Data-heavy enterprise mix on two carriers, download-dominated.
ScenarioLayout enterprise_data();
/// Uniformly loaded 127-cell metro grid (6 rings, ~2300 users): the
/// culling + far-field scale point (docs/ACCURACY.md).
ScenarioLayout large_hex();

/// Names accepted by make_layout, in registry order.
std::vector<std::string> layout_names();
bool has_layout(const std::string& name);
/// Builds the named layout; aborts on unknown names (probe with has_layout).
ScenarioLayout make_layout(const std::string& name);

}  // namespace wcdma::scenario
