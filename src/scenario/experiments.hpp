// Canonical experiment definitions (E-numbered after DESIGN.md / the
// paper's figures), shared by the benches and the tests.
//
// Every experiment is a SweepSpec over one canonical scenario, so all
// benches run on the sweep engine's deterministic (scenario x replication)
// runner: per-item seeds derive from (master seed, scenario, replication),
// paired comparisons use common random numbers, and merged metrics are
// bit-identical for any thread count.  Benches only render tables.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sweep/sweep.hpp"

namespace wcdma::scenario {

/// Compact 7-cell hotspot used by the load sweeps: every user in the
/// central cell's footprint so burst requests actually contend.
sim::SystemConfig hotspot_cell_config(std::uint64_t seed);

/// Full 19-cell wide-area scenario (users spread over the whole layout).
sim::SystemConfig wide_area_config(std::uint64_t seed);

/// The paper's headline scheduler line-up: JABA-SD and its baselines.
const std::vector<admission::SchedulerKind>& headline_schedulers();

/// E4 — forward-link burst delay vs data users, schedulers paired by CRN.
sweep::SweepSpec e4_delay_fl();
/// E5 — the reverse-link (all-upload) counterpart of E4.
sweep::SweepSpec e5_delay_rl();
/// E8 — synergy 2x2: {adaptive, fixed-m3} PHY x {JABA-SD, FCFS-single}.
sweep::SweepSpec e8_synergy();
/// E10 — J1 vs J2 and the delay-penalty (lambda, mu) parameter sweep, as
/// one compound axis (the cases are not a cross product).
sweep::SweepSpec e10_objectives();
/// E11 — MAC set-up penalty sweep: compound (T2, T3, D1, D2) timer cases
/// crossed with the J2/J1 objectives.
sweep::SweepSpec e11_mac_states();
/// E12 — the four independent design-choice ablations, in display order:
/// feedback delay, kappa margin, SCRM retry, reduced active-set size.
std::vector<sweep::SweepSpec> e12_ablations();

}  // namespace wcdma::scenario
