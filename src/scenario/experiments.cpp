#include "src/scenario/experiments.hpp"

namespace wcdma::scenario {

using admission::ObjectiveKind;
using admission::SchedulerKind;

sim::SystemConfig hotspot_cell_config(std::uint64_t seed) {
  sim::SystemConfig cfg = sim::default_config();
  cfg.layout.rings = 1;  // 7 cells
  cfg.voice.users = 30;
  cfg.data.users = 12;
  cfg.data.mean_reading_s = 1.0;
  cfg.mobility.region_radius_m = cfg.layout.cell_radius_m;
  cfg.sim_duration_s = 50.0;
  cfg.warmup_s = 8.0;
  cfg.seed = seed;
  return cfg;
}

sim::SystemConfig wide_area_config(std::uint64_t seed) {
  sim::SystemConfig cfg = sim::default_config();
  cfg.voice.users = 60;
  cfg.data.users = 16;
  cfg.data.mean_reading_s = 1.5;
  cfg.sim_duration_s = 60.0;
  cfg.warmup_s = 10.0;
  cfg.seed = seed;
  return cfg;
}

const std::vector<SchedulerKind>& headline_schedulers() {
  static const std::vector<SchedulerKind> kinds = {
      SchedulerKind::kJabaSd, SchedulerKind::kGreedy, SchedulerKind::kFcfs,
      SchedulerKind::kFcfsSingle, SchedulerKind::kEqualShare};
  return kinds;
}

sweep::SweepSpec e4_delay_fl() {
  sweep::SweepSpec spec;
  spec.name = "E4-delay-fl";
  spec.base = hotspot_cell_config(4001);
  spec.base.data.forward_fraction = 1.0;  // all downloads
  spec.axes = {sweep::axis_data_users({4, 8, 12, 16, 20, 24}),
               sweep::axis_scheduler(headline_schedulers())};
  spec.replications = 3;
  spec.common_random_numbers = true;  // paired comparison across schedulers
  return spec;
}

sweep::SweepSpec e5_delay_rl() {
  sweep::SweepSpec spec;
  spec.name = "E5-delay-rl";
  spec.base = hotspot_cell_config(4002);
  spec.base.data.forward_fraction = 0.0;  // all uploads
  spec.axes = {sweep::axis_data_users({4, 8, 12, 16, 20, 24}),
               sweep::axis_scheduler(headline_schedulers())};
  spec.replications = 3;
  spec.common_random_numbers = true;  // paired comparison across schedulers
  return spec;
}

sweep::SweepSpec e8_synergy() {
  sweep::SweepSpec spec;
  spec.name = "E8-synergy";
  spec.base = hotspot_cell_config(4008);
  spec.base.data.users = 20;
  spec.axes = {sweep::axis_fixed_mode({0, 3}),
               sweep::axis_scheduler({SchedulerKind::kJabaSd, SchedulerKind::kFcfsSingle})};
  spec.replications = 1;
  spec.common_random_numbers = true;  // every cell of the 2x2 sees one drop
  return spec;
}

sweep::SweepSpec e10_objectives() {
  sweep::SweepSpec spec;
  spec.name = "E10-objectives";
  spec.base = hotspot_cell_config(4010);
  spec.base.data.users = 20;
  // Compound axis: the paper varies (objective, lambda, mu) jointly, not as
  // a cross product.
  struct Case {
    const char* label;
    ObjectiveKind kind;
    double lambda;
    double mu;
  };
  static const Case kCases[] = {
      {"J1", ObjectiveKind::kJ1MaxRate, 0.0, 0.5},
      {"J2(l=0.5,mu=0.5)", ObjectiveKind::kJ2DelayAware, 0.5, 0.5},
      {"J2(l=2,mu=0.5)", ObjectiveKind::kJ2DelayAware, 2.0, 0.5},
      {"J2(l=10,mu=0.5)", ObjectiveKind::kJ2DelayAware, 10.0, 0.5},
      {"J2(l=2,mu=0.1)", ObjectiveKind::kJ2DelayAware, 2.0, 0.1},
      {"J2(l=2,mu=2.0)", ObjectiveKind::kJ2DelayAware, 2.0, 2.0},
  };
  sweep::Axis axis{"objective", {}};
  for (const Case& c : kCases) {
    axis.values.push_back({c.label, [c](sim::SystemConfig& cfg) {
                             cfg.admission.objective = c.kind;
                             cfg.admission.penalty.lambda = c.lambda;
                             cfg.admission.penalty.mu = c.mu;
                           }});
  }
  spec.axes = {axis};
  spec.replications = 1;
  spec.common_random_numbers = true;  // same drop under every objective
  return spec;
}

sweep::SweepSpec e11_mac_states() {
  sweep::SweepSpec spec;
  spec.name = "E11-mac-states";
  spec.base = hotspot_cell_config(4011);
  spec.base.data.users = 18;
  spec.base.data.mean_reading_s = 3.0;  // long gaps: MAC decays between bursts
  struct Case {
    const char* label;
    double t2, t3, d1, d2;
  };
  static const Case kCases[] = {
      {"no-penalty", 2.0, 10.0, 0.0, 0.0},
      {"default", 2.0, 10.0, 0.040, 0.300},
      {"slow-reacquire", 2.0, 10.0, 0.200, 1.000},
      {"eager-timers", 0.5, 2.0, 0.040, 0.300},
      {"eager+slow", 0.5, 2.0, 0.200, 1.000},
  };
  sweep::Axis timers{"timers", {}};
  for (const Case& c : kCases) {
    timers.values.push_back({c.label, [c](sim::SystemConfig& cfg) {
                               cfg.mac_timers.t2_s = c.t2;
                               cfg.mac_timers.t3_s = c.t3;
                               cfg.mac_timers.d1_s = c.d1;
                               cfg.mac_timers.d2_s = c.d2;
                             }});
  }
  spec.axes = {timers, sweep::axis_objective({ObjectiveKind::kJ2DelayAware,
                                              ObjectiveKind::kJ1MaxRate})};
  spec.replications = 1;
  spec.common_random_numbers = true;  // paired across timers and objectives
  return spec;
}

std::vector<sweep::SweepSpec> e12_ablations() {
  std::vector<sweep::SweepSpec> specs;

  {
    sweep::SweepSpec spec;
    spec.name = "feedback-delay";
    spec.base = hotspot_cell_config(4012);
    spec.base.data.users = 16;
    spec.axes = {sweep::axis_feedback_delay_frames({0, 1, 4, 8})};
    spec.replications = 1;
    spec.common_random_numbers = true;
    specs.push_back(spec);
  }
  {
    sweep::SweepSpec spec;
    spec.name = "kappa-margin";
    spec.base = hotspot_cell_config(4012);
    spec.base.data.users = 16;
    spec.base.data.forward_fraction = 0.0;  // reverse link: kappa matters there
    spec.axes = {sweep::axis_kappa_margin_db({0.0, 2.0, 6.0})};
    spec.replications = 1;
    spec.common_random_numbers = true;
    specs.push_back(spec);
  }
  {
    sweep::SweepSpec spec;
    spec.name = "scrm-retry";
    spec.base = hotspot_cell_config(4012);
    spec.base.data.users = 20;
    spec.axes = {sweep::axis_scrm_retry_s({0.02, 0.26, 1.0})};
    spec.replications = 1;
    spec.common_random_numbers = true;
    specs.push_back(spec);
  }
  {
    sweep::SweepSpec spec;
    spec.name = "reduced-set";
    spec.base = hotspot_cell_config(4012);
    spec.base.data.users = 16;
    spec.base.active_set.max_size = 3;
    spec.axes = {sweep::axis_reduced_set({1, 2, 3})};
    spec.replications = 1;
    spec.common_random_numbers = true;
    specs.push_back(spec);
  }
  return specs;
}

}  // namespace wcdma::scenario
