// Linear admissible regions produced by the measurement sub-layer
// (Section 3.1).  A region is the constraint set  A m <= b  over the
// spreading-gain-ratio vector m of the Nd concurrent burst requests;
// the forward-link (Eq. 7) and reverse-link (Eq. 17) regions stack into a
// single region fed to the scheduling sub-layer.
#pragma once

#include <vector>

#include "src/common/matrix.hpp"

namespace wcdma::admission {

struct Region {
  common::Matrix a;  // K x Nd, nonnegative coefficients
  common::Vector b;  // K, clamped >= 0 so m = 0 (reject all) stays feasible

  std::size_t num_constraints() const { return a.rows(); }
  std::size_t num_requests() const { return a.cols(); }
  bool empty() const { return a.rows() == 0; }

  /// True iff the integer assignment m satisfies A m <= b (+tol).
  bool admits(const std::vector<int>& m, double tol = 1e-9) const;
};

/// Stacks regions (same request count) into one constraint set.
Region stack(const Region& first, const Region& second);

}  // namespace wcdma::admission
