#include "src/admission/schedulers.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/assert.hpp"
#include "src/common/serialize.hpp"

namespace wcdma::admission {

opt::IntegerProgram BurstProblem::to_ip() const {
  opt::IntegerProgram ip;
  ip.a = region.a;
  ip.b = region.b;
  ip.c = c;
  ip.upper = upper;
  return ip;
}

BurstProblem make_burst_problem(Region region, std::vector<RequestView> requests,
                                ObjectiveKind kind, const DelayPenaltyConfig& penalty,
                                const mac::MacTimersConfig& timers, double fch_bit_rate,
                                double min_burst_s, int max_sgr) {
  WCDMA_ASSERT(region.empty() || region.a.cols() == requests.size());
  BurstProblem problem;
  problem.requests = std::move(requests);
  problem.region = std::move(region);
  problem.c = objective_coefficients(problem.requests, kind, penalty, timers);
  problem.upper.reserve(problem.requests.size());
  for (const auto& r : problem.requests) {
    problem.upper.push_back(
        duration_upper_bound(r.q_bits, r.delta_beta, fch_bit_rate, min_burst_s, max_sgr));
  }
  return problem;
}

int Allocation::granted_count() const {
  int n = 0;
  for (int v : m) n += (v > 0) ? 1 : 0;
  return n;
}

namespace {

Allocation empty_allocation(std::size_t n) {
  Allocation a;
  a.m.assign(n, 0);
  return a;
}

double allocation_objective(const BurstProblem& p, const std::vector<int>& m) {
  double acc = 0.0;
  for (std::size_t j = 0; j < m.size(); ++j) acc += p.c[j] * static_cast<double>(m[j]);
  return acc;
}

// Largest grant for request j that fits the remaining slack, up to cap.
int max_feasible_grant(const Region& region, const common::Vector& slack, std::size_t j,
                       int cap) {
  int best = cap;
  for (std::size_t r = 0; r < region.a.rows(); ++r) {
    const double a = region.a(r, j);
    if (a <= 0.0) continue;
    const int fit = static_cast<int>(std::floor(slack[r] / a + 1e-12));
    best = std::min(best, fit);
    if (best <= 0) return 0;
  }
  return best;
}

void consume(const Region& region, common::Vector& slack, std::size_t j, int grant) {
  for (std::size_t r = 0; r < region.a.rows(); ++r) {
    slack[r] -= region.a(r, j) * static_cast<double>(grant);
    WCDMA_DEBUG_ASSERT(slack[r] >= -1e-9);
  }
}

// Order: descending waiting time (== ascending arrival time) with user id
// as a deterministic tie-break.
std::vector<std::size_t> arrival_order(const BurstProblem& p) {
  std::vector<std::size_t> order(p.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (p.requests[a].waiting_s != p.requests[b].waiting_s) {
      return p.requests[a].waiting_s > p.requests[b].waiting_s;
    }
    return p.requests[a].user < p.requests[b].user;
  });
  return order;
}

Allocation grant_in_order(const BurstProblem& p, const std::vector<std::size_t>& order,
                          bool single_burst) {
  Allocation alloc = empty_allocation(p.size());
  common::Vector slack = p.region.b;
  for (std::size_t j : order) {
    const int grant = max_feasible_grant(p.region, slack, j, p.upper[j]);
    if (grant <= 0) continue;
    alloc.m[j] = grant;
    consume(p.region, slack, j, grant);
    if (single_burst) break;
  }
  alloc.objective = allocation_objective(p, alloc.m);
  return alloc;
}

}  // namespace

JabaSdScheduler::JabaSdScheduler() : options_(Options{}) {}

JabaSdScheduler::JabaSdScheduler(const Options& options) : options_(options) {}

Allocation JabaSdScheduler::schedule(const BurstProblem& problem) {
  if (problem.size() == 0) return empty_allocation(0);
  const opt::IntegerProgram ip = problem.to_ip();
  if (problem.size() <= options_.exact_threshold) {
    opt::BranchBoundSolver::Options bb;
    bb.max_nodes = options_.max_nodes;
    const opt::IpResult r = opt::BranchBoundSolver(bb).solve(ip);
    Allocation alloc;
    alloc.m = r.x;
    alloc.objective = r.objective;
    alloc.proven_optimal = r.proven_optimal;
    alloc.nodes = r.nodes;
    WCDMA_ASSERT(problem.region.admits(alloc.m));
    return alloc;
  }
  // Large instances: polynomial greedy engine.
  Allocation alloc;
  alloc.m = opt::greedy_increments(ip);
  alloc.objective = allocation_objective(problem, alloc.m);
  WCDMA_ASSERT(problem.region.admits(alloc.m));
  return alloc;
}

Allocation GreedyScheduler::schedule(const BurstProblem& problem) {
  if (problem.size() == 0) return empty_allocation(0);
  Allocation alloc;
  alloc.m = opt::greedy_increments(problem.to_ip());
  alloc.objective = allocation_objective(problem, alloc.m);
  WCDMA_ASSERT(problem.region.admits(alloc.m));
  return alloc;
}

Allocation FcfsScheduler::schedule(const BurstProblem& problem) {
  if (problem.size() == 0) return empty_allocation(0);
  const Allocation alloc = grant_in_order(problem, arrival_order(problem), single_burst_);
  WCDMA_ASSERT(problem.region.admits(alloc.m));
  return alloc;
}

Allocation EqualShareScheduler::schedule(const BurstProblem& problem) {
  const std::size_t n = problem.size();
  if (n == 0) return empty_allocation(0);

  // Serve the `count` longest-waiting requests with the largest uniform
  // SGR; shrink the served set if even m = 1 does not fit (ref [8]).
  const std::vector<std::size_t> order = arrival_order(problem);
  int max_u = 0;
  for (int u : problem.upper) max_u = std::max(max_u, u);

  for (std::size_t count = n; count >= 1; --count) {
    for (int m = max_u; m >= 1; --m) {
      std::vector<int> trial(n, 0);
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t j = order[i];
        trial[j] = std::min(m, problem.upper[j]);
      }
      if (problem.region.admits(trial)) {
        Allocation alloc;
        alloc.m = std::move(trial);
        alloc.objective = allocation_objective(problem, alloc.m);
        return alloc;
      }
    }
  }
  return empty_allocation(n);
}

Allocation RandomScheduler::schedule(const BurstProblem& problem) {
  const std::size_t n = problem.size();
  if (n == 0) return empty_allocation(0);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates with the scheduler's own stream.
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t k = rng_.uniform_int(i);
    std::swap(order[i - 1], order[k]);
  }
  const Allocation alloc = grant_in_order(problem, order, /*single_burst=*/false);
  WCDMA_ASSERT(problem.region.admits(alloc.m));
  return alloc;
}

void RandomScheduler::save_state(common::BinaryWriter& w) const { rng_.save(w); }

bool RandomScheduler::load_state(common::BinaryReader& r) {
  rng_.load(r);
  return r.ok();
}

const char* to_string(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kJabaSd: return "JABA-SD";
    case SchedulerKind::kGreedy: return "JABA-SD-greedy";
    case SchedulerKind::kFcfs: return "FCFS";
    case SchedulerKind::kFcfsSingle: return "FCFS-single";
    case SchedulerKind::kEqualShare: return "EqualShare";
    case SchedulerKind::kRandom: return "Random";
  }
  return "?";
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind, std::uint64_t seed) {
  switch (kind) {
    case SchedulerKind::kJabaSd:
      return std::make_unique<JabaSdScheduler>();
    case SchedulerKind::kGreedy:
      return std::make_unique<GreedyScheduler>();
    case SchedulerKind::kFcfs:
      return std::make_unique<FcfsScheduler>(false);
    case SchedulerKind::kFcfsSingle:
      return std::make_unique<FcfsScheduler>(true);
    case SchedulerKind::kEqualShare:
      return std::make_unique<EqualShareScheduler>();
    case SchedulerKind::kRandom:
      return std::make_unique<RandomScheduler>(common::Rng(seed));
  }
  return nullptr;
}

}  // namespace wcdma::admission
