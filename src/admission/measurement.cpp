#include "src/admission/measurement.hpp"

#include <algorithm>

#include "src/common/assert.hpp"

namespace wcdma::admission {

Region build_forward_region(const ForwardLinkInputs& inputs) {
  const std::size_t num_cells = inputs.cell_load_watt.size();
  const std::size_t nd = inputs.users.size();
  WCDMA_ASSERT(inputs.p_max_watt > 0.0 && inputs.gamma_s > 0.0);

  Region region;
  region.a = common::Matrix(num_cells, nd, 0.0);
  region.b.assign(num_cells, 0.0);

  for (std::size_t k = 0; k < num_cells; ++k) {
    region.b[k] = std::max(0.0, inputs.p_max_watt - inputs.cell_load_watt[k]);
  }
  for (std::size_t j = 0; j < nd; ++j) {
    const auto& u = inputs.users[j];
    WCDMA_ASSERT(u.alpha_fl > 0.0);
    for (const auto& leg : u.reduced_active_set) {
      WCDMA_ASSERT(leg.cell < num_cells);
      WCDMA_ASSERT(leg.fch_power_watt >= 0.0);
      // a_{kj} = gamma_s * P_{j,k} * alpha_j^{FL}   (Eq. 8)
      region.a(leg.cell, j) = inputs.gamma_s * leg.fch_power_watt * u.alpha_fl;
    }
  }
  return region;
}

Region build_reverse_region(const ReverseLinkInputs& inputs) {
  const std::size_t num_cells = inputs.cell_interference_watt.size();
  const std::size_t nd = inputs.users.size();
  WCDMA_ASSERT(inputs.l_max_watt > 0.0 && inputs.gamma_s > 0.0 && inputs.kappa >= 1.0);

  Region region;
  region.a = common::Matrix(num_cells, nd, 0.0);
  region.b.assign(num_cells, 0.0);

  for (std::size_t k = 0; k < num_cells; ++k) {
    const double l_k = inputs.cell_interference_watt[k];
    WCDMA_ASSERT(l_k > 0.0);
    // RHS after normalising row k by L_k (Eq. 17): L_max / L_k - 1.
    region.b[k] = std::max(0.0, inputs.l_max_watt / l_k - 1.0);
  }

  for (std::size_t j = 0; j < nd; ++j) {
    const auto& u = inputs.users[j];
    WCDMA_ASSERT(!u.soft_handoff.empty());
    WCDMA_ASSERT(u.zeta > 0.0 && u.alpha_rl > 0.0);

    // Soft-handoff rows (Eq. 12 / first case of Eq. 18).
    for (const auto& leg : u.soft_handoff) {
      WCDMA_ASSERT(leg.cell < num_cells);
      WCDMA_ASSERT(leg.pilot_ec_io > 0.0);
      region.a(leg.cell, j) = inputs.gamma_s * u.zeta * leg.pilot_ec_io * u.alpha_rl;
    }

    // Neighbour rows via the SCRM forward-pilot projection (Eq. 13-15).
    const auto& host = u.soft_handoff.front();
    const double l_host = inputs.cell_interference_watt[host.cell];
    // Host cell's forward pilot (needed as the projection denominator).
    double host_fl_pilot = 0.0;
    for (const auto& pr : u.scrm_pilots) {
      if (pr.cell == host.cell) host_fl_pilot = pr.pilot_ec_io;
    }
    if (host_fl_pilot <= 0.0) continue;  // no usable report: skip projection

    for (const auto& pr : u.scrm_pilots) {
      WCDMA_ASSERT(pr.cell < num_cells);
      if (region.a(pr.cell, j) > 0.0) continue;  // already a SHO row
      if (pr.pilot_ec_io <= 0.0) continue;
      const double l_kp = inputs.cell_interference_watt[pr.cell];
      // Projected rise at k': host-cell received FCH power scaled by the
      // forward-pilot path-loss ratio and the shadowing margin, normalised
      // by L_k' (Eq. 15 folded into row form).
      const double path_ratio = pr.pilot_ec_io / host_fl_pilot;
      region.a(pr.cell, j) = inputs.gamma_s * u.zeta * host.pilot_ec_io * u.alpha_rl *
                             path_ratio * inputs.kappa * (l_host / l_kp);
    }
  }
  return region;
}

}  // namespace wcdma::admission
