#include "src/admission/objectives.hpp"

#include <cmath>

#include "src/common/assert.hpp"

namespace wcdma::admission {

const char* to_string(ObjectiveKind k) {
  switch (k) {
    case ObjectiveKind::kJ1MaxRate: return "J1-max-rate";
    case ObjectiveKind::kJ2DelayAware: return "J2-delay-aware";
  }
  return "?";
}

double delay_weight(const DelayPenaltyConfig& config, double w_s) {
  WCDMA_DEBUG_ASSERT(w_s >= 0.0);
  return 1.0 - std::exp(-config.mu * w_s);
}

double delay_penalty(const DelayPenaltyConfig& config, double w_s, double r, double r_max) {
  WCDMA_DEBUG_ASSERT(r >= 0.0 && r <= r_max + 1e-12);
  return config.lambda * delay_weight(config, w_s) * (r_max - r);
}

std::vector<double> objective_coefficients(const std::vector<RequestView>& requests,
                                           ObjectiveKind kind,
                                           const DelayPenaltyConfig& penalty,
                                           const mac::MacTimersConfig& timers) {
  std::vector<double> c;
  c.reserve(requests.size());
  for (const auto& r : requests) {
    WCDMA_ASSERT(r.delta_beta > 0.0);
    double coeff = r.delta_beta * (1.0 + r.priority);  // J1 term (Eq. 19)
    if (kind == ObjectiveKind::kJ2DelayAware) {
      // Effective delay includes the MAC set-up penalty (Eq. 22-23); the
      // linear-in-rate penalty folds into a per-unit-rate boost.
      const double w = mac::effective_request_delay(timers, r.waiting_s);
      coeff += r.delta_beta * penalty.lambda * delay_weight(penalty, w);
    }
    c.push_back(coeff);
  }
  return c;
}

int duration_upper_bound(double q_bits, double delta_beta, double fch_bit_rate,
                         double min_burst_s, int max_sgr) {
  WCDMA_ASSERT(q_bits > 0.0 && delta_beta > 0.0 && fch_bit_rate > 0.0);
  WCDMA_ASSERT(min_burst_s > 0.0 && max_sgr >= 1);
  // Duration at SGR m is Q / (m * dbeta * R_f); requiring >= T_min gives
  // m <= Q / (dbeta * R_f * T_min).
  const double cap = q_bits / (delta_beta * fch_bit_rate * min_burst_s);
  int u = static_cast<int>(std::floor(cap));
  if (u < 1) u = 1;  // keep short bursts servable at the minimum rate
  if (u > max_sgr) u = max_sgr;
  return u;
}

double burst_duration_s(double q_bits, int m, double delta_beta, double fch_bit_rate) {
  WCDMA_DEBUG_ASSERT(m >= 0);
  if (m == 0) return 0.0;
  return q_bits / (static_cast<double>(m) * delta_beta * fch_bit_rate);
}

}  // namespace wcdma::admission
