#include "src/admission/policy.hpp"

#include <algorithm>
#include <map>

#include "src/common/assert.hpp"

namespace wcdma::admission {

namespace {

constexpr double kTiny = 1e-30;  // matches the simulator's measurement floor

}  // namespace

BurstProblem FrameContext::make_problem(mac::LinkDirection direction, int carrier,
                                        const std::vector<std::size_t>& subset) const {
  WCDMA_ASSERT(carrier >= 0 && carrier < carriers);
  const std::size_t nd = subset.size();
  Region region;

  if (direction == mac::LinkDirection::kForward) {
    ForwardLinkInputs inputs;
    inputs.p_max_watt = p_max_watt;
    inputs.gamma_s = gamma_s;
    inputs.cell_load_watt.resize(num_cells);
    for (std::size_t k = 0; k < num_cells; ++k) {
      inputs.cell_load_watt[k] = forward_load(k, carrier);
    }
    inputs.users.resize(nd);
    for (std::size_t j = 0; j < nd; ++j) {
      const FrameRequest& r = requests[subset[j]];
      auto& m = inputs.users[j];
      m.alpha_fl = r.alpha_fl;
      for (const auto& [k, gain] : r.reduced_set) {
        (void)gain;
        m.reduced_active_set.push_back({k, r.fch_power_watt});
      }
    }
    region = build_forward_region(inputs);
  } else {
    ReverseLinkInputs inputs;
    inputs.l_max_watt = l_max_watt;
    inputs.gamma_s = gamma_s;
    inputs.kappa = kappa_linear;
    inputs.cell_interference_watt.resize(num_cells);
    for (std::size_t k = 0; k < num_cells; ++k) {
      inputs.cell_interference_watt[k] = reverse_interference(k, carrier);
    }
    inputs.users.resize(nd);
    for (std::size_t j = 0; j < nd; ++j) {
      const FrameRequest& r = requests[subset[j]];
      auto& m = inputs.users[j];
      m.zeta = r.zeta;
      m.alpha_rl = r.alpha_rl;
      for (const auto& [k, gain] : r.reduced_set) {
        const double xi_rl = r.pilot_tx_watt * gain /
                             std::max(reverse_interference(k, carrier), kTiny);
        m.soft_handoff.push_back({k, std::max(xi_rl, kTiny)});
      }
      m.scrm_pilots = r.scrm_pilots;
    }
    region = build_reverse_region(inputs);
  }

  std::vector<RequestView> views(nd);
  for (std::size_t j = 0; j < nd; ++j) {
    const FrameRequest& r = requests[subset[j]];
    views[j].user = r.user;
    views[j].q_bits = r.q_bits;
    views[j].waiting_s = r.waiting_s;
    views[j].priority = r.priority;
    views[j].delta_beta = r.delta_beta;
  }

  BurstProblem problem =
      make_burst_problem(std::move(region), std::move(views), objective, penalty,
                         timers, fch_bit_rate, min_burst_s, max_sgr);
  for (std::size_t j = 0; j < nd; ++j) {
    problem.upper[j] = std::min(problem.upper[j], requests[subset[j]].tx_cap);
  }
  return problem;
}

namespace {

/// Shared base pass of the scheduler-backed policies: assemble the round's
/// problem on `carrier`, run the scheduler, enforce the admissible region,
/// and append one grant per positive allocation.
Allocation solve_round(Scheduler& scheduler, const FrameContext& ctx,
                       mac::LinkDirection direction, int carrier,
                       const std::vector<std::size_t>& subset,
                       std::vector<PolicyGrant>* grants) {
  const BurstProblem problem = ctx.make_problem(direction, carrier, subset);
  Allocation alloc = scheduler.schedule(problem);
  WCDMA_ASSERT(problem.region.admits(alloc.m));
  for (std::size_t j = 0; j < subset.size(); ++j) {
    if (alloc.m[j] > 0) grants->push_back({subset[j], alloc.m[j], carrier});
  }
  return alloc;
}

}  // namespace

SchedulerPolicy::SchedulerPolicy(std::unique_ptr<Scheduler> scheduler)
    : scheduler_(std::move(scheduler)) {
  WCDMA_ASSERT(scheduler_ != nullptr);
}

std::string SchedulerPolicy::name() const { return scheduler_->name(); }

std::vector<PolicyGrant> SchedulerPolicy::decide(const FrameContext& ctx,
                                                 mac::LinkDirection direction, int carrier,
                                                 const std::vector<std::size_t>& round) {
  std::vector<PolicyGrant> grants;
  solve_round(*scheduler_, ctx, direction, carrier, round, &grants);
  return grants;
}

void SchedulerPolicy::save_state(common::BinaryWriter& w) const {
  scheduler_->save_state(w);
}

bool SchedulerPolicy::load_state(common::BinaryReader& r) {
  return scheduler_->load_state(r);
}

HandDownPolicy::HandDownPolicy(std::unique_ptr<Scheduler> scheduler)
    : scheduler_(std::move(scheduler)) {
  WCDMA_ASSERT(scheduler_ != nullptr);
}

void HandDownPolicy::save_state(common::BinaryWriter& w) const {
  scheduler_->save_state(w);
}

bool HandDownPolicy::load_state(common::BinaryReader& r) {
  return scheduler_->load_state(r);
}

std::vector<PolicyGrant> HandDownPolicy::decide(const FrameContext& ctx,
                                                mac::LinkDirection direction, int carrier,
                                                const std::vector<std::size_t>& round) {
  std::vector<PolicyGrant> grants;
  const Allocation alloc = solve_round(*scheduler_, ctx, direction, carrier, round, &grants);
  if (ctx.carriers <= 1) return grants;

  // Hand-down pass: each rejected request targets the least-loaded other
  // carrier.  Forward bursts price carriers by the primary cell's PA load;
  // reverse bursts weight the rise over the FULL reduced set (gain-weighted
  // mean), because a reverse burst raises interference at every soft-
  // hand-off leg -- picking by the primary cell alone walks into carriers
  // whose secondary-leg rise is already at the cap (rise asymmetry).
  // Requests sharing a target are re-priced JOINTLY on that carrier's
  // admissible region, so concurrent hand-downs cannot over-admit it.
  std::map<int, std::vector<std::size_t>> by_target;
  for (std::size_t j = 0; j < round.size(); ++j) {
    if (alloc.m[j] > 0) continue;
    const FrameRequest& r = ctx.requests[round[j]];
    if (r.reduced_set.empty()) continue;
    const std::size_t primary = r.reduced_set.front().first;
    int target = -1;
    double best_load = 0.0;
    for (int c = 0; c < ctx.carriers; ++c) {
      if (c == carrier) continue;
      double load = 0.0;
      if (direction == mac::LinkDirection::kForward) {
        load = ctx.forward_load(primary, c);
      } else {
        double weighted = 0.0, weight_sum = 0.0;
        for (const auto& [cell, gain] : r.reduced_set) {
          weighted += gain * ctx.reverse_interference(cell, c);
          weight_sum += gain;
        }
        load = weight_sum > 0.0 ? weighted / weight_sum
                                : ctx.reverse_interference(primary, c);
      }
      if (target < 0 || load < best_load) {
        target = c;
        best_load = load;
      }
    }
    by_target[target].push_back(round[j]);
  }
  for (const auto& [target, subset] : by_target) {
    solve_round(*scheduler_, ctx, direction, target, subset, &grants);
  }
  return grants;
}

namespace {

struct PolicyEntry {
  const char* name;
  const char* description;
  std::unique_ptr<AdmissionPolicy> (*build)(std::uint64_t seed);
};

template <SchedulerKind Kind>
std::unique_ptr<AdmissionPolicy> build_scheduler_policy(std::uint64_t seed) {
  return std::make_unique<SchedulerPolicy>(make_scheduler(Kind, seed));
}

std::unique_ptr<AdmissionPolicy> build_hand_down(std::uint64_t seed) {
  return std::make_unique<HandDownPolicy>(make_scheduler(SchedulerKind::kJabaSd, seed));
}

const PolicyEntry kPolicies[] = {
    {"jaba-sd", "the paper's IP solve (exact B&B, greedy beyond threshold)",
     build_scheduler_policy<SchedulerKind::kJabaSd>},
    {"jaba-sd-greedy", "pure polynomial greedy marginal-utility engine",
     build_scheduler_policy<SchedulerKind::kGreedy>},
    {"fcfs", "cdma2000-style first-come-first-serve burst grants",
     build_scheduler_policy<SchedulerKind::kFcfs>},
    {"fcfs-single", "strict single-burst-per-frame FCFS",
     build_scheduler_policy<SchedulerKind::kFcfsSingle>},
    {"equal-share", "equal sharing between concurrent burst requests",
     build_scheduler_policy<SchedulerKind::kEqualShare>},
    {"random", "random-order max-grant fairness baseline",
     build_scheduler_policy<SchedulerKind::kRandom>},
    {"hand-down", "JABA-SD plus inter-carrier hand-down of rejected requests",
     build_hand_down},
};

const PolicyEntry* find_policy(const std::string& name) {
  for (const PolicyEntry& entry : kPolicies) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> policy_names() {
  std::vector<std::string> names;
  for (const PolicyEntry& entry : kPolicies) names.push_back(entry.name);
  return names;
}

bool has_policy(const std::string& name) { return find_policy(name) != nullptr; }

std::unique_ptr<AdmissionPolicy> make_policy(const std::string& name, std::uint64_t seed) {
  const PolicyEntry* entry = find_policy(name);
  WCDMA_ASSERT(entry != nullptr && "unknown admission policy");
  return entry->build(seed);
}

std::string policy_description(const std::string& name) {
  const PolicyEntry* entry = find_policy(name);
  WCDMA_ASSERT(entry != nullptr && "unknown admission policy");
  return entry->description;
}

const char* policy_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kJabaSd: return "jaba-sd";
    case SchedulerKind::kGreedy: return "jaba-sd-greedy";
    case SchedulerKind::kFcfs: return "fcfs";
    case SchedulerKind::kFcfsSingle: return "fcfs-single";
    case SchedulerKind::kEqualShare: return "equal-share";
    case SchedulerKind::kRandom: return "random";
  }
  return "jaba-sd";
}

}  // namespace wcdma::admission
