// Scheduling sub-layer (Section 3.2): solvers for the multiple-burst
// admission integer program, plus the baselines the paper compares against.
//
//  * JabaSdScheduler — the paper's contribution: solve the IP (spatial
//    dimension only; bursts start at the next frame boundary).  Exact
//    branch-and-bound up to a size threshold, greedy marginal-utility
//    beyond it (the greedy *is* the polynomial JABA-SD heuristic and is
//    near-optimal on these packing instances; see bench_solver_gap).
//  * FcfsScheduler — cdma2000-style first-come-first-serve burst grants
//    (ref [1]); optionally single-burst-per-frame (ref [2]).
//  * EqualShareScheduler — "empirical scheduling such as equal sharing
//    between multiple burst requests" (ref [8]).
//  * RandomScheduler — random-order max-grant; fairness/sanity reference.
//
// All schedulers return assignments that satisfy the admissible region and
// the per-request bounds by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/admission/objectives.hpp"
#include "src/admission/region.hpp"
#include "src/common/rng.hpp"
#include "src/opt/branch_bound.hpp"

namespace wcdma::admission {

/// The assembled per-frame scheduling problem for one link direction.
struct BurstProblem {
  Region region;                      // stacked admissible region(s)
  std::vector<RequestView> requests;  // column j <-> requests[j]
  std::vector<double> c;              // objective coefficients (J1 or J2)
  std::vector<int> upper;             // Eq. 24 bounds u_j

  std::size_t size() const { return requests.size(); }
  opt::IntegerProgram to_ip() const;
};

/// Builds the BurstProblem from its pieces; validates dimensions.
BurstProblem make_burst_problem(Region region, std::vector<RequestView> requests,
                                ObjectiveKind kind, const DelayPenaltyConfig& penalty,
                                const mac::MacTimersConfig& timers, double fch_bit_rate,
                                double min_burst_s, int max_sgr);

struct Allocation {
  std::vector<int> m;           // spreading-gain ratio per request (0 = reject)
  double objective = 0.0;       // value of c' m
  bool proven_optimal = false;  // true only for exact solves
  std::int64_t nodes = 0;       // B&B nodes (0 for heuristics)

  int granted_count() const;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual Allocation schedule(const BurstProblem& problem) = 0;
  virtual std::string name() const = 0;

  /// Checkpoint hooks: only stochastic schedulers carry evolved state (the
  /// "random" baseline's RNG); deterministic solvers keep the empty default.
  virtual void save_state(common::BinaryWriter&) const {}
  virtual bool load_state(common::BinaryReader&) { return true; }
};

class JabaSdScheduler final : public Scheduler {
 public:
  struct Options {
    std::size_t exact_threshold = 32;  // use B&B up to this many requests
    std::int64_t max_nodes = 100000;
  };
  JabaSdScheduler();
  explicit JabaSdScheduler(const Options& options);
  Allocation schedule(const BurstProblem& problem) override;
  std::string name() const override { return "JABA-SD"; }

 private:
  Options options_;
};

/// Pure greedy marginal-utility heuristic (the polynomial JABA-SD engine).
class GreedyScheduler final : public Scheduler {
 public:
  Allocation schedule(const BurstProblem& problem) override;
  std::string name() const override { return "JABA-SD-greedy"; }
};

class FcfsScheduler final : public Scheduler {
 public:
  /// `single_burst`: grant at most one request per invocation (the strict
  /// early-cdma2000 behaviour where one data user owns the SCH).
  explicit FcfsScheduler(bool single_burst = false) : single_burst_(single_burst) {}
  Allocation schedule(const BurstProblem& problem) override;
  std::string name() const override { return single_burst_ ? "FCFS-single" : "FCFS"; }

 private:
  bool single_burst_;
};

class EqualShareScheduler final : public Scheduler {
 public:
  Allocation schedule(const BurstProblem& problem) override;
  std::string name() const override { return "EqualShare"; }
};

class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(common::Rng rng) : rng_(rng) {}
  Allocation schedule(const BurstProblem& problem) override;
  std::string name() const override { return "Random"; }
  void save_state(common::BinaryWriter& w) const override;
  bool load_state(common::BinaryReader& r) override;

 private:
  common::Rng rng_;
};

enum class SchedulerKind { kJabaSd, kGreedy, kFcfs, kFcfsSingle, kEqualShare, kRandom };

const char* to_string(SchedulerKind k);

/// Factory used by the simulator/bench configuration.
std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind, std::uint64_t seed = 1);

}  // namespace wcdma::admission
