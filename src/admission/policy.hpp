// Pluggable admission-policy API for the simulator core.
//
// The paper's JABA-SD scheduler is one point in a family of burst admission
// schemes (the multi-class CAC literature frames admission as a swappable
// policy over measured state).  This header makes that seam public: each
// frame the simulator snapshots its radio measurements into a read-only
// FrameContext -- pending burst requests, per-(cell,carrier) load and rise
// measurements, and the per-user CSI views the measurement sub-layer needs
// -- and asks an AdmissionPolicy for per-(direction,carrier) grant
// decisions.  Policies can rebuild the Eq. 7/17 admissible regions for ANY
// carrier from the context, which is what makes inter-carrier hand-down
// (re-assigning a requester's carrier at grant time) expressible as a
// policy rather than a simulator edit.
//
// A string-keyed registry (mirroring the sweep preset registry) constructs
// policies by name so new schemes are drop-in plugins: SystemConfig, sweep
// axes (policy=...), and the sweep_main CLI all plumb the name through.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/admission/measurement.hpp"
#include "src/admission/schedulers.hpp"
#include "src/mac/scrm.hpp"

namespace wcdma::admission {

/// Snapshot of one pending burst request, taken at the start of the frame's
/// admission phase.  Measurement fields are carrier-independent (gains,
/// transmit powers, active-set geometry); only the cell loads in the
/// FrameContext differ per carrier, so a policy can price this request on
/// any carrier.
struct FrameRequest {
  int user = -1;        // simulator user id
  int carrier = 0;      // the carrier the request arrived on
  bool forward = true;  // burst direction

  // Scheduling view (Eq. 19-24 inputs).
  double q_bits = 0.0;
  double waiting_s = 0.0;
  double priority = 0.0;
  double delta_beta = 1.0;
  int tx_cap = 0;  // reverse: SGR cap from the mobile power budget; forward: M

  // Measurement view (Eq. 7-18 inputs).
  double fch_power_watt = 0.0;   // P_j: current forward FCH power
  double pilot_tx_watt = 0.0;    // mobile pilot TX power
  double alpha_fl = 1.0;         // reduced-active-set forward adjustment
  double alpha_rl = 1.0;         // reverse soft-handoff adjustment
  double zeta = 2.0;             // FCH-to-pilot TX ratio at the mobile
  /// Reduced active set, strongest first: (cell, local-mean gain to it).
  std::vector<std::pair<std::size_t, double>> reduced_set;
  /// SCRM pilot reports (up to 8 strongest forward pilots, footnote 6).
  std::vector<ReverseUserMeasurement::PilotReport> scrm_pilots;
};

/// Read-only per-frame measurement snapshot handed to AdmissionPolicy.
/// (cell, carrier) interference domains are indexed cell * carriers +
/// carrier, matching the simulator's station layout.
struct FrameContext {
  double now_s = 0.0;
  std::size_t num_cells = 0;
  int carriers = 1;

  /// Last frame's total forward TX power per (cell, carrier) domain (P_k).
  std::vector<double> forward_load_watt;
  /// This frame's total received power per (cell, carrier) domain (L_k).
  std::vector<double> reverse_interference_watt;

  // Region and objective parameters (from SystemConfig).
  double p_max_watt = 20.0;
  double l_max_watt = 0.0;
  double gamma_s = 3.2;
  double kappa_linear = 1.585;
  ObjectiveKind objective = ObjectiveKind::kJ2DelayAware;
  DelayPenaltyConfig penalty{};
  mac::MacTimersConfig timers{};
  double fch_bit_rate = 9600.0;
  double min_burst_s = 0.080;
  int max_sgr = 16;

  /// Every request eligible for scheduling this frame (all carriers and
  /// directions), in user-id order.
  std::vector<FrameRequest> requests;

  std::size_t station_index(std::size_t cell, int carrier) const {
    return cell * static_cast<std::size_t>(carriers) + static_cast<std::size_t>(carrier);
  }
  double forward_load(std::size_t cell, int carrier) const {
    return forward_load_watt[station_index(cell, carrier)];
  }
  double reverse_interference(std::size_t cell, int carrier) const {
    return reverse_interference_watt[station_index(cell, carrier)];
  }

  /// Assembles the measurement sub-layer's BurstProblem (region, objective
  /// coefficients, Eq. 24 bounds) for `subset` (indices into `requests`)
  /// priced on `carrier`.  Pure: callable for any carrier, any subset.
  BurstProblem make_problem(mac::LinkDirection direction, int carrier,
                            const std::vector<std::size_t>& subset) const;
};

/// One granted request: `request` indexes FrameContext::requests.  `carrier`
/// is the serving carrier -- equal to the request's own carrier unless the
/// policy hands the burst down to another one.
struct PolicyGrant {
  std::size_t request = 0;
  int m = 0;
  int carrier = 0;
};

/// The admission seam: one decide() call per (direction, carrier) scheduling
/// round.  `round` lists the indices of ctx.requests pending on that
/// (direction, carrier).  Requests absent from the returned grants are
/// rejected for this frame (SCRM retry gate applies).
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;
  virtual std::vector<PolicyGrant> decide(const FrameContext& ctx,
                                          mac::LinkDirection direction, int carrier,
                                          const std::vector<std::size_t>& round) = 0;
  virtual std::string name() const = 0;

  /// Checkpoint hooks, forwarded to the wrapped scheduler where one exists;
  /// policies without evolved state keep the empty default.
  virtual void save_state(common::BinaryWriter&) const {}
  virtual bool load_state(common::BinaryReader&) { return true; }
};

/// Adapts a scheduling-sub-layer Scheduler (Section 3.2) to the policy API:
/// builds the round's BurstProblem on the requests' own carrier and grants
/// the scheduler's allocation verbatim.  All six legacy schedulers ship
/// through this wrapper; the default-policy path is bit-identical to the
/// pre-seam simulator.
class SchedulerPolicy final : public AdmissionPolicy {
 public:
  explicit SchedulerPolicy(std::unique_ptr<Scheduler> scheduler);
  std::vector<PolicyGrant> decide(const FrameContext& ctx, mac::LinkDirection direction,
                                  int carrier, const std::vector<std::size_t>& round) override;
  std::string name() const override;
  void save_state(common::BinaryWriter& w) const override;
  bool load_state(common::BinaryReader& r) override;

 private:
  std::unique_ptr<Scheduler> scheduler_;
};

/// Inter-carrier hand-down (load balancing): run the base scheduler on the
/// round's own carrier first; every request it rejects is re-priced on the
/// least-loaded other carrier and granted there when the admissible region
/// has room.  Rejects sharing a target carrier are re-solved jointly on
/// that carrier's region, so one round's hand-downs cannot over-admit it.
/// Across rounds the usual lagged-fixed-point semantics apply (rounds price
/// against last frame's loads and do not see each other's grants; the
/// simulator's physical power/rise caps absorb transient over-commitment,
/// exactly as for same-carrier forward/reverse rounds).  Only expressible
/// through the policy API, which lets a grant carry a different carrier
/// than the request.
class HandDownPolicy final : public AdmissionPolicy {
 public:
  explicit HandDownPolicy(std::unique_ptr<Scheduler> scheduler);
  std::vector<PolicyGrant> decide(const FrameContext& ctx, mac::LinkDirection direction,
                                  int carrier, const std::vector<std::size_t>& round) override;
  std::string name() const override { return "HandDown"; }
  void save_state(common::BinaryWriter& w) const override;
  bool load_state(common::BinaryReader& r) override;

 private:
  std::unique_ptr<Scheduler> scheduler_;
};

// --- PolicyRegistry: string-keyed factories --------------------------------
/// Registered policy names, in registry order.
std::vector<std::string> policy_names();
bool has_policy(const std::string& name);
/// Builds the named policy; aborts on unknown names (probe with has_policy).
/// `seed` feeds stochastic policies (the "random" baseline).
std::unique_ptr<AdmissionPolicy> make_policy(const std::string& name,
                                             std::uint64_t seed = 1);
std::string policy_description(const std::string& name);
/// Registry name of a legacy SchedulerKind (backward compatibility shim for
/// configs that still speak the enum).
const char* policy_name(SchedulerKind kind);

}  // namespace wcdma::admission
