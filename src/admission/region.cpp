#include "src/admission/region.hpp"

#include "src/common/assert.hpp"

namespace wcdma::admission {

bool Region::admits(const std::vector<int>& m, double tol) const {
  WCDMA_ASSERT(m.size() == a.cols() || a.rows() == 0);
  if (a.rows() == 0) return true;
  common::Vector x(m.size());
  for (std::size_t j = 0; j < m.size(); ++j) {
    if (m[j] < 0) return false;
    x[j] = static_cast<double>(m[j]);
  }
  return common::satisfies(a, x, b, tol);
}

Region stack(const Region& first, const Region& second) {
  if (first.empty()) return second;
  if (second.empty()) return first;
  WCDMA_ASSERT(first.a.cols() == second.a.cols());
  Region out = first;
  for (std::size_t r = 0; r < second.a.rows(); ++r) {
    common::Vector row(second.a.cols());
    for (std::size_t c = 0; c < second.a.cols(); ++c) row[c] = second.a(r, c);
    out.a.append_row(row);
    out.b.push_back(second.b[r]);
  }
  return out;
}

}  // namespace wcdma::admission
