// Measurement sub-layer (Section 3.1): turns per-cell and per-user radio
// measurements into the linear admissible regions of Eq. (7) and Eq. (17).
//
// Forward link (power limited): a burst is admissible if every base station
// in the user's reduced active set retains headroom
//
//   P_k + gamma_s * sum_j m_j P_{j,k} alpha_j^{FL}  <=  P_max     (Eq. 7)
//   a_{kj} = gamma_s * P_{j,k} * alpha_j^{FL}                     (Eq. 8)
//
// Reverse link (interference limited): the extra rise at every cell must
// stay within the cap,
//
//   L_k + sum_j m_j Y_{j,k}  <=  L_max                            (Eq. 16)
//
// with, after normalising row k by L_k,
//
//   b_{kj} = gamma_s * zeta_j * xi_{j,k}^{RL} * alpha_j^{RL}      soft-HO k
//                                                                 (Eq. 12/18)
//   b_{k'j} = gamma_s * zeta_j * xi^{RL}_{j,host} * alpha_j^{RL}
//             * (xi_{j,k'}^{FL} / xi_{j,host}^{FL})               non-SHO k'
//             * kappa * (L_host / L_k')                           (Eq. 13-15)
//
// The non-SHO row projects the mobile's received power from the host cell
// onto neighbour k' through the forward-pilot path-loss ratio (path loss is
// reciprocal) plus the shadowing margin kappa.  RHS: L_max/L_k - 1.
#pragma once

#include <cstddef>
#include <vector>

#include "src/admission/region.hpp"

namespace wcdma::admission {

/// Forward-link per-request measurement (from the base stations in the
/// user's reduced active set).
struct ForwardUserMeasurement {
  struct Leg {
    std::size_t cell = 0;
    double fch_power_watt = 0.0;  // P_{j,k}: current FCH forward power
  };
  std::vector<Leg> reduced_active_set;
  double alpha_fl = 1.0;  // reduced-active-set adjustment factor
};

struct ForwardLinkInputs {
  std::vector<double> cell_load_watt;  // P_k per cell (current total forward power)
  double p_max_watt = 20.0;
  double gamma_s = 3.2;
  std::vector<ForwardUserMeasurement> users;  // one per concurrent request
};

/// Eq. (7)-(8).  Rows are clamped so b >= 0: an already-overloaded cell
/// admits no new burst but keeps m = 0 feasible.
Region build_forward_region(const ForwardLinkInputs& inputs);

/// Reverse-link per-request measurement.
struct ReverseUserMeasurement {
  struct ShoLeg {
    std::size_t cell = 0;
    double pilot_ec_io = 0.0;  // xi_{j,k}^{RL} (linear), measured at BS k
  };
  struct PilotReport {
    std::size_t cell = 0;
    double pilot_ec_io = 0.0;  // xi_{j,k}^{FL} (linear), reported via SCRM
  };
  std::vector<ShoLeg> soft_handoff;     // host first (strongest)
  std::vector<PilotReport> scrm_pilots; // includes the host cell's pilot
  double zeta = 2.0;      // FCH-to-pilot transmit power ratio at the mobile
  double alpha_rl = 1.0;  // reverse soft-handoff adjustment factor
};

struct ReverseLinkInputs {
  std::vector<double> cell_interference_watt;  // L_k per cell (total received)
  double l_max_watt = 0.0;                     // rise-over-thermal cap
  double gamma_s = 3.2;
  double kappa = 1.585;                        // shadowing margin (~2 dB), linear
  std::vector<ReverseUserMeasurement> users;
};

/// Eq. (16)-(18) with the neighbour-cell projection of Eq. (13)-(15).
Region build_reverse_region(const ReverseLinkInputs& inputs);

}  // namespace wcdma::admission
