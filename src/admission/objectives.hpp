// Scheduling sub-layer objectives (Section 3.2, Eq. 19-24).
//
// J1 (Eq. 19) maximises the total weighted transmission rate:
//
//     J1(m) = sum_j  m_j * dbeta_j * (1 + Delta_j)
//
// J2 (Eq. 20) trades utilisation against waiting time by subtracting a
// delay penalty f(w_j, m_j dbeta_j), linear in the granted rate, increasing
// in the effective delay w_j = t_w + D_s (Eq. 22, MAC set-up penalty of
// Eq. 23), with scaling factor lambda and forgetting factor mu (Eq. 21).
// We reconstruct f (the paper defers its exact form to [6]) as
//
//     f(w, r) = lambda * (1 - e^{-mu w}) * (r_max - r),   r_max = M dbeta_j
//
// which is linear in r and saturating in w; inside the IP it reduces to a
// per-request priority boost, c_j = dbeta_j (1 + Delta_j + lambda psi(w_j)),
// plus a constant offset that does not affect the argmax (DESIGN.md D4).
#pragma once

#include <vector>

#include "src/mac/mac_state.hpp"

namespace wcdma::admission {

enum class ObjectiveKind { kJ1MaxRate, kJ2DelayAware };

const char* to_string(ObjectiveKind k);

struct DelayPenaltyConfig {
  double lambda = 2.0;  // scaling factor
  double mu = 0.5;      // delay forgetting factor (1/s)
};

/// Scheduler-facing view of one pending burst request.
struct RequestView {
  int user = -1;
  double q_bits = 0.0;       // burst size Q_j in bits
  double waiting_s = 0.0;    // t_w: time since the request entered the queue
  double priority = 0.0;     // Delta_j (traffic-type priority)
  double delta_beta = 1.0;   // dbeta_j: SCH/FCH average-throughput ratio at
                             // the user's current local-mean CSI (Eq. 4)
};

/// psi(w) = 1 - exp(-mu w): the saturating waiting-time weight.
double delay_weight(const DelayPenaltyConfig& config, double w_s);

/// The reconstructed penalty f(w, r) itself (for benches/tests).
/// `r` and `r_max` are rates in units of dbeta (m and M times dbeta_j).
double delay_penalty(const DelayPenaltyConfig& config, double w_s, double r, double r_max);

/// Objective coefficient vector c (one entry per request) such that the
/// scheduling IP maximises sum_j c_j m_j.
/// For kJ2DelayAware, `timers` supplies the MAC set-up delay D_s added to
/// the waiting time (Eq. 22-23).
std::vector<double> objective_coefficients(const std::vector<RequestView>& requests,
                                           ObjectiveKind kind,
                                           const DelayPenaltyConfig& penalty,
                                           const mac::MacTimersConfig& timers);

/// Eq. (24): per-request integer upper bound
///   u_j = min{ M, floor(Q_j / (dbeta_j * R_f * T_min)) },
/// clamped to >= 1 so short bursts remain servable at the minimum rate
/// (otherwise they could never leave the queue; see DESIGN.md).
int duration_upper_bound(double q_bits, double delta_beta, double fch_bit_rate,
                         double min_burst_s, int max_sgr);

/// Burst duration implied by a grant (Q_j / (m dbeta_j R_f)); infinity-free:
/// returns 0 for m == 0.
double burst_duration_s(double q_bits, int m, double delta_beta, double fch_bit_rate);

}  // namespace wcdma::admission
