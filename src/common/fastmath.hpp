// Relaxed-precision transcendental kernels for the `fast` channel-state
// provider's hot path.
//
// The reference frame loop spends ~85% of its time in libm (one normal draw
// plus one log10 and two pow per live link per frame).  These kernels trade
// the last bits of libm accuracy for a short, branch-light instruction
// sequence:
//
//  * fast_exp2  -- round-to-nearest split 2^x = 2^n * 2^f with a degree-7
//    Taylor polynomial for 2^f on f in [-0.5, 0.5] and exponent-field bit
//    stuffing for 2^n.  Relative error < 1e-8.
//  * fast_log2  -- exponent extraction plus an atanh-series log of the
//    mantissa reduced to [sqrt(1/2), sqrt(2)).  Absolute error < 1e-9.
//  * fast_exp and the dB conversions -- rescaled fast_exp2 / fast_log2.
//
// Contract (docs/ARCHITECTURE.md "CSI providers"): results are DETERMINISTIC
// for a given input (pure float arithmetic, no tables, no flushing), but NOT
// bit-identical to libm, so anything built on them must be validated at the
// distribution level (tests/test_statcheck.cpp), never against bit-exact
// goldens.  The default simulator path must not call into this header.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>

#include "src/common/assert.hpp"

namespace wcdma::common {

/// One exp2 unit per dB: 10^(x/10) = 2^(kExp2PerDb * x).  Shared by every
/// dB-domain fast kernel (fast_db_to_linear, the fused gain evaluation in
/// sim::FrameState, power-control wattage refresh) so the scaling can never
/// drift apart between them.
inline constexpr double kExp2PerDb = 0.33219280948873623;  // log2(10) / 10

namespace detail {

inline double bits_to_double(std::uint64_t bits) {
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

inline std::uint64_t double_to_bits(double x) {
  std::uint64_t out;
  std::memcpy(&out, &x, sizeof(out));
  return out;
}

}  // namespace detail

/// 2^x for x in [-1022, 1022]; finite inputs outside (and +/-inf) are
/// clamped, NaN propagates (the fused dB->linear evaluations this serves
/// live around [-80, 10]).  The clamp keeps the stuffed exponent field
/// n + 1023 inside [1, 2045]: never 0 (which would need a subnormal encode)
/// and never 2047 (inf/NaN), and because n = floor(x + 0.5) rounds f into
/// [0, 0.5] at the rails, the result itself stays normal -- no gradual-
/// underflow double rounding in the final multiply.  Pre-clamp NaN used to
/// reach the floor()->int64 cast (undefined behaviour); now it returns
/// unchanged, matching libm exp2.
inline double fast_exp2(double x) {
  if (std::isnan(x)) return x;
  if (x < -1022.0) x = -1022.0;
  if (x > 1022.0) x = 1022.0;
  const double n = std::floor(x + 0.5);
  // f in [-0.5, 0.5]; 2^f = e^(f ln 2), degree-7 Taylor in z = f ln 2
  // (|z| <= 0.347 -> truncation error < 6e-9 relative).
  const double z = (x - n) * 0.69314718055994531;
  const double p =
      1.0 +
      z * (1.0 +
           z * (0.5 +
                z * (1.0 / 6.0 +
                     z * (1.0 / 24.0 +
                          z * (1.0 / 120.0 +
                               z * (1.0 / 720.0 + z * (1.0 / 5040.0)))))));
  const std::uint64_t exponent_bits =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(n) + 1023) << 52;
  return p * detail::bits_to_double(exponent_bits);
}

/// log2(x) for finite x > 0, subnormals included.  A subnormal encodes no
/// implicit leading mantissa bit, so the plain exponent-field extraction
/// would mis-decode it (exponent field 0 != exponent -1023 and the mantissa
/// is a pure fraction); those inputs are first renormalized by 2^54 -- exact,
/// since it only shifts bits into the 53-bit significand -- and the exponent
/// corrected by -54.  Distances and powers on the hot path stay far from the
/// subnormal range, but the SIMD kernels certify against this function on
/// the FULL positive-finite domain, so the scalar reference must be right
/// everywhere.
inline double fast_log2(double x) {
  WCDMA_DEBUG_ASSERT(x > 0.0 && std::isfinite(x));
  std::uint64_t bits = detail::double_to_bits(x);
  std::int64_t e_extra = 0;
  if ((bits & 0x7ff0000000000000ULL) == 0) {  // subnormal: renormalize
    bits = detail::double_to_bits(x * 0x1p54);
    e_extra = 54;
  }
  std::int64_t e =
      static_cast<std::int64_t>((bits >> 52) & 0x7ff) - 1023 - e_extra;
  double m = detail::bits_to_double((bits & 0x000fffffffffffffULL) |
                                    (std::uint64_t{1023} << 52));  // [1, 2)
  if (m > 1.4142135623730951) {  // re-centre on 1: m in [sqrt(1/2), sqrt(2))
    m *= 0.5;
    ++e;
  }
  // ln m = 2 atanh(t), t = (m-1)/(m+1), |t| <= 0.1716; the odd series
  // through t^11 truncates below 4e-11.
  const double t = (m - 1.0) / (m + 1.0);
  const double t2 = t * t;
  const double ln_m =
      2.0 * t *
      (1.0 +
       t2 * (1.0 / 3.0 +
             t2 * (1.0 / 5.0 + t2 * (1.0 / 7.0 + t2 * (1.0 / 9.0 + t2 / 11.0)))));
  return static_cast<double>(e) + ln_m * 1.4426950408889634;
}

/// e^x (clamped like fast_exp2).
inline double fast_exp(double x) { return fast_exp2(x * 1.4426950408889634); }

/// 10 log10(x): the relaxed twin of common::linear_to_db.
inline double fast_linear_to_db(double x) { return fast_log2(x) * 3.0102999566398120; }

/// 10^(db/10): the relaxed twin of common::db_to_linear.
inline double fast_db_to_linear(double db) { return fast_exp2(db * kExp2PerDb); }

}  // namespace wcdma::common
