// Deterministic pseudo-random number generation.
//
// The simulator must be bit-reproducible for a given master seed regardless
// of thread count, so every logical entity (replication, cell, user, channel
// process) owns its own Rng derived from the master seed and a stream index
// via SplitMix64.  Xoshiro256** is the workhorse generator: tiny state, fast,
// and passes BigCrush.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/assert.hpp"

namespace wcdma::common {

class BinaryWriter;
class BinaryReader;

namespace detail {
inline std::uint64_t rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace detail

/// SplitMix64 stream: used to expand a master seed into independent
/// sub-seeds.  Deterministic seed derivation, not a statistics-grade
/// generator by itself.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// Xoshiro256** generator with a full suite of distributions needed by the
/// traffic/channel models.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent generator for stream `stream`; two streams from
  /// the same parent never share state.  Deterministic.
  Rng fork(std::uint64_t stream) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next_u64(); }

  // The draw primitives the channel hot loops hit millions of times per
  // second are defined inline below the class.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).  Unbiased (rejection).
  std::uint64_t uniform_int(std::uint64_t n);
  /// Standard normal via polar Box-Muller (cached spare).
  double normal();
  /// Normal with mean/stddev.
  double normal(double mean, double stddev);
  /// Exponential with given mean (not rate).  mean > 0.
  double exponential(double mean);
  /// Pareto with shape `alpha` > 1 and minimum `xm` > 0 (mean finite).
  double pareto(double alpha, double xm);
  /// Truncated Pareto on [xm, cap]; used for WWW object sizes.
  double pareto_truncated(double alpha, double xm, double cap);
  /// Bernoulli(p).
  bool bernoulli(double p);
  /// Poisson with given mean (inversion for small, PTRS-lite via normal
  /// approximation for large means).
  int poisson(double mean);
  /// Rayleigh-distributed envelope with E[x^2] = 2*sigma^2.
  double rayleigh(double sigma);
  /// Log-normal where the dB-value is Normal(0, sigma_db): returns linear
  /// factor 10^(N(0,sigma_db)/10).
  double lognormal_shadow(double sigma_db);

  /// Checkpoint support: the full generator state (four Xoshiro words plus
  /// the cached Box-Muller spare -- dropping the spare would shift every
  /// subsequent normal() draw by one).
  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

inline std::uint64_t Rng::next_u64() {
  const std::uint64_t result = detail::rotl64(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = detail::rotl64(s_[3], 45);
  return result;
}

inline double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

inline double Rng::uniform(double lo, double hi) {
  WCDMA_DEBUG_ASSERT(hi >= lo);
  return lo + (hi - lo) * uniform();
}

inline double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  // lint-allow(DET-FLOAT-EQ): Box-Muller rejects the exact-zero draw (log(0))
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * f;
  has_spare_ = true;
  return u * f;
}

inline double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

/// Convenience: derive `n` independent seeds from a master seed.
std::vector<std::uint64_t> derive_seeds(std::uint64_t master, std::size_t n);

}  // namespace wcdma::common
