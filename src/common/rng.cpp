#include "src/common/rng.hpp"

#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/serialize.hpp"

namespace wcdma::common {

void Rng::save(BinaryWriter& w) const {
  for (std::uint64_t word : s_) w.u64(word);
  w.f64(spare_normal_);
  w.boolean(has_spare_);
}

void Rng::load(BinaryReader& r) {
  for (std::uint64_t& word : s_) word = r.u64();
  spare_normal_ = r.f64();
  has_spare_ = r.boolean();
}

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
  // All-zero state is the one invalid state for xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork(std::uint64_t stream) const {
  // Mix the child stream index into the parent state through SplitMix64 so
  // that fork(a) and fork(b) are decorrelated even for adjacent indices.
  SplitMix64 sm(s_[0] ^ detail::rotl64(s_[3], 17) ^
                (stream * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL));
  Rng child(sm.next());
  return child;
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  WCDMA_DEBUG_ASSERT(n > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::exponential(double mean) {
  WCDMA_DEBUG_ASSERT(mean > 0.0);
  // -mean * log(1-u); 1-u in (0,1] avoids log(0).
  return -mean * std::log(1.0 - uniform());
}

double Rng::pareto(double alpha, double xm) {
  WCDMA_DEBUG_ASSERT(alpha > 0.0 && xm > 0.0);
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

double Rng::pareto_truncated(double alpha, double xm, double cap) {
  WCDMA_DEBUG_ASSERT(cap > xm);
  // Inverse-CDF of the Pareto truncated to [xm, cap].
  const double f_cap = 1.0 - std::pow(xm / cap, alpha);
  const double u = uniform() * f_cap;
  return xm / std::pow(1.0 - u, 1.0 / alpha);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

int Rng::poisson(double mean) {
  WCDMA_DEBUG_ASSERT(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double prod = uniform();
    int n = 0;
    while (prod > limit) {
      prod *= uniform();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction: adequate for the
  // large-mean call sites (aggregate voice arrivals).
  const double x = normal(mean, std::sqrt(mean));
  return x < 0.0 ? 0 : static_cast<int>(x + 0.5);
}

double Rng::rayleigh(double sigma) {
  return sigma * std::sqrt(-2.0 * std::log(1.0 - uniform()));
}

double Rng::lognormal_shadow(double sigma_db) {
  return std::pow(10.0, normal(0.0, sigma_db) / 10.0);
}

std::vector<std::uint64_t> derive_seeds(std::uint64_t master, std::size_t n) {
  SplitMix64 sm(master);
  std::vector<std::uint64_t> out(n);
  for (auto& s : out) s = sm.next();
  return out;
}

}  // namespace wcdma::common
