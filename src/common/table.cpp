#include "src/common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "src/common/assert.hpp"

namespace wcdma::common {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  WCDMA_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

std::string Table::render(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::string out;
  if (!title.empty()) {
    out += "# ";
    out += title;
    out += "\n";
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += "\n";
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  out.append(rule, '-');
  out += "\n";
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void Table::print(const std::string& title) const {
  const std::string s = render(title);
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

}  // namespace wcdma::common
