#include "src/common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "src/common/assert.hpp"

namespace wcdma::common {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  WCDMA_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

std::string Table::render(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::string out;
  if (!title.empty()) {
    out += "# ";
    out += title;
    out += "\n";
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += "\n";
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  out.append(rule, '-');
  out += "\n";
  for (const auto& row : rows_) emit_row(row);
  return out;
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

// Strict JSON number grammar (RFC 8259), not strtod: strtod also accepts
// ".5", "1.", "+1", "inf", and hex floats, none of which are valid JSON.
bool parses_as_number(const std::string& cell) {
  const char* p = cell.c_str();
  if (*p == '-') ++p;
  if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
  if (*p == '0') {
    ++p;
  } else {
    while (std::isdigit(static_cast<unsigned char>(*p))) ++p;
  }
  if (*p == '.') {
    ++p;
    if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
    while (std::isdigit(static_cast<unsigned char>(*p))) ++p;
  }
  if (*p == 'e' || *p == 'E') {
    ++p;
    if (*p == '+' || *p == '-') ++p;
    if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
    while (std::isdigit(static_cast<unsigned char>(*p))) ++p;
  }
  return *p == '\0';
}

std::string json_escape(const std::string& cell) {
  std::string out = "\"";
  for (char ch : cell) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::render_csv() const {
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += csv_escape(row[c]);
    }
    out += '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string Table::render_json() const {
  std::string out = "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += "  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) out += ", ";
      out += json_escape(headers_[c]);
      out += ": ";
      out += parses_as_number(rows_[r][c]) ? rows_[r][c] : json_escape(rows_[r][c]);
    }
    out += r + 1 < rows_.size() ? "},\n" : "}\n";
  }
  out += "]\n";
  return out;
}

void Table::print(const std::string& title) const {
  const std::string s = render(title);
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

}  // namespace wcdma::common
