#include "src/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"

namespace wcdma::common {

void StreamingMoments::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingMoments::merge(const StreamingMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingMoments::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double StreamingMoments::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  WCDMA_ASSERT(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;
  }
  ++counts_[idx];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  WCDMA_ASSERT(counts_.size() == other.counts_.size() && lo_ == other.lo_ && hi_ == other.hi_);
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::percentile(double q) const {
  WCDMA_ASSERT(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

double Histogram::mean_estimate() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += static_cast<double>(counts_[i]) * (bin_lo(i) + 0.5 * width_);
  }
  return acc / static_cast<double>(total_);
}

namespace {

// Two-sided 97.5% Student-t quantiles for small df; 1.96 beyond the table.
double t_quantile_975(std::size_t df) {
  static constexpr double kTable[] = {
      0,     12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228, 2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086, 2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (df == 0) return 0.0;
  if (df < sizeof(kTable) / sizeof(kTable[0])) return kTable[df];
  return 1.96;
}

}  // namespace

ConfidenceInterval confidence_interval_95(const std::vector<double>& replication_means) {
  ConfidenceInterval ci;
  ci.n = replication_means.size();
  if (ci.n == 0) return ci;
  StreamingMoments m;
  for (double x : replication_means) m.add(x);
  ci.mean = m.mean();
  if (ci.n >= 2) {
    ci.half_width = t_quantile_975(ci.n - 1) * m.stddev() / std::sqrt(static_cast<double>(ci.n));
  }
  return ci;
}

double jain_fairness(const std::vector<double>& x) {
  if (x.empty()) return 1.0;
  double s = 0.0, s2 = 0.0;
  for (double v : x) {
    s += v;
    s2 += v * v;
  }
  if (s2 <= 0.0) return 1.0;
  return s * s / (static_cast<double>(x.size()) * s2);
}

}  // namespace wcdma::common
