#include "src/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/serialize.hpp"

namespace wcdma::common {

void StreamingMoments::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingMoments::merge(const StreamingMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingMoments::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double StreamingMoments::stddev() const { return std::sqrt(variance()); }

void StreamingMoments::save(BinaryWriter& w) const {
  w.u64(static_cast<std::uint64_t>(n_));
  w.f64(mean_);
  w.f64(m2_);
  w.f64(min_);
  w.f64(max_);
}

void StreamingMoments::load(BinaryReader& r) {
  n_ = static_cast<std::size_t>(r.u64());
  mean_ = r.f64();
  m2_ = r.f64();
  min_ = r.f64();
  max_ = r.f64();
}

void Histogram::save(BinaryWriter& w) const {
  w.vec_u64(counts_);
  w.u64(static_cast<std::uint64_t>(total_));
}

void Histogram::load(BinaryReader& r) {
  std::vector<std::uint64_t> counts;
  r.vec_u64(counts);
  if (counts.size() == counts_.size()) counts_ = std::move(counts);
  total_ = static_cast<std::size_t>(r.u64());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  WCDMA_ASSERT(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;
  }
  ++counts_[idx];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  WCDMA_ASSERT(counts_.size() == other.counts_.size() && lo_ == other.lo_ && hi_ == other.hi_);
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::percentile(double q) const {
  WCDMA_ASSERT(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

double Histogram::mean_estimate() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += static_cast<double>(counts_[i]) * (bin_lo(i) + 0.5 * width_);
  }
  return acc / static_cast<double>(total_);
}

namespace {

// Two-sided 97.5% Student-t quantiles for small df; 1.96 beyond the table.
double t_quantile_975(std::size_t df) {
  static constexpr double kTable[] = {
      0,     12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228, 2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086, 2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (df == 0) return 0.0;
  if (df < sizeof(kTable) / sizeof(kTable[0])) return kTable[df];
  return 1.96;
}

}  // namespace

ConfidenceInterval confidence_interval_95(const std::vector<double>& replication_means) {
  ConfidenceInterval ci;
  ci.n = replication_means.size();
  if (ci.n == 0) return ci;
  StreamingMoments m;
  for (double x : replication_means) m.add(x);
  ci.mean = m.mean();
  if (ci.n >= 2) {
    ci.half_width = t_quantile_975(ci.n - 1) * m.stddev() / std::sqrt(static_cast<double>(ci.n));
  }
  return ci;
}

double jain_fairness(const std::vector<double>& x) {
  if (x.empty()) return 1.0;
  double s = 0.0, s2 = 0.0;
  for (double v : x) {
    s += v;
    s2 += v * v;
  }
  if (s2 <= 0.0) return 1.0;
  return s * s / (static_cast<double>(x.size()) * s2);
}

namespace {

/// Asymptotic Kolmogorov survival function Q(lambda) = 2 sum_k (-1)^{k-1}
/// exp(-2 k^2 lambda^2); the alternating series converges in a handful of
/// terms for lambda > 0.2 and is clamped to [0, 1].
double kolmogorov_q(double lambda) {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  const double a = -2.0 * lambda * lambda;
  for (int k = 1; k <= 100; ++k) {
    const double term = sign * std::exp(a * static_cast<double>(k) * k);
    sum += term;
    if (std::fabs(term) < 1e-12 * std::fabs(sum) || std::fabs(term) < 1e-300) break;
    sign = -sign;
  }
  const double q = 2.0 * sum;
  return q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
}

}  // namespace

KsTest ks_two_sample(std::vector<double> a, std::vector<double> b) {
  WCDMA_ASSERT(!a.empty() && !b.empty());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  KsTest result;
  result.n = a.size();
  result.m = b.size();
  // Merge walk: evaluate the ECDF gap just after each DISTINCT sample
  // point, advancing through every tied value on both sides first -- the
  // one-element-per-side walk (as in the Numerical Recipes code) inflates D
  // mid-tie on discrete or quantised data.
  const double inv_n = 1.0 / static_cast<double>(a.size());
  const double inv_m = 1.0 / static_cast<double>(b.size());
  std::size_t i = 0, j = 0;
  double d = 0.0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] == x) ++i;
    while (j < b.size() && b[j] == x) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) * inv_n -
                              static_cast<double>(j) * inv_m));
  }
  // The exhausted sample's ECDF reached 1 inside the loop, so the boundary
  // gap is already folded into d; past it the gap only shrinks.
  result.statistic = d;
  const double en = std::sqrt(static_cast<double>(result.n) *
                              static_cast<double>(result.m) /
                              static_cast<double>(result.n + result.m));
  const double lambda = (en + 0.12 + 0.11 / en) * result.statistic;
  result.p_value = kolmogorov_q(lambda);
  return result;
}

WelchInterval welch_difference_95(const std::vector<double>& a,
                                  const std::vector<double>& b) {
  WCDMA_ASSERT(a.size() >= 2 && b.size() >= 2);
  StreamingMoments ma, mb;
  for (double x : a) ma.add(x);
  for (double x : b) mb.add(x);
  WelchInterval w;
  w.mean_diff = ma.mean() - mb.mean();
  const double va = ma.variance() / static_cast<double>(a.size());
  const double vb = mb.variance() / static_cast<double>(b.size());
  const double se_sq = va + vb;
  if (se_sq <= 0.0) {
    w.df = static_cast<double>(a.size() + b.size() - 2);
    w.half_width = 0.0;
    return w;
  }
  // Welch-Satterthwaite degrees of freedom.
  w.df = se_sq * se_sq /
         (va * va / static_cast<double>(a.size() - 1) +
          vb * vb / static_cast<double>(b.size() - 1));
  const std::size_t df_floor = w.df < 1.0 ? 1 : static_cast<std::size_t>(w.df);
  w.half_width = t_quantile_975(df_floor) * std::sqrt(se_sq);
  return w;
}

bool within_tolerance(double a, double b, const MetricTolerance& tol) {
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= std::max(tol.abs_tol, tol.rel_tol * scale);
}

std::string tolerance_report(double a, double b, const MetricTolerance& tol) {
  const double scale = std::max(std::fabs(a), std::fabs(b));
  const double bound = std::max(tol.abs_tol, tol.rel_tol * scale);
  std::string line = tol.metric;
  line += ": |" + std::to_string(a) + " - " + std::to_string(b) +
          "| = " + std::to_string(std::fabs(a - b)) + " vs bound " +
          std::to_string(bound) +
          (within_tolerance(a, b, tol) ? " (ok)" : " (VIOLATED)");
  return line;
}

}  // namespace wcdma::common
