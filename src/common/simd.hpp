// Runtime SIMD dispatch for the fast-provider batch kernels.
//
// The SoA lanes from PRs 4-5 (gain rows, ziggurat batch streams, power-
// control dB lanes) are consumed by vectorized kernels in src/sim/kernels.*
// and src/common/ziggurat.cpp.  This header owns the ONE decision those
// kernels share: which instruction set to run.  The level is resolved once
// (CPUID probe + WCDMA_SIMD override) and cached; every kernel entry point
// switches on active_simd_level().
//
// Contract (docs/ACCURACY.md "dispatch levels"): every level of every
// kernel is ELEMENT-WISE IDENTICAL to the scalar implementation -- same IEEE
// operations in the same order, no FMA contraction, no reassociation -- so
// the level is a pure throughput knob.  A `fast`-provider trajectory is
// byte-identical under scalar, SSE2, and AVX2 dispatch (pinned by
// tests/test_kernels.cpp), and the default/exhaustive path never reaches
// these kernels at all.
//
// Resolution order for the startup level:
//   1. WCDMA_SIMD environment variable  (auto | scalar | sse2 | avx2)
//   2. WCDMA_SIMD_DEFAULT compile definition (CMake -DWCDMA_SIMD=...)
//   3. auto == the best level the host supports.
// Requests above the host's capability clamp down to the supported maximum,
// so WCDMA_SIMD=avx2 on an SSE2-only host degrades instead of faulting.
#pragma once

#include <cstdlib>
#include <cstring>

namespace wcdma::common {

/// Kernel instruction-set tiers, ordered so numeric comparison == capability
/// comparison.  kSse2 is the x86-64 baseline (always present there); kScalar
/// is the portable fallback and the reference semantics for every kernel.
enum class SimdLevel : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

inline const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSse2: return "sse2";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "scalar";
}

/// Best level this host can execute (one-time CPUID probe on x86).
inline SimdLevel max_supported_simd_level() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
  return SimdLevel::kScalar;
#else
  return SimdLevel::kScalar;
#endif
}

/// Parses "auto" / "scalar" / "sse2" / "avx2" ("auto" resolves to the host
/// maximum).  Returns false, leaving *out untouched, on anything else.
inline bool parse_simd_level(const char* text, SimdLevel* out) {
  if (text == nullptr) return false;
  if (std::strcmp(text, "auto") == 0) {
    *out = max_supported_simd_level();
    return true;
  }
  if (std::strcmp(text, "scalar") == 0) {
    *out = SimdLevel::kScalar;
    return true;
  }
  if (std::strcmp(text, "sse2") == 0) {
    *out = SimdLevel::kSse2;
    return true;
  }
  if (std::strcmp(text, "avx2") == 0) {
    *out = SimdLevel::kAvx2;
    return true;
  }
  return false;
}

namespace detail {

inline SimdLevel clamp_to_supported(SimdLevel level) {
  const SimdLevel max = max_supported_simd_level();
  return static_cast<int>(level) > static_cast<int>(max) ? max : level;
}

/// Startup resolution: env override, then build default, then auto.  Reads
/// the environment exactly once (the result is cached in simd_level_slot),
/// so the level cannot drift mid-run.
inline SimdLevel resolve_startup_simd_level() {
  SimdLevel level = SimdLevel::kScalar;
  if (const char* env = std::getenv("WCDMA_SIMD")) {
    if (parse_simd_level(env, &level)) return clamp_to_supported(level);
  }
#ifdef WCDMA_SIMD_DEFAULT
  if (parse_simd_level(WCDMA_SIMD_DEFAULT, &level)) {
    return clamp_to_supported(level);
  }
#endif
  return max_supported_simd_level();
}

/// The cached dispatch level.  A function-local static (not a global) so the
/// CPUID/env probe runs on first kernel use, after main() has the
/// environment it wants to present.  Deterministic by construction: levels
/// only select between element-wise identical kernels, so this cache cannot
/// influence results -- see lint_rules.md (DET-STATIC-LOCAL allowlist).
inline SimdLevel& simd_level_slot() {
  static SimdLevel level = resolve_startup_simd_level();
  return level;
}

}  // namespace detail

/// The level every kernel dispatches on (resolved + cached on first call).
inline SimdLevel active_simd_level() { return detail::simd_level_slot(); }

/// Test hook: forces the dispatch level (tests/test_kernels.cpp runs every
/// kernel under every level the host supports).  Returns false -- leaving the
/// level unchanged -- when the host cannot execute `level`.
inline bool set_simd_level(SimdLevel level) {
  if (static_cast<int>(level) > static_cast<int>(max_supported_simd_level())) {
    return false;
  }
  detail::simd_level_slot() = level;
  return true;
}

}  // namespace wcdma::common
