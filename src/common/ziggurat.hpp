// Ziggurat standard-normal sampler (Marsaglia & Tsang, 256 layers, 64-bit).
//
// The reference draw path, common::Rng::normal(), is a polar Box-Muller:
// an acceptance loop of ~1.27 uniform pairs plus a log and a sqrt per pair.
// The ziggurat replaces that with one 64-bit draw, a table compare, and one
// multiply for ~99% of samples; the tail and wedge corrections keep the
// OUTPUT DISTRIBUTION exactly N(0, 1), so only the mapping from RNG stream
// to sample sequence changes, never the statistics.  This is what the
// `fast` channel-state provider uses for shadowing/fading innovations --
// deterministic for a given stream, but a different sequence than normal(),
// hence validated at the distribution level (moment and KS property tests
// in tests/test_statcheck.cpp) instead of against bit-exact goldens.
//
// The 256-layer tables are built once (thread-safe magic static) from libm;
// draw() itself touches no libm in the common case.  Instances are
// stateless handles onto the shared tables, so embedding one per FrameState
// costs a pointer and no setup.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/common/rng.hpp"

namespace wcdma::common {

class ZigguratNormal {
 public:
  /// Binds to the process-wide tables (built on first use).
  ZigguratNormal();

  /// One standard-normal sample from `rng`'s stream.
  double draw(Rng& rng) const {
    for (;;) {
      const std::uint64_t u = rng.next_u64();
      const std::size_t layer = u & 0xff;
      const std::uint64_t magnitude = u >> 11;  // 53 bits
      const double x = static_cast<double>(magnitude) * tables_->w[layer];
      if (magnitude < tables_->k[layer]) return (u & 0x100) ? -x : x;
      const double slow = draw_slow(rng, layer, x);
      if (slow == slow) return (u & 0x100) ? -slow : slow;  // NaN = rejected
    }
  }

  /// Batched draws: fills out[0..n) from one stream (the SoA-lane batch API
  /// the fast provider and the property tests share).
  void fill(Rng& rng, double* out, std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) out[i] = draw(rng);
  }

 private:
  struct Tables {
    std::uint64_t k[256];
    double w[256];
    double f[256];
  };

  static const Tables& shared_tables();
  /// Tail (layer 0) and wedge acceptance; returns the positive sample or
  /// NaN when the wedge rejects (caller redraws).
  double draw_slow(Rng& rng, std::size_t layer, double x) const;

  const Tables* tables_;
};

}  // namespace wcdma::common
