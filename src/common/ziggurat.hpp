// Ziggurat standard-normal sampler (Marsaglia & Tsang, 256 layers, 64-bit).
//
// The reference draw path, common::Rng::normal(), is a polar Box-Muller:
// an acceptance loop of ~1.27 uniform pairs plus a log and a sqrt per pair.
// The ziggurat replaces that with one 64-bit draw, a table compare, and one
// multiply for ~99% of samples; the tail and wedge corrections keep the
// OUTPUT DISTRIBUTION exactly N(0, 1), so only the mapping from RNG stream
// to sample sequence changes, never the statistics.  This is what the
// `fast` channel-state provider uses for shadowing/fading innovations --
// deterministic for a given stream, but a different sequence than normal(),
// hence validated at the distribution level (moment and KS property tests
// in tests/test_statcheck.cpp) instead of against bit-exact goldens.
//
// The 256-layer tables are built once (thread-safe magic static) from libm;
// draw() itself touches no libm in the common case.  Instances are
// stateless handles onto the shared tables, so embedding one per FrameState
// costs a pointer and no setup.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/common/rng.hpp"

namespace wcdma::common {

class ZigguratNormal {
 public:
  /// Binds to the process-wide tables (built on first use).
  ZigguratNormal();

  /// One standard-normal sample from `rng`'s stream.
  double draw(Rng& rng) const {
    for (;;) {
      const std::uint64_t u = rng.next_u64();
      const std::size_t layer = u & 0xff;
      const std::uint64_t magnitude = u >> 11;  // 53 bits
      const double x = static_cast<double>(magnitude) * tables_->w[layer];
      if (magnitude < tables_->k[layer]) return (u & 0x100) ? -x : x;
      const double slow = draw_slow(rng, layer, x);
      if (slow == slow) return (u & 0x100) ? -slow : slow;  // NaN = rejected
    }
  }

  /// Batched draws: fills out[0..n) from one stream (the SoA-lane batch API
  /// the fast provider and the property tests share) and returns the number
  /// of raw 64-bit RNG words consumed (next_u64 and uniform each cost one).
  ///
  /// STREAM CONTRACT (pinned by the draw-count property test in
  /// tests/test_statcheck.cpp): fill() produces exactly the sample sequence
  /// of n successive draw() calls, consuming exactly the same words --
  ///   * n == 0 consumes nothing and leaves `rng` untouched;
  ///   * an accepted fast-path sample costs exactly 1 word;
  ///   * a wedge test costs 1 extra word, accept or reject; each rejection
  ///     restarts the sample with a fresh 1-word fast-path attempt;
  ///   * a tail excursion (layer 0) costs 2 words per acceptance-loop
  ///     iteration on top of the triggering word.
  /// The SIMD block path (dispatched on common::active_simd_level())
  /// vectorizes the ~99% accept path and rolls back to a scalar replay on
  /// the first rejected lane, so scalar and SIMD fills are element-wise
  /// identical AND stream-position identical -- certified, not assumed, by
  /// tests/test_kernels.cpp.
  std::size_t fill(Rng& rng, double* out, std::size_t n) const;

 private:
  struct Tables {
    std::uint64_t k[256];
    double kd[256];  // k as doubles (exact: k < 2^53) for packed compares
    double w[256];
    double f[256];
  };

  static const Tables& shared_tables();
  /// Tail (layer 0) and wedge acceptance; returns the positive sample or
  /// NaN when the wedge rejects (caller redraws).
  double draw_slow(Rng& rng, std::size_t layer, double x) const;
  /// draw()/draw_slow() twins that also count consumed RNG words.
  double draw_counted(Rng& rng, std::size_t* words) const;
  double draw_slow_counted(Rng& rng, std::size_t layer, double x,
                           std::size_t* words) const;
  std::size_t fill_scalar(Rng& rng, double* out, std::size_t n) const;
  std::size_t fill_block_sse2(Rng& rng, double* out, std::size_t n) const;
  std::size_t fill_block_avx2(Rng& rng, double* out, std::size_t n) const;

  const Tables* tables_;
};

}  // namespace wcdma::common
