// Versioned binary archive for simulator checkpoints (snapshot/restore).
//
// The service core's determinism contract ("a run checkpointed at frame k
// and resumed equals an uninterrupted run") needs a STABLE serialized form:
// fixed-width little-endian integers and doubles written as their IEEE-754
// bit patterns, so a snapshot taken on one toolchain restores bit-exactly on
// another.  No floating-point text round-trips, no host-endianness leaks.
//
// BinaryReader fails SOFT: reads past the end (or a size prefix larger than
// the remaining payload) clear ok() and return zeros/empties instead of
// touching out-of-range memory, so a truncated or corrupted snapshot is a
// recoverable `restore() == false`, never UB.  Writers and readers must
// agree on field order; every archive starts with a caller-checked magic +
// version header and (since snapshot v2) ends with a crc32() footer, so a
// bit-flipped archive is refused by checksum before any field is parsed.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace wcdma::common {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();
}  // namespace detail

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over `size` bytes.
/// Chainable: pass a previous return value as `seed` to extend a running
/// checksum.  Archives append crc32(payload) as a little-endian u32 footer so
/// corruption (bit-flips as well as truncation) is detected by checksum
/// rather than parse luck.
inline std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                           std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = detail::kCrc32Table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

inline std::uint32_t crc32(const std::vector<std::uint8_t>& bytes,
                           std::uint32_t seed = 0) {
  return crc32(bytes.data(), bytes.size(), seed);
}

class BinaryWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// IEEE-754 bit pattern, never a decimal round-trip.
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  void vec_f64(const std::vector<double>& v) {
    u64(v.size());
    for (double x : v) f64(x);
  }
  void vec_u32(const std::vector<std::uint32_t>& v) {
    u64(v.size());
    for (std::uint32_t x : v) u32(x);
  }
  void vec_u64(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    for (std::uint64_t x : v) u64(x);
  }
  void vec_i32(const std::vector<int>& v) {
    u64(v.size());
    for (int x : v) i32(x);
  }
  void vec_i64(const std::vector<std::int64_t>& v) {
    u64(v.size());
    for (std::int64_t x : v) i64(x);
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

class BinaryReader {
 public:
  BinaryReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<std::uint8_t>& bytes)
      : BinaryReader(bytes.data(), bytes.size()) {}

  /// False once any read ran past the end or a size prefix was implausible.
  /// Callers check once at the end of a load; intermediate reads after a
  /// failure keep returning zeros/empties.
  bool ok() const { return ok_; }
  /// True when the whole payload was consumed (trailing garbage detector).
  bool at_end() const { return pos_ == size_; }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return data_[pos_ - 1];
  }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(read_le<std::uint32_t>()); }
  std::int64_t i64() { return static_cast<std::int64_t>(read_le<std::uint64_t>()); }
  bool boolean() { return u8() != 0; }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    if (!plausible(n, 1) || !take(static_cast<std::size_t>(n))) return {};
    return std::string(reinterpret_cast<const char*>(data_ + pos_ - n),
                       static_cast<std::size_t>(n));
  }

  void vec_f64(std::vector<double>& v) { read_vec(v, sizeof(double), [this] { return f64(); }); }
  void vec_u32(std::vector<std::uint32_t>& v) { read_vec(v, 4, [this] { return u32(); }); }
  void vec_u64(std::vector<std::uint64_t>& v) { read_vec(v, 8, [this] { return u64(); }); }
  void vec_i32(std::vector<int>& v) { read_vec(v, 4, [this] { return i32(); }); }
  void vec_i64(std::vector<std::int64_t>& v) { read_vec(v, 8, [this] { return i64(); }); }

  /// Size prefix for caller-decoded sequences; 0 (with ok() cleared) when
  /// the prefix can't fit in the remaining payload at `min_elem_bytes` each.
  std::size_t seq(std::size_t min_elem_bytes) {
    const std::uint64_t n = u64();
    if (!plausible(n, min_elem_bytes)) return 0;
    return static_cast<std::size_t>(n);
  }

 private:
  template <typename T>
  T read_le() {
    if (!take(sizeof(T))) return 0;
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ - sizeof(T) + i]) << (8 * i);
    }
    return v;
  }

  template <typename V, typename Fn>
  void read_vec(V& v, std::size_t elem_bytes, Fn next) {
    const std::size_t n = seq(elem_bytes);
    v.clear();
    v.reserve(n);
    for (std::size_t i = 0; i < n && ok_; ++i) v.push_back(next());
  }

  bool plausible(std::uint64_t n, std::size_t elem_bytes) {
    // Divide instead of multiply: a hostile size prefix must not overflow.
    if (!ok_ || n > (size_ - pos_) / elem_bytes) {
      ok_ = false;
      return false;
    }
    return true;
  }
  bool take(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace wcdma::common
