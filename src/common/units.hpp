// Unit conversions used throughout the link-budget arithmetic.
//
// Conventions: linear power quantities are in watts unless a name says
// otherwise; gains/ratios are dimensionless linear factors; `_db` suffixed
// values are decibels.  All functions are pure and constexpr-friendly.
#pragma once

#include <cmath>

namespace wcdma::common {

/// Decibels -> linear power ratio. db_to_linear(3.0103) ~= 2.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

/// Linear power ratio -> decibels. Requires x > 0.
inline double linear_to_db(double x) { return 10.0 * std::log10(x); }

/// dBm -> watts. 30 dBm == 1 W.
inline double dbm_to_watt(double dbm) { return std::pow(10.0, (dbm - 30.0) / 10.0); }

/// Watts -> dBm.
inline double watt_to_dbm(double w) { return 10.0 * std::log10(w) + 30.0; }

/// Thermal noise power (watts) over `bandwidth_hz` at noise figure `nf_db`.
/// kT = -174 dBm/Hz at 290 K.
double thermal_noise_watt(double bandwidth_hz, double nf_db = 0.0);

/// Speed of light, m/s.
inline constexpr double kSpeedOfLight = 2.99792458e8;

/// Maximum Doppler shift (Hz) for speed `v_mps` at carrier `fc_hz`.
inline double doppler_hz(double v_mps, double fc_hz) {
  return v_mps * fc_hz / kSpeedOfLight;
}

/// km/h -> m/s.
inline double kmh_to_mps(double kmh) { return kmh / 3.6; }

}  // namespace wcdma::common
