#include "src/common/units.hpp"

namespace wcdma::common {

double thermal_noise_watt(double bandwidth_hz, double nf_db) {
  // -174 dBm/Hz == kT at 290 K.
  const double dbm = -174.0 + 10.0 * std::log10(bandwidth_hz) + nf_db;
  return dbm_to_watt(dbm);
}

}  // namespace wcdma::common
