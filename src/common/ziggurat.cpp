#include "src/common/ziggurat.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "src/common/simd.hpp"

#if defined(__GNUC__) && defined(__x86_64__)
#define WCDMA_ZIGGURAT_X86 1
#include <immintrin.h>
#else
#define WCDMA_ZIGGURAT_X86 0
#endif

namespace wcdma::common {

namespace {

/// Right edge of the base strip and the common strip area for 256 layers
/// (Marsaglia & Tsang constants).
constexpr double kTailCut = 3.6541528853610088;
constexpr double kStripArea = 4.92867323399e-3;
constexpr double kTwo53 = 9007199254740992.0;  // magnitudes are 53-bit

/// Samples per SIMD block in fill(): big enough to amortize the prep loop,
/// small enough that a rejection (p ~ 1.5% per sample) rarely rolls back
/// much accepted work.
constexpr std::size_t kFillBlock = 8;

/// IEEE negation == sign-bit flip; applying the ziggurat sign bit this way
/// keeps the scalar tail of the block path bit-identical to the packed XOR.
inline double apply_sign(double x, std::uint64_t sign_bit) {
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  bits ^= sign_bit;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

}  // namespace

ZigguratNormal::ZigguratNormal() : tables_(&shared_tables()) {}

const ZigguratNormal::Tables& ZigguratNormal::shared_tables() {
  static const Tables tables = [] {
    Tables t{};
    double dn = kTailCut;
    double tn = kTailCut;
    // Layer 0 is the base strip plus the tail, stretched so a uniform
    // 53-bit magnitude below k[0] lands in the strip proper.
    const double q = kStripArea / std::exp(-0.5 * dn * dn);
    t.k[0] = static_cast<std::uint64_t>((dn / q) * kTwo53);
    t.k[1] = 0;
    t.w[0] = q / kTwo53;
    t.w[255] = dn / kTwo53;
    t.f[0] = 1.0;
    t.f[255] = std::exp(-0.5 * dn * dn);
    for (int i = 254; i >= 1; --i) {
      dn = std::sqrt(-2.0 * std::log(kStripArea / dn + std::exp(-0.5 * dn * dn)));
      t.k[i + 1] = static_cast<std::uint64_t>((dn / tn) * kTwo53);
      tn = dn;
      t.f[i] = std::exp(-0.5 * dn * dn);
      t.w[i] = dn / kTwo53;
    }
    // Every k is below 2^53, so the double mirror is exact and the packed
    // accept compare (double(magnitude) < kd) equals the integer compare.
    for (int i = 0; i < 256; ++i) t.kd[i] = static_cast<double>(t.k[i]);
    return t;
  }();
  return tables;
}

double ZigguratNormal::draw_slow(Rng& rng, std::size_t layer, double x) const {
  std::size_t words = 0;
  return draw_slow_counted(rng, layer, x, &words);
}

double ZigguratNormal::draw_slow_counted(Rng& rng, std::size_t layer, double x,
                                         std::size_t* words) const {
  if (layer == 0) {
    // Exponential-majorised tail beyond kTailCut (Marsaglia's method).
    // 1 - uniform() is in (0, 1], so the logs stay finite.  Two words per
    // acceptance-loop iteration (the documented tail cost).
    double xx, yy;
    do {
      xx = -std::log(1.0 - rng.uniform()) / kTailCut;
      yy = -std::log(1.0 - rng.uniform());
      *words += 2;
    } while (yy + yy < xx * xx);
    return kTailCut + xx;
  }
  // Wedge between the strip top and the density curve: one word, accept or
  // reject.
  *words += 1;
  const double fx = std::exp(-0.5 * x * x);
  if (tables_->f[layer] + rng.uniform() * (tables_->f[layer - 1] - tables_->f[layer]) <
      fx) {
    return x;
  }
  return std::numeric_limits<double>::quiet_NaN();  // rejected: caller redraws
}

double ZigguratNormal::draw_counted(Rng& rng, std::size_t* words) const {
  for (;;) {
    const std::uint64_t u = rng.next_u64();
    *words += 1;
    const std::size_t layer = u & 0xff;
    const std::uint64_t magnitude = u >> 11;  // 53 bits
    const double x = static_cast<double>(magnitude) * tables_->w[layer];
    if (magnitude < tables_->k[layer]) return (u & 0x100) ? -x : x;
    const double slow = draw_slow_counted(rng, layer, x, words);
    if (slow == slow) return (u & 0x100) ? -slow : slow;  // NaN = rejected
  }
}

std::size_t ZigguratNormal::fill_scalar(Rng& rng, double* out, std::size_t n) const {
  std::size_t words = 0;
  for (std::size_t i = 0; i < n; ++i) out[i] = draw_counted(rng, &words);
  return words;
}

#if WCDMA_ZIGGURAT_X86

// The block fills vectorize only the ~99% accept path: draw a block of
// words, split the (layer, magnitude, sign) fields and gather the table
// entries scalar, then do the magnitude * w multiply, the accept compare,
// and the sign flip packed.  On the FIRST rejected lane the RNG rewinds to
// the block-entry snapshot, burns exactly the accepted prefix, and replays
// the rejected sample through the full scalar slow path -- so sample values,
// stream mapping, and word counts are identical to fill_scalar by
// construction, for any block size.

std::size_t ZigguratNormal::fill_block_sse2(Rng& rng, double* out,
                                            std::size_t n) const {
  std::size_t words = 0;
  std::size_t i = 0;
  double magd[kFillBlock], wsel[kFillBlock], ksel[kFillBlock], x[kFillBlock];
  std::uint64_t sign[kFillBlock];
  while (i < n) {
    const std::size_t m = n - i < kFillBlock ? n - i : kFillBlock;
    const Rng snapshot = rng;
    for (std::size_t j = 0; j < m; ++j) {
      const std::uint64_t u = rng.next_u64();
      const std::size_t layer = u & 0xff;
      magd[j] = static_cast<double>(u >> 11);
      wsel[j] = tables_->w[layer];
      ksel[j] = tables_->kd[layer];
      sign[j] = (u & 0x100) << 55;  // bit 8 -> IEEE sign bit
    }
    std::uint32_t reject = 0;
    std::size_t j = 0;
    for (; j + 2 <= m; j += 2) {
      const __m128d md = _mm_loadu_pd(magd + j);
      __m128d xv = _mm_mul_pd(md, _mm_loadu_pd(wsel + j));
      xv = _mm_xor_pd(xv, _mm_castsi128_pd(_mm_loadu_si128(
                              reinterpret_cast<const __m128i*>(sign + j))));
      _mm_storeu_pd(x + j, xv);
      const int accept = _mm_movemask_pd(_mm_cmplt_pd(md, _mm_loadu_pd(ksel + j)));
      reject |= static_cast<std::uint32_t>(~accept & 0x3) << j;
    }
    for (; j < m; ++j) {
      x[j] = apply_sign(magd[j] * wsel[j], sign[j]);
      if (!(magd[j] < ksel[j])) reject |= std::uint32_t{1} << j;
    }
    if (reject == 0) {
      std::memcpy(out + i, x, m * sizeof(double));
      words += m;
      i += m;
      continue;
    }
    std::size_t j0 = 0;
    while (((reject >> j0) & 1u) == 0) ++j0;
    for (std::size_t a = 0; a < j0; ++a) out[i + a] = x[a];
    rng = snapshot;
    for (std::size_t a = 0; a < j0; ++a) rng.next_u64();
    words += j0;
    out[i + j0] = draw_counted(rng, &words);
    i += j0 + 1;
  }
  return words;
}

__attribute__((target("avx2"))) std::size_t ZigguratNormal::fill_block_avx2(
    Rng& rng, double* out, std::size_t n) const {
  std::size_t words = 0;
  std::size_t i = 0;
  double magd[kFillBlock], wsel[kFillBlock], ksel[kFillBlock], x[kFillBlock];
  std::uint64_t sign[kFillBlock];
  while (i < n) {
    const std::size_t m = n - i < kFillBlock ? n - i : kFillBlock;
    const Rng snapshot = rng;
    for (std::size_t j = 0; j < m; ++j) {
      const std::uint64_t u = rng.next_u64();
      const std::size_t layer = u & 0xff;
      magd[j] = static_cast<double>(u >> 11);
      wsel[j] = tables_->w[layer];
      ksel[j] = tables_->kd[layer];
      sign[j] = (u & 0x100) << 55;
    }
    std::uint32_t reject = 0;
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      const __m256d md = _mm256_loadu_pd(magd + j);
      __m256d xv = _mm256_mul_pd(md, _mm256_loadu_pd(wsel + j));
      xv = _mm256_xor_pd(xv, _mm256_castsi256_pd(_mm256_loadu_si256(
                                 reinterpret_cast<const __m256i*>(sign + j))));
      _mm256_storeu_pd(x + j, xv);
      const int accept = _mm256_movemask_pd(
          _mm256_cmp_pd(md, _mm256_loadu_pd(ksel + j), _CMP_LT_OQ));
      reject |= static_cast<std::uint32_t>(~accept & 0xf) << j;
    }
    for (; j < m; ++j) {
      x[j] = apply_sign(magd[j] * wsel[j], sign[j]);
      if (!(magd[j] < ksel[j])) reject |= std::uint32_t{1} << j;
    }
    if (reject == 0) {
      std::memcpy(out + i, x, m * sizeof(double));
      words += m;
      i += m;
      continue;
    }
    std::size_t j0 = 0;
    while (((reject >> j0) & 1u) == 0) ++j0;
    for (std::size_t a = 0; a < j0; ++a) out[i + a] = x[a];
    rng = snapshot;
    for (std::size_t a = 0; a < j0; ++a) rng.next_u64();
    words += j0;
    out[i + j0] = draw_counted(rng, &words);
    i += j0 + 1;
  }
  return words;
}

#else  // !WCDMA_ZIGGURAT_X86

std::size_t ZigguratNormal::fill_block_sse2(Rng& rng, double* out,
                                            std::size_t n) const {
  return fill_scalar(rng, out, n);
}

std::size_t ZigguratNormal::fill_block_avx2(Rng& rng, double* out,
                                            std::size_t n) const {
  return fill_scalar(rng, out, n);
}

#endif  // WCDMA_ZIGGURAT_X86

std::size_t ZigguratNormal::fill(Rng& rng, double* out, std::size_t n) const {
  switch (active_simd_level()) {
    case SimdLevel::kAvx2:
      return fill_block_avx2(rng, out, n);
    case SimdLevel::kSse2:
      return fill_block_sse2(rng, out, n);
    case SimdLevel::kScalar:
      break;
  }
  return fill_scalar(rng, out, n);
}

}  // namespace wcdma::common
