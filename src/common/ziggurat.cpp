#include "src/common/ziggurat.hpp"

#include <cmath>
#include <limits>

namespace wcdma::common {

namespace {

/// Right edge of the base strip and the common strip area for 256 layers
/// (Marsaglia & Tsang constants).
constexpr double kTailCut = 3.6541528853610088;
constexpr double kStripArea = 4.92867323399e-3;
constexpr double kTwo53 = 9007199254740992.0;  // magnitudes are 53-bit

}  // namespace

ZigguratNormal::ZigguratNormal() : tables_(&shared_tables()) {}

const ZigguratNormal::Tables& ZigguratNormal::shared_tables() {
  static const Tables tables = [] {
    Tables t{};
    double dn = kTailCut;
    double tn = kTailCut;
    // Layer 0 is the base strip plus the tail, stretched so a uniform
    // 53-bit magnitude below k[0] lands in the strip proper.
    const double q = kStripArea / std::exp(-0.5 * dn * dn);
    t.k[0] = static_cast<std::uint64_t>((dn / q) * kTwo53);
    t.k[1] = 0;
    t.w[0] = q / kTwo53;
    t.w[255] = dn / kTwo53;
    t.f[0] = 1.0;
    t.f[255] = std::exp(-0.5 * dn * dn);
    for (int i = 254; i >= 1; --i) {
      dn = std::sqrt(-2.0 * std::log(kStripArea / dn + std::exp(-0.5 * dn * dn)));
      t.k[i + 1] = static_cast<std::uint64_t>((dn / tn) * kTwo53);
      tn = dn;
      t.f[i] = std::exp(-0.5 * dn * dn);
      t.w[i] = dn / kTwo53;
    }
    return t;
  }();
  return tables;
}

double ZigguratNormal::draw_slow(Rng& rng, std::size_t layer, double x) const {
  if (layer == 0) {
    // Exponential-majorised tail beyond kTailCut (Marsaglia's method).
    // 1 - uniform() is in (0, 1], so the logs stay finite.
    double xx, yy;
    do {
      xx = -std::log(1.0 - rng.uniform()) / kTailCut;
      yy = -std::log(1.0 - rng.uniform());
    } while (yy + yy < xx * xx);
    return kTailCut + xx;
  }
  // Wedge between the strip top and the density curve.
  const double fx = std::exp(-0.5 * x * x);
  if (tables_->f[layer] + rng.uniform() * (tables_->f[layer - 1] - tables_->f[layer]) <
      fx) {
    return x;
  }
  return std::numeric_limits<double>::quiet_NaN();  // rejected: caller redraws
}

}  // namespace wcdma::common
