#include "src/common/thread_pool.hpp"

#include <atomic>

namespace wcdma::common {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for_index(std::size_t n, std::size_t threads,
                        const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  const std::size_t spawn = std::min(threads, n) - 1;
  pool.reserve(spawn);
  for (std::size_t t = 0; t < spawn; ++t) pool.emplace_back(drain);
  drain();
  for (auto& t : pool) t.join();
}

std::size_t default_thread_count() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

}  // namespace wcdma::common
