// Small dense row-major matrix and vector helpers.
//
// The admissible regions (Eq. 7 / Eq. 17 of the paper) are K x Nd matrices
// with K ~ tens and Nd ~ tens, and the simplex solver works on tableaux of
// similar size, so a simple contiguous double matrix is the right tool; no
// expression templates, no BLAS.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace wcdma::common {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Row-major construction from nested initializer lists; all rows must
  /// have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Pointer to the start of row r (contiguous cols_ doubles).
  double* row(std::size_t r);
  const double* row(std::size_t r) const;

  /// y = A x.  x.size() must equal cols().
  Vector multiply(const Vector& x) const;

  /// Appends a row (must match cols(), or sets cols() if empty).
  void append_row(const Vector& row_values);

  /// Human-readable dump for debugging / logging.
  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product; sizes must match.
double dot(const Vector& a, const Vector& b);

/// Element-wise: out = a + s * b.
Vector axpy(const Vector& a, double s, const Vector& b);

/// max_i |a_i - b_i|; sizes must match.
double linf_distance(const Vector& a, const Vector& b);

/// Sum of elements.
double sum(const Vector& v);

/// True iff A x <= b + tol element-wise.
bool satisfies(const Matrix& a, const Vector& x, const Vector& b, double tol = 1e-9);

}  // namespace wcdma::common
