// Fixed-size worker pool for embarrassingly-parallel Monte-Carlo
// replications.  Determinism contract: callers index work items and seed
// each item's RNG from (master_seed, index), so results are identical for
// any thread count, including 0 (inline execution).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace wcdma::common {

class ThreadPool {
 public:
  /// `threads == 0` means run submitted work inline on the calling thread.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task.  Inline-executes when the pool has no workers.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs `fn(i)` for i in [0, n) across `threads` workers (0 = inline).
/// `fn` must be safe to call concurrently for distinct i.
void parallel_for_index(std::size_t n, std::size_t threads,
                        const std::function<void(std::size_t)>& fn);

/// Default worker count: hardware_concurrency, at least 1.
std::size_t default_thread_count();

}  // namespace wcdma::common
