// Streaming statistics used by the simulator's metric pipeline and the
// benchmark harnesses: Welford moments, fixed-bin histograms with percentile
// queries, and batch-mean confidence intervals for Monte-Carlo replication
// merging.
//
// The statistical-equivalence toolkit at the bottom (two-sample KS test,
// Welch mean-difference interval, per-metric tolerance specs) is the
// acceptance machinery for every optimisation that gives up bit-identity:
// tests/test_statcheck.cpp runs paired common-random-number sweeps of the
// reference and relaxed implementations and asserts the paper's headline
// metrics agree under these tests.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace wcdma::common {

class BinaryWriter;
class BinaryReader;

/// Numerically-stable streaming mean/variance (Welford).  Mergeable, so
/// per-thread accumulators can be combined deterministically.
class StreamingMoments {
 public:
  void add(double x);
  void merge(const StreamingMoments& other);
  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double total() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width-bin histogram over [lo, hi); samples outside are clamped into
/// the first/last bin so percentile queries remain defined.  Mergeable.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void merge(const Histogram& other);
  /// Bin geometry is fixed by the constructor; only counts round-trip.
  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);

  std::size_t count() const { return total_; }
  /// Value at quantile q in [0,1], linearly interpolated within the bin.
  double percentile(double q) const;
  double mean_estimate() const;
  const std::vector<std::uint64_t>& bins() const { return counts_; }
  double bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::size_t total_ = 0;
};

/// Mean with a Student-t confidence interval over independent replications.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;  // mean +/- half_width
  std::size_t n = 0;
};

/// 95% CI from independent per-replication means (n >= 2); for n < 2 the
/// half-width is reported as 0.
ConfidenceInterval confidence_interval_95(const std::vector<double>& replication_means);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2); 1 = perfectly fair.
/// Returns 1 for empty or all-zero input.
double jain_fairness(const std::vector<double>& x);

// --- Statistical-equivalence toolkit ---------------------------------------

/// Two-sample Kolmogorov-Smirnov test result.
struct KsTest {
  double statistic = 0.0;  // sup |F_a - F_b|
  double p_value = 1.0;    // asymptotic (Stephens-corrected) significance
  std::size_t n = 0, m = 0;
};

/// Two-sample KS test of samples `a` vs `b` (copies are sorted internally).
/// Both samples must be non-empty.  The p-value uses the asymptotic
/// Kolmogorov distribution with the Stephens small-sample correction
/// (Numerical Recipes), adequate for n, m >= ~8 at the significance levels
/// the equivalence suites use (reject well below 1e-2).
KsTest ks_two_sample(std::vector<double> a, std::vector<double> b);

/// Welch (unequal-variance) 95% confidence interval on mean(a) - mean(b),
/// with the Welch-Satterthwaite degrees of freedom.
struct WelchInterval {
  double mean_diff = 0.0;
  double half_width = 0.0;  // 95% CI: mean_diff +/- half_width
  double df = 0.0;
  bool contains_zero() const {
    return mean_diff - half_width <= 0.0 && 0.0 <= mean_diff + half_width;
  }
  /// TOST-style equivalence: the whole 95% interval of the difference lies
  /// inside [-margin, +margin] (|diff| + half_width <= margin).  This gets
  /// HARDER to pass as the data gets noisier -- an under-powered comparison
  /// fails instead of passing vacuously, which is the property an
  /// acceptance gate needs.
  bool within(double margin) const {
    return std::abs(mean_diff) + half_width <= margin;
  }
};
WelchInterval welch_difference_95(const std::vector<double>& a,
                                  const std::vector<double>& b);

/// Declared per-metric agreement bound: |a - b| must not exceed
/// max(abs_tol, rel_tol * max(|a|, |b|)).  The specs live next to the
/// equivalence tests so every relaxed-precision acceptance documents its
/// tolerances explicitly.
struct MetricTolerance {
  const char* metric = "";
  double rel_tol = 0.0;
  double abs_tol = 0.0;
};
bool within_tolerance(double a, double b, const MetricTolerance& tol);
/// Human-readable pass/fail line for test diagnostics.
std::string tolerance_report(double a, double b, const MetricTolerance& tol);

}  // namespace wcdma::common
