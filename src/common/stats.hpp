// Streaming statistics used by the simulator's metric pipeline and the
// benchmark harnesses: Welford moments, fixed-bin histograms with percentile
// queries, and batch-mean confidence intervals for Monte-Carlo replication
// merging.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace wcdma::common {

/// Numerically-stable streaming mean/variance (Welford).  Mergeable, so
/// per-thread accumulators can be combined deterministically.
class StreamingMoments {
 public:
  void add(double x);
  void merge(const StreamingMoments& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double total() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width-bin histogram over [lo, hi); samples outside are clamped into
/// the first/last bin so percentile queries remain defined.  Mergeable.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void merge(const Histogram& other);

  std::size_t count() const { return total_; }
  /// Value at quantile q in [0,1], linearly interpolated within the bin.
  double percentile(double q) const;
  double mean_estimate() const;
  const std::vector<std::uint64_t>& bins() const { return counts_; }
  double bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::size_t total_ = 0;
};

/// Mean with a Student-t confidence interval over independent replications.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;  // mean +/- half_width
  std::size_t n = 0;
};

/// 95% CI from independent per-replication means (n >= 2); for n < 2 the
/// half-width is reported as 0.
ConfidenceInterval confidence_interval_95(const std::vector<double>& replication_means);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2); 1 = perfectly fair.
/// Returns 1 for empty or all-zero input.
double jain_fairness(const std::vector<double>& x);

}  // namespace wcdma::common
