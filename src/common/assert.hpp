// Lightweight contract checking. WCDMA_ASSERT is active in all build types
// because the simulator is cheap relative to the cost of silently corrupt
// physics; WCDMA_DEBUG_ASSERT compiles out in release builds and is meant
// for per-sample hot paths.  WCDMA_DCHECK is the invariant-checker variant:
// like WCDMA_DEBUG_ASSERT it compiles out in release builds, but it carries
// a human-written message naming the broken invariant, because the
// conditions it guards (queue/state cross-checks, index freshness) are
// whole-structure properties whose stringified expression alone is useless
// in a crash report.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace wcdma::common {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "wcdma assertion failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

[[noreturn]] inline void dcheck_fail(const char* expr, const char* msg,
                                     const char* file, int line) {
  std::fprintf(stderr, "wcdma invariant violated: %s (%s) at %s:%d\n", msg, expr,
               file, line);
  std::abort();
}

}  // namespace wcdma::common

#define WCDMA_ASSERT(expr)                                          \
  do {                                                              \
    if (!(expr)) ::wcdma::common::assert_fail(#expr, __FILE__, __LINE__); \
  } while (0)

#ifndef NDEBUG
#define WCDMA_DEBUG_ASSERT(expr) WCDMA_ASSERT(expr)
#define WCDMA_DCHECK(expr, msg)                                             \
  do {                                                                      \
    if (!(expr)) ::wcdma::common::dcheck_fail(#expr, msg, __FILE__, __LINE__); \
  } while (0)
#else
#define WCDMA_DEBUG_ASSERT(expr) ((void)0)
#define WCDMA_DCHECK(expr, msg) ((void)0)
#endif
