// Lightweight contract checking. WCDMA_ASSERT is active in all build types
// because the simulator is cheap relative to the cost of silently corrupt
// physics; WCDMA_DEBUG_ASSERT compiles out in release builds and is meant
// for per-sample hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace wcdma::common {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "wcdma assertion failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace wcdma::common

#define WCDMA_ASSERT(expr)                                          \
  do {                                                              \
    if (!(expr)) ::wcdma::common::assert_fail(#expr, __FILE__, __LINE__); \
  } while (0)

#ifndef NDEBUG
#define WCDMA_DEBUG_ASSERT(expr) WCDMA_ASSERT(expr)
#else
#define WCDMA_DEBUG_ASSERT(expr) ((void)0)
#endif
