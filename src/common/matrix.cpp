#include "src/common/matrix.hpp"

#include <cmath>
#include <cstdio>

#include "src/common/assert.hpp"

namespace wcdma::common {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    WCDMA_ASSERT(r.size() == cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  WCDMA_DEBUG_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  WCDMA_DEBUG_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double* Matrix::row(std::size_t r) {
  WCDMA_DEBUG_ASSERT(r < rows_);
  return data_.data() + r * cols_;
}

const double* Matrix::row(std::size_t r) const {
  WCDMA_DEBUG_ASSERT(r < rows_);
  return data_.data() + r * cols_;
}

Vector Matrix::multiply(const Vector& x) const {
  WCDMA_ASSERT(x.size() == cols_);
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += a[c] * x[c];
    y[r] = acc;
  }
  return y;
}

void Matrix::append_row(const Vector& row_values) {
  if (empty() && rows_ == 0) {
    cols_ = row_values.size();
  }
  WCDMA_ASSERT(row_values.size() == cols_);
  data_.insert(data_.end(), row_values.begin(), row_values.end());
  ++rows_;
}

std::string Matrix::to_string(int precision) const {
  std::string out;
  char buf[64];
  for (std::size_t r = 0; r < rows_; ++r) {
    out += "[ ";
    for (std::size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "%.*g ", precision, (*this)(r, c));
      out += buf;
    }
    out += "]\n";
  }
  return out;
}

double dot(const Vector& a, const Vector& b) {
  WCDMA_ASSERT(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

Vector axpy(const Vector& a, double s, const Vector& b) {
  WCDMA_ASSERT(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

double linf_distance(const Vector& a, const Vector& b) {
  WCDMA_ASSERT(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

double sum(const Vector& v) {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc;
}

bool satisfies(const Matrix& a, const Vector& x, const Vector& b, double tol) {
  WCDMA_ASSERT(a.rows() == b.size());
  const Vector y = a.multiply(x);
  for (std::size_t r = 0; r < y.size(); ++r) {
    if (y[r] > b[r] + tol) return false;
  }
  return true;
}

}  // namespace wcdma::common
