#include "src/sweep/sweep.hpp"

#include <cmath>
#include <cstdint>
#include <mutex>

#include "src/admission/policy.hpp"
#include "src/common/assert.hpp"
#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sim/channel_state.hpp"
#include "src/sim/simulator.hpp"

namespace wcdma::sweep {

namespace {

std::string format_int(int v) { return std::to_string(v); }

}  // namespace

Axis axis_data_users(const std::vector<int>& counts) {
  Axis axis{"data_users", {}};
  for (int n : counts) {
    axis.values.push_back(
        {format_int(n), [n](sim::SystemConfig& cfg) { cfg.data.users = n; }});
  }
  return axis;
}

Axis axis_voice_users(const std::vector<int>& counts) {
  Axis axis{"voice_users", {}};
  for (int n : counts) {
    axis.values.push_back(
        {format_int(n), [n](sim::SystemConfig& cfg) { cfg.voice.users = n; }});
  }
  return axis;
}

Axis axis_max_speed_kmh(const std::vector<double>& kmh) {
  Axis axis{"max_speed_kmh", {}};
  for (double v : kmh) {
    axis.values.push_back({common::format_double(v, 4), [v](sim::SystemConfig& cfg) {
                             cfg.mobility.max_speed_mps = v / 3.6;
                           }});
  }
  return axis;
}

Axis axis_path_loss_exponent(const std::vector<double>& exponents) {
  Axis axis{"path_loss_exp", {}};
  for (double v : exponents) {
    axis.values.push_back({common::format_double(v, 4), [v](sim::SystemConfig& cfg) {
                             cfg.path_loss.kind = channel::PathLossModelKind::kLogDistance;
                             cfg.path_loss.exponent = v;
                           }});
  }
  return axis;
}

Axis axis_shadowing_sigma_db(const std::vector<double>& sigmas) {
  Axis axis{"shadow_sigma_db", {}};
  for (double v : sigmas) {
    axis.values.push_back({common::format_double(v, 4), [v](sim::SystemConfig& cfg) {
                             cfg.shadowing.sigma_db = v;
                           }});
  }
  return axis;
}

Axis axis_scheduler(const std::vector<admission::SchedulerKind>& kinds) {
  Axis axis{"scheduler", {}};
  for (auto kind : kinds) {
    axis.values.push_back({admission::to_string(kind), [kind](sim::SystemConfig& cfg) {
                             cfg.admission.scheduler = kind;
                           }});
  }
  return axis;
}

Axis axis_policy(const std::vector<std::string>& names) {
  Axis axis{"policy", {}};
  for (const std::string& name : names) {
    WCDMA_ASSERT(admission::has_policy(name) && "unknown admission policy in axis");
    axis.values.push_back(
        {name, [name](sim::SystemConfig& cfg) { cfg.admission.policy = name; }});
  }
  return axis;
}

Axis axis_csi_provider(const std::vector<std::string>& names) {
  Axis axis{"csi_provider", {}};
  for (const std::string& name : names) {
    WCDMA_ASSERT(sim::has_channel_provider(name) &&
                 "unknown channel-state provider in axis");
    axis.values.push_back(
        {name, [name](sim::SystemConfig& cfg) { cfg.csi.provider = name; }});
  }
  return axis;
}

Axis axis_objective(const std::vector<admission::ObjectiveKind>& kinds) {
  Axis axis{"objective", {}};
  for (auto kind : kinds) {
    axis.values.push_back({admission::to_string(kind), [kind](sim::SystemConfig& cfg) {
                             cfg.admission.objective = kind;
                           }});
  }
  return axis;
}

Axis axis_fixed_mode(const std::vector<int>& modes) {
  Axis axis{"fixed_mode", {}};
  for (int m : modes) {
    axis.values.push_back({m == 0 ? std::string("adaptive") : "m" + format_int(m),
                           [m](sim::SystemConfig& cfg) { cfg.phy.fixed_mode = m; }});
  }
  return axis;
}

Axis axis_load_scale(const std::vector<double>& scales) {
  Axis axis{"load_scale", {}};
  for (double s : scales) {
    axis.values.push_back({common::format_double(s, 4), [s](sim::SystemConfig& cfg) {
                             cfg.voice.users = static_cast<int>(std::lround(cfg.voice.users * s));
                             cfg.data.users = static_cast<int>(std::lround(cfg.data.users * s));
                           }});
  }
  return axis;
}

Axis axis_carriers(const std::vector<int>& counts) {
  Axis axis{"carriers", {}};
  for (int c : counts) {
    axis.values.push_back(
        {format_int(c), [c](sim::SystemConfig& cfg) { cfg.placement.carriers = c; }});
  }
  return axis;
}

Axis axis_feedback_delay_frames(const std::vector<std::size_t>& frames) {
  Axis axis{"feedback_delay", {}};
  for (std::size_t f : frames) {
    axis.values.push_back({std::to_string(f) + "f", [f](sim::SystemConfig& cfg) {
                             cfg.phy.feedback_delay_frames = f;
                           }});
  }
  return axis;
}

Axis axis_kappa_margin_db(const std::vector<double>& margins) {
  Axis axis{"kappa_db", {}};
  for (double k : margins) {
    axis.values.push_back({common::format_double(k, 4), [k](sim::SystemConfig& cfg) {
                             cfg.admission.kappa_margin_db = k;
                           }});
  }
  return axis;
}

Axis axis_scrm_retry_s(const std::vector<double>& retries) {
  Axis axis{"scrm_retry_s", {}};
  for (double r : retries) {
    axis.values.push_back({common::format_double(r, 4), [r](sim::SystemConfig& cfg) {
                             cfg.admission.scrm_retry_s = r;
                           }});
  }
  return axis;
}

Axis axis_reduced_set(const std::vector<std::size_t>& sizes) {
  Axis axis{"reduced_set", {}};
  for (std::size_t n : sizes) {
    axis.values.push_back({std::to_string(n) + "legs", [n](sim::SystemConfig& cfg) {
                             cfg.active_set.reduced_size = n;
                           }});
  }
  return axis;
}

Axis axis_sim_threads(const std::vector<int>& counts) {
  Axis axis{"sim_threads", {}};
  for (int n : counts) {
    axis.values.push_back(
        {format_int(n), [n](sim::SystemConfig& cfg) { cfg.sim_threads = n; }});
  }
  return axis;
}

Axis axis_load_ramp_peak(const std::vector<double>& peaks) {
  Axis axis{"ramp_peak", {}};
  for (double p : peaks) {
    axis.values.push_back({common::format_double(p, 4), [p](sim::SystemConfig& cfg) {
                             cfg.load_ramp.peak_scale = p;
                           }});
  }
  return axis;
}

std::size_t SweepSpec::scenario_count() const {
  std::size_t count = 1;
  for (const Axis& axis : axes) {
    WCDMA_ASSERT(!axis.values.empty());
    WCDMA_ASSERT(count <= SIZE_MAX / axis.values.size() && "scenario grid overflows");
    count *= axis.values.size();
  }
  return count;
}

Scenario SweepSpec::scenario(std::size_t index) const {
  WCDMA_ASSERT(index < scenario_count());
  Scenario scenario;
  scenario.index = index;
  scenario.config = base;
  scenario.value_indices.resize(axes.size());
  // Row-major decode: the first axis varies slowest.
  std::size_t rest = index;
  for (std::size_t a = axes.size(); a-- > 0;) {
    scenario.value_indices[a] = rest % axes[a].values.size();
    rest /= axes[a].values.size();
  }
  scenario.labels.reserve(axes.size());
  for (std::size_t a = 0; a < axes.size(); ++a) {
    const AxisValue& value = axes[a].values[scenario.value_indices[a]];
    value.apply(scenario.config);
    scenario.labels.push_back(value.label);
  }
  return scenario;
}

const SweepSpec& SweepSpec::validate() const {
  WCDMA_ASSERT(replications >= 1);
  for (const Axis& axis : axes) {
    WCDMA_ASSERT(!axis.name.empty());
    WCDMA_ASSERT(!axis.values.empty());
  }
  scenario_count();  // asserts the grid product does not overflow size_t
  return *this;
}

std::uint64_t item_seed(std::uint64_t master_seed, std::size_t scenario_index,
                        std::size_t replication_index) {
  // Two mixing rounds: first fold in the scenario, then the replication.
  // Collisions between distinct (scenario, replication) pairs are
  // birthday-improbable for realistic grid sizes, not impossible.
  common::SplitMix64 scenario_stream(master_seed +
                                     0x9e3779b97f4a7c15ULL * (scenario_index + 1));
  common::SplitMix64 item_stream(scenario_stream.next() +
                                 0xbf58476d1ce4e5b9ULL * (replication_index + 1));
  return item_stream.next();
}

const ScenarioResult& SweepResult::at(const std::vector<std::size_t>& value_indices) const {
  for (const ScenarioResult& s : scenarios) {
    if (s.value_indices == value_indices) return s;
  }
  WCDMA_ASSERT(false && "no scenario with the requested value indices");
  return scenarios.front();  // unreachable
}

std::size_t item_count(const SweepSpec& spec) {
  const std::size_t scenarios = spec.scenario_count();
  WCDMA_ASSERT(spec.replications <= SIZE_MAX / scenarios &&
               "scenario x replication grid overflows");
  return scenarios * spec.replications;
}

sim::SystemConfig item_config(const SweepSpec& spec, std::size_t item) {
  WCDMA_ASSERT(item < item_count(spec));
  const std::size_t scenario_index = item / spec.replications;
  const std::size_t replication = item % spec.replications;
  Scenario scenario = spec.scenario(scenario_index);
  scenario.config.seed = item_seed(
      spec.base.seed, spec.common_random_numbers ? 0 : scenario_index, replication);
  return scenario.config;
}

SweepResult run_sweep(const SweepSpec& spec, std::size_t threads,
                      const ProgressFn& progress) {
  spec.validate();
  const std::size_t total = item_count(spec);

  // One slot per (scenario, replication) work item; workers never share a
  // slot, and the deterministic merge below runs after the barrier.
  std::vector<sim::SimMetrics> per_item(total);
  std::mutex progress_mutex;
  std::size_t done = 0;
  common::parallel_for_index(total, threads, [&](std::size_t item) {
    sim::Simulator simulator(item_config(spec, item));
    per_item[item] = simulator.run();
    if (progress) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      progress(++done, total);
    }
  });

  return merge_item_metrics(spec, per_item);
}

SweepResult merge_item_metrics(const SweepSpec& spec,
                               const std::vector<sim::SimMetrics>& per_item) {
  spec.validate();
  const std::size_t scenarios = spec.scenario_count();
  const std::size_t reps = spec.replications;
  WCDMA_ASSERT(per_item.size() == item_count(spec) &&
               "one metrics slot per (scenario, replication) item");

  SweepResult result;
  result.name = spec.name;
  result.replications = reps;
  for (const Axis& axis : spec.axes) result.axis_names.push_back(axis.name);
  result.scenarios.resize(scenarios);
  for (std::size_t s = 0; s < scenarios; ++s) {
    const Scenario scenario = spec.scenario(s);
    ScenarioResult& out = result.scenarios[s];
    out.index = s;
    out.value_indices = scenario.value_indices;
    out.labels = scenario.labels;
    out.replication_mean_delay_s.reserve(reps);
    for (std::size_t r = 0; r < reps; ++r) {
      const sim::SimMetrics& m = per_item[s * reps + r];
      out.merged.merge(m);
      out.replication_mean_delay_s.push_back(m.mean_delay_s());
    }
  }
  return result;
}

common::Table to_table(const SweepResult& result) {
  std::vector<std::string> headers = {"scenario"};
  headers.insert(headers.end(), result.axis_names.begin(), result.axis_names.end());
  for (const char* metric :
       {"mean_delay_s", "p95_delay_s", "throughput_kbps", "grant_rate", "mean_sgr",
        "sch_outage_rate", "hand_downs"}) {
    headers.push_back(metric);
  }
  common::Table table(std::move(headers));
  for (const ScenarioResult& s : result.scenarios) {
    std::vector<std::string> row = {std::to_string(s.index)};
    row.insert(row.end(), s.labels.begin(), s.labels.end());
    const sim::SimMetrics& m = s.merged;
    for (double v : {m.mean_delay_s(), m.p95_delay_s(), m.data_throughput_bps() / 1000.0,
                     m.grant_rate(), m.granted_sgr.mean(), m.sch_outage_rate()}) {
      row.push_back(common::format_double(v, 6));
    }
    row.push_back(std::to_string(m.carrier_hand_downs));
    table.add_row(std::move(row));
  }
  return table;
}

std::string to_csv(const SweepResult& result) { return to_table(result).render_csv(); }

std::string to_json(const SweepResult& result) { return to_table(result).render_json(); }

}  // namespace wcdma::sweep
