// Scenario-preset registry: named, ready-to-run SweepSpecs covering the
// paper's evaluation settings plus the scenario diversity the roadmap asks
// for (hotspot load, vehicular mobility, data-heavy traffic, degraded
// channels), including the multi-cell, multi-carrier topologies built by
// src/scenario (uniform-hex7, hotspot-center, highway-corridor,
// enterprise-data).  Benches and the sweep CLI both draw from here so
// experiment definitions live in exactly one place.
#pragma once

#include <string>
#include <vector>

#include "src/sweep/sweep.hpp"

namespace wcdma::sweep {

/// Names accepted by make_preset, in registry order.
std::vector<std::string> preset_names();

/// True when `name` is a registered preset.
bool has_preset(const std::string& name);

/// Builds the named SweepSpec; aborts on unknown names (use has_preset to
/// probe).  The spec's base.seed is the sweep's master seed.
SweepSpec make_preset(const std::string& name);

/// One-line description for CLI listings.
std::string preset_description(const std::string& name);

}  // namespace wcdma::sweep
