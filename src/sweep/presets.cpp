#include "src/sweep/presets.hpp"

#include "src/common/assert.hpp"
#include "src/scenario/scenario.hpp"

namespace wcdma::sweep {

namespace {

using admission::ObjectiveKind;
using admission::SchedulerKind;

const std::vector<SchedulerKind> kCoreSchedulers = {
    SchedulerKind::kJabaSd, SchedulerKind::kFcfs, SchedulerKind::kEqualShare};

/// The paper's 19-cell wide-area setting, shortened to a CI-friendly horizon.
SweepSpec paper_default() {
  SweepSpec spec;
  spec.name = "paper-default";
  spec.base = sim::default_config();
  spec.base.sim_duration_s = 30.0;
  spec.base.warmup_s = 5.0;
  spec.base.data.mean_reading_s = 1.5;
  spec.base.seed = 2001042;
  spec.axes = {axis_scheduler(kCoreSchedulers), axis_data_users({8, 16})};
  spec.replications = 2;
  spec.common_random_numbers = true;  // paired comparison across the grid
  return spec;
}

/// Every user confined to the central cell so burst requests contend for
/// one power/interference budget — where multiple-burst scheduling matters.
SweepSpec hotspot_cell() {
  SweepSpec spec;
  spec.name = "hotspot-cell";
  spec.base = sim::default_config();
  spec.base.layout.rings = 1;  // 7 cells
  spec.base.voice.users = 30;
  spec.base.data.mean_reading_s = 1.0;
  spec.base.mobility.region_radius_m = spec.base.layout.cell_radius_m;
  spec.base.sim_duration_s = 50.0;
  spec.base.warmup_s = 8.0;
  spec.base.seed = 7701;
  spec.axes = {axis_scheduler(kCoreSchedulers), axis_data_users({8, 16, 24})};
  spec.replications = 2;
  spec.common_random_numbers = true;  // paired comparison across the grid
  return spec;
}

/// Vehicular users: fast shadowing decorrelation and stale closed-loop CSI
/// stress the channel-adaptive stack.
SweepSpec highway_mobility() {
  SweepSpec spec;
  spec.name = "highway-mobility";
  spec.base = sim::default_config();
  spec.base.layout.rings = 1;
  spec.base.voice.users = 20;
  spec.base.data.users = 12;
  spec.base.mobility.min_speed_mps = 15.0;
  spec.base.sim_duration_s = 40.0;
  spec.base.warmup_s = 6.0;
  spec.base.seed = 8803;
  spec.axes = {axis_max_speed_kmh({60.0, 90.0, 120.0}),
               axis_scheduler({SchedulerKind::kJabaSd, SchedulerKind::kFcfs})};
  spec.replications = 2;
  spec.common_random_numbers = true;  // paired comparison across the grid
  return spec;
}

/// Download-dominated traffic mix at short reading times: the forward-link
/// power budget is the binding constraint.
SweepSpec data_heavy() {
  SweepSpec spec;
  spec.name = "data-heavy";
  spec.base = sim::default_config();
  spec.base.layout.rings = 1;
  spec.base.voice.users = 10;
  spec.base.data.mean_reading_s = 0.8;
  spec.base.data.forward_fraction = 1.0;
  spec.base.mobility.region_radius_m = spec.base.layout.cell_radius_m;
  spec.base.sim_duration_s = 40.0;
  spec.base.warmup_s = 6.0;
  spec.base.seed = 9907;
  spec.axes = {axis_data_users({12, 18, 24}),
               axis_objective({ObjectiveKind::kJ1MaxRate, ObjectiveKind::kJ2DelayAware})};
  spec.replications = 2;
  spec.common_random_numbers = true;  // paired comparison across the grid
  return spec;
}

/// Harsh propagation: steep path loss and heavy shadowing, adaptive VTAOC
/// against a fixed-rate ablation (the paper's coverage story).
SweepSpec degraded_channel() {
  SweepSpec spec;
  spec.name = "degraded-channel";
  spec.base = sim::default_config();
  spec.base.voice.users = 30;
  spec.base.data.users = 12;
  spec.base.sim_duration_s = 40.0;
  spec.base.warmup_s = 6.0;
  spec.base.path_loss.kind = channel::PathLossModelKind::kLogDistance;
  spec.base.path_loss.exponent = 4.2;
  spec.base.seed = 6607;
  spec.axes = {axis_shadowing_sigma_db({8.0, 10.0, 12.0}), axis_fixed_mode({0, 4})};
  spec.replications = 2;
  spec.common_random_numbers = true;  // paired comparison across the grid
  return spec;
}

// --- Multi-cell scenario presets (src/scenario layouts) ------------------

/// Uniformly loaded 7-cell grid: schedulers x overall load scale.
SweepSpec uniform_hex7() {
  SweepSpec spec;
  spec.name = "uniform-hex7";
  spec.base = scenario::uniform_hex7().to_config();
  spec.axes = {axis_scheduler(kCoreSchedulers), axis_load_scale({0.75, 1.0, 1.25})};
  spec.replications = 2;
  spec.common_random_numbers = true;  // paired comparison across the grid
  return spec;
}

/// 19-cell hotspot-centre layout: schedulers x data load in the hotspot.
SweepSpec hotspot_center() {
  SweepSpec spec;
  spec.name = "hotspot-center";
  spec.base = scenario::hotspot_center().to_config();
  spec.axes = {axis_scheduler(kCoreSchedulers), axis_data_users({16, 24, 32})};
  spec.replications = 2;
  spec.common_random_numbers = true;  // paired comparison across the grid
  return spec;
}

/// Vehicular corridor through a 19-cell grid: speed x schedulers.
SweepSpec highway_corridor() {
  SweepSpec spec;
  spec.name = "highway-corridor";
  spec.base = scenario::highway_corridor().to_config();
  spec.axes = {axis_max_speed_kmh({60.0, 90.0, 120.0}),
               axis_scheduler({SchedulerKind::kJabaSd, SchedulerKind::kFcfs})};
  spec.replications = 2;
  spec.common_random_numbers = true;  // paired comparison across the grid
  return spec;
}

/// Data-heavy enterprise mix: carrier count x admission objective.
SweepSpec enterprise_data() {
  SweepSpec spec;
  spec.name = "enterprise-data";
  spec.base = scenario::enterprise_data().to_config();
  spec.axes = {axis_carriers({1, 2}),
               axis_objective({ObjectiveKind::kJ1MaxRate, ObjectiveKind::kJ2DelayAware})};
  spec.replications = 2;
  spec.common_random_numbers = true;  // paired comparison across the grid
  return spec;
}

/// Exhaustive vs. neighbour-culled vs. relaxed-precision channel-state
/// providers on the 19-cell hotspot grid: the metric-equivalence and
/// frames/sec story in one sweep.  `fast` rows are statistically
/// equivalent, not bit-identical (tests/test_statcheck.cpp pins the
/// tolerances).
SweepSpec csi_providers() {
  SweepSpec spec;
  spec.name = "csi-providers";
  spec.base = scenario::hotspot_center().to_config();
  spec.base.sim_duration_s = 60.0;
  spec.base.warmup_s = 8.0;
  spec.axes = {axis_csi_provider({"exhaustive", "culled", "fast"}),
               axis_load_scale({1.0, 2.0})};
  spec.replications = 2;
  spec.common_random_numbers = true;  // paired comparison across the grid
  return spec;
}

/// 127-cell metro grid: the world size only the culling providers can
/// afford.  Provider x load scale, shortened horizon -- the per-link cost
/// of `culled`/`fast` stays flat with cell count because candidate sets
/// are radius-bounded and the far-field aggregate covers the rest
/// (docs/ACCURACY.md; tools/check_perf.py gates the scaling).
SweepSpec large_hex() {
  SweepSpec spec;
  spec.name = "large-hex";
  spec.base = scenario::large_hex().to_config();
  spec.base.sim_duration_s = 30.0;
  spec.base.warmup_s = 5.0;
  spec.axes = {axis_csi_provider({"culled", "fast"}), axis_load_scale({1.0, 1.5})};
  spec.replications = 1;
  spec.common_random_numbers = true;  // paired comparison across the grid
  return spec;
}

/// Inter-carrier hand-down against plain JABA-SD on the two-carrier
/// enterprise layout: the load-balancing win of the policy API.
SweepSpec carrier_balance() {
  SweepSpec spec;
  spec.name = "carrier-balance";
  spec.base = scenario::enterprise_data().to_config();
  spec.axes = {axis_policy({"jaba-sd", "hand-down"}),
               axis_load_scale({1.0, 1.5})};
  spec.replications = 2;
  spec.common_random_numbers = true;  // paired comparison across the grid
  return spec;
}

/// Flash crowd on the hotspot-centre layout: a trapezoidal arrival pulse
/// (2x..4x) hits the centre cell and its first ring mid-run -- the "dynamic
/// per-cell load over time" scenario the static hotspot weights cannot
/// express.  Peak scale x scheduler, so the delay blow-up and recovery are
/// directly comparable across admission schemes.
SweepSpec flash_crowd() {
  SweepSpec spec;
  spec.name = "flash-crowd";
  scenario::ScenarioLayout layout = scenario::hotspot_center();
  // Pulse shortly after the 12 s warmup so both the full 150 s run and the
  // shortened CI smoke cross it; the long tail shows the recovery.
  layout.load_ramp.start_s = 16.0;
  layout.load_ramp.rise_s = 8.0;
  layout.load_ramp.hold_s = 50.0;
  layout.load_ramp.fall_s = 10.0;
  // Full pulse on the centre cell, half strength on the first ring.
  layout.load_ramp.cell_weights.assign(cell::hex_cell_count(layout.layout.rings), 0.0);
  layout.load_ramp.cell_weights[0] = 1.0;
  for (std::size_t k = 1; k <= 6; ++k) layout.load_ramp.cell_weights[k] = 0.5;
  // peak_scale stays 1 in the base; the ramp_peak axis switches it on, and
  // value 1 doubles as the no-ramp control cell of the sweep.
  spec.base = layout.to_config();
  spec.axes = {axis_load_ramp_peak({1.0, 2.0, 4.0}),
               axis_scheduler({SchedulerKind::kJabaSd, SchedulerKind::kFcfs})};
  spec.replications = 2;
  spec.common_random_numbers = true;  // paired comparison across the grid
  return spec;
}

/// Intra-frame parallelism proof: the sim_threads axis must leave every
/// metric bit-identical while the sweep records the frames/sec story.
SweepSpec sim_threads() {
  SweepSpec spec;
  spec.name = "sim-threads";
  spec.base = scenario::hotspot_center().to_config();
  spec.base.sim_duration_s = 30.0;
  spec.base.warmup_s = 5.0;
  spec.axes = {axis_sim_threads({1, 4}),
               axis_csi_provider({"exhaustive", "culled", "fast"})};
  spec.replications = 1;
  spec.common_random_numbers = true;  // identical streams: rows must match
  return spec;
}

/// Tiny 2-scenario grid for CI smoke runs and engine tests.
SweepSpec smoke() {
  SweepSpec spec;
  spec.name = "smoke";
  spec.base = sim::default_config();
  spec.base.layout.rings = 1;
  spec.base.voice.users = 8;
  spec.base.data.users = 4;
  spec.base.data.mean_reading_s = 1.0;
  spec.base.sim_duration_s = 6.0;
  spec.base.warmup_s = 1.0;
  spec.base.seed = 1105;
  spec.axes = {axis_scheduler({SchedulerKind::kJabaSd, SchedulerKind::kFcfs})};
  spec.replications = 1;
  spec.common_random_numbers = true;  // paired comparison across the grid
  return spec;
}

struct PresetEntry {
  const char* name;
  const char* description;
  SweepSpec (*build)();
};

const PresetEntry kPresets[] = {
    {"paper-default", "19-cell wide area, headline schedulers x data load",
     paper_default},
    {"hotspot-cell", "single congested cell, schedulers x data load", hotspot_cell},
    {"highway-mobility", "vehicular speeds 60-120 km/h x schedulers",
     highway_mobility},
    {"data-heavy", "download-dominated mix, data load x objective", data_heavy},
    {"degraded-channel", "steep path loss, shadowing x adaptive-vs-fixed PHY",
     degraded_channel},
    {"uniform-hex7", "uniform 7-cell grid, schedulers x load scale", uniform_hex7},
    {"hotspot-center", "19-cell hotspot centre, schedulers x data load",
     hotspot_center},
    {"highway-corridor", "vehicular corridor cells, speed x schedulers",
     highway_corridor},
    {"enterprise-data", "data-heavy enterprise mix, carriers x objective",
     enterprise_data},
    {"csi-providers", "exhaustive vs culled vs fast channel state, load x provider",
     csi_providers},
    {"large-hex", "127-cell metro grid, culling provider x load scale",
     large_hex},
    {"carrier-balance", "inter-carrier hand-down vs JABA-SD, two carriers",
     carrier_balance},
    {"flash-crowd", "hotspot-centre arrival pulse, ramp peak x schedulers",
     flash_crowd},
    {"sim-threads", "intra-frame thread count x provider, bit-identity proof",
     sim_threads},
    {"smoke", "tiny 2-scenario grid for CI smoke runs", smoke},
};

const PresetEntry* find_preset(const std::string& name) {
  for (const PresetEntry& entry : kPresets) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> preset_names() {
  std::vector<std::string> names;
  for (const PresetEntry& entry : kPresets) names.push_back(entry.name);
  return names;
}

bool has_preset(const std::string& name) { return find_preset(name) != nullptr; }

SweepSpec make_preset(const std::string& name) {
  const PresetEntry* entry = find_preset(name);
  WCDMA_ASSERT(entry != nullptr && "unknown sweep preset");
  SweepSpec spec = entry->build();
  spec.validate();
  return spec;
}

std::string preset_description(const std::string& name) {
  const PresetEntry* entry = find_preset(name);
  WCDMA_ASSERT(entry != nullptr && "unknown sweep preset");
  return entry->description;
}

}  // namespace wcdma::sweep
