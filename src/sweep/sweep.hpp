// Parallel scenario-sweep engine.
//
// The paper's whole evaluation (E1-E7) is a family of parameter sweeps over
// one SystemConfig; this subsystem makes that a first-class object instead
// of a hand-rolled loop per bench.  A SweepSpec names axes over config
// knobs, expands to a deterministic mixed-radix grid of scenarios, and the
// runner shards (scenario x replication) work items across a thread pool.
// Per-item seeds derive from (master seed, scenario index, replication
// index), and replications merge in index order, so the merged results are
// bit-identical for any worker count, including 0 (inline execution).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/table.hpp"
#include "src/sim/config.hpp"
#include "src/sim/metrics.hpp"

namespace wcdma::sweep {

/// One point on an axis: a display label plus the config mutation it means.
struct AxisValue {
  std::string label;
  std::function<void(sim::SystemConfig&)> apply;
};

/// One swept dimension; the grid is the cross product of all axes.
struct Axis {
  std::string name;
  std::vector<AxisValue> values;
};

// --- Axis factories for the SystemConfig knobs the benches sweep ---
Axis axis_data_users(const std::vector<int>& counts);
Axis axis_voice_users(const std::vector<int>& counts);
/// Sets mobility.max_speed_mps (min stays at the config default).
Axis axis_max_speed_kmh(const std::vector<double>& kmh);
/// Switches to the log-distance model with the given exponents.
Axis axis_path_loss_exponent(const std::vector<double>& exponents);
Axis axis_shadowing_sigma_db(const std::vector<double>& sigmas);
Axis axis_scheduler(const std::vector<admission::SchedulerKind>& kinds);
/// Admission policy by registry name (admission::policy_names()); reaches
/// policies the SchedulerKind enum cannot (e.g. "hand-down").
Axis axis_policy(const std::vector<std::string>& names);
/// Channel-state provider by registry name ("exhaustive", "culled").
Axis axis_csi_provider(const std::vector<std::string>& names);
Axis axis_objective(const std::vector<admission::ObjectiveKind>& kinds);
/// 0 = adaptive VTAOC, 1..6 = fixed-rate ablation at that mode.
Axis axis_fixed_mode(const std::vector<int>& modes);
/// Multiplies the base voice AND data populations (rounded).
Axis axis_load_scale(const std::vector<double>& scales);
/// Independent WCDMA carriers per cell (placement.carriers).
Axis axis_carriers(const std::vector<int>& counts);
/// CSI feedback delay of the adaptive PHY, in frames.
Axis axis_feedback_delay_frames(const std::vector<std::size_t>& frames);
/// Reverse-link neighbour-projection shadowing margin kappa (Eq. 15).
Axis axis_kappa_margin_db(const std::vector<double>& margins);
/// SCRM persistence: seconds a rejected request stays out of scheduling.
Axis axis_scrm_retry_s(const std::vector<double>& retries);
/// Reduced active-set size (SCH legs per burst, footnote 4).
Axis axis_reduced_set(const std::vector<std::size_t>& sizes);
/// Intra-frame worker threads of the simulator hot path (sim.threads;
/// 0 = hardware concurrency).  Metrics are bit-identical across values --
/// this axis exists to *prove* that, and to bench the scaling.
Axis axis_sim_threads(const std::vector<int>& counts);
/// Flash-crowd peak arrival scale (load_ramp.peak_scale); the preset's base
/// config supplies the ramp timing and per-cell blend.
Axis axis_load_ramp_peak(const std::vector<double>& peaks);

/// One fully-expanded grid point.
struct Scenario {
  std::size_t index = 0;
  /// Per-axis value index (mixed-radix digits of `index`).
  std::vector<std::size_t> value_indices;
  /// Per-axis display label.
  std::vector<std::string> labels;
  sim::SystemConfig config;
};

struct SweepSpec {
  std::string name;
  sim::SystemConfig base;
  std::vector<Axis> axes;
  std::size_t replications = 1;
  /// Common random numbers: replication r draws the same seed in every
  /// scenario, so compared grid cells see identical user drops and channel
  /// realisations (paired comparison, variance reduction).  Off by default:
  /// each (scenario, replication) item gets an independent stream.
  bool common_random_numbers = false;

  /// Product of axis sizes (1 when there are no axes).
  std::size_t scenario_count() const;
  /// Decodes `index` (row-major, first axis slowest) and applies the axis
  /// values to a copy of `base`.
  Scenario scenario(std::size_t index) const;
  /// Aborts on empty axes or zero replications; returns *this for chaining.
  const SweepSpec& validate() const;
};

/// Deterministic seed for one (scenario, replication) work item.  Derived
/// from the master seed by two SplitMix64 mixing rounds so distinct items
/// never share a stream.
std::uint64_t item_seed(std::uint64_t master_seed, std::size_t scenario_index,
                        std::size_t replication_index);

/// Total (scenario x replication) work items; item `i` is
/// (scenario i / replications, replication i % replications).
std::size_t item_count(const SweepSpec& spec);

/// The exact SystemConfig work item `item` runs under -- scenario axes
/// applied to the base plus the derived item_seed() (honouring
/// common_random_numbers).  Shared by the in-process runner and the
/// multi-process workers (src/runner/), so both execute identical
/// simulations by construction.
sim::SystemConfig item_config(const SweepSpec& spec, std::size_t item);

struct ScenarioResult {
  std::size_t index = 0;
  std::vector<std::size_t> value_indices;
  std::vector<std::string> labels;
  /// Metrics merged over replications, in replication order.
  sim::SimMetrics merged;
  /// Per-replication mean burst delays, for confidence intervals.
  std::vector<double> replication_mean_delay_s;
};

struct SweepResult {
  std::string name;
  std::vector<std::string> axis_names;
  std::size_t replications = 0;
  /// Ordered by scenario index.
  std::vector<ScenarioResult> scenarios;

  /// Result for the scenario with the given per-axis value indices.
  const ScenarioResult& at(const std::vector<std::size_t>& value_indices) const;
};

/// Called after each finished work item with (done, total); serialised, may
/// be invoked from worker threads.
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

/// Runs the full (scenario x replication) grid on `threads` workers
/// (0 = inline on the caller); the master seed is `spec.base.seed`.
SweepResult run_sweep(const SweepSpec& spec, std::size_t threads,
                      const ProgressFn& progress = nullptr);

/// Deterministic merge of per-item metrics (indexed as item_count() lays
/// them out) into the result table, in (scenario, replication) index order
/// regardless of who computed the items or in what order they finished.
/// run_sweep() and the multi-process supervisor both end here, which is
/// what makes their outputs byte-identical for any worker count.
SweepResult merge_item_metrics(const SweepSpec& spec,
                               const std::vector<sim::SimMetrics>& per_item);

/// Standard result table: one row per scenario with the axis labels plus
/// the headline metrics (delay, throughput, grant rate, SGR, outage).
common::Table to_table(const SweepResult& result);
std::string to_csv(const SweepResult& result);
std::string to_json(const SweepResult& result);

}  // namespace wcdma::sweep
