// Dense two-phase tableau simplex for small linear programs.
//
//     maximize    c' x
//     subject to  A x <= b,   0 <= x  (optionally x <= u)
//
// This is the LP-relaxation engine behind the branch-and-bound solver for
// the burst-scheduling integer program (Section 3.2).  Problem sizes are
// tiny (tens of rows/columns), so a dense tableau with Dantzig pricing and
// a Bland anti-cycling fallback is simple, robust, and fast enough by a
// large margin.  Rows with negative right-hand sides are handled by a
// phase-1 artificial-variable pass, so callers may hand over admissible
// regions from overloaded cells unmodified.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/matrix.hpp"

namespace wcdma::opt {

struct LpProblem {
  common::Matrix a;   // m x n
  common::Vector b;   // m
  common::Vector c;   // n (maximisation)
  /// Optional per-variable upper bounds (empty = none).  Applied by adding
  /// singleton rows; fine at these sizes.
  common::Vector upper;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

const char* to_string(LpStatus s);

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  common::Vector x;
  int iterations = 0;
};

class SimplexSolver {
 public:
  struct Options {
    double tol = 1e-9;
    int max_iterations = 10000;
    /// Switch from Dantzig to Bland pricing after this many iterations
    /// (guarantees termination).
    int bland_after = 500;
  };

  SimplexSolver() = default;
  explicit SimplexSolver(const Options& options) : options_(options) {}

  LpResult solve(const LpProblem& problem) const;

 private:
  Options options_{};
};

/// Convenience wrapper.
LpResult solve_lp(const LpProblem& problem);

}  // namespace wcdma::opt
