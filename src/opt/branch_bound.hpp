// Exact solver for the burst-scheduling integer program (Section 3.2):
//
//     maximize    c' m
//     subject to  A m <= b          (stacked admissible regions, A >= 0)
//                 0 <= m_j <= u_j,  m_j integer
//
// Depth-first branch-and-bound with the LP relaxation (dense simplex) as
// the bounding function and a greedy rounding pass for the initial
// incumbent.  Problem sizes in the paper's setting are Nd <= a few tens of
// concurrent requests, for which this proves optimality in well under a
// millisecond; a node limit keeps worst cases bounded.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/matrix.hpp"
#include "src/opt/simplex.hpp"

namespace wcdma::opt {

struct IntegerProgram {
  common::Matrix a;        // K x N, nonnegative
  common::Vector b;        // K
  common::Vector c;        // N (maximisation; may contain zeros)
  std::vector<int> upper;  // per-variable integer upper bounds u_j >= 0
};

struct IpResult {
  bool feasible = false;
  bool proven_optimal = false;  // false if the node limit was hit
  double objective = 0.0;
  std::vector<int> x;
  std::int64_t nodes = 0;
  double lp_bound = 0.0;        // root LP relaxation value
};

class BranchBoundSolver {
 public:
  struct Options {
    std::int64_t max_nodes = 200000;
    double integrality_tol = 1e-6;
    double bound_tol = 1e-9;
  };

  BranchBoundSolver() = default;
  explicit BranchBoundSolver(const Options& options) : options_(options) {}

  IpResult solve(const IntegerProgram& problem) const;

 private:
  Options options_{};
};

/// Greedy feasible solution by repeated best-marginal-utility increments;
/// used as the B&B incumbent and exposed because it *is* the polynomial
/// JABA-SD scheduling heuristic (see admission/schedulers).
std::vector<int> greedy_increments(const IntegerProgram& problem);

/// Objective value of an integer point.
double ip_objective(const IntegerProgram& problem, const std::vector<int>& x);

/// True iff x is within bounds and satisfies A x <= b (+tol).
bool ip_feasible(const IntegerProgram& problem, const std::vector<int>& x,
                 double tol = 1e-9);

}  // namespace wcdma::opt
