// Bounded-knapsack dynamic program.
//
// When only a single admissible-region row binds (e.g. a one-cell system,
// or the reverse link of an isolated hotspot), the burst-scheduling IP of
// Section 3.2 reduces to a bounded knapsack:
//
//     maximize   sum_j c_j m_j
//     s.t.       sum_j w_j m_j <= W,  m_j in {0..u_j}
//
// which this module solves exactly in pseudo-polynomial time via binary
// splitting of the bounded items.  It cross-checks the branch-and-bound
// solver in the test suite and serves as a fast exact path for Nd x 1
// instances.
#pragma once

#include <cstdint>
#include <vector>

namespace wcdma::opt {

struct KnapsackResult {
  double objective = 0.0;
  std::vector<int> x;
};

/// Exact DP over integer weights.  `capacity` >= 0; weights >= 0.  Items
/// with zero weight and positive value are taken at their bound up front.
KnapsackResult solve_bounded_knapsack(const std::vector<std::int64_t>& weights,
                                      std::int64_t capacity,
                                      const std::vector<double>& values,
                                      const std::vector<int>& upper);

/// Real-weight convenience wrapper: quantises weights onto a grid of
/// `resolution` buckets spanning the capacity (conservative rounding: item
/// weights round *up*, so the returned solution is always feasible for the
/// original real-valued constraint; it may be slightly sub-optimal, with the
/// gap shrinking as resolution grows).
KnapsackResult solve_bounded_knapsack_real(const std::vector<double>& weights,
                                           double capacity,
                                           const std::vector<double>& values,
                                           const std::vector<int>& upper,
                                           std::int64_t resolution = 100000);

}  // namespace wcdma::opt
