#include "src/opt/knapsack.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"

namespace wcdma::opt {

KnapsackResult solve_bounded_knapsack(const std::vector<std::int64_t>& weights,
                                      std::int64_t capacity,
                                      const std::vector<double>& values,
                                      const std::vector<int>& upper) {
  const std::size_t n = weights.size();
  WCDMA_ASSERT(values.size() == n && upper.size() == n);
  WCDMA_ASSERT(capacity >= 0);

  KnapsackResult result;
  result.x.assign(n, 0);

  // Binary-split bounded items into 0/1 pseudo-items: (item j, multiplicity).
  struct Pseudo {
    std::size_t j;
    int mult;
    std::int64_t w;
    double v;
  };
  std::vector<Pseudo> pseudo;
  for (std::size_t j = 0; j < n; ++j) {
    WCDMA_ASSERT(weights[j] >= 0 && upper[j] >= 0);
    if (values[j] <= 0.0) continue;  // never worth taking
    if (weights[j] == 0) {
      // Free items: take all of them.
      result.x[j] = upper[j];
      result.objective += values[j] * upper[j];
      continue;
    }
    int remaining = upper[j];
    int chunk = 1;
    while (remaining > 0) {
      const int take = std::min(chunk, remaining);
      pseudo.push_back({j, take, weights[j] * take, values[j] * take});
      remaining -= take;
      chunk *= 2;
    }
  }

  const std::size_t cap = static_cast<std::size_t>(capacity);
  std::vector<double> best(cap + 1, 0.0);
  // choice[i][w] = true if pseudo-item i is taken at capacity w.
  std::vector<std::vector<bool>> choice(pseudo.size(), std::vector<bool>(cap + 1, false));

  for (std::size_t i = 0; i < pseudo.size(); ++i) {
    const auto& it = pseudo[i];
    if (it.w > capacity) continue;
    for (std::size_t w = cap; w >= static_cast<std::size_t>(it.w); --w) {
      const double with = best[w - static_cast<std::size_t>(it.w)] + it.v;
      if (with > best[w]) {
        best[w] = with;
        choice[i][w] = true;
      }
      if (w == 0) break;
    }
  }

  // Backtrack.
  std::size_t w = cap;
  for (std::size_t i = pseudo.size(); i-- > 0;) {
    if (choice[i][w]) {
      result.x[pseudo[i].j] += pseudo[i].mult;
      w -= static_cast<std::size_t>(pseudo[i].w);
    }
  }
  result.objective += best[cap];
  return result;
}

KnapsackResult solve_bounded_knapsack_real(const std::vector<double>& weights,
                                           double capacity,
                                           const std::vector<double>& values,
                                           const std::vector<int>& upper,
                                           std::int64_t resolution) {
  const std::size_t n = weights.size();
  WCDMA_ASSERT(resolution > 0);
  KnapsackResult empty;
  empty.x.assign(n, 0);
  if (capacity <= 0.0) return empty;

  const double scale = static_cast<double>(resolution) / capacity;
  std::vector<std::int64_t> wq(n);
  for (std::size_t j = 0; j < n; ++j) {
    WCDMA_ASSERT(weights[j] >= 0.0);
    wq[j] = static_cast<std::int64_t>(std::ceil(weights[j] * scale));  // round up: stay feasible
  }
  KnapsackResult r = solve_bounded_knapsack(wq, resolution, values, upper);

  // Recompute the objective exactly and double-check real feasibility.
  double used = 0.0;
  r.objective = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    used += weights[j] * r.x[j];
    r.objective += values[j] * r.x[j];
  }
  WCDMA_ASSERT(used <= capacity * (1.0 + 1e-12));
  return r;
}

}  // namespace wcdma::opt
