#include "src/opt/simplex.hpp"

#include <cmath>
#include <limits>

#include "src/common/assert.hpp"

namespace wcdma::opt {

const char* to_string(LpStatus s) {
  switch (s) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration-limit";
  }
  return "?";
}

namespace {

// Internal dense tableau.  Columns: [structural | slack/surplus | artificial],
// final column is the RHS.  Row `m` is the objective row (reduced costs).
struct Tableau {
  std::size_t m = 0;          // constraint rows
  std::size_t n_total = 0;    // columns excluding RHS
  std::vector<double> t;      // (m+1) x (n_total+1)
  std::vector<std::size_t> basis;

  double& at(std::size_t r, std::size_t c) { return t[r * (n_total + 1) + c]; }
  double at(std::size_t r, std::size_t c) const { return t[r * (n_total + 1) + c]; }
  double& rhs(std::size_t r) { return at(r, n_total); }
  double rhs(std::size_t r) const { return at(r, n_total); }

  void pivot(std::size_t pr, std::size_t pc) {
    const double pivot_val = at(pr, pc);
    WCDMA_DEBUG_ASSERT(std::fabs(pivot_val) > 1e-14);
    const double inv = 1.0 / pivot_val;
    for (std::size_t c = 0; c <= n_total; ++c) at(pr, c) *= inv;
    for (std::size_t r = 0; r <= m; ++r) {
      if (r == pr) continue;
      const double f = at(r, pc);
      // lint-allow(DET-FLOAT-EQ): exact-zero skip; any other value must eliminate
      if (f == 0.0) continue;
      for (std::size_t c = 0; c <= n_total; ++c) at(r, c) -= f * at(pr, c);
    }
    basis[pr] = pc;
  }
};

enum class IterStatus { kOptimal, kUnbounded, kLimit };

// Runs simplex iterations on the current objective row until no improving
// column remains.  `allowed_cols` masks columns eligible to enter.
IterStatus iterate(Tableau& tab, const std::vector<bool>& allowed_cols, double tol,
                   int max_iter, int bland_after, int& iterations) {
  for (int it = 0; it < max_iter; ++it) {
    ++iterations;
    const bool bland = it >= bland_after;
    // Entering column: maximisation, so pick positive reduced cost in the
    // objective row (stored negated: we keep z-row as c_bar, enter on > tol).
    std::size_t enter = tab.n_total;
    double best = tol;
    for (std::size_t c = 0; c < tab.n_total; ++c) {
      if (!allowed_cols[c]) continue;
      const double rc = tab.at(tab.m, c);
      if (rc > tol) {
        if (bland) {
          enter = c;
          break;
        }
        if (rc > best) {
          best = rc;
          enter = c;
        }
      }
    }
    if (enter == tab.n_total) return IterStatus::kOptimal;

    // Ratio test (Bland tie-break on basis index).
    std::size_t leave = tab.m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < tab.m; ++r) {
      const double a = tab.at(r, enter);
      if (a > tol) {
        const double ratio = tab.rhs(r) / a;
        if (ratio < best_ratio - tol ||
            (ratio < best_ratio + tol && (leave == tab.m || tab.basis[r] < tab.basis[leave]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == tab.m) return IterStatus::kUnbounded;
    tab.pivot(leave, enter);
  }
  return IterStatus::kLimit;
}

}  // namespace

LpResult SimplexSolver::solve(const LpProblem& problem) const {
  const std::size_t n = problem.c.size();
  WCDMA_ASSERT(problem.a.cols() == n || problem.a.rows() == 0);
  WCDMA_ASSERT(problem.a.rows() == problem.b.size());
  WCDMA_ASSERT(problem.upper.empty() || problem.upper.size() == n);

  // Assemble the row set: A rows plus optional upper-bound singleton rows.
  std::size_t m = problem.a.rows();
  const std::size_t bound_rows = problem.upper.empty() ? 0 : n;
  m += bound_rows;

  LpResult result;

  // Column layout: n structural, m slack, plus one artificial per
  // negative-RHS row (determined below).
  std::vector<double> rhs(m);
  std::vector<std::vector<double>> rows(m, std::vector<double>(n, 0.0));
  for (std::size_t r = 0; r < problem.a.rows(); ++r) {
    for (std::size_t c = 0; c < n; ++c) rows[r][c] = problem.a(r, c);
    rhs[r] = problem.b[r];
  }
  for (std::size_t j = 0; j < bound_rows; ++j) {
    const std::size_t r = problem.a.rows() + j;
    rows[r][j] = 1.0;
    rhs[r] = problem.upper[j];
    WCDMA_ASSERT(problem.upper[j] >= 0.0);
  }

  // Negate negative-RHS rows; their slack coefficient becomes -1, so they
  // need an artificial variable to form the initial basis.
  std::vector<double> slack_sign(m, 1.0);
  std::vector<bool> needs_artificial(m, false);
  std::size_t n_art = 0;
  for (std::size_t r = 0; r < m; ++r) {
    if (rhs[r] < 0.0) {
      for (auto& v : rows[r]) v = -v;
      rhs[r] = -rhs[r];
      slack_sign[r] = -1.0;
      needs_artificial[r] = true;
      ++n_art;
    }
  }

  Tableau tab;
  tab.m = m;
  tab.n_total = n + m + n_art;
  tab.t.assign((m + 1) * (tab.n_total + 1), 0.0);
  tab.basis.assign(m, 0);

  std::size_t art_col = n + m;
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) tab.at(r, c) = rows[r][c];
    tab.at(r, n + r) = slack_sign[r];
    if (needs_artificial[r]) {
      tab.at(r, art_col) = 1.0;
      tab.basis[r] = art_col;
      ++art_col;
    } else {
      tab.basis[r] = n + r;
    }
    tab.rhs(r) = rhs[r];
  }

  std::vector<bool> allowed(tab.n_total, true);

  // ---- Phase 1: drive artificials to zero (maximize -sum artificials).
  if (n_art > 0) {
    for (std::size_t c = n + m; c < tab.n_total; ++c) tab.at(m, c) = -1.0;
    // Price out the artificial basis columns.
    for (std::size_t r = 0; r < m; ++r) {
      if (tab.basis[r] >= n + m) {
        for (std::size_t c = 0; c <= tab.n_total; ++c) tab.at(m, c) += tab.at(r, c);
      }
    }
    const IterStatus st = iterate(tab, allowed, options_.tol, options_.max_iterations,
                                  options_.bland_after, result.iterations);
    if (st == IterStatus::kLimit) {
      result.status = LpStatus::kIterationLimit;
      return result;
    }
    // With the z-row initialised to the objective coefficients and pivots
    // subtracting f * pivot-row, rhs(m) tracks the *negated* objective:
    // phase-1 value is -rhs(m), so any residual artificial mass shows up as
    // a positive rhs(m).
    if (tab.rhs(m) > options_.tol * 10.0) {
      result.status = LpStatus::kInfeasible;
      return result;
    }
    // Pivot any remaining (degenerate) artificials out of the basis.
    for (std::size_t r = 0; r < m; ++r) {
      if (tab.basis[r] >= n + m) {
        std::size_t enter = tab.n_total;
        for (std::size_t c = 0; c < n + m; ++c) {
          if (std::fabs(tab.at(r, c)) > options_.tol) {
            enter = c;
            break;
          }
        }
        if (enter != tab.n_total) tab.pivot(r, enter);
        // Else the row is all-zero: redundant constraint, harmless.
      }
    }
    for (std::size_t c = n + m; c < tab.n_total; ++c) allowed[c] = false;
    // Reset objective row for phase 2.
    for (std::size_t c = 0; c <= tab.n_total; ++c) tab.at(m, c) = 0.0;
  }

  // ---- Phase 2: real objective.  z-row holds reduced costs c_bar.
  for (std::size_t c = 0; c < n; ++c) tab.at(m, c) = problem.c[c];
  // Price out the current basis.
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t bc = tab.basis[r];
    // lint-allow(DET-FLOAT-EQ): exact-zero coefficients price out to a no-op
    if (bc < n && problem.c[bc] != 0.0) {
      const double f = problem.c[bc];
      for (std::size_t c = 0; c <= tab.n_total; ++c) tab.at(m, c) -= f * tab.at(r, c);
    }
  }

  const IterStatus st = iterate(tab, allowed, options_.tol, options_.max_iterations,
                                options_.bland_after, result.iterations);
  if (st == IterStatus::kLimit) {
    result.status = LpStatus::kIterationLimit;
    return result;
  }
  if (st == IterStatus::kUnbounded) {
    result.status = LpStatus::kUnbounded;
    return result;
  }

  result.status = LpStatus::kOptimal;
  result.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (tab.basis[r] < n) result.x[tab.basis[r]] = tab.rhs(r);
  }
  result.objective = common::dot(problem.c, result.x);
  return result;
}

LpResult solve_lp(const LpProblem& problem) { return SimplexSolver().solve(problem); }

}  // namespace wcdma::opt
