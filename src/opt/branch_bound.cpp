#include "src/opt/branch_bound.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"

namespace wcdma::opt {

namespace {

struct Node {
  std::vector<int> lo;
  std::vector<int> hi;
};

// LP relaxation of the subproblem with variable bounds [lo, hi]:
// substitute x = lo + y, 0 <= y <= hi - lo.
LpResult solve_node_lp(const IntegerProgram& p, const Node& node) {
  const std::size_t n = p.c.size();
  LpProblem lp;
  lp.a = p.a;
  lp.c = p.c;
  lp.b = p.b;
  // b' = b - A * lo
  common::Vector lo_d(n);
  for (std::size_t j = 0; j < n; ++j) lo_d[j] = static_cast<double>(node.lo[j]);
  if (p.a.rows() > 0) {
    const common::Vector shift = p.a.multiply(lo_d);
    for (std::size_t r = 0; r < lp.b.size(); ++r) lp.b[r] -= shift[r];
  }
  lp.upper.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    lp.upper[j] = static_cast<double>(node.hi[j] - node.lo[j]);
    WCDMA_DEBUG_ASSERT(lp.upper[j] >= 0.0);
  }
  LpResult r = solve_lp(lp);
  if (r.status == LpStatus::kOptimal) {
    for (std::size_t j = 0; j < n; ++j) r.x[j] += lo_d[j];
    r.objective = common::dot(p.c, r.x);
  }
  return r;
}

}  // namespace

double ip_objective(const IntegerProgram& p, const std::vector<int>& x) {
  WCDMA_ASSERT(x.size() == p.c.size());
  double acc = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) acc += p.c[j] * static_cast<double>(x[j]);
  return acc;
}

bool ip_feasible(const IntegerProgram& p, const std::vector<int>& x, double tol) {
  if (x.size() != p.c.size()) return false;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j] < 0 || x[j] > p.upper[j]) return false;
  }
  if (p.a.rows() == 0) return true;
  common::Vector xd(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) xd[j] = static_cast<double>(x[j]);
  return common::satisfies(p.a, xd, p.b, tol);
}

std::vector<int> greedy_increments(const IntegerProgram& p) {
  const std::size_t n = p.c.size();
  const std::size_t k = p.a.rows();
  std::vector<int> x(n, 0);
  common::Vector slack = p.b;

  // A zero-increment must already be feasible; if some b < 0 the region
  // admits nothing.
  for (std::size_t r = 0; r < k; ++r) {
    if (slack[r] < 0.0) return x;
  }

  // Repeatedly add the unit increment with the best objective gain per unit
  // of bottleneck-resource consumption.
  for (;;) {
    double best_score = 0.0;
    std::size_t best_j = n;
    for (std::size_t j = 0; j < n; ++j) {
      if (x[j] >= p.upper[j] || p.c[j] <= 0.0) continue;
      // Feasibility of one more unit and its tightest-resource usage.
      bool fits = true;
      double worst_frac = 0.0;  // largest fraction of remaining slack consumed
      for (std::size_t r = 0; r < k; ++r) {
        const double a = p.a(r, j);
        if (a <= 0.0) continue;
        if (a > slack[r] + 1e-12) {
          fits = false;
          break;
        }
        worst_frac = std::max(worst_frac, a / std::max(slack[r], 1e-300));
      }
      if (!fits) continue;
      // Score: utility per unit of bottleneck consumption; pure utility if
      // the increment consumes nothing.
      const double score = worst_frac > 0.0 ? p.c[j] / worst_frac : p.c[j] * 1e12;
      if (score > best_score) {
        best_score = score;
        best_j = j;
      }
    }
    if (best_j == n) break;
    ++x[best_j];
    for (std::size_t r = 0; r < k; ++r) slack[r] -= p.a(r, best_j);
  }
  return x;
}

IpResult BranchBoundSolver::solve(const IntegerProgram& p) const {
  const std::size_t n = p.c.size();
  WCDMA_ASSERT(p.upper.size() == n);
  WCDMA_ASSERT(p.a.rows() == p.b.size());

  IpResult result;
  result.x.assign(n, 0);

  // Root node bounds.
  Node root;
  root.lo.assign(n, 0);
  root.hi = p.upper;

  // x = 0 must be feasible for the IP to make sense (m = 0 rejects all).
  const bool zero_feasible = ip_feasible(p, result.x);
  if (!zero_feasible) {
    result.feasible = false;
    result.proven_optimal = true;
    return result;
  }
  result.feasible = true;

  // Incumbent from the greedy heuristic.
  std::vector<int> incumbent = greedy_increments(p);
  double incumbent_obj = ip_objective(p, incumbent);
  WCDMA_ASSERT(ip_feasible(p, incumbent));

  std::vector<Node> stack;
  stack.push_back(root);
  bool hit_limit = false;
  bool root_done = false;

  while (!stack.empty()) {
    if (result.nodes >= options_.max_nodes) {
      hit_limit = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    ++result.nodes;

    const LpResult lp = solve_node_lp(p, node);
    if (!root_done) {
      result.lp_bound = lp.status == LpStatus::kOptimal ? lp.objective : 0.0;
      root_done = true;
    }
    if (lp.status != LpStatus::kOptimal) continue;  // infeasible subtree
    if (lp.objective <= incumbent_obj + options_.bound_tol) continue;  // pruned

    // Find the most fractional variable.
    std::size_t frac_j = n;
    double frac_dist = options_.integrality_tol;
    for (std::size_t j = 0; j < n; ++j) {
      const double v = lp.x[j];
      const double d = std::fabs(v - std::round(v));
      if (d > frac_dist) {
        frac_dist = d;
        frac_j = j;
      }
    }

    if (frac_j == n) {
      // Integral LP optimum: new incumbent.
      std::vector<int> cand(n);
      for (std::size_t j = 0; j < n; ++j) cand[j] = static_cast<int>(std::lround(lp.x[j]));
      if (ip_feasible(p, cand) ) {
        const double obj = ip_objective(p, cand);
        if (obj > incumbent_obj) {
          incumbent = std::move(cand);
          incumbent_obj = obj;
        }
      }
      continue;
    }

    // Branch: x_j <= floor(v)  |  x_j >= ceil(v).  Push the "down" child
    // last so DFS explores it first (tends to find incumbents early in
    // packing problems... the up child often infeasible).
    const int fl = static_cast<int>(std::floor(lp.x[frac_j]));
    Node up = node;
    up.lo[frac_j] = fl + 1;
    if (up.lo[frac_j] <= up.hi[frac_j]) stack.push_back(std::move(up));
    Node down = std::move(node);
    down.hi[frac_j] = fl;
    if (down.lo[frac_j] <= down.hi[frac_j]) stack.push_back(std::move(down));
  }

  result.x = incumbent;
  result.objective = incumbent_obj;
  result.proven_optimal = !hit_limit;
  return result;
}

}  // namespace wcdma::opt
