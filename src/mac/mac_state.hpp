// cdma2000 packet-data MAC states (Fig. 3) and the set-up delay penalty of
// Eq. (22)-(23).
//
// A data user holds a dedicated channel only while recently active.  With
// growing inactivity it decays Active -> Control Hold -> Suspended ->
// Dormant; re-starting a burst from a decayed state pays a set-up delay:
//
//    D_s = 0    if t_w <  T2   (dedicated/control channel still up)
//          D1   if t_w in [T2, T3)   (suspended: re-acquire dedicated ch.)
//          D2   if t_w >= T3   (dormant: full re-establishment)
//
// and the scheduler's effective request delay is w_j = t_w + D_s (Eq. 22).
#pragma once

#include "src/common/assert.hpp"

namespace wcdma::common {
class BinaryWriter;
class BinaryReader;
}  // namespace wcdma::common

namespace wcdma::mac {

enum class MacState { kActive, kControlHold, kSuspended, kDormant };

const char* to_string(MacState s);

struct MacTimersConfig {
  double t1_s = 0.2;   // Active -> Control Hold after this idle time
  double t2_s = 2.0;   // Control Hold -> Suspended
  double t3_s = 10.0;  // Suspended -> Dormant
  double d1_s = 0.040; // set-up delay from Suspended
  double d2_s = 0.300; // set-up delay from Dormant
};

/// Eq. (23): set-up delay penalty as a function of the waiting/idle time.
double setup_delay_for_wait(const MacTimersConfig& timers, double t_w);

/// Eq. (22): effective request delay w = t_w + D_s(t_w).
double effective_request_delay(const MacTimersConfig& timers, double t_w);

/// Per-user MAC state machine (Fig. 3).
class MacStateMachine {
 public:
  explicit MacStateMachine(const MacTimersConfig& timers = {},
                           MacState initial = MacState::kDormant);

  /// Advances time by dt; `transmitting` keeps the user Active and resets
  /// the idle clock.
  void step(double dt, bool transmitting);

  MacState state() const { return state_; }
  double idle_s() const { return idle_s_; }

  /// Set-up delay a freshly granted burst pays from the *current* state.
  double setup_delay() const;

  void save(common::BinaryWriter& w) const;
  void load(common::BinaryReader& r);

 private:
  MacTimersConfig timers_;
  MacState state_;
  double idle_s_ = 0.0;
};

}  // namespace wcdma::mac
