#include "src/mac/scrm.hpp"

#include <algorithm>

namespace wcdma::mac {

std::vector<PilotReport> make_pilot_report(const std::vector<double>& pilot_ec_io_db) {
  std::vector<PilotReport> all;
  all.reserve(pilot_ec_io_db.size());
  for (std::size_t k = 0; k < pilot_ec_io_db.size(); ++k) {
    all.push_back({k, pilot_ec_io_db[k]});
  }
  std::sort(all.begin(), all.end(),
            [](const PilotReport& a, const PilotReport& b) { return a.ec_io_db > b.ec_io_db; });
  if (all.size() > kMaxScrmPilots) all.resize(kMaxScrmPilots);
  return all;
}

void RequestQueue::push(const BurstRequest& request) {
  WCDMA_ASSERT(request.user >= 0);
  remove(request.user);
  queue_.push_back(request);
  // Keep FIFO order by arrival time (replacements keep their new arrival).
  std::stable_sort(queue_.begin(), queue_.end(),
                   [](const BurstRequest& a, const BurstRequest& b) {
                     return a.arrival_s < b.arrival_s;
                   });
}

void RequestQueue::remove(int user) {
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [user](const BurstRequest& r) { return r.user == user; }),
               queue_.end());
}

std::optional<BurstRequest> RequestQueue::find(int user) const {
  for (const auto& r : queue_) {
    if (r.user == user) return r;
  }
  return std::nullopt;
}

}  // namespace wcdma::mac
