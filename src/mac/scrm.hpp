// Supplemental Channel Request Message (SCRM) and the pending-request queue.
//
// Section 3.1: "When there is a reverse burst request, the mobile user will
// send a supplemental channel request message (SCRM) to the base station.
// The SCRM message contains the forward link pilot strength measurements
// ... for a number of neighbor cells" (at most 8 in cdma2000, footnote 6).
// Forward-link requests carry the same bookkeeping minus the pilot report.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "src/common/assert.hpp"

namespace wcdma::mac {

inline constexpr std::size_t kMaxScrmPilots = 8;

enum class LinkDirection { kForward, kReverse };

struct PilotReport {
  std::size_t cell = 0;
  double ec_io_db = -99.0;
};

struct BurstRequest {
  int user = -1;
  LinkDirection direction = LinkDirection::kForward;
  double burst_bytes = 0.0;     // Q_j
  double arrival_s = 0.0;       // when the burst entered the queue
  double priority = 0.0;        // Delta_j, traffic-type priority
  // Forward pilot Ec/Io reports (<= kMaxScrmPilots, strongest first); used
  // by the reverse-link neighbour-cell projection (Eq. 13-15).
  std::vector<PilotReport> pilot_reports;
};

/// Builds the pilot report list: strongest `kMaxScrmPilots` cells.
std::vector<PilotReport> make_pilot_report(const std::vector<double>& pilot_ec_io_db);

/// FIFO of pending burst requests, one direction per queue; at most one
/// outstanding request per user (a re-request replaces the old entry).
class RequestQueue {
 public:
  /// Adds or replaces the user's pending request.
  void push(const BurstRequest& request);

  /// Removes the request of `user` (granted or abandoned).
  void remove(int user);

  /// Pending requests in FIFO (arrival) order.
  const std::vector<BurstRequest>& pending() const { return queue_; }
  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  std::optional<BurstRequest> find(int user) const;

  /// Waiting time of request `r` at time `now`.
  static double waiting_s(const BurstRequest& r, double now) {
    WCDMA_DEBUG_ASSERT(now >= r.arrival_s);
    return now - r.arrival_s;
  }

 private:
  std::vector<BurstRequest> queue_;
};

}  // namespace wcdma::mac
