#include "src/mac/mac_state.hpp"

#include "src/common/serialize.hpp"

namespace wcdma::mac {

const char* to_string(MacState s) {
  switch (s) {
    case MacState::kActive: return "Active";
    case MacState::kControlHold: return "ControlHold";
    case MacState::kSuspended: return "Suspended";
    case MacState::kDormant: return "Dormant";
  }
  return "?";
}

double setup_delay_for_wait(const MacTimersConfig& timers, double t_w) {
  WCDMA_DEBUG_ASSERT(t_w >= 0.0);
  if (t_w < timers.t2_s) return 0.0;
  if (t_w < timers.t3_s) return timers.d1_s;
  return timers.d2_s;
}

double effective_request_delay(const MacTimersConfig& timers, double t_w) {
  return t_w + setup_delay_for_wait(timers, t_w);
}

MacStateMachine::MacStateMachine(const MacTimersConfig& timers, MacState initial)
    : timers_(timers), state_(initial) {
  WCDMA_ASSERT(timers_.t1_s < timers_.t2_s && timers_.t2_s < timers_.t3_s);
  WCDMA_ASSERT(timers_.d1_s >= 0.0 && timers_.d2_s >= timers_.d1_s);
}

void MacStateMachine::step(double dt, bool transmitting) {
  if (transmitting) {
    state_ = MacState::kActive;
    idle_s_ = 0.0;
    return;
  }
  idle_s_ += dt;
  if (idle_s_ >= timers_.t3_s) {
    state_ = MacState::kDormant;
  } else if (idle_s_ >= timers_.t2_s) {
    state_ = MacState::kSuspended;
  } else if (idle_s_ >= timers_.t1_s) {
    state_ = MacState::kControlHold;
  }
  // Within t1 of activity the user keeps its Active-state resources.
}

double MacStateMachine::setup_delay() const {
  switch (state_) {
    case MacState::kActive:
    case MacState::kControlHold:
      return 0.0;
    case MacState::kSuspended:
      return timers_.d1_s;
    case MacState::kDormant:
      return timers_.d2_s;
  }
  return 0.0;
}

void MacStateMachine::save(common::BinaryWriter& w) const {
  w.u8(static_cast<std::uint8_t>(state_));
  w.f64(idle_s_);
}

void MacStateMachine::load(common::BinaryReader& r) {
  state_ = static_cast<MacState>(r.u8());
  idle_s_ = r.f64();
}

}  // namespace wcdma::mac
