#include "src/cell/active_set.hpp"

#include <algorithm>

#include "src/common/assert.hpp"

namespace wcdma::cell {

ActiveSet::ActiveSet(const ActiveSetConfig& config, std::size_t num_cells)
    : config_(config),
      last_pilot_db_(num_cells, -999.0),
      below_drop_s_(num_cells, 0.0) {
  WCDMA_ASSERT(config_.max_size >= 1);
  WCDMA_ASSERT(config_.reduced_size >= 1 && config_.reduced_size <= config_.max_size);
  WCDMA_ASSERT(config_.t_add_db >= config_.t_drop_db);
}

void ActiveSet::update(const std::vector<double>& pilot_ec_io_db, double dt) {
  WCDMA_ASSERT(pilot_ec_io_db.size() == last_pilot_db_.size());
  last_pilot_db_ = pilot_ec_io_db;

  // Drop phase: members below T_DROP for longer than the drop timer leave.
  std::vector<std::size_t> kept;
  kept.reserve(members_.size());
  for (std::size_t cell : members_) {
    if (pilot_ec_io_db[cell] < config_.t_drop_db) {
      below_drop_s_[cell] += dt;
      if (below_drop_s_[cell] >= config_.drop_timer_s) {
        below_drop_s_[cell] = 0.0;
        continue;  // dropped
      }
    } else {
      below_drop_s_[cell] = 0.0;
    }
    kept.push_back(cell);
  }
  members_ = std::move(kept);

  // Add phase: non-members above T_ADD, strongest first, until max_size.
  std::vector<std::size_t> candidates;
  for (std::size_t cell = 0; cell < pilot_ec_io_db.size(); ++cell) {
    if (pilot_ec_io_db[cell] >= config_.t_add_db && !contains(cell)) {
      candidates.push_back(cell);
    }
  }
  std::sort(candidates.begin(), candidates.end(), [&](std::size_t a, std::size_t b) {
    return pilot_ec_io_db[a] > pilot_ec_io_db[b];
  });
  for (std::size_t cell : candidates) {
    if (members_.size() >= config_.max_size) {
      // Replace the weakest member if the candidate is stronger.
      auto weakest = std::min_element(
          members_.begin(), members_.end(), [&](std::size_t a, std::size_t b) {
            return pilot_ec_io_db[a] < pilot_ec_io_db[b];
          });
      if (pilot_ec_io_db[cell] > pilot_ec_io_db[*weakest]) {
        *weakest = cell;
      }
      continue;
    }
    members_.push_back(cell);
  }

  // Never run empty: latch onto the strongest pilot regardless of T_ADD so
  // a mobile always has a serving cell.
  if (members_.empty()) {
    std::size_t best = 0;
    for (std::size_t cell = 1; cell < pilot_ec_io_db.size(); ++cell) {
      if (pilot_ec_io_db[cell] > pilot_ec_io_db[best]) best = cell;
    }
    members_.push_back(best);
  }

  std::sort(members_.begin(), members_.end(), [&](std::size_t a, std::size_t b) {
    return last_pilot_db_[a] > last_pilot_db_[b];
  });
  initialised_ = true;
}

void ActiveSet::update_sparse(const std::vector<std::pair<std::size_t, double>>& pilots,
                              double floor_db, double dt) {
  // The implicit floor must sit below the drop threshold, or unreported
  // cells could not be treated as absent.
  WCDMA_ASSERT(floor_db < config_.t_drop_db);
  for (const auto& [cell, db] : pilots) {
    WCDMA_ASSERT(cell < last_pilot_db_.size());
    last_pilot_db_[cell] = db;
  }

  // Drop phase: members are always among the reported cells (the culled
  // provider keeps active-set members candidates until hand-off drops
  // them), so their slots in last_pilot_db_ are fresh.
  std::vector<std::size_t> kept;
  kept.reserve(members_.size());
  for (std::size_t cell : members_) {
    if (last_pilot_db_[cell] < config_.t_drop_db) {
      below_drop_s_[cell] += dt;
      if (below_drop_s_[cell] >= config_.drop_timer_s) {
        below_drop_s_[cell] = 0.0;
        continue;  // dropped
      }
    } else {
      below_drop_s_[cell] = 0.0;
    }
    kept.push_back(cell);
  }
  members_ = std::move(kept);

  // Add phase over the reported cells only: unreported cells sit at the
  // floor, below T_ADD by construction.
  std::vector<std::size_t> candidates;
  for (const auto& [cell, db] : pilots) {
    if (db >= config_.t_add_db && !contains(cell)) candidates.push_back(cell);
  }
  std::sort(candidates.begin(), candidates.end(), [&](std::size_t a, std::size_t b) {
    return last_pilot_db_[a] > last_pilot_db_[b];
  });
  for (std::size_t cell : candidates) {
    if (members_.size() >= config_.max_size) {
      auto weakest = std::min_element(
          members_.begin(), members_.end(), [&](std::size_t a, std::size_t b) {
            return last_pilot_db_[a] < last_pilot_db_[b];
          });
      if (last_pilot_db_[cell] > last_pilot_db_[*weakest]) {
        *weakest = cell;
      }
      continue;
    }
    members_.push_back(cell);
  }

  // Never run empty: latch onto the strongest reported pilot (all real
  // measurements beat the implicit floor).
  if (members_.empty() && !pilots.empty()) {
    std::size_t best = pilots.front().first;
    for (const auto& [cell, db] : pilots) {
      if (db > last_pilot_db_[best]) best = cell;
    }
    members_.push_back(best);
  }
  WCDMA_ASSERT(!members_.empty());

  std::sort(members_.begin(), members_.end(), [&](std::size_t a, std::size_t b) {
    return last_pilot_db_[a] > last_pilot_db_[b];
  });
  initialised_ = true;
}

std::size_t ActiveSet::primary() const {
  WCDMA_ASSERT(initialised_ && !members_.empty());
  return members_.front();
}

std::vector<std::size_t> ActiveSet::reduced() const {
  WCDMA_ASSERT(initialised_);
  std::vector<std::size_t> out = members_;
  if (out.size() > config_.reduced_size) out.resize(config_.reduced_size);
  return out;
}

bool ActiveSet::contains(std::size_t cell) const {
  return std::find(members_.begin(), members_.end(), cell) != members_.end();
}

double ActiveSet::forward_adjustment() const {
  // Every reduced-set leg must transmit the SCH: linear cost in legs, with a
  // small combining discount on the extras.
  const double legs = static_cast<double>(std::min(members_.size(), config_.reduced_size));
  return 1.0 + 0.8 * (legs - 1.0);
}

double ActiveSet::reverse_adjustment() const {
  // Selection macro-diversity: two legs allow ~1 dB lower per-leg target.
  const double legs = static_cast<double>(std::min(members_.size(), config_.reduced_size));
  return legs > 1.0 ? 0.8 : 1.0;
}

}  // namespace wcdma::cell
