#include "src/cell/active_set.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/serialize.hpp"

namespace wcdma::cell {

ActiveSet::ActiveSet(const ActiveSetConfig& config, std::size_t num_cells)
    : config_(config),
      t_add_linear_(std::pow(10.0, config.t_add_db / 10.0)),
      t_drop_linear_(std::pow(10.0, config.t_drop_db / 10.0)),
      last_pilot_db_(num_cells, -999.0),
      below_drop_s_(num_cells, 0.0) {
  WCDMA_ASSERT(config_.max_size >= 1);
  WCDMA_ASSERT(config_.reduced_size >= 1 && config_.reduced_size <= config_.max_size);
  WCDMA_ASSERT(config_.t_add_db >= config_.t_drop_db);
}

void ActiveSet::drop_phase(double t_drop, double dt) {
  // Members below T_DROP for longer than the drop timer leave.  In-place
  // compaction keeps member order and avoids a per-update allocation.
  std::size_t kept = 0;
  for (std::size_t cell : members_) {
    if (last_pilot_db_[cell] < t_drop) {
      below_drop_s_[cell] += dt;
      if (below_drop_s_[cell] >= config_.drop_timer_s) {
        below_drop_s_[cell] = 0.0;
        continue;  // dropped
      }
    } else {
      below_drop_s_[cell] = 0.0;
    }
    members_[kept++] = cell;
  }
  members_.resize(kept);
}

void ActiveSet::add_phase() {
  // Candidates (gathered by the caller into candidates_scratch_) join
  // strongest first until max_size; beyond that they displace the weakest
  // member when stronger.
  std::sort(candidates_scratch_.begin(), candidates_scratch_.end(),
            [&](std::size_t a, std::size_t b) {
              return last_pilot_db_[a] > last_pilot_db_[b];
            });
  for (std::size_t cell : candidates_scratch_) {
    if (members_.size() >= config_.max_size) {
      auto weakest = std::min_element(
          members_.begin(), members_.end(), [&](std::size_t a, std::size_t b) {
            return last_pilot_db_[a] < last_pilot_db_[b];
          });
      if (last_pilot_db_[cell] > last_pilot_db_[*weakest]) {
        *weakest = cell;
      }
      continue;
    }
    members_.push_back(cell);
  }
}

void ActiveSet::finish_update() {
  std::sort(members_.begin(), members_.end(), [&](std::size_t a, std::size_t b) {
    return last_pilot_db_[a] > last_pilot_db_[b];
  });
  initialised_ = true;
}

void ActiveSet::update(const std::vector<double>& pilot_ec_io_db, double dt) {
  WCDMA_ASSERT(pilot_ec_io_db.size() == last_pilot_db_.size());
  last_pilot_db_ = pilot_ec_io_db;

  drop_phase(config_.t_drop_db, dt);

  // Add phase: non-members above T_ADD, strongest first, until max_size.
  candidates_scratch_.clear();
  for (std::size_t cell = 0; cell < pilot_ec_io_db.size(); ++cell) {
    if (pilot_ec_io_db[cell] >= config_.t_add_db && !contains(cell)) {
      candidates_scratch_.push_back(cell);
    }
  }
  add_phase();

  // Never run empty: latch onto the strongest pilot regardless of T_ADD so
  // a mobile always has a serving cell.
  if (members_.empty()) {
    std::size_t best = 0;
    for (std::size_t cell = 1; cell < pilot_ec_io_db.size(); ++cell) {
      if (pilot_ec_io_db[cell] > pilot_ec_io_db[best]) best = cell;
    }
    members_.push_back(best);
  }

  finish_update();
}

void ActiveSet::update_sparse(const std::vector<std::pair<std::size_t, double>>& pilots,
                              double floor_db, double dt) {
  // The implicit floor must sit below the drop threshold, or unreported
  // cells could not be treated as absent.
  WCDMA_ASSERT(floor_db < config_.t_drop_db);
  for (const auto& [cell, db] : pilots) {
    WCDMA_ASSERT(cell < last_pilot_db_.size());
    last_pilot_db_[cell] = db;
  }

  // Members are always among the reported cells (the culled provider keeps
  // active-set members candidates until hand-off drops them), so their
  // slots in last_pilot_db_ are fresh.
  drop_phase(config_.t_drop_db, dt);

  // Add phase over the reported cells only: unreported cells sit at the
  // floor, below T_ADD by construction.
  candidates_scratch_.clear();
  for (const auto& [cell, db] : pilots) {
    if (db >= config_.t_add_db && !contains(cell)) candidates_scratch_.push_back(cell);
  }
  add_phase();

  // Never run empty: latch onto the strongest reported pilot (all real
  // measurements beat the implicit floor).
  if (members_.empty() && !pilots.empty()) {
    std::size_t best = pilots.front().first;
    for (const auto& [cell, db] : pilots) {
      if (db > last_pilot_db_[best]) best = cell;
    }
    members_.push_back(best);
  }
  WCDMA_ASSERT(!members_.empty());

  finish_update();
}

void ActiveSet::update_sparse_linear(
    const std::vector<std::pair<std::size_t, double>>& pilots, double dt) {
  for (const auto& [cell, pilot] : pilots) {
    WCDMA_ASSERT(cell < last_pilot_db_.size());
    last_pilot_db_[cell] = pilot;
  }

  drop_phase(t_drop_linear_, dt);

  candidates_scratch_.clear();
  for (const auto& [cell, pilot] : pilots) {
    if (pilot >= t_add_linear_ && !contains(cell)) candidates_scratch_.push_back(cell);
  }
  add_phase();

  if (members_.empty() && !pilots.empty()) {
    std::size_t best = pilots.front().first;
    for (const auto& [cell, pilot] : pilots) {
      if (pilot > last_pilot_db_[best]) best = cell;
    }
    members_.push_back(best);
  }
  WCDMA_ASSERT(!members_.empty());

  finish_update();
}

std::vector<std::size_t> ActiveSet::reduced() const {
  WCDMA_ASSERT(initialised_);
  std::vector<std::size_t> out = members_;
  if (out.size() > config_.reduced_size) out.resize(config_.reduced_size);
  return out;
}

bool ActiveSet::contains(std::size_t cell) const {
  return std::find(members_.begin(), members_.end(), cell) != members_.end();
}

double ActiveSet::forward_adjustment() const {
  // Every reduced-set leg must transmit the SCH: linear cost in legs, with a
  // small combining discount on the extras.
  const double legs = static_cast<double>(std::min(members_.size(), config_.reduced_size));
  return 1.0 + 0.8 * (legs - 1.0);
}

double ActiveSet::reverse_adjustment() const {
  // Selection macro-diversity: two legs allow ~1 dB lower per-leg target.
  const double legs = static_cast<double>(std::min(members_.size(), config_.reduced_size));
  return legs > 1.0 ? 0.8 : 1.0;
}

void ActiveSet::save(common::BinaryWriter& w) const {
  w.vec_f64(last_pilot_db_);
  w.vec_f64(below_drop_s_);
  w.u64(members_.size());
  for (std::size_t m : members_) w.u64(m);
  w.boolean(initialised_);
}

void ActiveSet::load(common::BinaryReader& r) {
  std::vector<double> pilots, timers;
  r.vec_f64(pilots);
  r.vec_f64(timers);
  if (pilots.size() == last_pilot_db_.size()) last_pilot_db_ = std::move(pilots);
  if (timers.size() == below_drop_s_.size()) below_drop_s_ = std::move(timers);
  const std::size_t n = r.seq(8);
  members_.clear();
  for (std::size_t i = 0; i < n; ++i) members_.push_back(static_cast<std::size_t>(r.u64()));
  initialised_ = r.boolean();
}

}  // namespace wcdma::cell
