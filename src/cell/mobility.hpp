// User mobility models (the paper's dynamic simulation "takes into account
// of the user mobility").  Random-waypoint is the primary model; a simple
// direction-persistence random walk is provided for ablations; corridor
// mobility drives users along a road segment (directional motion with
// wrap-around at the ends).  Disc-bounded models stay inside a circular
// service region by reflecting at the boundary.
#pragma once

#include <memory>

#include "src/cell/geometry.hpp"
#include "src/common/rng.hpp"

namespace wcdma::common {
class BinaryWriter;
class BinaryReader;
}  // namespace wcdma::common

namespace wcdma::cell {

/// Which model the simulator builds for each user.
enum class MobilityKind { kRandomWaypoint, kCorridor };

struct MobilityConfig {
  MobilityKind kind = MobilityKind::kRandomWaypoint;
  double min_speed_mps = 0.3;   // ~1 km/h pedestrian
  double max_speed_mps = 16.7;  // ~60 km/h vehicular
  double pause_s = 0.0;         // random-waypoint pause at each waypoint
  double region_radius_m = 3000.0;
  /// Centre of the circular service region.  Per-cell load scaling places
  /// each user in a disc around its home cell, not around the origin.
  Point region_center{};
  // Random-walk only: mean time between direction changes.
  double direction_hold_s = 10.0;
  // Corridor only: the road is the segment |x| <= half_length on the x-axis
  // (the row of cells through the origin), with lanes spread over
  // |y| <= half_width.  half_length <= 0 derives from region_radius_m.
  double corridor_half_length_m = 0.0;
  double corridor_half_width_m = 250.0;
};

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  /// Advances by dt seconds; returns metres moved (drives shadowing).
  virtual double step(double dt) = 0;
  virtual Point position() const = 0;
  virtual double speed_mps() const = 0;

  /// Checkpoint support: each model serializes its evolved state (position,
  /// waypoint/heading, RNG) behind a model tag.  The config itself is not
  /// archived -- restore targets a model rebuilt from the same SystemConfig,
  /// and the tag catches a kind mismatch.
  virtual void save(common::BinaryWriter& w) const = 0;
  virtual bool load(common::BinaryReader& r) = 0;
};

class RandomWaypoint final : public MobilityModel {
 public:
  RandomWaypoint(const MobilityConfig& config, common::Rng rng);

  double step(double dt) override;
  Point position() const override { return pos_; }
  double speed_mps() const override { return speed_; }
  Point waypoint() const { return target_; }
  void save(common::BinaryWriter& w) const override;
  bool load(common::BinaryReader& r) override;

 private:
  void pick_waypoint();

  MobilityConfig config_;
  common::Rng rng_;
  Point pos_;
  Point target_;
  double speed_ = 0.0;
  double pause_left_ = 0.0;
};

class RandomWalk final : public MobilityModel {
 public:
  RandomWalk(const MobilityConfig& config, common::Rng rng);

  double step(double dt) override;
  Point position() const override { return pos_; }
  double speed_mps() const override { return speed_; }
  void save(common::BinaryWriter& w) const override;
  bool load(common::BinaryReader& r) override;

 private:
  MobilityConfig config_;
  common::Rng rng_;
  Point pos_;
  double heading_ = 0.0;
  double speed_ = 0.0;
  double hold_left_ = 0.0;
};

/// Directional line-segment motion for highway corridors: each user draws a
/// lane offset, a travel direction (+x or -x), and a cruise speed, then
/// drives along the road and wraps around at the segment ends (matching the
/// wrap-around cell layout, so the corridor load is stationary in time).
/// Speed is redrawn at each wrap (a fresh "vehicle" enters the road).
class CorridorMobility final : public MobilityModel {
 public:
  CorridorMobility(const MobilityConfig& config, common::Rng rng);

  double step(double dt) override;
  Point position() const override { return pos_; }
  double speed_mps() const override { return speed_; }
  int direction() const { return dir_; }
  void save(common::BinaryWriter& w) const override;
  bool load(common::BinaryReader& r) override;

 private:
  MobilityConfig config_;
  common::Rng rng_;
  Point pos_;
  double half_length_m_ = 0.0;
  int dir_ = 1;  // +1 = towards +x, -1 = towards -x
  double speed_ = 0.0;
};

/// Stationary user (for coverage sweeps that pin users at given radii).
class FixedPosition final : public MobilityModel {
 public:
  explicit FixedPosition(Point p) : pos_(p) {}
  double step(double) override { return 0.0; }
  Point position() const override { return pos_; }
  double speed_mps() const override { return 0.0; }
  void save(common::BinaryWriter& w) const override;
  bool load(common::BinaryReader& r) override;

 private:
  Point pos_;
};

/// Builds the model selected by `config.kind` (the simulator's factory).
/// The RNG is consumed exactly as the model's constructor always did, so
/// the default (random-waypoint) path is stream-compatible with older code.
std::unique_ptr<MobilityModel> make_mobility(const MobilityConfig& config,
                                             common::Rng rng);

}  // namespace wcdma::cell
