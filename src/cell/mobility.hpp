// User mobility models (the paper's dynamic simulation "takes into account
// of the user mobility").  Random-waypoint is the primary model; a simple
// direction-persistence random walk is provided for ablations.  Both stay
// inside a circular service region by reflecting at the boundary.
#pragma once

#include "src/cell/geometry.hpp"
#include "src/common/rng.hpp"

namespace wcdma::cell {

struct MobilityConfig {
  double min_speed_mps = 0.3;   // ~1 km/h pedestrian
  double max_speed_mps = 16.7;  // ~60 km/h vehicular
  double pause_s = 0.0;         // random-waypoint pause at each waypoint
  double region_radius_m = 3000.0;
  /// Centre of the circular service region.  Per-cell load scaling places
  /// each user in a disc around its home cell, not around the origin.
  Point region_center{};
  // Random-walk only: mean time between direction changes.
  double direction_hold_s = 10.0;
};

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  /// Advances by dt seconds; returns metres moved (drives shadowing).
  virtual double step(double dt) = 0;
  virtual Point position() const = 0;
  virtual double speed_mps() const = 0;
};

class RandomWaypoint final : public MobilityModel {
 public:
  RandomWaypoint(const MobilityConfig& config, common::Rng rng);

  double step(double dt) override;
  Point position() const override { return pos_; }
  double speed_mps() const override { return speed_; }
  Point waypoint() const { return target_; }

 private:
  void pick_waypoint();

  MobilityConfig config_;
  common::Rng rng_;
  Point pos_;
  Point target_;
  double speed_ = 0.0;
  double pause_left_ = 0.0;
};

class RandomWalk final : public MobilityModel {
 public:
  RandomWalk(const MobilityConfig& config, common::Rng rng);

  double step(double dt) override;
  Point position() const override { return pos_; }
  double speed_mps() const override { return speed_; }

 private:
  MobilityConfig config_;
  common::Rng rng_;
  Point pos_;
  double heading_ = 0.0;
  double speed_ = 0.0;
  double hold_left_ = 0.0;
};

/// Stationary user (for coverage sweeps that pin users at given radii).
class FixedPosition final : public MobilityModel {
 public:
  explicit FixedPosition(Point p) : pos_(p) {}
  double step(double) override { return 0.0; }
  Point position() const override { return pos_; }
  double speed_mps() const override { return 0.0; }

 private:
  Point pos_;
};

}  // namespace wcdma::cell
