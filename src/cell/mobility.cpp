#include "src/cell/mobility.hpp"

#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/serialize.hpp"

namespace wcdma::cell {

namespace {

// Model tags for the checkpoint archives; stable, never reordered.
constexpr std::uint8_t kTagWaypoint = 1;
constexpr std::uint8_t kTagWalk = 2;
constexpr std::uint8_t kTagCorridor = 3;
constexpr std::uint8_t kTagFixed = 4;

void save_point(common::BinaryWriter& w, const Point& p) {
  w.f64(p.x);
  w.f64(p.y);
}

Point load_point(common::BinaryReader& r) {
  Point p;
  p.x = r.f64();
  p.y = r.f64();
  return p;
}

Point random_in_disc(common::Rng& rng, const MobilityConfig& config) {
  const double r = config.region_radius_m * std::sqrt(rng.uniform());
  const double th = rng.uniform(0.0, 2.0 * M_PI);
  return config.region_center + Point{r * std::cos(th), r * std::sin(th)};
}

// Reflect p back into the service disc of the given config.
Point reflect_into_disc(Point p, const MobilityConfig& config) {
  const Point rel = p - config.region_center;
  const double n = norm(rel);
  // lint-allow(DET-FLOAT-EQ): exact-zero guard before dividing by n
  if (n <= config.region_radius_m || n == 0.0) return p;
  const double over = n - config.region_radius_m;
  const double scale = (config.region_radius_m - over) / n;  // fold overshoot back
  return config.region_center + std::max(scale, 0.0) * rel;
}

}  // namespace

RandomWaypoint::RandomWaypoint(const MobilityConfig& config, common::Rng rng)
    : config_(config), rng_(rng) {
  WCDMA_ASSERT(config_.max_speed_mps >= config_.min_speed_mps);
  WCDMA_ASSERT(config_.min_speed_mps > 0.0);
  pos_ = random_in_disc(rng_, config_);
  pick_waypoint();
}

void RandomWaypoint::pick_waypoint() {
  target_ = random_in_disc(rng_, config_);
  speed_ = rng_.uniform(config_.min_speed_mps, config_.max_speed_mps);
}

double RandomWaypoint::step(double dt) {
  double moved = 0.0;
  double remaining = dt;
  while (remaining > 0.0) {
    if (pause_left_ > 0.0) {
      const double pause = std::min(pause_left_, remaining);
      pause_left_ -= pause;
      remaining -= pause;
      continue;
    }
    const Point delta = target_ - pos_;
    const double dist = norm(delta);
    const double reach = speed_ * remaining;
    if (reach >= dist) {
      pos_ = target_;
      moved += dist;
      remaining -= (speed_ > 0.0 ? dist / speed_ : remaining);
      pause_left_ = config_.pause_s;
      pick_waypoint();
    } else {
      const double f = reach / dist;
      pos_ = pos_ + f * delta;
      moved += reach;
      remaining = 0.0;
    }
  }
  return moved;
}

RandomWalk::RandomWalk(const MobilityConfig& config, common::Rng rng)
    : config_(config), rng_(rng) {
  pos_ = random_in_disc(rng_, config_);
  heading_ = rng_.uniform(0.0, 2.0 * M_PI);
  speed_ = rng_.uniform(config_.min_speed_mps, config_.max_speed_mps);
  hold_left_ = rng_.exponential(config_.direction_hold_s);
}

double RandomWalk::step(double dt) {
  double moved = 0.0;
  double remaining = dt;
  while (remaining > 0.0) {
    const double leg = std::min(remaining, hold_left_);
    pos_ = pos_ + Point{leg * speed_ * std::cos(heading_), leg * speed_ * std::sin(heading_)};
    const double before = norm(pos_ - config_.region_center);
    pos_ = reflect_into_disc(pos_, config_);
    if (norm(pos_ - config_.region_center) < before) {
      // Bounced off the boundary: turn around with some scatter.
      heading_ += M_PI + rng_.uniform(-0.5, 0.5);
    }
    moved += leg * speed_;
    remaining -= leg;
    hold_left_ -= leg;
    if (hold_left_ <= 0.0) {
      heading_ = rng_.uniform(0.0, 2.0 * M_PI);
      speed_ = rng_.uniform(config_.min_speed_mps, config_.max_speed_mps);
      hold_left_ = rng_.exponential(config_.direction_hold_s);
    }
  }
  return moved;
}

CorridorMobility::CorridorMobility(const MobilityConfig& config, common::Rng rng)
    : config_(config), rng_(rng) {
  WCDMA_ASSERT(config_.max_speed_mps >= config_.min_speed_mps);
  WCDMA_ASSERT(config_.min_speed_mps > 0.0);
  half_length_m_ = config_.corridor_half_length_m > 0.0
                       ? config_.corridor_half_length_m
                       : config_.region_radius_m;
  WCDMA_ASSERT(half_length_m_ > 0.0);
  pos_.x = rng_.uniform(-half_length_m_, half_length_m_);
  pos_.y = rng_.uniform(-config_.corridor_half_width_m, config_.corridor_half_width_m);
  dir_ = rng_.uniform() < 0.5 ? 1 : -1;
  speed_ = rng_.uniform(config_.min_speed_mps, config_.max_speed_mps);
}

double CorridorMobility::step(double dt) {
  const double moved = speed_ * dt;
  pos_.x += dir_ * moved;
  // Wrap around the segment ends; a wrapping vehicle re-enters at the far
  // end with a fresh cruise speed (and keeps its lane and direction).
  if (pos_.x > half_length_m_) {
    pos_.x -= 2.0 * half_length_m_;
    speed_ = rng_.uniform(config_.min_speed_mps, config_.max_speed_mps);
  } else if (pos_.x < -half_length_m_) {
    pos_.x += 2.0 * half_length_m_;
    speed_ = rng_.uniform(config_.min_speed_mps, config_.max_speed_mps);
  }
  return moved;
}

void RandomWaypoint::save(common::BinaryWriter& w) const {
  w.u8(kTagWaypoint);
  rng_.save(w);
  save_point(w, pos_);
  save_point(w, target_);
  w.f64(speed_);
  w.f64(pause_left_);
}

bool RandomWaypoint::load(common::BinaryReader& r) {
  if (r.u8() != kTagWaypoint) return false;
  rng_.load(r);
  pos_ = load_point(r);
  target_ = load_point(r);
  speed_ = r.f64();
  pause_left_ = r.f64();
  return r.ok();
}

void RandomWalk::save(common::BinaryWriter& w) const {
  w.u8(kTagWalk);
  rng_.save(w);
  save_point(w, pos_);
  w.f64(heading_);
  w.f64(speed_);
  w.f64(hold_left_);
}

bool RandomWalk::load(common::BinaryReader& r) {
  if (r.u8() != kTagWalk) return false;
  rng_.load(r);
  pos_ = load_point(r);
  heading_ = r.f64();
  speed_ = r.f64();
  hold_left_ = r.f64();
  return r.ok();
}

void CorridorMobility::save(common::BinaryWriter& w) const {
  w.u8(kTagCorridor);
  rng_.save(w);
  save_point(w, pos_);
  w.i32(dir_);
  w.f64(speed_);
}

bool CorridorMobility::load(common::BinaryReader& r) {
  if (r.u8() != kTagCorridor) return false;
  rng_.load(r);
  pos_ = load_point(r);
  dir_ = r.i32();
  speed_ = r.f64();
  return r.ok();
}

void FixedPosition::save(common::BinaryWriter& w) const {
  w.u8(kTagFixed);
  save_point(w, pos_);
}

bool FixedPosition::load(common::BinaryReader& r) {
  if (r.u8() != kTagFixed) return false;
  pos_ = load_point(r);
  return r.ok();
}

std::unique_ptr<MobilityModel> make_mobility(const MobilityConfig& config,
                                             common::Rng rng) {
  switch (config.kind) {
    case MobilityKind::kCorridor:
      return std::make_unique<CorridorMobility>(config, rng);
    case MobilityKind::kRandomWaypoint:
      break;
  }
  return std::make_unique<RandomWaypoint>(config, rng);
}

}  // namespace wcdma::cell
