// Hexagonal cell layout with optional wrap-around.
//
// The dynamic simulations of the paper (following Kumar & Nanda [2]) use a
// multi-cell layout so soft hand-off and other-cell interference are real.
// We build the standard ring layout (rings=2 -> 19 cells) and remove edge
// effects with the usual wrap-around technique: distances are evaluated as
// the minimum over the identity and six mirror-cluster translations.
#pragma once

#include <cstddef>
#include <vector>

namespace wcdma::cell {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

inline Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
inline Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
inline Point operator*(double s, Point p) { return {s * p.x, s * p.y}; }

double norm(Point p);
double distance(Point a, Point b);

struct HexLayoutConfig {
  int rings = 2;            // 0 -> 1 cell, 1 -> 7, 2 -> 19
  double cell_radius_m = 1000.0;  // centre-to-vertex radius
  bool wrap_around = true;
};

/// Number of cells in a ring layout: 1 + 3*rings*(rings+1).
std::size_t hex_cell_count(int rings);

class HexLayout {
 public:
  explicit HexLayout(const HexLayoutConfig& config = {});

  std::size_t num_cells() const { return centers_.size(); }
  Point center(std::size_t k) const;
  const std::vector<Point>& centers() const { return centers_; }
  double cell_radius_m() const { return config_.cell_radius_m; }

  /// Distance from `p` to the centre of cell `k`, minimised over the
  /// wrap-around images when enabled.
  double distance_to_cell(Point p, std::size_t k) const;

  /// Index of the nearest cell (wrap-aware).
  std::size_t nearest_cell(Point p) const;

  /// A uniformly random point in the service area (disc covering the
  /// layout); callers supply uniform variates u1,u2 in [0,1).
  Point random_point(double u1, double u2) const;

  /// Radius of the disc that bounds the whole layout.
  double service_radius_m() const;

  const std::vector<Point>& wrap_translations() const { return translations_; }

 private:
  HexLayoutConfig config_;
  std::vector<Point> centers_;
  std::vector<Point> translations_;  // identity excluded
};

}  // namespace wcdma::cell
