// Hexagonal cell layout with optional wrap-around.
//
// The dynamic simulations of the paper (following Kumar & Nanda [2]) use a
// multi-cell layout so soft hand-off and other-cell interference are real.
// We build the standard ring layout (rings=2 -> 19 cells) and remove edge
// effects with the usual wrap-around technique: distances are evaluated as
// the minimum over the identity and six mirror-cluster translations.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "src/common/assert.hpp"

namespace wcdma::cell {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

inline Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
inline Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
inline Point operator*(double s, Point p) { return {s * p.x, s * p.y}; }

inline double norm(Point p) { return std::hypot(p.x, p.y); }
inline double distance(Point a, Point b) { return norm(a - b); }

struct HexLayoutConfig {
  int rings = 2;            // 0 -> 1 cell, 1 -> 7, 2 -> 19
  double cell_radius_m = 1000.0;  // centre-to-vertex radius
  bool wrap_around = true;
};

/// Number of cells in a ring layout: 1 + 3*rings*(rings+1).
std::size_t hex_cell_count(int rings);

class HexLayout {
 public:
  explicit HexLayout(const HexLayoutConfig& config = {});

  std::size_t num_cells() const { return centers_.size(); }
  Point center(std::size_t k) const;
  const std::vector<Point>& centers() const { return centers_; }
  double cell_radius_m() const { return config_.cell_radius_m; }

  /// Distance from `p` to the centre of cell `k`, minimised over the
  /// wrap-around images when enabled.  The nearest image is selected by
  /// squared distance (multiply-adds only) over the precomputed image table;
  /// the final metric distance is one hypot on the winner, matching the
  /// legacy min-over-hypot evaluation.
  double distance_to_cell(Point p, std::size_t k) const {
    WCDMA_DEBUG_ASSERT(k < centers_.size());
    const Point* images = &images_[k * images_per_cell_];
    double dx = p.x - images[0].x;
    double dy = p.y - images[0].y;
    double best_sq = dx * dx + dy * dy;
    // Near-field shortcut: when the direct distance is under half the
    // closest wrap translation, the triangle inequality guarantees every
    // mirror image is strictly farther -- no need to scan them.
    if (best_sq < near_field_sq_) return metric_distance(dx, dy);
    double best_dx = dx, best_dy = dy;
    for (std::size_t i = 1; i < images_per_cell_; ++i) {
      dx = p.x - images[i].x;
      dy = p.y - images[i].y;
      const double sq = dx * dx + dy * dy;
      if (sq < best_sq) {
        best_sq = sq;
        best_dx = dx;
        best_dy = dy;
      }
    }
    return metric_distance(best_dx, best_dy);
  }

  /// Squared distance from `p` to the nearest wrap image of cell `k`:
  /// the multiply-add scan of distance_to_cell without the final hypot.
  /// The relaxed-precision CSI path consumes distances only through
  /// log2(d) = log2(d^2) / 2, so it never needs the metric root.
  double distance_sq_to_cell(Point p, std::size_t k) const {
    WCDMA_DEBUG_ASSERT(k < centers_.size());
    const Point* images = &images_[k * images_per_cell_];
    double dx = p.x - images[0].x;
    double dy = p.y - images[0].y;
    double best_sq = dx * dx + dy * dy;
    if (best_sq < near_field_sq_) return best_sq;
    for (std::size_t i = 1; i < images_per_cell_; ++i) {
      dx = p.x - images[i].x;
      dy = p.y - images[i].y;
      const double sq = dx * dx + dy * dy;
      if (sq < best_sq) best_sq = sq;
    }
    return best_sq;
  }

  /// Index of the nearest cell (wrap-aware).
  std::size_t nearest_cell(Point p) const;

  /// A uniformly random point in the service area (disc covering the
  /// layout); callers supply uniform variates u1,u2 in [0,1).
  Point random_point(double u1, double u2) const;

  /// Radius of the disc that bounds the whole layout.
  double service_radius_m() const;

  const std::vector<Point>& wrap_translations() const { return translations_; }

 private:
  static double metric_distance(double dx, double dy) { return std::hypot(dx, dy); }

  HexLayoutConfig config_;
  std::vector<Point> centers_;
  std::vector<Point> translations_;  // identity excluded
  /// Flattened wrap-image table: cell k's images (identity first) occupy
  /// images_[k * images_per_cell_ .. + images_per_cell_).
  std::vector<Point> images_;
  std::size_t images_per_cell_ = 1;
  /// (min wrap-translation length / 2)^2; +inf without wrap-around.
  double near_field_sq_ = 0.0;
};

}  // namespace wcdma::cell
