// Soft hand-off active-set maintenance and the *reduced active set*.
//
// Footnote 4 of the paper: soft hand-off helps the reverse link but costs
// forward-link power, so cdma2000 assigns the SCH from a *reduced active
// set* -- the 2 base stations with the strongest pilot Ec/Io, a subset of
// the FCH active set.  This class implements IS-95/cdma2000-style
// add/drop-threshold management with hysteresis and exposes the reduced
// set used by the burst admission measurements.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "src/common/assert.hpp"

namespace wcdma::common {
class BinaryWriter;
class BinaryReader;
}  // namespace wcdma::common

namespace wcdma::cell {

struct ActiveSetConfig {
  double t_add_db = -14.0;   // pilot Ec/Io to enter the candidate/active set
  double t_drop_db = -16.0;  // pilot Ec/Io below which the drop timer runs
  double drop_timer_s = 1.0;
  std::size_t max_size = 3;          // FCH active set size
  std::size_t reduced_size = 2;      // SCH reduced active set (footnote 4)
};

class ActiveSet {
 public:
  ActiveSet(const ActiveSetConfig& config, std::size_t num_cells);

  /// One update per frame with the current per-cell pilot Ec/Io (dB).
  /// `dt` is the frame duration (drives the drop timers).
  void update(const std::vector<double>& pilot_ec_io_db, double dt);

  /// Sparse per-frame update for culled channel state: only `pilots`
  /// (cell, Ec/Io dB) carry real measurements; every unreported cell is
  /// implicitly at `floor_db` (far below t_drop, so it can never join).
  /// Current members must be among the reported cells.  Behaviourally
  /// identical to update() on a dense vector filled with `floor_db`, but
  /// O(reported) instead of O(cells).
  void update_sparse(const std::vector<std::pair<std::size_t, double>>& pilots,
                     double floor_db, double dt);

  /// update_sparse() with *linear* pilot Ec/Io values compared against the
  /// pre-converted linear thresholds, skipping the per-cell dB conversion
  /// entirely (the hot-path variant).  All decisions -- add/drop thresholds,
  /// strongest-first ordering, drop timers -- are order statistics, and
  /// x -> 10 log10(x) is strictly monotone, so the resulting hand-off
  /// trajectories match update_sparse() on the dB values of the same
  /// pilots.  A caller must stick to one domain (dB or linear) for the
  /// lifetime of the set; the simulator uses this variant for the culled
  /// provider and the dB variants for the exhaustive (golden) path.
  void update_sparse_linear(const std::vector<std::pair<std::size_t, double>>& pilots,
                            double dt);

  /// Cells currently in the FCH active set (sorted by descending pilot).
  const std::vector<std::size_t>& members() const { return members_; }

  /// Strongest-pilot member (the serving cell).  Valid after first update.
  std::size_t primary() const {
    WCDMA_DEBUG_ASSERT(initialised_ && !members_.empty());
    return members_.front();
  }

  /// The reduced active set for SCH assignment: up to `reduced_size`
  /// strongest members.
  std::vector<std::size_t> reduced() const;

  /// Allocation-free reduced-set view: members() is sorted strongest-first,
  /// so the reduced set is its first reduced_count() entries.
  std::size_t reduced_count() const {
    return members_.size() < config_.reduced_size ? members_.size()
                                                  : config_.reduced_size;
  }

  bool contains(std::size_t cell) const;

  /// Checkpoint support: pilots, drop timers, membership.  Config and the
  /// pre-converted linear thresholds are rebuilt from SystemConfig.
  void save(common::BinaryWriter& w) const;
  void load(common::BinaryReader& r);

  /// Forward-link power adjustment factor alpha^(FL): transmitting the SCH
  /// from every reduced-active-set leg costs this multiple of single-leg
  /// power (Eq. 6).
  double forward_adjustment() const;

  /// Reverse-link adjustment factor alpha^(RL): macro-diversity selection
  /// combining lets each leg run slightly below the single-leg requirement.
  double reverse_adjustment() const;

 private:
  void drop_phase(double t_drop, double dt);
  void add_phase();
  void finish_update();

  ActiveSetConfig config_;
  double t_add_linear_ = 0.0;   // 10^(t_add_db / 10), for the linear variant
  double t_drop_linear_ = 0.0;  // 10^(t_drop_db / 10)
  /// Last reported pilot per cell, in whichever domain the caller feeds
  /// (dB for update()/update_sparse(), linear for update_sparse_linear()).
  std::vector<double> last_pilot_db_;
  std::vector<double> below_drop_s_;  // time spent below t_drop per member
  std::vector<std::size_t> members_;
  std::vector<std::size_t> candidates_scratch_;  // reused across updates
  bool initialised_ = false;
};

}  // namespace wcdma::cell
