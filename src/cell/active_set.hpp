// Soft hand-off active-set maintenance and the *reduced active set*.
//
// Footnote 4 of the paper: soft hand-off helps the reverse link but costs
// forward-link power, so cdma2000 assigns the SCH from a *reduced active
// set* -- the 2 base stations with the strongest pilot Ec/Io, a subset of
// the FCH active set.  This class implements IS-95/cdma2000-style
// add/drop-threshold management with hysteresis and exposes the reduced
// set used by the burst admission measurements.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace wcdma::cell {

struct ActiveSetConfig {
  double t_add_db = -14.0;   // pilot Ec/Io to enter the candidate/active set
  double t_drop_db = -16.0;  // pilot Ec/Io below which the drop timer runs
  double drop_timer_s = 1.0;
  std::size_t max_size = 3;          // FCH active set size
  std::size_t reduced_size = 2;      // SCH reduced active set (footnote 4)
};

class ActiveSet {
 public:
  ActiveSet(const ActiveSetConfig& config, std::size_t num_cells);

  /// One update per frame with the current per-cell pilot Ec/Io (dB).
  /// `dt` is the frame duration (drives the drop timers).
  void update(const std::vector<double>& pilot_ec_io_db, double dt);

  /// Sparse per-frame update for culled channel state: only `pilots`
  /// (cell, Ec/Io dB) carry real measurements; every unreported cell is
  /// implicitly at `floor_db` (far below t_drop, so it can never join).
  /// Current members must be among the reported cells.  Behaviourally
  /// identical to update() on a dense vector filled with `floor_db`, but
  /// O(reported) instead of O(cells).
  void update_sparse(const std::vector<std::pair<std::size_t, double>>& pilots,
                     double floor_db, double dt);

  /// Cells currently in the FCH active set (sorted by descending pilot).
  const std::vector<std::size_t>& members() const { return members_; }

  /// Strongest-pilot member (the serving cell).  Valid after first update.
  std::size_t primary() const;

  /// The reduced active set for SCH assignment: up to `reduced_size`
  /// strongest members.
  std::vector<std::size_t> reduced() const;

  bool contains(std::size_t cell) const;

  /// Forward-link power adjustment factor alpha^(FL): transmitting the SCH
  /// from every reduced-active-set leg costs this multiple of single-leg
  /// power (Eq. 6).
  double forward_adjustment() const;

  /// Reverse-link adjustment factor alpha^(RL): macro-diversity selection
  /// combining lets each leg run slightly below the single-leg requirement.
  double reverse_adjustment() const;

 private:
  ActiveSetConfig config_;
  std::vector<double> last_pilot_db_;
  std::vector<double> below_drop_s_;  // time spent below t_drop per member
  std::vector<std::size_t> members_;
  bool initialised_ = false;
};

}  // namespace wcdma::cell
