#include "src/cell/geometry.hpp"

#include <cmath>
#include <limits>

#include "src/common/assert.hpp"

namespace wcdma::cell {

std::size_t hex_cell_count(int rings) {
  WCDMA_ASSERT(rings >= 0);
  return 1 + 3 * static_cast<std::size_t>(rings) * (static_cast<std::size_t>(rings) + 1);
}

HexLayout::HexLayout(const HexLayoutConfig& config) : config_(config) {
  WCDMA_ASSERT(config_.rings >= 0);
  WCDMA_ASSERT(config_.cell_radius_m > 0.0);

  // Axial hex coordinates: neighbouring centres are d = sqrt(3) * R apart.
  const double d = std::sqrt(3.0) * config_.cell_radius_m;
  const Point a1{d, 0.0};
  const Point a2{d * 0.5, d * std::sqrt(3.0) / 2.0};

  centers_.push_back({0.0, 0.0});
  for (int ring = 1; ring <= config_.rings; ++ring) {
    // Walk the hex ring: start at ring * a1, then take `ring` steps along
    // each of the six edge directions.
    static constexpr int kDirQ[6] = {-1, -1, 0, 1, 1, 0};
    static constexpr int kDirR[6] = {1, 0, -1, -1, 0, 1};
    int q = ring, r = 0;
    for (int side = 0; side < 6; ++side) {
      for (int step = 0; step < ring; ++step) {
        centers_.push_back({q * a1.x + r * a2.x, q * a1.y + r * a2.y});
        q += kDirQ[side];
        r += kDirR[side];
      }
    }
  }

  if (config_.wrap_around && config_.rings > 0) {
    // Mirror-cluster displacement for a cluster of K = i^2 + i*j + j^2
    // cells.  For the canonical sizes: 7 = (2,1), 19 = (3,2).  For other
    // ring counts fall back to the lattice vector spanning the cluster.
    int ci = config_.rings + 1, cj = config_.rings;  // (3,2) for rings=2 -> K=19
    const Point u{ci * a1.x + cj * a2.x, ci * a1.y + cj * a2.y};
    // Six rotations of u by 60 degrees tile the plane with clusters.
    for (int s = 0; s < 6; ++s) {
      const double ang = s * (M_PI / 3.0);
      const double c = std::cos(ang), sn = std::sin(ang);
      translations_.push_back({u.x * c - u.y * sn, u.x * sn + u.y * c});
    }
  }

  // Flatten (cell x image) centre positions for the hot distance path.
  images_per_cell_ = 1 + translations_.size();
  images_.reserve(centers_.size() * images_per_cell_);
  for (const Point& c : centers_) {
    images_.push_back(c);
    for (const Point& t : translations_) images_.push_back(c + t);
  }

  // |p - (c + t)| >= |t| - |p - c|, so when |p - c| < min|t| / 2 the direct
  // image is strictly the nearest and the mirror scan can be skipped.
  near_field_sq_ = std::numeric_limits<double>::infinity();
  for (const Point& t : translations_) {
    const double half = norm(t) / 2.0;
    near_field_sq_ = std::min(near_field_sq_, half * half);
  }
}

Point HexLayout::center(std::size_t k) const {
  WCDMA_ASSERT(k < centers_.size());
  return centers_[k];
}

std::size_t HexLayout::nearest_cell(Point p) const {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < centers_.size(); ++k) {
    const double d = distance_to_cell(p, k);
    if (d < best_d) {
      best_d = d;
      best = k;
    }
  }
  return best;
}

double HexLayout::service_radius_m() const {
  // Outermost centre plus one cell radius.
  double r = 0.0;
  for (const Point& c : centers_) r = std::max(r, norm(c));
  return r + config_.cell_radius_m;
}

Point HexLayout::random_point(double u1, double u2) const {
  WCDMA_DEBUG_ASSERT(u1 >= 0.0 && u1 < 1.0 && u2 >= 0.0 && u2 < 1.0);
  const double radius = service_radius_m() * std::sqrt(u1);
  const double theta = 2.0 * M_PI * u2;
  return {radius * std::cos(theta), radius * std::sin(theta)};
}

}  // namespace wcdma::cell
