// Constant-BER adaptation policy (Section 2.2).
//
// "transmission mode-q is chosen for the current information bit if the
//  feedback CSI falls within the adaptation thresholds (xi_{q-1}, xi_q)"
// and "the adaptation thresholds are set optimally to maintain a target
// transmission error level over a range of CSI values".
//
// With the exponential BER abstraction the optimal constant-BER thresholds
// have the closed form t_q = ln(a_q / Pb) / b_q: mode q is admissible
// exactly when gamma >= t_q, and picking the *highest* admissible mode
// maximises instantaneous throughput subject to BER <= Pb.
#pragma once

#include <vector>

#include "src/common/rng.hpp"
#include "src/phy/modes.hpp"

namespace wcdma::phy {

/// What to do when the CSI is below even mode-1's threshold.
enum class FloorPolicy {
  kOutage,      // send nothing this symbol/frame (throughput 0, BER held)
  kLowestMode,  // transmit mode 1 anyway (BER target violated; counted)
};

struct ModeDecision {
  int mode = 0;             // 0 = no transmission
  double throughput = 0.0;  // beta of the chosen mode (0 if outage)
  bool meets_ber = true;    // false iff transmitting above target BER
};

class AdaptationPolicy {
 public:
  AdaptationPolicy(ModeSet modes, double target_ber,
                   FloorPolicy floor = FloorPolicy::kOutage);

  /// Adaptation thresholds {t_1..t_Q} (linear CSI), ascending.
  const std::vector<double>& thresholds() const { return thresholds_; }

  /// Chooses the mode for feedback CSI `gamma` (linear).
  ModeDecision select(double gamma) const;

  double target_ber() const { return target_ber_; }
  const ModeSet& modes() const { return modes_; }

  // -- Closed-form Rayleigh performance (fast fading gamma = X * mean_csi,
  //    X ~ Exp(1)); used by tests and the E1-E3 benches. --

  /// Long-run average throughput (bits/symbol) at local-mean CSI `mean_csi`.
  double avg_throughput_rayleigh(double mean_csi) const;

  /// Probability that no transmission happens (kOutage floor policy).
  double outage_probability_rayleigh(double mean_csi) const;

  /// Bit-weighted average BER over transmitted bits at `mean_csi`.
  /// With kOutage this stays <= target for all mean_csi (the constant-BER
  /// property); with kLowestMode it degrades at low mean CSI.
  double avg_ber_rayleigh(double mean_csi) const;

  /// Probability of occupying mode q (1-based) under Rayleigh fading.
  double mode_probability_rayleigh(double mean_csi, int q) const;

  /// Fixed-rate reference: average throughput when *always* using mode q
  /// but only transmitting when that mode meets the BER target (classic
  /// non-adaptive truncated transmission).
  double fixed_mode_avg_throughput_rayleigh(double mean_csi, int q) const;

 private:
  ModeSet modes_;
  double target_ber_;
  FloorPolicy floor_;
  std::vector<double> thresholds_;
};

}  // namespace wcdma::phy
