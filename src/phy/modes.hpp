// VTAOC transmission modes (Section 2.2).
//
// The paper employs a 6-mode symbol-by-symbol Variable Throughput Adaptive
// Orthogonal Coding scheme whose instantaneous throughput (information bits
// per modulation symbol) walks a power-of-two ladder.  The exact coded BER
// curves live in refs [3,7] (not archived); we reproduce their *shape* with
// the standard exponential abstraction
//
//     BER_q(gamma) = a_q * exp(-b_q * gamma),
//
// clipped at 1/2, where gamma is the instantaneous symbol
// energy-to-interference ratio (Eq. 3).  b_q halves as the throughput
// doubles, i.e. each extra bit/symbol costs ~3 dB — the classic adaptive
// modulation trade (see DESIGN.md D2 for the substitution rationale).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wcdma::phy {

struct TransmissionMode {
  int index = 0;            // q, 1-based; 0 is reserved for "no transmission"
  double throughput = 0.0;  // beta_q, information bits per modulation symbol
  double ber_a = 0.5;       // BER model amplitude a_q
  double ber_b = 1.0;       // BER model exponent slope b_q

  /// Instantaneous BER at symbol energy-to-interference ratio `gamma`
  /// (linear).  Clipped to [0, 1/2].
  double ber(double gamma) const;

  /// gamma needed so that ber(gamma) == target (inverse of the above).
  double gamma_for_ber(double target_ber) const;
};

/// An ordered ladder of modes (ascending throughput).
class ModeSet {
 public:
  explicit ModeSet(std::vector<TransmissionMode> modes);

  std::size_t size() const { return modes_.size(); }
  /// 1-based access mirroring the paper's mode-q numbering.
  const TransmissionMode& mode(int q) const;
  const std::vector<TransmissionMode>& all() const { return modes_; }

  double min_throughput() const { return modes_.front().throughput; }
  double max_throughput() const { return modes_.back().throughput; }

  std::string describe() const;

 private:
  std::vector<TransmissionMode> modes_;
};

struct VtaocParams {
  int num_modes = 6;
  /// Throughput of the top mode (bits/symbol); ladder descends by halving.
  double top_throughput = 1.0;
  /// BER slope of mode 1 (the most protected); b_q = b1 / 2^(q-1).
  double b1 = 1.0;
  /// BER amplitude (Chernoff-style prefactor).
  double a = 0.5;
};

/// Builds the 6-mode VTAOC ladder of Section 2.2: throughputs
/// top/2^(Q-1) ... top (= 1/32 .. 1 by default).
ModeSet make_vtaoc_modes(const VtaocParams& params = {});

}  // namespace wcdma::phy
