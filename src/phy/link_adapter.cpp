#include "src/phy/link_adapter.hpp"

#include "src/common/assert.hpp"
#include "src/common/serialize.hpp"

namespace wcdma::phy {

LinkAdapter::LinkAdapter(const AdaptationPolicy* policy, std::size_t feedback_delay_frames,
                         double feedback_error_db, common::Rng rng)
    : policy_(policy), feedback_(feedback_delay_frames, feedback_error_db, rng) {
  WCDMA_ASSERT(policy_ != nullptr);
}

FrameOutcome LinkAdapter::on_frame(double true_csi) {
  feedback_.push(true_csi);
  const double reported = feedback_.current();
  const ModeDecision d = policy_->select(reported);

  FrameOutcome out;
  out.mode = d.mode;
  out.throughput = d.throughput;
  if (d.mode > 0) {
    out.realized_ber = policy_->modes().mode(d.mode).ber(true_csi);
    out.ber_violation = out.realized_ber > policy_->target_ber() * (1.0 + 1e-12);
  }
  return out;
}

double LinkAdapter::expected_throughput(double mean_csi) const {
  return policy_->avg_throughput_rayleigh(mean_csi);
}

void LinkAdapter::save(common::BinaryWriter& w) const { feedback_.save(w); }
void LinkAdapter::load(common::BinaryReader& r) { feedback_.load(r); }

FixedRateAdapter::FixedRateAdapter(const AdaptationPolicy* policy, int fixed_mode,
                                   std::size_t feedback_delay_frames,
                                   double feedback_error_db, common::Rng rng)
    : policy_(policy),
      fixed_mode_(fixed_mode),
      feedback_(feedback_delay_frames, feedback_error_db, rng) {
  WCDMA_ASSERT(policy_ != nullptr);
  WCDMA_ASSERT(fixed_mode >= 1 &&
               static_cast<std::size_t>(fixed_mode) <= policy_->modes().size());
}

FrameOutcome FixedRateAdapter::on_frame(double true_csi) {
  feedback_.push(true_csi);
  const double reported = feedback_.current();
  const double threshold = policy_->thresholds()[static_cast<std::size_t>(fixed_mode_ - 1)];

  FrameOutcome out;
  if (reported >= threshold) {
    const auto& m = policy_->modes().mode(fixed_mode_);
    out.mode = fixed_mode_;
    out.throughput = m.throughput;
    out.realized_ber = m.ber(true_csi);
    out.ber_violation = out.realized_ber > policy_->target_ber() * (1.0 + 1e-12);
  }
  return out;
}

double FixedRateAdapter::expected_throughput(double mean_csi) const {
  return policy_->fixed_mode_avg_throughput_rayleigh(mean_csi, fixed_mode_);
}

void FixedRateAdapter::save(common::BinaryWriter& w) const { feedback_.save(w); }
void FixedRateAdapter::load(common::BinaryReader& r) { feedback_.load(r); }

}  // namespace wcdma::phy
