#include "src/phy/adaptation.hpp"

#include <cmath>

#include "src/common/assert.hpp"

namespace wcdma::phy {

AdaptationPolicy::AdaptationPolicy(ModeSet modes, double target_ber, FloorPolicy floor)
    : modes_(std::move(modes)), target_ber_(target_ber), floor_(floor) {
  WCDMA_ASSERT(target_ber_ > 0.0 && target_ber_ < 0.5);
  thresholds_.reserve(modes_.size());
  for (const auto& m : modes_.all()) {
    thresholds_.push_back(m.gamma_for_ber(target_ber_));
  }
  for (std::size_t i = 1; i < thresholds_.size(); ++i) {
    WCDMA_ASSERT(thresholds_[i] > thresholds_[i - 1]);
  }
}

ModeDecision AdaptationPolicy::select(double gamma) const {
  WCDMA_DEBUG_ASSERT(gamma >= 0.0);
  // Highest mode whose threshold is met.
  int chosen = 0;
  for (std::size_t i = thresholds_.size(); i-- > 0;) {
    if (gamma >= thresholds_[i]) {
      chosen = static_cast<int>(i) + 1;
      break;
    }
  }
  if (chosen == 0) {
    if (floor_ == FloorPolicy::kOutage) return {0, 0.0, true};
    const auto& m = modes_.mode(1);
    return {1, m.throughput, m.ber(gamma) <= target_ber_};
  }
  return {chosen, modes_.mode(chosen).throughput, true};
}

double AdaptationPolicy::avg_throughput_rayleigh(double mean_csi) const {
  WCDMA_ASSERT(mean_csi > 0.0);
  // gamma = X * mean_csi with X ~ Exp(1):
  // P(gamma >= t) = exp(-t / mean_csi).
  double acc = 0.0;
  const std::size_t q_count = modes_.size();
  for (std::size_t i = 0; i < q_count; ++i) {
    const double lo = thresholds_[i];
    const double hi_p = (i + 1 < q_count) ? std::exp(-thresholds_[i + 1] / mean_csi) : 0.0;
    const double p = std::exp(-lo / mean_csi) - hi_p;
    acc += modes_.all()[i].throughput * p;
  }
  if (floor_ == FloorPolicy::kLowestMode) {
    // Below t_1 we still run mode 1.
    acc += modes_.min_throughput() * (1.0 - std::exp(-thresholds_[0] / mean_csi));
  }
  return acc;
}

double AdaptationPolicy::outage_probability_rayleigh(double mean_csi) const {
  WCDMA_ASSERT(mean_csi > 0.0);
  if (floor_ == FloorPolicy::kLowestMode) return 0.0;
  return 1.0 - std::exp(-thresholds_[0] / mean_csi);
}

double AdaptationPolicy::mode_probability_rayleigh(double mean_csi, int q) const {
  WCDMA_ASSERT(mean_csi > 0.0);
  WCDMA_ASSERT(q >= 1 && static_cast<std::size_t>(q) <= modes_.size());
  const std::size_t i = static_cast<std::size_t>(q - 1);
  const double lo = (q == 1 && floor_ == FloorPolicy::kLowestMode) ? 0.0 : thresholds_[i];
  const double hi_p =
      (i + 1 < modes_.size()) ? std::exp(-thresholds_[i + 1] / mean_csi) : 0.0;
  return std::exp(-lo / mean_csi) - hi_p;
}

double AdaptationPolicy::avg_ber_rayleigh(double mean_csi) const {
  WCDMA_ASSERT(mean_csi > 0.0);
  // Bit-weighted: sum_q beta_q * Integral_{I_q} a_q e^{-b_q g} f(g) dg
  // divided by sum_q beta_q * P(I_q), with f the Exp(mean_csi) density.
  // Integral over [lo, hi) of e^{-b g} (1/eps) e^{-g/eps} dg
  //   = (e^{-s*lo} - e^{-s*hi}) / (s * eps),  s = b + 1/eps.
  const double eps = mean_csi;
  double err_bits = 0.0, bits = 0.0;
  const std::size_t q_count = modes_.size();
  for (std::size_t i = 0; i < q_count; ++i) {
    const auto& m = modes_.all()[i];
    double lo = thresholds_[i];
    if (i == 0 && floor_ == FloorPolicy::kLowestMode) lo = 0.0;
    const double hi = (i + 1 < q_count) ? thresholds_[i + 1] : INFINITY;
    const double s = m.ber_b + 1.0 / eps;
    const double hi_term = std::isinf(hi) ? 0.0 : std::exp(-s * hi);
    const double integral = m.ber_a * (std::exp(-s * lo) - hi_term) / (s * eps);
    const double p = std::exp(-lo / eps) - (std::isinf(hi) ? 0.0 : std::exp(-hi / eps));
    err_bits += m.throughput * integral;
    bits += m.throughput * p;
  }
  return bits > 0.0 ? err_bits / bits : 0.0;
}

double AdaptationPolicy::fixed_mode_avg_throughput_rayleigh(double mean_csi, int q) const {
  WCDMA_ASSERT(mean_csi > 0.0);
  const auto& m = modes_.mode(q);
  const double t = thresholds_[static_cast<std::size_t>(q - 1)];
  // Non-adaptive transmitter: always mode q, usable only above its
  // constant-BER threshold.
  return m.throughput * std::exp(-t / mean_csi);
}

}  // namespace wcdma::phy
