// Per-user link adaptation loop (Fig. 1a): measure CSI at the receiver,
// feed it back with delay/noise, pick a VTAOC mode, and account for what the
// channel actually did to the frame.
//
// The FixedRateAdapter is the non-adaptive physical layer the paper argues
// against ("traditional physical layer delivers a constant throughput");
// it anchors the E1/E8 synergy comparisons.
#pragma once

#include "src/channel/channel.hpp"
#include "src/common/rng.hpp"
#include "src/phy/adaptation.hpp"

namespace wcdma::common {
class BinaryWriter;
class BinaryReader;
}  // namespace wcdma::common

namespace wcdma::phy {

/// Outcome of one frame of SCH transmission for one user.
struct FrameOutcome {
  int mode = 0;               // VTAOC mode used (0 = outage / nothing sent)
  double throughput = 0.0;    // beta actually used (bits/symbol)
  double realized_ber = 0.0;  // BER at the *true* instantaneous CSI
  bool ber_violation = false; // realized_ber > target (stale feedback etc.)
};

class LinkAdapter {
 public:
  /// `feedback_delay_frames` and `feedback_error_db` model the low-capacity
  /// feedback channel of Fig. 1(a).
  LinkAdapter(const AdaptationPolicy* policy, std::size_t feedback_delay_frames,
              double feedback_error_db, common::Rng rng);

  /// One frame: the receiver measures `true_csi` (linear symbol Es/I0), the
  /// transmitter adapts on the delayed feedback value.
  FrameOutcome on_frame(double true_csi);

  /// Average throughput the adapter would deliver at local-mean CSI
  /// `mean_csi` (closed form; delegates to the policy).
  double expected_throughput(double mean_csi) const;

  const AdaptationPolicy& policy() const { return *policy_; }

  /// Checkpoint support: only the feedback pipe evolves.
  void save(common::BinaryWriter& w) const;
  void load(common::BinaryReader& r);

 private:
  const AdaptationPolicy* policy_;  // not owned
  channel::CsiFeedback feedback_;
};

/// Non-adaptive baseline: always transmits the configured mode whenever the
/// (delayed) CSI clears that mode's constant-BER threshold, else stays
/// silent.  Same feedback pipe so comparisons isolate *adaptation*, not
/// information.
class FixedRateAdapter {
 public:
  FixedRateAdapter(const AdaptationPolicy* policy, int fixed_mode,
                   std::size_t feedback_delay_frames, double feedback_error_db,
                   common::Rng rng);

  FrameOutcome on_frame(double true_csi);

  double expected_throughput(double mean_csi) const;

  int fixed_mode() const { return fixed_mode_; }

  void save(common::BinaryWriter& w) const;
  void load(common::BinaryReader& r);

 private:
  const AdaptationPolicy* policy_;
  int fixed_mode_;
  channel::CsiFeedback feedback_;
};

}  // namespace wcdma::phy
