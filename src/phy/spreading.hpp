// Spreading-stage arithmetic of Section 2.2 (Eq. 2, 4, 5).
//
// Overall processing gain:  g_bar = W / Rb = g / beta           (Eq. 2)
// SCH relative bit rate:    Rs/Rf = m * (beta_s / beta_f)       (Eq. 4)
//   where m = g_f / g_s is the spreading-gain ratio the scheduler assigns
//   (the paper's decision variable m_j, 0 = reject, up to M).
// SCH/FCH power ratio:      Xs/Xf = gamma_s * m                 (Eq. 5-6)
//   gamma_s is the fixed relative symbol energy-to-interference ratio
//   between SCH and FCH, independent of local-mean CSI and of Rs.
#pragma once

#include "src/common/assert.hpp"

namespace wcdma::phy {

struct SpreadingConfig {
  double chip_rate_hz = 3.6864e6;  // W (3x cdma2000 class bandwidth)
  double fch_bit_rate = 9600.0;    // R_f
  double fch_throughput = 0.25;    // beta_f: FCH runs a fixed mid-ladder mode
  int max_sgr = 16;                // M, maximum spreading-gain ratio
  double gamma_s = 3.2;            // SCH/FCH symbol Es/I0 ratio (~5 dB, DESIGN.md D10)
};

class Spreading {
 public:
  explicit Spreading(const SpreadingConfig& config = {});

  const SpreadingConfig& config() const { return config_; }

  /// Overall processing gain W/Rb for a channel at `bit_rate` (Eq. 2).
  double total_processing_gain(double bit_rate) const;

  /// Spreading-stage gain g (chips per orthogonal symbol) for a channel at
  /// `bit_rate` carrying `throughput` bits/symbol: g = beta * W / Rb.
  double spreading_gain(double bit_rate, double throughput) const;

  /// FCH spreading gain g_f.
  double fch_spreading_gain() const;

  /// Instantaneous SCH bit rate for spreading-gain ratio m and SCH
  /// throughput beta_s (Eq. 4): Rs = Rf * m * beta_s / beta_f.
  double sch_bit_rate(int m, double sch_throughput) const;

  /// Short-term-average SCH bit rate given the VTAOC average throughput
  /// at the current local-mean CSI.
  double sch_avg_bit_rate(int m, double avg_throughput) const {
    return sch_bit_rate(m, avg_throughput);
  }

  /// SCH-to-FCH transmit power ratio for spreading-gain ratio m (Eq. 5):
  /// Xs / Xf = gamma_s * m.
  double sch_power_ratio(int m) const;

 private:
  SpreadingConfig config_;
};

}  // namespace wcdma::phy
