#include "src/phy/modes.hpp"

#include <cmath>
#include <cstdio>

#include "src/common/assert.hpp"

namespace wcdma::phy {

double TransmissionMode::ber(double gamma) const {
  WCDMA_DEBUG_ASSERT(gamma >= 0.0);
  const double v = ber_a * std::exp(-ber_b * gamma);
  return v > 0.5 ? 0.5 : v;
}

double TransmissionMode::gamma_for_ber(double target_ber) const {
  WCDMA_ASSERT(target_ber > 0.0 && target_ber < ber_a);
  return std::log(ber_a / target_ber) / ber_b;
}

ModeSet::ModeSet(std::vector<TransmissionMode> modes) : modes_(std::move(modes)) {
  WCDMA_ASSERT(!modes_.empty());
  for (std::size_t i = 1; i < modes_.size(); ++i) {
    // The ladder must be strictly ordered: more throughput, less protection.
    WCDMA_ASSERT(modes_[i].throughput > modes_[i - 1].throughput);
    WCDMA_ASSERT(modes_[i].ber_b < modes_[i - 1].ber_b);
  }
}

const TransmissionMode& ModeSet::mode(int q) const {
  WCDMA_ASSERT(q >= 1 && static_cast<std::size_t>(q) <= modes_.size());
  return modes_[static_cast<std::size_t>(q - 1)];
}

std::string ModeSet::describe() const {
  std::string out;
  char buf[128];
  for (const auto& m : modes_) {
    std::snprintf(buf, sizeof(buf), "mode-%d: beta=%.5g a=%.3g b=%.5g\n", m.index,
                  m.throughput, m.ber_a, m.ber_b);
    out += buf;
  }
  return out;
}

ModeSet make_vtaoc_modes(const VtaocParams& params) {
  WCDMA_ASSERT(params.num_modes >= 1);
  std::vector<TransmissionMode> modes(static_cast<std::size_t>(params.num_modes));
  for (int q = 1; q <= params.num_modes; ++q) {
    TransmissionMode& m = modes[static_cast<std::size_t>(q - 1)];
    m.index = q;
    m.throughput = params.top_throughput / std::pow(2.0, params.num_modes - q);
    m.ber_a = params.a;
    m.ber_b = params.b1 / std::pow(2.0, q - 1);
  }
  return ModeSet(std::move(modes));
}

}  // namespace wcdma::phy
