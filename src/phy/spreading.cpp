#include "src/phy/spreading.hpp"

namespace wcdma::phy {

Spreading::Spreading(const SpreadingConfig& config) : config_(config) {
  WCDMA_ASSERT(config_.chip_rate_hz > 0.0);
  WCDMA_ASSERT(config_.fch_bit_rate > 0.0);
  WCDMA_ASSERT(config_.fch_throughput > 0.0);
  WCDMA_ASSERT(config_.max_sgr >= 1);
  WCDMA_ASSERT(config_.gamma_s > 0.0);
}

double Spreading::total_processing_gain(double bit_rate) const {
  WCDMA_ASSERT(bit_rate > 0.0);
  return config_.chip_rate_hz / bit_rate;
}

double Spreading::spreading_gain(double bit_rate, double throughput) const {
  WCDMA_ASSERT(throughput > 0.0);
  return throughput * total_processing_gain(bit_rate);
}

double Spreading::fch_spreading_gain() const {
  return spreading_gain(config_.fch_bit_rate, config_.fch_throughput);
}

double Spreading::sch_bit_rate(int m, double sch_throughput) const {
  WCDMA_ASSERT(m >= 0 && m <= config_.max_sgr);
  if (m == 0) return 0.0;
  return config_.fch_bit_rate * static_cast<double>(m) * sch_throughput /
         config_.fch_throughput;
}

double Spreading::sch_power_ratio(int m) const {
  WCDMA_ASSERT(m >= 0 && m <= config_.max_sgr);
  return config_.gamma_s * static_cast<double>(m);
}

}  // namespace wcdma::phy
