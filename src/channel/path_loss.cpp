#include "src/channel/path_loss.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"

namespace wcdma::channel {

PathLoss::PathLoss(const PathLossConfig& config) : config_(config) {
  WCDMA_ASSERT(config_.min_distance_m > 0.0);
  WCDMA_ASSERT(config_.reference_distance_m > 0.0);
}

}  // namespace wcdma::channel
