#include "src/channel/path_loss.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"

namespace wcdma::channel {

PathLoss::PathLoss(const PathLossConfig& config) : config_(config) {
  WCDMA_ASSERT(config_.min_distance_m > 0.0);
  WCDMA_ASSERT(config_.reference_distance_m > 0.0);
}

double PathLoss::loss_db(double d_m) const {
  const double d = std::max(d_m, config_.min_distance_m);
  switch (config_.kind) {
    case PathLossModelKind::kLogDistance:
      return config_.reference_db +
             10.0 * config_.exponent * std::log10(d / config_.reference_distance_m);
    case PathLossModelKind::k3gppMacro:
      return 128.1 + 37.6 * std::log10(d / 1000.0);
    case PathLossModelKind::kCost231Hata: {
      // Urban macro at fc = 2000 MHz, hb = 32 m, hm = 1.5 m, large city.
      const double fc = 2000.0, hb = 32.0, hm = 1.5;
      const double a_hm = 3.2 * std::pow(std::log10(11.75 * hm), 2.0) - 4.97;
      return 46.3 + 33.9 * std::log10(fc) - 13.82 * std::log10(hb) - a_hm +
             (44.9 - 6.55 * std::log10(hb)) * std::log10(d / 1000.0) + 3.0;
    }
  }
  return 0.0;  // unreachable
}

double PathLoss::gain_linear(double d_m) const {
  return std::pow(10.0, -loss_db(d_m) / 10.0);
}

}  // namespace wcdma::channel
