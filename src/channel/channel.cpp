#include "src/channel/channel.hpp"

#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/serialize.hpp"

namespace wcdma::channel {

namespace {

std::unique_ptr<FadingProcess> make_fading(const LinkConfig& config, common::Rng rng) {
  switch (config.fading) {
    case FadingKind::kJakes:
      return std::make_unique<JakesFading>(config.doppler_hz, rng, config.jakes_paths);
    case FadingKind::kAr1:
      return std::make_unique<Ar1Fading>(config.doppler_hz, config.frame_s, rng);
    case FadingKind::kNone:
      return nullptr;
  }
  return nullptr;
}

}  // namespace

Link::Link(const LinkConfig& config, const PathLoss* path_loss, common::Rng rng)
    : path_loss_(path_loss),
      shadowing_(config.shadowing, rng.fork(1)),
      fading_(make_fading(config, rng.fork(2))) {
  WCDMA_ASSERT(path_loss_ != nullptr);
}

void Link::step(double moved_m, double dt) {
  shadowing_.step(moved_m);
  if (fading_) fading_->step(dt);
}

double Link::mean_gain() const {
  return path_loss_->gain_linear(distance_m_) * shadowing_.gain_linear();
}

double Link::instantaneous_gain() const { return mean_gain() * fading_factor(); }

double Link::fading_factor() const { return fading_ ? fading_->power_gain() : 1.0; }

CsiFeedback::CsiFeedback(std::size_t delay_frames, double error_sigma_db, common::Rng rng)
    : delay_frames_(delay_frames), error_sigma_db_(error_sigma_db), rng_(rng) {}

void CsiFeedback::push(double csi_linear) {
  WCDMA_DEBUG_ASSERT(csi_linear >= 0.0);
  double reported = csi_linear;
  if (error_sigma_db_ > 0.0) {
    reported *= rng_.lognormal_shadow(error_sigma_db_);
  }
  pipe_.push_back(reported);
  // Keep exactly delay+1 entries: front() is the delayed view.
  while (pipe_.size() > delay_frames_ + 1) pipe_.pop_front();
}

double CsiFeedback::current() const {
  WCDMA_ASSERT(!pipe_.empty());
  return pipe_.front();
}

void CsiFeedback::save(common::BinaryWriter& w) const {
  rng_.save(w);
  w.u64(pipe_.size());
  for (double v : pipe_) w.f64(v);
}

void CsiFeedback::load(common::BinaryReader& r) {
  rng_.load(r);
  const std::size_t n = r.seq(sizeof(double));
  pipe_.clear();
  for (std::size_t i = 0; i < n; ++i) pipe_.push_back(r.f64());
}

}  // namespace wcdma::channel
