// Distance-dependent mean path loss.
//
// Section 3.1 of the paper relies on path-loss *symmetry* between forward
// and reverse links (Eq. 13-14) to project neighbour-cell interference from
// forward pilot measurements; these models are therefore direction-free.
#pragma once

namespace wcdma::channel {

enum class PathLossModelKind {
  kLogDistance,   // PL(d) = PL(d0) + 10 n log10(d/d0)
  k3gppMacro,     // 128.1 + 37.6 log10(d_km)  (3GPP TR 25.942 macro cell)
  kCost231Hata,   // COST231-Hata urban, 2 GHz, hb=32m, hm=1.5m
};

struct PathLossConfig {
  PathLossModelKind kind = PathLossModelKind::k3gppMacro;
  // kLogDistance parameters:
  double exponent = 3.76;
  double reference_db = 128.1;   // loss at reference_distance_m
  double reference_distance_m = 1000.0;
  // Distances below this are clamped (near-field guard).
  double min_distance_m = 10.0;
};

/// Stateless path-loss evaluator.
class PathLoss {
 public:
  explicit PathLoss(const PathLossConfig& config = {});

  /// Path loss in dB at distance `d_m` metres (clamped to min_distance_m).
  double loss_db(double d_m) const;

  /// Linear channel power *gain* (= 10^(-loss/10)), always in (0, 1].
  double gain_linear(double d_m) const;

  const PathLossConfig& config() const { return config_; }

 private:
  PathLossConfig config_;
};

}  // namespace wcdma::channel
