// Distance-dependent mean path loss.
//
// Section 3.1 of the paper relies on path-loss *symmetry* between forward
// and reverse links (Eq. 13-14) to project neighbour-cell interference from
// forward pilot measurements; these models are therefore direction-free.
// Evaluators are header-inline: the simulator calls them once per live link
// per frame, where the out-of-line call was measurable.
#pragma once

#include <algorithm>
#include <cmath>

namespace wcdma::channel {

enum class PathLossModelKind {
  kLogDistance,   // PL(d) = PL(d0) + 10 n log10(d/d0)
  k3gppMacro,     // 128.1 + 37.6 log10(d_km)  (3GPP TR 25.942 macro cell)
  kCost231Hata,   // COST231-Hata urban, 2 GHz, hb=32m, hm=1.5m
};

struct PathLossConfig {
  PathLossModelKind kind = PathLossModelKind::k3gppMacro;
  // kLogDistance parameters:
  double exponent = 3.76;
  double reference_db = 128.1;   // loss at reference_distance_m
  double reference_distance_m = 1000.0;
  // Distances below this are clamped (near-field guard).
  double min_distance_m = 10.0;
};

/// Stateless path-loss evaluator.
class PathLoss {
 public:
  explicit PathLoss(const PathLossConfig& config = {});

  /// Path loss in dB at distance `d_m` metres (clamped to min_distance_m).
  double loss_db(double d_m) const {
    const double d = std::max(d_m, config_.min_distance_m);
    switch (config_.kind) {
      case PathLossModelKind::kLogDistance:
        return config_.reference_db +
               10.0 * config_.exponent * std::log10(d / config_.reference_distance_m);
      case PathLossModelKind::k3gppMacro:
        return 128.1 + 37.6 * std::log10(d / 1000.0);
      case PathLossModelKind::kCost231Hata: {
        // Urban macro at fc = 2000 MHz, hb = 32 m, hm = 1.5 m, large city.
        const double fc = 2000.0, hb = 32.0, hm = 1.5;
        const double a_hm = 3.2 * std::pow(std::log10(11.75 * hm), 2.0) - 4.97;
        return 46.3 + 33.9 * std::log10(fc) - 13.82 * std::log10(hb) - a_hm +
               (44.9 - 6.55 * std::log10(hb)) * std::log10(d / 1000.0) + 3.0;
      }
    }
    return 0.0;  // unreachable
  }

  /// Linear channel power *gain* (= 10^(-loss/10)), always in (0, 1].
  double gain_linear(double d_m) const { return std::pow(10.0, -loss_db(d_m) / 10.0); }

  /// Every model above is affine in log10 of the clamped distance:
  /// loss_db(d) = a + b * log10(max(d, min_distance_m)).  Exposed so the
  /// relaxed-precision CSI path can fold the model into two constants at
  /// init while this class stays the single source of the per-model
  /// parameters (sim::FrameState::set_fast_math consumes it).
  struct AffineLog10 {
    double a_db = 0.0;
    double b_db = 0.0;
  };
  AffineLog10 affine_log10() const {
    // Derived from loss_db() itself at two points above the near-field
    // clamp a decade apart, so no model constant is duplicated and any
    // affine model folds correctly by construction (pinned across models
    // by FastMath.PathLossAffineFoldMatchesEveryModel).
    const double d1 = std::max(config_.min_distance_m, 1.0) * 2.0;
    const double d2 = d1 * 10.0;
    const double l1 = loss_db(d1);
    const double b = loss_db(d2) - l1;  // log10(d2) - log10(d1) == 1
    return {l1 - b * std::log10(d1), b};
  }

  const PathLossConfig& config() const { return config_; }

 private:
  PathLossConfig config_;
};

}  // namespace wcdma::channel
