#include "src/channel/fading.hpp"

#include <cmath>
#include <mutex>

#include "src/common/assert.hpp"

namespace wcdma::channel {

namespace {
constexpr double kTwoPi = 6.283185307179586;

// libstdc++'s cyl_bessel_j series runs through lgamma(), which writes the
// process-global `signgam` -- a data race when Monte-Carlo replications
// construct Simulators on worker threads.  The call sits on cold paths only
// (AR(1) construction and the rare non-nominal-dt step), so serializing it
// is free in the frame loop and keeps the result bit-identical to the
// unsynchronized call (a reimplementation would not be).
std::mutex bessel_mutex;

double bessel_j0(double x) {
  const std::lock_guard<std::mutex> lock(bessel_mutex);
  return std::cyl_bessel_j(0.0, x);
}

}  // namespace

JakesFading::JakesFading(double doppler_hz, common::Rng rng, int paths)
    : doppler_hz_(doppler_hz) {
  WCDMA_ASSERT(paths >= 1);
  omega_.resize(paths);
  phase_i_.resize(paths);
  phase_q_.resize(paths);
  for (int n = 0; n < paths; ++n) {
    // Random arrival angles give a Clarke spectrum in the many-path limit.
    const double alpha = rng.uniform(0.0, kTwoPi);
    omega_[n] = kTwoPi * doppler_hz_ * std::cos(alpha);
    phase_i_[n] = rng.uniform(0.0, kTwoPi);
    phase_q_[n] = rng.uniform(0.0, kTwoPi);
  }
  norm_ = 1.0 / std::sqrt(static_cast<double>(paths));
}

std::complex<double> JakesFading::gain_at(double t) const {
  double re = 0.0, im = 0.0;
  for (std::size_t n = 0; n < omega_.size(); ++n) {
    re += std::cos(omega_[n] * t + phase_i_[n]);
    im += std::cos(omega_[n] * t + phase_q_[n]);
  }
  return {re * norm_, im * norm_};
}

double JakesFading::step(double dt) {
  t_ += dt;
  return power_gain();
}

double JakesFading::power_gain() const {
  const std::complex<double> h = gain_at(t_);
  return std::norm(h);
}

double Ar1Fading::correlation(double doppler_hz, double dt) {
  const double x = kTwoPi * doppler_hz * dt;
  // j0 of the Clarke autocorrelation; clamp negatives (deep lag) to zero so
  // the AR recursion stays stable and variance-preserving.
  const double r = bessel_j0(x);
  return r > 0.0 ? r : 0.0;
}

Ar1Fading::Ar1Fading(double doppler_hz, double dt_nominal, common::Rng rng)
    : doppler_hz_(doppler_hz),
      dt_nominal_(dt_nominal),
      rho_(correlation(doppler_hz, dt_nominal)),
      innovation_(std::sqrt(std::max(0.0, 1.0 - rho_ * rho_) * 0.5)),
      rng_(rng) {
  // Stationary start: h ~ CN(0, 1).
  h_ = {rng_.normal(0.0, std::sqrt(0.5)), rng_.normal(0.0, std::sqrt(0.5))};
}

double Ar1Fading::step(double dt) {
  if (dt == dt_nominal_) return step_nominal();
  const double rho = correlation(doppler_hz_, dt);
  const double innov = std::sqrt(std::max(0.0, 1.0 - rho * rho) * 0.5);
  h_ = {rho * h_.real() + rng_.normal(0.0, innov),
        rho * h_.imag() + rng_.normal(0.0, innov)};
  return power_gain();
}

double Ar1Fading::power_gain() const { return std::norm(h_); }

}  // namespace wcdma::channel
