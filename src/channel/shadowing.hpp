// Long-term shadowing component Xl(t) of Eq. (1).
//
// Log-normal shadowing with the Gudmundson exponential spatial correlation
// model: as the mobile travels distance delta-d, the dB-valued process
// evolves as an AR(1) with correlation rho = exp(-delta_d / d_corr).  This
// gives the "one to two second" coherence the paper describes for vehicular
// speeds, and lets adjacent measurement updates be realistically correlated.
#pragma once

#include "src/common/rng.hpp"

namespace wcdma::channel {

struct ShadowingConfig {
  double sigma_db = 8.0;        // standard deviation of the dB process
  double decorrelation_m = 50.0;  // Gudmundson decorrelation distance
};

/// One shadowing process per (mobile, base-station) link.
class Shadowing {
 public:
  Shadowing(const ShadowingConfig& config, common::Rng rng);

  /// Advances the process by `moved_m` metres of mobile travel and returns
  /// the new shadowing value in dB.
  double step(double moved_m);

  /// AR(1) coefficient for `moved_m` metres of travel under `config`:
  /// rho = exp(-|moved_m| / d_corr).  Exposed so callers stepping many links
  /// of one mobile can evaluate the exp/sqrt pair once per mobile.
  static double correlation(const ShadowingConfig& config, double moved_m);
  /// Innovation standard deviation paired with `rho` (variance-preserving).
  static double innovation_sigma(const ShadowingConfig& config, double rho);

  /// step() with the (rho, innovation_sigma) pair precomputed via the
  /// helpers above; bit-identical to step(moved_m) for matching inputs.
  double step_with(double rho, double innovation_sigma) {
    value_db_ = rho * value_db_ + rng_.normal(0.0, innovation_sigma);
    return value_db_;
  }

  /// Current value in dB (initially a fresh N(0, sigma) draw).
  double value_db() const { return value_db_; }

  /// Current linear power gain factor.
  double gain_linear() const;

 private:
  ShadowingConfig config_;
  common::Rng rng_;
  double value_db_;
};

}  // namespace wcdma::channel
