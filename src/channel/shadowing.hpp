// Long-term shadowing component Xl(t) of Eq. (1).
//
// Log-normal shadowing with the Gudmundson exponential spatial correlation
// model: as the mobile travels distance delta-d, the dB-valued process
// evolves as an AR(1) with correlation rho = exp(-delta_d / d_corr).  This
// gives the "one to two second" coherence the paper describes for vehicular
// speeds, and lets adjacent measurement updates be realistically correlated.
#pragma once

#include "src/common/rng.hpp"

namespace wcdma::channel {

struct ShadowingConfig {
  double sigma_db = 8.0;        // standard deviation of the dB process
  double decorrelation_m = 50.0;  // Gudmundson decorrelation distance
};

/// One shadowing process per (mobile, base-station) link.
class Shadowing {
 public:
  Shadowing(const ShadowingConfig& config, common::Rng rng);

  /// Advances the process by `moved_m` metres of mobile travel and returns
  /// the new shadowing value in dB.
  double step(double moved_m);

  /// Current value in dB (initially a fresh N(0, sigma) draw).
  double value_db() const { return value_db_; }

  /// Current linear power gain factor.
  double gain_linear() const;

 private:
  ShadowingConfig config_;
  common::Rng rng_;
  double value_db_;
};

}  // namespace wcdma::channel
