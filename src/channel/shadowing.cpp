#include "src/channel/shadowing.hpp"

#include <cmath>

namespace wcdma::channel {

Shadowing::Shadowing(const ShadowingConfig& config, common::Rng rng)
    : config_(config), rng_(rng), value_db_(rng_.normal(0.0, config.sigma_db)) {}

double Shadowing::step(double moved_m) {
  const double rho = correlation(config_, moved_m);
  return step_with(rho, innovation_sigma(config_, rho));
}

double Shadowing::correlation(const ShadowingConfig& config, double moved_m) {
  return std::exp(-std::fabs(moved_m) / config.decorrelation_m);
}

double Shadowing::innovation_sigma(const ShadowingConfig& config, double rho) {
  return config.sigma_db * std::sqrt(1.0 - rho * rho);
}

double Shadowing::gain_linear() const { return std::pow(10.0, value_db_ / 10.0); }

}  // namespace wcdma::channel
