#include "src/channel/shadowing.hpp"

#include <cmath>

namespace wcdma::channel {

Shadowing::Shadowing(const ShadowingConfig& config, common::Rng rng)
    : config_(config), rng_(rng), value_db_(rng_.normal(0.0, config.sigma_db)) {}

double Shadowing::step(double moved_m) {
  const double rho = std::exp(-std::fabs(moved_m) / config_.decorrelation_m);
  const double innovation_sigma = config_.sigma_db * std::sqrt(1.0 - rho * rho);
  value_db_ = rho * value_db_ + rng_.normal(0.0, innovation_sigma);
  return value_db_;
}

double Shadowing::gain_linear() const { return std::pow(10.0, value_db_ / 10.0); }

}  // namespace wcdma::channel
