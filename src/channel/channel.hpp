// Composite wireless link of Eq. (1): X(t) = Xl(t) * Xs(t), layered on the
// distance-dependent mean path loss.  Also the CSI feedback pipeline of
// Fig. 1(a): the receiver-side estimate travels to the transmitter through a
// low-capacity feedback channel, so the adapter sees a *delayed, noisy* copy
// of the channel state.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>

#include "src/channel/fading.hpp"
#include "src/channel/path_loss.hpp"
#include "src/channel/shadowing.hpp"
#include "src/common/rng.hpp"

namespace wcdma::common {
class BinaryWriter;
class BinaryReader;
}  // namespace wcdma::common

namespace wcdma::channel {

enum class FadingKind { kJakes, kAr1, kNone };

struct LinkConfig {
  ShadowingConfig shadowing;
  FadingKind fading = FadingKind::kAr1;
  double doppler_hz = 20.0;
  double frame_s = 0.020;  // nominal step used by AR(1) fading
  int jakes_paths = 16;
};

/// One directional radio link (mobile <-> base station).  The same fading
/// realisation serves both directions in this model; measurement asymmetry
/// enters through what each side can observe (Section 3.1).
class Link {
 public:
  Link(const LinkConfig& config, const PathLoss* path_loss, common::Rng rng);

  /// Advances shadowing (by travelled metres) and fast fading (by dt).
  void step(double moved_m, double dt);

  /// Updates the geometric distance (metres) used for mean path loss.
  void set_distance(double d_m) { distance_m_ = d_m; }
  double distance_m() const { return distance_m_; }

  /// Local-mean gain: path loss x shadowing (excludes fast fading).  This is
  /// what pilot-strength measurements and power control track.
  double mean_gain() const;

  /// Instantaneous gain including the fast-fading power factor; what the
  /// symbol-level PHY experiences.
  double instantaneous_gain() const;

  /// Fast-fading power factor alone (unit mean).
  double fading_factor() const;

  double shadowing_db() const { return shadowing_.value_db(); }

 private:
  const PathLoss* path_loss_;  // not owned
  Shadowing shadowing_;
  std::unique_ptr<FadingProcess> fading_;
  double distance_m_ = 1000.0;
};

/// Delay-and-noise model of the CSI feedback channel (Fig. 1a).  push() the
/// receiver's measured CSI once per frame; current() returns what the
/// transmitter can act on: the measurement from `delay_frames` ago with
/// log-normal estimation error applied.
class CsiFeedback {
 public:
  CsiFeedback(std::size_t delay_frames, double error_sigma_db, common::Rng rng);

  void push(double csi_linear);
  /// Latest actionable CSI (linear).  Before the pipe fills, returns the
  /// oldest available measurement (conservative start-up behaviour).
  double current() const;
  bool primed() const { return pipe_.size() > delay_frames_; }

  /// Checkpoint support: the delay pipe contents plus the error-draw RNG.
  void save(common::BinaryWriter& w) const;
  void load(common::BinaryReader& r);

 private:
  std::size_t delay_frames_;
  double error_sigma_db_;
  common::Rng rng_;
  std::deque<double> pipe_;
};

}  // namespace wcdma::channel
