// Short-term (fast) fading component Xs(t) of Eq. (1).
//
// Two interchangeable Rayleigh generators:
//  * JakesFading — Clarke/Jakes sum-of-sinusoids; a deterministic function
//    of time given its random phases, so symbol-level benches can sample it
//    densely and tests can verify the Doppler autocorrelation J0(2*pi*fd*tau).
//  * Ar1Fading — complex Gauss-Markov process stepped at the frame rate;
//    cheap, used by the system simulator where only per-frame values matter.
// Both are normalised to unit mean power so the composite channel of Eq. (1)
// separates cleanly into mean (path loss x shadowing) and fluctuation.
#pragma once

#include <complex>
#include <vector>

#include "src/common/rng.hpp"

namespace wcdma::channel {

/// Common interface so the simulator can switch generators.
class FadingProcess {
 public:
  virtual ~FadingProcess() = default;
  /// Advances internal time by dt seconds and returns the instantaneous
  /// *power* gain (unit mean).
  virtual double step(double dt) = 0;
  /// Current power gain without advancing.
  virtual double power_gain() const = 0;
};

class JakesFading final : public FadingProcess {
 public:
  /// `paths` sinusoids per quadrature (8-32 typical).
  JakesFading(double doppler_hz, common::Rng rng, int paths = 16);

  double step(double dt) override;
  double power_gain() const override;

  /// Evaluates the complex gain at absolute time t (used by tests/benches).
  std::complex<double> gain_at(double t) const;

  double doppler_hz() const { return doppler_hz_; }

  /// Checkpoint support: the process is a deterministic function of time
  /// given its (init-time) random phases, so only the clock round-trips.
  double time_s() const { return t_; }
  void set_time_s(double t) { t_ = t; }

 private:
  double doppler_hz_;
  double t_ = 0.0;
  std::vector<double> omega_;   // per-path Doppler angular frequencies
  std::vector<double> phase_i_;
  std::vector<double> phase_q_;
  double norm_;
};

class Ar1Fading final : public FadingProcess {
 public:
  /// `dt_nominal` is the expected step interval; the AR coefficient is
  /// recomputed if step() is called with a different dt.
  Ar1Fading(double doppler_hz, double dt_nominal, common::Rng rng);

  double step(double dt) override;
  double power_gain() const override;

  /// step(dt_nominal) without the per-step innovation sqrt: the coefficient
  /// pair is cached at construction.  Bit-identical to step(dt_nominal).
  double step_nominal() {
    h_ = {rho_ * h_.real() + rng_.normal(0.0, innovation_),
          rho_ * h_.imag() + rng_.normal(0.0, innovation_)};
    return std::norm(h_);
  }

  /// AR(1) coefficient for lag dt: rho = J0(2 pi fd dt), floored at 0.
  static double correlation(double doppler_hz, double dt);

 private:
  double doppler_hz_;
  double dt_nominal_;
  double rho_;
  double innovation_;  // innovation sigma at dt_nominal (cached)
  common::Rng rng_;
  std::complex<double> h_;
};

/// E[exp] moments helper: mean power of a unit-mean Rayleigh *power* process
/// is 1 and its variance is 1 (exponential distribution); exposed for tests.
struct RayleighTheory {
  static constexpr double kMeanPower = 1.0;
  static constexpr double kPowerVariance = 1.0;
};

}  // namespace wcdma::channel
