// E4 — average packet (burst) delay vs number of data users, FORWARD link,
// JABA-SD against the baselines (the paper's headline comparison; §1 claims
// superior average packet delay for JABA-SD).
//
// Hotspot scenario so that concurrent requests contend for the same cell
// power budget.  Expected shape: all curves grow with load; JABA-SD sits
// lowest, its greedy engine tracks it closely, FCFS trails, single-burst
// FCFS and equal-share saturate earliest.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace wcdma;
using namespace wcdma::bench;

int main() {
  common::Table t({"data-users", "scheduler", "mean-delay(s)", "p95-delay(s)",
                   "throughput(kbps)", "grant-rate", "mean-SGR"});
  for (const int users : {4, 8, 12, 16, 20, 24}) {
    for (const auto kind : headline_schedulers()) {
      sim::SystemConfig cfg = hotspot_config(4001);
      cfg.data.users = users;
      cfg.data.forward_fraction = 1.0;  // all downloads
      cfg.admission.scheduler = kind;
      const Row r = run_row_reps(cfg, 3);
      t.add_row({std::to_string(users), to_string(kind),
                 common::format_double(r.mean_delay_s, 4),
                 common::format_double(r.p95_delay_s, 4),
                 common::format_double(r.throughput_kbps, 4),
                 common::format_double(r.grant_rate, 3),
                 common::format_double(r.mean_sgr, 3)});
    }
  }
  t.print("E4: forward-link burst delay vs data users (7-cell hotspot)");
  return 0;
}
