// E4 — average packet (burst) delay vs number of data users, FORWARD link,
// JABA-SD against the baselines (the paper's headline comparison; §1 claims
// superior average packet delay for JABA-SD).
//
// Hotspot scenario so that concurrent requests contend for the same cell
// power budget.  Expected shape: all curves grow with load; JABA-SD sits
// lowest, its greedy engine tracks it closely, FCFS trails, single-burst
// FCFS and equal-share saturate earliest.
//
// Runs on the sweep engine: one (scheduler x data-users) grid, 3
// replications per scenario, sharded across hardware threads.
#include "bench/bench_util.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sweep/sweep.hpp"

using namespace wcdma;
using namespace wcdma::bench;

int main() {
  const sweep::SweepResult result =
      sweep::run_sweep(scenario::e4_delay_fl(), common::default_thread_count());

  common::Table t({"data-users", "scheduler", "mean-delay(s)", "p95-delay(s)",
                   "throughput(kbps)", "grant-rate", "mean-SGR"});
  for (const sweep::ScenarioResult& s : result.scenarios) {
    const Row r = metrics_to_row(s.merged);
    t.add_row({s.labels[0], s.labels[1], common::format_double(r.mean_delay_s, 4),
               common::format_double(r.p95_delay_s, 4),
               common::format_double(r.throughput_kbps, 4),
               common::format_double(r.grant_rate, 3),
               common::format_double(r.mean_sgr, 3)});
  }
  t.print("E4: forward-link burst delay vs data users (7-cell hotspot)");
  return 0;
}
