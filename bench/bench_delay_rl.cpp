// E5 — average packet (burst) delay vs number of data users, REVERSE link.
//
// Same sweep as E4 with all-upload traffic: the admissible region is now the
// interference-limited one of Eq. (16)-(18), including the SCRM
// neighbour-cell projection, and the mobile TX power budget caps the SGR.
// Expected shape: same ordering as E4 (JABA-SD lowest); absolute delays are
// higher than forward-link since reverse rise budgets bind earlier.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace wcdma;
using namespace wcdma::bench;

int main() {
  common::Table t({"data-users", "scheduler", "mean-delay(s)", "p95-delay(s)",
                   "throughput(kbps)", "grant-rate", "mean-SGR"});
  for (const int users : {4, 8, 12, 16, 20, 24}) {
    for (const auto kind : headline_schedulers()) {
      sim::SystemConfig cfg = hotspot_config(4002);
      cfg.data.users = users;
      cfg.data.forward_fraction = 0.0;  // all uploads
      cfg.admission.scheduler = kind;
      const Row r = run_row_reps(cfg, 3);
      t.add_row({std::to_string(users), to_string(kind),
                 common::format_double(r.mean_delay_s, 4),
                 common::format_double(r.p95_delay_s, 4),
                 common::format_double(r.throughput_kbps, 4),
                 common::format_double(r.grant_rate, 3),
                 common::format_double(r.mean_sgr, 3)});
    }
  }
  t.print("E5: reverse-link burst delay vs data users (7-cell hotspot)");
  return 0;
}
