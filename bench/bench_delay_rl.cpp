// E5 — average packet (burst) delay vs number of data users, REVERSE link.
//
// Same sweep as E4 with all-upload traffic: the admissible region is now the
// interference-limited one of Eq. (16)-(18), including the SCRM
// neighbour-cell projection, and the mobile TX power budget caps the SGR.
// Expected shape: same ordering as E4 (JABA-SD lowest); absolute delays are
// higher than forward-link since reverse rise budgets bind earlier.
//
// Runs on the sweep engine: one (data-users x scheduler) grid, 3 CRN-paired
// replications per scenario, sharded across hardware threads.
#include "bench/bench_util.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sweep/sweep.hpp"

using namespace wcdma;
using namespace wcdma::bench;

int main() {
  const sweep::SweepResult result =
      sweep::run_sweep(scenario::e5_delay_rl(), common::default_thread_count());

  common::Table t({"data-users", "scheduler", "mean-delay(s)", "p95-delay(s)",
                   "throughput(kbps)", "grant-rate", "mean-SGR"});
  for (const sweep::ScenarioResult& s : result.scenarios) {
    const Row r = metrics_to_row(s.merged);
    t.add_row({s.labels[0], s.labels[1], common::format_double(r.mean_delay_s, 4),
               common::format_double(r.p95_delay_s, 4),
               common::format_double(r.throughput_kbps, 4),
               common::format_double(r.grant_rate, 3),
               common::format_double(r.mean_sgr, 3)});
  }
  t.print("E5: reverse-link burst delay vs data users (7-cell hotspot)");
  return 0;
}
