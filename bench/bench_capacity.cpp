// E6 — data-user capacity vs voice load (the paper's "data user capacity"
// claim): the largest number of data users whose mean burst delay stays at
// or under the target, as background voice load eats the power/interference
// budget.
//
// Expected shape: capacity falls with voice load for every scheduler, and
// JABA-SD supports at least as many users as the baselines at every load.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace wcdma;
using namespace wcdma::bench;

namespace {
constexpr double kDelayTarget = 5.0;  // seconds
}

namespace {

// Mean delay averaged over independent replications (heavy-tailed burst
// sizes make single runs too noisy for a threshold decision).
double replicated_mean_delay(const sim::SystemConfig& cfg, int reps) {
  sim::SimMetrics merged;
  for (int r = 0; r < reps; ++r) {
    sim::SystemConfig rep = cfg;
    rep.seed = cfg.seed + static_cast<std::uint64_t>(r) * 7919;
    sim::Simulator simulator(rep);
    merged.merge(simulator.run());
  }
  return merged.mean_delay_s();
}

}  // namespace

int main() {
  const std::vector<int> data_grid = {6, 9, 12, 15, 18};
  common::Table t({"voice-users", "scheduler", "capacity(data-users)",
                   "delay@capacity(s)"});
  for (const int voice : {0, 30, 60}) {
    for (const auto kind :
         {admission::SchedulerKind::kJabaSd, admission::SchedulerKind::kFcfs,
          admission::SchedulerKind::kEqualShare}) {
      // Evaluate the whole grid (no early break: single-run noise is not
      // monotone) and take the largest load that meets the target.
      int capacity = 0;
      double delay_at_capacity = 0.0;
      for (const int users : data_grid) {
        sim::SystemConfig cfg = hotspot_config(4003);
        cfg.voice.users = voice;
        cfg.data.users = users;
        cfg.admission.scheduler = kind;
        const double delay = replicated_mean_delay(cfg, 3);
        if (delay <= kDelayTarget && users > capacity) {
          capacity = users;
          delay_at_capacity = delay;
        }
      }
      t.add_row({std::to_string(voice), to_string(kind), std::to_string(capacity),
                 common::format_double(delay_at_capacity, 4)});
    }
  }
  char title[128];
  std::snprintf(title, sizeof(title),
                "E6: data-user capacity (mean delay <= %.1f s) vs voice load, 3 reps",
                kDelayTarget);
  t.print(title);
  return 0;
}
