// E6 — data-user capacity vs voice load (the paper's "data user capacity"
// claim): the largest number of data users whose mean burst delay stays at
// or under the target, as background voice load eats the power/interference
// budget.
//
// Expected shape: capacity falls with voice load for every scheduler, and
// JABA-SD supports at least as many users as the baselines at every load.
//
// Runs on the sweep engine: the full (voice x scheduler x data-users) grid
// is evaluated in one parallel sweep (no early break: single-run noise is
// not monotone), then capacity is read off the merged delays per cell of
// the grid.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sweep/sweep.hpp"

using namespace wcdma;
using namespace wcdma::bench;

namespace {
constexpr double kDelayTarget = 5.0;  // seconds

const std::vector<int> kVoiceGrid = {0, 30, 60};
const std::vector<int> kDataGrid = {6, 9, 12, 15, 18};
const std::vector<admission::SchedulerKind> kSchedulers = {
    admission::SchedulerKind::kJabaSd, admission::SchedulerKind::kFcfs,
    admission::SchedulerKind::kEqualShare};
}  // namespace

int main() {
  sweep::SweepSpec spec;
  spec.name = "E6-capacity";
  spec.base = hotspot_config(4003);
  spec.axes = {sweep::axis_voice_users(kVoiceGrid), sweep::axis_scheduler(kSchedulers),
               sweep::axis_data_users(kDataGrid)};
  spec.replications = 3;
  spec.common_random_numbers = true;  // paired comparison across grid cells

  const sweep::SweepResult result =
      sweep::run_sweep(spec, common::default_thread_count());

  common::Table t({"voice-users", "scheduler", "capacity(data-users)",
                   "delay@capacity(s)"});
  for (std::size_t v = 0; v < kVoiceGrid.size(); ++v) {
    for (std::size_t k = 0; k < kSchedulers.size(); ++k) {
      int capacity = 0;
      double delay_at_capacity = 0.0;
      for (std::size_t d = 0; d < kDataGrid.size(); ++d) {
        const double delay = result.at({v, k, d}).merged.mean_delay_s();
        if (delay <= kDelayTarget && kDataGrid[d] > capacity) {
          capacity = kDataGrid[d];
          delay_at_capacity = delay;
        }
      }
      t.add_row({std::to_string(kVoiceGrid[v]), to_string(kSchedulers[k]),
                 std::to_string(capacity),
                 common::format_double(delay_at_capacity, 4)});
    }
  }
  char title[128];
  std::snprintf(title, sizeof(title),
                "E6: data-user capacity (mean delay <= %.1f s) vs voice load, 3 reps",
                kDelayTarget);
  t.print(title);
  return 0;
}
