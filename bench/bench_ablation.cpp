// E12 — design-choice ablations called out in DESIGN.md:
//   (a) CSI feedback delay (D1/Fig. 1a low-capacity feedback channel),
//   (b) neighbour-projection shadowing margin kappa (D6, Eq. 15),
//   (c) SCRM retry interval (request/persistence cycle),
//   (d) reduced-active-set size (footnote 4).
//
// Expected shapes: stale feedback raises BER violations and softens
// throughput; larger kappa is more conservative on the reverse link
// (smaller grants, better protection); longer retries lengthen queue
// delays; a larger reduced active set burns forward power per grant.
//
// Each ablation group is one 1-D sweep on the engine; CRN seeding gives
// every value in a group the same user drop and channel realisation, so the
// comparison is paired exactly as in the hand-rolled original.
#include "bench/bench_util.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sweep/sweep.hpp"

using namespace wcdma;
using namespace wcdma::bench;

int main() {
  common::Table t({"ablation", "value", "mean-delay(s)", "queue-delay(s)",
                   "throughput(kbps)", "mean-SGR", "BER-violation"});
  for (const sweep::SweepSpec& spec : scenario::e12_ablations()) {
    const sweep::SweepResult result =
        sweep::run_sweep(spec, common::default_thread_count());
    for (const sweep::ScenarioResult& s : result.scenarios) {
      const sim::SimMetrics& m = s.merged;
      const double viol_rate =
          m.sch_frames > 0 ? static_cast<double>(m.ber_violation_frames) /
                                 static_cast<double>(m.sch_frames)
                           : 0.0;
      t.add_row({result.name, s.labels[0],
                 common::format_double(m.mean_delay_s(), 4),
                 common::format_double(m.queue_delay_s.mean(), 4),
                 common::format_double(m.data_throughput_bps() / 1000.0, 4),
                 common::format_double(m.granted_sgr.mean(), 3),
                 common::format_double(viol_rate, 3)});
    }
  }
  t.print("E12: design-choice ablations (7-cell hotspot)");
  return 0;
}
