// E12 — design-choice ablations called out in DESIGN.md:
//   (a) CSI feedback delay (D1/Fig. 1a low-capacity feedback channel),
//   (b) neighbour-projection shadowing margin kappa (D6, Eq. 15),
//   (c) SCRM retry interval (request/persistence cycle),
//   (d) reduced-active-set size (footnote 4).
//
// Expected shapes: stale feedback raises BER violations and softens
// throughput; larger kappa is more conservative on the reverse link
// (smaller grants, better protection); longer retries lengthen queue
// delays; a larger reduced active set burns forward power per grant.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace wcdma;
using namespace wcdma::bench;

namespace {

void row(common::Table& t, const char* group, const char* label,
         const sim::SystemConfig& cfg) {
  sim::Simulator simulator(cfg);
  const sim::SimMetrics m = simulator.run();
  const double viol_rate = m.sch_frames > 0 ? static_cast<double>(m.ber_violation_frames) /
                                                  static_cast<double>(m.sch_frames)
                                            : 0.0;
  t.add_row({group, label, common::format_double(m.mean_delay_s(), 4),
             common::format_double(m.queue_delay_s.mean(), 4),
             common::format_double(m.data_throughput_bps() / 1000.0, 4),
             common::format_double(m.granted_sgr.mean(), 3),
             common::format_double(viol_rate, 3)});
}

}  // namespace

int main() {
  common::Table t({"ablation", "value", "mean-delay(s)", "queue-delay(s)",
                   "throughput(kbps)", "mean-SGR", "BER-violation"});

  for (const std::size_t delay : {0u, 1u, 4u, 8u}) {
    sim::SystemConfig cfg = hotspot_config(4012);
    cfg.data.users = 16;
    cfg.phy.feedback_delay_frames = delay;
    char label[32];
    std::snprintf(label, sizeof(label), "%zu frames", delay);
    row(t, "feedback-delay", label, cfg);
  }

  for (const double kappa_db : {0.0, 2.0, 6.0}) {
    sim::SystemConfig cfg = hotspot_config(4012);
    cfg.data.users = 16;
    cfg.data.forward_fraction = 0.0;  // reverse link: kappa matters there
    cfg.admission.kappa_margin_db = kappa_db;
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f dB", kappa_db);
    row(t, "kappa-margin", label, cfg);
  }

  for (const double retry : {0.02, 0.26, 1.0}) {
    sim::SystemConfig cfg = hotspot_config(4012);
    cfg.data.users = 20;
    cfg.admission.scrm_retry_s = retry;
    char label[32];
    std::snprintf(label, sizeof(label), "%.2f s", retry);
    row(t, "scrm-retry", label, cfg);
  }

  for (const std::size_t reduced : {1u, 2u, 3u}) {
    sim::SystemConfig cfg = hotspot_config(4012);
    cfg.data.users = 16;
    cfg.active_set.reduced_size = reduced;
    cfg.active_set.max_size = 3;
    char label[32];
    std::snprintf(label, sizeof(label), "%zu legs", reduced);
    row(t, "reduced-set", label, cfg);
  }

  t.print("E12: design-choice ablations (7-cell hotspot)");
  return 0;
}
