// Shared helpers for the experiment harnesses: canonical scenario builders
// and row extraction, so every bench prints comparable tables.
#pragma once

#include <string>
#include <vector>

#include "src/admission/schedulers.hpp"
#include "src/common/table.hpp"
#include "src/sim/metrics.hpp"
#include "src/sim/simulator.hpp"

namespace wcdma::bench {

/// Compact 7-cell hotspot scenario used by the load sweeps: every user in
/// the central cell's footprint so burst requests actually contend.
inline sim::SystemConfig hotspot_config(std::uint64_t seed) {
  sim::SystemConfig cfg = sim::default_config();
  cfg.layout.rings = 1;  // 7 cells
  cfg.voice.users = 30;
  cfg.data.users = 12;
  cfg.data.mean_reading_s = 1.0;
  cfg.mobility.region_radius_m = cfg.layout.cell_radius_m;
  cfg.sim_duration_s = 50.0;
  cfg.warmup_s = 8.0;
  cfg.seed = seed;
  return cfg;
}

/// Full 19-cell wide-area scenario (users spread over the whole layout).
inline sim::SystemConfig wide_config(std::uint64_t seed) {
  sim::SystemConfig cfg = sim::default_config();
  cfg.voice.users = 60;
  cfg.data.users = 16;
  cfg.data.mean_reading_s = 1.5;
  cfg.sim_duration_s = 60.0;
  cfg.warmup_s = 10.0;
  cfg.seed = seed;
  return cfg;
}

inline const std::vector<admission::SchedulerKind>& headline_schedulers() {
  static const std::vector<admission::SchedulerKind> kinds = {
      admission::SchedulerKind::kJabaSd, admission::SchedulerKind::kGreedy,
      admission::SchedulerKind::kFcfs, admission::SchedulerKind::kFcfsSingle,
      admission::SchedulerKind::kEqualShare};
  return kinds;
}

struct Row {
  double mean_delay_s;
  double p95_delay_s;
  double throughput_kbps;
  double grant_rate;
  double mean_sgr;
};

inline Row metrics_to_row(const sim::SimMetrics& m) {
  return {m.mean_delay_s(), m.p95_delay_s(), m.data_throughput_bps() / 1000.0,
          m.grant_rate(), m.granted_sgr.mean()};
}

inline Row run_row(const sim::SystemConfig& cfg) {
  sim::Simulator simulator(cfg);
  return metrics_to_row(simulator.run());
}

/// Count-weighted merge over independent replications (heavy-tailed burst
/// sizes make single runs noisy).
inline Row run_row_reps(const sim::SystemConfig& cfg, int reps) {
  sim::SimMetrics merged;
  for (int r = 0; r < reps; ++r) {
    sim::SystemConfig rep = cfg;
    rep.seed = cfg.seed + static_cast<std::uint64_t>(r) * 7919;
    sim::Simulator simulator(rep);
    merged.merge(simulator.run());
  }
  return metrics_to_row(merged);
}

}  // namespace wcdma::bench
