// Shared helpers for the experiment harnesses: canonical scenario builders
// (delegating to src/scenario) and row extraction, so every bench prints
// comparable tables.
#pragma once

#include <string>
#include <vector>

#include "src/admission/schedulers.hpp"
#include "src/common/table.hpp"
#include "src/scenario/experiments.hpp"
#include "src/sim/metrics.hpp"
#include "src/sim/simulator.hpp"

namespace wcdma::bench {

/// Compact 7-cell hotspot scenario used by the load sweeps: every user in
/// the central cell's footprint so burst requests actually contend.
inline sim::SystemConfig hotspot_config(std::uint64_t seed) {
  return scenario::hotspot_cell_config(seed);
}

/// Full 19-cell wide-area scenario (users spread over the whole layout).
inline sim::SystemConfig wide_config(std::uint64_t seed) {
  return scenario::wide_area_config(seed);
}

inline const std::vector<admission::SchedulerKind>& headline_schedulers() {
  return scenario::headline_schedulers();
}

struct Row {
  double mean_delay_s;
  double p95_delay_s;
  double throughput_kbps;
  double grant_rate;
  double mean_sgr;
};

inline Row metrics_to_row(const sim::SimMetrics& m) {
  return {m.mean_delay_s(), m.p95_delay_s(), m.data_throughput_bps() / 1000.0,
          m.grant_rate(), m.granted_sgr.mean()};
}

}  // namespace wcdma::bench
