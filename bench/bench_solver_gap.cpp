// E9 — scheduling sub-layer solvers on randomized admission instances:
// exact branch-and-bound (JABA-SD) vs the greedy engine vs the baselines,
// reporting objective ratios, optimality-proof rate, B&B nodes and runtime.
//
// Expected shape: greedy stays within a few percent of exact at every size;
// FCFS/equal-share leave 20-50% of the objective on the table; exact solve
// times stay in the sub-millisecond to millisecond range for the Nd the
// paper's scenarios produce.
#include <chrono>
#include <cstdio>

#include "src/admission/schedulers.hpp"
#include "src/common/rng.hpp"
#include "src/common/table.hpp"

using namespace wcdma;
using Clock = std::chrono::steady_clock;

namespace {

admission::BurstProblem random_problem(common::Rng& rng, std::size_t nd,
                                       std::size_t cells) {
  admission::Region region;
  region.a = common::Matrix(cells, nd, 0.0);
  for (std::size_t k = 0; k < cells; ++k) {
    for (std::size_t j = 0; j < nd; ++j) {
      region.a(k, j) = rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.05, 1.0);
    }
  }
  region.b.resize(cells);
  for (auto& b : region.b) b = rng.uniform(1.0, 8.0);
  std::vector<admission::RequestView> requests(nd);
  for (std::size_t j = 0; j < nd; ++j) {
    requests[j].user = static_cast<int>(j);
    requests[j].q_bits = rng.uniform(3.0e4, 1.0e6);
    requests[j].waiting_s = rng.uniform(0.0, 8.0);
    requests[j].delta_beta = rng.uniform(0.1, 2.0);
  }
  return make_burst_problem(std::move(region), std::move(requests),
                            admission::ObjectiveKind::kJ2DelayAware, {}, {}, 9600.0,
                            0.080, 16);
}

}  // namespace

int main() {
  common::Rng rng(909);
  common::Table t({"Nd", "cells", "greedy/exact", "fcfs/exact", "eqshare/exact",
                   "proof-rate", "avg-nodes", "exact-us", "greedy-us"});
  for (const std::size_t nd : {4u, 8u, 16u, 32u, 64u}) {
    const std::size_t cells = std::max<std::size_t>(2, nd / 4);
    const int trials = 40;
    double greedy_ratio = 0.0, fcfs_ratio = 0.0, eq_ratio = 0.0;
    double nodes = 0.0, exact_us = 0.0, greedy_us = 0.0;
    int proofs = 0;
    for (int trial = 0; trial < trials; ++trial) {
      const admission::BurstProblem p = random_problem(rng, nd, cells);

      admission::JabaSdScheduler::Options opts;
      opts.exact_threshold = 128;  // force exact at every size here
      opts.max_nodes = 300000;
      admission::JabaSdScheduler exact(opts);
      const auto t0 = Clock::now();
      const admission::Allocation best = exact.schedule(p);
      exact_us += std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
      proofs += best.proven_optimal ? 1 : 0;
      nodes += static_cast<double>(best.nodes);

      admission::GreedyScheduler greedy;
      const auto t1 = Clock::now();
      const admission::Allocation g = greedy.schedule(p);
      greedy_us += std::chrono::duration<double, std::micro>(Clock::now() - t1).count();

      admission::FcfsScheduler fcfs;
      admission::EqualShareScheduler eq;
      const double denom = std::max(best.objective, 1e-12);
      greedy_ratio += g.objective / denom;
      fcfs_ratio += fcfs.schedule(p).objective / denom;
      eq_ratio += eq.schedule(p).objective / denom;
    }
    t.add_numeric_row({static_cast<double>(nd), static_cast<double>(cells),
                       greedy_ratio / trials, fcfs_ratio / trials, eq_ratio / trials,
                       static_cast<double>(proofs) / trials, nodes / trials,
                       exact_us / trials, greedy_us / trials},
                      4);
  }
  t.print("E9: scheduler objective ratios and exact-solver cost (40 trials/row)");
  return 0;
}
