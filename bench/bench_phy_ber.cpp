// E2 — the constant-BER property (Section 2.2, footnote 1): realised BER vs
// mean CSI for the adaptive VTAOC against fixed-rate transmission, both in
// closed form and by Monte-Carlo symbol simulation through the full
// feedback-delayed link adapter.
//
// Expected shape: the adaptive closed-form BER stays at/below the target at
// every CSI ("the penalty ... is a lower offered throughput instead of a
// higher error rate"); the fixed aggressive mode violates the target as the
// channel degrades when operated without its threshold gate; feedback delay
// introduces a small violation floor.
#include <cstdio>

#include "src/common/rng.hpp"
#include "src/common/table.hpp"
#include "src/common/units.hpp"
#include "src/phy/adaptation.hpp"
#include "src/phy/link_adapter.hpp"

using namespace wcdma;

int main() {
  const double pb = 1e-3;
  phy::VtaocParams params;
  params.b1 = 4.0;
  phy::AdaptationPolicy policy(phy::make_vtaoc_modes(params), pb);
  common::Rng rng(2001);

  common::Table t({"meanCSI(dB)", "adaptiveBER", "m4-ungated-BER", "outageP",
                   "violation-rate(d=0)", "violation-rate(d=4)"});
  for (double db = -6.0; db <= 18.0 + 1e-9; db += 3.0) {
    const double eps = common::db_to_linear(db);

    // Ungated fixed mode 4: transmit always, whatever the channel does.
    const auto& m4 = policy.modes().mode(4);
    // E[BER] over Rayleigh: integral a e^{-b g} f(g) dg = a / (1 + b eps).
    const double m4_ber = m4.ber_a / (1.0 + m4.ber_b * eps);

    // Monte-Carlo through the adapter at feedback delays 0 and 4 frames.
    double viol[2] = {0.0, 0.0};
    const int frames = 40000;
    int idx = 0;
    for (const std::size_t delay : {std::size_t{0}, std::size_t{4}}) {
      phy::LinkAdapter adapter(&policy, delay, 0.0, rng.fork(10 + delay));
      channel::Ar1Fading fading(30.0, 0.02, rng.fork(20 + delay));
      int tx = 0, bad = 0;
      for (int f = 0; f < frames; ++f) {
        const double csi = eps * fading.step(0.02);
        const auto out = adapter.on_frame(csi);
        if (out.mode > 0) {
          ++tx;
          bad += out.ber_violation ? 1 : 0;
        }
      }
      viol[idx++] = tx > 0 ? static_cast<double>(bad) / tx : 0.0;
    }

    t.add_numeric_row({db, policy.avg_ber_rayleigh(eps), m4_ber,
                       policy.outage_probability_rayleigh(eps), viol[0], viol[1]});
  }
  t.print("E2: realised BER vs mean CSI (target Pb=1e-3)");
  std::printf("\n# adaptiveBER column must never exceed 1e-3; the ungated fixed mode"
              "\n# blows through the target at low CSI; stale feedback (4 frames)"
              "\n# re-introduces a small violation rate.\n");
  return 0;
}
